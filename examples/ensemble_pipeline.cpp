// The generate -> checkpoint -> measure pipeline over the gauge I/O layer
// (src/io/, spec in docs/FORMAT.md).
//
// Four phases, each verified against the in-memory truth:
//
//   1. GENERATE  a small quenched ensemble with Metropolis sweeps, saving
//      every configuration as a checkpointed SVGF file.
//   2. RESUME    the Markov chain from the second-to-last checkpoint as a
//      fresh process would, and check the regenerated final configuration
//      is BITWISE identical to the uninterrupted chain's.
//   3. REDISTRIBUTE over 2-4 real rank processes (socket transport): rank
//      0 loads each stored configuration and scatters it; the ranks write
//      per-rank files + manifest, reload them, and gather back.
//   4. MEASURE   plaquette (every configuration) and the pion correlator
//      (final configuration) on the reloaded fields; every number must
//      equal the in-memory original exactly (the I/O round trip is
//      bitwise and the reductions are deterministic across thread counts
//      and processes).
//
// Exit code 0 iff every check passed.  The CI distributed lane runs this
// at 2 ranks and uploads the ensemble directory on failure.
//
// Usage: ./examples/ensemble_pipeline [ranks=2] [L=4] [T=8] [nconfigs=2] [dir=ensemble.tmp]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "comms/socket.h"
#include "core/svelat.h"
#include "io/io.h"
#include "qcd/metropolis.h"
#include "qcd/propagator.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string cfg_path(const std::string& dir, int n) {
  return dir + "/cfg" + std::to_string(n) + ".svgf";
}

std::vector<double> measure_pion(const qcd::GaugeField<S>& gauge, double mass,
                                 bool* converged) {
  solver::WilsonSolver<S> solver(
      gauge, mass, solver::SolverParams{}.with_tolerance(1e-8).with_max_iterations(600));
  qcd::Propagator<S> prop(gauge.grid());
  const auto report = qcd::compute_propagator(solver, {0, 0, 0, 0}, prop);
  *converged = report.all_converged();
  return qcd::pion_correlator(prop);
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 2;
  const int L = argc > 2 ? std::atoi(argv[2]) : 4;
  const int T = argc > 3 ? std::atoi(argv[3]) : 8;
  const int nconfigs = argc > 4 ? std::atoi(argv[4]) : 2;
  const std::string dir = argc > 5 ? argv[5] : "ensemble.tmp";
  if (ranks < 1 || ranks > 8 || T % ranks != 0 || nconfigs < 1) {
    std::fprintf(stderr, "usage: %s [ranks] [L] [T] [nconfigs] [dir] (T %% ranks == 0)\n",
                 argv[0]);
    return 2;
  }

  sve::set_vector_length(256);
  const lattice::Coordinate dims{L, L, L, T};
  const lattice::Coordinate layout = comms::split_simd_layout(dims, 3, S::Nsimd());
  lattice::GridCartesian grid(dims, layout);
  std::filesystem::create_directories(dir);

  const double mass = 0.4;
  constexpr int kTherm = 2, kGap = 2;

  // --- phase 1: generate and store ------------------------------------------
  std::printf("[generate] %dx%dx%dx%d lattice, %d configurations, dir '%s'\n", L, L, L,
              T, nconfigs, dir.c_str());
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::MarkovState state;
  state.params.beta = 5.7;
  state.params.epsilon = 0.24;
  state.params.seed = 515;
  qcd::advance(gauge, state, kTherm);

  std::vector<std::vector<std::uint8_t>> stored_bytes;  // in-memory originals
  std::vector<double> stored_plaq;
  for (int n = 0; n < nconfigs; ++n) {
    const auto stats = qcd::advance(gauge, state, kGap);
    io::save_checkpoint(cfg_path(dir, n), gauge, state);
    stored_bytes.push_back(io::encode_gauge(gauge));
    stored_plaq.push_back(qcd::average_plaquette(gauge));
    std::printf("  cfg %d: sweeps=%lld plaquette=%+.6f acceptance=%.2f\n", n,
                static_cast<long long>(state.sweeps_done), stored_plaq.back(),
                stats.acceptance);
  }

  // --- phase 2: resume from the previous checkpoint -------------------------
  // A fresh process restarting from cfg N-2 (or, for a single-config run,
  // re-running generation) must regenerate cfg N-1 bitwise.
  bool resume_ok = false;
  {
    qcd::GaugeField<S> resumed(&grid);
    qcd::MarkovState rstate;
    if (nconfigs >= 2) {
      rstate = io::load_checkpoint(cfg_path(dir, nconfigs - 2), resumed);
    } else {
      qcd::random_gauge(SiteRNG(2018), resumed);
      rstate = qcd::MarkovState{state.params, 0};
      qcd::advance(resumed, rstate, kTherm);
    }
    qcd::advance(resumed, rstate, kGap);
    resume_ok = io::encode_gauge(resumed) == stored_bytes.back() &&
                rstate.sweeps_done == state.sweeps_done;
    std::printf("[resume] chain restarted from checkpoint: %s\n",
                resume_ok ? "bitwise identical" : "MISMATCH");
  }

  // --- reference measurement on the in-memory final configuration ----------
  bool ref_converged = false;
  const std::vector<double> ref_corr = measure_pion(gauge, mass, &ref_converged);
  if (!ref_converged) {
    std::printf("FAIL: reference propagator did not converge\n");
    return 1;
  }

  // --- phases 3+4: redistribute over real rank processes and measure --------
  std::printf("[distribute] reloading %d configs across %d rank processes\n", nconfigs,
              ranks);
  const auto report = comms::run_ranks(ranks, [&](int rank,
                                                  comms::SocketCommunicator& comm) {
    const comms::RankDecomposition decomp(dims, 3, comm.size(), layout);
    for (int n = 0; n < nconfigs; ++n) {
      // Rank 0 reads the stored single file; everyone gets a sub-lattice.
      qcd::GaugeField<S> local(decomp.grid(rank));
      io::load_gauge_root(cfg_path(dir, n), decomp, comm, rank, local);

      // Re-store as per-rank files + manifest, then reload through full
      // manifest/CRC validation.
      const std::string dist_dir = dir + "/cfg" + std::to_string(n) + ".dist";
      io::save_gauge_distributed(dist_dir, decomp, comm, rank, local);
      io::manifest_barrier(comm, rank);
      qcd::GaugeField<S> reloaded(decomp.grid(rank));
      io::load_gauge_distributed(dist_dir, decomp, rank, reloaded);
      if (io::encode_gauge(reloaded) != io::encode_gauge(local)) return 10 + n;

      // Gather to rank 0 and measure against the in-memory original.
      lattice::GridCartesian global_grid(dims, layout);
      qcd::GaugeField<S> global(&global_grid);
      for (int mu = 0; mu < lattice::Nd; ++mu)
        comms::gather_root(decomp, comm, rank, reloaded.U[mu],
                           rank == 0 ? &global.U[mu] : nullptr);
      if (rank == 0) {
        if (io::encode_gauge(global) != stored_bytes[static_cast<std::size_t>(n)])
          return 20 + n;
        const double plaq = qcd::average_plaquette(global);
        if (plaq != stored_plaq[static_cast<std::size_t>(n)]) return 30 + n;
        std::printf("  rank 0: cfg %d reloaded, plaquette %+.6f matches exactly\n", n,
                    plaq);
        if (n == nconfigs - 1) {
          bool converged = false;
          const auto corr = measure_pion(global, mass, &converged);
          if (!converged || corr != ref_corr) return 40;
          std::printf("  rank 0: pion correlator (%zu timeslices) matches exactly\n",
                      corr.size());
        }
      }
    }
    return 0;
  });

  const bool ok = resume_ok && report.ok;
  if (!report.ok) std::printf("%s", report.describe().c_str());
  std::printf("\nensemble pipeline: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
