// The fault-tolerant generate -> checkpoint -> measure pipeline over the
// gauge I/O layer (src/io/, spec in docs/FORMAT.md; fault model in
// docs/FAULTS.md).
//
// Phases, each verified against the in-memory truth:
//
//   1. REFERENCE  run the quenched Metropolis chain uninterrupted in the
//      launcher process, recording every configuration's exact bytes and
//      plaquette.  This is the ground truth all recovery is measured
//      against.
//   2. GENERATE   the same chain in a SUPERVISED worker process that
//      checkpoints every configuration (atomic temp+rename writes).  The
//      launcher watches the worker's exit verdict; when it dies -- e.g.
//      under an injected --kill-sweep / --kill-write fault -- the
//      launcher relaunches it, and the worker resumes from the newest
//      checkpoint that decodes.  Every recovered configuration must be
//      BITWISE identical to the reference chain's.
//   3. RESUME     re-run the last step from the second-to-last checkpoint
//      in-process and check bitwise identity (the classic restart check).
//   4. REDISTRIBUTE over 2-4 real rank processes (socket transport): rank
//      0 loads each stored configuration and scatters it; the ranks write
//      per-rank files + manifest, reload them, and gather back.  An
//      injected rank crash (--crash-rank) gives the survivors typed
//      kPeerExited verdicts and the launcher retries the phase; seeded
//      transient faults (--fault-seed) must be absorbed by the retry
//      policy with no relaunch at all.
//   5. MEASURE    plaquette (every configuration) and the pion correlator
//      (final configuration) on the reloaded fields; every number must
//      equal the in-memory original exactly.
//
// Exit code 0 iff every check passed AND, when a kill/crash knob was
// armed, at least one failure was actually observed and recovered from.
// The CI fault-injection lane runs the kill/recover modes at 2 ranks and
// uploads the rank logs on failure.
//
// Usage: ./examples/ensemble_pipeline [ranks=2] [L=4] [T=8] [nconfigs=2]
//            [dir=ensemble.tmp]
//            [--kill-sweep=N]   SIGKILL the generation worker after its
//                               N-th Metropolis sweep (first launch only)
//            [--kill-write=N]   SIGKILL the generation worker mid-write
//                               of cfg N, between fsync and rename (first
//                               launch only; proves the previous
//                               checkpoint survives a torn write)
//            [--crash-rank=R]   SIGKILL rank R of the distribute phase at
//                               its --crash-op'th send (first launch only)
//            [--crash-op=K]     operation index for --crash-rank (default 1)
//            [--fault-seed=S]   seeded transient delays/spurious EOFs in
//                               the distribute phase, absorbed by retries
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "comms/faults.h"
#include "comms/socket.h"
#include "core/svelat.h"
#include "io/io.h"
#include "qcd/metropolis.h"
#include "qcd/propagator.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string cfg_path(const std::string& dir, int n) {
  return dir + "/cfg" + std::to_string(n) + ".svgf";
}

std::vector<double> measure_pion(const qcd::GaugeField<S>& gauge, double mass,
                                 bool* converged) {
  solver::WilsonSolver<S> solver(
      gauge, mass, solver::SolverParams{}.with_tolerance(1e-8).with_max_iterations(600));
  qcd::Propagator<S> prop(gauge.grid());
  const auto report = qcd::compute_propagator(solver, {0, 0, 0, 0}, prop);
  *converged = report.all_converged();
  return qcd::pion_correlator(prop);
}

qcd::MarkovState fresh_state() {
  qcd::MarkovState state;
  state.params.beta = 5.7;
  state.params.epsilon = 0.24;
  state.params.seed = 515;
  return state;
}

struct FaultKnobs {
  long long kill_sweep = -1;  ///< SIGKILL generation after this many sweeps
  int kill_write = -1;        ///< SIGKILL mid-write of this cfg index
  int crash_rank = -1;        ///< distribute phase: rank to crash
  long long crash_op = 1;     ///< ... at this send index
  std::uint64_t fault_seed = 0;  ///< distribute phase: seeded transients
  bool any_kill() const {
    return kill_sweep >= 0 || kill_write >= 0 || crash_rank >= 0;
  }
};

std::string make_log_dir(const std::string& dir, const std::string& phase,
                         int attempt) {
  const std::string d = dir + "/logs/" + phase + std::to_string(attempt);
  std::filesystem::create_directories(d);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  int positional[4] = {2, 4, 8, 2};
  std::string dir = "ensemble.tmp";
  FaultKnobs knobs;
  int npos = 0;
  bool usage_error = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--kill-sweep=", 0) == 0)
      knobs.kill_sweep = std::atoll(arg.c_str() + 13);
    else if (arg.rfind("--kill-write=", 0) == 0)
      knobs.kill_write = std::atoi(arg.c_str() + 13);
    else if (arg.rfind("--crash-rank=", 0) == 0)
      knobs.crash_rank = std::atoi(arg.c_str() + 13);
    else if (arg.rfind("--crash-op=", 0) == 0)
      knobs.crash_op = std::atoll(arg.c_str() + 11);
    else if (arg.rfind("--fault-seed=", 0) == 0)
      knobs.fault_seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 13));
    else if (arg.rfind("--", 0) == 0)
      usage_error = true;
    else if (npos < 4)
      positional[npos++] = std::atoi(arg.c_str());
    else if (npos++ == 4)
      dir = arg;
    else
      usage_error = true;
  }
  const int ranks = positional[0];
  const int L = positional[1];
  const int T = positional[2];
  const int nconfigs = positional[3];
  if (usage_error || ranks < 1 || ranks > 8 || T % ranks != 0 || nconfigs < 1) {
    std::fprintf(stderr,
                 "usage: %s [ranks] [L] [T] [nconfigs] [dir] [--kill-sweep=N] "
                 "[--kill-write=N] [--crash-rank=R] [--crash-op=K] "
                 "[--fault-seed=S] (T %% ranks == 0)\n",
                 argv[0]);
    return 2;
  }

  sve::set_vector_length(256);
  const lattice::Coordinate dims{L, L, L, T};
  const lattice::Coordinate layout = comms::split_simd_layout(dims, 3, S::Nsimd());
  lattice::GridCartesian grid(dims, layout);
  std::filesystem::create_directories(dir);

  const double mass = 0.4;
  constexpr int kTherm = 2, kGap = 2;
  int observed_failures = 0;

  // --- phase 1: uninterrupted reference chain, in memory --------------------
  std::printf("[reference] %dx%dx%dx%d lattice, %d configurations, dir '%s'\n", L, L,
              L, T, nconfigs, dir.c_str());
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::MarkovState state = fresh_state();
  qcd::advance(gauge, state, kTherm);

  std::vector<std::vector<std::uint8_t>> stored_bytes;  // in-memory originals
  std::vector<double> stored_plaq;
  std::vector<long long> stored_sweeps;
  for (int n = 0; n < nconfigs; ++n) {
    const auto stats = qcd::advance(gauge, state, kGap);
    stored_bytes.push_back(io::encode_gauge(gauge));
    stored_plaq.push_back(qcd::average_plaquette(gauge));
    stored_sweeps.push_back(static_cast<long long>(state.sweeps_done));
    std::printf("  cfg %d: sweeps=%lld plaquette=%+.6f acceptance=%.2f\n", n,
                stored_sweeps.back(), stored_plaq.back(), stats.acceptance);
  }

  // --- phase 2: supervised, checkpointed generation with auto-recovery ------
  // The worker resumes from the newest checkpoint that decodes; the
  // launcher relaunches it on any failure verdict.  Kill knobs are armed
  // on the FIRST launch only, so the relaunch proves recovery.
  std::printf("[generate] supervised worker (kill-sweep=%lld kill-write=%d)\n",
              knobs.kill_sweep, knobs.kill_write);
  const auto generation_worker = [&](bool arm_kill_sweep, bool arm_kill_write) {
    return [&, arm_kill_sweep, arm_kill_write](int, comms::SocketCommunicator&) {
      qcd::GaugeField<S> g(&grid);
      qcd::MarkovState st;
      int next_cfg = -1;
      for (int n = nconfigs - 1; n >= 0 && next_cfg < 0; --n) {
        try {
          // decode_field_file validates everything before the field is
          // touched, so a failed load leaves `g` unmodified.
          st = io::load_checkpoint(cfg_path(dir, n), g);
          next_cfg = n + 1;
          std::printf("worker: recovered from checkpoint cfg%d (sweeps=%lld)\n", n,
                      static_cast<long long>(st.sweeps_done));
        } catch (const io::IoError& e) {
          std::printf("worker: cfg%d unusable: %s\n", n, e.what());
        }
      }
      const auto sweep_once = [&] {
        qcd::advance(g, st, 1);
        if (arm_kill_sweep &&
            static_cast<long long>(st.sweeps_done) == knobs.kill_sweep) {
          std::printf("worker: injected kill after sweep %lld\n", knobs.kill_sweep);
          std::fflush(nullptr);
          ::raise(SIGKILL);
        }
      };
      if (next_cfg < 0) {
        next_cfg = 0;
        qcd::random_gauge(SiteRNG(2018), g);
        st = fresh_state();
        for (int s = 0; s < kTherm; ++s) sweep_once();
      }
      for (int n = next_cfg; n < nconfigs; ++n) {
        for (int s = 0; s < kGap; ++s) sweep_once();
        if (arm_kill_write && n == knobs.kill_write)
          io::set_write_fault_hook(+[] {
            std::printf("worker: injected kill mid-write\n");
            std::fflush(nullptr);
            ::raise(SIGKILL);
          });
        io::save_checkpoint(cfg_path(dir, n), g, st);
        io::set_write_fault_hook(nullptr);
        std::printf("worker: wrote cfg%d (sweeps=%lld)\n", n,
                    static_cast<long long>(st.sweeps_done));
      }
      return 0;
    };
  };
  constexpr int kMaxAttempts = 5;
  for (int attempt = 0;; ++attempt) {
    comms::LaunchOptions opt;
    opt.log_dir = make_log_dir(dir, "gen", attempt);
    const auto report = comms::run_ranks(
        1,
        generation_worker(knobs.kill_sweep >= 0 && attempt == 0,
                          knobs.kill_write >= 0 && attempt == 0),
        opt);
    if (report.ok) break;
    ++observed_failures;
    std::printf("[generate] attempt %d failed: %s\n", attempt,
                report.describe().c_str());
    if (attempt + 1 >= kMaxAttempts) {
      std::printf("\nensemble pipeline: FAIL (generation never recovered)\n");
      return 1;
    }
    std::printf("[generate] relaunching worker to recover from last checkpoint\n");
  }

  // Recovered-or-uninterrupted, every checkpoint must match the reference
  // chain bitwise.
  bool generate_ok = true;
  for (int n = 0; n < nconfigs; ++n) {
    qcd::GaugeField<S> g(&grid);
    try {
      const qcd::MarkovState st = io::load_checkpoint(cfg_path(dir, n), g);
      const bool match =
          io::encode_gauge(g) == stored_bytes[static_cast<std::size_t>(n)] &&
          static_cast<long long>(st.sweeps_done) ==
              stored_sweeps[static_cast<std::size_t>(n)];
      if (!match) generate_ok = false;
      std::printf("  cfg %d: %s\n", n, match ? "bitwise identical to reference"
                                             : "MISMATCH vs reference");
    } catch (const io::IoError& e) {
      generate_ok = false;
      std::printf("  cfg %d: UNREADABLE (%s)\n", n, e.what());
    }
  }

  // --- phase 3: resume from the previous checkpoint -------------------------
  // A fresh process restarting from cfg N-2 (or, for a single-config run,
  // re-running generation) must regenerate cfg N-1 bitwise.
  bool resume_ok = false;
  {
    qcd::GaugeField<S> resumed(&grid);
    qcd::MarkovState rstate;
    if (nconfigs >= 2) {
      rstate = io::load_checkpoint(cfg_path(dir, nconfigs - 2), resumed);
    } else {
      qcd::random_gauge(SiteRNG(2018), resumed);
      rstate = fresh_state();
      qcd::advance(resumed, rstate, kTherm);
    }
    qcd::advance(resumed, rstate, kGap);
    resume_ok = io::encode_gauge(resumed) == stored_bytes.back() &&
                rstate.sweeps_done == state.sweeps_done;
    std::printf("[resume] chain restarted from checkpoint: %s\n",
                resume_ok ? "bitwise identical" : "MISMATCH");
  }

  // --- reference measurement on the in-memory final configuration ----------
  bool ref_converged = false;
  const std::vector<double> ref_corr = measure_pion(gauge, mass, &ref_converged);
  if (!ref_converged) {
    std::printf("FAIL: reference propagator did not converge\n");
    return 1;
  }

  // --- phases 4+5: redistribute over real rank processes and measure --------
  // A --crash-rank fault kills one rank mid-exchange on the first launch;
  // the survivors' typed kPeerExited verdicts end them quickly and the
  // launcher retries the whole phase.  --fault-seed transients must be
  // absorbed by the retry policy within a single launch.
  std::printf("[distribute] reloading %d configs across %d rank processes\n",
              nconfigs, ranks);
  comms::LaunchReport report;
  for (int attempt = 0;; ++attempt) {
    const bool arm_crash = knobs.crash_rank >= 0 && attempt == 0;
    comms::LaunchOptions opt;
    opt.log_dir = make_log_dir(dir, "dist", attempt);
    report = comms::run_ranks(
        ranks,
        [&](int rank, comms::SocketCommunicator& socket_comm) {
          comms::FaultSchedule sched;
          if (knobs.fault_seed != 0)
            sched = comms::FaultSchedule::seeded(knobs.fault_seed, rank);
          if (arm_crash && rank == knobs.crash_rank) {
            comms::FaultEvent crash;
            crash.op = comms::FaultOp::kSend;
            crash.at = static_cast<std::uint64_t>(knobs.crash_op);
            crash.kind = comms::FaultKind::kCrash;
            sched.events.push_back(crash);
          }
          comms::FaultyCommunicator comm(socket_comm, std::move(sched));
          const comms::RankDecomposition decomp(dims, 3, comm.size(), layout);
          for (int n = 0; n < nconfigs; ++n) {
            // Rank 0 reads the stored checkpoint; everyone gets a
            // sub-lattice (the SVMC metadata is ignored by the scatter).
            qcd::GaugeField<S> local(decomp.grid(rank));
            io::load_gauge_root(cfg_path(dir, n), decomp, comm, rank, local);

            // Re-store as per-rank files + manifest, then reload through
            // full manifest/CRC validation.
            const std::string dist_dir = dir + "/cfg" + std::to_string(n) + ".dist";
            io::save_gauge_distributed(dist_dir, decomp, comm, rank, local);
            io::manifest_barrier(comm, rank);
            qcd::GaugeField<S> reloaded(decomp.grid(rank));
            io::load_gauge_distributed(dist_dir, decomp, rank, reloaded);
            if (io::encode_gauge(reloaded) != io::encode_gauge(local)) return 10 + n;

            // Gather to rank 0 and measure against the in-memory original.
            lattice::GridCartesian global_grid(dims, layout);
            qcd::GaugeField<S> global(&global_grid);
            for (int mu = 0; mu < lattice::Nd; ++mu)
              comms::gather_root(decomp, comm, rank, reloaded.U[mu],
                                 rank == 0 ? &global.U[mu] : nullptr);
            if (rank == 0) {
              if (io::encode_gauge(global) != stored_bytes[static_cast<std::size_t>(n)])
                return 20 + n;
              const double plaq = qcd::average_plaquette(global);
              if (plaq != stored_plaq[static_cast<std::size_t>(n)]) return 30 + n;
              std::printf("  rank 0: cfg %d reloaded, plaquette %+.6f matches exactly\n",
                          n, plaq);
              if (n == nconfigs - 1) {
                bool converged = false;
                const auto corr = measure_pion(global, mass, &converged);
                if (!converged || corr != ref_corr) return 40;
                std::printf(
                    "  rank 0: pion correlator (%zu timeslices) matches exactly\n",
                    corr.size());
              }
            }
          }
          if (comm.faults_injected() > 0)
            std::printf("rank %d: absorbed %zu injected transient faults\n", rank,
                        comm.faults_injected());
          return 0;
        },
        opt);
    if (report.ok) break;
    ++observed_failures;
    std::printf("[distribute] attempt %d failed: %s\n", attempt,
                report.describe().c_str());
    if (attempt + 1 >= kMaxAttempts) break;
    std::printf("[distribute] relaunching the phase\n");
  }

  bool ok = generate_ok && resume_ok && report.ok;
  if (!report.ok) std::printf("%s\n", report.describe().c_str());
  if (knobs.any_kill()) {
    std::printf("[faults] armed kill/crash knobs caused %d observed failure(s)\n",
                observed_failures);
    if (observed_failures < 1) {
      std::printf("FAIL: a kill knob was armed but no failure was ever observed\n");
      ok = false;
    }
  }
  std::printf("\nensemble pipeline: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
