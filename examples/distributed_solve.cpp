// Distributed Wilson solve across real OS processes, with compute/comms
// overlap.
//
// A launcher forks one process per rank (full socket mesh, comms/socket.h).
// Rank 0 builds a global gauge configuration and right-hand side and
// scatters them over the wire; every rank constructs the halo-exchanged
// Wilson operator (comms/distributed_wilson.h) over its sub-lattice and
// runs the SAME WilsonSolver facade a single-rank solve uses.  Inside each
// operator application the faces are posted first and the interior swept
// while they are in flight; the per-phase wall clock ("dhop_interior",
// "dhop_wire_wait", "dhop_faces") is printed so the overlap is visible.
//
// The gathered solution is checked bitwise against a single-rank
// WilsonSolver on the gathered fields: the exact ring reductions make the
// distributed iteration sequence -- every alpha, beta and residual --
// identical to the single-rank one, so with an uncompressed wire the
// solutions must match bit for bit.  An fp16 wire perturbs the exchanged
// faces; the solve still converges and is checked to solver tolerance.
//
// Build & run:
//   cmake --build build --target distributed_solve
//   ./build/examples/distributed_solve [ranks=2] [L=4] [T=8] [wire=none|f32|f16]
//                                      [--log-dir=DIR]
//
// Exit code 0 iff every rank process exited cleanly and all checks passed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "comms/distributed_wilson.h"
#include "comms/socket.h"
#include "core/svelat.h"
#include "solver/solver.h"
#include "support/metrics.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

constexpr unsigned kVL = 256;
constexpr int kSplitDim = 3;  // distribute the time extent
constexpr int kSeed = 2018;
constexpr double kMass = 0.25;
constexpr double kTol = 1e-8;

lattice::Coordinate pick_layout(const lattice::Coordinate& dims) {
  return comms::split_simd_layout(dims, kSplitDim, S::Nsimd());
}

void print_region(const char* name) {
  const metrics::RegionStats st = metrics::get(name);
  if (st.calls == 0) return;
  std::printf("  %-16s %6llu calls  %8.1f ms total  %6.1f us/call\n", name,
              static_cast<unsigned long long>(st.calls), st.seconds * 1e3,
              st.seconds / static_cast<double>(st.calls) * 1e6);
}

/// Everything one rank process does: receive its slab, build the
/// overlapped operator, solve, hand the slab back for the global check.
int rank_body(int rank, comms::SocketCommunicator& comm,
              const lattice::Coordinate& dims, comms::Compression mode) {
  sve::set_vector_length(kVL);
  const lattice::Coordinate layout = pick_layout(dims);
  const comms::RankDecomposition decomp(dims, kSplitDim, comm.size(), layout);
  lattice::GridCartesian global_grid(dims, layout);

  // Rank 0 builds the global problem; the wire distributes it.
  std::unique_ptr<Field> global_b;
  std::unique_ptr<qcd::GaugeField<S>> global_gauge;
  if (rank == 0) {
    global_gauge = std::make_unique<qcd::GaugeField<S>>(&global_grid);
    qcd::random_gauge(SiteRNG(kSeed + 1), *global_gauge);
    global_b = std::make_unique<Field>(&global_grid);
    gaussian_fill(SiteRNG(kSeed), *global_b);
    std::printf("rank 0: scattering %lld sites over %d ranks (%lld sites each)\n",
                static_cast<long long>(global_grid.gsites()), comm.size(),
                static_cast<long long>(decomp.grid(0)->gsites()));
  }
  qcd::GaugeField<S> gauge(decomp.grid(rank));
  for (int mu = 0; mu < lattice::Nd; ++mu)
    comms::scatter_root(decomp, comm, rank,
                        rank == 0 ? &global_gauge->U[static_cast<std::size_t>(mu)]
                                  : nullptr,
                        gauge.U[static_cast<std::size_t>(mu)]);
  Field b(decomp.grid(rank));
  comms::scatter_root(decomp, comm, rank, global_b.get(), b);

  // The overlapped operator under the standard solver facade.
  comms::DistributedWilsonDirac<S> op(decomp, comm, rank, gauge, kMass, mode);
  solver::WilsonSolver<S> solver(op, solver::SolverParams{}
                                         .with_algorithm(solver::Algorithm::kCG)
                                         .with_tolerance(kTol)
                                         .with_max_iterations(2000));
  Field x(decomp.grid(rank));
  x.set_zero();
  comm.reset_counters();
  const solver::SolverResult res = solver.solve(b, x);
  std::printf("rank %d: %s  halo bytes=%zu\n", rank, res.summary().c_str(),
              comm.bytes_sent());
  if (!res.converged) return 3;

  // Overlap phases: interior compute vs wire wait vs boundary sweep.
  if (rank == 0) {
    std::printf("rank 0 overlap phases:\n");
    for (const char* region :
         {"dhop_interior", "dhop_wire_wait", "dhop_faces", "cshift_pack", "solve"})
      print_region(region);
  }

  // Gather the solution and check against the single-rank facade.
  std::unique_ptr<Field> gathered;
  if (rank == 0) {
    gathered = std::make_unique<Field>(&global_grid);
    gathered->set_zero();
  }
  comms::gather_root(decomp, comm, rank, x, gathered.get());
  if (rank == 0) {
    solver::WilsonSolver<S> ref_solver(
        *global_gauge, kMass,
        solver::SolverParams{}
            .with_algorithm(solver::Algorithm::kCG)
            .with_preconditioner(solver::Preconditioner::kNone)
            .with_tolerance(kTol)
            .with_max_iterations(2000));
    Field x_ref(&global_grid);
    x_ref.set_zero();
    const solver::SolverResult ref = ref_solver.solve(*global_b, x_ref);
    if (!ref.converged) return 4;
    const double diff2 = norm2(*gathered - x_ref);
    if (mode == comms::Compression::kNone) {
      std::printf("distributed vs single-rank: |dx|^2 = %.3e, iterations %d vs %d  %s\n",
                  diff2, res.iterations, ref.iterations,
                  diff2 == 0.0 && res.iterations == ref.iterations ? "bitwise OK"
                                                                   : "MISMATCH");
      if (diff2 != 0.0 || res.iterations != ref.iterations) return 5;
    } else {
      // The compressed wire solves a slightly different (perturbed)
      // operator: the solutions agree to the wire epsilon amplified by
      // the system's conditioning, not to solver tolerance.
      const double bound = mode == comms::Compression::kF16 ? 1e-3 : 1e-6;
      const double rel = std::sqrt(diff2 / norm2(x_ref));
      std::printf("distributed (%s wire) vs single-rank: rel err %.3e  %s\n",
                  comms::compression_name(mode), rel,
                  rel < bound ? "OK" : "MISMATCH");
      if (rel >= bound) return 5;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 2;
  int L = 4;
  int T = 8;
  comms::Compression mode = comms::Compression::kNone;
  comms::LaunchOptions options;

  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--log-dir=", 0) == 0) {
      options.log_dir = arg.substr(10);
    } else if (arg == "none" || arg == "f32" || arg == "f16") {
      mode = arg == "none" ? comms::Compression::kNone
             : arg == "f32" ? comms::Compression::kF32
                            : comms::Compression::kF16;
    } else {
      const int v = std::atoi(arg.c_str());
      if (v <= 0) {
        std::fprintf(stderr,
                     "usage: %s [ranks] [L] [T] [none|f32|f16] [--log-dir=DIR]\n",
                     argv[0]);
        return 2;
      }
      if (pos == 0) ranks = v;
      else if (pos == 1) L = v;
      else if (pos == 2) T = v;
      ++pos;
    }
  }
  const lattice::Coordinate dims{L, L, L, T};
  if (T % ranks != 0) {
    std::fprintf(stderr, "T=%d must divide evenly over %d ranks\n", T, ranks);
    return 2;
  }

  std::printf("distributed_solve: %d rank processes, %dx%dx%dx%d lattice, %s wire\n",
              ranks, L, L, L, T, comms::compression_name(mode));

  const comms::LaunchReport report = comms::run_ranks(
      ranks,
      [&](int rank, comms::SocketCommunicator& comm) {
        return rank_body(rank, comm, dims, mode);
      },
      options);

  std::printf("%s\n", report.describe().c_str());
  std::printf("%s\n", report.ok ? "PASS" : "FAIL");
  return report.ok ? 0 : 1;
}
