// Quenched gauge generation: Metropolis sweeps of the Wilson plaquette
// action, watching the plaquette thermalize -- then measuring Wilson loops
// and the Polyakov loop on the resulting configuration.
//
// Usage: ./examples/quenched_update [beta=6.0] [sweeps=10]
#include <cstdio>
#include <cstdlib>

#include "core/svelat.h"
#include "qcd/metropolis.h"
#include "qcd/observables.h"

int main(int argc, char** argv) {
  using namespace svelat;
  const double beta = argc > 1 ? std::atof(argv[1]) : 6.0;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 10;

  sve::set_vector_length(256);
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);  // disordered start

  qcd::MetropolisParams params;
  params.beta = beta;
  params.epsilon = 0.24;
  params.hits_per_link = 4;

  std::printf("quenched Metropolis on 4^4, beta = %.2f\n\n", beta);
  std::printf("  sweep   plaquette   acceptance\n");
  std::printf("  %5d   %+.6f   %s\n", 0, qcd::average_plaquette(gauge), "-");
  StopWatch sw;
  for (int sweep = 1; sweep <= sweeps; ++sweep) {
    const auto stats = qcd::metropolis_sweep(gauge, params, sweep);
    std::printf("  %5d   %+.6f   %.2f\n", sweep, qcd::average_plaquette(gauge),
                stats.acceptance);
  }
  std::printf("\n%d sweeps in %.1f s\n\n", sweeps, sw.seconds());

  std::printf("observables on the final configuration:\n");
  std::printf("  W(1,1) = %+.5f   W(1,2) = %+.5f   W(2,2) = %+.5f\n",
              qcd::average_wilson_loop(gauge, 1, 1),
              qcd::average_wilson_loop(gauge, 1, 2),
              qcd::average_wilson_loop(gauge, 2, 2));
  const auto poly = qcd::polyakov_loop(gauge);
  std::printf("  Polyakov loop = %+.5f %+.5fi\n", poly.real(), poly.imag());
  return 0;
}
