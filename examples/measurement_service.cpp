// The measurement service end to end: a persistent job queue fanned over
// real socket-rank workers, with crash injection and exactly-once
// verification (service layer in src/service/, wall-clock metrics in
// src/support/metrics.h).
//
// Phases:
//
//   1. SETUP      build a random gauge configuration, save it as SVGF,
//      and enqueue N propagator-column jobs into a persistent JobQueue.
//   2. REFERENCE  run every job uninterrupted in this process (gauge
//      reloaded through the same SVGF path the workers use) and print
//      metrics::report() -- the dhop and solver-linalg regions must show
//      nonzero GB/s and GFLOP/s.
//   3. SERVICE    run_ranks: rank 0 supervises the queue, ranks 1..R-1
//      serve jobs.  An armed --crash-rank knob SIGKILLs that rank at its
//      --crash-op'th send on the FIRST launch only; the supervisor
//      requeues the dead worker's job onto a survivor, and if the
//      supervisor itself died the relaunch recovers from the queue +
//      results files (claimed jobs requeued, orphaned results pruned).
//      Seeded transients (--fault-seed) must be absorbed by the retry
//      ladder with no relaunch.
//   4. VERIFY     every job completed EXACTLY once (queue all-done, one
//      result record per job id), every correlator is bitwise identical
//      to the reference run's, and -- in metrics-enabled builds -- every
//      worker reported nonzero dhop and linalg rates.
//
// Exit code 0 iff every check passed AND, when a crash knob was armed,
// at least one failure was actually observed and recovered from.
//
// Usage: ./examples/measurement_service [ranks=3] [L=4] [T=8] [njobs=4]
//            [dir=service.tmp]
//            [--crash-rank=R]  SIGKILL rank R at its --crash-op'th send
//                              (first launch only; rank 0 = supervisor)
//            [--crash-op=K]    operation index for --crash-rank (default 1:
//                              a worker dies at its second result send,
//                              i.e. mid-job)
//            [--fault-seed=S]  seeded transient delays/spurious EOFs on
//                              every rank, absorbed by retries
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "comms/faults.h"
#include "comms/socket.h"
#include "core/svelat.h"
#include "io/io.h"
#include "service/scheduler.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string make_log_dir(const std::string& dir, int attempt) {
  const std::string d = dir + "/logs/attempt" + std::to_string(attempt);
  std::filesystem::create_directories(d);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  int positional[4] = {3, 4, 8, 4};
  std::string dir = "service.tmp";
  int crash_rank = -1;
  long long crash_op = 1;
  std::uint64_t fault_seed = 0;
  int npos = 0;
  bool usage_error = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--crash-rank=", 0) == 0)
      crash_rank = std::atoi(arg.c_str() + 13);
    else if (arg.rfind("--crash-op=", 0) == 0)
      crash_op = std::atoll(arg.c_str() + 11);
    else if (arg.rfind("--fault-seed=", 0) == 0)
      fault_seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 13));
    else if (arg.rfind("--", 0) == 0)
      usage_error = true;
    else if (npos < 4)
      positional[npos++] = std::atoi(arg.c_str());
    else if (npos++ == 4)
      dir = arg;
    else
      usage_error = true;
  }
  const int ranks = positional[0];
  const int L = positional[1];
  const int T = positional[2];
  const int njobs = positional[3];
  if (usage_error || ranks < 2 || ranks > 8 || njobs < 1 || crash_rank >= ranks) {
    std::fprintf(stderr,
                 "usage: %s [ranks>=2] [L] [T] [njobs] [dir] [--crash-rank=R] "
                 "[--crash-op=K] [--fault-seed=S]\n",
                 argv[0]);
    return 2;
  }

  sve::set_vector_length(256);
  const lattice::Coordinate dims{L, L, L, T};
  lattice::GridCartesian grid(
      dims, lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string gauge_path = dir + "/cfg0.svgf";
  const std::string queue_path = dir + "/jobs.svjq";
  const std::string results_path = dir + "/results.svjr";

  // --- phase 1: configuration + job queue -----------------------------------
  std::printf("[setup] %dx%dx%dx%d lattice, %d jobs over %d worker rank(s)\n", L, L,
              L, T, njobs, ranks - 1);
  {
    qcd::GaugeField<S> gauge(&grid);
    qcd::random_gauge(SiteRNG(2018), gauge);
    io::save_gauge(gauge_path, gauge);
  }

  std::vector<service::MeasurementJob> jobs;
  service::JobQueue queue(queue_path);
  for (int n = 0; n < njobs; ++n) {
    service::MeasurementJob job;
    job.job_id = static_cast<std::uint64_t>(n + 1);
    job.config_id = 0;
    job.source = {0, 0, 0, 0};
    job.spin = n % qcd::Ns;
    job.colour = (n / qcd::Ns) % qcd::Nc;
    job.mass = 0.4;
    job.tolerance = 1e-8;
    job.max_iterations = 600;
    jobs.push_back(job);
    queue.enqueue(job);
  }

  // --- phase 2: uninterrupted reference run + metrics report ----------------
  // The gauge goes through the same SVGF decode the workers use, and the
  // socket children run force-serial with deterministic reductions, so
  // the service's correlators must match these bitwise.
  std::vector<service::JobResult> reference;
  {
    qcd::GaugeField<S> gauge(&grid);
    io::load_gauge(gauge_path, gauge);
    for (const service::MeasurementJob& job : jobs)
      reference.push_back(service::measure_job(gauge, job));
  }
  bool reference_ok = true;
  for (const service::JobResult& r : reference) {
    std::printf("[reference] job %llu: %s, %u iters, %.3f s\n",
                static_cast<unsigned long long>(r.job_id),
                r.converged ? "converged" : "NOT converged", r.iterations,
                r.wall_seconds);
    reference_ok = reference_ok && r.converged;
  }
  std::printf("\n%s\n", metrics::report().c_str());
  if (metrics::enabled()) {
    const metrics::RegionStats dhop = metrics::get("dhop_eo");
    const metrics::RegionStats linalg = metrics::get("cg_linalg");
    if (dhop.gb_per_sec() <= 0.0 || dhop.gflop_per_sec() <= 0.0 ||
        linalg.gb_per_sec() <= 0.0 || linalg.gflop_per_sec() <= 0.0) {
      std::printf("FAIL: metrics enabled but dhop/linalg rates are zero\n");
      return 1;
    }
    std::printf("[metrics] dhop %.2f GB/s %.2f GFLOP/s, solver linalg %.2f GB/s "
                "%.2f GFLOP/s, %.2f solves/s\n",
                dhop.gb_per_sec(), dhop.gflop_per_sec(), linalg.gb_per_sec(),
                linalg.gflop_per_sec(), metrics::get("solve").calls_per_sec());
  }
  if (!reference_ok) {
    std::printf("FAIL: a reference solve did not converge\n");
    return 1;
  }

  // --- phase 3: the service over real rank processes ------------------------
  service::SchedulerConfig cfg;
  cfg.gauge_path = gauge_path;
  cfg.queue_path = queue_path;
  cfg.results_path = results_path;

  constexpr int kMaxAttempts = 5;
  int observed_failures = 0;
  bool drained = false;
  for (int attempt = 0; attempt < kMaxAttempts && !drained; ++attempt) {
    const bool arm_crash = crash_rank >= 0 && attempt == 0;
    std::printf("[service] launch %d (crash %s)\n", attempt,
                arm_crash ? ("armed on rank " + std::to_string(crash_rank)).c_str()
                          : "not armed");
    comms::LaunchOptions opt;
    opt.recv_timeout_ms = 5000;  // supervisor poll granularity
    opt.log_dir = make_log_dir(dir, attempt);
    const comms::LaunchReport report = comms::run_ranks(
        ranks,
        [&](int rank, comms::SocketCommunicator& socket_comm) {
          comms::FaultSchedule sched;
          if (fault_seed != 0)
            sched = comms::FaultSchedule::seeded(fault_seed, rank);
          if (arm_crash && rank == crash_rank) {
            comms::FaultEvent crash;
            crash.op = comms::FaultOp::kSend;
            crash.at = static_cast<std::uint64_t>(crash_op);
            crash.kind = comms::FaultKind::kCrash;
            sched.events.push_back(crash);
          }
          comms::FaultyCommunicator comm(socket_comm, std::move(sched));
          const int rc = service::scheduler_rank_body<S>(rank, comm, cfg);
          if (comm.faults_injected() > 0)
            std::printf("rank %d: absorbed %zu injected transient fault(s)\n", rank,
                        comm.faults_injected());
          return rc;
        },
        opt);
    // One SIGKILLed worker makes report.ok false even when the supervisor
    // drained the queue around it -- the queue file is the success oracle.
    drained = service::JobQueue::load(queue_path).all_done();
    if (!report.ok) {
      ++observed_failures;
      std::printf("[service] attempt %d: %s\n", attempt, report.describe().c_str());
    }
    if (!drained && attempt + 1 < kMaxAttempts)
      std::printf("[service] queue not drained; relaunching to recover\n");
  }
  if (!drained) {
    std::printf("\nmeasurement service: FAIL (queue never drained)\n");
    return 1;
  }

  // --- phase 4: exactly-once + bitwise verification -------------------------
  bool ok = true;
  const std::vector<service::JobResult> results = service::read_results(results_path);
  std::set<std::uint64_t> seen;
  for (const service::JobResult& r : results)
    if (!seen.insert(r.job_id).second) {
      std::printf("FAIL: job %llu appears more than once in the results file\n",
                  static_cast<unsigned long long>(r.job_id));
      ok = false;
    }
  if (results.size() != jobs.size() || seen.size() != jobs.size()) {
    std::printf("FAIL: %zu result record(s) for %zu job(s)\n", results.size(),
                jobs.size());
    ok = false;
  }
  for (const service::JobResult& r : results) {
    const service::JobResult* ref = nullptr;
    for (const service::JobResult& cand : reference)
      if (cand.job_id == r.job_id) ref = &cand;
    if (ref == nullptr) {
      std::printf("FAIL: result for unknown job %llu\n",
                  static_cast<unsigned long long>(r.job_id));
      ok = false;
      continue;
    }
    const bool bitwise = r.correlator == ref->correlator;
    const bool metrics_ok =
        !metrics::enabled() ||
        (r.dhop_gb_per_sec > 0.0 && r.dhop_gflop_per_sec > 0.0 &&
         r.linalg_gb_per_sec > 0.0 && r.linalg_gflop_per_sec > 0.0);
    std::printf("  job %llu: %s, %u iters, correlator %s, dhop %.2f GB/s %.2f "
                "GFLOP/s, linalg %.2f GB/s %.2f GFLOP/s\n",
                static_cast<unsigned long long>(r.job_id),
                r.converged ? "converged" : "NOT CONVERGED", r.iterations,
                bitwise ? "bitwise identical" : "MISMATCH", r.dhop_gb_per_sec,
                r.dhop_gflop_per_sec, r.linalg_gb_per_sec, r.linalg_gflop_per_sec);
    ok = ok && r.converged && bitwise && r.iterations == ref->iterations && metrics_ok;
    if (!metrics_ok) std::printf("FAIL: job reported zero wall-clock rates\n");
  }
  if (crash_rank >= 0) {
    std::printf("[faults] armed crash knob caused %d observed failure(s)\n",
                observed_failures);
    if (observed_failures < 1) {
      std::printf("FAIL: a crash knob was armed but no failure was ever observed\n");
      ok = false;
    }
  }
  std::printf("\nmeasurement service: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
