// Physics application: a pion two-point function.
//
// The full pipeline the paper's framework exists to accelerate: gauge
// field -> Wilson operator -> 12 preconditioned solves (point-to-all
// propagator) -> meson contraction.  On the free field (unit gauge) the
// correlator must be exactly symmetric around T/2 and the effective mass
// plateaus at the free Wilson pion mass.
//
// One WilsonSolver is constructed up front and reused for all 12
// spin-colour columns, which compute_propagator submits as ONE batched
// solve: the 12 sources ride the site-contiguous multi-RHS block engine
// (solver.solve_batched), so every gauge link streams once per operator
// sweep instead of once per column.  A column that fails to converge is
// reported per column and the program exits cleanly (no assert).
//
// Usage: ./examples/pion_correlator [mass=0.3] [free|random]
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/svelat.h"
#include "qcd/propagator.h"

int main(int argc, char** argv) {
  using namespace svelat;
  const double mass = argc > 1 ? std::atof(argv[1]) : 0.3;
  const bool free_field = !(argc > 2 && std::strcmp(argv[2], "random") == 0);

  sve::set_vector_length(512);
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;

  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  if (free_field) {
    qcd::unit_gauge(gauge);
    std::printf("free field (unit gauge), quark mass %.3f\n", mass);
  } else {
    qcd::random_gauge(SiteRNG(2018), gauge);
    std::printf("random gauge (strong coupling), quark mass %.3f\n", mass);
  }

  // Production defaults (Schur-preconditioned CG on half fields); only the
  // tolerance and iteration cap are spelled out.
  solver::WilsonSolver<S> solver(
      gauge, mass,
      solver::SolverParams{}.with_tolerance(1e-9).with_max_iterations(1000));
  qcd::Propagator<S> prop(&grid);
  StopWatch sw;
  const auto report = qcd::compute_propagator(solver, {0, 0, 0, 0}, prop);
  if (!report.all_converged()) {
    std::printf("propagator solve FAILED to converge:\n");
    for (std::size_t c = 0; c < report.columns.size(); ++c)
      std::printf("  column %2zu (spin %zu, colour %zu): %s\n", c, c / qcd::Nc,
                  c % qcd::Nc, report.columns[c].summary().c_str());
    return 1;
  }
  std::printf(
      "12 propagator solves in %.1f s (%d iterations, worst true residual %.2e, "
      "block width %d)\n\n",
      sw.seconds(), report.total_iterations(), report.worst_true_residual(),
      report.columns.front().block_width);

  const auto corr = qcd::pion_correlator(prop);
  const auto meff = qcd::effective_mass(corr);
  std::printf("  t    C(t)            m_eff(t)\n");
  for (std::size_t t = 0; t < corr.size(); ++t) {
    if (t < meff.size())
      std::printf("  %2zu   %.6e   %+.4f\n", t, corr[t], meff[t]);
    else
      std::printf("  %2zu   %.6e\n", t, corr[t]);
  }

  // Periodicity check: C(t) == C(T-t) on a symmetric lattice.
  const std::size_t T = corr.size();
  double asym = 0;
  for (std::size_t t = 1; t < T / 2; ++t)
    asym = std::max(asym, std::abs(corr[t] - corr[T - t]) / corr[t]);
  std::printf("\ntime-reflection asymmetry: %.2e %s\n", asym,
              asym < 1e-6 ? "(symmetric, as required)" : "");
  return 0;
}
