// Distributed halo exchange across real OS processes.
//
// A launcher forks one process per rank, wired as a full mesh of
// Unix-domain sockets (comms/socket.h).  Rank 0 builds a global lattice
// and scatters it over the wire; every rank then runs halo-exchanged
// nearest-neighbour shifts (both directions, optionally fp16/fp32
// compressed) and a distributed Wilson hopping-term sweep; the results are
// gathered back to rank 0 and checked against the single-rank Cshift /
// dhop.  Uncompressed results must match bitwise; a compressed wire is
// held to the format's epsilon at the rank boundary.
//
// Build & run:
//   cmake --build build --target distributed_cshift
//   ./build/examples/distributed_cshift [ranks=2] [L=4] [T=8] [wire=none|f32|f16]
//                                       [--log-dir=DIR]
//
// Exit code 0 iff every rank process exited cleanly and all checks passed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "comms/distributed.h"
#include "comms/distributed_dhop.h"
#include "comms/socket.h"
#include "core/svelat.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

constexpr unsigned kVL = 256;
constexpr int kSplitDim = 3;  // distribute the time extent
constexpr int kSeed = 2018;

lattice::Coordinate pick_layout(const lattice::Coordinate& dims) {
  return comms::split_simd_layout(dims, kSplitDim, S::Nsimd());
}

double rel_error(const Field& got, const Field& expect) {
  return std::sqrt(norm2(got - expect) / norm2(expect));
}

/// Everything one rank process does.  Deterministic fills mean every rank
/// can rebuild the reference global fields locally for the final check,
/// but the data that is *operated on* travels through the wire collectives
/// (scatter_root / gather_root), exactly as a production job would route
/// it.
int rank_body(int rank, comms::SocketCommunicator& comm,
              const lattice::Coordinate& dims, comms::Compression mode) {
  sve::set_vector_length(kVL);
  const lattice::Coordinate layout = pick_layout(dims);
  const comms::RankDecomposition decomp(dims, kSplitDim, comm.size(), layout);
  lattice::GridCartesian global_grid(dims, layout);

  // --- rank 0 builds the global problem; the wire distributes it --------
  // Only rank 0 ever holds global-volume fields: every other rank's
  // footprint is its 1/N sub-lattice plus halo faces.
  std::unique_ptr<Field> global_psi;
  std::unique_ptr<qcd::GaugeField<S>> global_gauge;
  if (rank == 0) {
    global_psi = std::make_unique<Field>(&global_grid);
    gaussian_fill(SiteRNG(kSeed), *global_psi);
    global_gauge = std::make_unique<qcd::GaugeField<S>>(&global_grid);
    qcd::random_gauge(SiteRNG(kSeed + 1), *global_gauge);
    std::printf("rank 0: scattering %lld sites over %d ranks (%lld sites each)\n",
                static_cast<long long>(global_grid.gsites()), comm.size(),
                static_cast<long long>(decomp.grid(0)->gsites()));
  }
  Field psi(decomp.grid(rank));
  comms::scatter_root(decomp, comm, rank, global_psi.get(), psi);
  qcd::GaugeField<S> gauge(decomp.grid(rank));
  for (int mu = 0; mu < lattice::Nd; ++mu)
    comms::scatter_root(decomp, comm, rank,
                        rank == 0 ? &global_gauge->U[static_cast<std::size_t>(mu)]
                                  : nullptr,
                        gauge.U[static_cast<std::size_t>(mu)]);

  int failures = 0;

  // --- halo-exchanged shifts, both directions ---------------------------
  for (const int disp : {+1, -1}) {
    Field shifted(decomp.grid(rank));
    comm.reset_counters();
    comms::rank_cshift(decomp, comm, rank, psi, shifted, disp, mode);
    const std::size_t face_bytes = comm.bytes_sent();

    std::unique_ptr<Field> gathered;
    if (rank == 0) {
      gathered = std::make_unique<Field>(&global_grid);
      gathered->set_zero();
    }
    comms::gather_root(decomp, comm, rank, shifted, gathered.get());
    if (rank == 0) {
      const Field expect = lattice::Cshift(*global_psi, kSplitDim, disp);
      const double rel = rel_error(*gathered, expect);
      const bool ok = (mode == comms::Compression::kNone) ? rel == 0.0
                                                          : rel < 0x1.0p-10;
      std::printf("cshift disp=%+d  wire=%-4s  face bytes/rank=%zu  rel err=%.3e  %s\n",
                  disp, comms::compression_name(mode), face_bytes, rel,
                  ok ? "OK" : "MISMATCH");
      if (!ok) ++failures;
    }
  }

  // --- distributed Wilson hopping-term sweep (always full precision) ----
  Field dpsi(decomp.grid(rank));
  comm.reset_counters();
  StopWatch sw;
  comms::rank_dhop(decomp, comm, rank, gauge, psi, dpsi);
  const double dhop_ms = sw.milliseconds();
  const std::size_t dhop_bytes = comm.bytes_sent();

  std::unique_ptr<Field> dhop_gathered;
  if (rank == 0) {
    dhop_gathered = std::make_unique<Field>(&global_grid);
    dhop_gathered->set_zero();
  }
  comms::gather_root(decomp, comm, rank, dpsi, dhop_gathered.get());
  if (rank == 0) {
    Field expect(&global_grid);
    qcd::dhop_via_cshift(*global_gauge, *global_psi, expect);
    const double diff = norm2(*dhop_gathered - expect);
    std::printf("dhop  %d ranks    halo bytes/rank=%zu  %.1f ms/rank  %s\n",
                comm.size(), dhop_bytes, dhop_ms,
                diff == 0.0 ? "bitwise OK" : "MISMATCH");
    if (diff != 0.0) ++failures;
  } else {
    std::printf("rank %d: dhop halo bytes=%zu (%.1f ms)\n", rank, dhop_bytes,
                dhop_ms);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 2;
  int L = 4;
  int T = 8;
  comms::Compression mode = comms::Compression::kNone;
  comms::LaunchOptions options;

  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--log-dir=", 0) == 0) {
      options.log_dir = arg.substr(10);
    } else if (arg == "none" || arg == "f32" || arg == "f16") {
      mode = arg == "none" ? comms::Compression::kNone
             : arg == "f32" ? comms::Compression::kF32
                            : comms::Compression::kF16;
    } else {
      const int v = std::atoi(arg.c_str());
      if (v <= 0) {
        std::fprintf(stderr,
                     "usage: %s [ranks] [L] [T] [none|f32|f16] [--log-dir=DIR]\n",
                     argv[0]);
        return 2;
      }
      if (pos == 0) ranks = v;
      else if (pos == 1) L = v;
      else if (pos == 2) T = v;
      ++pos;
    }
  }
  const lattice::Coordinate dims{L, L, L, T};
  if (T % ranks != 0) {
    std::fprintf(stderr, "T=%d must divide evenly over %d ranks\n", T, ranks);
    return 2;
  }

  std::printf("distributed_cshift: %d rank processes, %dx%dx%dx%d lattice, %s wire\n",
              ranks, L, L, L, T, comms::compression_name(mode));

  const comms::LaunchReport report = comms::run_ranks(
      ranks,
      [&](int rank, comms::SocketCommunicator& comm) {
        return rank_body(rank, comm, dims, mode);
      },
      options);

  std::printf("%s\n", report.describe().c_str());
  std::printf("%s\n", report.ok ? "PASS" : "FAIL");
  return report.ok ? 0 : 1;
}
