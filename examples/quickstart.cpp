// Quickstart: the smallest end-to-end tour of the public API.
//
//   1. pick a simulated SVE vector length,
//   2. build a lattice with the matching virtual-node layout (Fig. 1),
//   3. fill fields, apply the Wilson hopping term (Eq. 1),
//   4. solve M x = b with a WilsonSolver (production defaults:
//      Schur-preconditioned CG on half-checkerboard fields),
//   5. look at the dynamic SVE instruction mix that did the work.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/svelat.h"

int main() {
  using namespace svelat;

  // 1. Configure the simulated hardware: a 512-bit SVE machine.
  sve::set_vector_length(512);
  std::printf("%s\n\n", core::runtime_summary().c_str());

  // The SIMD scalar: complex doubles on 512-bit vectors, FCMLA backend.
  // Nsimd() = 4 complex lanes = 4 virtual nodes per vector.
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  std::printf("SIMD type: %u complex lanes per vector (backend: %s)\n", S::Nsimd(),
              simd::SveFcmla::name);

  // 2. A 4^3 x 8 lattice decomposed over the 4 virtual nodes.  (Physics
  // runs use 32^3 x 64 and larger -- paper Sec. II-A -- but the instruction
  // -level simulator makes every SVE lane cost real host cycles, so the
  // example stays small.)
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  std::printf("lattice %s, %lld sites = %lld outer x %u lanes\n",
              lattice::to_string(grid.fdimensions()).c_str(),
              static_cast<long long>(grid.gsites()),
              static_cast<long long>(grid.osites()), grid.isites());

  // 3. Random gauge configuration + source, then one hopping-term apply.
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  std::printf("average plaquette: %+.6f (random links; 1.0 would be free field)\n",
              qcd::average_plaquette(gauge));

  qcd::LatticeFermion<S> b(&grid), x(&grid), dhop_b(&grid);
  gaussian_fill(SiteRNG(1), b);

  const qcd::WilsonDirac<S> dirac(gauge, /*mass=*/0.2);
  sve::CounterScope dhop_insns;
  StopWatch sw;
  dirac.dhop(b, dhop_b);
  const double dhop_ms = sw.milliseconds();
  std::printf(
      "\nDhop (Eq. 1): %.1f ms, %.0f simulated SVE instructions per lattice site\n",
      dhop_ms, static_cast<double>(dhop_insns.delta().total()) / grid.gsites());

  // 4. Solve M x = b through the solver facade.  Default SolverParams are
  // the production path: CG on the even-odd Schur complement, true
  // half-checkerboard fields (half the memory traffic per iteration).
  solver::WilsonSolver<S> solver(gauge, /*mass=*/0.2,
                                 solver::SolverParams{}.with_tolerance(1e-8));
  x.set_zero();
  sw.reset();
  const auto stats = solver.solve(b, x);
  std::printf("%s (%.1f s)\n", stats.summary().c_str(), sw.seconds());

  // 5. Instruction mix of the whole run so far.
  std::printf("\nsimulated instruction mix of this process:\n%s",
              sve::counters().report().c_str());
  return stats.converged ? 0 : 1;
}
