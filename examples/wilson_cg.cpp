// Wilson solver workload: the paper's motivating computation (Sec. II-A) --
// an iterative solve against the Wilson Dirac operator on a random gauge
// background, driven through the WilsonSolver facade.
//
// Usage: ./examples/wilson_cg [L] [T] [mass] [tol] [vl_bits] [alg] [precond]
//   defaults:                  4   8   0.2    1e-8  512       cg    schur
//   alg:     cg | bicgstab | mixed
//   precond: schur | none
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/svelat.h"

namespace {

using namespace svelat;

template <std::size_t VLB>
int run(int L, int T, double mass, const solver::SolverParams& params) {
  using S = simd::SimdComplex<double, VLB, simd::SveFcmla>;

  lattice::GridCartesian grid({L, L, L, T},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  std::printf("lattice %s | VL %zu bit | mass %.3f | %s/%s | tol %.1e\n",
              lattice::to_string(grid.fdimensions()).c_str(), 8 * VLB, mass,
              solver::to_string(params.algorithm),
              solver::to_string(params.preconditioner), params.tolerance);

  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  std::printf("plaquette %.6f\n", qcd::average_plaquette(gauge));

  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(7), b);
  x.set_zero();

  solver::WilsonSolver<S> solver(gauge, mass, params);
  StopWatch sw;
  sve::CounterScope insns;
  const auto stats = solver.solve(b, x);
  const double secs = sw.seconds();

  std::printf("%s in %.2f s\n", stats.summary().c_str(), secs);
  std::printf("|b| %.6e -> |x| %.6e\n", stats.rhs_norm, stats.solution_norm);

  // Rough Dslash work estimate: every outer iteration applies the hopping
  // term to one full lattice volume's worth of sites (two half-volume hops
  // per Schur operator application, two operator applications per step),
  // plus the single-precision inner iterations of a mixed solve.
  const double effective_iters = stats.iterations + stats.inner_iterations;
  const double flops =
      2.0 * qcd::kDhopFlopsPerSite * static_cast<double>(grid.gsites()) * effective_iters;
  std::printf("simulated Dslash work: %.2f MFlop (%.2f MFlop/s wall on the simulator)\n",
              flops / 1e6, flops / 1e6 / secs);
  std::printf("simulated instruction mix:\n%s", insns.delta().report().c_str());

  // Convergence curve (every 10th outer iteration).
  std::printf("\nresidual history (|r|/|b|):\n");
  for (std::size_t i = 0; i < stats.residual_history.size(); i += 10)
    std::printf("  iter %4zu  %.3e\n", i, stats.residual_history[i]);
  return stats.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int L = argc > 1 ? std::atoi(argv[1]) : 4;
  const int T = argc > 2 ? std::atoi(argv[2]) : 8;
  const double mass = argc > 3 ? std::atof(argv[3]) : 0.2;
  const double tol = argc > 4 ? std::atof(argv[4]) : 1e-8;
  const unsigned vl = argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 512;

  solver::SolverParams params;
  params.tolerance = tol;
  params.max_iterations = 2000;
  if (argc > 6) {
    if (std::strcmp(argv[6], "cg") == 0) {
      params.algorithm = solver::Algorithm::kCG;
    } else if (std::strcmp(argv[6], "bicgstab") == 0) {
      params.algorithm = solver::Algorithm::kBiCGSTAB;
    } else if (std::strcmp(argv[6], "mixed") == 0) {
      params.algorithm = solver::Algorithm::kMixedCG;
    } else {
      std::fprintf(stderr, "alg must be cg, bicgstab or mixed\n");
      return 2;
    }
  }
  if (argc > 7) {
    if (std::strcmp(argv[7], "schur") == 0) {
      params.preconditioner = solver::Preconditioner::kSchurEvenOdd;
    } else if (std::strcmp(argv[7], "none") == 0) {
      params.preconditioner = solver::Preconditioner::kNone;
    } else {
      std::fprintf(stderr, "precond must be schur or none\n");
      return 2;
    }
  }

  svelat::sve::set_vector_length(vl);
  switch (vl) {
    case 128: return run<svelat::simd::kVLB128>(L, T, mass, params);
    case 256: return run<svelat::simd::kVLB256>(L, T, mass, params);
    case 512: return run<svelat::simd::kVLB512>(L, T, mass, params);
    default:
      std::fprintf(stderr, "vl_bits must be 128, 256 or 512 (paper Sec. V-B)\n");
      return 2;
  }
}
