// Wilson solver workload: the paper's motivating computation (Sec. II-A) --
// an iterative Conjugate Gradient solve against the Wilson Dirac operator
// on a random gauge background.
//
// Usage: ./examples/wilson_cg [L] [T] [mass] [tol] [vl_bits]
//   defaults:                  4   8   0.2    1e-8  512
#include <cstdio>
#include <cstdlib>

#include "core/svelat.h"

namespace {

template <std::size_t VLB>
int run(int L, int T, double mass, double tol) {
  using namespace svelat;
  using S = simd::SimdComplex<double, VLB, simd::SveFcmla>;

  lattice::GridCartesian grid({L, L, L, T},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  std::printf("lattice %s | VL %zu bit | mass %.3f | tol %.1e\n",
              lattice::to_string(grid.fdimensions()).c_str(), 8 * VLB, mass, tol);

  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  std::printf("plaquette %.6f\n", qcd::average_plaquette(gauge));

  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(7), b);
  x.set_zero();

  const qcd::WilsonDirac<S> dirac(gauge, mass);
  StopWatch sw;
  sve::CounterScope insns;
  const auto stats = solver::solve_wilson(dirac, b, x, tol, 2000);
  const double secs = sw.seconds();

  // One mdag_m is 2 Dhop applications plus site-diagonal work.
  const double flops = 2.0 * qcd::kDhopFlopsPerSite * grid.gsites() * stats.iterations;
  std::printf("%s after %d iterations in %.2f s\n",
              stats.converged ? "converged" : "STOPPED", stats.iterations, secs);
  std::printf("final residual %.3e | true residual %.3e\n", stats.final_residual,
              stats.true_residual);
  std::printf("simulated Dslash work: %.2f MFlop (%.2f MFlop/s wall on the simulator)\n",
              flops / 1e6, flops / 1e6 / secs);
  std::printf("simulated instruction mix:\n%s", insns.delta().report().c_str());

  // Convergence curve (every 10th iteration).
  std::printf("\nresidual history (|r|/|b|):\n");
  for (std::size_t i = 0; i < stats.residual_history.size(); i += 10)
    std::printf("  iter %4zu  %.3e\n", i, stats.residual_history[i]);
  return stats.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int L = argc > 1 ? std::atoi(argv[1]) : 4;
  const int T = argc > 2 ? std::atoi(argv[2]) : 8;
  const double mass = argc > 3 ? std::atof(argv[3]) : 0.2;
  const double tol = argc > 4 ? std::atof(argv[4]) : 1e-8;
  const unsigned vl = argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 512;

  svelat::sve::set_vector_length(vl);
  switch (vl) {
    case 128: return run<svelat::simd::kVLB128>(L, T, mass, tol);
    case 256: return run<svelat::simd::kVLB256>(L, T, mass, tol);
    case 512: return run<svelat::simd::kVLB512>(L, T, mass, tol);
    default:
      std::fprintf(stderr, "vl_bits must be 128, 256 or 512 (paper Sec. V-B)\n");
      return 2;
  }
}
