// Halo-exchange compression demo (paper Sec. V-B: fp16 is used for
// compressing data exchanged over the network).
//
// Packs a fermion-field face, ships it through the simulated communicator
// under each compression mode, and reports wire bytes and the induced
// error -- the bandwidth/precision trade Grid makes on real machines.
#include <cmath>
#include <cstdio>

#include "core/svelat.h"

int main() {
  using namespace svelat;
  sve::set_vector_length(512);
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;

  lattice::GridCartesian grid({8, 8, 8, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::LatticeFermion<S> psi(&grid);
  gaussian_fill(SiteRNG(33), psi);

  std::printf("face exchange of a %s fermion field (face = %d sites x %d complex)\n\n",
              lattice::to_string(grid.fdimensions()).c_str(), 8 * 8 * 8,
              qcd::Ns * qcd::Nc);
  std::printf("  %-6s %12s %10s %14s %14s\n", "mode", "wire bytes", "ratio",
              "max rel err", "rms rel err");

  comms::SimCommunicator comm(2);
  const auto packed = comms::pack_face(psi, 3, 0);
  const double full_bytes = static_cast<double>(packed.size() * sizeof(double));

  for (const auto mode : {comms::Compression::kNone, comms::Compression::kF32,
                          comms::Compression::kF16}) {
    std::size_t wire = 0;
    const auto received = comms::exchange_face(comm, psi, 3, 0, mode, 0, 1, &wire);
    double max_rel = 0, sum_sq = 0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) {
      if (packed[i] == 0.0) continue;
      const double rel = std::abs(received[i] - packed[i]) / std::abs(packed[i]);
      max_rel = std::max(max_rel, rel);
      sum_sq += rel * rel;
      ++counted;
    }
    std::printf("  %-6s %12zu %9.2fx %14.3e %14.3e\n", comms::compression_name(mode),
                wire, full_bytes / static_cast<double>(wire), max_rel,
                std::sqrt(sum_sq / static_cast<double>(counted)));
  }

  std::printf("\ntotal simulated network traffic: %zu bytes\n", comm.bytes_sent());
  return 0;
}
