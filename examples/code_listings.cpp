// Regenerates the assembly-style listings of paper Sec. IV and Sec. V-C
// from the executed intrinsic stream (the tracer renders each simulated
// instruction; register allocation is not modeled).
//
// Usage: ./examples/code_listings [vl_bits=512]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/svelat.h"

namespace {

using namespace svelat;

void show(const char* title, const char* paper_ref, sve::Tracer& tracer) {
  std::printf("--- %s (%s) ---\n%s\n", title, paper_ref, tracer.folded_listing().c_str());
  tracer.clear();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned vl = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 512;
  sve::set_vector_length(vl);
  std::printf("%s\n\n", core::runtime_summary().c_str());

  const std::size_t n = 2 * sve::lanes<double>();  // two vectors worth of doubles
  std::vector<double> x(2 * n, 1.0), y(2 * n, 2.0), z(2 * n);
  std::vector<kernels::cplx> cx(n, {1.0, 0.5}), cy(n, {2.0, -0.25}), cz(n);

  sve::Tracer tracer;
  {
    sve::TraceScope scope(tracer);
    kernels::mult_real_sve(n, x.data(), y.data(), z.data());
  }
  show("mult_real: z[i] = x[i]*y[i], doubles, VLA loop", "Sec. IV-A", tracer);

  {
    sve::TraceScope scope(tracer);
    kernels::mult_cplx_autovec(n, cx.data(), cy.data(), cz.data());
  }
  show("mult_cplx: armclang auto-vectorization strategy (ld2 + real arithmetic)",
       "Sec. IV-B", tracer);

  {
    sve::TraceScope scope(tracer);
    kernels::mult_cplx_acle(n, x.data(), y.data(), z.data());
  }
  show("mult_cplx: ACLE + FCMLA, VLA loop", "Sec. IV-C", tracer);

  {
    sve::TraceScope scope(tracer);
    kernels::mult_cplx_acle_fixed(x.data(), y.data(), z.data());
  }
  show("mult_cplx: ACLE + FCMLA, fixed size (no loop)", "Sec. IV-D", tracer);

  // The MultComplex functor of the SVE-enabled framework (Sec. V-C),
  // in both complex-arithmetic strategies.
  switch (vl) {
    case 128: {
      using F = simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>;
      using R = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
      const F a(1.0, 0.5), b(2.0, -0.25);
      const R c(1.0, 0.5), d(2.0, -0.25);
      {
        sve::TraceScope scope(tracer);
        (void)(a * b);
      }
      show("MultComplex functor, FCMLA backend", "Sec. V-C", tracer);
      {
        sve::TraceScope scope(tracer);
        (void)(c * d);
      }
      show("MultComplex functor, real-arithmetic backend", "Sec. V-E", tracer);
      break;
    }
    case 256: {
      using F = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
      using R = simd::SimdComplex<double, simd::kVLB256, simd::SveReal>;
      const F a(1.0, 0.5), b(2.0, -0.25);
      const R c(1.0, 0.5), d(2.0, -0.25);
      {
        sve::TraceScope scope(tracer);
        (void)(a * b);
      }
      show("MultComplex functor, FCMLA backend", "Sec. V-C", tracer);
      {
        sve::TraceScope scope(tracer);
        (void)(c * d);
      }
      show("MultComplex functor, real-arithmetic backend", "Sec. V-E", tracer);
      break;
    }
    case 512: {
      using F = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
      using R = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
      const F a(1.0, 0.5), b(2.0, -0.25);
      const R c(1.0, 0.5), d(2.0, -0.25);
      {
        sve::TraceScope scope(tracer);
        (void)(a * b);
      }
      show("MultComplex functor, FCMLA backend", "Sec. V-C", tracer);
      {
        sve::TraceScope scope(tracer);
        (void)(c * d);
      }
      show("MultComplex functor, real-arithmetic backend", "Sec. V-E", tracer);
      break;
    }
    default:
      std::printf("(functor listings only available for 128/256/512 bit)\n");
      break;
  }
  return 0;
}
