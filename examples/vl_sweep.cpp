// Vector-length sweep: the Sec. V-D experiment in miniature.
//
// Runs the Wilson hopping term at every (vector length, backend)
// combination the framework ports, confirms all results agree with the
// scalar reference *and* with each other bit-for-bit, and reports
// per-site instruction counts -- showing how wider vectors shrink the
// dynamic instruction stream.  Each port then drives a
// Schur-preconditioned solve through the WilsonSolver facade: the
// iteration count must be layout-independent (reductions use a fixed
// summation tree, so only rounding-level residual differences remain).
#include <cstdio>
#include <vector>

#include "core/svelat.h"

namespace {

using namespace svelat;

struct Row {
  unsigned vl;
  const char* backend;
  double rel_err;
  double insns_per_site;
  double ms;
  int solve_iters;
  bool solve_converged;
};

template <typename S>
Row run(const char* backend_name) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(11), gauge);
  qcd::LatticeFermion<S> psi(&grid), out(&grid), ref(&grid);
  gaussian_fill(SiteRNG(12), psi);

  const qcd::WilsonDirac<S> dirac(gauge, 0.0);
  sve::CounterScope insns;
  StopWatch sw;
  dirac.dhop(psi, out);
  const double ms = sw.milliseconds();
  const double per_site = static_cast<double>(insns.delta().total()) / grid.gsites();

  qcd::dhop_reference(gauge, psi, ref);
  const double rel = norm2(out - ref) / norm2(ref);

  // Solver facade at production defaults (Schur CG on half fields).
  solver::WilsonSolver<S> solver(gauge, /*mass=*/0.2,
                                 solver::SolverParams{}.with_tolerance(1e-8));
  qcd::LatticeFermion<S> x(&grid);
  x.set_zero();
  const auto stats = solver.solve(psi, x);

  return {static_cast<unsigned>(8 * S::vlb), backend_name,     rel,
          per_site,                          ms,               stats.iterations,
          stats.converged};
}

}  // namespace

int main() {
  std::vector<Row> rows;
  rows.push_back(run<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>("generic"));
  rows.push_back(run<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>("generic"));
  rows.push_back(run<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>("generic"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("sve-fcmla"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("sve-fcmla"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("sve-fcmla"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>("sve-real"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>("sve-real"));
  rows.push_back(
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>("sve-real"));

  std::printf("Wilson Dhop + Schur-CG solve on 4^3 x 8, all ports (Sec. V-D sweep):\n\n");
  std::printf("  %-6s %-10s %-14s %-18s %-8s %s\n", "VL", "backend", "rel.err vs ref",
              "SVE insns / site", "wall ms", "solve iters");
  bool all_ok = true;
  for (const auto& r : rows) {
    std::printf("  %-6u %-10s %-14.2e %-18.1f %-8.1f %d%s\n", r.vl, r.backend, r.rel_err,
                r.insns_per_site, r.ms, r.solve_iters, r.solve_converged ? "" : " (!)");
    all_ok = all_ok && r.rel_err < 1e-20 && r.solve_converged &&
             r.solve_iters == rows.front().solve_iters;
  }
  std::printf("\n%s\n", all_ok ? "all ports agree with the scalar reference; solver "
                                 "iteration counts are layout-independent"
                               : "MISMATCH against the scalar reference!");
  return all_ok ? 0 : 1;
}
