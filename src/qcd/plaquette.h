// Average plaquette: the standard gauge observable and a strong layout
// test -- it touches every link, every direction and every boundary
// permute, and must be exactly gauge invariant.
#pragma once

#include "lattice/cshift.h"
#include "qcd/types.h"

namespace svelat::qcd {

/// Mean of Re tr [ U_mu(x) U_nu(x+mu) U_mu^dag(x+nu) U_nu^dag(x) ] / Nc
/// over all sites and the 6 (mu < nu) planes.
template <class S>
double average_plaquette(const GaugeField<S>& g) {
  using namespace lattice;
  const GridCartesian* grid = g.grid();
  double total = 0.0;
  int planes = 0;
  for (int mu = 0; mu < Nd; ++mu) {
    for (int nu = mu + 1; nu < Nd; ++nu) {
      const LatticeColourMatrix<S> u_nu_xpmu = Cshift(g.U[nu], mu, +1);
      const LatticeColourMatrix<S> u_mu_xpnu = Cshift(g.U[mu], nu, +1);
      S acc = S::zero();
      for (std::int64_t o = 0; o < grid->osites(); ++o) {
        const auto staple = g.U[mu][o] * u_nu_xpmu[o] * tensor::adj(u_mu_xpnu[o]) *
                            tensor::adj(g.U[nu][o]);
        acc += tensor::trace(staple);
      }
      total += reduce(acc).real();
      ++planes;
    }
  }
  return total / (static_cast<double>(grid->gsites()) * Nc * planes);
}

}  // namespace svelat::qcd
