#include "qcd/gamma.h"

namespace svelat::qcd {

namespace {
using C = std::complex<double>;
using Mat4 = tensor::iMatrix<C, Ns>;

constexpr C I{0.0, 1.0};

Mat4 from_rows(const C (&rows)[4][4]) {
  Mat4 m;
  for (int i = 0; i < Ns; ++i)
    for (int j = 0; j < Ns; ++j) m(i, j) = rows[i][j];
  return m;
}
}  // namespace

tensor::iMatrix<std::complex<double>, Ns> gamma_matrix(int mu) {
  switch (mu) {
    case 0: {  // gamma_x
      const C rows[4][4] = {{0, 0, 0, I}, {0, 0, I, 0}, {0, -I, 0, 0}, {-I, 0, 0, 0}};
      return from_rows(rows);
    }
    case 1: {  // gamma_y
      const C rows[4][4] = {{0, 0, 0, -1}, {0, 0, 1, 0}, {0, 1, 0, 0}, {-1, 0, 0, 0}};
      return from_rows(rows);
    }
    case 2: {  // gamma_z
      const C rows[4][4] = {{0, 0, I, 0}, {0, 0, 0, -I}, {-I, 0, 0, 0}, {0, I, 0, 0}};
      return from_rows(rows);
    }
    case 3: {  // gamma_t
      const C rows[4][4] = {{0, 0, 1, 0}, {0, 0, 0, 1}, {1, 0, 0, 0}, {0, 1, 0, 0}};
      return from_rows(rows);
    }
    case 4: {  // gamma_5 = gamma_x gamma_y gamma_z gamma_t
      const C rows[4][4] = {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, -1, 0}, {0, 0, 0, -1}};
      return from_rows(rows);
    }
    default: SVELAT_ASSERT_MSG(false, "gamma index must be 0..4");
  }
  return Mat4{};
}

tensor::iMatrix<std::complex<double>, Ns> one_plus_gamma(int mu, int sign) {
  Mat4 m = gamma_matrix(mu);
  if (sign < 0) m = -m;
  for (int i = 0; i < Ns; ++i) m(i, i) += C(1.0, 0.0);
  return m;
}

}  // namespace svelat::qcd
