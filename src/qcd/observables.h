// Gauge observables beyond the plaquette: rectangular Wilson loops and the
// Polyakov loop.  Standard gauge diagnostics; every one is a closed
// product of links, so together they exercise long chains of Cshift-ed
// SU(3) multiplies across all lattice directions -- a heavier layout test
// than the 1x1 plaquette.
#pragma once

#include "lattice/cshift.h"
#include "lattice/local_ops.h"
#include "qcd/types.h"

namespace svelat::qcd {

namespace detail {

/// Ordered product of R links along direction mu starting at each site:
/// L_mu^R(x) = U_mu(x) U_mu(x+mu) ... U_mu(x+(R-1)mu).
template <class S>
LatticeColourMatrix<S> link_line(const GaugeField<S>& g, int mu, int length) {
  LatticeColourMatrix<S> line = g.U[mu];
  LatticeColourMatrix<S> shifted = g.U[mu];
  for (int step = 1; step < length; ++step) {
    shifted = lattice::Cshift(shifted, mu, +1);  // U_mu(x + step*mu)
    lattice::local_mult(line, line, shifted);
  }
  return line;
}

}  // namespace detail

/// Average R x T rectangular Wilson loop in the (mu, nu) plane, normalized
/// to 1 for the free field:
///   W = < Re tr [ L_mu^R(x) L_nu^T(x+R mu) L_mu^R(x+T nu)^dag L_nu^T(x)^dag ] > / Nc.
template <class S>
double wilson_loop(const GaugeField<S>& g, int mu, int nu, int r, int t) {
  SVELAT_ASSERT_MSG(mu != nu, "loop plane needs two distinct directions");
  using namespace lattice;
  const GridCartesian* grid = g.grid();

  LatticeColourMatrix<S> bottom = detail::link_line(g, mu, r);  // x -> x+R mu
  LatticeColourMatrix<S> right = detail::link_line(g, nu, t);   // x -> x+T nu
  // Shift the far sides into place.
  LatticeColourMatrix<S> right_shifted = right;
  for (int step = 0; step < r; ++step) right_shifted = Cshift(right_shifted, mu, +1);
  LatticeColourMatrix<S> top = bottom;
  for (int step = 0; step < t; ++step) top = Cshift(top, nu, +1);

  S acc = S::zero();
  for (std::int64_t o = 0; o < grid->osites(); ++o) {
    const auto loop = bottom[o] * right_shifted[o] * tensor::adj(top[o]) *
                      tensor::adj(right[o]);
    acc += tensor::trace(loop);
  }
  return reduce(acc).real() / (static_cast<double>(grid->gsites()) * Nc);
}

/// Average over all planes of the R x T Wilson loop.
template <class S>
double average_wilson_loop(const GaugeField<S>& g, int r, int t) {
  double sum = 0;
  int planes = 0;
  for (int mu = 0; mu < lattice::Nd; ++mu)
    for (int nu = 0; nu < lattice::Nd; ++nu) {
      if (mu == nu) continue;
      sum += wilson_loop(g, mu, nu, r, t);
      ++planes;
    }
  return sum / planes;
}

/// Volume-averaged Polyakov loop: P = < tr prod_t U_t(x, t) > / Nc.
/// Order parameter of confinement on quenched configurations.
template <class S>
std::complex<double> polyakov_loop(const GaugeField<S>& g) {
  using namespace lattice;
  const GridCartesian* grid = g.grid();
  const int T = grid->fdimensions()[3];
  const LatticeColourMatrix<S> line = detail::link_line(g, 3, T);
  // tr(line) summed over the t=0 slice only (the line is translation
  // invariant in t up to cyclic reordering, which leaves the trace
  // unchanged, so summing all sites and dividing by T is equivalent).
  S acc = S::zero();
  for (std::int64_t o = 0; o < grid->osites(); ++o) acc += tensor::trace(line[o]);
  const std::complex<double> total = reduce(acc);
  return total / (static_cast<double>(grid->gsites()) * Nc);
}

}  // namespace svelat::qcd
