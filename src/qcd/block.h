// Batched multi-RHS Wilson operators over BlockLattice fields.
//
// The propagator workload is many solves against ONE gauge configuration
// (12 spin-colour columns today, thousands of sources at scale), yet a
// sequential solve re-streams every gauge link per right-hand side.  The
// kernels here sweep the stencil once per site and apply each loaded link
// to all N site-contiguous columns of a BlockFermion, so the link traffic
// and neighbour indexing amortize N-fold:
//
//   per-site reals moved:  sequential  N * (216 spinor + 144 link)
//                          batched     N * 216 spinor + 144 link
//
// (216 = 9 spinor accesses x Ns*Nc complex, 144 = 8 link reads x Nc*Nc
// complex.)  The batched regions ("dhop_block", "dhop_eo_block",
// "dhop_oe_block") carry this amortized byte model, so the saving is an
// observable GB/s / bytes-per-solve number in bench_cg --json.
//
// Correctness contract: column j of every batched kernel performs the
// SAME floating-point operations in the SAME order as the sequential
// kernel on that column alone -- neighbour copy, boundary lane
// permutation, half-spinor projection, SU(3) multiply, reconstruction,
// in the same fwd/bwd-per-mu order.  The fusion hooks are exact too:
// the in-register gamma5 on loads/stores reproduces what the separate
// gamma5 field passes would store (a pure sign flip), and the fused
// diagonal update computes the identical a*in + b*acc values the
// separate sweep would.  Batched operator applications are therefore
// bitwise equal to sequential applications per column; only the fused
// pAp reduction of mhat_norm2 regroups a sum (documented there), which
// is how the facade's N=1 bitwise / N>1 eps-bounded contract is met
// (see docs/ARCHITECTURE.md "Multi-RHS block engine").
#pragma once

#include <array>

#include "lattice/block.h"
#include "qcd/even_odd.h"
#include "qcd/wilson.h"

namespace svelat::qcd {

/// N right-hand-side spinor fields, site-contiguous (column j of outer
/// site o at data[o*N + j]).
template <class S, int N>
using BlockFermion = lattice::BlockLattice<SpinColourVector<S>, N>;
template <class S, int N>
using HalfBlockFermion =
    lattice::BlockLattice<SpinColourVector<S>, N, lattice::GridRedBlackCartesian>;

/// Memory-traffic model of one batched dhop site in reals: the 8 link
/// reads are shared by all N columns, the 9 spinor accesses pay per
/// column.
inline constexpr double block_dhop_reals_per_site(int n) {
  return 9.0 * (Ns * Nc * 2) * n + 8.0 * (Nc * Nc * 2);
}

/// out_j = gamma5 in_j for every column.
template <class S, int N, class GridT>
void block_apply_gamma5(const lattice::BlockLattice<SpinColourVector<S>, N, GridT>& in,
                        lattice::BlockLattice<SpinColourVector<S>, N, GridT>& out) {
  thread_for(in.osites(), [&](std::int64_t o) {
    const SpinColourVector<S>* is = in.site(o);
    SpinColourVector<S>* os = out.site(o);
    for (int j = 0; j < N; ++j) os[j] = gamma5(is[j]);
  });
}

namespace detail {

/// One batched site of the hopping term.  The column loop is OUTER and
/// the direction loop inner: each column runs dhop_site's exact
/// arithmetic (neighbour copy, lane permutation, projection, SU(3) mac,
/// reconstruction, in fwd/bwd-per-mu order) with the accumulator live in
/// registers, while the 8 gauge links and stencil entries -- pulled from
/// memory by column 0 -- stay L1-resident for columns 1..N-1, so their
/// cache/DRAM traffic amortizes N-fold.
///
/// Two bitwise-exact fusion hooks eliminate the sequential path's
/// separate field passes (each a full read+write stream in the
/// memory-bound regime):
///  - G5In: applies gamma5 to the neighbour spinor in registers, exactly
///    the values a prior `tmp = gamma5 in` pass would have produced
///    (gamma5 is a sign flip, and sign flips commute bitwise with the
///    lane permutation).
///  - `post(j, acc)` consumes column j's hopping sum in registers -- the
///    hook that fuses the Wilson diagonal and/or an output gamma5 into
///    the same sweep.
template <bool G5In, class S, int N, class BlockT, class TableT, class UFieldT,
          class PostF>
inline void dhop_site_block(const BlockT& in, const TableT& st, const UFieldT* u_fwd,
                            const UFieldT* u_bwd, std::int64_t o, PostF&& post) {
  for (int j = 0; j < N; ++j) {
    SpinColourVector<S> acc = tensor::Zero<SpinColourVector<S>>();
    for (int mu = 0; mu < lattice::Nd; ++mu) {
      {  // forward hop: U_{x,mu} (1 + gamma_mu) psi_{x+mu}
        const auto& e = st.entry(o, mu);
        SpinColourVector<S> v = in.at(e.osite, j);
        if constexpr (G5In) v = gamma5(v);
        if (e.permute != 0) lattice::detail::permute_site(v, e.permute);
        HalfSpinColourVector<S> h = spin_project(mu, +1, v);
        const auto& u = u_fwd[mu][o];
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = u * h(s);
        spin_reconstruct_accum(mu, +1, uh, acc);
      }
      {  // backward hop: U^dag_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}
        const auto& e = st.entry(o, lattice::Nd + mu);
        SpinColourVector<S> v = in.at(e.osite, j);
        if constexpr (G5In) v = gamma5(v);
        if (e.permute != 0) lattice::detail::permute_site(v, e.permute);
        HalfSpinColourVector<S> h = spin_project(mu, -1, v);
        const auto& u = u_bwd[mu][o];
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = tensor::adj_mul(u, h(s));
        spin_reconstruct_accum(mu, -1, uh, acc);
      }
    }
    post(j, acc);
  }
}

}  // namespace detail

/// Batched full-lattice Wilson operator: the multi-RHS view of an
/// existing WilsonDirac (shares its stencil table and double-stored
/// gauge; construction allocates only the two block scratch fields).
template <class S, int N>
class BlockWilsonDirac {
 public:
  using Block = BlockFermion<S, N>;

  explicit BlockWilsonDirac(const WilsonDirac<S>& base)
      : base_(&base),
        tmp_m_(base.grid()),
        bytes_(static_cast<double>(base.grid()->gsites()) *
               block_dhop_reals_per_site(N) * sizeof(typename S::real_type)),
        flops_(kDhopFlopsPerSite * N * static_cast<double>(base.grid()->gsites())) {}

  const lattice::GridCartesian* grid() const { return base_->grid(); }
  double mass() const { return base_->mass(); }

  /// out_j = Dh in_j for all N columns in one stencil sweep.
  void dhop(const Block& in, Block& out) const {
    metrics::ScopedTimer mt("dhop_block", bytes_, flops_);
    thread_for(grid()->osites(), [&](std::int64_t o) {
      SpinColourVector<S>* os = out.site(o);
      detail::dhop_site_block<false, S, N>(
          in, base_->stencil(), base_->u_fwd(), base_->u_bwd(), o,
          [&](int j, const SpinColourVector<S>& acc) { os[j] = acc; });
    });
  }

  /// out_j = (4 + m) in_j - (1/2) Dh in_j, diagonal fused into the hopping
  /// sweep (same per-site values as the sequential dhop-then-combine, one
  /// field pass fewer).
  void m(const Block& in, Block& out) const {
    SVELAT_ASSERT_MSG(&in != &out, "in-place application is not supported");
    metrics::ScopedTimer mt("dhop_block", bytes_, flops_);
    const S diag(static_cast<typename S::real_type>(4.0 + base_->mass()), 0);
    const S mhalf(static_cast<typename S::real_type>(-0.5), 0);
    thread_for(grid()->osites(), [&](std::int64_t o) {
      const SpinColourVector<S>* is = in.site(o);
      SpinColourVector<S>* os = out.site(o);
      detail::dhop_site_block<false, S, N>(
          in, base_->stencil(), base_->u_fwd(), base_->u_bwd(), o,
          [&](int j, const SpinColourVector<S>& acc) {
            os[j] = diag * is[j] + mhalf * acc;
          });
    });
  }

  /// M^dag = gamma5 M gamma5, both gamma5 applications fused into the one
  /// hopping sweep (gamma5 on the neighbour loads, gamma5 + diagonal on
  /// the store) -- zero extra field passes, and the in-register sign
  /// flips reproduce the sequential pass-by-pass values bit for bit.
  void mdag(const Block& in, Block& out) const {
    SVELAT_ASSERT_MSG(&in != &out, "in-place application is not supported");
    metrics::ScopedTimer mt("dhop_block", bytes_, flops_);
    const S diag(static_cast<typename S::real_type>(4.0 + base_->mass()), 0);
    const S mhalf(static_cast<typename S::real_type>(-0.5), 0);
    thread_for(grid()->osites(), [&](std::int64_t o) {
      const SpinColourVector<S>* is = in.site(o);
      SpinColourVector<S>* os = out.site(o);
      detail::dhop_site_block<true, S, N>(
          in, base_->stencil(), base_->u_fwd(), base_->u_bwd(), o,
          [&](int j, const SpinColourVector<S>& acc) {
            os[j] = gamma5(diag * gamma5(is[j]) + mhalf * acc);
          });
    });
  }

  void mdag_m(const Block& in, Block& out) const {
    m(in, tmp_m_);
    mdag(tmp_m_, out);
  }

 private:
  const WilsonDirac<S>* base_;
  mutable Block tmp_m_;  ///< mdag_m intermediate (not thread-safe, as base)
  double bytes_;         ///< amortized wall-clock model per application
  double flops_;
};

/// Batched Schur operator Mhat over even half block fields: the multi-RHS
/// view of an existing SchurEvenOddWilson (shares parity stencils and
/// split gauge through WilsonDiracEO's accessors).
template <class S, int N>
class BlockSchurEvenOddWilson {
 public:
  using HalfBlock = HalfBlockFermion<S, N>;

  explicit BlockSchurEvenOddWilson(const SchurEvenOddWilson<S>& base)
      : base_(&base),
        tmp_odd_(base.odd_grid()),
        tmp_mhat_(base.even_grid()),
        half_bytes_(static_cast<double>(base.even_grid()->full_grid()->gsites()) /
                    2.0 * block_dhop_reals_per_site(N) *
                    sizeof(typename S::real_type)),
        half_flops_(kDhopFlopsPerSite * N *
                    static_cast<double>(base.even_grid()->full_grid()->gsites()) /
                    2.0) {}

  const SchurEvenOddWilson<S>& base() const { return *base_; }
  const lattice::GridRedBlackCartesian* even_grid() const {
    return base_->even_grid();
  }
  const lattice::GridRedBlackCartesian* odd_grid() const { return base_->odd_grid(); }
  double diag() const { return base_->diag(); }

  /// out_o,j = Dh_oe in_e,j for all columns.
  void dhop_oe(const HalfBlock& in_even, HalfBlock& out_odd) const {
    const WilsonDiracEO<S>& k = base_->kernels();
    metrics::ScopedTimer mt("dhop_oe_block", half_bytes_, half_flops_);
    thread_for(odd_grid()->osites(), [&](std::int64_t h) {
      SpinColourVector<S>* os = out_odd.site(h);
      detail::dhop_site_block<false, S, N>(
          in_even, k.st_oe(), k.u_fwd_o(), k.u_bwd_o(), h,
          [&](int j, const SpinColourVector<S>& acc) { os[j] = acc; });
    });
  }

  /// out_e,j = Dh_eo in_o,j for all columns.
  void dhop_eo(const HalfBlock& in_odd, HalfBlock& out_even) const {
    const WilsonDiracEO<S>& k = base_->kernels();
    metrics::ScopedTimer mt("dhop_eo_block", half_bytes_, half_flops_);
    thread_for(even_grid()->osites(), [&](std::int64_t h) {
      SpinColourVector<S>* os = out_even.site(h);
      detail::dhop_site_block<false, S, N>(
          in_odd, k.st_eo(), k.u_fwd_e(), k.u_bwd_e(), h,
          [&](int j, const SpinColourVector<S>& acc) { os[j] = acc; });
    });
  }

  /// Mhat in_j = (4+m) in_j - Dh_eo Dh_oe in_j / (4 (4+m)), diagonal fused
  /// into the second hopping sweep.
  void mhat(const HalfBlock& in, HalfBlock& out) const {
    dhop_oe(in, tmp_odd_);
    mhat_second_sweep</*G5=*/false>(in, out);
  }

  /// Mhat^dag = gamma5 Mhat gamma5, both gamma5 applications fused into
  /// the two hopping sweeps (gamma5 on the neighbour loads of the first,
  /// gamma5 + diagonal on the store of the second) -- zero extra field
  /// passes, and the in-register sign flips reproduce the sequential
  /// pass-by-pass values bit for bit.
  void mhat_dag(const HalfBlock& in, HalfBlock& out) const {
    const WilsonDiracEO<S>& k = base_->kernels();
    {
      metrics::ScopedTimer mt("dhop_oe_block", half_bytes_, half_flops_);
      thread_for(odd_grid()->osites(), [&](std::int64_t h) {
        SpinColourVector<S>* os = tmp_odd_.site(h);
        detail::dhop_site_block<true, S, N>(
            in, k.st_oe(), k.u_fwd_o(), k.u_bwd_o(), h,
            [&](int j, const SpinColourVector<S>& acc) { os[j] = acc; });
      });
    }
    mhat_second_sweep</*G5=*/true>(in, out);
  }

  void mhat_dag_mhat(const HalfBlock& in, HalfBlock& out) const {
    mhat(in, tmp_mhat_);
    mhat_dag(tmp_mhat_, out);
  }

  /// Fused Mhat-and-norm: out_j = Mhat in_j with |out_j|^2 accumulated in
  /// the same sweep.  This is the block CG's pAp term on the normal
  /// equations -- <p, Mhat^dag Mhat p> = |Mhat p|^2 exactly -- computed
  /// for free while the result of the second hopping sweep is still in
  /// registers, saving the separate two-pass innerProduct of the
  /// sequential loop.  NOTE the reduction-order contract: the value
  /// equals the sequential pAp in exact arithmetic but regroups the sum
  /// (per-site |v|^2 through the deterministic chunked tree instead of
  /// innerProduct(p, Ap)), so block solves track sequential ones to
  /// rounding (eps) rather than bitwise.  The chunked tree itself keeps
  /// the result thread-count-invariant and column-independent.
  std::array<double, N> mhat_norm2(const HalfBlock& in, HalfBlock& out) const {
    dhop_oe(in, tmp_odd_);
    const WilsonDiracEO<S>& k = base_->kernels();
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    using Acc = lattice::ColumnArray<S, N>;
    Acc acc = Acc::filled(S::zero());
    {
      metrics::ScopedTimer mt("dhop_eo_block", half_bytes_, half_flops_);
      acc = parallel_reduce(
          even_grid()->osites(), Acc::filled(S::zero()), [&](std::int64_t h) {
            const SpinColourVector<S>* is = in.site(h);
            SpinColourVector<S>* os = out.site(h);
            Acc t;
            detail::dhop_site_block<false, S, N>(
                tmp_odd_, k.st_eo(), k.u_fwd_e(), k.u_bwd_e(), h,
                [&](int j, const SpinColourVector<S>& hop) {
                  const SpinColourVector<S> v = a * is[j] + b * hop;
                  os[j] = v;
                  t.v[j] = tensor::innerProduct(v, v);
                });
            return t;
          });
    }
    std::array<double, N> out_n;
    for (int j = 0; j < N; ++j)
      out_n[static_cast<std::size_t>(j)] = std::real(reduce(acc.v[j]));
    return out_n;
  }

 private:
  /// Shared second sweep of mhat/mhat_dag: out = Dh_eo tmp_odd_ with the
  /// diagonal fused into the store.  With G5 the store computes
  /// gamma5(a gamma5(in) + b acc) -- the fused form of mhat_dag's
  /// gamma5-in/gamma5-out passes (in must then be the PRE-gamma5 input,
  /// whose gamma5 twin already drove the first sweep).
  template <bool G5>
  void mhat_second_sweep(const HalfBlock& in, HalfBlock& out) const {
    const WilsonDiracEO<S>& k = base_->kernels();
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    metrics::ScopedTimer mt("dhop_eo_block", half_bytes_, half_flops_);
    thread_for(even_grid()->osites(), [&](std::int64_t h) {
      const SpinColourVector<S>* is = in.site(h);
      SpinColourVector<S>* os = out.site(h);
      detail::dhop_site_block<false, S, N>(
          tmp_odd_, k.st_eo(), k.u_fwd_e(), k.u_bwd_e(), h,
          [&](int j, const SpinColourVector<S>& acc) {
            if constexpr (G5) {
              os[j] = gamma5(a * gamma5(is[j]) + b * acc);
            } else {
              os[j] = a * is[j] + b * acc;
            }
          });
    });
  }

  const SchurEvenOddWilson<S>* base_;
  // Hot-loop scratch, mirroring SchurEvenOddWilson's (not thread-safe
  // across concurrent applications; the solvers apply sequentially).
  mutable HalfBlock tmp_odd_;
  mutable HalfBlock tmp_mhat_;
  double half_bytes_;  ///< amortized wall-clock model per application
  double half_flops_;
};

/// Half block-field scratch of one batched Schur solve, mirroring
/// SchurWorkspace slot for slot.  Owned by the facade's per-width block
/// engine so repeated batched solves allocate nothing.
template <class S, int N>
struct BlockSchurWorkspace {
  using HalfBlock = HalfBlockFermion<S, N>;

  explicit BlockSchurWorkspace(const BlockSchurEvenOddWilson<S, N>& eo)
      : b_e(eo.even_grid()),
        b_o(eo.odd_grid()),
        b_prime(eo.even_grid()),
        rhs(eo.even_grid()),
        x_e(eo.even_grid()),
        x_o(eo.odd_grid()),
        tmp_e(eo.even_grid()),
        tmp_o(eo.odd_grid()),
        r_e(eo.even_grid()),
        r_o(eo.odd_grid()) {}

  HalfBlock b_e, b_o;    ///< parity split of the right-hand sides
  HalfBlock b_prime;     ///< even-parity Schur right-hand sides
  HalfBlock rhs;         ///< Mhat^dag b' (normal-equation CG target)
  HalfBlock x_e, x_o;    ///< parity pieces of the solutions
  HalfBlock tmp_e, tmp_o;
  HalfBlock r_e, r_o;    ///< true-residual pieces
};

namespace detail {

/// Batched analogue of schur_half_solve: split all N right-hand sides,
/// form the even-parity Schur systems, run `solve_even` (the batched CG)
/// on them, reconstruct odd solutions and per-column full-system true
/// residuals.  Every shared coefficient is column-independent, and every
/// per-column reduction follows the sequential tree, so column j's
/// numbers are bitwise the sequential schur_half_solve's.
template <class S, int N, class SolveEven>
std::array<solver::SolverResult, N> block_schur_half_solve(
    const BlockSchurEvenOddWilson<S, N>& eo, BlockSchurWorkspace<S, N>& ws,
    const BlockFermion<S, N>& b, BlockFermion<S, N>& x, const SolveEven& solve_even) {
  using namespace lattice;
  const GridRedBlackCartesian* ge = eo.even_grid();
  const GridRedBlackCartesian* go = eo.odd_grid();
  const double d = eo.diag();

  pick_checkerboard(b, ws.b_e);
  pick_checkerboard(b, ws.b_o);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  eo.dhop_eo(ws.b_o, ws.tmp_e);
  block_axpy(ws.b_prime, 0.5 / d, ws.tmp_e, ws.b_e);

  // 2. Solve Mhat x_e = b'_e on the even half lattice, all columns.
  ws.x_e.set_zero();
  std::array<solver::SolverResult, N> stats = solve_even(ws.b_prime, ws.x_e);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).
  eo.dhop_oe(ws.x_e, ws.tmp_o);
  block_axpy(ws.x_o, 0.5, ws.tmp_o, ws.b_o);
  {
    const typename BlockFermion<S, N>::simd_type c{
        typename S::scalar_type(1.0 / d, 0.0)};
    thread_for(go->osites(), [&](std::int64_t h) {
      SpinColourVector<S>* xs = ws.x_o.site(h);
      for (int j = 0; j < N; ++j) xs[j] = c * xs[j];
    });
  }

  set_checkerboard(x, ws.x_e);
  set_checkerboard(x, ws.x_o);

  // Per-column true residual of the full system, from half pieces:
  // (M x)_p = (4+m) x_p - (1/2) Dh_{p,1-p} x_{1-p}.
  eo.dhop_eo(ws.x_o, ws.tmp_e);
  const S md(typename S::scalar_type(-d, 0.0));
  const S half_c(typename S::scalar_type(0.5, 0.0));
  thread_for(ge->osites(), [&](std::int64_t h) {
    const SpinColourVector<S>* bs = ws.b_e.site(h);
    const SpinColourVector<S>* xs = ws.x_e.site(h);
    const SpinColourVector<S>* ts = ws.tmp_e.site(h);
    SpinColourVector<S>* rs = ws.r_e.site(h);
    for (int j = 0; j < N; ++j) rs[j] = bs[j] + md * xs[j] + half_c * ts[j];
  });
  eo.dhop_oe(ws.x_e, ws.tmp_o);
  thread_for(go->osites(), [&](std::int64_t h) {
    const SpinColourVector<S>* bs = ws.b_o.site(h);
    const SpinColourVector<S>* xs = ws.x_o.site(h);
    const SpinColourVector<S>* ts = ws.tmp_o.site(h);
    SpinColourVector<S>* rs = ws.r_o.site(h);
    for (int j = 0; j < N; ++j) rs[j] = bs[j] + md * xs[j] + half_c * ts[j];
  });
  const std::array<double, N> be2 = block_norm2(ws.b_e);
  const std::array<double, N> bo2 = block_norm2(ws.b_o);
  const std::array<double, N> re2 = block_norm2(ws.r_e);
  const std::array<double, N> ro2 = block_norm2(ws.r_o);
  for (int j = 0; j < N; ++j) {
    const auto u = static_cast<std::size_t>(j);
    const double b2 = be2[u] + bo2[u];
    stats[u].true_residual = std::sqrt((re2[u] + ro2[u]) / b2);
    stats[u].rhs_norm = std::sqrt(b2);
  }
  return stats;
}

}  // namespace detail

}  // namespace svelat::qcd
