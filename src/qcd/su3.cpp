#include "qcd/su3.h"

#include <cmath>

namespace svelat::qcd {

namespace {
using C = std::complex<double>;

C dot_row(const ScalarColourMatrix& m, int r1, int r2) {
  C acc{};
  for (int c = 0; c < Nc; ++c) acc += std::conj(m(r1, c)) * m(r2, c);
  return acc;
}

double row_norm(const ScalarColourMatrix& m, int r) {
  double acc = 0;
  for (int c = 0; c < Nc; ++c) acc += std::norm(m(r, c));
  return std::sqrt(acc);
}
}  // namespace

C determinant(const ScalarColourMatrix& m) {
  return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
         m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
         m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

ScalarColourMatrix project_su3(const ScalarColourMatrix& in) {
  ScalarColourMatrix m = in;
  // Gram-Schmidt on rows 0 and 1.
  double n0 = row_norm(m, 0);
  for (int c = 0; c < Nc; ++c) m(0, c) /= n0;
  const C proj = dot_row(m, 0, 1);
  for (int c = 0; c < Nc; ++c) m(1, c) -= proj * m(0, c);
  const double n1 = row_norm(m, 1);
  for (int c = 0; c < Nc; ++c) m(1, c) /= n1;
  // Row 2 = conj(row0 x row1): unitary AND det = +1 by construction.
  m(2, 0) = std::conj(m(0, 1) * m(1, 2) - m(0, 2) * m(1, 1));
  m(2, 1) = std::conj(m(0, 2) * m(1, 0) - m(0, 0) * m(1, 2));
  m(2, 2) = std::conj(m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0));
  return m;
}

double unitarity_error(const ScalarColourMatrix& m) {
  double err = 0;
  for (int i = 0; i < Nc; ++i) {
    for (int j = 0; j < Nc; ++j) {
      C acc{};
      for (int k = 0; k < Nc; ++k) acc += m(i, k) * std::conj(m(j, k));
      const C expect = (i == j) ? C(1, 0) : C(0, 0);
      err = std::max(err, std::abs(acc - expect));
    }
  }
  return err;
}

ScalarColourMatrix random_su3(const SiteRNG& rng, std::uint64_t key,
                              std::uint64_t slot_base) {
  ScalarColourMatrix m;
  std::uint64_t slot = slot_base;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) {
      m(i, j) = C(rng.gaussian(key, slot), rng.gaussian(key, slot + 1));
      slot += 2;
    }
  return project_su3(m);
}

}  // namespace svelat::qcd
