// Even-odd (red-black) preconditioning of the Wilson operator.
//
// Writing sites by parity p(x) = (x+y+z+t) mod 2, the Wilson matrix is
//
//        M = [ Mee  Meo ]     Mee = Moo = (4+m) * 1
//            [ Moe  Moo ]     Meo/Moe = -1/2 Dh restricted to e<-o / o<-e
//
// and the Schur complement on the even sublattice,
//
//        Mhat = Mee - Meo Moo^{-1} Moe
//             = (4+m) - Dh_eo Dh_oe / (4 (4+m)),
//
// halves the solve dimension and improves conditioning -- the standard
// production solver structure in Grid and every other LQCD code (the
// "iterative solvers" of paper Sec. II-A are e/o-preconditioned CG).
//
// The production implementation lives here: SchurEvenOddWilson on true
// half-checkerboard fields (lattice/red_black.h) with the
// parity-restricted kernels dhop_eo/dhop_oe (qcd/wilson.h) -- half the
// memory footprint and half the per-iteration traffic/instructions of a
// zero-padded formulation.  Physics code drives it through the
// solver::WilsonSolver facade (solver/solver.h); the historical
// zero-padded EvenOddWilson path survives only as a test oracle
// (tests/qcd/padded_oracle.h), against which the half kernels are bitwise
// checked site by site (test_even_odd HalfKernelMatchesZeroPadded*).
#pragma once

#include "qcd/gamma.h"
#include "qcd/wilson.h"
#include "solver/result.h"

namespace svelat::qcd {

/// Site parity bookkeeping for a grid whose virtual-node blocks are
/// parity-uniform (all lanes of an outer site share one parity).
class Checkerboard {
 public:
  explicit Checkerboard(const lattice::GridCartesian* grid) : grid_(grid) {
    lattice::assert_parity_uniform_layout(*grid);
    parity_.resize(static_cast<std::size_t>(grid->osites()));
    thread_for(grid->osites(), [&](std::int64_t o) {
      parity_[static_cast<std::size_t>(o)] =
          static_cast<std::uint8_t>(lattice::outer_site_parity(*grid, o));
    });
  }

  int parity(std::int64_t osite) const {
    return parity_[static_cast<std::size_t>(osite)];
  }
  const lattice::GridCartesian* grid() const { return grid_; }

  /// Zero all sites of the given parity.
  template <class vobj>
  void project_out(lattice::Lattice<vobj>& f, int parity_to_clear) const {
    thread_for(grid_->osites(), [&](std::int64_t o) {
      if (parity(o) == parity_to_clear) tensor::zeroit(f[o]);
    });
  }

 private:
  const lattice::GridCartesian* grid_;
  std::vector<std::uint8_t> parity_;
};

/// Schur operator Mhat on the even half lattice, built on the
/// parity-restricted kernels.  All operands are half-volume fields: one
/// mhat application does the dhop work of exactly one full-lattice dhop
/// (two half-volume hops) instead of the two full-volume dhops (half of
/// them dead sites) the zero-padded oracle executes.
template <class S>
class SchurEvenOddWilson {
 public:
  using HalfFermion = HalfLatticeFermion<S>;

  SchurEvenOddWilson(const GaugeField<S>& gauge, double mass)
      : kernels_(gauge, mass),
        tmp_odd_(kernels_.odd_grid()),
        tmp_g5_(kernels_.even_grid()),
        tmp_mhat_(kernels_.even_grid()) {}

  const WilsonDiracEO<S>& kernels() const { return kernels_; }
  const lattice::GridRedBlackCartesian* even_grid() const {
    return kernels_.even_grid();
  }
  const lattice::GridRedBlackCartesian* odd_grid() const { return kernels_.odd_grid(); }
  double diag() const { return 4.0 + kernels_.mass(); }

  /// Mhat x_e = (4+m) x_e - Dh_eo Dh_oe x_e / (4 (4+m)), on even half fields.
  void mhat(const HalfFermion& in, HalfFermion& out) const {
    kernels_.dhop_oe(in, tmp_odd_);   // tmp_o = Dh_oe in_e
    kernels_.dhop_eo(tmp_odd_, out);  // out_e = Dh_eo tmp_o
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    thread_for(out.osites(), [&](std::int64_t h) { out[h] = a * in[h] + b * out[h]; });
  }

  /// Mhat^dag via gamma5-hermiticity (gamma5 is site-local: parity-safe).
  void mhat_dag(const HalfFermion& in, HalfFermion& out) const {
    apply_gamma5(in, tmp_g5_);
    mhat(tmp_g5_, out);
    apply_gamma5(out, out);
  }

  void mhat_dag_mhat(const HalfFermion& in, HalfFermion& out) const {
    mhat(in, tmp_mhat_);
    mhat_dag(tmp_mhat_, out);
  }

 private:
  WilsonDiracEO<S> kernels_;
  // Hot-loop workspaces: mhat/mhat_dag/mhat_dag_mhat run once (or more)
  // per solver iteration; member buffers avoid a half-field allocation +
  // zero-fill per application.  Distinct buffers because mhat_dag_mhat's
  // intermediate stays live across the nested mhat_dag -> mhat chain.
  // Not thread-safe across concurrent applications of one operator --
  // the solvers apply it from the sequential outer loop only.
  mutable HalfFermion tmp_odd_;
  mutable HalfFermion tmp_g5_;
  mutable HalfFermion tmp_mhat_;
};

/// Half-field scratch buffers of one Schur-preconditioned solve.
/// Constructed once per SchurEvenOddWilson lifetime (e.g. owned by a
/// solver::WilsonSolver) so repeated solves -- the 12 spin-colour columns
/// of a propagator -- reuse the allocations instead of paying nine
/// half-field constructions per right-hand side.
template <class S>
struct SchurWorkspace {
  using HalfFermion = HalfLatticeFermion<S>;

  explicit SchurWorkspace(const SchurEvenOddWilson<S>& eo)
      : b_e(eo.even_grid()),
        b_o(eo.odd_grid()),
        b_prime(eo.even_grid()),
        rhs(eo.even_grid()),
        x_e(eo.even_grid()),
        x_o(eo.odd_grid()),
        tmp_e(eo.even_grid()),
        tmp_o(eo.odd_grid()),
        r_e(eo.even_grid()),
        r_o(eo.odd_grid()) {}

  HalfFermion b_e, b_o;    ///< parity split of the right-hand side
  HalfFermion b_prime;     ///< even-parity Schur right-hand side
  HalfFermion rhs;         ///< Mhat^dag b' (normal-equation CG target)
  HalfFermion x_e, x_o;    ///< parity pieces of the solution
  HalfFermion tmp_e, tmp_o;
  HalfFermion r_e, r_o;    ///< true-residual pieces
};

namespace detail {

/// Shared prologue/epilogue of the half-field Schur solves.  Splits b,
/// forms the even-parity right-hand side b'_e, runs `solve_even` on it,
/// reconstructs the odd solution and the full-system true residual --
/// everything on half-volume fields (the full operator is never applied).
/// `ws` supplies every half-field temporary, so repeated solves through
/// one workspace allocate nothing.
template <class S, class SolveEven>
solver::SolverResult schur_half_solve(const SchurEvenOddWilson<S>& eo,
                                      SchurWorkspace<S>& ws, const LatticeFermion<S>& b,
                                      LatticeFermion<S>& x, const SolveEven& solve_even) {
  const lattice::GridRedBlackCartesian* ge = eo.even_grid();
  const lattice::GridRedBlackCartesian* go = eo.odd_grid();
  const WilsonDiracEO<S>& dh = eo.kernels();
  const double d = eo.diag();

  lattice::pick_checkerboard(b, ws.b_e);
  lattice::pick_checkerboard(b, ws.b_o);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  dh.dhop_eo(ws.b_o, ws.tmp_e);
  axpy(ws.b_prime, 0.5 / d, ws.tmp_e, ws.b_e);

  // 2. Solve Mhat x_e = b'_e on the even half lattice.
  ws.x_e.set_zero();
  solver::SolverResult stats = solve_even(ws.b_prime, ws.x_e);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).  In-place scale: the
  // scalar-multiply operator would allocate a temporary field.
  dh.dhop_oe(ws.x_e, ws.tmp_o);
  axpy(ws.x_o, 0.5, ws.tmp_o, ws.b_o);
  const S inv_d(typename S::scalar_type(1.0 / d, 0.0));
  thread_for(go->osites(), [&](std::int64_t h) {
    ws.x_o[h] = inv_d * ws.x_o[h];
  });

  lattice::set_checkerboard(x, ws.x_e);
  lattice::set_checkerboard(x, ws.x_o);

  // True residual of the full system, from half-volume pieces only:
  // (M x)_p = (4+m) x_p - (1/2) Dh_{p,1-p} x_{1-p}.
  dh.dhop_eo(ws.x_o, ws.tmp_e);
  const S md(typename S::scalar_type(-d, 0.0));
  const S half_c(typename S::scalar_type(0.5, 0.0));
  thread_for(ge->osites(), [&](std::int64_t h) {
    ws.r_e[h] = ws.b_e[h] + md * ws.x_e[h] + half_c * ws.tmp_e[h];
  });
  dh.dhop_oe(ws.x_e, ws.tmp_o);
  thread_for(go->osites(), [&](std::int64_t h) {
    ws.r_o[h] = ws.b_o[h] + md * ws.x_o[h] + half_c * ws.tmp_o[h];
  });
  const double b2 = norm2(ws.b_e) + norm2(ws.b_o);
  stats.true_residual = std::sqrt((norm2(ws.r_e) + norm2(ws.r_o)) / b2);
  stats.rhs_norm = std::sqrt(b2);
  return stats;
}

}  // namespace detail

}  // namespace svelat::qcd
