// Even-odd (red-black) preconditioning of the Wilson operator.
//
// Writing sites by parity p(x) = (x+y+z+t) mod 2, the Wilson matrix is
//
//        M = [ Mee  Meo ]     Mee = Moo = (4+m) * 1
//            [ Moe  Moo ]     Meo/Moe = -1/2 Dh restricted to e<-o / o<-e
//
// and the Schur complement on the even sublattice,
//
//        Mhat = Mee - Meo Moo^{-1} Moe
//             = (4+m) - Dh_eo Dh_oe / (4 (4+m)),
//
// halves the solve dimension and improves conditioning -- the standard
// production solver structure in Grid and every other LQCD code (the
// "iterative solvers" of paper Sec. II-A are e/o-preconditioned CG).
//
// Simplification vs Grid: fields stay full-lattice-sized and the inactive
// parity is kept at zero, instead of introducing half-sized checkerboard
// grids.  This costs 2x memory on solver temporaries but leaves every
// layout/permute code path identical to the unpreconditioned operator,
// which is what the SVE port exercises.
#pragma once

#include "qcd/gamma.h"
#include "qcd/wilson.h"
#include "solver/cg.h"

namespace svelat::qcd {

/// Site parity bookkeeping for a grid whose virtual-node blocks are
/// parity-uniform (all lanes of an outer site share one parity).
class Checkerboard {
 public:
  explicit Checkerboard(const lattice::GridCartesian* grid) : grid_(grid) {
    // Lanes of one outer site differ by multiples of the block extents;
    // parity is lane-uniform iff every decomposed block extent is even.
    for (int mu = 0; mu < lattice::Nd; ++mu) {
      if (grid->simd_layout()[mu] > 1) {
        SVELAT_ASSERT_MSG(grid->rdimensions()[mu] % 2 == 0,
                          "even-odd needs parity-uniform virtual-node blocks "
                          "(even block extents in decomposed dimensions)");
      }
    }
    parity_.resize(static_cast<std::size_t>(grid->osites()));
    for (std::int64_t o = 0; o < grid->osites(); ++o) {
      const lattice::Coordinate x = grid->global_coor(o, 0);
      parity_[static_cast<std::size_t>(o)] =
          static_cast<std::uint8_t>((x[0] + x[1] + x[2] + x[3]) & 1);
    }
  }

  int parity(std::int64_t osite) const { return parity_[static_cast<std::size_t>(osite)]; }
  const lattice::GridCartesian* grid() const { return grid_; }

  /// Zero all sites of the given parity.
  template <class vobj>
  void project_out(lattice::Lattice<vobj>& f, int parity_to_clear) const {
    for (std::int64_t o = 0; o < grid_->osites(); ++o)
      if (parity(o) == parity_to_clear) tensor::zeroit(f[o]);
  }

 private:
  const lattice::GridCartesian* grid_;
  std::vector<std::uint8_t> parity_;
};

/// Even-odd decomposed Wilson operator and its Schur complement.
template <class S>
class EvenOddWilson {
 public:
  using Fermion = LatticeFermion<S>;
  static constexpr int kEven = 0;
  static constexpr int kOdd = 1;

  EvenOddWilson(const GaugeField<S>& gauge, double mass)
      : dirac_(gauge, mass), cb_(gauge.grid()), mass_(mass) {}

  const WilsonDirac<S>& full_operator() const { return dirac_; }
  const Checkerboard& checkerboard() const { return cb_; }
  double diag() const { return 4.0 + mass_; }

  /// Hopping term restricted to target parity: out_p = Dh in (sites of
  /// parity p written; the opposite parity of out is zeroed).
  void dhop_parity(const Fermion& in, Fermion& out, int parity) const {
    dirac_.dhop(in, out);
    cb_.project_out(out, 1 - parity);
  }

  /// Schur operator on the even sublattice:
  ///   Mhat x_e = (4+m) x_e - Dh_eo Dh_oe x_e / (4 (4+m)).
  void mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    dhop_parity(in, tmp, kOdd);   // tmp_o = Dh_oe in_e
    dhop_parity(tmp, out, kEven);  // out_e = Dh_eo tmp_o
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    for (std::int64_t o = 0; o < cb_.grid()->osites(); ++o)
      out[o] = a * in[o] + b * out[o];
    cb_.project_out(out, kOdd);
  }

  /// Mhat^dag via gamma5-hermiticity (gamma5 commutes with parity).
  void mhat_dag(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    WilsonDirac<S>::apply_gamma5(in, tmp);
    mhat(tmp, out);
    WilsonDirac<S>::apply_gamma5(out, out);
  }

  void mhat_dag_mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    mhat(in, tmp);
    mhat_dag(tmp, out);
  }

 private:
  WilsonDirac<S> dirac_;
  Checkerboard cb_;
  double mass_;
};

/// Schur-preconditioned solve of M x = b:
///   1.  b'_e = b_e - Meo Moo^{-1} b_o
///   2.  solve Mhat x_e = b'_e   (CG on Mhat^dag Mhat)
///   3.  x_o = Moo^{-1} (b_o - Moe x_e)
template <class S>
solver::SolverStats solve_wilson_schur(const EvenOddWilson<S>& eo,
                                       const LatticeFermion<S>& b, LatticeFermion<S>& x,
                                       double tolerance, int max_iterations) {
  using Fermion = LatticeFermion<S>;
  const Checkerboard& cb = eo.checkerboard();
  const lattice::GridCartesian* grid = cb.grid();
  const double d = eo.diag();

  // Split b by parity.
  Fermion b_e = b, b_o = b;
  cb.project_out(b_e, EvenOddWilson<S>::kOdd);
  cb.project_out(b_o, EvenOddWilson<S>::kEven);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  Fermion tmp(grid), b_prime(grid);
  eo.dhop_parity(b_o, tmp, EvenOddWilson<S>::kEven);
  axpy(b_prime, 0.5 / d, tmp, b_e);
  cb.project_out(b_prime, EvenOddWilson<S>::kOdd);

  // 2. Normal-equation CG on the even sublattice.
  Fermion rhs(grid);
  eo.mhat_dag(b_prime, rhs);
  Fermion x_e(grid);
  x_e.set_zero();
  auto op = [&eo](const Fermion& in, Fermion& out) { eo.mhat_dag_mhat(in, out); };
  solver::SolverStats stats =
      solver::conjugate_gradient(op, rhs, x_e, tolerance, max_iterations);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).
  eo.dhop_parity(x_e, tmp, EvenOddWilson<S>::kOdd);
  Fermion x_o(grid);
  axpy(x_o, 0.5, tmp, b_o);
  x_o = (1.0 / d) * x_o;
  cb.project_out(x_o, EvenOddWilson<S>::kEven);

  x = x_e + x_o;

  // True residual of the *full* system.
  Fermion mx(grid), r(grid);
  eo.full_operator().m(x, mx);
  r = b - mx;
  stats.true_residual = std::sqrt(norm2(r) / norm2(b));
  return stats;
}

}  // namespace svelat::qcd
