// Even-odd (red-black) preconditioning of the Wilson operator.
//
// Writing sites by parity p(x) = (x+y+z+t) mod 2, the Wilson matrix is
//
//        M = [ Mee  Meo ]     Mee = Moo = (4+m) * 1
//            [ Moe  Moo ]     Meo/Moe = -1/2 Dh restricted to e<-o / o<-e
//
// and the Schur complement on the even sublattice,
//
//        Mhat = Mee - Meo Moo^{-1} Moe
//             = (4+m) - Dh_eo Dh_oe / (4 (4+m)),
//
// halves the solve dimension and improves conditioning -- the standard
// production solver structure in Grid and every other LQCD code (the
// "iterative solvers" of paper Sec. II-A are e/o-preconditioned CG).
//
// Two implementations of the Schur solve live here:
//
//  * EvenOddWilson / solve_wilson_schur -- the original reference path:
//    fields stay full-lattice-sized and the inactive parity is kept at
//    zero.  Costs 2x memory and ~2x flops/bandwidth on solver temporaries
//    (every dhop/axpy/norm sweeps dead sites), but leaves every
//    layout/permute code path identical to the unpreconditioned operator.
//
//  * SchurEvenOddWilson / solve_wilson_schur_half -- the production path:
//    true half-checkerboard fields (lattice/red_black.h) with the
//    parity-restricted kernels dhop_eo/dhop_oe (qcd/wilson.h).  Half the
//    memory footprint and half the per-iteration traffic/instructions;
//    bitwise the same per-site arithmetic, so the two paths agree exactly
//    (see test_even_odd HalfKernelMatchesZeroPadded*).
#pragma once

#include "qcd/gamma.h"
#include "qcd/wilson.h"
#include "solver/cg.h"

namespace svelat::qcd {

/// Site parity bookkeeping for a grid whose virtual-node blocks are
/// parity-uniform (all lanes of an outer site share one parity).
class Checkerboard {
 public:
  explicit Checkerboard(const lattice::GridCartesian* grid) : grid_(grid) {
    lattice::assert_parity_uniform_layout(*grid);
    parity_.resize(static_cast<std::size_t>(grid->osites()));
    thread_for(grid->osites(), [&](std::int64_t o) {
      parity_[static_cast<std::size_t>(o)] =
          static_cast<std::uint8_t>(lattice::outer_site_parity(*grid, o));
    });
  }

  int parity(std::int64_t osite) const {
    return parity_[static_cast<std::size_t>(osite)];
  }
  const lattice::GridCartesian* grid() const { return grid_; }

  /// Zero all sites of the given parity.
  template <class vobj>
  void project_out(lattice::Lattice<vobj>& f, int parity_to_clear) const {
    thread_for(grid_->osites(), [&](std::int64_t o) {
      if (parity(o) == parity_to_clear) tensor::zeroit(f[o]);
    });
  }

 private:
  const lattice::GridCartesian* grid_;
  std::vector<std::uint8_t> parity_;
};

/// Even-odd decomposed Wilson operator and its Schur complement.
template <class S>
class EvenOddWilson {
 public:
  using Fermion = LatticeFermion<S>;
  static constexpr int kEven = 0;
  static constexpr int kOdd = 1;

  EvenOddWilson(const GaugeField<S>& gauge, double mass)
      : dirac_(gauge, mass), cb_(gauge.grid()), mass_(mass) {}

  const WilsonDirac<S>& full_operator() const { return dirac_; }
  const Checkerboard& checkerboard() const { return cb_; }
  double diag() const { return 4.0 + mass_; }

  /// Hopping term restricted to target parity: out_p = Dh in (sites of
  /// parity p written; the opposite parity of out is zeroed).
  void dhop_parity(const Fermion& in, Fermion& out, int parity) const {
    dirac_.dhop(in, out);
    cb_.project_out(out, 1 - parity);
  }

  /// Schur operator on the even sublattice:
  ///   Mhat x_e = (4+m) x_e - Dh_eo Dh_oe x_e / (4 (4+m)).
  void mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    dhop_parity(in, tmp, kOdd);   // tmp_o = Dh_oe in_e
    dhop_parity(tmp, out, kEven);  // out_e = Dh_eo tmp_o
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    thread_for(cb_.grid()->osites(),
               [&](std::int64_t o) { out[o] = a * in[o] + b * out[o]; });
    cb_.project_out(out, kOdd);
  }

  /// Mhat^dag via gamma5-hermiticity (gamma5 commutes with parity).
  void mhat_dag(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    WilsonDirac<S>::apply_gamma5(in, tmp);
    mhat(tmp, out);
    WilsonDirac<S>::apply_gamma5(out, out);
  }

  void mhat_dag_mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    mhat(in, tmp);
    mhat_dag(tmp, out);
  }

 private:
  WilsonDirac<S> dirac_;
  Checkerboard cb_;
  double mass_;
};

/// Schur-preconditioned solve of M x = b:
///   1.  b'_e = b_e - Meo Moo^{-1} b_o
///   2.  solve Mhat x_e = b'_e   (CG on Mhat^dag Mhat)
///   3.  x_o = Moo^{-1} (b_o - Moe x_e)
template <class S>
solver::SolverStats solve_wilson_schur(const EvenOddWilson<S>& eo,
                                       const LatticeFermion<S>& b, LatticeFermion<S>& x,
                                       double tolerance, int max_iterations) {
  using Fermion = LatticeFermion<S>;
  const Checkerboard& cb = eo.checkerboard();
  const lattice::GridCartesian* grid = cb.grid();
  const double d = eo.diag();

  // Split b by parity.
  Fermion b_e = b, b_o = b;
  cb.project_out(b_e, EvenOddWilson<S>::kOdd);
  cb.project_out(b_o, EvenOddWilson<S>::kEven);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  Fermion tmp(grid), b_prime(grid);
  eo.dhop_parity(b_o, tmp, EvenOddWilson<S>::kEven);
  axpy(b_prime, 0.5 / d, tmp, b_e);
  cb.project_out(b_prime, EvenOddWilson<S>::kOdd);

  // 2. Normal-equation CG on the even sublattice.
  Fermion rhs(grid);
  eo.mhat_dag(b_prime, rhs);
  Fermion x_e(grid);
  x_e.set_zero();
  auto op = [&eo](const Fermion& in, Fermion& out) { eo.mhat_dag_mhat(in, out); };
  solver::SolverStats stats =
      solver::conjugate_gradient(op, rhs, x_e, tolerance, max_iterations);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).
  eo.dhop_parity(x_e, tmp, EvenOddWilson<S>::kOdd);
  Fermion x_o(grid);
  axpy(x_o, 0.5, tmp, b_o);
  x_o = (1.0 / d) * x_o;
  cb.project_out(x_o, EvenOddWilson<S>::kEven);

  x = x_e + x_o;

  // True residual of the *full* system.
  Fermion mx(grid), r(grid);
  eo.full_operator().m(x, mx);
  r = b - mx;
  stats.true_residual = std::sqrt(norm2(r) / norm2(b));
  return stats;
}

// ---------------------------------------------------------------------------
// Production path: Schur complement on true half-checkerboard fields.
// ---------------------------------------------------------------------------

/// Schur operator Mhat on the even half lattice, built on the
/// parity-restricted kernels.  All operands are half-volume fields: one
/// mhat application does the dhop work of exactly one full-lattice dhop
/// (two half-volume hops) instead of the two full-volume dhops (half of
/// them dead sites) the zero-padded path executes.
template <class S>
class SchurEvenOddWilson {
 public:
  using HalfFermion = HalfLatticeFermion<S>;

  SchurEvenOddWilson(const GaugeField<S>& gauge, double mass)
      : kernels_(gauge, mass),
        tmp_odd_(kernels_.odd_grid()),
        tmp_g5_(kernels_.even_grid()),
        tmp_mhat_(kernels_.even_grid()) {}

  const WilsonDiracEO<S>& kernels() const { return kernels_; }
  const lattice::GridRedBlackCartesian* even_grid() const {
    return kernels_.even_grid();
  }
  const lattice::GridRedBlackCartesian* odd_grid() const { return kernels_.odd_grid(); }
  double diag() const { return 4.0 + kernels_.mass(); }

  /// Mhat x_e = (4+m) x_e - Dh_eo Dh_oe x_e / (4 (4+m)), on even half fields.
  void mhat(const HalfFermion& in, HalfFermion& out) const {
    kernels_.dhop_oe(in, tmp_odd_);   // tmp_o = Dh_oe in_e
    kernels_.dhop_eo(tmp_odd_, out);  // out_e = Dh_eo tmp_o
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    thread_for(out.osites(), [&](std::int64_t h) { out[h] = a * in[h] + b * out[h]; });
  }

  /// Mhat^dag via gamma5-hermiticity (gamma5 is site-local: parity-safe).
  void mhat_dag(const HalfFermion& in, HalfFermion& out) const {
    apply_gamma5(in, tmp_g5_);
    mhat(tmp_g5_, out);
    apply_gamma5(out, out);
  }

  void mhat_dag_mhat(const HalfFermion& in, HalfFermion& out) const {
    mhat(in, tmp_mhat_);
    mhat_dag(tmp_mhat_, out);
  }

 private:
  WilsonDiracEO<S> kernels_;
  // Hot-loop workspaces: mhat/mhat_dag/mhat_dag_mhat run once (or more)
  // per solver iteration; member buffers avoid a half-field allocation +
  // zero-fill per application.  Distinct buffers because mhat_dag_mhat's
  // intermediate stays live across the nested mhat_dag -> mhat chain.
  // Not thread-safe across concurrent applications of one operator --
  // the solvers apply it from the sequential outer loop only.
  mutable HalfFermion tmp_odd_;
  mutable HalfFermion tmp_g5_;
  mutable HalfFermion tmp_mhat_;
};

namespace detail {

/// Shared prologue/epilogue of the half-field Schur solves.  Splits b,
/// forms the even-parity right-hand side b'_e, runs `solve_even` on it,
/// reconstructs the odd solution and the full-system true residual --
/// everything on half-volume fields (the full operator is never applied).
template <class S, class SolveEven>
solver::SolverStats schur_half_solve(const SchurEvenOddWilson<S>& eo,
                                     const LatticeFermion<S>& b, LatticeFermion<S>& x,
                                     const SolveEven& solve_even) {
  using HalfFermion = HalfLatticeFermion<S>;
  const lattice::GridRedBlackCartesian* ge = eo.even_grid();
  const lattice::GridRedBlackCartesian* go = eo.odd_grid();
  const WilsonDiracEO<S>& dh = eo.kernels();
  const double d = eo.diag();

  HalfFermion b_e(ge), b_o(go);
  lattice::pick_checkerboard(b, b_e);
  lattice::pick_checkerboard(b, b_o);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  HalfFermion tmp_e(ge), b_prime(ge);
  dh.dhop_eo(b_o, tmp_e);
  axpy(b_prime, 0.5 / d, tmp_e, b_e);

  // 2. Solve Mhat x_e = b'_e on the even half lattice.
  HalfFermion x_e(ge);
  x_e.set_zero();
  solver::SolverStats stats = solve_even(b_prime, x_e);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).
  HalfFermion tmp_o(go), x_o(go);
  dh.dhop_oe(x_e, tmp_o);
  axpy(x_o, 0.5, tmp_o, b_o);
  x_o = (1.0 / d) * x_o;

  lattice::set_checkerboard(x, x_e);
  lattice::set_checkerboard(x, x_o);

  // True residual of the full system, from half-volume pieces only:
  // (M x)_p = (4+m) x_p - (1/2) Dh_{p,1-p} x_{1-p}.
  dh.dhop_eo(x_o, tmp_e);
  HalfFermion r_e(ge), r_o(go);
  const S md(typename S::scalar_type(-d, 0.0));
  const S half_c(typename S::scalar_type(0.5, 0.0));
  thread_for(ge->osites(), [&](std::int64_t h) {
    r_e[h] = b_e[h] + md * x_e[h] + half_c * tmp_e[h];
  });
  dh.dhop_oe(x_e, tmp_o);
  thread_for(go->osites(), [&](std::int64_t h) {
    r_o[h] = b_o[h] + md * x_o[h] + half_c * tmp_o[h];
  });
  stats.true_residual =
      std::sqrt((norm2(r_e) + norm2(r_o)) / (norm2(b_e) + norm2(b_o)));
  return stats;
}

}  // namespace detail

/// Schur-preconditioned solve of M x = b on half-checkerboard fields:
///   1.  b'_e = b_e - Meo Moo^{-1} b_o
///   2.  solve Mhat x_e = b'_e   (CG on Mhat^dag Mhat, half-volume)
///   3.  x_o = Moo^{-1} (b_o - Moe x_e)
/// Same algorithm as solve_wilson_schur, at half the memory and half the
/// per-iteration instruction count.
template <class S>
solver::SolverStats solve_wilson_schur_half(const SchurEvenOddWilson<S>& eo,
                                            const LatticeFermion<S>& b,
                                            LatticeFermion<S>& x, double tolerance,
                                            int max_iterations) {
  using HalfFermion = HalfLatticeFermion<S>;
  return detail::schur_half_solve(
      eo, b, x, [&](const HalfFermion& rhs_prime, HalfFermion& x_e) {
        HalfFermion rhs(eo.even_grid());
        eo.mhat_dag(rhs_prime, rhs);
        const auto op = [&eo](const HalfFermion& in, HalfFermion& out) {
          eo.mhat_dag_mhat(in, out);
        };
        return solver::conjugate_gradient(op, rhs, x_e, tolerance, max_iterations);
      });
}

}  // namespace svelat::qcd
