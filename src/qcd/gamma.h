// Dirac gamma matrices and spin projection.
//
// Basis: DeGrand-Rossi (chiral), the basis QDP/Chroma and Grid use.  The
// hopping term (paper Eq. (1)) applies (1 +/- gamma_mu) to the neighbour
// spinors; these projectors have rank two, so the product collapses to a
// half spinor of two colour vectors -- halving the SU(3) multiplications
// (the classic Wilson "spin projection trick").  The explicit 4x4 matrices
// are exposed for reference implementations and tests.
#pragma once

#include <complex>

#include "qcd/types.h"
#include "support/assert.h"
#include "tensor/tensor.h"

namespace svelat::qcd {

/// gamma_mu (mu = 0..3) as an explicit 4x4 complex matrix; mu = 4 yields
/// gamma_5 = gamma_0 gamma_1 gamma_2 gamma_3.
tensor::iMatrix<std::complex<double>, Ns> gamma_matrix(int mu);

/// (1 + sign*gamma_mu) as an explicit 4x4 matrix.
tensor::iMatrix<std::complex<double>, Ns> one_plus_gamma(int mu, int sign);

// ---------------------------------------------------------------------------
// Spin projection: h = P^{sign}_mu psi collapses 4 spins to 2.
// Using the DeGrand-Rossi matrices:
//   mu=0 (x): h0 = p0 + s*i p3   h1 = p1 + s*i p2
//   mu=1 (y): h0 = p0 - s*p3     h1 = p1 + s*p2
//   mu=2 (z): h0 = p0 + s*i p2   h1 = p1 - s*i p3
//   mu=3 (t): h0 = p0 + s*p2     h1 = p1 + s*p3
// ---------------------------------------------------------------------------
template <class S>
inline HalfSpinColourVector<S> spin_project(int mu, int sign,
                                            const SpinColourVector<S>& p) {
  SVELAT_DEBUG_ASSERT(sign == 1 || sign == -1);
  HalfSpinColourVector<S> h;
  const bool plus = sign > 0;
  switch (mu) {
    case 0:
      h(0) = plus ? p(0) + timesI(p(3)) : p(0) - timesI(p(3));
      h(1) = plus ? p(1) + timesI(p(2)) : p(1) - timesI(p(2));
      break;
    case 1:
      h(0) = plus ? p(0) - p(3) : p(0) + p(3);
      h(1) = plus ? p(1) + p(2) : p(1) - p(2);
      break;
    case 2:
      h(0) = plus ? p(0) + timesI(p(2)) : p(0) - timesI(p(2));
      h(1) = plus ? p(1) - timesI(p(3)) : p(1) + timesI(p(3));
      break;
    case 3:
      h(0) = plus ? p(0) + p(2) : p(0) - p(2);
      h(1) = plus ? p(1) + p(3) : p(1) - p(3);
      break;
    default: SVELAT_ASSERT_MSG(false, "mu must be 0..3");
  }
  return h;
}

// ---------------------------------------------------------------------------
// Spin reconstruction: expand the (colour-rotated) half spinor back to four
// spins, r = R^{sign}_mu h, such that R P == (1 + sign*gamma_mu):
//   mu=0: r2 = -s*i h1   r3 = -s*i h0
//   mu=1: r2 =  s*h1     r3 = -s*h0
//   mu=2: r2 = -s*i h0   r3 =  s*i h1
//   mu=3: r2 =  s*h0     r3 =  s*h1
// with r0 = h0, r1 = h1 always.
// ---------------------------------------------------------------------------
template <class S>
inline SpinColourVector<S> spin_reconstruct(int mu, int sign,
                                            const HalfSpinColourVector<S>& h) {
  SpinColourVector<S> r;
  r(0) = h(0);
  r(1) = h(1);
  const bool plus = sign > 0;
  switch (mu) {
    case 0:
      r(2) = plus ? timesMinusI(h(1)) : timesI(h(1));
      r(3) = plus ? timesMinusI(h(0)) : timesI(h(0));
      break;
    case 1:
      r(2) = plus ? h(1) : -h(1);
      r(3) = plus ? -h(0) : h(0);
      break;
    case 2:
      r(2) = plus ? timesMinusI(h(0)) : timesI(h(0));
      r(3) = plus ? timesI(h(1)) : timesMinusI(h(1));
      break;
    case 3:
      r(2) = plus ? h(0) : -h(0);
      r(3) = plus ? h(1) : -h(1);
      break;
    default: SVELAT_ASSERT_MSG(false, "mu must be 0..3");
  }
  return r;
}

/// Accumulating reconstruction: out += R^{sign}_mu h (saves the temporary in
/// the Dhop inner loop).
template <class S>
inline void spin_reconstruct_accum(int mu, int sign, const HalfSpinColourVector<S>& h,
                                   SpinColourVector<S>& out) {
  out(0) += h(0);
  out(1) += h(1);
  const bool plus = sign > 0;
  switch (mu) {
    case 0:
      out(2) += plus ? timesMinusI(h(1)) : timesI(h(1));
      out(3) += plus ? timesMinusI(h(0)) : timesI(h(0));
      break;
    case 1:
      if (plus) {
        out(2) += h(1);
        out(3) -= h(0);
      } else {
        out(2) -= h(1);
        out(3) += h(0);
      }
      break;
    case 2:
      out(2) += plus ? timesMinusI(h(0)) : timesI(h(0));
      out(3) += plus ? timesI(h(1)) : timesMinusI(h(1));
      break;
    case 3:
      if (plus) {
        out(2) += h(0);
        out(3) += h(1);
      } else {
        out(2) -= h(0);
        out(3) -= h(1);
      }
      break;
    default: SVELAT_ASSERT_MSG(false, "mu must be 0..3");
  }
}

/// gamma_5 multiplication: in the DeGrand-Rossi basis gamma_5 =
/// diag(1, 1, -1, -1).
template <class S>
inline SpinColourVector<S> gamma5(const SpinColourVector<S>& p) {
  SpinColourVector<S> r;
  r(0) = p(0);
  r(1) = p(1);
  r(2) = -p(2);
  r(3) = -p(3);
  return r;
}

/// gamma_mu multiplication (mu = 0..3; mu = 4 is gamma_5), using the
/// explicit sparse structure of the DeGrand-Rossi matrices -- the
/// building block for meson contractions and operator tests.
template <class S>
inline SpinColourVector<S> mult_gamma(int mu, const SpinColourVector<S>& p) {
  SpinColourVector<S> r;
  switch (mu) {
    case 0:  // (i p3, i p2, -i p1, -i p0)
      r(0) = timesI(p(3));
      r(1) = timesI(p(2));
      r(2) = timesMinusI(p(1));
      r(3) = timesMinusI(p(0));
      break;
    case 1:  // (-p3, p2, p1, -p0)
      r(0) = -p(3);
      r(1) = p(2);
      r(2) = p(1);
      r(3) = -p(0);
      break;
    case 2:  // (i p2, -i p3, -i p0, i p1)
      r(0) = timesI(p(2));
      r(1) = timesMinusI(p(3));
      r(2) = timesMinusI(p(0));
      r(3) = timesI(p(1));
      break;
    case 3:  // (p2, p3, p0, p1)
      r(0) = p(2);
      r(1) = p(3);
      r(2) = p(0);
      r(3) = p(1);
      break;
    case 4: return gamma5(p);
    default: SVELAT_ASSERT_MSG(false, "gamma index must be 0..4");
  }
  return r;
}

/// Field-level gamma multiplication.
template <class S>
inline void mult_gamma(int mu, const LatticeFermion<S>& in, LatticeFermion<S>& out) {
  for (std::int64_t o = 0; o < in.osites(); ++o) out[o] = mult_gamma(mu, in[o]);
}

}  // namespace svelat::qcd
