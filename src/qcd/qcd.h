// Umbrella header for the QCD layer.
#pragma once

#include "qcd/gamma.h"      // IWYU pragma: export
#include "qcd/plaquette.h"  // IWYU pragma: export
#include "qcd/su3.h"        // IWYU pragma: export
#include "qcd/types.h"      // IWYU pragma: export
#include "qcd/wilson.h"     // IWYU pragma: export
