// Quark propagators and meson correlators.
//
// The physics application the paper's framework ultimately serves: solve
// M G = delta-source for all 12 (spin, colour) source components, then
// contract the point-to-all propagator into hadron two-point functions.
// The pion correlator is the simplest contraction: with gamma_5
// interpolators its value is the sum over |G|^2 components, time-slice by
// time-slice, and decays as cosh(m_pi (t - T/2)) on a periodic lattice.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "qcd/wilson.h"
#include "solver/solver.h"

namespace svelat::qcd {

/// Point source: delta at `origin` in the given (spin, colour) component.
template <class S>
void point_source(LatticeFermion<S>& src, const lattice::Coordinate& origin, int spin,
                  int colour) {
  using sobj = typename LatticeFermion<S>::scalar_object;
  src.set_zero();
  sobj s = tensor::Zero<sobj>();
  s(spin)(colour) = std::complex<typename S::real_type>(1, 0);
  src.poke(origin, s);
}

/// Point-to-all propagator: the 12 solution vectors of M G = delta, indexed
/// by source component [spin * Nc + colour].
template <class S>
struct Propagator {
  explicit Propagator(const lattice::GridCartesian* grid)
      : columns(static_cast<std::size_t>(Ns * Nc), LatticeFermion<S>(grid)) {}

  LatticeFermion<S>& column(int spin, int colour) {
    return columns[static_cast<std::size_t>(spin * Nc + colour)];
  }
  const LatticeFermion<S>& column(int spin, int colour) const {
    return columns[static_cast<std::size_t>(spin * Nc + colour)];
  }

  std::vector<LatticeFermion<S>> columns;
};

/// Per-column outcome of a propagator computation: one SolverResult for
/// each of the 12 (spin, colour) sources, indexed like Propagator columns.
/// Non-convergence is reported here -- a stalled column sets its
/// `converged` flag false; nothing asserts -- so physics drivers can
/// print a diagnosis and exit cleanly.
struct PropagatorReport {
  std::vector<solver::SolverResult> columns;

  bool all_converged() const {
    return std::all_of(columns.begin(), columns.end(),
                       [](const solver::SolverResult& r) { return r.converged; });
  }
  double worst_true_residual() const {
    double worst = 0.0;
    for (const auto& r : columns) worst = std::max(worst, r.true_residual);
    return worst;
  }
  int total_iterations() const {
    int total = 0;
    for (const auto& r : columns) total += r.iterations;
    return total;
  }
};

/// Compute the propagator from `origin` through the solver's batched
/// multi-RHS entry: the 12 spin-colour sources go down
/// WilsonSolver::solve_batched in kBlockWidth-wide chunks, so the gauge
/// links stream ONCE per operator sweep for all columns instead of once
/// per column (qcd/block.h).  Configurations the block engine does not
/// cover fall back to per-column sequential solves inside solve_batched;
/// the PropagatorReport contract is unchanged either way.
template <class S>
PropagatorReport compute_propagator(solver::WilsonSolver<S>& solver,
                                    const lattice::Coordinate& origin,
                                    Propagator<S>& prop) {
  const lattice::GridCartesian* grid = solver.grid();
  std::vector<LatticeFermion<S>> sources;
  sources.reserve(static_cast<std::size_t>(Ns * Nc));
  for (int spin = 0; spin < Ns; ++spin) {
    for (int colour = 0; colour < Nc; ++colour) {
      sources.emplace_back(grid);
      point_source(sources.back(), origin, spin, colour);
      prop.column(spin, colour).set_zero();
    }
  }
  PropagatorReport report;
  report.columns = solver.solve_batched(sources, prop.columns);
  return report;
}

/// Precomputed osite/lane -> global time slice map.  The contraction
/// loops used to call grid->global_coor() per lane per site per column
/// (a full coordinate decode, 12x repeated); building the table once
/// reduces that to an int32 load.
class TimesliceTable {
 public:
  explicit TimesliceTable(const lattice::GridCartesian* grid)
      : grid_(grid),
        T_(grid->fdimensions()[3]),
        isites_(grid->isites()),
        t_(static_cast<std::size_t>(grid->osites()) * grid->isites()) {
    thread_for(grid->osites(), [&](std::int64_t o) {
      for (unsigned l = 0; l < isites_; ++l)
        t_[static_cast<std::size_t>(o) * isites_ + l] =
            static_cast<std::int32_t>(grid_->global_coor(o, l)[3]);
    });
  }

  const lattice::GridCartesian* grid() const { return grid_; }
  int time_extent() const { return T_; }
  unsigned isites() const { return isites_; }
  /// The isites() time coordinates of outer site o.
  const std::int32_t* row(std::int64_t o) const {
    return t_.data() + static_cast<std::size_t>(o) * isites_;
  }

 private:
  const lattice::GridCartesian* grid_;
  int T_;
  unsigned isites_;
  AlignedVector<std::int32_t> t_;
};

/// Per-time-slice |x|^2: the pion-contraction kernel for one propagator
/// column.  Parallel over fixed 64-site chunks with a serial in-chunk
/// order and a fixed chunk-order final sum -- the same deterministic
/// grouping discipline as support/parallel.h's parallel_reduce, so the
/// result is bitwise thread-count-invariant (it DOES regroup the sum
/// relative to the old serial loop, which is eps-level on the
/// correlator).
template <class S>
std::vector<double> timeslice_norm2(const TimesliceTable& table,
                                    const LatticeFermion<S>& x) {
  const lattice::GridCartesian* grid = x.grid();
  SVELAT_ASSERT_MSG(*grid == *table.grid(),
                    "time-slice table was built for a different grid");
  const int T = table.time_extent();
  constexpr std::int64_t kChunk = 64;
  const std::int64_t chunks = (grid->osites() + kChunk - 1) / kChunk;
  std::vector<std::vector<double>> partial(static_cast<std::size_t>(chunks));
  thread_for(chunks, [&](std::int64_t c) {
    std::vector<double>& acc = partial[static_cast<std::size_t>(c)];
    acc.assign(static_cast<std::size_t>(T), 0.0);
    const std::int64_t end = std::min((c + 1) * kChunk, grid->osites());
    for (std::int64_t o = c * kChunk; o < end; ++o) {
      // |x[o]|^2 lane by lane, attributed to each lane's time slice.
      const S ip = tensor::innerProduct(x[o], x[o]);
      const std::int32_t* ts = table.row(o);
      for (unsigned l = 0; l < table.isites(); ++l)
        acc[static_cast<std::size_t>(ts[l])] += ip.lane(l).real();
    }
  });
  std::vector<double> corr(static_cast<std::size_t>(T), 0.0);
  for (const auto& pc : partial)
    for (int t = 0; t < T; ++t)
      corr[static_cast<std::size_t>(t)] += pc[static_cast<std::size_t>(t)];
  return corr;
}

/// Pion (pseudoscalar) two-point function:
///   C(t) = sum_{x, all indices} |G(x, t)|^2
/// (gamma_5 at source and sink; gamma_5-hermiticity turns the contraction
/// into a plain modulus-squared sum).  One shared TimesliceTable drives
/// all 12 per-column kernels; columns are summed in fixed column order,
/// so the result is deterministic across thread counts.
template <class S>
std::vector<double> pion_correlator(const Propagator<S>& prop) {
  const lattice::GridCartesian* grid = prop.columns.front().grid();
  const TimesliceTable table(grid);
  std::vector<double> corr(static_cast<std::size_t>(table.time_extent()), 0.0);
  for (const auto& col : prop.columns) {
    const std::vector<double> cs = timeslice_norm2(table, col);
    for (std::size_t t = 0; t < corr.size(); ++t) corr[t] += cs[t];
  }
  return corr;
}

/// Effective mass from the symmetric correlator ratio:
///   m_eff(t) = log( C(t) / C(t+1) )    (forward-difference estimate).
inline std::vector<double> effective_mass(const std::vector<double>& corr) {
  std::vector<double> meff;
  for (std::size_t t = 0; t + 1 < corr.size(); ++t) {
    if (corr[t] > 0 && corr[t + 1] > 0)
      meff.push_back(std::log(corr[t] / corr[t + 1]));
    else
      meff.push_back(0.0);
  }
  return meff;
}

}  // namespace svelat::qcd
