// Quark propagators and meson correlators.
//
// The physics application the paper's framework ultimately serves: solve
// M G = delta-source for all 12 (spin, colour) source components, then
// contract the point-to-all propagator into hadron two-point functions.
// The pion correlator is the simplest contraction: with gamma_5
// interpolators its value is the sum over |G|^2 components, time-slice by
// time-slice, and decays as cosh(m_pi (t - T/2)) on a periodic lattice.
#pragma once

#include <algorithm>
#include <vector>

#include "qcd/wilson.h"
#include "solver/solver.h"

namespace svelat::qcd {

/// Point source: delta at `origin` in the given (spin, colour) component.
template <class S>
void point_source(LatticeFermion<S>& src, const lattice::Coordinate& origin, int spin,
                  int colour) {
  using sobj = typename LatticeFermion<S>::scalar_object;
  src.set_zero();
  sobj s = tensor::Zero<sobj>();
  s(spin)(colour) = std::complex<typename S::real_type>(1, 0);
  src.poke(origin, s);
}

/// Point-to-all propagator: the 12 solution vectors of M G = delta, indexed
/// by source component [spin * Nc + colour].
template <class S>
struct Propagator {
  explicit Propagator(const lattice::GridCartesian* grid)
      : columns(static_cast<std::size_t>(Ns * Nc), LatticeFermion<S>(grid)) {}

  LatticeFermion<S>& column(int spin, int colour) {
    return columns[static_cast<std::size_t>(spin * Nc + colour)];
  }
  const LatticeFermion<S>& column(int spin, int colour) const {
    return columns[static_cast<std::size_t>(spin * Nc + colour)];
  }

  std::vector<LatticeFermion<S>> columns;
};

/// Per-column outcome of a propagator computation: one SolverResult for
/// each of the 12 (spin, colour) sources, indexed like Propagator columns.
/// Non-convergence is reported here -- a stalled column sets its
/// `converged` flag false; nothing asserts -- so physics drivers can
/// print a diagnosis and exit cleanly.
struct PropagatorReport {
  std::vector<solver::SolverResult> columns;

  bool all_converged() const {
    return std::all_of(columns.begin(), columns.end(),
                       [](const solver::SolverResult& r) { return r.converged; });
  }
  double worst_true_residual() const {
    double worst = 0.0;
    for (const auto& r : columns) worst = std::max(worst, r.true_residual);
    return worst;
  }
  int total_iterations() const {
    int total = 0;
    for (const auto& r : columns) total += r.iterations;
    return total;
  }
};

/// Compute the propagator from `origin` through a WilsonSolver.  The
/// solver is constructed once by the caller: its operator setup and
/// half-field workspaces are reused across all 12 spin-colour columns
/// instead of being re-derived per right-hand side.
template <class S>
PropagatorReport compute_propagator(solver::WilsonSolver<S>& solver,
                                    const lattice::Coordinate& origin,
                                    Propagator<S>& prop) {
  const lattice::GridCartesian* grid = solver.grid();
  LatticeFermion<S> src(grid);
  PropagatorReport report;
  report.columns.reserve(static_cast<std::size_t>(Ns * Nc));
  for (int spin = 0; spin < Ns; ++spin) {
    for (int colour = 0; colour < Nc; ++colour) {
      point_source(src, origin, spin, colour);
      auto& x = prop.column(spin, colour);
      x.set_zero();
      report.columns.push_back(solver.solve(src, x));
    }
  }
  return report;
}

/// Pion (pseudoscalar) two-point function:
///   C(t) = sum_{x, all indices} |G(x, t)|^2
/// (gamma_5 at source and sink; gamma_5-hermiticity turns the contraction
/// into a plain modulus-squared sum).
template <class S>
std::vector<double> pion_correlator(const Propagator<S>& prop) {
  const lattice::GridCartesian* grid = prop.columns.front().grid();
  const int T = grid->fdimensions()[3];
  std::vector<double> corr(static_cast<std::size_t>(T), 0.0);
  for (const auto& col : prop.columns) {
    for (std::int64_t o = 0; o < grid->osites(); ++o) {
      // |col[o]|^2 lane by lane, attributed to each lane's time slice.
      const S ip = tensor::innerProduct(col[o], col[o]);
      for (unsigned l = 0; l < grid->isites(); ++l) {
        const int t = grid->global_coor(o, l)[3];
        corr[static_cast<std::size_t>(t)] += ip.lane(l).real();
      }
    }
  }
  return corr;
}

/// Effective mass from the symmetric correlator ratio:
///   m_eff(t) = log( C(t) / C(t+1) )    (forward-difference estimate).
inline std::vector<double> effective_mass(const std::vector<double>& corr) {
  std::vector<double> meff;
  for (std::size_t t = 0; t + 1 < corr.size(); ++t) {
    if (corr[t] > 0 && corr[t + 1] > 0)
      meff.push_back(std::log(corr[t] / corr[t + 1]));
    else
      meff.push_back(0.0);
  }
  return meff;
}

}  // namespace svelat::qcd
