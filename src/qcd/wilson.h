// The Wilson Dirac operator: hopping term of paper Eq. (1) and the full
// Wilson matrix built on it.
//
//   (Dh psi)_x = sum_mu  U_{x,mu} (1 + gamma_mu) psi_{x+mu^}
//              + sum_mu  U^dag_{x-mu^,mu} (1 - gamma_mu) psi_{x-mu^}
//
//   M = (4 + m) - Dh / 2          (Wilson parameter r = 1)
//
// Two implementations:
//   WilsonDirac::dhop       -- production path: stencil tables, Fig. 1
//                              boundary permutes, spin projection (half
//                              spinors), fused SU(3) mac on the SIMD layer.
//   dhop_reference          -- scalar per-site evaluation with explicit
//                              4x4 gamma matrices; the verification oracle
//                              (paper Sec. V-D).
//
// gamma_5 hermiticity (gamma5 M gamma5 = M^dag) supplies M^dag without a
// second operator implementation.
#pragma once

#include "lattice/cshift.h"
#include "qcd/gamma.h"
#include "qcd/su3.h"
#include "qcd/types.h"

namespace svelat::qcd {

template <class S>
class WilsonDirac {
 public:
  using Fermion = LatticeFermion<S>;

  WilsonDirac(const GaugeField<S>& gauge, double mass)
      : grid_(gauge.grid()),
        mass_(mass),
        stencil_(gauge.grid()),
        u_fwd_{gauge.U[0], gauge.U[1], gauge.U[2], gauge.U[3]},
        u_bwd_{lattice::Cshift(gauge.U[0], 0, -1), lattice::Cshift(gauge.U[1], 1, -1),
               lattice::Cshift(gauge.U[2], 2, -1), lattice::Cshift(gauge.U[3], 3, -1)} {}

  const lattice::GridCartesian* grid() const { return grid_; }
  double mass() const { return mass_; }

  /// Hopping term, Eq. (1): out = Dh in.  Threaded over outer sites: each
  /// site reads neighbours from `in` (never written here) and writes only
  /// its own out[o].
  void dhop(const Fermion& in, Fermion& out) const {
    using namespace lattice;
    thread_for(grid_->osites(), [&](std::int64_t o) {
      SpinColourVector<S> acc = tensor::Zero<SpinColourVector<S>>();
      for (int mu = 0; mu < Nd; ++mu) {
        {  // forward hop: U_{x,mu} (1 + gamma_mu) psi_{x+mu}
          const SpinColourVector<S> nbr = fetch_neighbour(in, stencil_, o, mu);
          HalfSpinColourVector<S> h = spin_project(mu, +1, nbr);
          HalfSpinColourVector<S> uh;
          const auto& u = u_fwd_[mu][o];
          for (int s = 0; s < Nhs; ++s) uh(s) = u * h(s);
          spin_reconstruct_accum(mu, +1, uh, acc);
        }
        {  // backward hop: U^dag_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}
          const SpinColourVector<S> nbr = fetch_neighbour(in, stencil_, o, Nd + mu);
          HalfSpinColourVector<S> h = spin_project(mu, -1, nbr);
          HalfSpinColourVector<S> uh;
          const auto& u = u_bwd_[mu][o];
          for (int s = 0; s < Nhs; ++s) uh(s) = tensor::adj_mul(u, h(s));
          spin_reconstruct_accum(mu, -1, uh, acc);
        }
      }
      out[o] = acc;
    });
  }

  /// Full Wilson operator: out = (4 + m) in - (1/2) Dh in.
  void m(const Fermion& in, Fermion& out) const {
    SVELAT_ASSERT_MSG(&in != &out, "in-place application is not supported");
    dhop(in, out);
    const S diag(static_cast<typename S::real_type>(4.0 + mass_), 0);
    const S mhalf(static_cast<typename S::real_type>(-0.5), 0);
    thread_for(grid_->osites(),
               [&](std::int64_t o) { out[o] = diag * in[o] + mhalf * out[o]; });
  }

  /// M^dag via gamma_5 hermiticity: M^dag = gamma5 M gamma5.
  void mdag(const Fermion& in, Fermion& out) const {
    Fermion tmp(grid_);
    apply_gamma5(in, tmp);
    m(tmp, out);
    apply_gamma5(out, out);
  }

  /// Normal operator M^dag M (the CG target).
  void mdag_m(const Fermion& in, Fermion& out) const {
    Fermion tmp(grid_);
    m(in, tmp);
    mdag(tmp, out);
  }

  static void apply_gamma5(const Fermion& in, Fermion& out) {
    thread_for(in.osites(), [&](std::int64_t o) { out[o] = gamma5(in[o]); });
  }

 private:
  const lattice::GridCartesian* grid_;
  double mass_;
  lattice::Stencil stencil_;
  // Double-stored gauge: U_mu(x) for the forward hop and U_mu(x - mu^) for
  // the backward hop (avoids a shift per application, like Grid).
  LatticeColourMatrix<S> u_fwd_[lattice::Nd];
  LatticeColourMatrix<S> u_bwd_[lattice::Nd];
};

// ---------------------------------------------------------------------------
// Cshift-based implementation: materializes all eight shifted neighbour
// fields with lattice::Cshift, then does purely site-local work.  Same
// SIMD arithmetic as WilsonDirac::dhop but without stencil tables or
// fused neighbour fetch -- the design-choice ablation for the stencil
// (extra field traffic + temporaries vs table lookups).
// ---------------------------------------------------------------------------
template <class S>
void dhop_via_cshift(const GaugeField<S>& gauge, const LatticeFermion<S>& in,
                     LatticeFermion<S>& out) {
  using namespace lattice;
  const GridCartesian* g = gauge.grid();
  thread_for(g->osites(), [&](std::int64_t o) { tensor::zeroit(out[o]); });
  for (int mu = 0; mu < Nd; ++mu) {
    const LatticeFermion<S> psi_fwd = Cshift(in, mu, +1);
    const LatticeFermion<S> psi_bwd = Cshift(in, mu, -1);
    const LatticeColourMatrix<S> u_bwd = Cshift(gauge.U[mu], mu, -1);
    thread_for(g->osites(), [&](std::int64_t o) {
      {
        HalfSpinColourVector<S> h = spin_project(mu, +1, psi_fwd[o]);
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = gauge.U[mu][o] * h(s);
        spin_reconstruct_accum(mu, +1, uh, out[o]);
      }
      {
        HalfSpinColourVector<S> h = spin_project(mu, -1, psi_bwd[o]);
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = tensor::adj_mul(u_bwd[o], h(s));
        spin_reconstruct_accum(mu, -1, uh, out[o]);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Reference implementation: scalar, site-by-site, explicit gamma matrices.
// ---------------------------------------------------------------------------
/// out = Dh in, evaluated with no SIMD tricks whatsoever.
template <class S>
void dhop_reference(const GaugeField<S>& gauge, const LatticeFermion<S>& in,
                    LatticeFermion<S>& out) {
  using namespace lattice;
  using C = std::complex<double>;
  using SMat = tensor::iMatrix<C, Ns>;
  const GridCartesian* g = gauge.grid();
  using sobj = typename LatticeFermion<S>::scalar_object;
  using gobj = typename LatticeColourMatrix<S>::scalar_object;

  SMat proj_p[Nd], proj_m[Nd];
  for (int mu = 0; mu < Nd; ++mu) {
    proj_p[mu] = one_plus_gamma(mu, +1);
    proj_m[mu] = one_plus_gamma(mu, -1);
  }

  for (std::int64_t o = 0; o < g->osites(); ++o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const Coordinate x = g->global_coor(o, l);
      sobj acc = tensor::Zero<sobj>();
      for (int mu = 0; mu < Nd; ++mu) {
        // Forward: U_{x,mu} (1 + gamma_mu) psi_{x+mu}.
        {
          const Coordinate xp = displace(x, mu, +1, g->fdimensions());
          const sobj psi = in.peek(xp);
          const gobj u = gauge.U[mu].peek(x);
          for (int si = 0; si < Ns; ++si)
            for (int sj = 0; sj < Ns; ++sj) {
              const C w = proj_p[mu](si, sj);
              if (w == C{}) continue;
              for (int ci = 0; ci < Nc; ++ci)
                for (int cj = 0; cj < Nc; ++cj) {
                  const C uc(u(ci, cj).real(), u(ci, cj).imag());
                  const C pc(psi(sj)(cj).real(), psi(sj)(cj).imag());
                  const C val = w * uc * pc;
                  acc(si)(ci) += std::complex<typename S::real_type>(
                      static_cast<typename S::real_type>(val.real()),
                      static_cast<typename S::real_type>(val.imag()));
                }
            }
        }
        // Backward: U^dag_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}.
        {
          const Coordinate xm = displace(x, mu, -1, g->fdimensions());
          const sobj psi = in.peek(xm);
          const gobj u = gauge.U[mu].peek(xm);
          for (int si = 0; si < Ns; ++si)
            for (int sj = 0; sj < Ns; ++sj) {
              const C w = proj_m[mu](si, sj);
              if (w == C{}) continue;
              for (int ci = 0; ci < Nc; ++ci)
                for (int cj = 0; cj < Nc; ++cj) {
                  const C uc = std::conj(C(u(cj, ci).real(), u(cj, ci).imag()));
                  const C pc(psi(sj)(cj).real(), psi(sj)(cj).imag());
                  const C val = w * uc * pc;
                  acc(si)(ci) += std::complex<typename S::real_type>(
                      static_cast<typename S::real_type>(val.real()),
                      static_cast<typename S::real_type>(val.imag()));
                }
            }
        }
      }
      out.poke(x, acc);
    }
  }
}

}  // namespace svelat::qcd
