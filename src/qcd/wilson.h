// The Wilson Dirac operator: hopping term of paper Eq. (1) and the full
// Wilson matrix built on it.
//
//   (Dh psi)_x = sum_mu  U_{x,mu} (1 + gamma_mu) psi_{x+mu^}
//              + sum_mu  U^dag_{x-mu^,mu} (1 - gamma_mu) psi_{x-mu^}
//
//   M = (4 + m) - Dh / 2          (Wilson parameter r = 1)
//
// Two implementations:
//   WilsonDirac::dhop       -- production path: stencil tables, Fig. 1
//                              boundary permutes, spin projection (half
//                              spinors), fused SU(3) mac on the SIMD layer.
//   dhop_reference          -- scalar per-site evaluation with explicit
//                              4x4 gamma matrices; the verification oracle
//                              (paper Sec. V-D).
//
// gamma_5 hermiticity (gamma5 M gamma5 = M^dag) supplies M^dag without a
// second operator implementation.
#pragma once

#include "lattice/cshift.h"
#include "qcd/gamma.h"
#include "qcd/su3.h"
#include "qcd/types.h"
#include "support/metrics.h"

namespace svelat::qcd {

/// Memory-traffic model of one dhop site, in reals: 8 neighbour spinor
/// reads + 1 spinor write (9 x Ns*Nc complex) plus 8 link reads
/// (Nc*Nc complex each).  Multiplied by sizeof(real) at the call site.
inline constexpr double kDhopRealsPerSite =
    9.0 * (Ns * Nc * 2) + 8.0 * (Nc * Nc * 2);

namespace detail {

/// One site of the hopping term, Eq. (1), generic over the neighbour
/// source: `fetch(in, st, o, dir)` returns the spinor one hop away in
/// direction dir (0..Nd-1 forward, Nd..2Nd-1 backward).  The distributed
/// operator's boundary sweep routes split-dimension hops into its halo
/// ghost buffers through this hook; everything else (spin projection,
/// SU(3) mac, reconstruction) is shared, so interior and boundary sites
/// run bitwise-identical arithmetic.
template <class S, class FermT, class TableT, class UFieldT, class FetchF>
inline SpinColourVector<S> dhop_site_fetch(const FermT& in, const TableT& st,
                                           const UFieldT* u_fwd, const UFieldT* u_bwd,
                                           std::int64_t o, FetchF&& fetch) {
  using namespace lattice;
  SpinColourVector<S> acc = tensor::Zero<SpinColourVector<S>>();
  for (int mu = 0; mu < Nd; ++mu) {
    {  // forward hop: U_{x,mu} (1 + gamma_mu) psi_{x+mu}
      const SpinColourVector<S> nbr = fetch(in, st, o, mu);
      HalfSpinColourVector<S> h = spin_project(mu, +1, nbr);
      HalfSpinColourVector<S> uh;
      const auto& u = u_fwd[mu][o];
      for (int s = 0; s < Nhs; ++s) uh(s) = u * h(s);
      spin_reconstruct_accum(mu, +1, uh, acc);
    }
    {  // backward hop: U^dag_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}
      const SpinColourVector<S> nbr = fetch(in, st, o, Nd + mu);
      HalfSpinColourVector<S> h = spin_project(mu, -1, nbr);
      HalfSpinColourVector<S> uh;
      const auto& u = u_bwd[mu][o];
      for (int s = 0; s < Nhs; ++s) uh(s) = tensor::adj_mul(u, h(s));
      spin_reconstruct_accum(mu, -1, uh, acc);
    }
  }
  return acc;
}

/// The classic single-source form: every neighbour comes from the stencil
/// table over `in`.  Generic over the stencil table and field types so the
/// full-lattice and half-checkerboard kernels share the identical
/// arithmetic (bitwise: same inputs give the same site result).  `o`
/// simultaneously indexes the table, the gauge fields and the output site;
/// the table routes neighbour reads into `in` (same grid for the full
/// Stencil, the opposite-parity half grid for StencilRedBlack).
template <class S, class FermT, class TableT, class UFieldT>
inline SpinColourVector<S> dhop_site(const FermT& in, const TableT& st,
                                     const UFieldT* u_fwd, const UFieldT* u_bwd,
                                     std::int64_t o) {
  return dhop_site_fetch<S>(in, st, u_fwd, u_bwd, o,
                            [](const FermT& f, const TableT& t, std::int64_t s,
                               int dir) { return fetch_neighbour(f, t, s, dir); });
}

}  // namespace detail

/// out = gamma5 in, site-wise, on full or half-checkerboard fermions.
template <class FieldT>
void apply_gamma5(const FieldT& in, FieldT& out) {
  thread_for(in.osites(), [&](std::int64_t o) { out[o] = gamma5(in[o]); });
}

template <class S>
class WilsonDirac {
 public:
  using Fermion = LatticeFermion<S>;

  WilsonDirac(const GaugeField<S>& gauge, double mass)
      : grid_(gauge.grid()),
        mass_(mass),
        stencil_(gauge.grid()),
        u_fwd_{gauge.U[0], gauge.U[1], gauge.U[2], gauge.U[3]},
        u_bwd_{lattice::Cshift(gauge.U[0], 0, -1), lattice::Cshift(gauge.U[1], 1, -1),
               lattice::Cshift(gauge.U[2], 2, -1), lattice::Cshift(gauge.U[3], 3, -1)},
        tmp_g5_(grid_),
        tmp_m_(grid_),
        dhop_bytes_(static_cast<double>(grid_->gsites()) * kDhopRealsPerSite *
                    sizeof(typename S::real_type)),
        dhop_flops_(kDhopFlopsPerSite * static_cast<double>(grid_->gsites())) {}

  const lattice::GridCartesian* grid() const { return grid_; }
  double mass() const { return mass_; }

  // Read access to the stencil table and double-stored gauge, so the
  // batched multi-RHS operator (qcd/block.h) sweeps the SAME neighbour
  // indexing and links instead of rebuilding them.
  const lattice::Stencil& stencil() const { return stencil_; }
  const LatticeColourMatrix<S>* u_fwd() const { return u_fwd_; }
  const LatticeColourMatrix<S>* u_bwd() const { return u_bwd_; }

  /// Hopping term, Eq. (1): out = Dh in.  Threaded over outer sites: each
  /// site reads neighbours from `in` (never written here) and writes only
  /// its own out[o].
  void dhop(const Fermion& in, Fermion& out) const {
    metrics::ScopedTimer mt("dhop", dhop_bytes_, dhop_flops_);
    thread_for(grid_->osites(), [&](std::int64_t o) {
      out[o] = detail::dhop_site<S>(in, stencil_, u_fwd_, u_bwd_, o);
    });
  }

  /// Full Wilson operator: out = (4 + m) in - (1/2) Dh in.
  void m(const Fermion& in, Fermion& out) const {
    SVELAT_ASSERT_MSG(&in != &out, "in-place application is not supported");
    dhop(in, out);
    const S diag(static_cast<typename S::real_type>(4.0 + mass_), 0);
    const S mhalf(static_cast<typename S::real_type>(-0.5), 0);
    thread_for(grid_->osites(),
               [&](std::int64_t o) { out[o] = diag * in[o] + mhalf * out[o]; });
  }

  /// M^dag via gamma_5 hermiticity: M^dag = gamma5 M gamma5.
  void mdag(const Fermion& in, Fermion& out) const {
    apply_gamma5(in, tmp_g5_);
    m(tmp_g5_, out);
    apply_gamma5(out, out);
  }

  /// Normal operator M^dag M (the CG target).
  void mdag_m(const Fermion& in, Fermion& out) const {
    m(in, tmp_m_);
    mdag(tmp_m_, out);
  }

  static void apply_gamma5(const Fermion& in, Fermion& out) {
    qcd::apply_gamma5(in, out);
  }

 private:
  const lattice::GridCartesian* grid_;
  double mass_;
  lattice::Stencil stencil_;
  // Double-stored gauge: U_mu(x) for the forward hop and U_mu(x - mu^) for
  // the backward hop (avoids a shift per application, like Grid).
  LatticeColourMatrix<S> u_fwd_[lattice::Nd];
  LatticeColourMatrix<S> u_bwd_[lattice::Nd];
  // mdag/mdag_m intermediates: these run once per CG iteration on the
  // unpreconditioned path, so member buffers keep warm solves free of
  // field allocations.  Distinct buffers because mdag_m's intermediate
  // stays live across the nested mdag.  Not thread-safe across concurrent
  // applications of one operator (the solvers apply it sequentially).
  mutable Fermion tmp_g5_;
  mutable Fermion tmp_m_;
  double dhop_bytes_;  ///< wall-clock metrics model of one application
  double dhop_flops_;
};

// ---------------------------------------------------------------------------
// Parity-restricted hopping kernels on half-checkerboard fields.
//
// Dh couples only opposite parities, so restricted to a target parity it
// is a map between the two half lattices:
//
//   dhop_eo:  out_e = Dh_eo in_o     (reads odd sites, writes even sites)
//   dhop_oe:  out_o = Dh_oe in_e     (reads even sites, writes odd sites)
//
// Fields, gauge links and stencil tables are all half-volume, so one
// application moves half the memory and executes half the instructions of
// a full-lattice dhop -- the production layout of Grid's red-black
// preconditioned solvers (paper Sec. II-A).  Arithmetic per site is
// bitwise identical to WilsonDirac::dhop (shared detail::dhop_site).
// ---------------------------------------------------------------------------
template <class S>
class WilsonDiracEO {
 public:
  using HalfFermion = HalfLatticeFermion<S>;

  WilsonDiracEO(const GaugeField<S>& gauge, double mass)
      : mass_(mass),
        even_(gauge.grid(), lattice::kParityEven),
        odd_(gauge.grid(), lattice::kParityOdd),
        st_eo_(&even_, &odd_),
        st_oe_(&odd_, &even_),
        u_fwd_e_{HalfLatticeColourMatrix<S>(&even_), HalfLatticeColourMatrix<S>(&even_),
                 HalfLatticeColourMatrix<S>(&even_), HalfLatticeColourMatrix<S>(&even_)},
        u_bwd_e_{HalfLatticeColourMatrix<S>(&even_), HalfLatticeColourMatrix<S>(&even_),
                 HalfLatticeColourMatrix<S>(&even_), HalfLatticeColourMatrix<S>(&even_)},
        u_fwd_o_{HalfLatticeColourMatrix<S>(&odd_), HalfLatticeColourMatrix<S>(&odd_),
                 HalfLatticeColourMatrix<S>(&odd_), HalfLatticeColourMatrix<S>(&odd_)},
        u_bwd_o_{HalfLatticeColourMatrix<S>(&odd_), HalfLatticeColourMatrix<S>(&odd_),
                 HalfLatticeColourMatrix<S>(&odd_), HalfLatticeColourMatrix<S>(&odd_)} {
    // Each parity-restricted application moves half the full lattice's
    // sites through the same per-site traffic/flop model.
    half_bytes_ = static_cast<double>(gauge.grid()->gsites()) / 2.0 *
                  kDhopRealsPerSite * sizeof(typename S::real_type);
    half_flops_ = kDhopFlopsPerSite * static_cast<double>(gauge.grid()->gsites()) / 2.0;
    // Split the double-stored gauge (U_mu(x) and U_mu(x - mu^)) by the
    // parity of the *target* site x, so each kernel reads compact links.
    for (int mu = 0; mu < lattice::Nd; ++mu) {
      lattice::pick_checkerboard(gauge.U[mu], u_fwd_e_[mu]);
      lattice::pick_checkerboard(gauge.U[mu], u_fwd_o_[mu]);
      const LatticeColourMatrix<S> shifted = lattice::Cshift(gauge.U[mu], mu, -1);
      lattice::pick_checkerboard(shifted, u_bwd_e_[mu]);
      lattice::pick_checkerboard(shifted, u_bwd_o_[mu]);
    }
  }

  // Half fields hold pointers to the member grids: moving the operator
  // would dangle them.
  WilsonDiracEO(const WilsonDiracEO&) = delete;
  WilsonDiracEO& operator=(const WilsonDiracEO&) = delete;

  double mass() const { return mass_; }
  const lattice::GridRedBlackCartesian* even_grid() const { return &even_; }
  const lattice::GridRedBlackCartesian* odd_grid() const { return &odd_; }

  // Read access to the parity stencils and split gauge for the batched
  // multi-RHS kernels (qcd/block.h): one link/stencil stream, N spinors.
  const lattice::StencilRedBlack& st_eo() const { return st_eo_; }
  const lattice::StencilRedBlack& st_oe() const { return st_oe_; }
  const HalfLatticeColourMatrix<S>* u_fwd_e() const { return u_fwd_e_; }
  const HalfLatticeColourMatrix<S>* u_bwd_e() const { return u_bwd_e_; }
  const HalfLatticeColourMatrix<S>* u_fwd_o() const { return u_fwd_o_; }
  const HalfLatticeColourMatrix<S>* u_bwd_o() const { return u_bwd_o_; }

  /// out_e = Dh_eo in_o: read the odd half field, write the even one.
  void dhop_eo(const HalfFermion& in_odd, HalfFermion& out_even) const {
    SVELAT_ASSERT_MSG(
        in_odd.grid()->parity() == lattice::kParityOdd &&
            out_even.grid()->parity() == lattice::kParityEven,
        "dhop_eo maps an odd-parity field to an even-parity field");
    metrics::ScopedTimer mt("dhop_eo", half_bytes_, half_flops_);
    thread_for(even_.osites(), [&](std::int64_t h) {
      out_even[h] = detail::dhop_site<S>(in_odd, st_eo_, u_fwd_e_, u_bwd_e_, h);
    });
  }

  /// out_o = Dh_oe in_e: read the even half field, write the odd one.
  void dhop_oe(const HalfFermion& in_even, HalfFermion& out_odd) const {
    SVELAT_ASSERT_MSG(
        in_even.grid()->parity() == lattice::kParityEven &&
            out_odd.grid()->parity() == lattice::kParityOdd,
        "dhop_oe maps an even-parity field to an odd-parity field");
    metrics::ScopedTimer mt("dhop_oe", half_bytes_, half_flops_);
    thread_for(odd_.osites(), [&](std::int64_t h) {
      out_odd[h] = detail::dhop_site<S>(in_even, st_oe_, u_fwd_o_, u_bwd_o_, h);
    });
  }

 private:
  double mass_;
  lattice::GridRedBlackCartesian even_;
  lattice::GridRedBlackCartesian odd_;
  lattice::StencilRedBlack st_eo_;  ///< target even, source odd
  lattice::StencilRedBlack st_oe_;  ///< target odd, source even
  // Gauge links split by target parity: u_fwd_p[mu] = U_mu(x) and
  // u_bwd_p[mu] = U_mu(x - mu^) for x of parity p.
  HalfLatticeColourMatrix<S> u_fwd_e_[lattice::Nd];
  HalfLatticeColourMatrix<S> u_bwd_e_[lattice::Nd];
  HalfLatticeColourMatrix<S> u_fwd_o_[lattice::Nd];
  HalfLatticeColourMatrix<S> u_bwd_o_[lattice::Nd];
  double half_bytes_ = 0.0;  ///< wall-clock metrics model per application
  double half_flops_ = 0.0;
};

// ---------------------------------------------------------------------------
// Shift-based implementation: materializes all eight shifted neighbour
// fields through a caller-supplied shift functor, then does purely
// site-local work.  Same SIMD arithmetic as WilsonDirac::dhop but without
// stencil tables or fused neighbour fetch.  The functor is what makes the
// hopping term transport-agnostic: lattice::Cshift gives the single-rank
// ablation (dhop_via_cshift below), a halo-exchanging shift gives the
// multi-rank operator (comms/distributed_dhop.h) with bitwise-identical
// site arithmetic.
//
// Shift-call order per mu is part of the contract -- psi forward, psi
// backward, gauge backward -- because distributed callers pre-post the
// matching faces in exactly this sequence.
// ---------------------------------------------------------------------------
template <class S, class ShiftF>
void dhop_via_shift(const GaugeField<S>& gauge, const LatticeFermion<S>& in,
                    LatticeFermion<S>& out, ShiftF&& shift) {
  using namespace lattice;
  const GridCartesian* g = gauge.grid();
  thread_for(g->osites(), [&](std::int64_t o) { tensor::zeroit(out[o]); });
  for (int mu = 0; mu < Nd; ++mu) {
    const LatticeFermion<S> psi_fwd = shift(in, mu, +1);
    const LatticeFermion<S> psi_bwd = shift(in, mu, -1);
    const LatticeColourMatrix<S> u_bwd = shift(gauge.U[mu], mu, -1);
    thread_for(g->osites(), [&](std::int64_t o) {
      {
        HalfSpinColourVector<S> h = spin_project(mu, +1, psi_fwd[o]);
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = gauge.U[mu][o] * h(s);
        spin_reconstruct_accum(mu, +1, uh, out[o]);
      }
      {
        HalfSpinColourVector<S> h = spin_project(mu, -1, psi_bwd[o]);
        HalfSpinColourVector<S> uh;
        for (int s = 0; s < Nhs; ++s) uh(s) = tensor::adj_mul(u_bwd[o], h(s));
        spin_reconstruct_accum(mu, -1, uh, out[o]);
      }
    });
  }
}

/// The single-rank ablation: all eight neighbour fields via lattice::Cshift
/// (extra field traffic + temporaries vs the stencil's table lookups).
template <class S>
void dhop_via_cshift(const GaugeField<S>& gauge, const LatticeFermion<S>& in,
                     LatticeFermion<S>& out) {
  dhop_via_shift(gauge, in, out, [](const auto& f, int mu, int disp) {
    return lattice::Cshift(f, mu, disp);
  });
}

// ---------------------------------------------------------------------------
// Reference implementation: scalar, site-by-site, explicit gamma matrices.
// ---------------------------------------------------------------------------
/// out = Dh in, evaluated with no SIMD tricks whatsoever.
template <class S>
void dhop_reference(const GaugeField<S>& gauge, const LatticeFermion<S>& in,
                    LatticeFermion<S>& out) {
  using namespace lattice;
  using C = std::complex<double>;
  using SMat = tensor::iMatrix<C, Ns>;
  const GridCartesian* g = gauge.grid();
  using sobj = typename LatticeFermion<S>::scalar_object;
  using gobj = typename LatticeColourMatrix<S>::scalar_object;

  SMat proj_p[Nd], proj_m[Nd];
  for (int mu = 0; mu < Nd; ++mu) {
    proj_p[mu] = one_plus_gamma(mu, +1);
    proj_m[mu] = one_plus_gamma(mu, -1);
  }

  for (std::int64_t o = 0; o < g->osites(); ++o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const Coordinate x = g->global_coor(o, l);
      sobj acc = tensor::Zero<sobj>();
      for (int mu = 0; mu < Nd; ++mu) {
        // Forward: U_{x,mu} (1 + gamma_mu) psi_{x+mu}.
        {
          const Coordinate xp = displace(x, mu, +1, g->fdimensions());
          const sobj psi = in.peek(xp);
          const gobj u = gauge.U[mu].peek(x);
          for (int si = 0; si < Ns; ++si)
            for (int sj = 0; sj < Ns; ++sj) {
              const C w = proj_p[mu](si, sj);
              if (w == C{}) continue;
              for (int ci = 0; ci < Nc; ++ci)
                for (int cj = 0; cj < Nc; ++cj) {
                  const C uc(u(ci, cj).real(), u(ci, cj).imag());
                  const C pc(psi(sj)(cj).real(), psi(sj)(cj).imag());
                  const C val = w * uc * pc;
                  acc(si)(ci) += std::complex<typename S::real_type>(
                      static_cast<typename S::real_type>(val.real()),
                      static_cast<typename S::real_type>(val.imag()));
                }
            }
        }
        // Backward: U^dag_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}.
        {
          const Coordinate xm = displace(x, mu, -1, g->fdimensions());
          const sobj psi = in.peek(xm);
          const gobj u = gauge.U[mu].peek(xm);
          for (int si = 0; si < Ns; ++si)
            for (int sj = 0; sj < Ns; ++sj) {
              const C w = proj_m[mu](si, sj);
              if (w == C{}) continue;
              for (int ci = 0; ci < Nc; ++ci)
                for (int cj = 0; cj < Nc; ++cj) {
                  const C uc = std::conj(C(u(cj, ci).real(), u(cj, ci).imag()));
                  const C pc(psi(sj)(cj).real(), psi(sj)(cj).imag());
                  const C val = w * uc * pc;
                  acc(si)(ci) += std::complex<typename S::real_type>(
                      static_cast<typename S::real_type>(val.real()),
                      static_cast<typename S::real_type>(val.imag()));
                }
            }
        }
      }
      out.poke(x, acc);
    }
  }
}

}  // namespace svelat::qcd
