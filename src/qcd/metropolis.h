// Quenched gauge-field generation: Metropolis updates of the Wilson
// plaquette action
//
//     S[U] = beta * sum_{x, mu<nu} ( 1 - Re tr P_{mu nu}(x) / Nc ).
//
// Supplies non-trivial (thermalized) gauge configurations so solver and
// observable tests run on physics-like backgrounds instead of pure
// strong-coupling randomness.  Updates are link-local with on-the-fly
// staples; proposals are symmetrized small SU(3) rotations; all
// randomness is keyed by (sweep, site, link, hit), so a Markov chain is
// exactly reproducible for any SIMD layout (the Sec. V-D property again).
#pragma once

#include <cmath>

#include "qcd/su3.h"
#include "qcd/types.h"

namespace svelat::qcd {

/// Sum of the six staples attached to link (x, mu), computed from scalar
/// peeks of the current field (exact sequential Metropolis).
template <class S>
ScalarColourMatrix staple_sum(const GaugeField<S>& g, const lattice::Coordinate& x,
                              int mu) {
  using namespace lattice;
  const Coordinate dims = g.grid()->fdimensions();
  auto peek = [&](int nu, const Coordinate& c) {
    const auto s = g.U[nu].peek(c);
    ScalarColourMatrix m;
    for (int i = 0; i < Nc; ++i)
      for (int j = 0; j < Nc; ++j)
        m(i, j) = std::complex<double>(s(i, j).real(), s(i, j).imag());
    return m;
  };

  ScalarColourMatrix staple = tensor::Zero<ScalarColourMatrix>();
  const Coordinate xpmu = displace(x, mu, +1, dims);
  for (int nu = 0; nu < Nd; ++nu) {
    if (nu == mu) continue;
    // Forward staple: U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag.
    {
      const Coordinate xpnu = displace(x, nu, +1, dims);
      const auto a = peek(nu, xpmu);
      const auto b = peek(mu, xpnu);
      const auto c = peek(nu, x);
      staple += a * tensor::adj(b) * tensor::adj(c);
    }
    // Backward staple: U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu).
    {
      const Coordinate xmnu = displace(x, nu, -1, dims);
      const Coordinate xpmu_mnu = displace(xpmu, nu, -1, dims);
      const auto a = peek(nu, xpmu_mnu);
      const auto b = peek(mu, xmnu);
      const auto c = peek(nu, xmnu);
      staple += tensor::adj(a) * tensor::adj(b) * c;
    }
  }
  return staple;
}

struct MetropolisParams {
  double beta = 5.7;      ///< gauge coupling
  double epsilon = 0.3;   ///< proposal step size
  int hits_per_link = 4;  ///< Metropolis hits per link per sweep
  std::uint64_t seed = 1;

  friend bool operator==(const MetropolisParams&, const MetropolisParams&) = default;
};

struct SweepStats {
  double acceptance = 0.0;  ///< accepted / proposed
};

namespace detail {

/// Small symmetrized SU(3) rotation: project(1 + eps*G), or its adjoint.
inline ScalarColourMatrix small_su3(const SiteRNG& rng, std::uint64_t key,
                                    std::uint64_t slot, double eps) {
  ScalarColourMatrix m = tensor::Zero<ScalarColourMatrix>();
  std::uint64_t s = slot;
  for (int i = 0; i < Nc; ++i) {
    for (int j = 0; j < Nc; ++j) {
      const double re = (i == j ? 1.0 : 0.0) + eps * rng.gaussian(key, s);
      const double im = eps * rng.gaussian(key, s + 1);
      m(i, j) = {re, im};
      s += 2;
    }
  }
  ScalarColourMatrix r = project_su3(m);
  // Symmetrize the proposal: use R or R^dag with probability 1/2.
  if (rng.uniform(key, s) < 0.5) r = tensor::adj(r);
  return r;
}

}  // namespace detail

/// One full Metropolis sweep over all links.  Returns the acceptance rate.
template <class S>
SweepStats metropolis_sweep(GaugeField<S>& g, const MetropolisParams& params,
                            int sweep_number) {
  using namespace lattice;
  const GridCartesian* grid = g.grid();
  const Coordinate dims = grid->fdimensions();
  const SiteRNG rng(params.seed +
                    0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(sweep_number));

  long long proposed = 0, accepted = 0;
  for (std::int64_t site = 0; site < grid->gsites(); ++site) {
    const Coordinate x = lex_coor(site, dims);
    for (int mu = 0; mu < Nd; ++mu) {
      const ScalarColourMatrix staple = staple_sum(g, x, mu);
      // Current link as a scalar matrix.
      auto s_link = g.U[mu].peek(x);
      ScalarColourMatrix u;
      for (int i = 0; i < Nc; ++i)
        for (int j = 0; j < Nc; ++j)
          u(i, j) = std::complex<double>(s_link(i, j).real(), s_link(i, j).imag());

      const std::uint64_t key =
          static_cast<std::uint64_t>(site) * 4ull + static_cast<std::uint64_t>(mu);
      for (int hit = 0; hit < params.hits_per_link; ++hit) {
        const std::uint64_t slot = 64ull * static_cast<std::uint64_t>(hit);
        const ScalarColourMatrix r = detail::small_su3(rng, key, slot, params.epsilon);
        const ScalarColourMatrix u_new = r * u;
        // dS = -(beta/Nc) Re tr[(U' - U) staple].
        const auto delta = (u_new - u) * staple;
        const double ds = -(params.beta / Nc) * tensor::trace(delta).real();
        ++proposed;
        const double accept_draw = rng.uniform(key, slot + 40);
        if (ds <= 0.0 || accept_draw < std::exp(-ds)) {
          u = u_new;
          ++accepted;
        }
      }
      // Keep the link exactly on the group manifold.
      u = project_su3(u);
      typename LatticeColourMatrix<S>::scalar_object out;
      for (int i = 0; i < Nc; ++i)
        for (int j = 0; j < Nc; ++j)
          out(i, j) = std::complex<typename S::real_type>(
              static_cast<typename S::real_type>(u(i, j).real()),
              static_cast<typename S::real_type>(u(i, j).imag()));
      g.U[mu].poke(x, out);
    }
  }
  SweepStats stats;
  stats.acceptance = static_cast<double>(accepted) / static_cast<double>(proposed);
  return stats;
}

/// Position of a Markov chain: its parameters plus how many sweeps have
/// been applied.  Because every draw is a pure function of
/// (seed, sweep, site, link, hit), this pair of numbers -- together with
/// the gauge field itself -- IS the full updater state: checkpointing a
/// chain (io/checkpoint.h) stores the field and this struct, and resuming
/// replays the identical sweep numbers the uninterrupted run would have
/// used, bitwise.
struct MarkovState {
  MetropolisParams params;
  std::int64_t sweeps_done = 0;  ///< sweeps applied so far; next sweep number
};

/// Advance the chain by `nsweeps` sweeps, numbering them consecutively
/// from state.sweeps_done.  Returns the stats of the last sweep.
template <class S>
SweepStats advance(GaugeField<S>& g, MarkovState& state, int nsweeps) {
  SweepStats stats;
  for (int i = 0; i < nsweeps; ++i) {
    stats = metropolis_sweep(g, state.params, static_cast<int>(state.sweeps_done));
    ++state.sweeps_done;
  }
  return stats;
}

}  // namespace svelat::qcd
