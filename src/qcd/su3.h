// SU(3) utilities: random group elements, unitarity checks, gauge
// transformations.
//
// Random links are produced site-by-site from the layout-independent RNG
// (support/random.h), so a gauge configuration is bit-identical for every
// vector length and backend -- required by the Sec. V-D verification.
#pragma once

#include <complex>

#include "qcd/types.h"
#include "support/random.h"

namespace svelat::qcd {

using ScalarColourMatrix = tensor::iMatrix<std::complex<double>, Nc>;

/// Determinant of a 3x3 complex matrix.
std::complex<double> determinant(const ScalarColourMatrix& m);

/// Gram-Schmidt orthonormalize the rows and fix det = +1 (projects any
/// non-singular matrix onto SU(3)).
ScalarColourMatrix project_su3(const ScalarColourMatrix& m);

/// Max-norm deviation from unitarity: || m m^dag - 1 ||_max.
double unitarity_error(const ScalarColourMatrix& m);

/// Random SU(3) element from site-keyed gaussians (key, slot_base select
/// the random stream).
ScalarColourMatrix random_su3(const SiteRNG& rng, std::uint64_t key,
                              std::uint64_t slot_base = 0);

// ---------------------------------------------------------------------------
// Field-level helpers (templated on the SIMD scalar).
// ---------------------------------------------------------------------------
/// Set every link to the identity (free field).
template <class S>
void unit_gauge(GaugeField<S>& g) {
  using sobj = typename LatticeColourMatrix<S>::scalar_object;
  const lattice::GridCartesian* grid = g.grid();
  sobj unit = tensor::Zero<sobj>();
  for (int c = 0; c < Nc; ++c) unit(c, c) = std::complex<double>(1.0, 0.0);
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    for (std::int64_t o = 0; o < grid->osites(); ++o)
      for (unsigned l = 0; l < grid->isites(); ++l)
        g.U[mu].poke(grid->global_coor(o, l), unit);
  }
}

/// Haar-ish random gauge configuration (gaussian + SU(3) projection),
/// identical for every layout at fixed seed.
template <class S>
void random_gauge(const SiteRNG& rng, GaugeField<S>& g) {
  const lattice::GridCartesian* grid = g.grid();
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    for (std::int64_t o = 0; o < grid->osites(); ++o) {
      for (unsigned l = 0; l < grid->isites(); ++l) {
        const lattice::Coordinate x = grid->global_coor(o, l);
        const auto key = static_cast<std::uint64_t>(grid->global_index(x));
        const ScalarColourMatrix u =
            random_su3(rng, key, 64 + 32 * static_cast<std::uint64_t>(mu));
        typename LatticeColourMatrix<S>::scalar_object s;
        for (int i = 0; i < Nc; ++i)
          for (int j = 0; j < Nc; ++j)
            s(i, j) = std::complex<typename S::real_type>(
                static_cast<typename S::real_type>(u(i, j).real()),
                static_cast<typename S::real_type>(u(i, j).imag()));
        g.U[mu].poke(x, s);
      }
    }
  }
}

/// Random SU(3) site field V(x) for gauge transformations.
template <class S>
void random_colour_transform(const SiteRNG& rng, LatticeColourMatrix<S>& v) {
  const lattice::GridCartesian* grid = v.grid();
  for (std::int64_t o = 0; o < grid->osites(); ++o) {
    for (unsigned l = 0; l < grid->isites(); ++l) {
      const lattice::Coordinate x = grid->global_coor(o, l);
      const auto key = static_cast<std::uint64_t>(grid->global_index(x));
      const ScalarColourMatrix u = random_su3(rng, key, 4096);
      typename LatticeColourMatrix<S>::scalar_object s;
      for (int i = 0; i < Nc; ++i)
        for (int j = 0; j < Nc; ++j)
          s(i, j) = std::complex<typename S::real_type>(
              static_cast<typename S::real_type>(u(i, j).real()),
              static_cast<typename S::real_type>(u(i, j).imag()));
      v.poke(x, s);
    }
  }
}

/// Gauge transform the links: U'_mu(x) = V(x) U_mu(x) V^dag(x + mu^).
template <class S>
void gauge_transform(GaugeField<S>& g, const LatticeColourMatrix<S>& v) {
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    const LatticeColourMatrix<S> v_fwd = lattice::Cshift(v, mu, +1);
    for (std::int64_t o = 0; o < g.grid()->osites(); ++o)
      g.U[mu][o] = v[o] * g.U[mu][o] * tensor::adj(v_fwd[o]);
  }
}

/// Gauge transform a fermion: psi'(x) = V(x) psi(x).
template <class S>
void gauge_transform(LatticeFermion<S>& psi, const LatticeColourMatrix<S>& v) {
  for (std::int64_t o = 0; o < psi.osites(); ++o) {
    SpinColourVector<S> r;
    for (int s = 0; s < Ns; ++s) r(s) = v[o] * psi[o](s);
    psi[o] = r;
  }
}

}  // namespace svelat::qcd
