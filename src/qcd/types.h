// Index structure of lattice QCD fields (paper Sec. II-A).
//
// A quark field psi_x^{ia} carries colour a = 1..3 and spin i = 1..4; the
// gauge links U_{x,mu} are SU(3) matrices in colour space.  Site objects
// nest tensor templates around a SIMD scalar S.
#pragma once

#include <array>

#include "lattice/lattice_all.h"
#include "simd/simd.h"
#include "tensor/tensor.h"

namespace svelat::qcd {

inline constexpr int Nc = 3;   ///< colours
inline constexpr int Ns = 4;   ///< spin components
inline constexpr int Nhs = 2;  ///< half-spinor components

template <class S>
using ColourMatrix = tensor::iMatrix<S, Nc>;
template <class S>
using ColourVector = tensor::iVector<S, Nc>;
template <class S>
using SpinColourVector = tensor::iVector<tensor::iVector<S, Nc>, Ns>;
template <class S>
using HalfSpinColourVector = tensor::iVector<tensor::iVector<S, Nc>, Nhs>;

template <class S>
using LatticeFermion = lattice::Lattice<SpinColourVector<S>>;
template <class S>
using LatticeColourMatrix = lattice::Lattice<ColourMatrix<S>>;

// Half-checkerboard (single-parity) fields: half the outer sites of the
// full grid, same lane structure (lattice/red_black.h).
template <class S>
using HalfLatticeFermion =
    lattice::Lattice<SpinColourVector<S>, lattice::GridRedBlackCartesian>;
template <class S>
using HalfLatticeColourMatrix =
    lattice::Lattice<ColourMatrix<S>, lattice::GridRedBlackCartesian>;

/// The four directional link fields U_mu(x).
template <class S>
struct GaugeField {
  explicit GaugeField(const lattice::GridCartesian* grid)
      : U{LatticeColourMatrix<S>(grid), LatticeColourMatrix<S>(grid),
          LatticeColourMatrix<S>(grid), LatticeColourMatrix<S>(grid)} {}

  const lattice::GridCartesian* grid() const { return U[0].grid(); }

  std::array<LatticeColourMatrix<S>, lattice::Nd> U;
};

/// Flop count of one Wilson hopping-term application per lattice site
/// (the standard figure used to quote Dslash performance).
inline constexpr double kDhopFlopsPerSite = 1320.0;

}  // namespace svelat::qcd
