// BlockLattice<vobj, N, GridT>: N right-hand sides stored site-contiguously.
//
// Multi-RHS layout for the block propagator engine: column j of outer site
// o lives at data_[o*N + j], so the N spinors of one site are adjacent in
// memory.  A batched operator sweep loads each gauge link and stencil
// entry ONCE and applies it to all N columns while it is register/cache
// hot -- the dominant dhop memory traffic (links + neighbour indexing)
// amortizes N-fold (qcd/block.h).
//
// Per-column reductions reuse the deterministic chunked tree of
// support/parallel.h with an element-wise ColumnArray accumulator: column
// j's floating-point grouping is exactly the grouping the single-field
// innerProduct/norm2 would produce, so per-column results are BITWISE
// identical to running the sequential kernels column by column -- the
// block solver's N=1 bitwise contract and the N>1 determinism contract
// both reduce to this property (docs/ARCHITECTURE.md, "Multi-RHS").
#pragma once

#include <array>
#include <complex>

#include "lattice/lattice.h"
#include "lattice/red_black.h"

namespace svelat::lattice {

/// Per-column accumulator for block reductions: parallel_reduce needs
/// copy construction and operator+=; element-wise += keeps each column's
/// summation tree independent of its siblings.
template <class T, int N>
struct ColumnArray {
  T v[N];

  ColumnArray& operator+=(const ColumnArray& o) {
    for (int j = 0; j < N; ++j) v[j] += o.v[j];
    return *this;
  }
  static ColumnArray filled(const T& z) {
    ColumnArray a;
    for (int j = 0; j < N; ++j) a.v[j] = z;
    return a;
  }
};

/// Which columns a masked block kernel touches.  Frozen (inactive) columns
/// are left bit-for-bit untouched -- the mechanism that lets a stalled
/// right-hand side sit out the remaining iterations without perturbing
/// its siblings.
template <int N>
using ColumnMask = std::array<bool, N>;

template <int N>
constexpr ColumnMask<N> all_columns() {
  ColumnMask<N> m{};
  for (int j = 0; j < N; ++j) m[j] = true;
  return m;
}

template <class vobj, int N, class GridT = GridCartesian>
class BlockLattice {
 public:
  static constexpr int block_size = N;
  using vector_object = vobj;
  using scalar_object = tensor::scalar_object_t<vobj>;
  using simd_type = tensor::scalar_element_t<vobj>;
  using grid_type = GridT;
  using column_type = Lattice<vobj, GridT>;

  explicit BlockLattice(const GridT* grid)
      : grid_(grid), data_(static_cast<std::size_t>(grid->osites()) * N) {
    SVELAT_ASSERT_MSG(grid->isites() == simd_type::Nsimd(),
                      "grid SIMD layout does not match the vector object's lane count");
  }

  const GridT* grid() const { return grid_; }
  std::int64_t osites() const { return grid_->osites(); }

  /// The N contiguous column objects of outer site o.
  vobj* site(std::int64_t o) { return data_.data() + static_cast<std::size_t>(o) * N; }
  const vobj* site(std::int64_t o) const {
    return data_.data() + static_cast<std::size_t>(o) * N;
  }

  vobj& at(std::int64_t o, int j) {
    return data_[static_cast<std::size_t>(o) * N + static_cast<std::size_t>(j)];
  }
  const vobj& at(std::int64_t o, int j) const {
    return data_[static_cast<std::size_t>(o) * N + static_cast<std::size_t>(j)];
  }

  void set_zero() {
    thread_for(osites(), [&](std::int64_t o) {
      vobj* row = site(o);
      for (int j = 0; j < N; ++j) tensor::zeroit(row[j]);
    });
  }

  /// Gather a single-field right-hand side into column j.
  void copy_in_column(int j, const column_type& src) {
    SVELAT_ASSERT_MSG(*src.grid() == *grid_, "column lives on a different grid");
    thread_for(osites(), [&](std::int64_t o) { at(o, j) = src[o]; });
  }

  /// Scatter column j back into a single field.
  void copy_out_column(int j, column_type& dst) const {
    SVELAT_ASSERT_MSG(*dst.grid() == *grid_, "column lives on a different grid");
    thread_for(osites(), [&](std::int64_t o) { dst[o] = at(o, j); });
  }

  void check_same(const BlockLattice& o) const {
    SVELAT_ASSERT_MSG(*grid_ == *o.grid_, "block lattices live on different grids");
  }

 private:
  const GridT* grid_;
  AlignedVector<vobj> data_;
};

/// r_j = x_j - y_j for every column (block analogue of lattice::sub).
template <class vobj, int N, class GridT>
void block_sub(BlockLattice<vobj, N, GridT>& r, const BlockLattice<vobj, N, GridT>& x,
               const BlockLattice<vobj, N, GridT>& y) {
  x.check_same(y);
  thread_for(x.osites(), [&](std::int64_t o) {
    const vobj* xs = x.site(o);
    const vobj* ys = y.site(o);
    vobj* rs = r.site(o);
    for (int j = 0; j < N; ++j) rs[j] = xs[j] - ys[j];
  });
}

/// Copy every column: r_j = x_j.
template <class vobj, int N, class GridT>
void block_copy(BlockLattice<vobj, N, GridT>& r, const BlockLattice<vobj, N, GridT>& x) {
  r.check_same(x);
  thread_for(x.osites(), [&](std::int64_t o) {
    const vobj* xs = x.site(o);
    vobj* rs = r.site(o);
    for (int j = 0; j < N; ++j) rs[j] = xs[j];
  });
}

/// Per-column axpy with one shared scalar coefficient: r_j = a x_j + y_j
/// for all N columns (the Schur prologue/epilogue shape).
template <class vobj, int N, class GridT, typename C>
void block_axpy(BlockLattice<vobj, N, GridT>& r, const C& a,
                const BlockLattice<vobj, N, GridT>& x,
                const BlockLattice<vobj, N, GridT>& y) {
  x.check_same(y);
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  const simd_type coeff{typename simd_type::scalar_type(a)};
  thread_for(x.osites(), [&](std::int64_t o) {
    const vobj* xs = x.site(o);
    const vobj* ys = y.site(o);
    vobj* rs = r.site(o);
    for (int j = 0; j < N; ++j) rs[j] = coeff * xs[j] + ys[j];
  });
}

/// Masked per-column axpy with per-column coefficients:
/// r_j = a_j x_j + y_j for active columns; frozen columns untouched.
template <class vobj, int N, class GridT>
void block_axpy(BlockLattice<vobj, N, GridT>& r, const std::array<double, N>& a,
                const BlockLattice<vobj, N, GridT>& x,
                const BlockLattice<vobj, N, GridT>& y, const ColumnMask<N>& active) {
  x.check_same(y);
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  std::array<simd_type, N> coeff;
  for (int j = 0; j < N; ++j)
    coeff[static_cast<std::size_t>(j)] =
        simd_type{typename simd_type::scalar_type(a[static_cast<std::size_t>(j)])};
  thread_for(x.osites(), [&](std::int64_t o) {
    const vobj* xs = x.site(o);
    const vobj* ys = y.site(o);
    vobj* rs = r.site(o);
    for (int j = 0; j < N; ++j)
      if (active[static_cast<std::size_t>(j)])
        rs[j] = coeff[static_cast<std::size_t>(j)] * xs[j] + ys[j];
  });
}

/// Per-column |a_j|^2.  Column j's chunked summation tree is identical to
/// norm2(column j) -- bitwise equal results, any N.
template <class vobj, int N, class GridT>
std::array<double, N> block_norm2(const BlockLattice<vobj, N, GridT>& a) {
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  using Acc = ColumnArray<simd_type, N>;
  const Acc acc =
      parallel_reduce(a.osites(), Acc::filled(simd_type::zero()), [&](std::int64_t o) {
        const vobj* as = a.site(o);
        Acc t;
        for (int j = 0; j < N; ++j) t.v[j] = tensor::innerProduct(as[j], as[j]);
        return t;
      });
  std::array<double, N> out;
  for (int j = 0; j < N; ++j)
    out[static_cast<std::size_t>(j)] = std::real(reduce(acc.v[j]));
  return out;
}

/// Per-column Re<a_j, b_j> (the CG pAp term).
template <class vobj, int N, class GridT>
std::array<double, N> block_inner_real(const BlockLattice<vobj, N, GridT>& a,
                                       const BlockLattice<vobj, N, GridT>& b) {
  a.check_same(b);
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  using Acc = ColumnArray<simd_type, N>;
  const Acc acc =
      parallel_reduce(a.osites(), Acc::filled(simd_type::zero()), [&](std::int64_t o) {
        const vobj* as = a.site(o);
        const vobj* bs = b.site(o);
        Acc t;
        for (int j = 0; j < N; ++j) t.v[j] = tensor::innerProduct(as[j], bs[j]);
        return t;
      });
  std::array<double, N> out;
  for (int j = 0; j < N; ++j)
    out[static_cast<std::size_t>(j)] = std::real(reduce(acc.v[j]));
  return out;
}

/// Masked fused update-and-norm: r_j = a_j x_j + y_j and |r_j|^2 in one
/// pass for active columns (the CG residual-update tail); frozen columns
/// keep their bits and report 0.
template <class vobj, int N, class GridT>
std::array<double, N> block_axpy_norm2(BlockLattice<vobj, N, GridT>& r,
                                       const std::array<double, N>& a,
                                       const BlockLattice<vobj, N, GridT>& x,
                                       const BlockLattice<vobj, N, GridT>& y,
                                       const ColumnMask<N>& active) {
  x.check_same(y);
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  using Acc = ColumnArray<simd_type, N>;
  std::array<simd_type, N> coeff;
  for (int j = 0; j < N; ++j)
    coeff[static_cast<std::size_t>(j)] =
        simd_type{typename simd_type::scalar_type(a[static_cast<std::size_t>(j)])};
  const Acc acc =
      parallel_reduce(x.osites(), Acc::filled(simd_type::zero()), [&](std::int64_t o) {
        const vobj* xs = x.site(o);
        const vobj* ys = y.site(o);
        vobj* rs = r.site(o);
        Acc t = Acc::filled(simd_type::zero());
        for (int j = 0; j < N; ++j) {
          if (!active[static_cast<std::size_t>(j)]) continue;
          const vobj v = coeff[static_cast<std::size_t>(j)] * xs[j] + ys[j];
          rs[j] = v;
          t.v[j] = tensor::innerProduct(v, v);
        }
        return t;
      });
  std::array<double, N> out;
  for (int j = 0; j < N; ++j)
    out[static_cast<std::size_t>(j)] = std::real(reduce(acc.v[j]));
  return out;
}

/// Masked fused CG tail: x_j += alpha_j p_j and p_j = beta_j p_j + r_j in
/// one pass, reading the pre-update p once per site (the deferred-x form
/// of the two sequential axpy calls).  Per-column arithmetic is the exact
/// expression shape of lattice::axpy (coeff * x + y), so column results
/// stay bitwise identical to the sequential recurrence.  Frozen columns
/// keep their bits.
template <class vobj, int N, class GridT>
void block_xp_update(BlockLattice<vobj, N, GridT>& x, BlockLattice<vobj, N, GridT>& p,
                     const BlockLattice<vobj, N, GridT>& r,
                     const std::array<double, N>& alpha,
                     const std::array<double, N>& beta, const ColumnMask<N>& active) {
  x.check_same(p);
  x.check_same(r);
  using simd_type = typename BlockLattice<vobj, N, GridT>::simd_type;
  std::array<simd_type, N> ca, cb;
  for (int j = 0; j < N; ++j) {
    ca[static_cast<std::size_t>(j)] =
        simd_type{typename simd_type::scalar_type(alpha[static_cast<std::size_t>(j)])};
    cb[static_cast<std::size_t>(j)] =
        simd_type{typename simd_type::scalar_type(beta[static_cast<std::size_t>(j)])};
  }
  thread_for(x.osites(), [&](std::int64_t o) {
    vobj* xs = x.site(o);
    vobj* ps = p.site(o);
    const vobj* rs = r.site(o);
    for (int j = 0; j < N; ++j) {
      if (!active[static_cast<std::size_t>(j)]) continue;
      const vobj po = ps[j];
      xs[j] = ca[static_cast<std::size_t>(j)] * po + xs[j];
      ps[j] = cb[static_cast<std::size_t>(j)] * po + rs[j];
    }
  });
}

/// Extract one parity of a full block field (all columns at once).
template <class vobj, int N>
void pick_checkerboard(const BlockLattice<vobj, N>& full,
                       BlockLattice<vobj, N, GridRedBlackCartesian>& half) {
  const GridRedBlackCartesian* rb = half.grid();
  SVELAT_ASSERT_MSG(*rb->full_grid() == *full.grid(),
                    "checkerboard does not view this full grid");
  thread_for(rb->osites(), [&](std::int64_t h) {
    const vobj* fs = full.site(rb->full_osite(h));
    vobj* hs = half.site(h);
    for (int j = 0; j < N; ++j) hs[j] = fs[j];
  });
}

/// Deposit a half block field into the matching parity of a full one.
template <class vobj, int N>
void set_checkerboard(BlockLattice<vobj, N>& full,
                      const BlockLattice<vobj, N, GridRedBlackCartesian>& half) {
  const GridRedBlackCartesian* rb = half.grid();
  SVELAT_ASSERT_MSG(*rb->full_grid() == *full.grid(),
                    "checkerboard does not view this full grid");
  thread_for(rb->osites(), [&](std::int64_t h) {
    vobj* fs = full.site(rb->full_osite(h));
    const vobj* hs = half.site(h);
    for (int j = 0; j < N; ++j) fs[j] = hs[j];
  });
}

}  // namespace svelat::lattice
