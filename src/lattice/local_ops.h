// Site-local (pointwise) field operations beyond the linear-space basics
// in lattice.h: products of matrix fields, traces, adjoints.  These are
// the building blocks of gauge observables (plaquette, Wilson loops) and
// of the SU(3) throughput benchmarks.
#pragma once

#include "lattice/lattice.h"

namespace svelat::lattice {

/// r(x) = a(x) * b(x) for matrix-valued fields.
template <class vobj>
void local_mult(Lattice<vobj>& r, const Lattice<vobj>& a, const Lattice<vobj>& b) {
  a.check_same(b);
  thread_for(a.osites(), [&](std::int64_t o) { r[o] = a[o] * b[o]; });
}

/// r(x) = adj(a(x)).
template <class vobj>
void local_adj(Lattice<vobj>& r, const Lattice<vobj>& a) {
  thread_for(a.osites(), [&](std::int64_t o) { r[o] = tensor::adj(a[o]); });
}

/// Global sum of the per-site trace of a matrix field (deterministic
/// chunked reduction, see support/parallel.h).
template <class vobj>
auto local_trace_sum(const Lattice<vobj>& a) {
  using simd_type = typename Lattice<vobj>::simd_type;
  const simd_type acc = parallel_reduce(
      a.osites(), simd_type::zero(), [&](std::int64_t o) { return tensor::trace(a[o]); });
  return reduce(acc);
}

}  // namespace svelat::lattice
