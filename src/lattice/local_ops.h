// Site-local (pointwise) field operations beyond the linear-space basics
// in lattice.h: products of matrix fields, traces, adjoints.  These are
// the building blocks of gauge observables (plaquette, Wilson loops) and
// of the SU(3) throughput benchmarks.
#pragma once

#include "lattice/lattice.h"

namespace svelat::lattice {

/// r(x) = a(x) * b(x) for matrix-valued fields.
template <class vobj>
void local_mult(Lattice<vobj>& r, const Lattice<vobj>& a, const Lattice<vobj>& b) {
  a.check_same(b);
  for (std::int64_t o = 0; o < a.osites(); ++o) r[o] = a[o] * b[o];
}

/// r(x) = adj(a(x)).
template <class vobj>
void local_adj(Lattice<vobj>& r, const Lattice<vobj>& a) {
  for (std::int64_t o = 0; o < a.osites(); ++o) r[o] = tensor::adj(a[o]);
}

/// Global sum of the per-site trace of a matrix field.
template <class vobj>
auto local_trace_sum(const Lattice<vobj>& a) {
  using simd_type = typename Lattice<vobj>::simd_type;
  simd_type acc = simd_type::zero();
  for (std::int64_t o = 0; o < a.osites(); ++o) acc += tensor::trace(a[o]);
  return reduce(acc);
}

}  // namespace svelat::lattice
