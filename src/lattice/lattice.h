// Lattice<vobj, GridT>: a field of vectorized site objects over a grid.
//
// Storage is one vobj per *outer* site; SIMD lane l of each vobj belongs to
// virtual node l (paper Fig. 1).  Site-wise arithmetic maps directly onto
// the SIMD abstraction layer; global reductions reduce over lanes at the
// end.  peek/poke address *global* coordinates, hiding the layout.
//
// GridT defaults to the full-lattice GridCartesian; any type satisfying
// the same indexing concept (osites/isites/outer_index/inner_index/
// global_coor/operator==) works -- in particular GridRedBlackCartesian
// (lattice/red_black.h) gives half-checkerboard fields that store only
// one parity at half the memory.
#pragma once

#include <complex>

#include "lattice/cartesian.h"
#include "support/aligned.h"
#include "support/parallel.h"
#include "tensor/lane_ops.h"
#include "tensor/tensor.h"

namespace svelat::lattice {

template <class vobj, class GridT = GridCartesian>
class Lattice {
 public:
  using vector_object = vobj;
  using scalar_object = tensor::scalar_object_t<vobj>;
  using simd_type = tensor::scalar_element_t<vobj>;
  using grid_type = GridT;

  explicit Lattice(const GridT* grid)
      : grid_(grid), data_(static_cast<std::size_t>(grid->osites())) {
    SVELAT_ASSERT_MSG(grid->isites() == simd_type::Nsimd(),
                      "grid SIMD layout does not match the vector object's lane count");
  }

  const GridT* grid() const { return grid_; }
  std::int64_t osites() const { return grid_->osites(); }

  vobj& operator[](std::int64_t osite) { return data_[static_cast<std::size_t>(osite)]; }
  const vobj& operator[](std::int64_t osite) const {
    return data_[static_cast<std::size_t>(osite)];
  }

  /// Scalar site object at a global coordinate.
  scalar_object peek(const Coordinate& global) const {
    const std::int64_t o = grid_->outer_index(global);
    const unsigned l = grid_->inner_index(global);
    return tensor::peek_lane(data_[static_cast<std::size_t>(o)], l);
  }

  /// Overwrite the site at a global coordinate.
  void poke(const Coordinate& global, const scalar_object& s) {
    const std::int64_t o = grid_->outer_index(global);
    const unsigned l = grid_->inner_index(global);
    tensor::poke_lane(data_[static_cast<std::size_t>(o)], l, s);
  }

  void set_zero() {
    thread_for(osites(), [&](std::int64_t o) {
      tensor::zeroit(data_[static_cast<std::size_t>(o)]);
    });
  }

  // --- site-wise arithmetic ---------------------------------------------------
  friend Lattice operator+(const Lattice& a, const Lattice& b) {
    a.check_same(b);
    Lattice r(a.grid_);
    thread_for(a.osites(), [&](std::int64_t o) { r[o] = a[o] + b[o]; });
    return r;
  }
  friend Lattice operator-(const Lattice& a, const Lattice& b) {
    a.check_same(b);
    Lattice r(a.grid_);
    thread_for(a.osites(), [&](std::int64_t o) { r[o] = a[o] - b[o]; });
    return r;
  }
  friend Lattice operator-(const Lattice& a) {
    Lattice r(a.grid_);
    thread_for(a.osites(), [&](std::int64_t o) { r[o] = -a[o]; });
    return r;
  }
  Lattice& operator+=(const Lattice& o) {
    check_same(o);
    thread_for(osites(),
               [&](std::int64_t i) { data_[static_cast<std::size_t>(i)] += o[i]; });
    return *this;
  }
  Lattice& operator-=(const Lattice& o) {
    check_same(o);
    thread_for(osites(),
               [&](std::int64_t i) { data_[static_cast<std::size_t>(i)] -= o[i]; });
    return *this;
  }

  /// Scalar coefficient (complex or real, broadcast over sites and lanes).
  template <typename S>
  friend Lattice operator*(const S& s, const Lattice& a) {
    Lattice r(a.grid_);
    const simd_type coeff(s);  // splat once
    thread_for(a.osites(), [&](std::int64_t o) { r[o] = coeff * a[o]; });
    return r;
  }

  void check_same(const Lattice& o) const {
    SVELAT_ASSERT_MSG(*grid_ == *o.grid_, "lattices live on different grids");
  }

 private:
  const GridT* grid_;
  AlignedVector<vobj> data_;
};

/// r = x - y without the temporary the binary operator- would allocate --
/// the solver hot paths (residual setup, true-residual checks) run through
/// this so a warm solve constructs no fields.  Same per-site arithmetic as
/// operator-: results are bitwise identical.
template <class vobj, class GridT>
void sub(Lattice<vobj, GridT>& r, const Lattice<vobj, GridT>& x,
         const Lattice<vobj, GridT>& y) {
  x.check_same(y);
  thread_for(x.osites(), [&](std::int64_t o) { r[o] = x[o] - y[o]; });
}

/// axpy: r = a*x + y  (a is a scalar coefficient) -- the CG workhorse.
template <class vobj, class GridT, typename S>
void axpy(Lattice<vobj, GridT>& r, const S& a, const Lattice<vobj, GridT>& x,
          const Lattice<vobj, GridT>& y) {
  x.check_same(y);
  using simd_type = typename Lattice<vobj, GridT>::simd_type;
  const simd_type coeff{typename simd_type::scalar_type(a)};
  thread_for(x.osites(), [&](std::int64_t o) { r[o] = coeff * x[o] + y[o]; });
}

/// Global inner product: sum_x conj(a_x) . b_x, reduced over lanes.
/// Chunked deterministic reduction: bitwise independent of thread count.
template <class vobj, class GridT>
auto innerProduct(const Lattice<vobj, GridT>& a, const Lattice<vobj, GridT>& b) {
  a.check_same(b);
  using simd_type = typename Lattice<vobj, GridT>::simd_type;
  const simd_type acc = parallel_reduce(
      a.osites(), simd_type::zero(),
      [&](std::int64_t o) { return tensor::innerProduct(a[o], b[o]); });
  return reduce(acc);
}

/// Global squared norm.
template <class vobj, class GridT>
double norm2(const Lattice<vobj, GridT>& a) {
  return std::real(innerProduct(a, a));
}

/// Fused r = a*x + y followed by |r|^2 in a single pass over the field --
/// the per-iteration tail of CG/BiCGSTAB (update the residual, then take
/// its norm) without re-reading r.  Same deterministic reduction tree as
/// innerProduct, so the result matches axpy + norm2 run separately.
template <class vobj, class GridT, typename S>
double axpy_norm2(Lattice<vobj, GridT>& r, const S& a, const Lattice<vobj, GridT>& x,
                  const Lattice<vobj, GridT>& y) {
  x.check_same(y);
  using simd_type = typename Lattice<vobj, GridT>::simd_type;
  const simd_type coeff{typename simd_type::scalar_type(a)};
  const simd_type acc =
      parallel_reduce(x.osites(), simd_type::zero(), [&](std::int64_t o) {
        const vobj v = coeff * x[o] + y[o];
        r[o] = v;
        return tensor::innerProduct(v, v);
      });
  return std::real(reduce(acc));
}

}  // namespace svelat::lattice
