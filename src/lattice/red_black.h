// GridRedBlackCartesian: a half-checkerboard view of a GridCartesian.
//
// Site parity p(x) = (x+y+z+t) mod 2 splits the lattice into red/black
// sublattices.  Because the virtual-node decomposition keeps all SIMD
// lanes of one outer site at the same parity (enforced below, as in
// qcd::Checkerboard), a half-checkerboard grid is simply the ordered
// subset of *outer* sites with the chosen parity: the lane structure is
// untouched, storage and traffic halve.  This is the production solver
// layout of Grid's GridRedBlackCartesian; fields over it are
// Lattice<vobj, GridRedBlackCartesian>.
//
// The class satisfies the same indexing concept Lattice<> needs from
// GridCartesian (osites/isites/outer_index/inner_index/global_coor/
// global_index), so fills, peek/poke and the reduction kernels work on
// half fields unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/cartesian.h"
#include "lattice/lattice.h"
#include "support/parallel.h"

namespace svelat::lattice {

inline constexpr int kParityEven = 0;
inline constexpr int kParityOdd = 1;

/// Parity of a global coordinate.
inline int coordinate_parity(const Coordinate& x) {
  return (x[0] + x[1] + x[2] + x[3]) & 1;
}

/// Lanes of one outer site differ by multiples of the block extents;
/// parity is lane-uniform iff every decomposed block extent is even.
inline void assert_parity_uniform_layout(const GridCartesian& grid) {
  for (int mu = 0; mu < Nd; ++mu) {
    if (grid.simd_layout()[mu] > 1) {
      SVELAT_ASSERT_MSG(grid.rdimensions()[mu] % 2 == 0,
                        "even-odd needs parity-uniform virtual-node blocks "
                        "(even block extents in decomposed dimensions)");
    }
  }
}

/// Parity of an outer site (lane-uniform under the layout assertion).
inline int outer_site_parity(const GridCartesian& grid, std::int64_t osite) {
  return coordinate_parity(grid.global_coor(osite, 0));
}

class GridRedBlackCartesian {
 public:
  GridRedBlackCartesian(const GridCartesian* full, int parity)
      : full_(full), parity_(parity) {
    SVELAT_ASSERT_MSG(parity == kParityEven || parity == kParityOdd,
                      "parity must be 0 (even) or 1 (odd)");
    assert_parity_uniform_layout(*full);
    // On a torus a wrap hop in an odd extent links equal parities, which
    // breaks the red-black pairing the stencil relies on.
    for (int mu = 0; mu < Nd; ++mu)
      SVELAT_ASSERT_MSG(full->fdimensions()[mu] % 2 == 0,
                        "even-odd needs even lattice extents");
    f2h_.assign(static_cast<std::size_t>(full->osites()), -1);
    h2f_.reserve(static_cast<std::size_t>(full->osites()) / 2);
    for (std::int64_t o = 0; o < full->osites(); ++o) {
      if (outer_site_parity(*full, o) == parity) {
        f2h_[static_cast<std::size_t>(o)] = static_cast<std::int64_t>(h2f_.size());
        h2f_.push_back(o);
      }
    }
  }

  const GridCartesian* full_grid() const { return full_; }
  int parity() const { return parity_; }

  /// Number of outer sites of this parity (half the full grid's).
  std::int64_t osites() const { return static_cast<std::int64_t>(h2f_.size()); }
  unsigned isites() const { return full_->isites(); }
  /// Lattice sites of this parity: V/2.
  std::int64_t gsites() const { return osites() * isites(); }

  const Coordinate& fdimensions() const { return full_->fdimensions(); }

  /// Full-grid outer index of half-grid site `half`.
  std::int64_t full_osite(std::int64_t half) const {
    return h2f_[static_cast<std::size_t>(half)];
  }
  /// Half-grid index of a full-grid outer site (-1 for the other parity).
  std::int64_t half_osite(std::int64_t full) const {
    return f2h_[static_cast<std::size_t>(full)];
  }

  // --- Lattice<> indexing concept ------------------------------------------
  std::int64_t outer_index(const Coordinate& global) const {
    SVELAT_ASSERT_MSG(coordinate_parity(global) == parity_,
                      "coordinate parity does not match this checkerboard");
    return half_osite(full_->outer_index(global));
  }
  unsigned inner_index(const Coordinate& global) const {
    return full_->inner_index(global);
  }
  Coordinate global_coor(std::int64_t half, unsigned lane) const {
    return full_->global_coor(full_osite(half), lane);
  }
  /// Layout-independent site key on the *full* lattice, so half fields and
  /// full fields draw identical per-site RNG streams.
  std::int64_t global_index(const Coordinate& global) const {
    return full_->global_index(global);
  }

  friend bool operator==(const GridRedBlackCartesian& a, const GridRedBlackCartesian& b) {
    return *a.full_ == *b.full_ && a.parity_ == b.parity_;
  }

 private:
  const GridCartesian* full_;
  int parity_;
  std::vector<std::int64_t> h2f_;  ///< half osite -> full osite (ascending)
  std::vector<std::int64_t> f2h_;  ///< full osite -> half osite or -1
};

/// Extract one parity of a full field into a half field (Grid's
/// pickCheckerboard).  Sites of the other parity are simply not copied.
template <class vobj>
void pick_checkerboard(const Lattice<vobj>& full,
                       Lattice<vobj, GridRedBlackCartesian>& half) {
  const GridRedBlackCartesian* rb = half.grid();
  SVELAT_ASSERT_MSG(*rb->full_grid() == *full.grid(),
                    "checkerboard does not view this full grid");
  thread_for(rb->osites(), [&](std::int64_t h) { half[h] = full[rb->full_osite(h)]; });
}

/// Deposit a half field into the matching parity of a full field (Grid's
/// setCheckerboard).  The other parity of `full` is left untouched.
template <class vobj>
void set_checkerboard(Lattice<vobj>& full,
                      const Lattice<vobj, GridRedBlackCartesian>& half) {
  const GridRedBlackCartesian* rb = half.grid();
  SVELAT_ASSERT_MSG(*rb->full_grid() == *full.grid(),
                    "checkerboard does not view this full grid");
  thread_for(rb->osites(), [&](std::int64_t h) { full[rb->full_osite(h)] = half[h]; });
}

}  // namespace svelat::lattice
