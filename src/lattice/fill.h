// Layout-independent random field fills.
//
// Every complex component of every site is drawn from a key that depends
// only on (seed, global site index, component slot) -- never on the SIMD
// layout.  Two lattices with different vector lengths or backends filled
// from the same seed therefore hold bit-identical physics data, which is
// the foundation of the cross-VL verification (paper Sec. V-D).
#pragma once

#include <complex>

#include "lattice/lattice.h"
#include "support/parallel.h"
#include "support/random.h"

namespace svelat::lattice {

namespace detail {
template <class sobj>
struct component_view {
  using C = tensor::scalar_element_t<sobj>;
  static constexpr std::size_t count = sizeof(sobj) / sizeof(C);
  static_assert(count * sizeof(C) == sizeof(sobj),
                "site object must be an array of complex components");
};
}  // namespace detail

/// Fill with unit gaussians (independent per component and site).
template <class vobj, class GridT>
void gaussian_fill(const SiteRNG& rng, Lattice<vobj, GridT>& f) {
  using sobj = typename Lattice<vobj, GridT>::scalar_object;
  using view = detail::component_view<sobj>;
  using C = typename view::C;
  using R = typename C::value_type;
  const GridT* g = f.grid();
  // Counter-based draws are a pure function of (seed, site, slot), so the
  // outer-site loop threads without changing a single bit of the fill.
  // On a GridRedBlackCartesian the keys are full-lattice indices, so a
  // half-field fill bitwise matches the same parity of a full-field fill.
  thread_for(g->osites(), [&](std::int64_t o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const Coordinate x = g->global_coor(o, l);
      const auto key = static_cast<std::uint64_t>(g->global_index(x));
      sobj s;
      C* comp = reinterpret_cast<C*>(&s);
      for (std::size_t k = 0; k < view::count; ++k) {
        comp[k] = C(static_cast<R>(rng.gaussian(key, 2 * k)),
                    static_cast<R>(rng.gaussian(key, 2 * k + 1)));
      }
      f.poke(x, s);
    }
  });
}

/// Fill with uniform draws in [lo, hi) (component-wise, re and im).
template <class vobj, class GridT>
void uniform_fill(const SiteRNG& rng, Lattice<vobj, GridT>& f, double lo, double hi) {
  using sobj = typename Lattice<vobj, GridT>::scalar_object;
  using view = detail::component_view<sobj>;
  using C = typename view::C;
  using R = typename C::value_type;
  const GridT* g = f.grid();
  thread_for(g->osites(), [&](std::int64_t o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const Coordinate x = g->global_coor(o, l);
      const auto key = static_cast<std::uint64_t>(g->global_index(x));
      sobj s;
      C* comp = reinterpret_cast<C*>(&s);
      for (std::size_t k = 0; k < view::count; ++k) {
        comp[k] = C(static_cast<R>(rng.uniform(key, 2 * k, lo, hi)),
                    static_cast<R>(rng.uniform(key, 2 * k + 1, lo, hi)));
      }
      f.poke(x, s);
    }
  });
}

}  // namespace svelat::lattice
