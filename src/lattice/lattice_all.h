// Umbrella header for the lattice layer.
#pragma once

#include "lattice/block.h"        // IWYU pragma: export
#include "lattice/cartesian.h"    // IWYU pragma: export
#include "lattice/coordinates.h"  // IWYU pragma: export
#include "lattice/cshift.h"       // IWYU pragma: export
#include "lattice/fill.h"         // IWYU pragma: export
#include "lattice/lattice.h"      // IWYU pragma: export
#include "lattice/red_black.h"    // IWYU pragma: export
#include "lattice/stencil.h"      // IWYU pragma: export
