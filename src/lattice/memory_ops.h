// Bulk memory operations on lattice fields: copy, streaming (non-temporal)
// copy, and fill, implemented with the SVE load/store family.
//
// Paper Sec. II-C lists "load, store, memory prefetch, streaming memory
// access" among the machine-specific operations of Grid's abstraction
// layer; Grid's Benchmark_memory measures exactly these paths.  On the
// simulator the non-temporal variants are functionally identical but use
// the LDNT1/STNT1 opcodes -- the instruction mix is what the port has to
// get right; cache behaviour belongs to real silicon.
#pragma once

#include <cstring>

#include "lattice/lattice.h"
#include "support/parallel.h"
#include "sve/sve.h"

namespace svelat::lattice {

namespace detail {

template <class vobj>
inline double* raw(Lattice<vobj>& f) {
  return reinterpret_cast<double*>(&f[0]);
}
template <class vobj>
inline const double* raw(const Lattice<vobj>& f) {
  return reinterpret_cast<const double*>(&f[0]);
}
template <class vobj>
inline std::size_t raw_doubles(const Lattice<vobj>& f) {
  return static_cast<std::size_t>(f.osites()) * sizeof(vobj) / sizeof(double);
}

/// Thread a VLA loop over `n` doubles at vector-register granularity: body
/// runs once per vector offset with the same whilelt predicate the serial
/// `i += svcntd()` loop produced, so the load/store stream is unchanged.
/// The step (svcntd) is evaluated once at the call site rather than per
/// iteration, which drops one simulated CNTD per vector step relative to
/// the original serial loops.
template <class F>
inline void thread_for_vectors(std::size_t n, std::size_t step, F&& body) {
  const std::int64_t iters = static_cast<std::int64_t>((n + step - 1) / step);
  thread_for(iters, [&](std::int64_t v) { body(static_cast<std::size_t>(v) * step); });
}

}  // namespace detail

/// dst = src through regular SVE loads/stores (VLA loop).  Only for
/// double-precision fields (raw view in 64-bit lanes).
template <class vobj>
void copy_field(Lattice<vobj>& dst, const Lattice<vobj>& src) {
  static_assert(std::is_same_v<typename Lattice<vobj>::simd_type::real_type, double>,
                "raw copy path is specified for double-precision fields");
  dst.check_same(src);
  const std::size_t n = detail::raw_doubles(src);
  const double* in = detail::raw(src);
  double* out = detail::raw(dst);
  using namespace sve;
  detail::thread_for_vectors(n, svcntd(), [&](std::size_t i) {
    const svbool_t pg = svwhilelt_b64(i, n);
    svst1(pg, &out[i], svld1(pg, &in[i]));
  });
}

/// dst = src through non-temporal (streaming) loads/stores: the write-once
/// path that bypasses caches on hardware (LDNT1/STNT1).
template <class vobj>
void stream_copy_field(Lattice<vobj>& dst, const Lattice<vobj>& src) {
  static_assert(std::is_same_v<typename Lattice<vobj>::simd_type::real_type, double>,
                "raw copy path is specified for double-precision fields");
  dst.check_same(src);
  const std::size_t n = detail::raw_doubles(src);
  const double* in = detail::raw(src);
  double* out = detail::raw(dst);
  using namespace sve;
  detail::thread_for_vectors(n, svcntd(), [&](std::size_t i) {
    const svbool_t pg = svwhilelt_b64(i, n);
    svstnt1(pg, &out[i], svldnt1(pg, &in[i]));
  });
}

/// Copy with software prefetch two vectors ahead (the "memory prefetch"
/// operation of the Sec. II-C list).
template <class vobj>
void prefetch_copy_field(Lattice<vobj>& dst, const Lattice<vobj>& src) {
  static_assert(std::is_same_v<typename Lattice<vobj>::simd_type::real_type, double>,
                "raw copy path is specified for double-precision fields");
  dst.check_same(src);
  const std::size_t n = detail::raw_doubles(src);
  const double* in = detail::raw(src);
  double* out = detail::raw(dst);
  using namespace sve;
  const std::size_t step = svcntd();
  detail::thread_for_vectors(n, step, [&](std::size_t i) {
    const svbool_t pg = svwhilelt_b64(i, n);
    if (i + 2 * step < n) svprfd(pg, &in[i + 2 * step]);
    svst1(pg, &out[i], svld1(pg, &in[i]));
  });
}

/// Set every real lane of the field to a constant via DUP + ST1.
template <class vobj>
void splat_field(Lattice<vobj>& dst, double value) {
  static_assert(std::is_same_v<typename Lattice<vobj>::simd_type::real_type, double>);
  const std::size_t n = detail::raw_doubles(dst);
  double* out = detail::raw(dst);
  using namespace sve;
  const svfloat64_t v = svdup_f64(value);
  detail::thread_for_vectors(n, svcntd(), [&](std::size_t i) {
    svst1(svwhilelt_b64(i, n), &out[i], v);
  });
}

}  // namespace svelat::lattice
