#include "lattice/cartesian.h"

#include <cstdio>

namespace svelat::lattice {

std::string to_string(const Coordinate& c) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%d %d %d %d]", c[0], c[1], c[2], c[3]);
  return buf;
}

GridCartesian::GridCartesian(const Coordinate& fdimensions, const Coordinate& simd_layout)
    : fdims_(fdimensions), simd_(simd_layout) {
  isites_ = 1;
  osites_ = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    SVELAT_ASSERT_MSG(simd_[mu] == 1 || simd_[mu] == 2,
                      "simd_layout entries must be 1 or 2");
    SVELAT_ASSERT_MSG(fdims_[mu] > 0 && fdims_[mu] % simd_[mu] == 0,
                      "lattice extent must be divisible by the SIMD layout");
    rdims_[mu] = fdims_[mu] / simd_[mu];
    // With layout 2 the hop +1 and -1 from the block edge must land in the
    // partner lane, which requires at least 2 sites per block to keep
    // nearest neighbours out of the same vector (Fig. 1's "sufficiently
    // large" sub-lattice).
    SVELAT_ASSERT_MSG(simd_[mu] == 1 || rdims_[mu] >= 2,
                      "virtual-node blocks must span at least 2 sites in decomposed "
                      "dimensions");
    isites_ *= static_cast<unsigned>(simd_[mu]);
    osites_ *= rdims_[mu];
  }
  // Lane-lex strides (dim 0 fastest) for the permute distances.
  unsigned stride = 1;
  for (int mu = 0; mu < Nd; ++mu) {
    perm_dist_[mu] = (simd_[mu] == 2) ? stride : 0;
    stride *= static_cast<unsigned>(simd_[mu]);
  }
}

Coordinate GridCartesian::default_simd_layout(unsigned nsimd) {
  Coordinate layout{1, 1, 1, 1};
  int mu = Nd - 1;
  unsigned remaining = nsimd;
  SVELAT_ASSERT_MSG(nsimd != 0 && (nsimd & (nsimd - 1)) == 0 && nsimd <= 16,
                    "Nsimd must be a power of two <= 16 in 4 dimensions");
  while (remaining > 1) {
    layout[mu] *= 2;
    remaining /= 2;
    mu = (mu == 0) ? Nd - 1 : mu - 1;
  }
  return layout;
}

std::int64_t GridCartesian::outer_index(const Coordinate& global) const {
  Coordinate outer;
  for (int mu = 0; mu < Nd; ++mu) outer[mu] = global[mu] % rdims_[mu];
  return lex_index(outer, rdims_);
}

unsigned GridCartesian::inner_index(const Coordinate& global) const {
  Coordinate inner;
  for (int mu = 0; mu < Nd; ++mu) inner[mu] = global[mu] / rdims_[mu];
  Coordinate sdims = simd_;
  return static_cast<unsigned>(lex_index(inner, sdims));
}

Coordinate GridCartesian::global_coor(std::int64_t osite, unsigned lane) const {
  const Coordinate outer = lex_coor(osite, rdims_);
  Coordinate sdims = simd_;
  const Coordinate inner = lex_coor(static_cast<std::int64_t>(lane), sdims);
  Coordinate global;
  for (int mu = 0; mu < Nd; ++mu) global[mu] = outer[mu] + rdims_[mu] * inner[mu];
  return global;
}

GridCartesian::Neighbour GridCartesian::neighbour(std::int64_t osite, int mu,
                                                  int disp) const {
  SVELAT_ASSERT_MSG(disp == 1 || disp == -1, "only nearest-neighbour hops");
  Coordinate outer = lex_coor(osite, rdims_);
  const int target = outer[mu] + disp;
  Neighbour n;
  if (target >= 0 && target < rdims_[mu]) {
    // Stays inside the virtual-node block: same lanes, shifted outer site.
    outer[mu] = target;
    n.osite = lex_index(outer, rdims_);
    n.permute = 0;
    return n;
  }
  // Crosses the block boundary: outer coordinate wraps within the block and
  // every lane reads its partner lane (one block over in dimension mu).
  // With simd_layout[mu] == 1 the "partner" is the same lane (plain
  // periodic wrap); with 2 it is the XOR partner.
  outer[mu] = (target + rdims_[mu]) % rdims_[mu];
  n.osite = lex_index(outer, rdims_);
  n.permute = perm_dist_[mu];
  return n;
}

}  // namespace svelat::lattice
