// GridCartesian: the virtual-node decomposition of paper Fig. 1.
//
// Within one thread, the (sub-)lattice is overdecomposed into Nsimd
// "virtual nodes".  Each virtual node owns a contiguous block of
// rdimensions[] = fdimensions[] / simd_layout[] sites, and SIMD lane l of
// every vector register holds the data of virtual node l.  Keeping the
// block large guarantees that neighbouring lattice sites land in different
// *vector elements only when the stencil crosses a block boundary*, in
// which case the neighbour's data is the same outer site of a different
// lane: a pure lane permutation (no cross-vector shuffling).
//
// Restriction (sufficient for Nsimd <= 16 in 4 dimensions, i.e. all vector
// lengths the paper enables): each simd_layout entry is 1 or 2, so the
// boundary permutation is always a block-XOR exchange.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/coordinates.h"

namespace svelat::lattice {

class GridCartesian {
 public:
  /// Construct with an explicit SIMD layout (entries 1 or 2, product =
  /// Nsimd of the intended SIMD type, fdims divisible by 2*layout).
  GridCartesian(const Coordinate& fdimensions, const Coordinate& simd_layout);

  /// Spread Nsimd factors of two over the last dimensions (Grid's
  /// GridDefaultSimd): Nsimd=4 in 4d gives layout {1,1,2,2}.
  static Coordinate default_simd_layout(unsigned nsimd);

  const Coordinate& fdimensions() const { return fdims_; }
  const Coordinate& rdimensions() const { return rdims_; }
  const Coordinate& simd_layout() const { return simd_; }

  /// Number of outer (vectorized) sites and SIMD lanes per site.
  std::int64_t osites() const { return osites_; }
  unsigned isites() const { return isites_; }
  /// Total number of lattice sites V.
  std::int64_t gsites() const { return osites_ * isites_; }

  // --- coordinate mappings ---------------------------------------------------
  /// Outer site index of a global coordinate.
  std::int64_t outer_index(const Coordinate& global) const;
  /// SIMD lane (inner index / virtual node) of a global coordinate.
  unsigned inner_index(const Coordinate& global) const;
  /// Reconstruct the global coordinate of (outer site, lane).
  Coordinate global_coor(std::int64_t osite, unsigned lane) const;

  /// Layout-independent site key (lexicographic in the full lattice):
  /// used to seed per-site RNG draws identically for every layout.
  std::int64_t global_index(const Coordinate& global) const {
    return lex_index(global, fdims_);
  }

  // --- stencil geometry --------------------------------------------------------
  /// Result of a +/-1 hop from outer site `osite` in dimension mu.
  struct Neighbour {
    std::int64_t osite;  ///< outer index of the neighbouring site
    unsigned permute;    ///< 0: same lanes; else XOR block distance (in lanes)
  };

  /// Neighbour of `osite` displaced by +/-1 in dimension mu.  All lanes
  /// move coherently: if the hop crosses the virtual-node block boundary,
  /// every lane needs the partner lane's data at the wrapped outer site --
  /// `permute` is the lane-XOR distance (a power of two), else 0.
  Neighbour neighbour(std::int64_t osite, int mu, int disp) const;

  /// Lane-XOR distance for crossing the block boundary in dimension mu
  /// (0 when simd_layout[mu] == 1: no lane exchange needed).
  unsigned permute_distance(int mu) const { return perm_dist_[mu]; }

  friend bool operator==(const GridCartesian& a, const GridCartesian& b) {
    return a.fdims_ == b.fdims_ && a.simd_ == b.simd_;
  }

 private:
  Coordinate fdims_;
  Coordinate rdims_;
  Coordinate simd_;
  std::int64_t osites_;
  unsigned isites_;
  unsigned perm_dist_[Nd];
};

}  // namespace svelat::lattice
