// Precomputed nearest-neighbour stencil tables.
//
// The hopping term (paper Eq. (1)) reads 8 neighbours per site.  For each
// (outer site, direction) the table stores which outer site to read and
// whether the virtual-node boundary was crossed (in which case the vector
// must be lane-permuted, Fig. 1).  Building the table once amortizes the
// coordinate arithmetic over all Dhop applications -- the same role
// Grid's CartesianStencil plays.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/cartesian.h"
#include "support/parallel.h"

namespace svelat::lattice {

class Stencil {
 public:
  struct Entry {
    std::int64_t osite;  ///< neighbouring outer site
    unsigned permute;    ///< lane-XOR distance, 0 = no permutation
  };

  /// Directions are indexed 0..2*Nd-1: dir = mu for +mu, Nd + mu for -mu.
  static constexpr int num_dirs = 2 * Nd;

  explicit Stencil(const GridCartesian* grid) : grid_(grid) {
    table_.resize(static_cast<std::size_t>(grid->osites()) * num_dirs);
    thread_for(grid->osites(), [&](std::int64_t o) {
      for (int mu = 0; mu < Nd; ++mu) {
        const auto fwd = grid->neighbour(o, mu, +1);
        const auto bwd = grid->neighbour(o, mu, -1);
        table_[index(o, mu)] = {fwd.osite, fwd.permute};
        table_[index(o, Nd + mu)] = {bwd.osite, bwd.permute};
      }
    });
  }

  /// Table entry for a hop from `osite` in direction `dir` (see num_dirs).
  const Entry& entry(std::int64_t osite, int dir) const {
    return table_[index(osite, dir)];
  }

  const GridCartesian* grid() const { return grid_; }

 private:
  static std::size_t index(std::int64_t osite, int dir) {
    return static_cast<std::size_t>(osite) * num_dirs + static_cast<std::size_t>(dir);
  }

  const GridCartesian* grid_;
  std::vector<Entry> table_;
};

}  // namespace svelat::lattice
