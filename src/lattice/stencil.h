// Precomputed nearest-neighbour stencil tables.
//
// The hopping term (paper Eq. (1)) reads 8 neighbours per site.  For each
// (outer site, direction) the table stores which outer site to read and
// whether the virtual-node boundary was crossed (in which case the vector
// must be lane-permuted, Fig. 1).  Building the table once amortizes the
// coordinate arithmetic over all Dhop applications -- the same role
// Grid's CartesianStencil plays.
//
// Two flavours share one Entry layout (so the neighbour-fetch kernels are
// generic over the table type):
//   Stencil          -- full lattice, neighbours indexed on the same grid.
//   StencilRedBlack  -- half checkerboard: built for a *target* parity,
//                       entries index the *opposite*-parity half grid,
//                       since every nearest neighbour flips parity.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/cartesian.h"
#include "lattice/red_black.h"
#include "support/parallel.h"

namespace svelat::lattice {

/// One neighbour-table slot, shared by all stencil flavours.
struct StencilEntry {
  std::int64_t osite;  ///< neighbouring outer site (on the table's source grid)
  unsigned permute;    ///< lane-XOR distance, 0 = no permutation
};

/// Directions are indexed 0..2*Nd-1: dir = mu for +mu, Nd + mu for -mu.
inline constexpr int kStencilDirs = 2 * Nd;

class Stencil {
 public:
  using Entry = StencilEntry;

  static constexpr int num_dirs = kStencilDirs;

  explicit Stencil(const GridCartesian* grid) : grid_(grid) {
    table_.resize(static_cast<std::size_t>(grid->osites()) * num_dirs);
    thread_for(grid->osites(), [&](std::int64_t o) {
      for (int mu = 0; mu < Nd; ++mu) {
        const auto fwd = grid->neighbour(o, mu, +1);
        const auto bwd = grid->neighbour(o, mu, -1);
        table_[index(o, mu)] = {fwd.osite, fwd.permute};
        table_[index(o, Nd + mu)] = {bwd.osite, bwd.permute};
      }
    });
  }

  /// Table entry for a hop from `osite` in direction `dir` (see num_dirs).
  const Entry& entry(std::int64_t osite, int dir) const {
    return table_[index(osite, dir)];
  }

  const GridCartesian* grid() const { return grid_; }

 private:
  static std::size_t index(std::int64_t osite, int dir) {
    return static_cast<std::size_t>(osite) * num_dirs + static_cast<std::size_t>(dir);
  }

  const GridCartesian* grid_;
  std::vector<Entry> table_;
};

/// Parity-restricted stencil: for each site of the target half grid, the
/// 8 neighbours expressed as indices into the opposite-parity half grid.
/// dhop_eo/dhop_oe walk this table to read one parity and write the other
/// over half-volume fields -- half the traffic of the zero-padded path.
class StencilRedBlack {
 public:
  using Entry = StencilEntry;

  static constexpr int num_dirs = kStencilDirs;

  StencilRedBlack(const GridRedBlackCartesian* target,
                  const GridRedBlackCartesian* source)
      : target_(target), source_(source) {
    SVELAT_ASSERT_MSG(*target->full_grid() == *source->full_grid(),
                      "target and source checkerboards must view the same grid");
    SVELAT_ASSERT_MSG(target->parity() != source->parity(),
                      "nearest-neighbour hops flip parity: target and source "
                      "checkerboards must have opposite parities");
    const GridCartesian* full = target->full_grid();
    table_.resize(static_cast<std::size_t>(target->osites()) * num_dirs);
    thread_for(target->osites(), [&](std::int64_t h) {
      const std::int64_t o = target->full_osite(h);
      for (int mu = 0; mu < Nd; ++mu) {
        const auto fwd = full->neighbour(o, mu, +1);
        const auto bwd = full->neighbour(o, mu, -1);
        table_[index(h, mu)] = {source->half_osite(fwd.osite), fwd.permute};
        table_[index(h, Nd + mu)] = {source->half_osite(bwd.osite), bwd.permute};
      }
    });
  }

  /// Entry for a hop from target half site `hsite` in direction `dir`;
  /// Entry::osite indexes the source (opposite-parity) half grid.
  const Entry& entry(std::int64_t hsite, int dir) const {
    return table_[index(hsite, dir)];
  }

  const GridRedBlackCartesian* target() const { return target_; }
  const GridRedBlackCartesian* source() const { return source_; }

 private:
  static std::size_t index(std::int64_t hsite, int dir) {
    return static_cast<std::size_t>(hsite) * num_dirs + static_cast<std::size_t>(dir);
  }

  const GridRedBlackCartesian* target_;
  const GridRedBlackCartesian* source_;
  std::vector<Entry> table_;
};

}  // namespace svelat::lattice
