// Expression templates for lattice fields.
//
// "By implementing a suitable abstraction layer based on C++ template
//  expressions, the complexity is hidden from the user" (paper Sec. II-C).
// Grid evaluates whole field expressions in one fused pass over the
// lattice; this header provides the same mechanism for svelat:
//
//     eval_into(r, ref(a) + 2.0 * ref(b) - timesI(ref(c)));
//
// builds a type-encoded expression tree and evaluates it site by site --
// no temporary fields, one loop, and the innermost operations still land
// on the SIMD backends.  bench_dhop_ablation's expression ablation
// quantifies what the fusion saves over the eager operators in lattice.h.
#pragma once

#include "lattice/lattice.h"

namespace svelat::lattice {
namespace expr {

// --- leaf -------------------------------------------------------------------
template <class vobj>
struct FieldRef {
  const Lattice<vobj>* field;
  using value_type = vobj;
  vobj eval(std::int64_t o) const { return (*field)[o]; }
  const GridCartesian* grid() const { return field->grid(); }
};

/// Wrap a field as an expression leaf.
template <class vobj>
FieldRef<vobj> ref(const Lattice<vobj>& f) {
  return {&f};
}

template <typename T>
struct is_expr : std::false_type {};
template <class vobj>
struct is_expr<FieldRef<vobj>> : std::true_type {};

// --- nodes -----------------------------------------------------------------
template <class L, class R>
struct AddExpr {
  L l;
  R r;
  using value_type = typename L::value_type;
  value_type eval(std::int64_t o) const { return l.eval(o) + r.eval(o); }
  const GridCartesian* grid() const { return l.grid(); }
};

template <class L, class R>
struct SubExpr {
  L l;
  R r;
  using value_type = typename L::value_type;
  value_type eval(std::int64_t o) const { return l.eval(o) - r.eval(o); }
  const GridCartesian* grid() const { return l.grid(); }
};

template <class E>
struct NegExpr {
  E e;
  using value_type = typename E::value_type;
  value_type eval(std::int64_t o) const { return -e.eval(o); }
  const GridCartesian* grid() const { return e.grid(); }
};

template <class E>
struct ScaleExpr {
  using value_type = typename E::value_type;
  using simd_type = tensor::scalar_element_t<value_type>;
  simd_type coeff;
  E e;
  value_type eval(std::int64_t o) const { return coeff * e.eval(o); }
  const GridCartesian* grid() const { return e.grid(); }
};

template <class E>
struct TimesIExpr {
  E e;
  using value_type = typename E::value_type;
  value_type eval(std::int64_t o) const { return tensor::timesI(e.eval(o)); }
  const GridCartesian* grid() const { return e.grid(); }
};

template <class E>
struct ConjExpr {
  E e;
  using value_type = typename E::value_type;
  value_type eval(std::int64_t o) const { return tensor::conjugate(e.eval(o)); }
  const GridCartesian* grid() const { return e.grid(); }
};

template <class E>
struct AdjExpr {
  E e;
  using value_type = typename E::value_type;
  value_type eval(std::int64_t o) const { return tensor::adj(e.eval(o)); }
  const GridCartesian* grid() const { return e.grid(); }
};

/// Site-wise product (matrix*matrix etc., whatever operator* supports).
template <class L, class R>
struct MulExpr {
  L l;
  R r;
  using value_type = decltype(std::declval<typename L::value_type>() *
                              std::declval<typename R::value_type>());
  value_type eval(std::int64_t o) const { return l.eval(o) * r.eval(o); }
  const GridCartesian* grid() const { return l.grid(); }
};

template <class L, class R>
struct is_expr<AddExpr<L, R>> : std::true_type {};
template <class L, class R>
struct is_expr<SubExpr<L, R>> : std::true_type {};
template <class E>
struct is_expr<NegExpr<E>> : std::true_type {};
template <class E>
struct is_expr<ScaleExpr<E>> : std::true_type {};
template <class E>
struct is_expr<TimesIExpr<E>> : std::true_type {};
template <class E>
struct is_expr<ConjExpr<E>> : std::true_type {};
template <class E>
struct is_expr<AdjExpr<E>> : std::true_type {};
template <class L, class R>
struct is_expr<MulExpr<L, R>> : std::true_type {};

template <typename T>
inline constexpr bool is_expr_v = is_expr<T>::value;

// --- operators ----------------------------------------------------------------
template <class L, class R>
  requires(is_expr_v<L> && is_expr_v<R>)
AddExpr<L, R> operator+(L l, R r) {
  return {l, r};
}

template <class L, class R>
  requires(is_expr_v<L> && is_expr_v<R>)
SubExpr<L, R> operator-(L l, R r) {
  return {l, r};
}

template <class E>
  requires is_expr_v<E>
NegExpr<E> operator-(E e) {
  return {e};
}

/// Scalar coefficient (complex or real) from the left.
template <typename S, class E>
  requires(is_expr_v<E> && !is_expr_v<S>)
ScaleExpr<E> operator*(const S& s, E e) {
  using simd_type = typename ScaleExpr<E>::simd_type;
  return {simd_type{typename simd_type::scalar_type(s)}, e};
}

template <class L, class R>
  requires(is_expr_v<L> && is_expr_v<R>)
MulExpr<L, R> operator*(L l, R r) {
  return {l, r};
}

template <class E>
  requires is_expr_v<E>
TimesIExpr<E> timesI(E e) {
  return {e};
}

template <class E>
  requires is_expr_v<E>
ConjExpr<E> conjugate(E e) {
  return {e};
}

template <class E>
  requires is_expr_v<E>
AdjExpr<E> adj(E e) {
  return {e};
}

// --- evaluation -----------------------------------------------------------------
/// Fused single-pass evaluation of the expression into dst, threaded over
/// outer sites (the expression tree is read-only and shared by all threads).
template <class vobj, class E>
  requires is_expr_v<E>
void eval_into(Lattice<vobj>& dst, const E& e) {
  SVELAT_ASSERT_MSG(*dst.grid() == *e.grid(), "expression on a different grid");
  thread_for(dst.osites(), [&](std::int64_t o) { dst[o] = e.eval(o); });
}

/// Fused reduction: global sum of innerProduct(a_x, expr_x) without
/// materializing the expression.  Uses the same deterministic chunked
/// reduction as lattice::innerProduct, so fused and materialized paths
/// agree bitwise at any thread count.
template <class vobj, class E>
  requires is_expr_v<E>
auto inner_product(const Lattice<vobj>& a, const E& e) {
  using simd_type = typename Lattice<vobj>::simd_type;
  const simd_type acc = parallel_reduce(
      a.osites(), simd_type::zero(),
      [&](std::int64_t o) { return tensor::innerProduct(a[o], e.eval(o)); });
  return reduce(acc);
}

}  // namespace expr
}  // namespace svelat::lattice
