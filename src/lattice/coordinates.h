// Coordinates on the 4-dimensional space-time lattice.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "support/assert.h"

namespace svelat::lattice {

/// Number of space-time dimensions (paper Sec. II-A: mu = 1..4).
inline constexpr int Nd = 4;

using Coordinate = std::array<int, Nd>;

/// Lexicographic index with dimension 0 fastest.
inline std::int64_t lex_index(const Coordinate& coor, const Coordinate& dims) {
  std::int64_t idx = 0;
  for (int mu = Nd - 1; mu >= 0; --mu) {
    SVELAT_DEBUG_ASSERT(coor[mu] >= 0 && coor[mu] < dims[mu]);
    idx = idx * dims[mu] + coor[mu];
  }
  return idx;
}

/// Inverse of lex_index.
inline Coordinate lex_coor(std::int64_t idx, const Coordinate& dims) {
  Coordinate coor;
  for (int mu = 0; mu < Nd; ++mu) {
    coor[mu] = static_cast<int>(idx % dims[mu]);
    idx /= dims[mu];
  }
  return coor;
}

inline std::int64_t volume(const Coordinate& dims) {
  std::int64_t v = 1;
  for (int mu = 0; mu < Nd; ++mu) v *= dims[mu];
  return v;
}

/// Element-wise periodic wrap of coor into [0, dims).
inline Coordinate wrap(Coordinate coor, const Coordinate& dims) {
  for (int mu = 0; mu < Nd; ++mu) {
    coor[mu] %= dims[mu];
    if (coor[mu] < 0) coor[mu] += dims[mu];
  }
  return coor;
}

/// coor with coor[mu] displaced by disp (periodically wrapped).
inline Coordinate displace(Coordinate coor, int mu, int disp, const Coordinate& dims) {
  coor[mu] += disp;
  return wrap(coor, dims);
}

std::string to_string(const Coordinate& c);

}  // namespace svelat::lattice
