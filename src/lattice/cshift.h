// Circular shift of a lattice field by one site (the communication-free
// analogue of Grid's Cshift for the single-process case).
//
//   Cshift(f, mu, +1)(x) == f(x + mu^)
//
// Away from virtual-node block boundaries this is a copy from a different
// outer site; at the boundary the source vector additionally undergoes the
// Fig. 1 lane permutation.  The permutation is applied per SIMD scalar via
// permute_blocks (EXT/TBL on the SVE backends).
#pragma once

#include "lattice/lattice.h"
#include "lattice/stencil.h"

namespace svelat::lattice {

namespace detail {

/// Apply the lane permutation to every SIMD scalar of a site object.
template <typename T, std::size_t VLB, typename P>
inline void permute_site(simd::SimdComplex<T, VLB, P>& v, unsigned d) {
  v = permute_blocks(v, d);
}
template <class T>
inline void permute_site(tensor::iScalar<T>& t, unsigned d) {
  permute_site(t._internal, d);
}
template <class T, int N>
inline void permute_site(tensor::iVector<T, N>& t, unsigned d) {
  for (int i = 0; i < N; ++i) permute_site(t._internal[i], d);
}
template <class T, int N>
inline void permute_site(tensor::iMatrix<T, N>& t, unsigned d) {
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) permute_site(t._internal[i][j], d);
}

}  // namespace detail

/// Fetch the neighbour site object in direction dir (stencil convention:
/// dir < Nd is +mu, dir >= Nd is -mu), permuting lanes when the hop
/// crosses the virtual-node boundary.  Generic over the stencil flavour:
/// a full-grid Stencil reads the same field, a StencilRedBlack reads the
/// opposite-parity half field (both expose entry() -> StencilEntry).
template <class vobj, class GridT, class TableT>
inline vobj fetch_neighbour(const Lattice<vobj, GridT>& f, const TableT& st,
                            std::int64_t osite, int dir) {
  const auto& e = st.entry(osite, dir);
  vobj v = f[e.osite];
  // e.permute counts virtual nodes (complex lanes), the unit
  // permute_blocks expects.
  if (e.permute != 0) detail::permute_site(v, e.permute);
  return v;
}

/// Cshift by +/-1 in dimension mu: r(x) = f(x + disp*mu^).
template <class vobj>
Lattice<vobj> Cshift(const Lattice<vobj>& f, int mu, int disp) {
  SVELAT_ASSERT_MSG(disp == 1 || disp == -1, "Cshift supports +/-1 displacements");
  const Stencil st(f.grid());
  Lattice<vobj> r(f.grid());
  const int dir = disp == 1 ? mu : Nd + mu;
  thread_for(f.osites(), [&](std::int64_t o) { r[o] = fetch_neighbour(f, st, o, dir); });
  return r;
}

}  // namespace svelat::lattice
