// Distributed gauge I/O over a RankDecomposition (normative spec:
// docs/FORMAT.md).
//
// Two write paths, mirroring Qlattice's field-serial-io / field-dist-io
// split:
//
//  - save_gauge_root / load_gauge_root: ONE file.  The link fields are
//    gathered to rank 0 (comms::gather_root), which writes a plain SVGF
//    file; loading reads on rank 0 and scatters (comms::scatter_root).
//    Simple, portable, serialized through one process.
//
//  - save_gauge_distributed / load_gauge_distributed: one SVGF file PER
//    RANK (its sub-lattice, rank-local dims in the header) plus a
//    manifest "SVGM" file written by rank 0 that pins the global dims,
//    the decomposition and every rank file's whole-file CRC-32.  Writes
//    scale with ranks; the manifest makes a directory self-describing
//    and detects renamed, swapped or regenerated rank files.  Loading
//    needs no communicator: every rank validates the manifest and reads
//    its own file.
//
// Per-rank file names inside the directory are fixed: "rank<r>.svgf" and
// "manifest.svgm".
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "comms/distributed.h"
#include "io/crc32.h"
#include "io/gauge_io.h"

namespace svelat::io {

/// Wire tags of the distributed writer (stay clear of comms'
/// kScatterTag/kGatherTag block): per-rank file CRC reports to rank 0,
/// and the manifest-ready token of manifest_barrier.
inline constexpr int kManifestTag = 902;
inline constexpr int kManifestReadyTag = 903;

inline std::string rank_file_name(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".svgf";
}
inline std::string manifest_file_name(const std::string& dir) {
  return dir + "/manifest.svgm";
}

// --- manifest ---------------------------------------------------------------

struct RankFileEntry {
  std::uint64_t file_bytes = 0;
  std::uint32_t file_crc = 0;  ///< CRC-32 of the entire rank file
};

struct Manifest {
  lattice::Coordinate global_dims{0, 0, 0, 0};
  std::uint32_t split_dim = 0;
  std::vector<RankFileEntry> ranks;
};

inline std::vector<std::uint8_t> encode_manifest(const Manifest& m) {
  std::vector<std::uint8_t> out;
  put_u32(out, kManifestMagic);
  put_u32(out, kFormatVersion);
  for (int mu = 0; mu < lattice::Nd; ++mu)
    put_u32(out, static_cast<std::uint32_t>(m.global_dims[mu]));
  put_u32(out, m.split_dim);
  put_u32(out, static_cast<std::uint32_t>(m.ranks.size()));
  put_u32(out, crc32(out.data(), out.size()));
  std::vector<std::uint8_t> table;
  for (const RankFileEntry& e : m.ranks) {
    put_u64(table, e.file_bytes);
    put_u32(table, e.file_crc);
  }
  out.insert(out.end(), table.begin(), table.end());
  put_u32(out, crc32(table.data(), table.size()));
  return out;
}

inline Manifest decode_manifest(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  const std::uint32_t magic =
      get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest ends inside the header");
  if (magic != kManifestMagic)
    throw IoError(IoErrorCode::kBadManifest,
                  "not a svelat manifest (magic mismatch, expected \"SVGM\")");
  const std::uint32_t version =
      get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest version");
  if (version != kFormatVersion)
    throw IoError(IoErrorCode::kBadVersion,
                  "manifest is format version " + std::to_string(version) +
                      ", this reader understands version " +
                      std::to_string(kFormatVersion) + " only");
  Manifest m;
  for (int mu = 0; mu < lattice::Nd; ++mu)
    m.global_dims[mu] = static_cast<int>(
        get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest dims"));
  m.split_dim = get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest split_dim");
  const std::uint32_t nranks =
      get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest nranks");
  const std::uint32_t stored_crc =
      get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest header crc");
  const std::uint32_t header_crc = crc32(bytes.data(), off - 4);
  if (stored_crc != header_crc)
    throw IoError(IoErrorCode::kBadManifest,
                  "manifest header CRC-32 mismatch (a manifest byte was altered)");
  const std::size_t table_off = off;
  m.ranks.resize(nranks);
  for (RankFileEntry& e : m.ranks) {
    e.file_bytes = get_u64(bytes, off, IoErrorCode::kBadManifest, "manifest table");
    e.file_crc = get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest table");
  }
  const std::uint32_t stored_table =
      get_u32(bytes, off, IoErrorCode::kBadManifest, "manifest table crc");
  const std::uint32_t table_crc =
      crc32(bytes.data() + table_off, off - 4 - table_off);
  if (stored_table != table_crc)
    throw IoError(IoErrorCode::kBadManifest,
                  "manifest table CRC-32 mismatch (a manifest byte was altered)");
  if (off != bytes.size())
    throw IoError(IoErrorCode::kBadManifest,
                  "manifest has trailing bytes beyond the format");
  return m;
}

/// Manifest-vs-decomposition consistency (common to save and load).
inline void check_manifest_matches(const Manifest& m,
                                   const comms::RankDecomposition& decomp) {
  if (m.global_dims != decomp.global_dims() ||
      static_cast<int>(m.split_dim) != decomp.split_dim() ||
      static_cast<int>(m.ranks.size()) != decomp.ranks())
    throw IoError(IoErrorCode::kMismatch,
                  "manifest describes a " + lattice::to_string(m.global_dims) +
                      " lattice split along dim " + std::to_string(m.split_dim) +
                      " over " + std::to_string(m.ranks.size()) +
                      " ranks; the decomposition wants " +
                      lattice::to_string(decomp.global_dims()) + " along dim " +
                      std::to_string(decomp.split_dim()) + " over " +
                      std::to_string(decomp.ranks()) + " ranks");
}

// --- per-rank distributed write / read --------------------------------------

/// Every rank writes `<dir>/rank<r>.svgf` (its sub-lattice, with `meta`
/// attached on every rank), ships the file's CRC to rank 0, and rank 0
/// writes `<dir>/manifest.svgm`.  The local field must live on
/// decomp.grid(rank).
template <class S>
void save_gauge_distributed(const std::string& dir,
                            const comms::RankDecomposition& decomp,
                            comms::Communicator& comm, int rank,
                            const qcd::GaugeField<S>& local,
                            const std::vector<std::uint8_t>& meta = {}) {
  SVELAT_ASSERT_MSG(local.grid()->fdimensions() == decomp.local_dims(),
                    "local field does not live on the rank-local grid");
  std::filesystem::create_directories(dir);
  const std::vector<std::uint8_t> bytes = encode_gauge(local, meta);
  write_file_bytes(rank_file_name(dir, rank), bytes);

  RankFileEntry mine;
  mine.file_bytes = bytes.size();
  mine.file_crc = crc32(bytes.data(), bytes.size());
  if (rank == 0) {
    Manifest m;
    m.global_dims = decomp.global_dims();
    m.split_dim = static_cast<std::uint32_t>(decomp.split_dim());
    m.ranks.resize(static_cast<std::size_t>(decomp.ranks()));
    m.ranks[0] = mine;
    for (int r = 1; r < decomp.ranks(); ++r) {
      const std::vector<std::uint8_t> wire = comm.recv(0, r, kManifestTag);
      std::size_t off = 0;
      RankFileEntry e;
      e.file_bytes = get_u64(wire, off, IoErrorCode::kBadManifest, "crc report");
      e.file_crc = get_u32(wire, off, IoErrorCode::kBadManifest, "crc report");
      m.ranks[static_cast<std::size_t>(r)] = e;
    }
    write_file_bytes(manifest_file_name(dir), encode_manifest(m));
  } else {
    std::vector<std::uint8_t> wire;
    put_u64(wire, mine.file_bytes);
    put_u32(wire, mine.file_crc);
    comm.send(rank, 0, kManifestTag, std::move(wire));
  }
}

/// Publish the manifest to concurrently running rank processes: rank 0
/// (whose save_gauge_distributed returns only after the manifest is on
/// disk) posts a token to every other rank, which waits for it.  Call
/// between a distributed save and a subsequent read of the directory by
/// ranks != 0.  In-process drivers that serialize the rank calls (rank 0
/// last) do not need it.
///
/// The wait is BOUNDED: the token recv is limited by the transport's own
/// timeout times the retry policy's attempts.  When rank 0 never
/// publishes (it crashed, or stalled past the bound), the waiting rank
/// gets IoError(kBarrierTimeout) naming the transport's verdict instead
/// of hanging forever.
inline void manifest_barrier(comms::Communicator& comm, int rank) {
  if (rank == 0) {
    for (int r = 1; r < comm.size(); ++r) comm.send(0, r, kManifestReadyTag, {});
  } else {
    std::vector<std::uint8_t> token;
    const comms::CommStatus st = comm.recv_status(rank, 0, kManifestReadyTag, token);
    if (st != comms::CommStatus::kOk)
      throw IoError(IoErrorCode::kBarrierTimeout,
                    "rank " + std::to_string(rank) +
                        " waited for rank 0 to publish the manifest, but the ready "
                        "token never arrived (" +
                        comms::comm_status_name(st) + ")");
  }
}

/// Load rank `rank`'s sub-lattice from a distributed directory.  Needs no
/// communicator: the manifest is validated independently on every rank.
/// Returns the rank file's metadata blob.
template <class S>
std::vector<std::uint8_t> load_gauge_distributed(const std::string& dir,
                                                 const comms::RankDecomposition& decomp,
                                                 int rank, qcd::GaugeField<S>& local) {
  SVELAT_ASSERT_MSG(local.grid()->fdimensions() == decomp.local_dims(),
                    "local field does not live on the rank-local grid");
  const Manifest m = decode_manifest(read_file_bytes(manifest_file_name(dir)));
  check_manifest_matches(m, decomp);

  const std::vector<std::uint8_t> bytes = read_file_bytes(rank_file_name(dir, rank));
  const RankFileEntry& expect = m.ranks[static_cast<std::size_t>(rank)];
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  if (bytes.size() != expect.file_bytes || crc != expect.file_crc)
    throw IoError(IoErrorCode::kRankFileMismatch,
                  rank_file_name(dir, rank) + " does not match the manifest (" +
                      std::to_string(bytes.size()) + " bytes vs " +
                      std::to_string(expect.file_bytes) +
                      " expected; was a rank file replaced or regenerated without "
                      "rewriting the manifest?)");
  FieldFile file = decode_field_file(bytes);
  gauge_from_file(file, local);
  return std::move(file.meta);
}

// --- rank-0 single-file write / read ----------------------------------------

/// Gather the link fields to rank 0 and write ONE SVGF file with the
/// global dims.  `meta` is read on rank 0 only.
template <class S>
void save_gauge_root(const std::string& path, const comms::RankDecomposition& decomp,
                     comms::Communicator& comm, int rank,
                     const qcd::GaugeField<S>& local,
                     const std::vector<std::uint8_t>& meta = {}) {
  if (rank == 0) {
    lattice::GridCartesian global_grid(decomp.global_dims(),
                                       local.grid()->simd_layout());
    qcd::GaugeField<S> global(&global_grid);
    for (int mu = 0; mu < lattice::Nd; ++mu)
      comms::gather_root(decomp, comm, rank, local.U[mu], &global.U[mu]);
    save_gauge(path, global, meta);
  } else {
    for (int mu = 0; mu < lattice::Nd; ++mu)
      comms::gather_root(decomp, comm, rank, local.U[mu],
                         static_cast<lattice::Lattice<qcd::ColourMatrix<S>>*>(nullptr));
  }
}

/// Rank 0 reads ONE SVGF file with the global dims and scatters the
/// sub-lattices.  Returns the metadata blob on rank 0 (empty elsewhere).
template <class S>
std::vector<std::uint8_t> load_gauge_root(const std::string& path,
                                          const comms::RankDecomposition& decomp,
                                          comms::Communicator& comm, int rank,
                                          qcd::GaugeField<S>& local) {
  std::vector<std::uint8_t> meta;
  if (rank == 0) {
    lattice::GridCartesian global_grid(decomp.global_dims(),
                                       local.grid()->simd_layout());
    qcd::GaugeField<S> global(&global_grid);
    meta = load_gauge(path, global);
    for (int mu = 0; mu < lattice::Nd; ++mu)
      comms::scatter_root(decomp, comm, rank, &global.U[mu], local.U[mu]);
  } else {
    for (int mu = 0; mu < lattice::Nd; ++mu)
      comms::scatter_root(decomp, comm, rank,
                          static_cast<const lattice::Lattice<qcd::ColourMatrix<S>>*>(nullptr),
                          local.U[mu]);
  }
  return meta;
}

}  // namespace svelat::io
