#include "io/format.h"

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>

#include "io/crc32.h"

namespace svelat::io {

const char* io_error_name(IoErrorCode code) {
  switch (code) {
    case IoErrorCode::kOpenFailed: return "open failed";
    case IoErrorCode::kShortRead: return "short read";
    case IoErrorCode::kBadMagic: return "bad magic";
    case IoErrorCode::kBadVersion: return "unsupported version";
    case IoErrorCode::kCorruptHeader: return "corrupt header";
    case IoErrorCode::kTruncated: return "truncated";
    case IoErrorCode::kCorruptPayload: return "corrupt payload";
    case IoErrorCode::kTrailingBytes: return "trailing bytes";
    case IoErrorCode::kMismatch: return "mismatch";
    case IoErrorCode::kBadManifest: return "bad manifest";
    case IoErrorCode::kRankFileMismatch: return "rank-file mismatch";
    case IoErrorCode::kBarrierTimeout: return "barrier timeout";
  }
  return "unknown";
}

IoError::IoError(IoErrorCode code, const std::string& detail)
    : std::runtime_error(std::string("svelat io [") + io_error_name(code) +
                         "]: " + detail),
      code_(code) {}

// --- little-endian byte helpers ---------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& off,
                      IoErrorCode code, const char* what) {
  if (in.size() < off + 4) throw IoError(code, what);
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(in[off + k]) << (8 * k);
  off += 4;
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& off,
                      IoErrorCode code, const char* what) {
  if (in.size() < off + 8) throw IoError(code, what);
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(in[off + k]) << (8 * k);
  off += 8;
  return v;
}

double get_f64(const std::vector<std::uint8_t>& in, std::size_t& off, IoErrorCode code,
               const char* what) {
  return std::bit_cast<double>(get_u64(in, off, code, what));
}

// --- whole-file helpers -----------------------------------------------------

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw IoError(IoErrorCode::kOpenFailed, "cannot open '" + path + "' for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    throw IoError(IoErrorCode::kOpenFailed, "cannot determine size of '" + path + "'");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size())
    throw IoError(IoErrorCode::kOpenFailed, "cannot read all of '" + path + "'");
  return bytes;
}

namespace {
void (*g_write_fault_hook)() = nullptr;
}  // namespace

void set_write_fault_hook(void (*hook)()) { g_write_fault_hook = hook; }

void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  // Write-to-temp + fsync + rename: a crash anywhere in here leaves the
  // destination either untouched or fully replaced (rename(2) is atomic
  // within a filesystem), never a torn file.  Checkpoint recovery relies
  // on this: the newest file that decodes is a complete, valid state.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw IoError(IoErrorCode::kOpenFailed, "cannot open '" + tmp + "' for writing");
  const std::size_t put = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool synced = flushed && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (put != bytes.size() || !synced) {
    std::remove(tmp.c_str());
    throw IoError(IoErrorCode::kOpenFailed, "cannot write all of '" + tmp + "'");
  }
  if (g_write_fault_hook != nullptr) g_write_fault_hook();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError(IoErrorCode::kOpenFailed,
                  "cannot rename '" + tmp + "' into '" + path + "'");
  }
}

// --- the SVGF field file ----------------------------------------------------

namespace {

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

void check_header_sane(const FieldFileHeader& h) {
  for (int mu = 0; mu < lattice::Nd; ++mu)
    if (h.dims[mu] <= 0)
      throw IoError(IoErrorCode::kCorruptHeader,
                    "dimension " + std::to_string(mu) + " is " +
                        std::to_string(h.dims[mu]) + " (must be positive)");
  if (h.nfields == 0 || h.site_doubles == 0)
    throw IoError(IoErrorCode::kCorruptHeader,
                  "nfields/site_doubles must be positive");
}

}  // namespace

std::vector<std::uint8_t> encode_field_file(const FieldFileHeader& header,
                                            const std::vector<std::uint8_t>& meta,
                                            const std::vector<std::vector<double>>& planes) {
  check_header_sane(header);
  if (meta.size() != header.meta_bytes)
    throw IoError(IoErrorCode::kMismatch, "meta blob size does not match header");
  if (planes.size() != header.nplanes())
    throw IoError(IoErrorCode::kMismatch, "plane count does not match header");
  for (const auto& plane : planes)
    if (plane.size() != header.plane_doubles())
      throw IoError(IoErrorCode::kMismatch, "plane size does not match header");

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + meta.size() + 8 + planes.size() * 4 + 4 +
              planes.size() * header.plane_doubles() * 8);

  // Fixed header, then its CRC.
  put_u32(out, kFieldMagic);
  put_u32(out, header.version);
  put_u32(out, header.precision_bits);
  put_u32(out, header.field_kind);
  for (int mu = 0; mu < lattice::Nd; ++mu)
    put_u32(out, static_cast<std::uint32_t>(header.dims[mu]));
  put_u32(out, header.nfields);
  put_u32(out, header.site_doubles);
  put_u32(out, header.meta_bytes);
  put_u32(out, crc32(out.data(), kHeaderCrcOffset));

  // Metadata blob + its CRC (present only when non-empty).
  if (!meta.empty()) {
    out.insert(out.end(), meta.begin(), meta.end());
    put_u32(out, crc32(meta.data(), meta.size()));
  }

  // Plane-CRC table + its CRC, then the planes themselves.
  std::vector<std::uint8_t> payload;
  payload.reserve(planes.size() * header.plane_doubles() * 8);
  std::vector<std::uint8_t> table;
  table.reserve(planes.size() * 4);
  for (const auto& plane : planes) {
    std::vector<std::uint8_t> bytes;
    bytes.reserve(plane.size() * 8);
    for (const double v : plane) put_f64(bytes, v);
    put_u32(table, crc32(bytes.data(), bytes.size()));
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  out.insert(out.end(), table.begin(), table.end());
  put_u32(out, crc32(table.data(), table.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FieldFile decode_field_file(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes)
    throw IoError(IoErrorCode::kShortRead,
                  "file has " + std::to_string(bytes.size()) +
                      " bytes; the fixed header needs " + std::to_string(kHeaderBytes));

  std::size_t off = 0;
  const std::uint32_t magic = get_u32(bytes, off, IoErrorCode::kShortRead, "magic");
  if (magic != kFieldMagic)
    throw IoError(IoErrorCode::kBadMagic, "first bytes are " + hex32(magic) +
                                              ", not \"SVGF\" (" + hex32(kFieldMagic) +
                                              "): not a svelat field file");

  FieldFile file;
  FieldFileHeader& h = file.header;
  h.version = get_u32(bytes, off, IoErrorCode::kShortRead, "version");
  if (h.version != kFormatVersion)
    throw IoError(IoErrorCode::kBadVersion,
                  "file is format version " + std::to_string(h.version) +
                      ", this reader understands version " +
                      std::to_string(kFormatVersion) +
                      " only (see docs/FORMAT.md for version-bump rules)");

  h.precision_bits = get_u32(bytes, off, IoErrorCode::kShortRead, "precision");
  h.field_kind = get_u32(bytes, off, IoErrorCode::kShortRead, "field kind");
  for (int mu = 0; mu < lattice::Nd; ++mu)
    h.dims[mu] = static_cast<int>(get_u32(bytes, off, IoErrorCode::kShortRead, "dims"));
  h.nfields = get_u32(bytes, off, IoErrorCode::kShortRead, "nfields");
  h.site_doubles = get_u32(bytes, off, IoErrorCode::kShortRead, "site_doubles");
  h.meta_bytes = get_u32(bytes, off, IoErrorCode::kShortRead, "meta_bytes");

  const std::uint32_t stored_header_crc =
      get_u32(bytes, off, IoErrorCode::kShortRead, "header crc");
  const std::uint32_t header_crc = crc32(bytes.data(), kHeaderCrcOffset);
  if (stored_header_crc != header_crc)
    throw IoError(IoErrorCode::kCorruptHeader,
                  "header CRC-32 mismatch: stored " + hex32(stored_header_crc) +
                      ", computed " + hex32(header_crc) +
                      " (a header byte was altered)");
  check_header_sane(h);

  // With a validated header the exact file size is known; diagnose length
  // defects before touching the sections.
  const std::size_t meta_section = h.meta_bytes > 0 ? h.meta_bytes + 4 : 0;
  const std::size_t table_section = static_cast<std::size_t>(h.nplanes()) * 4 + 4;
  const std::size_t payload_section =
      static_cast<std::size_t>(h.nplanes()) * h.plane_doubles() * 8;
  const std::size_t expected =
      kHeaderBytes + meta_section + table_section + payload_section;
  if (bytes.size() < expected)
    throw IoError(IoErrorCode::kTruncated,
                  "file has " + std::to_string(bytes.size()) + " bytes but the header" +
                      " describes " + std::to_string(expected) +
                      ": the file was cut off mid-write or mid-copy");
  if (bytes.size() > expected)
    throw IoError(IoErrorCode::kTrailingBytes,
                  "file has " + std::to_string(bytes.size() - expected) +
                      " bytes beyond the " + std::to_string(expected) +
                      " the header describes");

  if (h.meta_bytes > 0) {
    file.meta.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                     bytes.begin() + static_cast<std::ptrdiff_t>(off + h.meta_bytes));
    off += h.meta_bytes;
    const std::uint32_t stored = get_u32(bytes, off, IoErrorCode::kTruncated, "meta crc");
    const std::uint32_t computed = crc32(file.meta.data(), file.meta.size());
    if (stored != computed)
      throw IoError(IoErrorCode::kCorruptPayload,
                    "metadata CRC-32 mismatch: stored " + hex32(stored) + ", computed " +
                        hex32(computed));
  }

  std::vector<std::uint32_t> plane_crcs(h.nplanes());
  const std::size_t table_off = off;
  for (auto& c : plane_crcs)
    c = get_u32(bytes, off, IoErrorCode::kTruncated, "plane crc table");
  {
    const std::uint32_t stored =
        get_u32(bytes, off, IoErrorCode::kTruncated, "table crc");
    const std::uint32_t computed =
        crc32(bytes.data() + table_off, static_cast<std::size_t>(h.nplanes()) * 4);
    if (stored != computed)
      throw IoError(IoErrorCode::kCorruptPayload,
                    "plane-CRC table CRC-32 mismatch: stored " + hex32(stored) +
                        ", computed " + hex32(computed));
  }

  file.planes.resize(h.nplanes());
  for (std::uint32_t p = 0; p < h.nplanes(); ++p) {
    const std::size_t plane_bytes = h.plane_doubles() * 8;
    const std::uint32_t computed = crc32(bytes.data() + off, plane_bytes);
    if (computed != plane_crcs[p])
      throw IoError(IoErrorCode::kCorruptPayload,
                    "plane " + std::to_string(p) + " (field " +
                        std::to_string(p / static_cast<std::uint32_t>(h.dims[0])) +
                        ", slice x0=" +
                        std::to_string(p % static_cast<std::uint32_t>(h.dims[0])) +
                        ") CRC-32 mismatch: stored " + hex32(plane_crcs[p]) +
                        ", computed " + hex32(computed) +
                        " (a payload byte was altered)");
    auto& plane = file.planes[p];
    plane.resize(h.plane_doubles());
    for (double& v : plane) v = get_f64(bytes, off, IoErrorCode::kTruncated, "payload");
  }
  return file;
}

void write_field_file(const std::string& path, const FieldFileHeader& header,
                      const std::vector<std::uint8_t>& meta,
                      const std::vector<std::vector<double>>& planes) {
  write_file_bytes(path, encode_field_file(header, meta, planes));
}

FieldFile read_field_file(const std::string& path) {
  return decode_field_file(read_file_bytes(path));
}

}  // namespace svelat::io
