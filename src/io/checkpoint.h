// Checkpoint / restart of a Metropolis Markov chain.
//
// A checkpoint is an ordinary SVGF gauge file whose metadata blob holds
// the qcd::MarkovState (couplings, proposal knobs, RNG seed, sweeps
// applied).  Because the chain's randomness is keyed, not sequenced
// (qcd/metropolis.h), field + state is the *complete* updater state:
//
//   save_checkpoint(path, gauge, state);            // possibly exit here
//   ...
//   MarkovState state = load_checkpoint(path, gauge);
//   qcd::advance(gauge, state, n);                  // == uninterrupted run
//
// resumes the ensemble bitwise-identically (tests/io/test_checkpoint.cpp).
//
// Meta-blob layout (inside the SVGF meta section, little-endian):
//
//   offset size field
//        0    4 meta magic 0x434D5653 ("SVMC")
//        4    4 meta version (1)
//        8    8 beta     (binary64)
//       16    8 epsilon  (binary64)
//       24    4 hits_per_link (u32)
//       28    8 seed     (u64)
//       36    8 sweeps_done (i64 as u64)
//
// The blob is CRC-protected by the container (io/format.h), so decoding
// only validates the magic/version and the length.
#pragma once

#include <string>
#include <vector>

#include "io/gauge_io.h"
#include "qcd/metropolis.h"

namespace svelat::io {

inline constexpr std::uint32_t kMarkovMetaMagic = 0x434D5653u;  // "SVMC" on disk
inline constexpr std::uint32_t kMarkovMetaVersion = 1;
inline constexpr std::size_t kMarkovMetaBytes = 44;

inline std::vector<std::uint8_t> encode_markov_meta(const qcd::MarkovState& state) {
  std::vector<std::uint8_t> meta;
  meta.reserve(kMarkovMetaBytes);
  put_u32(meta, kMarkovMetaMagic);
  put_u32(meta, kMarkovMetaVersion);
  put_f64(meta, state.params.beta);
  put_f64(meta, state.params.epsilon);
  put_u32(meta, static_cast<std::uint32_t>(state.params.hits_per_link));
  put_u64(meta, state.params.seed);
  put_u64(meta, static_cast<std::uint64_t>(state.sweeps_done));
  return meta;
}

inline qcd::MarkovState decode_markov_meta(const std::vector<std::uint8_t>& meta) {
  if (meta.size() != kMarkovMetaBytes)
    throw IoError(IoErrorCode::kMismatch,
                  "metadata blob has " + std::to_string(meta.size()) +
                      " bytes, a Markov checkpoint has " +
                      std::to_string(kMarkovMetaBytes) +
                      " (file is a gauge configuration without updater state?)");
  std::size_t off = 0;
  const std::uint32_t magic =
      get_u32(meta, off, IoErrorCode::kMismatch, "markov meta magic");
  if (magic != kMarkovMetaMagic)
    throw IoError(IoErrorCode::kMismatch,
                  "metadata blob is not a Markov checkpoint (magic mismatch)");
  const std::uint32_t version =
      get_u32(meta, off, IoErrorCode::kBadVersion, "markov meta version");
  if (version != kMarkovMetaVersion)
    throw IoError(IoErrorCode::kBadVersion,
                  "Markov checkpoint meta is version " + std::to_string(version) +
                      ", this reader understands version " +
                      std::to_string(kMarkovMetaVersion) + " only");
  qcd::MarkovState state;
  state.params.beta = get_f64(meta, off, IoErrorCode::kMismatch, "beta");
  state.params.epsilon = get_f64(meta, off, IoErrorCode::kMismatch, "epsilon");
  state.params.hits_per_link =
      static_cast<int>(get_u32(meta, off, IoErrorCode::kMismatch, "hits"));
  state.params.seed = get_u64(meta, off, IoErrorCode::kMismatch, "seed");
  state.sweeps_done = static_cast<std::int64_t>(
      get_u64(meta, off, IoErrorCode::kMismatch, "sweeps_done"));
  return state;
}

/// Write gauge field + chain state as one checkpoint file.
template <class S>
void save_checkpoint(const std::string& path, const qcd::GaugeField<S>& g,
                     const qcd::MarkovState& state) {
  save_gauge(path, g, encode_markov_meta(state));
}

/// Load a checkpoint: fills `g` and returns the chain state to resume from.
template <class S>
qcd::MarkovState load_checkpoint(const std::string& path, qcd::GaugeField<S>& g) {
  return decode_markov_meta(load_gauge(path, g));
}

}  // namespace svelat::io
