// Umbrella header of the I/O subsystem: versioned, CRC-checked gauge
// configuration files (single and per-rank distributed) and Markov-chain
// checkpoint / restart.  Normative on-disk spec: docs/FORMAT.md.
#pragma once

#include "io/checkpoint.h"  // IWYU pragma: export
#include "io/crc32.h"       // IWYU pragma: export
#include "io/dist_io.h"     // IWYU pragma: export
#include "io/format.h"      // IWYU pragma: export
#include "io/gauge_io.h"    // IWYU pragma: export
