// Save / load a gauge configuration as one SVGF file (io/format.h).
//
// The payload reuses the comms wire marshalling: plane (mu, s) is exactly
// pack_face(g.U[mu], /*dim=*/0, s) -- complex components in lexicographic
// site order -- and a link field is reassembled with unpack_field.  The
// on-disk bytes are therefore independent of the SIMD layout that held
// the field in memory: a file written from a VL=512 run loads bitwise
// identically into a VL=128 grid.
//
// Version-1 files carry binary64 payloads and require double-precision
// fields; adding an fp32 payload is a format version bump (docs/FORMAT.md).
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "comms/distributed.h"
#include "io/format.h"
#include "qcd/types.h"
#include "support/metrics.h"

namespace svelat::io {

/// Header describing the gauge field `g` (meta length filled by caller).
template <class S>
FieldFileHeader gauge_header(const qcd::GaugeField<S>& g, std::size_t meta_bytes) {
  static_assert(std::is_same_v<typename S::real_type, double>,
                "SVGF version 1 stores binary64; saving fp32 gauge fields needs a "
                "format version bump");
  FieldFileHeader h;
  h.precision_bits = 64;
  h.field_kind = kFieldKindGauge;
  h.dims = g.grid()->fdimensions();
  h.nfields = lattice::Nd;
  h.site_doubles = qcd::Nc * qcd::Nc * 2;
  h.meta_bytes = static_cast<std::uint32_t>(meta_bytes);
  return h;
}

/// Cut a gauge field into SVGF planes (field-major, then slice along x0).
template <class S>
std::vector<std::vector<double>> gauge_planes(const qcd::GaugeField<S>& g) {
  const lattice::Coordinate dims = g.grid()->fdimensions();
  std::vector<std::vector<double>> planes;
  planes.reserve(static_cast<std::size_t>(lattice::Nd) *
                 static_cast<std::size_t>(dims[0]));
  for (int mu = 0; mu < lattice::Nd; ++mu)
    for (int s = 0; s < dims[0]; ++s)
      planes.push_back(comms::pack_face(g.U[mu], /*mu=*/0, s));
  return planes;
}

/// Serialize a gauge field (plus an opaque metadata blob) to SVGF bytes.
template <class S>
std::vector<std::uint8_t> encode_gauge(const qcd::GaugeField<S>& g,
                                       const std::vector<std::uint8_t>& meta = {}) {
  return encode_field_file(gauge_header(g, meta.size()), meta, gauge_planes(g));
}

/// Validate a decoded file against the destination gauge field's grid.
template <class S>
void check_gauge_fits(const FieldFile& file, const qcd::GaugeField<S>& g) {
  const FieldFileHeader expect = gauge_header(g, file.header.meta_bytes);
  if (file.header.field_kind != expect.field_kind)
    throw IoError(IoErrorCode::kMismatch,
                  "file holds field kind " + std::to_string(file.header.field_kind) +
                      ", destination is a gauge field (kind " +
                      std::to_string(expect.field_kind) + ")");
  if (file.header.dims != expect.dims)
    throw IoError(IoErrorCode::kMismatch,
                  "file holds a " + lattice::to_string(file.header.dims) +
                      " lattice, destination grid is " + lattice::to_string(expect.dims));
  if (file.header.precision_bits != expect.precision_bits ||
      file.header.nfields != expect.nfields ||
      file.header.site_doubles != expect.site_doubles)
    throw IoError(IoErrorCode::kMismatch,
                  "file layout (precision/nfields/site_doubles) does not describe an "
                  "SU(3) gauge configuration");
}

/// Fill `g` from a decoded-and-validated file.
template <class S>
void gauge_from_file(const FieldFile& file, qcd::GaugeField<S>& g) {
  check_gauge_fits(file, g);
  const lattice::Coordinate dims = g.grid()->fdimensions();
  const std::size_t slices = static_cast<std::size_t>(dims[0]);
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    std::vector<double> flat;
    flat.reserve(slices * file.header.plane_doubles());
    for (std::size_t s = 0; s < slices; ++s) {
      const auto& plane = file.planes[static_cast<std::size_t>(mu) * slices + s];
      flat.insert(flat.end(), plane.begin(), plane.end());
    }
    comms::unpack_field(flat, g.U[mu]);
  }
}

/// Write `g` to `path` as one SVGF file.
template <class S>
void save_gauge(const std::string& path, const qcd::GaugeField<S>& g,
                const std::vector<std::uint8_t>& meta = {}) {
  // Metrics bytes are the on-disk (encoded) size: encode + CRC + the
  // atomic temp/fsync/rename write all fall inside the region.
  metrics::ScopedTimer mt("svgf_save");
  const std::vector<std::uint8_t> bytes = encode_gauge(g, meta);
  mt.add_bytes(static_cast<double>(bytes.size()));
  write_file_bytes(path, bytes);
}

/// Load `path` into `g` (grid dims must match); returns the metadata blob.
template <class S>
std::vector<std::uint8_t> load_gauge(const std::string& path, qcd::GaugeField<S>& g) {
  metrics::ScopedTimer mt("svgf_load");
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  mt.add_bytes(static_cast<double>(bytes.size()));
  FieldFile file = decode_field_file(bytes);
  gauge_from_file(file, g);
  return std::move(file.meta);
}

}  // namespace svelat::io
