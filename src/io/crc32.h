// CRC-32 (ISO-HDLC / zlib): the checksum of the on-disk format.
//
// Standard reflected polynomial 0xEDB88320, initial value 0xFFFFFFFF,
// final XOR 0xFFFFFFFF -- byte-identical to zlib's crc32() and to the
// checksums Qlattice stores next to its field files, so externally
// written checkers agree.  Incremental: crc32(b, crc32(a)) over the
// concatenation a||b equals crc32(a||b).
#pragma once

#include <cstddef>
#include <cstdint>

namespace svelat::io {

/// CRC-32 of `n` bytes, chained from a previous value (pass the default
/// 0 for a fresh checksum -- zlib semantics).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace svelat::io
