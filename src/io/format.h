// The SVGF on-disk field-file format (normative spec: docs/FORMAT.md).
//
// A field file is a fixed-endianness container for one lattice field
// group (version 1: the four colour-matrix link fields of a gauge
// configuration).  Everything multi-byte is little-endian on disk; reals
// are IEEE-754 binary64.  The payload is cut into *planes* -- one
// (field, slice-along-dimension-0) pair each, in the exact lexicographic
// order comms/distributed.h's pack_field produces -- and every plane
// carries its own CRC-32, so corruption is localized to a plane in the
// error message.  The header, the metadata blob and the plane-CRC table
// are each covered by their own CRC-32 as well.
//
// Validation is strict and total: a file either decodes to exactly the
// bytes that were written, or decoding throws an IoError whose code (and
// message) names the corruption class -- short read, bad magic,
// unsupported version, header/meta/table/plane CRC mismatch, truncation,
// trailing bytes.  Silent partial loads do not exist.
//
// This layer is deliberately untemplated: it moves bytes and doubles.
// The glue that knows about GaugeField lives in io/gauge_io.h.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "lattice/coordinates.h"

namespace svelat::io {

// --- errors -----------------------------------------------------------------

/// Corruption / failure classes of the I/O layer.  Every class produces a
/// distinct, greppable error message (tested by tests/io/test_format.cpp).
enum class IoErrorCode {
  kOpenFailed,       ///< file could not be opened / read / written
  kShortRead,        ///< file ends inside the fixed header
  kBadMagic,         ///< first four bytes are not "SVGF" (or "SVGM")
  kBadVersion,       ///< version field is not a version this reader knows
  kCorruptHeader,    ///< header CRC-32 mismatch (bit-flip in the header)
  kTruncated,        ///< file ends inside meta / CRC table / payload
  kCorruptPayload,   ///< plane or meta or table CRC-32 mismatch
  kTrailingBytes,    ///< file is longer than the format describes
  kMismatch,         ///< file is valid but does not fit the destination
  kBadManifest,      ///< distributed-run manifest invalid or inconsistent
  kRankFileMismatch, ///< rank file does not match the manifest's CRC
  kBarrierTimeout,   ///< manifest barrier: rank 0 never published the manifest
};

const char* io_error_name(IoErrorCode code);

class IoError : public std::runtime_error {
 public:
  IoError(IoErrorCode code, const std::string& detail);
  IoErrorCode code() const { return code_; }

 private:
  IoErrorCode code_;
};

// --- little-endian byte helpers ---------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Read little-endian scalars at `off`, advancing it.  Throw
/// IoError(code, what) when fewer than the needed bytes remain.
std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& off,
                      IoErrorCode code, const char* what);
std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& off,
                      IoErrorCode code, const char* what);
double get_f64(const std::vector<std::uint8_t>& in, std::size_t& off, IoErrorCode code,
               const char* what);

// --- whole-file helpers -----------------------------------------------------

/// Read a whole file; throws IoError(kOpenFailed) when it cannot be read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Write a whole file ATOMICALLY: the bytes go to `<path>.tmp` (written,
/// flushed and fsync'd), which is then rename(2)'d over `path`.  A crash
/// at ANY point -- including SIGKILL mid-write -- leaves either the old
/// file intact or the new file complete, never a torn mix; this is what
/// lets a restarted run trust the newest checkpoint that decodes.
/// Throws IoError(kOpenFailed) on any failure (the temp file is removed).
void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Test/fault hook: when set, invoked after the temp file is fully
/// written and synced but BEFORE the rename commits it.  The kill-during-
/// write tests install a hook that raises SIGKILL here to prove the
/// previous file survives an interrupted write.  Pass nullptr to clear.
void set_write_fault_hook(void (*hook)());

// --- the SVGF field file ----------------------------------------------------

inline constexpr std::uint32_t kFieldMagic = 0x46475653u;     // "SVGF" on disk
inline constexpr std::uint32_t kManifestMagic = 0x4D475653u;  // "SVGM" on disk
inline constexpr std::uint32_t kFormatVersion = 1;

/// field_kind values (what one "field" of the payload is).
inline constexpr std::uint32_t kFieldKindGauge = 1;  ///< Nd SU(3) link fields

/// Fixed header byte offsets (version 1).  The header is kHeaderBytes
/// long; header_crc covers bytes [0, kHeaderCrcOffset).
inline constexpr std::size_t kMagicOffset = 0;
inline constexpr std::size_t kVersionOffset = 4;
inline constexpr std::size_t kPrecisionOffset = 8;
inline constexpr std::size_t kFieldKindOffset = 12;
inline constexpr std::size_t kDimsOffset = 16;
inline constexpr std::size_t kNfieldsOffset = 32;
inline constexpr std::size_t kSiteDoublesOffset = 36;
inline constexpr std::size_t kMetaBytesOffset = 40;
inline constexpr std::size_t kHeaderCrcOffset = 44;
inline constexpr std::size_t kHeaderBytes = 48;

struct FieldFileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint32_t precision_bits = 64;  ///< bits per real in the source field
  std::uint32_t field_kind = kFieldKindGauge;
  lattice::Coordinate dims{0, 0, 0, 0};
  std::uint32_t nfields = 0;       ///< fields in the payload (gauge: Nd)
  std::uint32_t site_doubles = 0;  ///< doubles per site per field
  std::uint32_t meta_bytes = 0;    ///< length of the metadata blob

  std::uint32_t nplanes() const {
    return nfields * static_cast<std::uint32_t>(dims[0]);
  }
  std::size_t plane_doubles() const {
    return static_cast<std::size_t>(lattice::volume(dims) / dims[0]) * site_doubles;
  }
};

/// A fully decoded (and fully validated) field file.
struct FieldFile {
  FieldFileHeader header;
  std::vector<std::uint8_t> meta;
  /// planes[f * dims[0] + s]: field f, slice x0 == s, pack_face order.
  std::vector<std::vector<double>> planes;
};

/// Serialize header + meta + planes into the on-disk byte stream,
/// computing every CRC.  Plane count and sizes must match the header.
std::vector<std::uint8_t> encode_field_file(const FieldFileHeader& header,
                                            const std::vector<std::uint8_t>& meta,
                                            const std::vector<std::vector<double>>& planes);

/// Parse and validate the full byte stream (header, CRCs, sizes);
/// throws IoError naming the corruption class on any defect.
FieldFile decode_field_file(const std::vector<std::uint8_t>& bytes);

/// Convenience: encode + write / read + decode.
void write_field_file(const std::string& path, const FieldFileHeader& header,
                      const std::vector<std::uint8_t>& meta,
                      const std::vector<std::vector<double>>& planes);
FieldFile read_field_file(const std::string& path);

}  // namespace svelat::io
