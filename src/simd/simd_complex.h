// SimdComplex<T, VLB, Policy>: value-semantic wrapper over vec<T, VLB>
// holding VLB/(2*sizeof(T)) complex numbers, analogous to Grid's vComplexD
// / vComplexF types.
//
// This is the type the tensor and lattice layers are built on: one
// SimdComplex holds the same tensor element for Nsimd() different virtual
// nodes (paper Fig. 1).
#pragma once

#include <complex>
#include <iosfwd>
#include <sstream>

#include "simd/ops.h"

namespace svelat::simd {

template <typename T, std::size_t VLB, typename Policy>
class SimdComplex {
 public:
  using scalar_type = std::complex<T>;
  using real_type = T;
  using vector_type = vec<T, VLB>;
  using policy_type = Policy;
  using O = Ops<Policy>;

  static constexpr std::size_t vlb = VLB;

  /// Number of complex scalars per vector = number of virtual nodes.
  static constexpr unsigned Nsimd() {
    return static_cast<unsigned>(vector_type::size / 2);
  }

  SimdComplex() = default;

  /// Broadcast a complex scalar to all lanes.
  SimdComplex(scalar_type s)  // NOLINT(google-explicit-constructor): Grid-style splat
      : data_(O::template splat_complex<T, VLB>(s.real(), s.imag())) {}
  SimdComplex(T re, T im) : data_(O::template splat_complex<T, VLB>(re, im)) {}

  static SimdComplex zero() { return SimdComplex(O::template zero<T, VLB>()); }

  /// Lane access (complex units), used by layout code and tests.
  scalar_type lane(unsigned i) const { return {data_.v[2 * i], data_.v[2 * i + 1]}; }
  void set_lane(unsigned i, scalar_type s) {
    data_.v[2 * i] = s.real();
    data_.v[2 * i + 1] = s.imag();
  }

  const vector_type& raw() const { return data_; }
  vector_type& raw() { return data_; }

  // --- arithmetic -----------------------------------------------------------
  friend SimdComplex operator+(const SimdComplex& a, const SimdComplex& b) {
    return SimdComplex(O::add(a.data_, b.data_));
  }
  friend SimdComplex operator-(const SimdComplex& a, const SimdComplex& b) {
    return SimdComplex(O::sub(a.data_, b.data_));
  }
  friend SimdComplex operator*(const SimdComplex& a, const SimdComplex& b) {
    return SimdComplex(O::mult_complex(a.data_, b.data_));
  }
  friend SimdComplex operator-(const SimdComplex& a) {
    return SimdComplex(O::neg(a.data_));
  }

  SimdComplex& operator+=(const SimdComplex& o) { return *this = *this + o; }
  SimdComplex& operator-=(const SimdComplex& o) { return *this = *this - o; }
  SimdComplex& operator*=(const SimdComplex& o) { return *this = *this * o; }

  /// Real-scalar scaling.
  friend SimdComplex operator*(T s, const SimdComplex& a) {
    return SimdComplex(O::scale(a.data_, s));
  }
  friend SimdComplex operator*(const SimdComplex& a, T s) { return s * a; }

  /// Fused accumulate: this += x * y (maps to 2 FCMLA on the fcmla backend).
  void mac(const SimdComplex& x, const SimdComplex& y) {
    data_ = O::mac_complex(data_, x.data_, y.data_);
  }

  /// Fused accumulate with conjugated first factor: this += conj(x) * y.
  void mac_conj(const SimdComplex& x, const SimdComplex& y) {
    data_ = O::mac_conj_complex(data_, x.data_, y.data_);
  }

  friend SimdComplex conjugate(const SimdComplex& a) {
    return SimdComplex(O::conj(a.data_));
  }
  friend SimdComplex timesI(const SimdComplex& a) {
    return SimdComplex(O::times_i(a.data_));
  }
  friend SimdComplex timesMinusI(const SimdComplex& a) {
    return SimdComplex(O::times_minus_i(a.data_));
  }
  friend SimdComplex mult_conj(const SimdComplex& a, const SimdComplex& b) {
    return SimdComplex(O::mult_conj_complex(a.data_, b.data_));
  }

  /// Sum over lanes.
  friend scalar_type reduce(const SimdComplex& a) {
    return O::reduce_complex(a.data_);
  }

  /// Block-exchange permute: swaps groups of `d` complex lanes (d a power
  /// of two), the Fig. 1 boundary permutation.  d is in complex units.
  friend SimdComplex permute_blocks(const SimdComplex& a, unsigned d) {
    return SimdComplex(O::permute_xor(a.data_, 2 * static_cast<std::size_t>(d)));
  }

  friend bool operator==(const SimdComplex& a, const SimdComplex& b) {
    for (std::size_t i = 0; i < vector_type::size; ++i)
      if (a.data_.v[i] != b.data_.v[i]) return false;
    return true;
  }
  friend bool operator!=(const SimdComplex& a, const SimdComplex& b) { return !(a == b); }

  friend std::ostream& operator<<(std::ostream& os, const SimdComplex& a) {
    os << '<';
    for (unsigned i = 0; i < Nsimd(); ++i) {
      if (i) os << ", ";
      os << a.lane(i).real() << (a.lane(i).imag() < 0 ? "" : "+")
         << a.lane(i).imag() << 'i';
    }
    return os << '>';
  }

 private:
  explicit SimdComplex(const vector_type& v) : data_(v) {}

  vector_type data_;
};

/// The Grid-style aliases at the three paper vector lengths.
template <typename Policy>
using vComplexD128 = SimdComplex<double, kVLB128, Policy>;
template <typename Policy>
using vComplexD256 = SimdComplex<double, kVLB256, Policy>;
template <typename Policy>
using vComplexD512 = SimdComplex<double, kVLB512, Policy>;
template <typename Policy>
using vComplexF512 = SimdComplex<float, kVLB512, Policy>;

}  // namespace svelat::simd
