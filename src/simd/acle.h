// acle<T>: the utility traits structure of paper Sec. V-B.
//
// "We exploit different features of [the ACLE spec], which we augmented by
//  the utility C++ templated structure acle<T>.  It is used to simplify
//  mapping C++ data types in Grid to data types supported by SVE ACLE.
//  It is also used to provide various definitions for predication."
//
// The port is *not* vector-length agnostic: predicates cover the
// compile-time lane count of vec<T, VLB>, and using them is only correct
// when the hardware vector length matches VLB (paper Sec. V-B: "our
// implementation is bound to the vector length of the target hardware").
// check_vl() enforces that contract at run time against the simulator.
#pragma once

#include <cstdint>

#include "simd/vec.h"
#include "sve/sve.h"

namespace svelat::simd {

namespace detail {
/// Index table for swapping adjacent lanes (re <-> im), an ordinary static
/// array (storing ACLE vectors statically is illegal; tables in memory are
/// how the real port provides TBL indices).
template <typename I, std::size_t N>
struct SwapTable {
  I idx[N];
  constexpr SwapTable() : idx() {
    for (std::size_t i = 0; i < N; ++i) idx[i] = static_cast<I>(i ^ 1u);
  }
};

/// Index table for block permutes: lane i maps to lane i XOR d.
template <typename I, std::size_t N>
struct XorTable {
  I idx[N];
  constexpr explicit XorTable(std::size_t d) : idx() {
    for (std::size_t i = 0; i < N; ++i) idx[i] = static_cast<I>(i ^ d);
  }
};
}  // namespace detail

/// Maps a framework scalar type T to ACLE vector/predicate machinery for a
/// fixed vector length of VLB bytes.
template <typename T, std::size_t VLB>
struct acle {
  static_assert(is_vec_element<T>);

  /// The ACLE ("sizeless") vector type: function-local use only.
  using vt = sve::svreg<T>;
  /// Unsigned integer type of the same width, for TBL index vectors.
  using index_t = std::conditional_t<
      sizeof(T) == 8, std::uint64_t,
      std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint16_t>>;
  using ivt = sve::svreg<index_t>;

  static constexpr unsigned lanes = static_cast<unsigned>(vec<T, VLB>::size);

  /// Abort unless the simulated hardware VL matches the compile-time VLB.
  /// (The paper's binaries would silently misbehave; we fail loudly.)
  static void check_vl() {
    SVELAT_ASSERT_MSG(sve::vector_bytes() == VLB,
                      "simulated SVE vector length does not match the compile-time "
                      "SVE_VECTOR_LENGTH of this instantiation");
  }

  /// Full predicate over the vec<T> lanes.  PTRUE is what the fixed-size
  /// port uses (paper Sec. IV-D / V-C); correct only on matching hardware,
  /// which check_vl() guarantees.
  static sve::svbool_t pg1() {
    check_vl();
    return sve::svptrue<T>();
  }

  /// VLA-safe variant of pg1 (WHILELT): correct whenever hardware VL >= VLB.
  /// Used by tests that demonstrate the difference between the two schemes.
  static sve::svbool_t pg1_vla() { return sve::svwhilelt<T>(0, lanes); }

  /// Predicate selecting even lanes (real parts of interleaved complex).
  static sve::svbool_t pg_even() {
    return sve::svtrn1_b<T>(sve::svptrue<T>(), sve::svpfalse_b());
  }

  /// Predicate selecting odd lanes (imaginary parts).
  static sve::svbool_t pg_odd() {
    return sve::svtrn1_b<T>(sve::svpfalse_b(), sve::svptrue<T>());
  }

  static vt zero() { return sve::svdup<T>(T{}); }

  static vt load(const T* p) { return sve::svld1(pg1(), p); }
  static void store(T* p, const vt& v) { sve::svst1(pg1(), p, v); }

  /// TBL index vector swapping adjacent lanes (re <-> im).
  static ivt swap_index() {
    static constexpr detail::SwapTable<index_t, vec<T, VLB>::size> table{};
    return sve::svld1(pg1(), table.idx);
  }

  /// TBL index vector for the lane permutation i -> i XOR d (d a power of
  /// two): the block exchanges of Grid's virtual-node layout.
  static ivt xor_index(std::size_t d) {
    // One static table per distance; distances are powers of two < lanes.
    // (Sized for up to 2048-bit/f16 = 128 lanes: the "specialization of
    // lower-level functionality" wide vectors need, paper Sec. V-B.)
    static const detail::XorTable<index_t, vec<T, VLB>::size> tables[] = {
        detail::XorTable<index_t, vec<T, VLB>::size>(1),
        detail::XorTable<index_t, vec<T, VLB>::size>(2),
        detail::XorTable<index_t, vec<T, VLB>::size>(4),
        detail::XorTable<index_t, vec<T, VLB>::size>(8),
        detail::XorTable<index_t, vec<T, VLB>::size>(16),
        detail::XorTable<index_t, vec<T, VLB>::size>(32),
        detail::XorTable<index_t, vec<T, VLB>::size>(64),
    };
    unsigned log2d = 0;
    while ((1u << log2d) < d) ++log2d;
    SVELAT_ASSERT_MSG((1u << log2d) == d && d < lanes,
                      "permute distance must be a power of two below the lane count");
    return sve::svld1(pg1(), tables[log2d].idx);
  }
};

}  // namespace svelat::simd
