// Backend policies for the SIMD abstraction layer.
//
// Table I of the paper lists the architecture-specific implementations Grid
// ships; this port adds SVE ones.  We provide three interchangeable
// backends for every functor:
//
//   Generic   Plain C++ loops over the vec<T> array -- Table I's "generic
//             C/C++" row (what you get relying on auto-vectorization).
//   SveFcmla  ACLE using the dedicated complex-arithmetic instructions
//             (FCMLA/FCADD), the implementation of Sec. V-C.
//   SveReal   ACLE using real-arithmetic instructions plus permutes, the
//             alternative implementation of Sec. V-E ("at the cost of
//             higher instruction count").
#pragma once

namespace svelat::simd {

struct Generic {
  static constexpr const char* name = "generic";
};

struct SveFcmla {
  static constexpr const char* name = "sve-fcmla";
};

struct SveReal {
  static constexpr const char* name = "sve-real";
};

/// Runtime backend selector (for harness code that dispatches by name).
enum class Backend { kGeneric, kSveFcmla, kSveReal };

constexpr const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kGeneric: return Generic::name;
    case Backend::kSveFcmla: return SveFcmla::name;
    case Backend::kSveReal: return SveReal::name;
  }
  return "?";
}

}  // namespace svelat::simd
