// Functor layer: the machine-specific operations of Grid's abstraction
// (paper Sec. II-C): arithmetic of real and complex numbers, permutations
// of vector elements, load/store, and reductions -- in three backends
// (see policy.h).
//
// Data convention: a vec<T> holds size/2 complex numbers with real parts in
// even lanes and imaginary parts in odd lanes, the layout FCMLA expects
// (paper Sec. III-D).
#pragma once

#include <complex>

#include "simd/acle.h"
#include "simd/policy.h"
#include "simd/vec.h"

namespace svelat::simd {

template <class Policy>
struct Ops;

// ---------------------------------------------------------------------------
// Generic backend: plain scalar loops (Table I "generic C/C++" row).
// ---------------------------------------------------------------------------
template <>
struct Ops<Generic> {
  template <typename T, std::size_t VLB>
  static vec<T, VLB> zero() {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = T{};
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> splat_real(T s) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = s;
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> splat_complex(T re, T im) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = re;
      r.v[i + 1] = im;
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> add(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = x.v[i] + y.v[i];
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> sub(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = x.v[i] - y.v[i];
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> neg(const vec<T, VLB>& x) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = -x.v[i];
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mul(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = x.v[i] * y.v[i];
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> scale(const vec<T, VLB>& x, T s) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = x.v[i] * s;
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = x.v[i] * y.v[i] - x.v[i + 1] * y.v[i + 1];
      r.v[i + 1] = x.v[i] * y.v[i + 1] + x.v[i + 1] * y.v[i];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                 const vec<T, VLB>& y) {
    // Evaluation order matches the FCMLA path (rotation 90 then 0) so all
    // backends produce bit-identical results.
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = (acc.v[i] - x.v[i + 1] * y.v[i + 1]) + x.v[i] * y.v[i];
      r.v[i + 1] = (acc.v[i + 1] + x.v[i + 1] * y.v[i]) + x.v[i] * y.v[i + 1];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_conj_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = x.v[i] * y.v[i] + x.v[i + 1] * y.v[i + 1];
      r.v[i + 1] = x.v[i] * y.v[i + 1] - x.v[i + 1] * y.v[i];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_conj_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                      const vec<T, VLB>& y) {
    // Order matches the FCMLA path (rotation 0 then 270).
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = (acc.v[i] + x.v[i] * y.v[i]) + x.v[i + 1] * y.v[i + 1];
      r.v[i + 1] = (acc.v[i + 1] + x.v[i] * y.v[i + 1]) - x.v[i + 1] * y.v[i];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_i(const vec<T, VLB>& x) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = -x.v[i + 1];
      r.v[i + 1] = x.v[i];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_minus_i(const vec<T, VLB>& x) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = x.v[i + 1];
      r.v[i + 1] = -x.v[i];
    }
    return r;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> conj(const vec<T, VLB>& x) {
    vec<T, VLB> r;
    for (std::size_t i = 0; i < r.size; i += 2) {
      r.v[i] = x.v[i];
      r.v[i + 1] = -x.v[i + 1];
    }
    return r;
  }

  /// Lane permutation i -> i XOR d (d a power of two, in real lanes).
  template <typename T, std::size_t VLB>
  static vec<T, VLB> permute_xor(const vec<T, VLB>& x, std::size_t d) {
    SVELAT_DEBUG_ASSERT(d < vec<T, VLB>::size);
    vec<T, VLB> r;
    // Masking keeps the subscript provably in bounds (size is a power of
    // two; callers only pass valid d).
    for (std::size_t i = 0; i < r.size; ++i) r.v[i] = x.v[(i ^ d) & (r.size - 1)];
    return r;
  }

  template <typename T, std::size_t VLB>
  static std::complex<T> reduce_complex(const vec<T, VLB>& x) {
    T re{}, im{};
    for (std::size_t i = 0; i < x.size; i += 2) {
      re += x.v[i];
      im += x.v[i + 1];
    }
    return {re, im};
  }

  template <typename T, std::size_t VLB>
  static T reduce_real(const vec<T, VLB>& x) {
    T s{};
    for (std::size_t i = 0; i < x.size; ++i) s += x.v[i];
    return s;
  }
};

// ---------------------------------------------------------------------------
// Shared ACLE real arithmetic (used by both SVE backends).
// ---------------------------------------------------------------------------
namespace detail {
struct SveRealArith {
  template <typename T, std::size_t VLB>
  static vec<T, VLB> zero() {
    using A = acle<T, VLB>;
    vec<T, VLB> out;
    A::store(out.v, A::zero());
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> splat_real(T s) {
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    A::store(out.v, sve::svdup<T>(s));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> splat_complex(T re, T im) {
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    // dup the real part everywhere, then overwrite odd lanes (merge) with
    // the imaginary part.
    typename A::vt v = sve::svdup<T>(re);
    v = sve::svsel(A::pg_even(), v, sve::svdup<T>(im));
    A::store(out.v, v);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> add(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg = A::pg1();
    vec<T, VLB> out;
    A::store(out.v, sve::svadd_x(pg, A::load(x.v), A::load(y.v)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> sub(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg = A::pg1();
    vec<T, VLB> out;
    A::store(out.v, sve::svsub_x(pg, A::load(x.v), A::load(y.v)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> neg(const vec<T, VLB>& x) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg = A::pg1();
    vec<T, VLB> out;
    A::store(out.v, sve::svneg_x(pg, A::load(x.v)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mul(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg = A::pg1();
    vec<T, VLB> out;
    A::store(out.v, sve::svmul_x(pg, A::load(x.v), A::load(y.v)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> scale(const vec<T, VLB>& x, T s) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg = A::pg1();
    vec<T, VLB> out;
    A::store(out.v, sve::svmul_x(pg, A::load(x.v), sve::svdup<T>(s)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> conj(const vec<T, VLB>& x) {
    // Negate the imaginary (odd) lanes: one predicated FNEG.
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    A::store(out.v, sve::svneg_x(A::pg_odd(), A::load(x.v)));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> permute_xor(const vec<T, VLB>& x, std::size_t d) {
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    if (2 * d == A::lanes) {
      // Swapping the two halves is EXT by half the vector.
      const typename A::vt v = A::load(x.v);
      A::store(out.v, sve::svext(v, v, A::lanes / 2));
    } else {
      A::store(out.v, sve::svtbl(A::load(x.v), A::xor_index(d)));
    }
    return out;
  }

  template <typename T, std::size_t VLB>
  static std::complex<T> reduce_complex(const vec<T, VLB>& x) {
    using A = acle<T, VLB>;
    A::check_vl();
    const typename A::vt v = A::load(x.v);
    return {sve::svaddv(A::pg_even(), v), sve::svaddv(A::pg_odd(), v)};
  }

  template <typename T, std::size_t VLB>
  static T reduce_real(const vec<T, VLB>& x) {
    using A = acle<T, VLB>;
    return sve::svaddv(A::pg1(), A::load(x.v));
  }
};
}  // namespace detail

// ---------------------------------------------------------------------------
// SveFcmla backend: hardware complex arithmetic (Sec. V-C).
// ---------------------------------------------------------------------------
template <>
struct Ops<SveFcmla> : detail::SveRealArith {
  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    // The MultComplex listing of Sec. V-C: two FCMLAs from a zero
    // accumulator.
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    const typename A::vt zv = A::zero();
    const typename A::vt xv = sve::svld1(pg1, x.v);
    const typename A::vt yv = sve::svld1(pg1, y.v);
    typename A::vt rv = sve::svcmla_x(pg1, zv, xv, yv, 90);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 0);
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, rv);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                 const vec<T, VLB>& y) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    const typename A::vt xv = sve::svld1(pg1, x.v);
    const typename A::vt yv = sve::svld1(pg1, y.v);
    typename A::vt rv = sve::svld1(pg1, acc.v);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 90);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 0);
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, rv);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_conj_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    // conj(x)*y: rotations 0 and 270 (paper Eq. (2), conjugate case).
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    const typename A::vt zv = A::zero();
    const typename A::vt xv = sve::svld1(pg1, x.v);
    const typename A::vt yv = sve::svld1(pg1, y.v);
    typename A::vt rv = sve::svcmla_x(pg1, zv, xv, yv, 0);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 270);
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, rv);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_conj_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                      const vec<T, VLB>& y) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    const typename A::vt xv = sve::svld1(pg1, x.v);
    const typename A::vt yv = sve::svld1(pg1, y.v);
    typename A::vt rv = sve::svld1(pg1, acc.v);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 0);
    rv = sve::svcmla_x(pg1, rv, xv, yv, 270);
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, rv);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_i(const vec<T, VLB>& x) {
    // i*x = 0 + i*x: a single FCADD #90 against a zero vector.
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, sve::svcadd_x(pg1, A::zero(), sve::svld1(pg1, x.v), 90));
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_minus_i(const vec<T, VLB>& x) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, sve::svcadd_x(pg1, A::zero(), sve::svld1(pg1, x.v), 270));
    return out;
  }
};

// ---------------------------------------------------------------------------
// SveReal backend: complex arithmetic from real instructions + permutes
// (Sec. V-E alternative; higher instruction count by design).
// ---------------------------------------------------------------------------
template <>
struct Ops<SveReal> : detail::SveRealArith {
  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    return mac_impl<T, VLB>(nullptr, x, y, /*conjugate_x=*/false);
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                 const vec<T, VLB>& y) {
    return mac_impl<T, VLB>(&acc, x, y, /*conjugate_x=*/false);
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mult_conj_complex(const vec<T, VLB>& x, const vec<T, VLB>& y) {
    return mac_impl<T, VLB>(nullptr, x, y, /*conjugate_x=*/true);
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_conj_complex(const vec<T, VLB>& acc, const vec<T, VLB>& x,
                                      const vec<T, VLB>& y) {
    return mac_impl<T, VLB>(&acc, x, y, /*conjugate_x=*/true);
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_i(const vec<T, VLB>& x) {
    // Swap lanes (TBL) then negate the new real (even) lanes.
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    typename A::vt v = sve::svtbl(A::load(x.v), A::swap_index());
    v = sve::svneg_x(A::pg_even(), v);
    A::store(out.v, v);
    return out;
  }

  template <typename T, std::size_t VLB>
  static vec<T, VLB> times_minus_i(const vec<T, VLB>& x) {
    using A = acle<T, VLB>;
    A::check_vl();
    vec<T, VLB> out;
    typename A::vt v = sve::svtbl(A::load(x.v), A::swap_index());
    v = sve::svneg_x(A::pg_odd(), v);
    A::store(out.v, v);
    return out;
  }

 private:
  /// Complex multiply-accumulate from real instructions, evaluating in the
  /// exact order of the FCMLA rotation pairs so results stay bit-identical
  /// across backends:
  ///   x_re2 = trn1(x, x)           -- (xr, xr) pairs
  ///   x_im2 = trn2(x, x)           -- (xi, xi) pairs
  ///   y_sw  = tbl(y, swap)         -- (yi, yr) pairs
  ///   plain:  r = acc;  r -= x_im2*y_sw (even); r += x_im2*y_sw (odd);
  ///           r += x_re2*y            [rot 90 then rot 0]
  ///   conj:   r = acc;  r += x_re2*y;  r += x_im2*y_sw (even);
  ///           r -= x_im2*y_sw (odd)    [rot 0 then rot 270]
  /// Cost: 2 TRN + 1 index load + 1 TBL + 3 FMLA-class ops (+ loads/stores)
  /// versus 2 FCMLA -- the "higher instruction count" of paper Sec. V-E.
  template <typename T, std::size_t VLB>
  static vec<T, VLB> mac_impl(const vec<T, VLB>* acc, const vec<T, VLB>& x,
                              const vec<T, VLB>& y, bool conjugate_x) {
    using A = acle<T, VLB>;
    const sve::svbool_t pg1 = A::pg1();
    const sve::svbool_t even = A::pg_even();
    const sve::svbool_t odd = A::pg_odd();

    const typename A::vt xv = sve::svld1(pg1, x.v);
    const typename A::vt yv = sve::svld1(pg1, y.v);
    const typename A::vt x_re2 = sve::svtrn1(xv, xv);
    const typename A::vt x_im2 = sve::svtrn2(xv, xv);
    const typename A::vt y_sw = sve::svtbl(yv, A::swap_index());

    typename A::vt r = (acc != nullptr) ? sve::svld1(pg1, acc->v) : A::zero();
    if (!conjugate_x) {
      r = sve::svmls_x(even, r, x_im2, y_sw);
      r = sve::svmla_x(odd, r, x_im2, y_sw);
      r = sve::svmla_x(pg1, r, x_re2, yv);
    } else {
      r = sve::svmla_x(pg1, r, x_re2, yv);
      r = sve::svmla_x(even, r, x_im2, y_sw);
      r = sve::svmls_x(odd, r, x_im2, y_sw);
    }
    vec<T, VLB> out;
    sve::svst1(pg1, out.v, r);
    return out;
  }
};

}  // namespace svelat::simd
