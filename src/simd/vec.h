// The paper's vec<T>: an ordinary aligned array standing in for a vector
// register (Sec. V-C listing).
//
// SVE ACLE types are sizeless and may not be class member data, so Grid's
// usual "intrinsic type as member" scheme is impossible; instead the port
// stores an ordinary array whose byte size equals the compile-time constant
// SVE_VECTOR_LENGTH, and uses ACLE only inside functions, loading from and
// storing to this array.  Our VLB template parameter plays the role of
// SVE_VECTOR_LENGTH (bytes); the paper enables 16, 32 and 64 (128-, 256-
// and 512-bit vectors).
#pragma once

#include <complex>
#include <cstddef>

#include "support/half.h"

namespace svelat::simd {

/// Vector lengths (bytes) the lattice framework is specialized for,
/// mirroring the set enabled in Grid by the paper (Sec. V-B).
inline constexpr std::size_t kVLB128 = 16;
inline constexpr std::size_t kVLB256 = 32;
inline constexpr std::size_t kVLB512 = 64;

/// Wider vectors: the paper notes 1024-bit and beyond are "possible but
/// specialization of some of the lower-level functionality is necessary"
/// (Sec. V-B).  The SIMD layer implements them (the specialization turned
/// out to be the permute-table sizing in acle<T>); the lattice layer keeps
/// the paper's 128/256/512 restriction.
inline constexpr std::size_t kVLB1024 = 128;
inline constexpr std::size_t kVLB2048 = 256;

constexpr bool is_supported_vlb(std::size_t vlb) {
  return vlb == kVLB128 || vlb == kVLB256 || vlb == kVLB512 || vlb == kVLB1024 ||
         vlb == kVLB2048;
}

/// Grid-style SIMD storage: an aligned ordinary array of VLB bytes.
template <typename T, std::size_t VLB>
struct vec {
  static_assert(is_supported_vlb(VLB), "vector length must be 128..2048 bit");
  static_assert(VLB % sizeof(T) == 0, "vector length not a multiple of element size");

  static constexpr std::size_t size = VLB / sizeof(T);

  alignas(VLB) T v[size];
};

// The supported element types (Sec. V-B: 64/32/16-bit floats and 32-bit
// integers; fp16 participates only in precision conversion).
template <typename T>
inline constexpr bool is_vec_element =
    std::is_same_v<T, double> || std::is_same_v<T, float> || std::is_same_v<T, half> ||
    std::is_same_v<T, std::uint32_t>;

/// Number of complex scalars a vec<T> holds when (re, im) interleaved.
template <typename T, std::size_t VLB>
inline constexpr std::size_t complex_lanes = vec<T, VLB>::size / 2;

}  // namespace svelat::simd
