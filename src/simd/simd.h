// Umbrella header for the SIMD abstraction layer (paper Sec. V).
#pragma once

#include "simd/acle.h"          // IWYU pragma: export
#include "simd/ops.h"           // IWYU pragma: export
#include "simd/policy.h"        // IWYU pragma: export
#include "simd/simd_complex.h"  // IWYU pragma: export
#include "simd/vec.h"           // IWYU pragma: export
