// Lane extraction / insertion: conversion between vectorized site objects
// (tensors over SimdComplex) and scalar site objects (tensors over
// std::complex) for one SIMD lane.
//
// This is how the lattice container implements peek/poke by *global*
// coordinate: locate (outer site, lane), then project the vector object
// onto that lane.  It is also the glue for layout-independent RNG fills
// and for cross-VL bit-identity checks (paper Sec. V-D).
#pragma once

#include <complex>

#include "simd/simd_complex.h"
#include "tensor/tensor.h"

namespace svelat::tensor {

/// Scalar counterpart of a vectorized tensor nesting.
template <typename V>
struct scalar_object {
  using type = V;  // base case handled by the SimdComplex specialization
};
template <typename T, std::size_t VLB, typename P>
struct scalar_object<simd::SimdComplex<T, VLB, P>> {
  using type = std::complex<T>;
};
template <class T>
struct scalar_object<iScalar<T>> {
  using type = iScalar<typename scalar_object<T>::type>;
};
template <class T, int N>
struct scalar_object<iVector<T, N>> {
  using type = iVector<typename scalar_object<T>::type, N>;
};
template <class T, int N>
struct scalar_object<iMatrix<T, N>> {
  using type = iMatrix<typename scalar_object<T>::type, N>;
};
template <typename V>
using scalar_object_t = typename scalar_object<V>::type;

// --- peek_lane -----------------------------------------------------------------
template <typename T, std::size_t VLB, typename P>
inline std::complex<T> peek_lane(const simd::SimdComplex<T, VLB, P>& v, unsigned lane) {
  return v.lane(lane);
}
template <class T>
inline auto peek_lane(const iScalar<T>& v, unsigned lane) {
  iScalar<decltype(peek_lane(v._internal, lane))> r;
  r._internal = peek_lane(v._internal, lane);
  return r;
}
template <class T, int N>
inline auto peek_lane(const iVector<T, N>& v, unsigned lane) {
  iVector<decltype(peek_lane(v._internal[0], lane)), N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = peek_lane(v._internal[i], lane);
  return r;
}
template <class T, int N>
inline auto peek_lane(const iMatrix<T, N>& v, unsigned lane) {
  iMatrix<decltype(peek_lane(v._internal[0][0], lane)), N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = peek_lane(v._internal[i][j], lane);
  return r;
}

// --- poke_lane -----------------------------------------------------------------
template <typename T, std::size_t VLB, typename P>
inline void poke_lane(simd::SimdComplex<T, VLB, P>& v, unsigned lane,
                      const std::complex<T>& s) {
  v.set_lane(lane, s);
}
template <class T, class S>
inline void poke_lane(iScalar<T>& v, unsigned lane, const iScalar<S>& s) {
  poke_lane(v._internal, lane, s._internal);
}
template <class T, class S, int N>
inline void poke_lane(iVector<T, N>& v, unsigned lane, const iVector<S, N>& s) {
  for (int i = 0; i < N; ++i) poke_lane(v._internal[i], lane, s._internal[i]);
}
template <class T, class S, int N>
inline void poke_lane(iMatrix<T, N>& v, unsigned lane, const iMatrix<S, N>& s) {
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) poke_lane(v._internal[i][j], lane, s._internal[i][j]);
}

}  // namespace svelat::tensor
