// Nested tensor templates: the internal index structure of lattice fields.
//
// A lattice QCD site object carries colour indices a = 1..3 and spinor
// indices i = 1..4 (paper Sec. II-A).  Following Grid, site objects are
// built by nesting small tensor templates around a SIMD scalar:
//
//   gauge link   : iMatrix<S, 3>                 (SU(3) colour matrix)
//   half spinor  : iVector<iVector<S, 3>, 2>     (2 spins x 3 colours)
//   fermion site : iVector<iVector<S, 3>, 4>     (4 spins x 3 colours)
//
// where S is a SimdComplex (or plain std::complex in reference code).
// Arithmetic recurses through the nesting; the innermost operations land on
// the SIMD abstraction layer, so every tensor expression vectorizes over
// virtual nodes (paper Fig. 1).
#pragma once

#include <complex>
#include <type_traits>

#include "simd/simd_complex.h"

namespace svelat::tensor {

// ---------------------------------------------------------------------------
// Base-case scalar operations.  SimdComplex brings its own via friends;
// std::complex needs shims so reference (scalar) tensors work identically.
// ---------------------------------------------------------------------------
template <typename T>
inline std::complex<T> conjugate(const std::complex<T>& z) {
  return std::conj(z);
}
template <typename T>
inline std::complex<T> timesI(const std::complex<T>& z) {
  return {-z.imag(), z.real()};
}
template <typename T>
inline std::complex<T> timesMinusI(const std::complex<T>& z) {
  return {z.imag(), -z.real()};
}

/// adj of a scalar is plain conjugation.
template <typename T>
inline std::complex<T> adj(const std::complex<T>& z) {
  return std::conj(z);
}
template <typename T, std::size_t VLB, typename P>
inline simd::SimdComplex<T, VLB, P> adj(const simd::SimdComplex<T, VLB, P>& z) {
  return conjugate(z);
}

/// zeroit: assign additive identity (SimdComplex default-ctor is trivial).
template <typename T>
inline void zeroit(std::complex<T>& z) {
  z = {};
}
template <typename T, std::size_t VLB, typename P>
inline void zeroit(simd::SimdComplex<T, VLB, P>& z) {
  z = simd::SimdComplex<T, VLB, P>::zero();
}

/// mac: r += a * b, fused where the backend allows (FCMLA).
template <typename T>
inline void mac(std::complex<T>& r, const std::complex<T>& a, const std::complex<T>& b) {
  r += a * b;
}
template <typename T, std::size_t VLB, typename P>
inline void mac(simd::SimdComplex<T, VLB, P>& r, const simd::SimdComplex<T, VLB, P>& a,
                const simd::SimdComplex<T, VLB, P>& b) {
  r.mac(a, b);
}

/// mac_conj: r += conj(a) * b.
template <typename T>
inline void mac_conj(std::complex<T>& r, const std::complex<T>& a,
                     const std::complex<T>& b) {
  r += std::conj(a) * b;
}
template <typename T, std::size_t VLB, typename P>
inline void mac_conj(simd::SimdComplex<T, VLB, P>& r,
                     const simd::SimdComplex<T, VLB, P>& a,
                     const simd::SimdComplex<T, VLB, P>& b) {
  r.mac_conj(a, b);
}

/// innerProduct of scalars: conj(a) * b.
template <typename T>
inline std::complex<T> innerProduct(const std::complex<T>& a, const std::complex<T>& b) {
  return std::conj(a) * b;
}
template <typename T, std::size_t VLB, typename P>
inline simd::SimdComplex<T, VLB, P> innerProduct(const simd::SimdComplex<T, VLB, P>& a,
                                                 const simd::SimdComplex<T, VLB, P>& b) {
  return mult_conj(a, b);
}

// ---------------------------------------------------------------------------
// Tensor class templates.
// ---------------------------------------------------------------------------
template <class T>
class iScalar;
template <class T, int N>
class iVector;
template <class T, int N>
class iMatrix;

template <typename T>
struct is_tensor : std::false_type {};
template <class T>
struct is_tensor<iScalar<T>> : std::true_type {};
template <class T, int N>
struct is_tensor<iVector<T, N>> : std::true_type {};
template <class T, int N>
struct is_tensor<iMatrix<T, N>> : std::true_type {};
template <typename T>
inline constexpr bool is_tensor_v = is_tensor<T>::value;

/// Innermost (SIMD or std::complex) scalar type of a nesting.
template <typename T>
struct scalar_element {
  using type = T;
};
template <class T>
struct scalar_element<iScalar<T>> : scalar_element<T> {};
template <class T, int N>
struct scalar_element<iVector<T, N>> : scalar_element<T> {};
template <class T, int N>
struct scalar_element<iMatrix<T, N>> : scalar_element<T> {};
template <typename T>
using scalar_element_t = typename scalar_element<T>::type;

// --- iScalar -----------------------------------------------------------------
template <class T>
class iScalar {
 public:
  T _internal;

  iScalar() = default;
  explicit iScalar(const T& v) : _internal(v) {}

  T& operator()() { return _internal; }
  const T& operator()() const { return _internal; }

  friend iScalar operator+(const iScalar& a, const iScalar& b) {
    return iScalar(a._internal + b._internal);
  }
  friend iScalar operator-(const iScalar& a, const iScalar& b) {
    return iScalar(a._internal - b._internal);
  }
  friend iScalar operator-(const iScalar& a) { return iScalar(-a._internal); }
  friend iScalar operator*(const iScalar& a, const iScalar& b) {
    return iScalar(a._internal * b._internal);
  }
  iScalar& operator+=(const iScalar& o) {
    _internal = _internal + o._internal;
    return *this;
  }
  iScalar& operator-=(const iScalar& o) {
    _internal = _internal - o._internal;
    return *this;
  }

  friend bool operator==(const iScalar& a, const iScalar& b) {
    return a._internal == b._internal;
  }
};

// --- iVector -----------------------------------------------------------------
template <class T, int N>
class iVector {
 public:
  T _internal[N];

  static constexpr int size = N;

  T& operator()(int i) { return _internal[i]; }
  const T& operator()(int i) const { return _internal[i]; }

  friend iVector operator+(const iVector& a, const iVector& b) {
    iVector r;
    for (int i = 0; i < N; ++i) r._internal[i] = a._internal[i] + b._internal[i];
    return r;
  }
  friend iVector operator-(const iVector& a, const iVector& b) {
    iVector r;
    for (int i = 0; i < N; ++i) r._internal[i] = a._internal[i] - b._internal[i];
    return r;
  }
  friend iVector operator-(const iVector& a) {
    iVector r;
    for (int i = 0; i < N; ++i) r._internal[i] = -a._internal[i];
    return r;
  }
  iVector& operator+=(const iVector& o) {
    for (int i = 0; i < N; ++i) _internal[i] = _internal[i] + o._internal[i];
    return *this;
  }
  iVector& operator-=(const iVector& o) {
    for (int i = 0; i < N; ++i) _internal[i] = _internal[i] - o._internal[i];
    return *this;
  }

  friend bool operator==(const iVector& a, const iVector& b) {
    for (int i = 0; i < N; ++i)
      if (!(a._internal[i] == b._internal[i])) return false;
    return true;
  }
};

// --- iMatrix -----------------------------------------------------------------
template <class T, int N>
class iMatrix {
 public:
  T _internal[N][N];

  static constexpr int size = N;

  T& operator()(int i, int j) { return _internal[i][j]; }
  const T& operator()(int i, int j) const { return _internal[i][j]; }

  friend iMatrix operator+(const iMatrix& a, const iMatrix& b) {
    iMatrix r;
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j)
        r._internal[i][j] = a._internal[i][j] + b._internal[i][j];
    return r;
  }
  friend iMatrix operator-(const iMatrix& a, const iMatrix& b) {
    iMatrix r;
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j)
        r._internal[i][j] = a._internal[i][j] - b._internal[i][j];
    return r;
  }
  friend iMatrix operator-(const iMatrix& a) {
    iMatrix r;
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j) r._internal[i][j] = -a._internal[i][j];
    return r;
  }
  iMatrix& operator+=(const iMatrix& o) {
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j) _internal[i][j] = _internal[i][j] + o._internal[i][j];
    return *this;
  }

  friend bool operator==(const iMatrix& a, const iMatrix& b) {
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j)
        if (!(a._internal[i][j] == b._internal[i][j])) return false;
    return true;
  }
};

// ---------------------------------------------------------------------------
// Recursion: zeroit / mac / conjugate / timesI / adj / innerProduct.
// ---------------------------------------------------------------------------
template <class T>
inline void zeroit(iScalar<T>& t) {
  zeroit(t._internal);
}
template <class T, int N>
inline void zeroit(iVector<T, N>& t) {
  for (int i = 0; i < N; ++i) zeroit(t._internal[i]);
}
template <class T, int N>
inline void zeroit(iMatrix<T, N>& t) {
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) zeroit(t._internal[i][j]);
}

/// Zero-initialized tensor of type T.
template <class T>
inline T Zero() {
  T t;
  zeroit(t);
  return t;
}

template <class T>
inline iScalar<T> conjugate(const iScalar<T>& t) {
  return iScalar<T>(conjugate(t._internal));
}
template <class T, int N>
inline iVector<T, N> conjugate(const iVector<T, N>& t) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = conjugate(t._internal[i]);
  return r;
}
template <class T, int N>
inline iMatrix<T, N> conjugate(const iMatrix<T, N>& t) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = conjugate(t._internal[i][j]);
  return r;
}

template <class T>
inline iScalar<T> timesI(const iScalar<T>& t) {
  return iScalar<T>(timesI(t._internal));
}
template <class T, int N>
inline iVector<T, N> timesI(const iVector<T, N>& t) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = timesI(t._internal[i]);
  return r;
}
template <class T, int N>
inline iMatrix<T, N> timesI(const iMatrix<T, N>& t) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = timesI(t._internal[i][j]);
  return r;
}

template <class T>
inline iScalar<T> timesMinusI(const iScalar<T>& t) {
  return iScalar<T>(timesMinusI(t._internal));
}
template <class T, int N>
inline iVector<T, N> timesMinusI(const iVector<T, N>& t) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = timesMinusI(t._internal[i]);
  return r;
}
template <class T, int N>
inline iMatrix<T, N> timesMinusI(const iMatrix<T, N>& t) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = timesMinusI(t._internal[i][j]);
  return r;
}

/// adj: conjugate transpose.  Vectors conjugate element-wise; matrices also
/// transpose (Grid semantics).
template <class T>
inline iScalar<T> adj(const iScalar<T>& t) {
  return iScalar<T>(adj(t._internal));
}
template <class T, int N>
inline iVector<T, N> adj(const iVector<T, N>& t) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = adj(t._internal[i]);
  return r;
}
template <class T, int N>
inline iMatrix<T, N> adj(const iMatrix<T, N>& t) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = adj(t._internal[j][i]);
  return r;
}

/// transpose (no conjugation) of the outermost matrix index.
template <class T, int N>
inline iMatrix<T, N> transpose(const iMatrix<T, N>& t) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = t._internal[j][i];
  return r;
}

/// trace of the outermost matrix index.
template <class T, int N>
inline T trace(const iMatrix<T, N>& t) {
  T r = t._internal[0][0];
  for (int i = 1; i < N; ++i) r = r + t._internal[i][i];
  return r;
}

// ---------------------------------------------------------------------------
// Products.
// ---------------------------------------------------------------------------
/// matrix * vector (same inner type).
template <class T, int N>
inline iVector<T, N> operator*(const iMatrix<T, N>& m, const iVector<T, N>& v) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) {
    T acc;
    zeroit(acc);
    for (int j = 0; j < N; ++j) mac(acc, m._internal[i][j], v._internal[j]);
    r._internal[i] = acc;
  }
  return r;
}

/// matrix * matrix.
template <class T, int N>
inline iMatrix<T, N> operator*(const iMatrix<T, N>& a, const iMatrix<T, N>& b) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      T acc;
      zeroit(acc);
      for (int k = 0; k < N; ++k) mac(acc, a._internal[i][k], b._internal[k][j]);
      r._internal[i][j] = acc;
    }
  }
  return r;
}

/// adj(m) * v without materializing adj(m): the U-dagger hop of Eq. (1).
template <class T, int N>
inline iVector<T, N> adj_mul(const iMatrix<T, N>& m, const iVector<T, N>& v) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) {
    T acc;
    zeroit(acc);
    for (int j = 0; j < N; ++j) mac_conj(acc, m._internal[j][i], v._internal[j]);
    r._internal[i] = acc;
  }
  return r;
}

// Scalar-coefficient products (coefficient = innermost scalar type or a
// value convertible to it, e.g. std::complex<double> onto SimdComplex).
template <class T, int N, typename S>
  requires(!is_tensor_v<S>)
inline iVector<T, N> operator*(const S& s, const iVector<T, N>& v) {
  iVector<T, N> r;
  for (int i = 0; i < N; ++i) r._internal[i] = s * v._internal[i];
  return r;
}
template <class T, int N, typename S>
  requires(!is_tensor_v<S>)
inline iMatrix<T, N> operator*(const S& s, const iMatrix<T, N>& m) {
  iMatrix<T, N> r;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) r._internal[i][j] = s * m._internal[i][j];
  return r;
}
template <class T, typename S>
  requires(!is_tensor_v<S>)
inline iScalar<T> operator*(const S& s, const iScalar<T>& t) {
  return iScalar<T>(s * t._internal);
}

// Multiplication of nested vectors by a scalar on the *inner* level is
// covered by the recursion: S multiplies T via the overloads above when T
// is itself a tensor.

// ---------------------------------------------------------------------------
// Inner products.
// ---------------------------------------------------------------------------
template <class T>
inline auto innerProduct(const iScalar<T>& a, const iScalar<T>& b) {
  return innerProduct(a._internal, b._internal);
}
template <class T, int N>
inline auto innerProduct(const iVector<T, N>& a, const iVector<T, N>& b) {
  auto r = innerProduct(a._internal[0], b._internal[0]);
  for (int i = 1; i < N; ++i) r = r + innerProduct(a._internal[i], b._internal[i]);
  return r;
}
template <class T, int N>
inline auto innerProduct(const iMatrix<T, N>& a, const iMatrix<T, N>& b) {
  auto r = innerProduct(a._internal[0][0], b._internal[0][0]);
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) {
      if (i == 0 && j == 0) continue;
      r = r + innerProduct(a._internal[i][j], b._internal[i][j]);
    }
  return r;
}

}  // namespace svelat::tensor
