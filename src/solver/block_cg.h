// Block conjugate gradient: N simultaneous CG recurrences over one
// batched Schur operator.
//
// This is NOT a block-Krylov method -- each column runs the classical CG
// recurrence with its own alpha/beta/residual, so convergence behaviour
// per column is the sequential solver's.  What is shared is the MEMORY
// TRAFFIC: every operator application streams the gauge links once for
// all N columns (qcd/block.h), and the linear algebra runs over
// site-contiguous block fields in fused passes:
//
//   - pAp comes for free from the operator's second hopping sweep
//     (BlockSchurEvenOddWilson::mhat_norm2: on the normal equations
//     <p, Mhat^dag Mhat p> = |Mhat p|^2), removing the separate two-pass
//     inner product;
//   - the residual update fuses with its norm (block_axpy_norm2);
//   - the x and p updates fuse into one pass over the pre-update p
//     (block_xp_update).
//
// Determinism contract: all per-column reductions run through the fixed
// chunked tree of support/parallel.h, so results are bitwise
// thread-count-invariant and column-independent.  Relative to the
// sequential solver, the only arithmetic difference is the pAp
// regrouping documented at mhat_norm2 -- per-column results track the
// sequential facade path to rounding (eps), and the facade routes
// width-1 work to the literal sequential solver so N=1 stays bitwise.
//
// Per-column convergence is tracked independently through a ColumnMask:
// a converged or stalled column freezes (its fields keep their bits, it
// stops paying linalg) while its siblings iterate on -- a stalled
// right-hand side can never poison the others.
#pragma once

#include <array>
#include <cmath>

#include "lattice/block.h"
#include "qcd/block.h"
#include "solver/result.h"
#include "support/assert.h"
#include "support/metrics.h"

namespace svelat::solver {

/// Work block-fields of one block CG, owned by the facade's block engine
/// so repeated batched solves allocate nothing.
template <class S, int N>
struct BlockCGWorkspace {
  using HalfBlock = qcd::HalfBlockFermion<S, N>;

  explicit BlockCGWorkspace(const qcd::BlockSchurEvenOddWilson<S, N>& eo)
      : r(eo.even_grid()),
        p(eo.even_grid()),
        ap(eo.even_grid()),
        mp(eo.even_grid()) {}

  HalfBlock r, p, ap;
  HalfBlock mp;  ///< Mhat p, the mhat_norm2 intermediate
};

/// CG on the normal equations Mhat^dag Mhat x_j = b_j for all N columns
/// at once.  `x` carries the initial guesses.  Returns per-column stats;
/// iteration counts, residual histories and stall verdicts are tracked
/// per column exactly as N independent sequential CGs would report them.
///
/// The normal-equation true-residual epilogue of the sequential CG is
/// deliberately omitted: the batched Schur driver
/// (qcd::detail::block_schur_half_solve) computes the full-system true
/// residual per column afterwards, which is the number the facade
/// reports -- the epilogue operator application would be paid for
/// nothing.
template <class S, int N>
std::array<SolverResult, N> block_conjugate_gradient(
    const qcd::BlockSchurEvenOddWilson<S, N>& eo, BlockCGWorkspace<S, N>& ws,
    const qcd::HalfBlockFermion<S, N>& b, qcd::HalfBlockFermion<S, N>& x,
    double tolerance, int max_iterations, StallGuard guard = {}) {
  using vobj = qcd::SpinColourVector<S>;
  using GridT = lattice::GridRedBlackCartesian;

  std::array<SolverResult, N> stats;
  std::array<StallGuard, N> guards;
  guards.fill(guard);

  const std::array<double, N> b2 = lattice::block_norm2(b);
  std::array<double, N> stop, rr;
  for (int j = 0; j < N; ++j) {
    const auto u = static_cast<std::size_t>(j);
    SVELAT_ASSERT_MSG(b2[u] > 0.0, "CG needs a non-zero right-hand side");
    stats[u].algorithm = Algorithm::kCG;
    stats[u].target_residual = tolerance;
    stats[u].rhs_norm = std::sqrt(b2[u]);
    stop[u] = tolerance * tolerance * b2[u];
  }

  // r0 = b - A x0 (exact zeros through the operator for the zero guess
  // the Schur driver supplies, so r0 == b bitwise in that case).
  eo.mhat_dag_mhat(x, ws.ap);
  lattice::block_sub(ws.r, b, ws.ap);
  lattice::block_copy(ws.p, ws.r);
  rr = lattice::block_norm2(ws.r);

  lattice::ColumnMask<N> active = lattice::all_columns<N>();

  // Wall-clock model of the per-iteration linalg tail (operator sweeps
  // are timed at dhop_*_block granularity): block_axpy_norm2 is 3 block
  // passes / 12 flops per complex, block_xp_update 5 passes / 16 f/c.
  const double pass_bytes =
      static_cast<double>(b.osites()) * sizeof(vobj) * N;
  const double n_complex =
      pass_bytes / (2.0 * sizeof(typename S::real_type));
  const double iter_bytes = 8.0 * pass_bytes;
  const double iter_flops = 28.0 * n_complex;

  std::array<double, N> alpha{}, nal{}, beta{};
  for (int k = 0; k < max_iterations; ++k) {
    bool any = false;
    for (int j = 0; j < N; ++j) {
      const auto u = static_cast<std::size_t>(j);
      if (!active[u]) continue;
      stats[u].residual_history.push_back(std::sqrt(rr[u] / b2[u]));
      if (rr[u] <= stop[u]) {
        active[u] = false;  // converged: freeze, siblings iterate on
        continue;
      }
      if ((stats[u].stall = guards[u].check(stats[u].residual_history.back())) !=
          StallReason::kNone) {
        active[u] = false;  // stalled/diverged: freeze without poisoning
        continue;
      }
      any = true;
    }
    if (!any) break;

    // mp = Mhat p and pap = |Mhat p|^2 fused into the operator's second
    // sweep; ap = Mhat^dag mp completes A p.
    const std::array<double, N> pap = eo.mhat_norm2(ws.p, ws.mp);
    eo.mhat_dag(ws.mp, ws.ap);
    {
      metrics::ScopedTimer mt("block_cg_linalg", iter_bytes, iter_flops);
      for (int j = 0; j < N; ++j) {
        const auto u = static_cast<std::size_t>(j);
        if (!active[u]) continue;
        SVELAT_ASSERT_MSG(pap[u] > 0.0, "operator is not positive definite");
        alpha[u] = rr[u] / pap[u];
        nal[u] = -alpha[u];
      }
      const std::array<double, N> rr_next =
          lattice::block_axpy_norm2<vobj, N, GridT>(ws.r, nal, ws.ap, ws.r,
                                                    active);
      for (int j = 0; j < N; ++j) {
        const auto u = static_cast<std::size_t>(j);
        if (!active[u]) continue;
        beta[u] = rr_next[u] / rr[u];
      }
      // x += alpha p_old; p = beta p_old + r_new, one fused pass.
      lattice::block_xp_update<vobj, N, GridT>(x, ws.p, ws.r, alpha, beta,
                                               active);
      for (int j = 0; j < N; ++j) {
        const auto u = static_cast<std::size_t>(j);
        if (!active[u]) continue;
        rr[u] = rr_next[u];
        stats[u].iterations = k + 1;
      }
    }
  }

  for (int j = 0; j < N; ++j) {
    const auto u = static_cast<std::size_t>(j);
    stats[u].converged = rr[u] <= stop[u];
    stats[u].final_residual = std::sqrt(rr[u] / b2[u]);
  }
  return stats;
}

}  // namespace svelat::solver
