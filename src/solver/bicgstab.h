// BiCGSTAB: solves the non-hermitian system M x = b directly, avoiding the
// condition-number squaring of the normal equations that CG needs.
// Standard alternative iterative solver in LQCD codes for Wilson fermions
// (the paper's Sec. II-A "iterative solvers like Conjugate Gradient").
#pragma once

#include <cmath>

#include "solver/cg.h"

namespace svelat::solver {

/// BiCGSTAB for a general (non-hermitian) operator `op`.  `x` carries the
/// initial guess and receives the solution.  An armed StallGuard
/// (default: off) cuts the loop short on divergence or stall, reporting
/// the reason in SolverResult::stall.  A caller-owned `workspace` makes
/// repeated solves allocation-free (slots kR/kR0/kP/kV/kS/kT); without
/// one the work fields are constructed locally, exactly as before.
template <class Field, class LinearOp>
SolverResult bicgstab(const LinearOp& op, const Field& b, Field& x, double tolerance,
                      int max_iterations, StallGuard guard = {},
                      SolverWorkspace<Field>* workspace = nullptr) {
  using C = decltype(innerProduct(b, b));
  SolverResult stats;
  stats.algorithm = Algorithm::kBiCGSTAB;
  stats.target_residual = tolerance;

  const double b2 = norm2(b);
  SVELAT_ASSERT_MSG(b2 > 0.0, "BiCGSTAB needs a non-zero right-hand side");
  stats.rhs_norm = std::sqrt(b2);
  const double stop = tolerance * tolerance * b2;

  SolverWorkspace<Field> local;
  SolverWorkspace<Field>& pool = workspace ? *workspace : local;
  using WS = SolverWorkspace<Field>;
  Field& r = pool.get(WS::kR, b.grid());
  Field& r0 = pool.get(WS::kR0, b.grid());
  Field& p = pool.get(WS::kP, b.grid());
  Field& v = pool.get(WS::kV, b.grid());
  Field& s = pool.get(WS::kS, b.grid());
  Field& t = pool.get(WS::kT, b.grid());
  op(x, v);
  sub(r, b, v);    // r0 = b - A x0
  r0 = r;          // shadow residual
  p = r;
  C rho = innerProduct(r0, r);
  double rr = norm2(r);

  // Wall-clock model of the two linalg clusters between the operator
  // applications (which are timed at dhop granularity); passes and
  // flops/complex per kernel as in solver/cg.h's FieldModel.
  const detail::FieldModel<Field> fm(b);

  for (int k = 0; k < max_iterations && rr > stop; ++k) {
    stats.residual_history.push_back(std::sqrt(rr / b2));
    if ((stats.stall = guard.check(stats.residual_history.back())) !=
        StallReason::kNone)
      break;

    op(p, v);
    C alpha;
    double s2;
    {
      // innerProduct (2 passes, 8 f/c) + axpy_norm2 (3 passes, 12 f/c).
      metrics::ScopedTimer mt("bicgstab_linalg", 5.0 * fm.pass_bytes,
                              20.0 * fm.n_complex);
      const C r0v = innerProduct(r0, v);
      SVELAT_ASSERT_MSG(std::abs(r0v) > 0.0, "BiCGSTAB breakdown: <r0, v> = 0");
      alpha = rho / r0v;
      s2 = axpy_norm2(s, -alpha, v, r);  // s = r - alpha v, |s|^2
    }
    if (s2 <= stop) {  // early half-step convergence
      metrics::ScopedTimer mt("bicgstab_linalg", 3.0 * fm.pass_bytes,
                              8.0 * fm.n_complex);
      axpy(x, alpha, p, x);
      rr = s2;
      stats.iterations = k + 1;
      break;
    }

    op(s, t);
    {
      // norm2 + 2 innerProduct + 4 axpy + the fused axpy_norm2:
      // 20 field passes, 64 flops per complex element.
      metrics::ScopedTimer mt("bicgstab_linalg", 20.0 * fm.pass_bytes,
                              64.0 * fm.n_complex);
      const double t2 = norm2(t);
      SVELAT_ASSERT_MSG(t2 > 0.0, "BiCGSTAB breakdown: ||t|| = 0");
      const C omega = innerProduct(t, s) / t2;

      // x += alpha p + omega s
      axpy(x, alpha, p, x);
      axpy(x, omega, s, x);
      // r = s - omega t, fused with the norm
      rr = axpy_norm2(r, -omega, t, s);
      stats.iterations = k + 1;

      const C rho_next = innerProduct(r0, r);
      SVELAT_ASSERT_MSG(std::abs(rho) > 0.0 && std::abs(omega) > 0.0,
                        "BiCGSTAB breakdown: rho or omega vanished");
      const C beta = (rho_next / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      axpy(p, -omega, v, p);
      axpy(p, beta, p, r);
      rho = rho_next;
    }
  }
  stats.residual_history.push_back(std::sqrt(rr / b2));

  stats.converged = rr <= stop;
  stats.final_residual = std::sqrt(rr / b2);

  op(x, v);
  sub(r, b, v);
  stats.true_residual = std::sqrt(norm2(r) / b2);
  stats.solution_norm = std::sqrt(norm2(x));
  return stats;
}

/// Solve M x = b with BiCGSTAB directly on the Wilson operator.  Building
/// block of the solver::WilsonSolver facade (Algorithm::kBiCGSTAB,
/// Preconditioner::kNone).  Operator-generic like solve_wilson: any `Op`
/// with m() over `Field`.
template <class Op, class Field>
SolverResult solve_wilson_bicgstab(const Op& dirac, const Field& b, Field& x,
                                   double tolerance, int max_iterations,
                                   StallGuard guard = {},
                                   SolverWorkspace<Field>* workspace = nullptr) {
  auto op = [&dirac](const Field& in, Field& out) { dirac.m(in, out); };
  return bicgstab(op, b, x, tolerance, max_iterations, guard, workspace);
}

}  // namespace svelat::solver
