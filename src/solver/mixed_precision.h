// Mixed-precision defect-correction CG.
//
// The paper lists "conversion of floating-point precision" among the
// machine-specific operations Grid needs from each architecture
// (Sec. II-C) -- because production solvers run the bulk of their
// iterations in single precision and correct the defect in double.  This
// solver does exactly that: an outer double-precision residual loop
// wrapping an inner single-precision CG on the same (converted) gauge
// field.  On SVE the payoff is architectural: fp32 doubles the lanes per
// vector, halving instructions per site (cf. bench_dslash 512f).
#pragma once

#include "qcd/even_odd.h"
#include "solver/cg.h"

namespace svelat::solver {

/// Convert any lattice field between scalar precisions through global
/// coordinates (layout-safe for differing Nsimd / simd_layout).
template <class VDst, class VSrc>
void convert_field(lattice::Lattice<VDst>& dst, const lattice::Lattice<VSrc>& src) {
  using dst_sobj = typename lattice::Lattice<VDst>::scalar_object;
  using src_sobj = typename lattice::Lattice<VSrc>::scalar_object;
  using DstC = tensor::scalar_element_t<dst_sobj>;
  using SrcC = tensor::scalar_element_t<src_sobj>;
  using DstR = typename DstC::value_type;
  constexpr std::size_t ncomp = sizeof(src_sobj) / sizeof(SrcC);
  static_assert(sizeof(dst_sobj) / sizeof(DstC) == ncomp,
                "fields must have the same tensor structure");

  const lattice::GridCartesian* sg = src.grid();
  SVELAT_ASSERT_MSG(sg->fdimensions() == dst.grid()->fdimensions(),
                    "precision conversion requires identical lattice extents");
  // Threaded over *source* outer sites: every global coordinate maps to a
  // unique (site, lane) slot in dst, and lane pokes touch disjoint bytes,
  // so cross-layout conversion is race-free.
  thread_for(sg->osites(), [&](std::int64_t o) {
    for (unsigned l = 0; l < sg->isites(); ++l) {
      const lattice::Coordinate x = sg->global_coor(o, l);
      const src_sobj s = src.peek(x);
      dst_sobj d;
      const SrcC* in = reinterpret_cast<const SrcC*>(&s);
      DstC* out = reinterpret_cast<DstC*>(&d);
      for (std::size_t k = 0; k < ncomp; ++k)
        out[k] = DstC(static_cast<DstR>(in[k].real()), static_cast<DstR>(in[k].imag()));
      dst.poke(x, d);
    }
  });
}

struct MixedStats {
  bool converged = false;
  int outer_iterations = 0;
  int inner_iterations_total = 0;  ///< single-precision CG iterations
  double final_residual = 0.0;
  double true_residual = 0.0;
};

/// Solve M x = b (double) with inner single-precision Schur-CG defect
/// correction.  Sd / Sf are the double / float SIMD scalars; they may have
/// different Nsimd (conversion goes through global coordinates).
template <class Sd, class Sf>
MixedStats solve_wilson_mixed(const qcd::GaugeField<Sd>& gauge_d, double mass,
                              const qcd::LatticeFermion<Sd>& b, qcd::LatticeFermion<Sd>& x,
                              double tolerance, double inner_tolerance,
                              int max_outer, int max_inner) {
  using Fd = qcd::LatticeFermion<Sd>;
  using Ff = qcd::LatticeFermion<Sf>;

  MixedStats stats;
  const lattice::GridCartesian* grid_d = gauge_d.grid();

  // Single-precision copies of the gauge field on a float-layout grid.
  lattice::GridCartesian grid_f(grid_d->fdimensions(),
                                lattice::GridCartesian::default_simd_layout(Sf::Nsimd()));
  qcd::GaugeField<Sf> gauge_f(&grid_f);
  for (int mu = 0; mu < lattice::Nd; ++mu) convert_field(gauge_f.U[mu], gauge_d.U[mu]);

  const qcd::WilsonDirac<Sd> dirac_d(gauge_d, mass);
  // Inner solver runs on true half-checkerboard fields: on top of the fp32
  // lane doubling, every inner iteration moves half the data of the
  // zero-padded even-odd path (qcd/even_odd.h).
  const qcd::SchurEvenOddWilson<Sf> eo_f(gauge_f, mass);

  const double b2 = norm2(b);
  SVELAT_ASSERT_MSG(b2 > 0.0, "mixed CG needs a non-zero right-hand side");

  Fd r(grid_d), mx(grid_d), e_d(grid_d);
  Ff r_f(&grid_f), e_f(&grid_f);
  dirac_d.m(x, mx);
  r = b - mx;

  for (int outer = 0; outer < max_outer; ++outer) {
    const double rr = norm2(r);
    stats.final_residual = std::sqrt(rr / b2);
    if (stats.final_residual <= tolerance) {
      stats.converged = true;
      break;
    }
    // Inner solve in single precision: M e = r (approximately).
    convert_field(r_f, r);
    e_f.set_zero();
    const auto inner = qcd::solve_wilson_schur_half(eo_f, r_f, e_f,
                                                    inner_tolerance, max_inner);
    stats.inner_iterations_total += inner.iterations;

    // Defect correction in double precision.
    convert_field(e_d, e_f);
    x += e_d;
    dirac_d.m(x, mx);
    r = b - mx;
    stats.outer_iterations = outer + 1;
  }

  dirac_d.m(x, mx);
  r = b - mx;
  stats.true_residual = std::sqrt(norm2(r) / b2);
  stats.converged = stats.true_residual <= tolerance * 10;
  return stats;
}

}  // namespace svelat::solver
