// Precision conversion for mixed-precision solves.
//
// The paper lists "conversion of floating-point precision" among the
// machine-specific operations Grid needs from each architecture
// (Sec. II-C) -- because production solvers run the bulk of their
// iterations in single precision and correct the defect in double.  On
// SVE the payoff is architectural: fp32 doubles the lanes per vector,
// halving instructions per site (cf. bench_dslash 512f).
//
// The defect-correction driver itself lives in the WilsonSolver facade
// (solver/solver.h, Algorithm::kMixedCG); this header provides the
// layout-safe field conversion it is built on.
#pragma once

#include "lattice/lattice.h"
#include "support/assert.h"
#include "tensor/tensor.h"

namespace svelat::solver {

/// Convert any lattice field between scalar precisions through global
/// coordinates (layout-safe for differing Nsimd / simd_layout).
/// Writes into a caller-owned destination and allocates nothing, so the
/// defect-correction loop stays on the allocation-free hot path when its
/// scratch fields come from the facade's SolverWorkspace pools.
template <class VDst, class VSrc>
void convert_field(lattice::Lattice<VDst>& dst, const lattice::Lattice<VSrc>& src) {
  using dst_sobj = typename lattice::Lattice<VDst>::scalar_object;
  using src_sobj = typename lattice::Lattice<VSrc>::scalar_object;
  using DstC = tensor::scalar_element_t<dst_sobj>;
  using SrcC = tensor::scalar_element_t<src_sobj>;
  using DstR = typename DstC::value_type;
  constexpr std::size_t ncomp = sizeof(src_sobj) / sizeof(SrcC);
  static_assert(sizeof(dst_sobj) / sizeof(DstC) == ncomp,
                "fields must have the same tensor structure");

  const lattice::GridCartesian* sg = src.grid();
  SVELAT_ASSERT_MSG(sg->fdimensions() == dst.grid()->fdimensions(),
                    "precision conversion requires identical lattice extents");
  // Threaded over *source* outer sites: every global coordinate maps to a
  // unique (site, lane) slot in dst, and lane pokes touch disjoint bytes,
  // so cross-layout conversion is race-free.
  thread_for(sg->osites(), [&](std::int64_t o) {
    for (unsigned l = 0; l < sg->isites(); ++l) {
      const lattice::Coordinate x = sg->global_coor(o, l);
      const src_sobj s = src.peek(x);
      dst_sobj d;
      const SrcC* in = reinterpret_cast<const SrcC*>(&s);
      DstC* out = reinterpret_cast<DstC*>(&d);
      for (std::size_t k = 0; k < ncomp; ++k)
        out[k] = DstC(static_cast<DstR>(in[k].real()), static_cast<DstR>(in[k].imag()));
      dst.poke(x, d);
    }
  });
}

}  // namespace svelat::solver
