// Reusable Krylov field pool: the allocation-free solver hot path.
//
// Every iterative kernel in this directory (cg.h, bicgstab.h and the
// mixed-precision defect-correction loop in solver.h) historically
// constructed its work fields on entry, so a propagator's repeated
// solves paid twelve rounds of large aligned allocations.  A
// SolverWorkspace owns those fields instead: slots are constructed
// lazily on first use and then live for the workspace lifetime, so a
// warm solve constructs no fermion fields at all (pinned by
// tests/solver/test_allocation.cpp through the
// support::aligned_allocation_count() seam).
//
// A workspace is bound to the grid of its first use; callers that solve
// on several grids (e.g. full-grid outer and half-grid inner fields of
// the mixed-precision path) hold one workspace per grid/field type, as
// solver::WilsonSolver does next to its SchurWorkspace.
#pragma once

#include <array>
#include <cstddef>
#include <memory>

#include "support/assert.h"

namespace svelat::solver {

/// Lazily-constructed pool of solver work fields.  `Field` is any
/// grid-constructible field (Lattice<vobj>, the half-checkerboard
/// fermions of the Schur path, or comms::DistributedFermion, whose
/// grid() returns the distributed operator it binds to).
template <class Field>
class SolverWorkspace {
 public:
  // Slot names double as documentation of which kernel owns what: CG
  // uses kR/kP/kAp, BiCGSTAB adds kR0/kV/kS/kT, and the normal-equation
  // / defect-correction wrappers use kRhs/kMx for M^dag b and M x.
  static constexpr std::size_t kR = 0;
  static constexpr std::size_t kP = 1;
  static constexpr std::size_t kAp = 2;
  static constexpr std::size_t kR0 = 3;
  static constexpr std::size_t kV = 4;
  static constexpr std::size_t kS = 5;
  static constexpr std::size_t kT = 6;
  static constexpr std::size_t kRhs = 7;
  static constexpr std::size_t kMx = 8;
  static constexpr std::size_t kSlotCount = 9;

  /// Fetch a slot, constructing it on first use from `grid` (whatever
  /// handle Field's constructor takes).  Subsequent fetches must pass
  /// the same grid: a workspace never reshapes its fields.
  template <class GridP>
  Field& get(std::size_t slot, GridP grid) {
    SVELAT_ASSERT_MSG(slot < kSlotCount, "SolverWorkspace slot out of range");
    auto& f = slots_[slot];
    if (!f) {
      f = std::make_unique<Field>(grid);
    } else {
      SVELAT_ASSERT_MSG(f->grid() == grid,
                        "SolverWorkspace is bound to a different grid");
    }
    return *f;
  }

  /// Drop every slot (fields are re-made on next use).  Lets a caller
  /// re-bind the workspace to a new grid between solve campaigns.
  void clear() {
    for (auto& f : slots_) f.reset();
  }

 private:
  std::array<std::unique_ptr<Field>, kSlotCount> slots_;
};

}  // namespace svelat::solver
