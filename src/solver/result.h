// Unified parameter and result types of the solver facade (solver/solver.h).
//
// Every Wilson solve in the tree -- CG, BiCGSTAB, mixed-precision defect
// correction, preconditioned or not -- takes one SolverParams and returns
// one SolverResult.  This replaces the positional (tolerance,
// max_iterations) argument pairs and the SolverStats / MixedStats struct
// split that predated the facade.
#pragma once

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "comms/comm_error.h"

namespace svelat::solver {

/// Iterative algorithm driving the outer solve.
enum class Algorithm {
  kCG,        ///< CG on the normal equations (hermitian positive definite)
  kBiCGSTAB,  ///< BiCGSTAB directly on the non-hermitian system
  kMixedCG,   ///< double-precision defect correction around a single-precision CG
};

/// Operator formulation the algorithm runs on.
enum class Preconditioner {
  kNone,         ///< full-lattice Wilson operator
  kSchurEvenOdd  ///< Schur complement on the even half-checkerboard sublattice
};

inline const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kCG: return "cg";
    case Algorithm::kBiCGSTAB: return "bicgstab";
    case Algorithm::kMixedCG: return "mixed_cg";
  }
  return "?";
}

inline const char* to_string(Preconditioner p) {
  switch (p) {
    case Preconditioner::kNone: return "none";
    case Preconditioner::kSchurEvenOdd: return "schur_even_odd";
  }
  return "?";
}

/// What the facade does when a solve fails to converge (graceful
/// degradation; part of the fault-tolerance layer, see docs/FAULTS.md).
enum class FallbackPolicy {
  kNone,  ///< report converged == false, nothing else
  kAuto,  ///< retry once with a more robust configuration:
          ///< kBiCGSTAB -> kCG (normal equations), kMixedCG -> full-
          ///< precision kCG.  kCG itself has no further fallback.
};

/// Why the stall guard cut a solve short (SolverResult::stall).
enum class StallReason {
  kNone,      ///< the guard never fired
  kDiverged,  ///< residual grew past divergence_factor x the best seen
  kStalled,   ///< no new best residual for stall_window iterations
};

inline const char* to_string(StallReason r) {
  switch (r) {
    case StallReason::kNone: return "none";
    case StallReason::kDiverged: return "diverged";
    case StallReason::kStalled: return "stalled";
  }
  return "?";
}

/// Online divergence/stall detector over a residual sequence.  Feed each
/// relative residual to check(); a non-kNone return means further
/// iterations are wasted work (the residual exploded, or made no progress
/// for a full window).  Both triggers default OFF (window 0, factor 0):
/// a starved solve that simply runs out of iterations still reports the
/// plain converged == false it always did.
struct StallGuard {
  int window = 0;                  ///< 0 disables the stall trigger
  double divergence_factor = 0.0;  ///< 0 disables the divergence trigger

  double best = std::numeric_limits<double>::infinity();
  int since_best = 0;

  StallReason check(double rel) {
    if (divergence_factor > 0.0 && best < std::numeric_limits<double>::infinity() &&
        rel > best * divergence_factor)
      return StallReason::kDiverged;
    if (rel < best) {
      best = rel;
      since_best = 0;
    } else if (window > 0 && ++since_best >= window) {
      return StallReason::kStalled;
    }
    return StallReason::kNone;
  }
};

/// Knobs of a Wilson solve.  The defaults are the production
/// configuration: Schur-preconditioned CG on true half-checkerboard
/// fields (the path measured at 50.2% of the zero-padded instruction
/// count per iteration), solved to |r|/|b| <= 1e-9.
///
/// The mixed-precision fields reproduce the tuning the defect-correction
/// solver shipped with (inner single-precision Schur CG to 1e-4, at most
/// 400 inner iterations per restart, at most 24 outer restarts); they are
/// ignored by the direct algorithms.
struct SolverParams {
  Algorithm algorithm = Algorithm::kCG;
  Preconditioner preconditioner = Preconditioner::kSchurEvenOdd;
  double tolerance = 1e-9;   ///< target |r|/|b| of the full system
  int max_iterations = 1000; ///< outer iteration cap (CG/BiCGSTAB)

  // Mixed-precision (Algorithm::kMixedCG) knobs.
  double inner_tolerance = 1e-4;  ///< single-precision inner CG target
  int inner_max_iterations = 400; ///< inner iteration cap per restart
  int max_restarts = 24;          ///< outer defect-correction restart cap

  // Graceful degradation (all OFF by default; docs/FAULTS.md).
  FallbackPolicy fallback = FallbackPolicy::kNone;
  int stall_window = 0;            ///< iterations without a new best residual
                                   ///< before the solve is cut short (0: off)
  double divergence_factor = 0.0;  ///< residual growth over the best seen that
                                   ///< declares divergence (0: off)

  int verbosity = 0;  ///< 0 silent, >= 1 one summary line per solve

  /// Column count of the batched multi-RHS engine
  /// (WilsonSolver::solve_batched).  The native site-contiguous block
  /// path engages for full chunks of exactly WilsonSolver::kBlockWidth
  /// columns when this matches it (the default); any other value routes
  /// every column through the sequential facade solve.
  int block_width = 12;

  // Chainable named setters, so call sites can spell only what differs
  // from production defaults (SolverParams stays an aggregate: designated
  // initializers work too).
  SolverParams& with_algorithm(Algorithm a) { algorithm = a; return *this; }
  SolverParams& with_preconditioner(Preconditioner p) {
    preconditioner = p;
    return *this;
  }
  SolverParams& with_tolerance(double t) { tolerance = t; return *this; }
  SolverParams& with_max_iterations(int n) { max_iterations = n; return *this; }
  SolverParams& with_inner_tolerance(double t) { inner_tolerance = t; return *this; }
  SolverParams& with_inner_max_iterations(int n) {
    inner_max_iterations = n;
    return *this;
  }
  SolverParams& with_max_restarts(int n) { max_restarts = n; return *this; }
  SolverParams& with_fallback(FallbackPolicy p) { fallback = p; return *this; }
  SolverParams& with_stall_window(int n) { stall_window = n; return *this; }
  SolverParams& with_divergence_factor(double f) {
    divergence_factor = f;
    return *this;
  }
  SolverParams& with_verbosity(int v) { verbosity = v; return *this; }
  SolverParams& with_block_width(int n) { block_width = n; return *this; }
};

/// Outcome of one solve.  Every field is populated by every algorithm x
/// preconditioner combination; non-convergence is reported here (converged
/// == false), never asserted.
struct SolverResult {
  Algorithm algorithm = Algorithm::kCG;
  Preconditioner preconditioner = Preconditioner::kNone;

  bool converged = false;
  int iterations = 0;        ///< outer iterations (CG/BiCGSTAB steps; MixedCG restarts)
  int inner_iterations = 0;  ///< accumulated single-precision iterations (MixedCG)
  int block_width = 1;       ///< columns solved together (1: sequential path)

  double target_residual = 0.0;  ///< requested |r|/|b|
  double final_residual = 0.0;   ///< recursion residual |r|/|b| at exit
  double true_residual = 0.0;    ///< recomputed |b - M x| / |b| on the full system

  // Field-norm bookkeeping of the solved system.
  double rhs_norm = 0.0;       ///< |b|
  double solution_norm = 0.0;  ///< |x| at exit

  /// Wall-clock seconds of the facade-level solve (monotonic clock;
  /// machine-dependent, never gated).  1 / wall_seconds is the
  /// solves-per-second figure the wall-clock metrics layer reports.
  /// On a fallback solve this is the COMBINED first-attempt + fallback
  /// time; first_attempt_seconds isolates the wasted portion.
  double wall_seconds = 0.0;
  double first_attempt_seconds = 0.0;  ///< wall time before the fallback began

  std::vector<double> residual_history;  ///< |r|/|b| per outer iteration

  // Distributed solves: a communication failure that survived the retry
  // policy lands here as a typed verdict (converged stays false) instead
  // of propagating as an abort or a hang.  Always kOk for single-rank
  // operators.
  comms::CommStatus comm_status = comms::CommStatus::kOk;
  std::string comm_detail;  ///< CommError::what() of the failure, if any

  // Graceful-degradation report.  When the facade's FallbackPolicy::kAuto
  // rescued a failed solve, the result describes the FALLBACK solve
  // (algorithm, iterations, residuals) and these fields record what was
  // degraded from and why.
  StallReason stall = StallReason::kNone;  ///< why the first attempt was cut short
  bool fallback_used = false;              ///< a fallback solve produced x
  Algorithm fallback_from = Algorithm::kCG;  ///< first-attempt algorithm
  int first_attempt_iterations = 0;          ///< iterations spent before fallback

  /// One-line human-readable summary, e.g. for verbose solves.
  std::string summary() const;
};

inline std::string SolverResult::summary() const {
  char inner[48] = "";
  if (inner_iterations > 0)
    std::snprintf(inner, sizeof(inner), " (+%d inner)", inner_iterations);
  char degraded[96] = "";
  if (fallback_used)
    std::snprintf(degraded, sizeof(degraded),
                  " [fallback from %s after %d iterations: %s]",
                  to_string(fallback_from), first_attempt_iterations,
                  to_string(stall));
  else if (stall != StallReason::kNone)
    std::snprintf(degraded, sizeof(degraded), " [%s]", to_string(stall));
  char comm[96] = "";
  if (comm_status != comms::CommStatus::kOk)
    std::snprintf(comm, sizeof(comm), " [comm failure: %s]",
                  comms::comm_status_name(comm_status));
  char wall[48] = "";
  if (wall_seconds > 0.0)
    std::snprintf(wall, sizeof(wall), ", %.1f ms", wall_seconds * 1e3);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%s/%s: %s, %d iterations%s, |r|/|b| %.3e (true %.3e)%s%s%s",
                to_string(algorithm), to_string(preconditioner),
                converged ? "converged" : "NOT converged", iterations, inner,
                final_residual, true_residual, wall, degraded, comm);
  return buf;
}

}  // namespace svelat::solver
