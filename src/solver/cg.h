// Conjugate Gradient on a hermitian positive-definite operator.
//
// "A significant fraction of time-to-solution of LQCD applications is
//  spent in solving a linear set of equations, for which iterative solvers
//  like Conjugate Gradient are used" (paper Sec. II-A).  The Wilson matrix
//  M is not hermitian; CG runs on the normal equations M^dag M x = M^dag b
//  (WilsonNormalOp below).
#pragma once

#include <cmath>
#include <vector>

#include "lattice/lattice.h"
#include "qcd/wilson.h"
#include "solver/result.h"
#include "solver/workspace.h"
#include "support/assert.h"
#include "support/metrics.h"

namespace svelat::solver {

namespace detail {

/// Wall-clock metrics model of a lattice field: its memory footprint in
/// bytes (one full pass) and its complex-element count.  axpy-style
/// kernels cost 3 passes and 8 flops/complex; inner products 2 passes and
/// 8 flops/complex; norms 1 pass and 4 flops/complex.
template <class Field>
struct FieldModel {
  double pass_bytes;
  double n_complex;
  explicit FieldModel(const Field& f)
      : pass_bytes(static_cast<double>(f.osites()) *
                   sizeof(typename Field::vector_object)),
        n_complex(pass_bytes /
                  (2.0 * sizeof(typename Field::simd_type::real_type))) {}
};

}  // namespace detail

/// CG for A x = b with A hermitian positive definite.  `op(in, out)`
/// applies A.  `x` carries the initial guess and receives the solution.
/// Field is any lattice field type with grid()/norm2/innerProduct/axpy --
/// full Lattice<vobj> or the half-checkerboard fields of the production
/// Schur path (solver::WilsonSolver), whose half-length vectors halve the
/// per-iteration axpy/norm traffic.  An armed StallGuard (default: off)
/// cuts the loop short when the residual diverges or stalls, reporting
/// the reason in SolverResult::stall.  A caller-owned `workspace` makes
/// repeated solves allocation-free (slots kR/kP/kAp); without one the
/// work fields are constructed locally, exactly as before.
template <class Field, class LinearOp>
SolverResult conjugate_gradient(const LinearOp& op, const Field& b, Field& x,
                                double tolerance, int max_iterations,
                                StallGuard guard = {},
                                SolverWorkspace<Field>* workspace = nullptr) {
  SolverResult stats;
  stats.algorithm = Algorithm::kCG;
  stats.target_residual = tolerance;

  const double b2 = norm2(b);
  stats.rhs_norm = std::sqrt(b2);
  SVELAT_ASSERT_MSG(b2 > 0.0, "CG needs a non-zero right-hand side");

  SolverWorkspace<Field> local;
  SolverWorkspace<Field>& pool = workspace ? *workspace : local;
  using WS = SolverWorkspace<Field>;
  Field& r = pool.get(WS::kR, b.grid());
  Field& p = pool.get(WS::kP, b.grid());
  Field& ap = pool.get(WS::kAp, b.grid());
  op(x, ap);            // ap = A x0
  sub(r, b, ap);        // r0
  p = r;
  double rr = norm2(r);
  const double stop = tolerance * tolerance * b2;

  // Per-iteration linalg tail (the operator application is timed at dhop
  // granularity): innerProduct (2 passes, 8 flops/complex), two axpy
  // (3 passes, 8 f/c each) and the fused axpy_norm2 (3 passes, 12 f/c).
  const detail::FieldModel<Field> fm(b);
  const double iter_bytes = 11.0 * fm.pass_bytes;
  const double iter_flops = 36.0 * fm.n_complex;

  for (int k = 0; k < max_iterations; ++k) {
    stats.residual_history.push_back(std::sqrt(rr / b2));
    if (rr <= stop) break;
    if ((stats.stall = guard.check(stats.residual_history.back())) !=
        StallReason::kNone)
      break;

    op(p, ap);
    {
      metrics::ScopedTimer mt("cg_linalg", iter_bytes, iter_flops);
      const double pap = std::real(innerProduct(p, ap));
      SVELAT_ASSERT_MSG(pap > 0.0, "operator is not positive definite");
      const double alpha = rr / pap;

      axpy(x, alpha, p, x);  // x += alpha p
      // r -= alpha A p, fused with the norm (one field pass; the chunked
      // reduction keeps the residual history bitwise thread-count-invariant).
      const double rr_next = axpy_norm2(r, -alpha, ap, r);
      const double beta = rr_next / rr;
      axpy(p, beta, p, r);     // p = r + beta p
      rr = rr_next;
    }
    stats.iterations = k + 1;
  }

  stats.converged = rr <= stop;
  stats.final_residual = std::sqrt(rr / b2);

  op(x, ap);  // true residual check
  sub(r, b, ap);
  stats.true_residual = std::sqrt(norm2(r) / b2);
  stats.solution_norm = std::sqrt(norm2(x));
  return stats;
}

/// M^dag M wrapper for a Wilson-like operator (anything exposing
/// m/mdag/mdag_m over a matching field): the CG target.  Generic so the
/// single-rank qcd::WilsonDirac and the halo-exchanged
/// comms::DistributedWilsonOp slot in interchangeably.
template <class Op>
struct WilsonNormalOp {
  const Op& dirac;
  template <class Field>
  void operator()(const Field& in, Field& out) const {
    dirac.mdag_m(in, out);
  }
};

/// Solve M x = b through the normal equations; returns CG stats plus the
/// true Wilson residual |b - M x| / |b|.  Building block of the
/// solver::WilsonSolver facade (Algorithm::kCG, Preconditioner::kNone).
/// Operator-generic: any `Op` with m/mdag/mdag_m over `Field`.  The
/// optional workspace covers the wrapper fields (kRhs/kMx) as well as
/// the CG internals, so a warm facade solve allocates nothing.
template <class Op, class Field>
SolverResult solve_wilson(const Op& dirac, const Field& b, Field& x,
                          double tolerance, int max_iterations,
                          StallGuard guard = {},
                          SolverWorkspace<Field>* workspace = nullptr) {
  SolverWorkspace<Field> local;
  SolverWorkspace<Field>& pool = workspace ? *workspace : local;
  using WS = SolverWorkspace<Field>;
  Field& mdag_b = pool.get(WS::kRhs, b.grid());
  dirac.mdag(b, mdag_b);
  SolverResult stats =
      conjugate_gradient(WilsonNormalOp<Op>{dirac}, mdag_b, x, tolerance,
                         max_iterations, guard, &pool);
  // Replace the normal-equation norms with the Wilson-system ones.
  const double b2 = norm2(b);
  stats.rhs_norm = std::sqrt(b2);
  Field& mx = pool.get(WS::kMx, b.grid());
  Field& r = pool.get(WS::kR, b.grid());
  dirac.m(x, mx);
  sub(r, b, mx);
  stats.true_residual = std::sqrt(norm2(r) / b2);
  return stats;
}

}  // namespace svelat::solver
