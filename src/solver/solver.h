// WilsonSolver: the one entry point for Wilson-operator solves.
//
// The paper's production cost is dominated by iterative Wilson solves
// (Sec. II-A/II-C).  This facade owns the operator setup and the
// half-checkerboard workspaces, and dispatches every algorithm x
// preconditioner combination of SolverParams onto the true half-volume
// kernels:
//
//   kCG       x kNone          CG on the normal equations M^dag M
//   kCG       x kSchurEvenOdd  CG on Mhat^dag Mhat, half-volume fields
//   kBiCGSTAB x kNone          BiCGSTAB directly on M
//   kBiCGSTAB x kSchurEvenOdd  BiCGSTAB directly on Mhat, half-volume
//   kMixedCG  x kNone          double defect correction, fp32 inner CG on M
//   kMixedCG  x kSchurEvenOdd  double defect correction, fp32 inner Schur CG
//
// Construction pays the expensive setup once -- Schur operator (stencil
// tables + parity-split gauge), single-precision gauge copy, solver
// scratch fields -- so repeated solves against the same configuration
// (the 12 spin-colour columns of a propagator) only pay iterations.
//
// The zero-padded even-odd formulation is not reachable from here: it is
// a test-only oracle (tests/qcd/padded_oracle.h).
#pragma once

#include <cmath>
#include <optional>
#include <type_traits>
#include <vector>

#include "comms/distributed_wilson.h"
#include "qcd/block.h"
#include "qcd/even_odd.h"
#include "solver/bicgstab.h"
#include "solver/block_cg.h"
#include "solver/cg.h"
#include "solver/mixed_precision.h"
#include "solver/result.h"
#include "solver/workspace.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/timer.h"

namespace svelat::solver {

namespace detail {

/// Rebind a SimdComplex scalar to another real type: kMixedCG derives its
/// single-precision inner scalar from the double-precision outer one,
/// keeping the vector length and functor backend.
template <class S, class R>
struct rebind_real;
template <class T, std::size_t VLB, class Policy, class R>
struct rebind_real<simd::SimdComplex<T, VLB, Policy>, R> {
  using type = simd::SimdComplex<R, VLB, Policy>;
};
template <class S, class R>
using rebind_real_t = typename rebind_real<S, R>::type;

}  // namespace detail

template <class S>
class WilsonSolver {
 public:
  using Fermion = qcd::LatticeFermion<S>;
  using HalfFermion = qcd::HalfLatticeFermion<S>;
  /// Inner scalar of Algorithm::kMixedCG: same VL and backend, fp32 lanes.
  using InnerScalar = detail::rebind_real_t<S, float>;

  WilsonSolver(const qcd::GaugeField<S>& gauge, double mass, SolverParams params = {})
      : gauge_(&gauge), mass_(mass), params_(params) {
    switch (params_.algorithm) {
      case Algorithm::kCG:
      case Algorithm::kBiCGSTAB:
        if (schur()) {
          eo_.emplace(*gauge_, mass_);
          ws_.emplace(*eo_);
        } else {
          dirac_.emplace(*gauge_, mass_);
        }
        break;
      case Algorithm::kMixedCG: {
        SVELAT_ASSERT_MSG((std::is_same_v<typename S::real_type, double>),
                          "MixedCG needs a double-precision outer scalar");
        dirac_.emplace(*gauge_, mass_);  // outer defect-correction operator
        grid_f_.emplace(
            gauge_->grid()->fdimensions(),
            lattice::GridCartesian::default_simd_layout(InnerScalar::Nsimd()));
        gauge_f_.emplace(&*grid_f_);
        for (int mu = 0; mu < lattice::Nd; ++mu)
          convert_field(gauge_f_->U[mu], gauge_->U[mu]);
        if (schur()) {
          eo_f_.emplace(*gauge_f_, mass_);
          ws_f_.emplace(*eo_f_);
        } else {
          dirac_f_.emplace(*gauge_f_, mass_);
        }
        r_.emplace(gauge_->grid());
        mx_.emplace(gauge_->grid());
        e_d_.emplace(gauge_->grid());
        r_f_.emplace(&*grid_f_);
        e_f_.emplace(&*grid_f_);
        break;
      }
    }
  }

  /// Distributed mode: the facade over one rank's halo-exchanged Wilson
  /// operator (comms/distributed_wilson.h).  `b` and `x` are this rank's
  /// slabs; reductions inside the Krylov loop are exact global ring
  /// reductions, so every rank's SolverResult is bitwise identical to the
  /// single-rank solve on the gathered fields.  Checkerboarding across
  /// the rank cut is not implemented, so the preconditioner is forced to
  /// kNone; kMixedCG would need a second fp32 operator per rank.
  WilsonSolver(const comms::DistributedWilsonDirac<S>& op, SolverParams params = {})
      : mass_(op.mass()), params_(params), dop_(&op) {
    SVELAT_ASSERT_MSG(params_.algorithm != Algorithm::kMixedCG,
                      "distributed solves support kCG and kBiCGSTAB only");
    params_.preconditioner = Preconditioner::kNone;
  }

  // Operators and workspaces hold pointers to member grids; moving or
  // copying the solver would dangle them.
  WilsonSolver(const WilsonSolver&) = delete;
  WilsonSolver& operator=(const WilsonSolver&) = delete;

  const SolverParams& params() const { return params_; }
  double mass() const { return mass_; }
  const qcd::GaugeField<S>& gauge() const {
    SVELAT_ASSERT_MSG(gauge_ != nullptr,
                      "distributed solvers hold no global gauge field");
    return *gauge_;
  }
  const lattice::GridCartesian* grid() const {
    return dop_ != nullptr ? dop_->grid() : gauge_->grid();
  }

  /// The owned Schur operator (engaged for kSchurEvenOdd configurations).
  const qcd::SchurEvenOddWilson<S>& schur_operator() const {
    SVELAT_ASSERT_MSG(eo_.has_value(), "solver was not configured with kSchurEvenOdd");
    return *eo_;
  }

  /// Solve M x = b.  `x` carries the initial guess for the kNone paths;
  /// the Schur paths always start the preconditioned system from zero and
  /// overwrite both parities of `x`.  Non-convergence is reported through
  /// SolverResult::converged, never asserted.
  ///
  /// Graceful degradation: with an armed stall guard
  /// (params.stall_window / params.divergence_factor) a diverging or
  /// stalled solve is cut short and the reason recorded in
  /// SolverResult::stall; with params.fallback == FallbackPolicy::kAuto a
  /// failed solve is retried once on the robust path (kBiCGSTAB -> kCG
  /// normal equations, kMixedCG -> full-precision kCG) from a zero guess,
  /// and the result records the degradation (fallback_used,
  /// fallback_from, first_attempt_iterations).
  SolverResult solve(const Fermion& b, Fermion& x) {
    // Facade-level wall clock: the "solve" region's calls/sec IS the
    // solves-per-second figure (no byte/flop model -- the inner kernels
    // carry those at dhop / linalg granularity).  Exactly ONE region call
    // per facade-level solve: the fallback path runs through the nested
    // solver's attempt(), never its solve(), so a degraded solve does not
    // double-count itself.
    metrics::ScopedTimer mt("solve");
    StopWatch sw;
    const StallGuard guard{params_.stall_window, params_.divergence_factor};
    SolverResult res = attempt(b, x, guard);
    res.algorithm = params_.algorithm;
    res.preconditioner = params_.preconditioner;
    res.target_residual = params_.tolerance;
    // After a comm failure the mesh is broken: the global reduction behind
    // solution_norm would throw the very error the typed verdict already
    // carries.  x is partial anyway -- report a zero norm.
    if (res.comm_status == comms::CommStatus::kOk)
      res.solution_norm = solution_norm(x);
    // A typed comm failure is not a convergence failure: retrying the
    // same broken mesh with a different algorithm cannot help.
    if (!res.converged && params_.fallback == FallbackPolicy::kAuto &&
        params_.algorithm != Algorithm::kCG &&
        res.comm_status == comms::CommStatus::kOk) {
      const double first_seconds = sw.seconds();
      SolverResult fres = fallback_solve(b, x, res);
      fres.first_attempt_seconds = first_seconds;
      fres.wall_seconds = sw.seconds();  // first attempt + fallback
      if (params_.verbosity >= 1) log_info() << "WilsonSolver " << fres.summary();
      return fres;
    }
    res.wall_seconds = sw.seconds();
    if (params_.verbosity >= 1) log_info() << "WilsonSolver " << res.summary();
    return res;
  }

  SolverResult operator()(const Fermion& b, Fermion& x) { return solve(b, x); }

  /// Width of the native multi-RHS block engine: the 12 spin-colour
  /// columns of a propagator, the workload the batched kernels exist for.
  static constexpr int kBlockWidth = 12;

  /// Solve M x_i = b_i for a batch of right-hand sides.  Full chunks of
  /// kBlockWidth columns ride the site-contiguous block engine when the
  /// configuration supports it (params.block_width == kBlockWidth,
  /// Algorithm::kCG x Preconditioner::kSchurEvenOdd, single rank);
  /// remainder columns and unsupported configurations run the sequential
  /// facade solve() per column -- which is why width-1 batches are
  /// BITWISE identical to calling solve() in a loop, while full-width
  /// batches track it to rounding (the pAp regrouping documented at
  /// BlockSchurEvenOddWilson::mhat_norm2).  Per-column convergence is
  /// independent: a stalled column freezes and reports converged ==
  /// false without perturbing its siblings.  SolverResult::block_width
  /// records the path each column took.
  std::vector<SolverResult> solve_batched(const std::vector<Fermion>& b,
                                          std::vector<Fermion>& x) {
    SVELAT_ASSERT_MSG(b.size() == x.size(),
                      "solve_batched needs one solution field per rhs");
    std::vector<SolverResult> out(b.size());
    const bool native = params_.block_width == kBlockWidth &&
                        params_.algorithm == Algorithm::kCG && schur() &&
                        dop_ == nullptr;
    std::size_t i = 0;
    if (native) {
      for (; i + kBlockWidth <= b.size(); i += kBlockWidth)
        solve_block_chunk(b, x, i, out);
    }
    for (; i < b.size(); ++i) {
      out[i] = solve(b[i], x[i]);
      out[i].block_width = 1;
    }
    return out;
  }

 private:
  bool schur() const { return params_.preconditioner == Preconditioner::kSchurEvenOdd; }

  double solution_norm(const Fermion& x) const {
    return std::sqrt(dop_ != nullptr ? dop_->global_norm2(x) : norm2(x));
  }

  /// One configured solve attempt: the algorithm x preconditioner
  /// dispatch without the facade bookkeeping ("solve" region, wall clock,
  /// fallback, logging) -- shared by solve() and the fallback path.
  SolverResult attempt(const Fermion& b, Fermion& x, StallGuard guard) {
    if (dop_ != nullptr) return distributed_attempt(b, x, guard);
    SolverResult res;
    switch (params_.algorithm) {
      case Algorithm::kCG:
        res = schur() ? schur_cg(*eo_, *ws_, b, x, params_.tolerance,
                                 params_.max_iterations, guard, &kws_half_)
                      : solve_wilson(*dirac_, b, x, params_.tolerance,
                                     params_.max_iterations, guard, &kws_);
        break;
      case Algorithm::kBiCGSTAB:
        res = schur() ? schur_bicgstab(*eo_, *ws_, b, x, params_.tolerance,
                                       params_.max_iterations, guard, &kws_half_)
                      : solve_wilson_bicgstab(*dirac_, b, x, params_.tolerance,
                                              params_.max_iterations, guard, &kws_);
        break;
      case Algorithm::kMixedCG:
        res = mixed(b, x, guard);
        break;
    }
    return res;
  }

  /// The distributed dispatch: bind this rank's slabs to the operator and
  /// run the operator-generic Krylov loop on them.  A communication
  /// failure that survives the retry ladder surfaces as a typed verdict
  /// in the result (comm_status / comm_detail), never an abort or a hang.
  SolverResult distributed_attempt(const Fermion& b, Fermion& x,
                                   StallGuard guard) {
    SolverResult res;
    // The rank-slab bindings live in the solver (lazily built on first
    // use) so repeated distributed solves reuse their field storage; the
    // copy-assignments below reuse existing capacity.
    if (!db_) db_.emplace(dop_);
    if (!dx_) dx_.emplace(dop_);
    comms::DistributedFermion<S>&db = *db_, &dx = *dx_;
    db.field = b;
    dx.field = x;
    try {
      const comms::DistributedWilsonOp<S> op{dop_};
      res = params_.algorithm == Algorithm::kCG
                ? solve_wilson(op, db, dx, params_.tolerance,
                               params_.max_iterations, guard, &kws_d_)
                : solve_wilson_bicgstab(op, db, dx, params_.tolerance,
                                        params_.max_iterations, guard, &kws_d_);
      x = dx.field;
    } catch (const comms::CommError& e) {
      res.converged = false;
      res.comm_status = e.status();
      res.comm_detail = e.what();
    }
    return res;
  }

  /// One fallback attempt on the robust configuration: kBiCGSTAB and
  /// kMixedCG both degrade to plain double-precision kCG (normal
  /// equations -- slower per iteration, but positive definite and immune
  /// to both BiCGSTAB breakdown and the fp32 precision floor).  The
  /// fallback runs with guards and further fallback off, from a zero
  /// guess, and its result carries the degradation report.  It calls the
  /// nested solver's attempt(), NOT solve(): the facade-level "solve"
  /// metrics region, wall clock and summary log belong to the caller,
  /// which finishes assembling the result (combined wall_seconds) before
  /// anything is logged.
  SolverResult fallback_solve(const Fermion& b, Fermion& x,
                              const SolverResult& first) {
    SolverParams fbp = params_;
    fbp.algorithm = Algorithm::kCG;
    fbp.fallback = FallbackPolicy::kNone;
    fbp.stall_window = 0;
    fbp.divergence_factor = 0.0;
    fbp.verbosity = 0;
    x.set_zero();
    SolverResult res;
    if (dop_ != nullptr) {
      WilsonSolver fb(*dop_, fbp);
      res = fb.attempt(b, x, StallGuard{});
    } else {
      WilsonSolver fb(*gauge_, mass_, fbp);
      res = fb.attempt(b, x, StallGuard{});
    }
    res.algorithm = fbp.algorithm;
    res.preconditioner = fbp.preconditioner;
    res.target_residual = fbp.tolerance;
    res.solution_norm = solution_norm(x);
    res.fallback_used = true;
    res.fallback_from = params_.algorithm;
    res.first_attempt_iterations = first.iterations;
    res.stall = first.stall;
    return res;
  }

  /// Everything one kBlockWidth-wide batched solve needs, built lazily on
  /// the first full chunk and reused ever after (the batched analogue of
  /// eo_ + ws_ + the Krylov pools): the block operator view, the Schur
  /// block scratch, the block CG work fields and the full-grid b/x
  /// staging blocks.  A warm batched solve constructs no fields.
  struct BlockEngine {
    qcd::BlockSchurEvenOddWilson<S, kBlockWidth> eo;
    qcd::BlockSchurWorkspace<S, kBlockWidth> ws;
    BlockCGWorkspace<S, kBlockWidth> cg;
    qcd::BlockFermion<S, kBlockWidth> b, x;

    explicit BlockEngine(const qcd::SchurEvenOddWilson<S>& base)
        : eo(base),
          ws(eo),
          cg(eo),
          b(base.even_grid()->full_grid()),
          x(base.even_grid()->full_grid()) {}
  };

  /// One full-width batched solve: gather the chunk's columns into the
  /// staging block, run the batched Schur driver with the block CG as
  /// its even-half solve, scatter the solutions back and finish each
  /// column's report.  Mirrors solve()'s facade bookkeeping with a
  /// "solve_block" region (one call per CHUNK; wall_seconds is
  /// apportioned evenly across the chunk's columns).
  void solve_block_chunk(const std::vector<Fermion>& b, std::vector<Fermion>& x,
                         std::size_t base_i, std::vector<SolverResult>& out) {
    metrics::ScopedTimer mt("solve_block");
    StopWatch sw;
    if (!block_) block_.emplace(*eo_);
    BlockEngine& be = *block_;
    for (int j = 0; j < kBlockWidth; ++j)
      be.b.copy_in_column(j, b[base_i + static_cast<std::size_t>(j)]);
    const StallGuard guard{params_.stall_window, params_.divergence_factor};
    auto stats = qcd::detail::block_schur_half_solve(
        be.eo, be.ws, be.b, be.x, [&](const auto& b_prime, auto& x_e) {
          be.eo.mhat_dag(b_prime, be.ws.rhs);
          return block_conjugate_gradient(be.eo, be.cg, be.ws.rhs, x_e,
                                          params_.tolerance,
                                          params_.max_iterations, guard);
        });
    const std::array<double, kBlockWidth> xn = lattice::block_norm2(be.x);
    const double secs = sw.seconds();
    for (int j = 0; j < kBlockWidth; ++j) {
      const auto u = static_cast<std::size_t>(j);
      be.x.copy_out_column(j, x[base_i + u]);
      SolverResult& r = stats[u];
      r.algorithm = params_.algorithm;
      r.preconditioner = params_.preconditioner;
      r.target_residual = params_.tolerance;
      r.block_width = kBlockWidth;
      r.solution_norm = std::sqrt(xn[u]);
      r.wall_seconds = secs / kBlockWidth;
      if (params_.verbosity >= 1) log_info() << "WilsonSolver " << r.summary();
      out[base_i + u] = r;
    }
  }

  /// Schur CG: normal equations on Mhat over even half fields.  Static and
  /// scalar-generic because kMixedCG reuses it for the fp32 inner solve.
  /// The optional half-field pool makes the inner CG allocation-free.
  template <class T>
  static SolverResult schur_cg(
      const qcd::SchurEvenOddWilson<T>& eo, qcd::SchurWorkspace<T>& ws,
      const qcd::LatticeFermion<T>& b, qcd::LatticeFermion<T>& x,
      double tolerance, int max_iterations, StallGuard guard = {},
      SolverWorkspace<qcd::HalfLatticeFermion<T>>* kws = nullptr) {
    using HF = qcd::HalfLatticeFermion<T>;
    return qcd::detail::schur_half_solve(
        eo, ws, b, x, [&](const HF& b_prime, HF& x_e) {
          eo.mhat_dag(b_prime, ws.rhs);
          const auto op = [&eo](const HF& in, HF& out) { eo.mhat_dag_mhat(in, out); };
          return conjugate_gradient(op, ws.rhs, x_e, tolerance, max_iterations,
                                    guard, kws);
        });
  }

  /// Schur BiCGSTAB: Mhat is not hermitian, so BiCGSTAB solves
  /// Mhat x_e = b'_e directly -- no normal equations.
  template <class T>
  static SolverResult schur_bicgstab(
      const qcd::SchurEvenOddWilson<T>& eo, qcd::SchurWorkspace<T>& ws,
      const qcd::LatticeFermion<T>& b, qcd::LatticeFermion<T>& x,
      double tolerance, int max_iterations, StallGuard guard = {},
      SolverWorkspace<qcd::HalfLatticeFermion<T>>* kws = nullptr) {
    using HF = qcd::HalfLatticeFermion<T>;
    return qcd::detail::schur_half_solve(
        eo, ws, b, x, [&](const HF& b_prime, HF& x_e) {
          const auto op = [&eo](const HF& in, HF& out) { eo.mhat(in, out); };
          return bicgstab(op, b_prime, x_e, tolerance, max_iterations, guard,
                          kws);
        });
  }

  /// Mixed-precision defect correction: an outer double-precision residual
  /// loop wrapping an inner single-precision solve of M e = r on the
  /// converted gauge field.  params_.max_restarts caps the outer cycles;
  /// params_.inner_tolerance / inner_max_iterations tune the inner CG.
  SolverResult mixed(const Fermion& b, Fermion& x, StallGuard guard = {}) {
    SolverResult stats;
    const double b2 = norm2(b);
    SVELAT_ASSERT_MSG(b2 > 0.0, "mixed CG needs a non-zero right-hand side");
    stats.rhs_norm = std::sqrt(b2);

    Fermion &r = *r_, &mx = *mx_, &e_d = *e_d_;
    qcd::LatticeFermion<InnerScalar> &r_f = *r_f_, &e_f = *e_f_;

    dirac_->m(x, mx);
    sub(r, b, mx);
    double rel = std::sqrt(norm2(r) / b2);
    stats.residual_history.push_back(rel);

    while (rel > params_.tolerance && stats.iterations < params_.max_restarts) {
      // The guard watches the OUTER (true double-precision) residual: a
      // defect-correction cycle that stops improving it -- e.g. the inner
      // solve returns no correction -- is a stall worth cutting short.
      if ((stats.stall = guard.check(rel)) != StallReason::kNone) break;
      // Inner solve in single precision: M e = r (approximately).
      convert_field(r_f, r);
      e_f.set_zero();
      const SolverResult inner =
          schur() ? schur_cg(*eo_f_, *ws_f_, r_f, e_f, params_.inner_tolerance,
                             params_.inner_max_iterations, StallGuard{},
                             &kws_half_f_)
                  : solve_wilson(*dirac_f_, r_f, e_f, params_.inner_tolerance,
                                 params_.inner_max_iterations, StallGuard{},
                                 &kws_f_);
      stats.inner_iterations += inner.iterations;

      // Defect correction in double precision; the residual is re-derived
      // after *every* correction, so final_residual and the history always
      // reflect the returned x (including a solve that only reaches
      // tolerance on its last permitted restart).
      convert_field(e_d, e_f);
      x += e_d;
      dirac_->m(x, mx);
      sub(r, b, mx);
      rel = std::sqrt(norm2(r) / b2);
      stats.residual_history.push_back(rel);
      ++stats.iterations;
    }

    // The outer recursion residual *is* the true residual here: each cycle
    // recomputes r = b - M x against the double-precision operator, so no
    // extra operator application is needed.
    stats.final_residual = rel;
    stats.true_residual = rel;
    // Accept with 10x headroom over the target: the defect-correction
    // residual stalls at the inner (fp32) precision floor.
    stats.converged = rel <= params_.tolerance * 10;
    return stats;
  }

  const qcd::GaugeField<S>* gauge_ = nullptr;  ///< null in distributed mode
  double mass_;
  SolverParams params_;
  /// Distributed mode: the externally owned halo-exchanged operator
  /// (null for the classic gauge-field constructors).
  const comms::DistributedWilsonDirac<S>* dop_ = nullptr;

  // Engaged per configuration (see constructor): only what the chosen
  // algorithm x preconditioner combination needs is built.
  std::optional<qcd::WilsonDirac<S>> dirac_;
  std::optional<qcd::SchurEvenOddWilson<S>> eo_;
  std::optional<qcd::SchurWorkspace<S>> ws_;
  /// Multi-RHS block engine, built on the first full-width batched chunk.
  std::optional<BlockEngine> block_;

  // kMixedCG state: single-precision copy of the configuration plus the
  // outer-loop scratch fields, all allocated once at construction.
  std::optional<lattice::GridCartesian> grid_f_;
  std::optional<qcd::GaugeField<InnerScalar>> gauge_f_;
  std::optional<qcd::SchurEvenOddWilson<InnerScalar>> eo_f_;
  std::optional<qcd::SchurWorkspace<InnerScalar>> ws_f_;
  std::optional<qcd::WilsonDirac<InnerScalar>> dirac_f_;
  std::optional<Fermion> r_, mx_, e_d_;
  std::optional<qcd::LatticeFermion<InnerScalar>> r_f_, e_f_;

  // Krylov work-field pools (solver/workspace.h), one per grid / field
  // type a configuration can touch.  Populated lazily on the first solve
  // and reused ever after: a warm solve() constructs no fermion fields
  // (pinned by tests/solver/test_allocation.cpp).
  SolverWorkspace<Fermion> kws_;
  SolverWorkspace<HalfFermion> kws_half_;
  SolverWorkspace<qcd::LatticeFermion<InnerScalar>> kws_f_;
  SolverWorkspace<qcd::HalfLatticeFermion<InnerScalar>> kws_half_f_;
  SolverWorkspace<comms::DistributedFermion<S>> kws_d_;
  /// Distributed-mode rank-slab bindings, reused across solves.
  std::optional<comms::DistributedFermion<S>> db_, dx_;
};

}  // namespace svelat::solver
