// Floating-point precision conversion (FCVT).
//
// SVE converts between 16-, 32- and 64-bit floats in place within
// containers of the *wider* type: converting f64 -> f32 leaves one f32
// result in the low half of each 64-bit container (the even f32 lanes);
// narrowing a full vector therefore needs an UZP1 to compact two converted
// registers.  The paper lists precision conversion among the machine-
// specific operations of Grid's abstraction layer (Sec. II-C) and fp16 is
// used to compress network-exchange buffers (Sec. V-B).
#pragma once

#include "sve/sve_detail.h"

namespace svelat::sve {

namespace detail {

// Narrowing: each wide container i yields one narrow element at lane R*i
// (R = sizeof(Wide)/sizeof(Narrow)); other sub-lanes of the container are
// zeroed.  Predication is per wide container.
template <typename Narrow, typename Wide>
inline svreg<Narrow> fcvt_narrow(const svbool_t& pg, const svreg<Wide>& a) {
  constexpr unsigned R = sizeof(Wide) / sizeof(Narrow);
  static_assert(R > 1);
  record(InsnClass::kConvert, "fcvt z, p/m, z", suffix<Narrow>());
  svreg<Narrow> r;
  const unsigned wide_n = active_lanes<Wide>();
  for (unsigned i = 0; i < wide_n; ++i) {
    const bool act = pred_elem<Wide>(pg, i);
    for (unsigned s = 0; s < R; ++s) r.lane[R * i + s] = Narrow{};
    if (act) r.lane[R * i] = static_cast<Narrow>(static_cast<float>(a.lane[i]));
  }
  clear_inactive_storage(r, active_lanes<Narrow>());
  return r;
}

// Widening: wide container i reads the narrow element at lane R*i.
template <typename Wide, typename Narrow>
inline svreg<Wide> fcvt_widen(const svbool_t& pg, const svreg<Narrow>& a) {
  constexpr unsigned R = sizeof(Wide) / sizeof(Narrow);
  static_assert(R > 1);
  record(InsnClass::kConvert, "fcvt z, p/m, z", suffix<Wide>());
  svreg<Wide> r;
  const unsigned wide_n = active_lanes<Wide>();
  for (unsigned i = 0; i < wide_n; ++i) {
    r.lane[i] = pred_elem<Wide>(pg, i)
                    ? static_cast<Wide>(static_cast<float>(a.lane[R * i]))
                    : Wide{};
  }
  clear_inactive_storage(r, wide_n);
  return r;
}

}  // namespace detail

// Double <-> single.
inline svfloat32_t svcvt_f32_f64_x(const svbool_t& pg, const svfloat64_t& a) {
  return detail::fcvt_narrow<float32_t, float64_t>(pg, a);
}
inline svfloat64_t svcvt_f64_f32_x(const svbool_t& pg, const svfloat32_t& a) {
  return detail::fcvt_widen<float64_t, float32_t>(pg, a);
}

// Single <-> half.  (Conversion routes through float; `half` rounds to
// nearest-even exactly like FCVT.)
inline svfloat16_t svcvt_f16_f32_x(const svbool_t& pg, const svfloat32_t& a) {
  constexpr unsigned R = 2;
  detail::record(InsnClass::kConvert, "fcvt z, p/m, z", "h");
  svfloat16_t r;
  const unsigned wide_n = detail::active_lanes<float32_t>();
  for (unsigned i = 0; i < wide_n; ++i) {
    r.lane[R * i + 1] = float16_t{};
    r.lane[R * i] =
        detail::pred_elem<float32_t>(pg, i) ? float16_t(a.lane[i]) : float16_t{};
  }
  detail::clear_inactive_storage(r, detail::active_lanes<float16_t>());
  return r;
}

inline svfloat32_t svcvt_f32_f16_x(const svbool_t& pg, const svfloat16_t& a) {
  constexpr unsigned R = 2;
  detail::record(InsnClass::kConvert, "fcvt z, p/m, z", "s");
  svfloat32_t r;
  const unsigned wide_n = detail::active_lanes<float32_t>();
  for (unsigned i = 0; i < wide_n; ++i) {
    r.lane[i] = detail::pred_elem<float32_t>(pg, i) ? static_cast<float>(a.lane[R * i])
                                                    : 0.0f;
  }
  detail::clear_inactive_storage(r, wide_n);
  return r;
}

// Double <-> half (FCVT supports the direct pair as well).
inline svfloat16_t svcvt_f16_f64_x(const svbool_t& pg, const svfloat64_t& a) {
  constexpr unsigned R = 4;
  detail::record(InsnClass::kConvert, "fcvt z, p/m, z", "h");
  svfloat16_t r;
  const unsigned wide_n = detail::active_lanes<float64_t>();
  for (unsigned i = 0; i < wide_n; ++i) {
    for (unsigned s = 0; s < R; ++s) r.lane[R * i + s] = float16_t{};
    if (detail::pred_elem<float64_t>(pg, i))
      r.lane[R * i] = float16_t(static_cast<float>(a.lane[i]));
  }
  detail::clear_inactive_storage(r, detail::active_lanes<float16_t>());
  return r;
}

inline svfloat64_t svcvt_f64_f16_x(const svbool_t& pg, const svfloat16_t& a) {
  constexpr unsigned R = 4;
  detail::record(InsnClass::kConvert, "fcvt z, p/m, z", "d");
  svfloat64_t r;
  const unsigned wide_n = detail::active_lanes<float64_t>();
  for (unsigned i = 0; i < wide_n; ++i) {
    r.lane[i] = detail::pred_elem<float64_t>(pg, i)
                    ? static_cast<double>(static_cast<float>(a.lane[R * i]))
                    : 0.0;
  }
  detail::clear_inactive_storage(r, wide_n);
  return r;
}

}  // namespace svelat::sve
