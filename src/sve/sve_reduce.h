// Horizontal reductions.
//
// FADDV/FMAXV/FMINV reduce the active elements of a vector to a scalar.
// Hardware reduces in a tree; the simulator reduces strictly in lane order,
// which is deterministic and keeps cross-VL comparisons in the tests
// reproducible down to the last bit for integer-valued data.
#pragma once

#include "sve/sve_detail.h"

namespace svelat::sve {

template <typename E>
inline E svaddv(const svbool_t& pg, const svreg<E>& a) {
  detail::record(InsnClass::kReduce, "faddv s, p, z", detail::suffix<E>());
  E sum{};
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    if (detail::pred_elem<E>(pg, i)) sum = static_cast<E>(sum + a.lane[i]);
  return sum;
}

template <typename E>
inline E svmaxv(const svbool_t& pg, const svreg<E>& a) {
  detail::record(InsnClass::kReduce, "fmaxv s, p, z", detail::suffix<E>());
  bool found = false;
  E best{};
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (!detail::pred_elem<E>(pg, i)) continue;
    if (!found || best < a.lane[i]) best = a.lane[i];
    found = true;
  }
  return best;
}

template <typename E>
inline E svminv(const svbool_t& pg, const svreg<E>& a) {
  detail::record(InsnClass::kReduce, "fminv s, p, z", detail::suffix<E>());
  bool found = false;
  E best{};
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (!detail::pred_elem<E>(pg, i)) continue;
    if (!found || a.lane[i] < best) best = a.lane[i];
    found = true;
  }
  return best;
}

}  // namespace svelat::sve
