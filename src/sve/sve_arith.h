// Arithmetic intrinsics (real; complex rotations live in sve_complex.h).
//
// ACLE predication suffixes:
//   _z : inactive lanes zeroed
//   _m : inactive lanes keep the value of the first vector operand
//   _x : inactive lanes are "don't care"; the simulator makes them
//        deterministic by treating _x like _m, which is one of the
//        behaviours real implementations exhibit.
#pragma once

#include <cmath>

#include "sve/sve_detail.h"

namespace svelat::sve {

namespace detail {

enum class PredMode { kZero, kMerge };

template <typename E, typename Op>
inline svreg<E> binary_impl(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b,
                            Op op, PredMode mode, InsnClass cls, const char* mnemonic) {
  record(cls, mnemonic, suffix<E>());
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (pred_elem<E>(pg, i)) {
      r.lane[i] = op(a.lane[i], b.lane[i]);
    } else {
      r.lane[i] = (mode == PredMode::kZero) ? E{} : a.lane[i];
    }
  }
  clear_inactive_storage(r, n);
  return r;
}

template <typename E, typename Op>
inline svreg<E> unary_impl(const svbool_t& pg, const svreg<E>& a, Op op, PredMode mode,
                           InsnClass cls, const char* mnemonic) {
  record(cls, mnemonic, suffix<E>());
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (pred_elem<E>(pg, i)) {
      r.lane[i] = op(a.lane[i]);
    } else {
      r.lane[i] = (mode == PredMode::kZero) ? E{} : a.lane[i];
    }
  }
  clear_inactive_storage(r, n);
  return r;
}

// Fused multiply-accumulate family.  sign_acc / sign_prod give
// FMLA(+acc,+ab), FMLS(+acc,-ab), FNMLA(-acc,-ab), FNMLS(-acc,+ab).
template <typename E>
inline svreg<E> fma_impl(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                         const svreg<E>& b, int sign_acc, int sign_prod,
                         const char* mnemonic) {
  record(InsnClass::kFMla, mnemonic, suffix<E>());
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (pred_elem<E>(pg, i)) {
      r.lane[i] = static_cast<E>(sign_acc > 0 ? acc.lane[i] : -acc.lane[i]) +
                  static_cast<E>(sign_prod > 0 ? a.lane[i] * b.lane[i]
                                               : -(a.lane[i] * b.lane[i]));
    } else {
      r.lane[i] = acc.lane[i];
    }
  }
  clear_inactive_storage(r, n);
  return r;
}

}  // namespace detail

// --- Broadcast / immediates -----------------------------------------------
template <typename E>
inline svreg<E> svdup(E value) {
  detail::record(InsnClass::kDup, "dup z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) r.lane[i] = value;
  detail::clear_inactive_storage(r, n);
  return r;
}

inline svfloat64_t svdup_f64(float64_t v) { return svdup<float64_t>(v); }
inline svfloat32_t svdup_f32(float32_t v) { return svdup<float32_t>(v); }
inline svfloat16_t svdup_f16(float16_t v) { return svdup<float16_t>(v); }

/// Linear index vector: base, base+step, base+2*step, ...
template <typename E>
inline svreg<E> svindex(E base, E step) {
  detail::record(InsnClass::kDup, "index z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    r.lane[i] = static_cast<E>(base + static_cast<E>(i) * step);
  detail::clear_inactive_storage(r, n);
  return r;
}

// --- Binary arithmetic -------------------------------------------------------
#define SVELAT_SVE_BINARY(NAME, OPEXPR, CLS, MNEMONIC)                             \
  template <typename E>                                                            \
  inline svreg<E> NAME##_x(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) { \
    return detail::binary_impl<E>(                                                 \
        pg, a, b, [](E x, E y) { return static_cast<E>(OPEXPR); },                 \
        detail::PredMode::kMerge, CLS, MNEMONIC " z, p/m, z, z");                  \
  }                                                                                \
  template <typename E>                                                            \
  inline svreg<E> NAME##_m(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) { \
    return detail::binary_impl<E>(                                                 \
        pg, a, b, [](E x, E y) { return static_cast<E>(OPEXPR); },                 \
        detail::PredMode::kMerge, CLS, MNEMONIC " z, p/m, z, z");                  \
  }                                                                                \
  template <typename E>                                                            \
  inline svreg<E> NAME##_z(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) { \
    return detail::binary_impl<E>(                                                 \
        pg, a, b, [](E x, E y) { return static_cast<E>(OPEXPR); },                 \
        detail::PredMode::kZero, CLS, MNEMONIC " z, p/z, z, z");                   \
  }

SVELAT_SVE_BINARY(svadd, x + y, InsnClass::kFAddSub, "fadd")
SVELAT_SVE_BINARY(svsub, x - y, InsnClass::kFAddSub, "fsub")
SVELAT_SVE_BINARY(svmul, x * y, InsnClass::kFMul, "fmul")
SVELAT_SVE_BINARY(svdiv, x / y, InsnClass::kFDivSqrt, "fdiv")
SVELAT_SVE_BINARY(svmax, (x < y ? y : x), InsnClass::kFAddSub, "fmax")
SVELAT_SVE_BINARY(svmin, (y < x ? y : x), InsnClass::kFAddSub, "fmin")

#undef SVELAT_SVE_BINARY

// --- Unary arithmetic ----------------------------------------------------------
template <typename E>
inline svreg<E> svneg_x(const svbool_t& pg, const svreg<E>& a) {
  return detail::unary_impl<E>(
      pg, a, [](E x) { return static_cast<E>(-x); }, detail::PredMode::kMerge,
      InsnClass::kFAddSub, "fneg z, p/m, z");
}

template <typename E>
inline svreg<E> svabs_x(const svbool_t& pg, const svreg<E>& a) {
  return detail::unary_impl<E>(
      pg, a, [](E x) { return static_cast<E>(x < E{} ? -x : x); },
      detail::PredMode::kMerge, InsnClass::kFAddSub, "fabs z, p/m, z");
}

inline svfloat64_t svsqrt_x(const svbool_t& pg, const svfloat64_t& a) {
  return detail::unary_impl<float64_t>(
      pg, a, [](float64_t x) { return std::sqrt(x); }, detail::PredMode::kMerge,
      InsnClass::kFDivSqrt, "fsqrt z, p/m, z");
}

inline svfloat32_t svsqrt_x(const svbool_t& pg, const svfloat32_t& a) {
  return detail::unary_impl<float32_t>(
      pg, a, [](float32_t x) { return std::sqrt(x); }, detail::PredMode::kMerge,
      InsnClass::kFDivSqrt, "fsqrt z, p/m, z");
}

// --- Fused multiply-add family ---------------------------------------------------
/// acc + a*b  (FMLA)
template <typename E>
inline svreg<E> svmla_x(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                        const svreg<E>& b) {
  return detail::fma_impl<E>(pg, acc, a, b, +1, +1, "fmla z, p/m, z, z");
}
template <typename E>
inline svreg<E> svmla_m(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                        const svreg<E>& b) {
  return detail::fma_impl<E>(pg, acc, a, b, +1, +1, "fmla z, p/m, z, z");
}

/// acc - a*b  (FMLS)
template <typename E>
inline svreg<E> svmls_x(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                        const svreg<E>& b) {
  return detail::fma_impl<E>(pg, acc, a, b, +1, -1, "fmls z, p/m, z, z");
}

/// -acc - a*b  (FNMLA)
template <typename E>
inline svreg<E> svnmla_x(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                         const svreg<E>& b) {
  return detail::fma_impl<E>(pg, acc, a, b, -1, -1, "fnmla z, p/m, z, z");
}

/// -acc + a*b  (FNMLS; appears in the armclang listing of Sec. IV-B)
template <typename E>
inline svreg<E> svnmls_x(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                         const svreg<E>& b) {
  return detail::fma_impl<E>(pg, acc, a, b, -1, +1, "fnmls z, p/m, z, z");
}

// --- Select ----------------------------------------------------------------------
template <typename E>
inline svreg<E> svsel(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "sel z, p, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    r.lane[i] = detail::pred_elem<E>(pg, i) ? a.lane[i] : b.lane[i];
  detail::clear_inactive_storage(r, n);
  return r;
}

// --- Integer helpers (vector) -------------------------------------------------------
template <typename E>
inline svreg<E> svadd_int_x(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::binary_impl<E>(
      pg, a, b, [](E x, E y) { return static_cast<E>(x + y); },
      detail::PredMode::kMerge, InsnClass::kIntOp, "add z, p/m, z, z");
}

template <typename E>
inline svreg<E> svand_int_x(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::binary_impl<E>(
      pg, a, b, [](E x, E y) { return static_cast<E>(x & y); },
      detail::PredMode::kMerge, InsnClass::kIntOp, "and z, p/m, z, z");
}

template <typename E>
inline svreg<E> svlsl_int_x(const svbool_t& pg, const svreg<E>& a, unsigned shift) {
  return detail::unary_impl<E>(
      pg, a, [shift](E x) { return static_cast<E>(x << shift); },
      detail::PredMode::kMerge, InsnClass::kIntOp, "lsl z, p/m, z, #imm");
}

// --- Floating-point compares (produce predicates) --------------------------------------
namespace detail {
template <typename E, typename Cmp>
inline svbool_t cmp_impl(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b,
                         Cmp cmp, const char* mnemonic) {
  record(InsnClass::kCompare, mnemonic, suffix<E>());
  svbool_t r{};
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    set_pred_elem<E>(r, i, pred_elem<E>(pg, i) && cmp(a.lane[i], b.lane[i]));
  return r;
}
}  // namespace detail

template <typename E>
inline svbool_t svcmpeq(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::cmp_impl<E>(
      pg, a, b, [](E x, E y) { return x == y; }, "fcmeq p, p/z, z, z");
}

template <typename E>
inline svbool_t svcmpne(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::cmp_impl<E>(
      pg, a, b, [](E x, E y) { return x != y; }, "fcmne p, p/z, z, z");
}

template <typename E>
inline svbool_t svcmplt(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::cmp_impl<E>(
      pg, a, b, [](E x, E y) { return x < y; }, "fcmlt p, p/z, z, z");
}

template <typename E>
inline svbool_t svcmpgt(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b) {
  return detail::cmp_impl<E>(
      pg, a, b, [](E x, E y) { return x > y; }, "fcmgt p, p/z, z, z");
}

}  // namespace svelat::sve
