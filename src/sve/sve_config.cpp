#include "sve/sve_config.h"

namespace svelat::sve {

namespace detail {
// Default matches the widest implementation the paper targets in Grid
// (512 bit); benches and tests override it freely.
unsigned g_vector_bits = 512;
}  // namespace detail

void set_vector_length(unsigned bits) {
  SVELAT_ASSERT_MSG(is_valid_vector_length(bits),
                    "SVE vector length must be 128..2048 bits in steps of 128");
  detail::g_vector_bits = bits;
}

}  // namespace svelat::sve
