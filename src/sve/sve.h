// Umbrella header for the SVE simulator: the ACLE-style intrinsic surface.
//
// This subsystem substitutes for the armclang SVE toolchain + ArmIE
// emulator used by the paper (see DESIGN.md, substitution table).  It
// executes SVE semantics per element, tallies a dynamic instruction count,
// and can render executed intrinsics as assembly-like listings.
//
// Usage discipline: the register types are stand-ins for hardware
// "sizeless" types -- never store them in framework classes; load from /
// store to ordinary aligned arrays inside a function (paper Sec. V-A).
#pragma once

#include "sve/sve_arith.h"     // IWYU pragma: export
#include "sve/sve_complex.h"   // IWYU pragma: export
#include "sve/sve_config.h"    // IWYU pragma: export
#include "sve/sve_counters.h"  // IWYU pragma: export
#include "sve/sve_cvt.h"       // IWYU pragma: export
#include "sve/sve_mem.h"       // IWYU pragma: export
#include "sve/sve_perm.h"      // IWYU pragma: export
#include "sve/sve_pred.h"      // IWYU pragma: export
#include "sve/sve_reduce.h"    // IWYU pragma: export
#include "sve/sve_trace.h"     // IWYU pragma: export
#include "sve/sve_types.h"     // IWYU pragma: export
