// Runtime vector-length configuration for the SVE simulator.
//
// SVE constrains the vector length to 128..2048 bits in multiples of 128;
// the silicon provider fixes the value (paper Sec. III-B).  The real
// toolchain the paper used (ArmIE) receives the vector length as a
// command-line parameter; our equivalent is sve::set_vector_length().
//
// The setting is process-global, mirroring hardware: *all* simulated SVE
// instructions observe the same VL.  Tests that sweep the VL use VLGuard
// for scoped changes.
#pragma once

#include <cstddef>

#include "support/assert.h"

namespace svelat::sve {

inline constexpr unsigned kMinVectorBits = 128;
inline constexpr unsigned kMaxVectorBits = 2048;
inline constexpr unsigned kVectorBitsStep = 128;
inline constexpr std::size_t kMaxVectorBytes = kMaxVectorBits / 8;

/// True if bits is a legal SVE vector length (128..2048, multiple of 128).
constexpr bool is_valid_vector_length(unsigned bits) {
  return bits >= kMinVectorBits && bits <= kMaxVectorBits && bits % kVectorBitsStep == 0;
}

namespace detail {
// Defined in sve_config.cpp; read via the accessors below.
extern unsigned g_vector_bits;
}  // namespace detail

/// Set the simulated hardware vector length in bits.  Aborts on invalid VL.
void set_vector_length(unsigned bits);

/// Current simulated hardware vector length in bits / bytes.
inline unsigned vector_bits() { return detail::g_vector_bits; }
inline unsigned vector_bytes() { return detail::g_vector_bits / 8; }

/// Number of lanes of an element type at the current VL.
template <typename E>
inline unsigned lanes() {
  return vector_bytes() / static_cast<unsigned>(sizeof(E));
}

/// RAII: set the VL for a scope, restore the previous value on exit.
class VLGuard {
 public:
  explicit VLGuard(unsigned bits) : previous_(vector_bits()) { set_vector_length(bits); }
  ~VLGuard() { set_vector_length(previous_); }
  VLGuard(const VLGuard&) = delete;
  VLGuard& operator=(const VLGuard&) = delete;

 private:
  unsigned previous_;
};

}  // namespace svelat::sve
