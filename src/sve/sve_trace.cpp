#include "sve/sve_trace.h"

#include <cstdio>

namespace svelat::sve {

namespace detail {

void trace_line(const char* mnemonic, const char* suffix) {
  if (t_tracer() == nullptr) return;
  std::string line = mnemonic;
  if (suffix[0] != '\0') {
    line += '.';
    line += suffix;
  }
  t_tracer()->append(std::move(line));
}

void trace_line_imm(const char* mnemonic, const char* suffix, int imm) {
  if (t_tracer() == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s.%s, #%d", mnemonic, suffix, imm);
  t_tracer()->append(buf);
}
}  // namespace detail

void set_tracer(Tracer* tracer) { detail::t_tracer() = tracer; }

std::string Tracer::listing() const {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%4zu  ", i + 1);
    out += buf;
    out += lines_[i];
    out += '\n';
  }
  return out;
}

std::string Tracer::folded_listing() const {
  std::string out;
  char buf[32];
  std::size_t i = 0;
  std::size_t line_no = 1;
  while (i < lines_.size()) {
    std::size_t j = i;
    while (j < lines_.size() && lines_[j] == lines_[i]) ++j;
    std::snprintf(buf, sizeof(buf), "%4zu  ", line_no++);
    out += buf;
    out += lines_[i];
    if (j - i > 1) {
      std::snprintf(buf, sizeof(buf), "   (x%zu)", j - i);
      out += buf;
    }
    out += '\n';
    i = j;
  }
  return out;
}

}  // namespace svelat::sve
