// Vectorized complex arithmetic: FCMLA and FCADD.
//
// This is the centerpiece of the paper (Sec. III-D): vectors hold complex
// numbers with real components in even elements and imaginary components in
// odd elements.  FCMLA takes an accumulator, two operand vectors and an
// immediate rotation; two concatenated FCMLAs implement
//     z  +=  x * y        (rot 0   then rot 90)
//     z  +=  conj(x) * y  (rot 0   then rot 270)
// Complex multiplication without accumulation starts from a zero
// accumulator (paper Eq. (2)).
//
// Per-element semantics (ARM ARM, FCMLA):
//   rot   0:  even += even(a)*even(b)   odd += even(a)*odd(b)
//   rot  90:  even -= odd(a)*odd(b)     odd += odd(a)*even(b)
//   rot 180:  even -= even(a)*even(b)   odd -= even(a)*odd(b)
//   rot 270:  even += odd(a)*odd(b)     odd -= odd(a)*even(b)
#pragma once

#include "sve/sve_detail.h"

namespace svelat::sve {

namespace detail {

template <typename E>
inline svreg<E> fcmla_impl(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                           const svreg<E>& b, int rot) {
  SVELAT_ASSERT_MSG(rot == 0 || rot == 90 || rot == 180 || rot == 270,
                    "FCMLA rotation must be 0, 90, 180 or 270");
  record_imm(InsnClass::kFCmla, "fcmla z, p/m, z, z", suffix<E>(), rot);
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned p = 0; p + 1 < n; p += 2) {
    const unsigned even = p;
    const unsigned odd = p + 1;
    E re = acc.lane[even];
    E im = acc.lane[odd];
    // Each destination element is guarded by its own predicate bit
    // (merging predication).
    const bool act_e = pred_elem<E>(pg, even);
    const bool act_o = pred_elem<E>(pg, odd);
    switch (rot) {
      case 0:
        if (act_e) re = static_cast<E>(re + a.lane[even] * b.lane[even]);
        if (act_o) im = static_cast<E>(im + a.lane[even] * b.lane[odd]);
        break;
      case 90:
        if (act_e) re = static_cast<E>(re - a.lane[odd] * b.lane[odd]);
        if (act_o) im = static_cast<E>(im + a.lane[odd] * b.lane[even]);
        break;
      case 180:
        if (act_e) re = static_cast<E>(re - a.lane[even] * b.lane[even]);
        if (act_o) im = static_cast<E>(im - a.lane[even] * b.lane[odd]);
        break;
      case 270:
        if (act_e) re = static_cast<E>(re + a.lane[odd] * b.lane[odd]);
        if (act_o) im = static_cast<E>(im - a.lane[odd] * b.lane[even]);
        break;
      default: break;
    }
    r.lane[even] = re;
    r.lane[odd] = im;
  }
  clear_inactive_storage(r, n);
  return r;
}

template <typename E>
inline svreg<E> fcadd_impl(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b,
                           int rot) {
  SVELAT_ASSERT_MSG(rot == 90 || rot == 270, "FCADD rotation must be 90 or 270");
  record_imm(InsnClass::kFCadd, "fcadd z, p/m, z, z", suffix<E>(), rot);
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned p = 0; p + 1 < n; p += 2) {
    const unsigned even = p;
    const unsigned odd = p + 1;
    const bool act_e = pred_elem<E>(pg, even);
    const bool act_o = pred_elem<E>(pg, odd);
    if (rot == 90) {  // a + i*b
      r.lane[even] = act_e ? static_cast<E>(a.lane[even] - b.lane[odd]) : a.lane[even];
      r.lane[odd] = act_o ? static_cast<E>(a.lane[odd] + b.lane[even]) : a.lane[odd];
    } else {  // a - i*b
      r.lane[even] = act_e ? static_cast<E>(a.lane[even] + b.lane[odd]) : a.lane[even];
      r.lane[odd] = act_o ? static_cast<E>(a.lane[odd] - b.lane[even]) : a.lane[odd];
    }
  }
  clear_inactive_storage(r, n);
  return r;
}

}  // namespace detail

/// Fused complex multiply-accumulate with rotation (merging; _x deterministic
/// as merge, cf. sve_arith.h).
template <typename E>
inline svreg<E> svcmla_x(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                         const svreg<E>& b, int rot) {
  return detail::fcmla_impl<E>(pg, acc, a, b, rot);
}

template <typename E>
inline svreg<E> svcmla_m(const svbool_t& pg, const svreg<E>& acc, const svreg<E>& a,
                         const svreg<E>& b, int rot) {
  return detail::fcmla_impl<E>(pg, acc, a, b, rot);
}

/// Complex add with rotation: a + i*b (rot 90) or a - i*b (rot 270).
template <typename E>
inline svreg<E> svcadd_x(const svbool_t& pg, const svreg<E>& a, const svreg<E>& b,
                         int rot) {
  return detail::fcadd_impl<E>(pg, a, b, rot);
}

}  // namespace svelat::sve
