// Predicate-generating and predicate-manipulating intrinsics.
//
// SVE's vector-length-agnostic loops are driven by WHILELT (build a
// predicate covering the remaining elements) and PTRUE (all elements);
// see the assembly walk-throughs in paper Sec. IV.  Predicates have
// byte granularity; for an element of width w only the lowest of its w
// bits participates.
#pragma once

#include <cstdint>

#include "sve/sve_detail.h"

namespace svelat::sve {

namespace detail {

template <typename E>
inline svbool_t ptrue_impl() {
  record(InsnClass::kPredicate, "ptrue p", suffix<E>());
  svbool_t pg{};
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) set_pred_elem<E>(pg, i, true);
  return pg;
}

template <typename E>
inline svbool_t whilelt_impl(std::uint64_t begin, std::uint64_t end) {
  record(InsnClass::kPredicate, "whilelt p", suffix<E>());
  svbool_t pg{};
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) set_pred_elem<E>(pg, i, begin + i < end);
  return pg;
}

template <typename E>
inline std::uint64_t cntp_impl(const svbool_t& pg, const svbool_t& p) {
  record(InsnClass::kReduce, "cntp x, p, p", suffix<E>());
  std::uint64_t n = 0;
  for (unsigned i = 0; i < active_lanes<E>(); ++i)
    if (pred_elem<E>(pg, i) && pred_elem<E>(p, i)) ++n;
  return n;
}

}  // namespace detail

// --- PTRUE ----------------------------------------------------------------
inline svbool_t svptrue_b8() { return detail::ptrue_impl<std::uint8_t>(); }
inline svbool_t svptrue_b16() { return detail::ptrue_impl<std::uint16_t>(); }
inline svbool_t svptrue_b32() { return detail::ptrue_impl<std::uint32_t>(); }
inline svbool_t svptrue_b64() { return detail::ptrue_impl<std::uint64_t>(); }

/// Generic form used by templated framework code.
template <typename E>
inline svbool_t svptrue() {
  return detail::ptrue_impl<E>();
}

inline svbool_t svpfalse_b() {
  detail::record(InsnClass::kPredicate, "pfalse p", "b");
  return svbool_t{};
}

// --- WHILELT ---------------------------------------------------------------
inline svbool_t svwhilelt_b8(std::uint64_t i, std::uint64_t n) {
  return detail::whilelt_impl<std::uint8_t>(i, n);
}
inline svbool_t svwhilelt_b16(std::uint64_t i, std::uint64_t n) {
  return detail::whilelt_impl<std::uint16_t>(i, n);
}
inline svbool_t svwhilelt_b32(std::uint64_t i, std::uint64_t n) {
  return detail::whilelt_impl<std::uint32_t>(i, n);
}
inline svbool_t svwhilelt_b64(std::uint64_t i, std::uint64_t n) {
  return detail::whilelt_impl<std::uint64_t>(i, n);
}

template <typename E>
inline svbool_t svwhilelt(std::uint64_t i, std::uint64_t n) {
  return detail::whilelt_impl<E>(i, n);
}

// --- Element counts (CNTB/CNTH/CNTW/CNTD) ----------------------------------
inline std::uint64_t svcntb() {
  detail::record(InsnClass::kPredicate, "cntb x", "");
  return vector_bytes();
}
inline std::uint64_t svcnth() {
  detail::record(InsnClass::kPredicate, "cnth x", "");
  return vector_bytes() / 2;
}
inline std::uint64_t svcntw() {
  detail::record(InsnClass::kPredicate, "cntw x", "");
  return vector_bytes() / 4;
}
inline std::uint64_t svcntd() {
  detail::record(InsnClass::kPredicate, "cntd x", "");
  return vector_bytes() / 8;
}

/// Generic lane count for an element type (no instruction equivalent of its
/// own; maps onto the cnt* family).
template <typename E>
inline std::uint64_t svcnt() {
  detail::record(InsnClass::kPredicate, "cnt x", detail::suffix<E>());
  return lanes<E>();
}

// --- CNTP: count active predicate elements ----------------------------------
inline std::uint64_t svcntp_b8(const svbool_t& pg, const svbool_t& p) {
  return detail::cntp_impl<std::uint8_t>(pg, p);
}
inline std::uint64_t svcntp_b16(const svbool_t& pg, const svbool_t& p) {
  return detail::cntp_impl<std::uint16_t>(pg, p);
}
inline std::uint64_t svcntp_b32(const svbool_t& pg, const svbool_t& p) {
  return detail::cntp_impl<std::uint32_t>(pg, p);
}
inline std::uint64_t svcntp_b64(const svbool_t& pg, const svbool_t& p) {
  return detail::cntp_impl<std::uint64_t>(pg, p);
}

// --- Predicate logicals (byte granularity, zeroing) -------------------------
inline svbool_t svand_b_z(const svbool_t& pg, const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "and p, p/z, p, p", "b");
  svbool_t r{};
  for (unsigned i = 0; i < vector_bytes(); ++i)
    r.byte[i] = pg.byte[i] && a.byte[i] && b.byte[i];
  return r;
}

inline svbool_t svorr_b_z(const svbool_t& pg, const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "orr p, p/z, p, p", "b");
  svbool_t r{};
  for (unsigned i = 0; i < vector_bytes(); ++i)
    r.byte[i] = pg.byte[i] && (a.byte[i] || b.byte[i]);
  return r;
}

inline svbool_t sveor_b_z(const svbool_t& pg, const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "eor p, p/z, p, p", "b");
  svbool_t r{};
  for (unsigned i = 0; i < vector_bytes(); ++i)
    r.byte[i] = pg.byte[i] && (a.byte[i] != b.byte[i]);
  return r;
}

inline svbool_t svnot_b_z(const svbool_t& pg, const svbool_t& a) {
  detail::record(InsnClass::kPredicate, "not p, p/z, p", "b");
  svbool_t r{};
  for (unsigned i = 0; i < vector_bytes(); ++i) r.byte[i] = pg.byte[i] && !a.byte[i];
  return r;
}

// --- Predicate tests ---------------------------------------------------------
inline bool svptest_any(const svbool_t& pg, const svbool_t& p) {
  detail::record(InsnClass::kPredicate, "ptest", "");
  for (unsigned i = 0; i < vector_bytes(); ++i)
    if (pg.byte[i] && p.byte[i]) return true;
  return false;
}

inline bool svptest_first(const svbool_t& pg, const svbool_t& p) {
  detail::record(InsnClass::kPredicate, "ptest", "");
  for (unsigned i = 0; i < vector_bytes(); ++i)
    if (pg.byte[i]) return p.byte[i];
  return false;
}

// --- Predicate permutes -------------------------------------------------------
/// TRN1 on predicates: element 2i from a, element 2i+1 from b (both taken
/// at even positions).  trn1(ptrue, pfalse) yields the "even elements only"
/// predicate used to negate/accumulate real parts of interleaved complex
/// data in the real-arithmetic backend (paper Sec. V-E).
template <typename E>
inline svbool_t svtrn1_b(const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "trn1 p, p, p", detail::suffix<E>());
  svbool_t r{};
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    detail::set_pred_elem<E>(r, 2 * i, detail::pred_elem<E>(a, 2 * i));
    detail::set_pred_elem<E>(r, 2 * i + 1, detail::pred_elem<E>(b, 2 * i));
  }
  return r;
}

/// TRN2 on predicates: element 2i from a, element 2i+1 from b (both taken
/// at odd positions).
template <typename E>
inline svbool_t svtrn2_b(const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "trn2 p, p, p", detail::suffix<E>());
  svbool_t r{};
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    detail::set_pred_elem<E>(r, 2 * i, detail::pred_elem<E>(a, 2 * i + 1));
    detail::set_pred_elem<E>(r, 2 * i + 1, detail::pred_elem<E>(b, 2 * i + 1));
  }
  return r;
}

/// BRKN: propagate break condition (used by compiler-generated VLA loops,
/// cf. the Sec. IV-A listing).  Returns b if (pg AND a) has its last active
/// element true, else all-false.
inline svbool_t svbrkn_b_z(const svbool_t& pg, const svbool_t& a, const svbool_t& b) {
  detail::record(InsnClass::kPredicate, "brkn p, p/z, p, p", "b");
  bool last = false;
  for (unsigned i = 0; i < vector_bytes(); ++i)
    if (pg.byte[i]) last = a.byte[i];
  if (last) return b;
  return svbool_t{};
}

}  // namespace svelat::sve
