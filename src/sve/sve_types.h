// Register types of the SVE simulator.
//
// Hardware SVE registers are "sizeless": their width is only known at run
// time, so ACLE types may not be class members, sizeof() operands, or
// statics (paper Sec. III-C).  The simulator backs every register with
// storage for the architectural maximum (2048 bit) and lets the runtime
// vector length (sve_config.h) decide how many lanes are architecturally
// visible.  To preserve the paper's port constraints we treat these types
// *as if* they were sizeless: framework classes must never hold them as
// data members -- that is what simd::vec<T> (an ordinary array) is for.
//
// Predicate registers hold one bit per *byte* of the vector, exactly like
// hardware; an element is active iff the bit of its lowest-addressed byte
// is set.
#pragma once

#include <cstdint>

#include "support/half.h"
#include "sve/sve_config.h"

namespace svelat::sve {

// ACLE scalar aliases (ACLE spells them float64_t etc.).
using float64_t = double;
using float32_t = float;
using float16_t = svelat::half;

/// Generic simulated vector register with element type E.
template <typename E>
struct svreg {
  static constexpr unsigned kMaxLanes =
      static_cast<unsigned>(kMaxVectorBytes / sizeof(E));
  alignas(64) E lane[kMaxLanes];
};

using svfloat64_t = svreg<float64_t>;
using svfloat32_t = svreg<float32_t>;
using svfloat16_t = svreg<float16_t>;
using svint32_t = svreg<std::int32_t>;
using svint64_t = svreg<std::int64_t>;
using svuint16_t = svreg<std::uint16_t>;
using svuint32_t = svreg<std::uint32_t>;
using svuint64_t = svreg<std::uint64_t>;

/// Predicate register: one bit (bool) per byte of the widest vector.
struct svbool_t {
  bool byte[kMaxVectorBytes];
};

/// Tuples returned by structure loads (ACLE svfloat64x2_t and friends).
template <typename E, unsigned N>
struct svregx {
  svreg<E> reg[N];
};

template <typename E>
using svregx2 = svregx<E, 2>;
template <typename E>
using svregx3 = svregx<E, 3>;
template <typename E>
using svregx4 = svregx<E, 4>;

using svfloat64x2_t = svregx<float64_t, 2>;
using svfloat64x3_t = svregx<float64_t, 3>;
using svfloat64x4_t = svregx<float64_t, 4>;
using svfloat32x2_t = svregx<float32_t, 2>;
using svfloat32x3_t = svregx<float32_t, 3>;
using svfloat32x4_t = svregx<float32_t, 4>;
using svfloat16x2_t = svregx<float16_t, 2>;

/// ACLE tuple accessors.
template <typename E, unsigned N>
inline svreg<E> svget2(const svregx<E, N>& t, unsigned idx) {
  SVELAT_DEBUG_ASSERT(idx < N);
  return t.reg[idx];
}

namespace detail {

/// Number of architecturally visible lanes for E at the current VL.
template <typename E>
inline unsigned active_lanes() {
  return lanes<E>();
}

/// Is element i of type E active under predicate pg?
template <typename E>
inline bool pred_elem(const svbool_t& pg, unsigned i) {
  return pg.byte[i * sizeof(E)];
}

/// Set element i of type E in pg (only the lowest byte matters, but we set
/// the whole element's byte range the way PTRUE/WHILELT do).
template <typename E>
inline void set_pred_elem(svbool_t& pg, unsigned i, bool value) {
  pg.byte[i * sizeof(E)] = value;
  for (unsigned b = 1; b < sizeof(E); ++b) pg.byte[i * sizeof(E) + b] = false;
}

/// Zero all lanes above the current VL so stale max-width storage can never
/// leak into results (hardware would simply not have those lanes).
template <typename E>
inline void clear_inactive_storage(svreg<E>& r, unsigned from_lane) {
  for (unsigned i = from_lane; i < svreg<E>::kMaxLanes; ++i) r.lane[i] = E{};
}

}  // namespace detail

}  // namespace svelat::sve
