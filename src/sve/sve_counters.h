// Instruction accounting for the SVE simulator.
//
// The paper verified its port under the ArmIE instruction emulator; beyond
// functional checking, an emulator makes the *dynamic instruction stream*
// observable.  We reproduce that capability: every simulated SVE intrinsic
// increments a per-class counter, so benches can report instructions per
// element -- the architecture-independent cost metric used to compare the
// complex-arithmetic strategies of Sec. IV and Sec. V-E.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace svelat::sve {

/// Instruction classes tallied by the simulator.
enum class InsnClass : unsigned {
  kLoad = 0,     // ld1*, ldnt1*
  kStore,        // st1*, stnt1*
  kStructLoad,   // ld2*, ld3*, ld4*
  kStructStore,  // st2*, st3*, st4*
  kFMul,         // fmul
  kFAddSub,      // fadd, fsub, fneg, fabs, fmax, fmin
  kFMla,         // fmla, fmls, fnmla, fnmls
  kFCmla,        // fcmla
  kFCadd,        // fcadd
  kFDivSqrt,     // fdiv, fsqrt
  kPermute,      // ext, rev, tbl, zip, uzp, trn, sel
  kConvert,      // fcvt between precisions
  kPredicate,    // ptrue, whilelt, pfalse, and/orr/eor/not on predicates
  kReduce,       // faddv, fmaxv, fminv, cntp
  kDup,          // dup, index, mov-immediate
  kCompare,      // fcmeq and friends
  kIntOp,        // integer add/sub/shift/logical on vectors
  kCount_,
};

constexpr unsigned kNumInsnClasses = static_cast<unsigned>(InsnClass::kCount_);

/// Human-readable class name ("fcmla", "ld1", ...).
const char* insn_class_name(InsnClass c);

/// Snapshot of the per-class instruction tallies.
struct InsnCounters {
  std::array<std::uint64_t, kNumInsnClasses> count{};

  std::uint64_t operator[](InsnClass c) const {
    return count[static_cast<unsigned>(c)];
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : count) t += v;
    return t;
  }

  /// Total floating-point compute instructions (mul/add/fma/cmla/cadd/div).
  std::uint64_t flops_insns() const {
    using C = InsnClass;
    return (*this)[C::kFMul] + (*this)[C::kFAddSub] + (*this)[C::kFMla] +
           (*this)[C::kFCmla] + (*this)[C::kFCadd] + (*this)[C::kFDivSqrt];
  }

  /// Total memory instructions.
  std::uint64_t memory_insns() const {
    using C = InsnClass;
    return (*this)[C::kLoad] + (*this)[C::kStore] + (*this)[C::kStructLoad] +
           (*this)[C::kStructStore];
  }

  InsnCounters& operator+=(const InsnCounters& o) {
    for (unsigned i = 0; i < kNumInsnClasses; ++i) count[i] += o.count[i];
    return *this;
  }
  InsnCounters& operator-=(const InsnCounters& o) {
    for (unsigned i = 0; i < kNumInsnClasses; ++i) count[i] -= o.count[i];
    return *this;
  }
  friend InsnCounters operator-(InsnCounters a, const InsnCounters& b) {
    a -= b;
    return a;
  }

  /// Multi-line report, one row per non-zero class.
  std::string report() const;
};

namespace detail {
// Function-local thread_local (rather than an extern TLS object): the
// type is trivial, so access compiles to plain TLS loads with no guard,
// and UBSan-instrumented builds don't trip over the cross-TU TLS wrapper.
inline InsnCounters& t_counters() {
  thread_local InsnCounters t{};
  return t;
}
}  // namespace detail

/// Current tallies of the calling thread.
inline const InsnCounters& counters() { return detail::t_counters(); }

/// Reset tallies of the calling thread to zero.
void reset_counters();

/// Add a tally delta to the calling thread's counters.  Used by the
/// threading layer (support/parallel.h) to credit worker-thread
/// instruction counts back to the thread that launched the loop.
inline void absorb_counters(const InsnCounters& delta) { detail::t_counters() += delta; }

/// RAII scope: captures the delta of instruction counts during its lifetime.
class CounterScope {
 public:
  CounterScope() : start_(detail::t_counters()) {}

  /// Instructions executed since construction.
  InsnCounters delta() const { return detail::t_counters() - start_; }

 private:
  InsnCounters start_;
};

namespace detail {
inline void count(InsnClass c) { ++t_counters().count[static_cast<unsigned>(c)]; }
}  // namespace detail

}  // namespace svelat::sve
