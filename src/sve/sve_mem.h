// Load / store intrinsics.
//
// Covers the unit-stride loads and stores plus the structure load/store
// family (LD2/ST2 etc.) the paper highlights in Sec. III-A: "load/store of
// an array of n-element structures into n vectors, with one vector per
// structure element".  armclang's auto-vectorization of std::complex loops
// leans on LD2D/ST2D (Sec. IV-B listing).
//
// Predication follows hardware: loads zero inactive lanes (/z), stores
// leave inactive memory untouched.
#pragma once

#include "sve/sve_detail.h"

namespace svelat::sve {

namespace detail {

template <typename E>
inline svreg<E> ld1_impl(const svbool_t& pg, const E* base, const char* mnemonic,
                         InsnClass cls) {
  record(cls, mnemonic, suffix<E>());
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) r.lane[i] = pred_elem<E>(pg, i) ? base[i] : E{};
  clear_inactive_storage(r, n);
  return r;
}

template <typename E>
inline void st1_impl(const svbool_t& pg, E* base, const svreg<E>& v, const char* mnemonic,
                     InsnClass cls) {
  record(cls, mnemonic, suffix<E>());
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    if (pred_elem<E>(pg, i)) base[i] = v.lane[i];
}

template <typename E, unsigned S>
inline svregx<E, S> ldS_impl(const svbool_t& pg, const E* base, const char* mnemonic) {
  record(InsnClass::kStructLoad, mnemonic, suffix<E>());
  svregx<E, S> r;
  const unsigned n = active_lanes<E>();
  for (unsigned j = 0; j < S; ++j) {
    for (unsigned i = 0; i < n; ++i)
      r.reg[j].lane[i] = pred_elem<E>(pg, i) ? base[S * i + j] : E{};
    clear_inactive_storage(r.reg[j], n);
  }
  return r;
}

template <typename E, unsigned S>
inline void stS_impl(const svbool_t& pg, E* base, const svregx<E, S>& v,
                     const char* mnemonic) {
  record(InsnClass::kStructStore, mnemonic, suffix<E>());
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    if (!pred_elem<E>(pg, i)) continue;
    for (unsigned j = 0; j < S; ++j) base[S * i + j] = v.reg[j].lane[i];
  }
}

}  // namespace detail

// --- LD1 / ST1 (overloaded on element type, like C++ ACLE) -------------------
template <typename E>
inline svreg<E> svld1(const svbool_t& pg, const E* base) {
  return detail::ld1_impl<E>(pg, base, "ld1 z, p/z, [x]", InsnClass::kLoad);
}

template <typename E>
inline void svst1(const svbool_t& pg, E* base, const svreg<E>& v) {
  detail::st1_impl<E>(pg, base, v, "st1 z, p, [x]", InsnClass::kStore);
}

// Non-temporal (streaming) variants; identical semantics, distinct opcode.
template <typename E>
inline svreg<E> svldnt1(const svbool_t& pg, const E* base) {
  return detail::ld1_impl<E>(pg, base, "ldnt1 z, p/z, [x]", InsnClass::kLoad);
}

template <typename E>
inline void svstnt1(const svbool_t& pg, E* base, const svreg<E>& v) {
  detail::st1_impl<E>(pg, base, v, "stnt1 z, p, [x]", InsnClass::kStore);
}

// --- Structure loads / stores -------------------------------------------------
template <typename E>
inline svregx<E, 2> svld2(const svbool_t& pg, const E* base) {
  return detail::ldS_impl<E, 2>(pg, base, "ld2 {z, z}, p/z, [x]");
}

template <typename E>
inline svregx<E, 3> svld3(const svbool_t& pg, const E* base) {
  return detail::ldS_impl<E, 3>(pg, base, "ld3 {z, z, z}, p/z, [x]");
}

template <typename E>
inline svregx<E, 4> svld4(const svbool_t& pg, const E* base) {
  return detail::ldS_impl<E, 4>(pg, base, "ld4 {z, z, z, z}, p/z, [x]");
}

template <typename E>
inline void svst2(const svbool_t& pg, E* base, const svregx<E, 2>& v) {
  detail::stS_impl<E, 2>(pg, base, v, "st2 {z, z}, p, [x]");
}

template <typename E>
inline void svst3(const svbool_t& pg, E* base, const svregx<E, 3>& v) {
  detail::stS_impl<E, 3>(pg, base, v, "st3 {z, z, z}, p, [x]");
}

template <typename E>
inline void svst4(const svbool_t& pg, E* base, const svregx<E, 4>& v) {
  detail::stS_impl<E, 4>(pg, base, v, "st4 {z, z, z, z}, p, [x]");
}

// --- Prefetch -----------------------------------------------------------------
/// PRFD/PRFW: software prefetch hints.  The simulator has no cache model,
/// so these only count as (memory-class) instructions -- they exist because
/// Grid's machine-specific layer includes "memory prefetch" (paper
/// Sec. II-C) and ported code calls them.
template <typename E>
inline void svprf(const svbool_t& pg, const E* base) {
  (void)pg;
  (void)base;
  detail::record(InsnClass::kLoad, "prf p, [x]", detail::suffix<E>());
}

inline void svprfd(const svbool_t& pg, const float64_t* base) { svprf(pg, base); }
inline void svprfw(const svbool_t& pg, const float32_t* base) { svprf(pg, base); }

// --- Gather / scatter (64-bit index vectors) ----------------------------------
template <typename E>
inline svreg<E> svld1_gather_index(const svbool_t& pg, const E* base,
                                   const svreg<std::uint64_t>& index) {
  detail::record(InsnClass::kLoad, "ld1 z, p/z, [x, z, lsl]", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    r.lane[i] = detail::pred_elem<E>(pg, i) ? base[index.lane[i]] : E{};
  detail::clear_inactive_storage(r, n);
  return r;
}

template <typename E>
inline void svst1_scatter_index(const svbool_t& pg, E* base,
                                const svreg<std::uint64_t>& index, const svreg<E>& v) {
  detail::record(InsnClass::kStore, "st1 z, p, [x, z, lsl]", detail::suffix<E>());
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i)
    if (detail::pred_elem<E>(pg, i)) base[index.lane[i]] = v.lane[i];
}

}  // namespace svelat::sve
