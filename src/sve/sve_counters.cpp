#include "sve/sve_counters.h"

#include <cstdio>

namespace svelat::sve {

const char* insn_class_name(InsnClass c) {
  switch (c) {
    case InsnClass::kLoad: return "ld1";
    case InsnClass::kStore: return "st1";
    case InsnClass::kStructLoad: return "ld2/3/4";
    case InsnClass::kStructStore: return "st2/3/4";
    case InsnClass::kFMul: return "fmul";
    case InsnClass::kFAddSub: return "fadd/fsub";
    case InsnClass::kFMla: return "fmla/fmls";
    case InsnClass::kFCmla: return "fcmla";
    case InsnClass::kFCadd: return "fcadd";
    case InsnClass::kFDivSqrt: return "fdiv/fsqrt";
    case InsnClass::kPermute: return "permute";
    case InsnClass::kConvert: return "fcvt";
    case InsnClass::kPredicate: return "predicate";
    case InsnClass::kReduce: return "reduce";
    case InsnClass::kDup: return "dup";
    case InsnClass::kCompare: return "fcmp";
    case InsnClass::kIntOp: return "int-op";
    case InsnClass::kCount_: break;
  }
  return "?";
}

void reset_counters() { detail::t_counters() = InsnCounters{}; }

std::string InsnCounters::report() const {
  std::string out;
  char line[96];
  for (unsigned i = 0; i < kNumInsnClasses; ++i) {
    if (count[i] == 0) continue;
    std::snprintf(line, sizeof(line), "  %-12s %12llu\n",
                  insn_class_name(static_cast<InsnClass>(i)),
                  static_cast<unsigned long long>(count[i]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-12s %12llu\n", "total",
                static_cast<unsigned long long>(total()));
  out += line;
  return out;
}

}  // namespace svelat::sve
