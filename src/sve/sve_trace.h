// Assembly-style instruction tracing.
//
// When a tracer is installed, every simulated intrinsic appends one line
// rendered like SVE assembly ("fcmla z.d, p/m, z.d, z.d, #90").  The
// paper's Sec. IV walks through the assembly armclang emits for four
// kernels; our benches regenerate equivalent listings from the executed
// intrinsic stream (register allocation is not modeled, so operand names
// are generic).
#pragma once

#include <string>
#include <vector>

namespace svelat::sve {

class Tracer {
 public:
  void clear() { lines_.clear(); }
  void append(std::string line) { lines_.push_back(std::move(line)); }
  const std::vector<std::string>& lines() const { return lines_; }

  /// Render the trace as a numbered listing.
  std::string listing() const;

  /// Collapse consecutive duplicate lines ("fmul z.d ... x4") -- loop bodies
  /// repeat per iteration; this recovers the static shape of the kernel.
  std::string folded_listing() const;

 private:
  std::vector<std::string> lines_;
};

namespace detail {
// Function-local thread_local (same pattern as sve_counters.h): trivial
// TLS access, safe in UBSan-instrumented builds.
inline Tracer*& t_tracer() {
  thread_local Tracer* t = nullptr;
  return t;
}

inline bool tracing() { return t_tracer() != nullptr; }
void trace_line(const char* mnemonic, const char* suffix);
void trace_line_imm(const char* mnemonic, const char* suffix, int imm);
}  // namespace detail

/// Install (or remove, with nullptr) the calling thread's tracer.
void set_tracer(Tracer* tracer);

/// RAII: install a tracer for a scope.
class TraceScope {
 public:
  explicit TraceScope(Tracer& tracer) { set_tracer(&tracer); }
  ~TraceScope() { set_tracer(nullptr); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

}  // namespace svelat::sve
