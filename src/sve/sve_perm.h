// Permutation intrinsics.
//
// Grid's virtual-node layout (paper Fig. 1) requires combining elements of
// the same vector when a stencil crosses the boundary of the per-vector
// sub-lattice; Grid implements those as lane permutations.  The SVE ISA
// provides TBL (arbitrary table lookup), EXT (concatenated extract), REV,
// and the ZIP/UZP/TRN families, all of which the simulator models.
//
// Permutes are unpredicated in hardware; they act on all lanes of the
// current vector length.
#pragma once

#include "sve/sve_detail.h"

namespace svelat::sve {

/// EXT: extract a window starting at element offset `imm` from the
/// concatenation (a:b).  imm counts elements, as in the ACLE wrapper.
template <typename E>
inline svreg<E> svext(const svreg<E>& a, const svreg<E>& b, unsigned imm) {
  detail::record_imm(InsnClass::kPermute, "ext z, z, z", "b",
                     static_cast<int>(imm * sizeof(E)));
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  SVELAT_DEBUG_ASSERT(imm < n);
  for (unsigned i = 0; i < n; ++i) {
    const unsigned j = i + imm;
    r.lane[i] = (j < n) ? a.lane[j] : b.lane[j - n];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// REV: reverse all elements.
template <typename E>
inline svreg<E> svrev(const svreg<E>& a) {
  detail::record(InsnClass::kPermute, "rev z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) r.lane[i] = a.lane[n - 1 - i];
  detail::clear_inactive_storage(r, n);
  return r;
}

namespace detail {
template <typename E, typename I>
inline svreg<E> tbl_impl(const svreg<E>& a, const svreg<I>& idx) {
  static_assert(sizeof(E) == sizeof(I), "TBL index width must match element width");
  record(InsnClass::kPermute, "tbl z, {z}, z", suffix<E>());
  svreg<E> r;
  const unsigned n = active_lanes<E>();
  for (unsigned i = 0; i < n; ++i) {
    const auto j = idx.lane[i];
    r.lane[i] = (static_cast<std::uint64_t>(j) < n) ? a.lane[j] : E{};  // OOR -> 0
  }
  clear_inactive_storage(r, n);
  return r;
}
}  // namespace detail

/// TBL: arbitrary permutation via an index vector; out-of-range indices
/// produce zero (hardware behaviour).
inline svfloat64_t svtbl(const svfloat64_t& a, const svuint64_t& idx) {
  return detail::tbl_impl(a, idx);
}
inline svfloat32_t svtbl(const svfloat32_t& a, const svuint32_t& idx) {
  return detail::tbl_impl(a, idx);
}
inline svfloat16_t svtbl(const svfloat16_t& a, const svuint16_t& idx) {
  return detail::tbl_impl(a, idx);
}
inline svuint64_t svtbl(const svuint64_t& a, const svuint64_t& idx) {
  return detail::tbl_impl(a, idx);
}
inline svuint32_t svtbl(const svuint32_t& a, const svuint32_t& idx) {
  return detail::tbl_impl(a, idx);
}

// --- ZIP / UZP / TRN ---------------------------------------------------------
/// ZIP1: interleave the low halves of a and b.
template <typename E>
inline svreg<E> svzip1(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "zip1 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[2 * i] = a.lane[i];
    r.lane[2 * i + 1] = b.lane[i];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// ZIP2: interleave the high halves of a and b.
template <typename E>
inline svreg<E> svzip2(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "zip2 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[2 * i] = a.lane[n / 2 + i];
    r.lane[2 * i + 1] = b.lane[n / 2 + i];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// UZP1: concatenate the even elements of a then b.
template <typename E>
inline svreg<E> svuzp1(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "uzp1 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[i] = a.lane[2 * i];
    r.lane[n / 2 + i] = b.lane[2 * i];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// UZP2: concatenate the odd elements of a then b.
template <typename E>
inline svreg<E> svuzp2(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "uzp2 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[i] = a.lane[2 * i + 1];
    r.lane[n / 2 + i] = b.lane[2 * i + 1];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// TRN1: even-indexed elements from a and b interleaved.
template <typename E>
inline svreg<E> svtrn1(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "trn1 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[2 * i] = a.lane[2 * i];
    r.lane[2 * i + 1] = b.lane[2 * i];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// TRN2: odd-indexed elements from a and b interleaved.
template <typename E>
inline svreg<E> svtrn2(const svreg<E>& a, const svreg<E>& b) {
  detail::record(InsnClass::kPermute, "trn2 z, z, z", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  for (unsigned i = 0; i < n / 2; ++i) {
    r.lane[2 * i] = a.lane[2 * i + 1];
    r.lane[2 * i + 1] = b.lane[2 * i + 1];
  }
  detail::clear_inactive_storage(r, n);
  return r;
}

/// Broadcast one lane to all lanes (DUP (indexed)).
template <typename E>
inline svreg<E> svdup_lane(const svreg<E>& a, unsigned lane) {
  detail::record(InsnClass::kDup, "dup z, z[i]", detail::suffix<E>());
  svreg<E> r;
  const unsigned n = detail::active_lanes<E>();
  SVELAT_DEBUG_ASSERT(lane < n);
  for (unsigned i = 0; i < n; ++i) r.lane[i] = a.lane[lane];
  detail::clear_inactive_storage(r, n);
  return r;
}

}  // namespace svelat::sve
