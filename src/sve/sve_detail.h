// Internal helpers shared by the intrinsic headers.  Not part of the API.
#pragma once

#include <cstdint>

#include "sve/sve_counters.h"
#include "sve/sve_trace.h"
#include "sve/sve_types.h"

namespace svelat::sve::detail {

/// SVE assembly element-size suffix for a lane type.
template <typename E>
constexpr const char* suffix() {
  if constexpr (sizeof(E) == 8) return "d";
  if constexpr (sizeof(E) == 4) return "s";
  if constexpr (sizeof(E) == 2) return "h";
  return "b";
}

/// Count one instruction and, if a tracer is installed, log it.
inline void record(InsnClass c, const char* mnemonic, const char* sfx) {
  count(c);
  if (tracing()) trace_line(mnemonic, sfx);
}

inline void record_imm(InsnClass c, const char* mnemonic, const char* sfx, int imm) {
  count(c);
  if (tracing())
    trace_line_imm(mnemonic, sfx, imm);
}

}  // namespace svelat::sve::detail
