// Multi-rank domain decomposition over a pluggable Communicator.
//
// Paper Sec. II-A: "a set of sub-lattices is distributed over (a very
// large number of) different processes, e.g., different MPI ranks".  The
// lattice is split along one dimension into R rank-local sub-lattices
// (each with its own virtual-node SIMD layout), and the nearest-neighbour
// shift becomes local shift + boundary-face halo exchange through a
// Communicator, optionally fp16-compressed on the wire (Sec. V-B).
//
// Two execution models share every line of the pack -> compress -> send ->
// recv -> decompress -> unpack path (detail::post_shift_face /
// detail::complete_shift):
//
//   - rank_cshift: ONE rank's half of the exchange, called from a real
//     rank process over the SocketCommunicator (comms/socket.h) -- post the
//     outgoing face, then local shift + blocking recv + boundary fix-up.
//   - distributed_cshift: all R ranks driven from one process over any
//     in-process transport (SimCommunicator mailboxes or an in-process
//     SocketWorld): every rank posts first, then every rank completes, so
//     the single-threaded schedule never recvs before the matching send.
//
// Verification contract: scatter -> distributed_cshift -> gather must equal
// the single-rank Cshift exactly (or to fp16 accuracy when compressed) --
// enforced against BOTH transports, with real OS processes for the socket
// one, by tests/comms/test_rank_equivalence.cpp.
#pragma once

#include <memory>
#include <vector>

#include "comms/halo.h"
#include "lattice/cshift.h"
#include "support/metrics.h"

namespace svelat::comms {

/// Splits dimension `split_dim` of a global lattice across `ranks`
/// processes.
class RankDecomposition {
 public:
  RankDecomposition(const lattice::Coordinate& global_dims, int split_dim, int ranks,
                    const lattice::Coordinate& simd_layout)
      : global_dims_(global_dims), split_dim_(split_dim), ranks_(ranks) {
    SVELAT_ASSERT_MSG(ranks > 0 && global_dims[split_dim] % ranks == 0,
                      "lattice extent must divide evenly across ranks");
    local_dims_ = global_dims;
    local_dims_[split_dim] /= ranks;
    for (int r = 0; r < ranks; ++r)
      grids_.push_back(
          std::make_unique<lattice::GridCartesian>(local_dims_, simd_layout));
  }

  int ranks() const { return ranks_; }
  int split_dim() const { return split_dim_; }
  const lattice::Coordinate& global_dims() const { return global_dims_; }
  const lattice::Coordinate& local_dims() const { return local_dims_; }
  const lattice::GridCartesian* grid(int rank) const {
    return grids_[static_cast<std::size_t>(rank)].get();
  }

  /// Rank owning a global coordinate, and its rank-local image.
  int owner(const lattice::Coordinate& global) const {
    return global[split_dim_] / local_dims_[split_dim_];
  }
  lattice::Coordinate to_local(const lattice::Coordinate& global) const {
    lattice::Coordinate local = global;
    local[split_dim_] %= local_dims_[split_dim_];
    return local;
  }
  lattice::Coordinate to_global(int rank, const lattice::Coordinate& local) const {
    lattice::Coordinate global = local;
    global[split_dim_] += rank * local_dims_[split_dim_];
    return global;
  }

 private:
  lattice::Coordinate global_dims_;
  int split_dim_;
  int ranks_;
  lattice::Coordinate local_dims_;
  std::vector<std::unique_ptr<lattice::GridCartesian>> grids_;
};

/// SIMD layout for rank-local grids: spread the Nsimd factors of two over
/// dimensions away from `split_dim` (whose rank-local extent can shrink to
/// 2) with extent divisible by 4, keeping virtual-node blocks >= 2 sites.
/// Pass the GLOBAL dims: the candidate dimensions have the same extent on
/// every rank-local grid.
inline lattice::Coordinate split_simd_layout(const lattice::Coordinate& global_dims,
                                             int split_dim, unsigned nsimd) {
  lattice::Coordinate layout{1, 1, 1, 1};
  unsigned lanes = nsimd;
  for (int d = lattice::Nd - 1; d >= 0 && lanes > 1; --d) {
    if (d == split_dim || global_dims[d] % 4 != 0) continue;
    layout[d] = 2;
    lanes /= 2;
  }
  SVELAT_ASSERT_MSG(lanes == 1, "no non-split dimension can host the SIMD layout");
  return layout;
}

/// Number of complex components in a site object.
template <class vobj>
constexpr std::size_t detail_components() {
  using sobj = tensor::scalar_object_t<vobj>;
  using C = tensor::scalar_element_t<sobj>;
  return sizeof(sobj) / sizeof(C);
}

/// A field distributed over all ranks (one local Lattice per rank; in a
/// real run each rank holds exactly one of these -- see scatter_rank).
template <class vobj>
struct DistributedField {
  explicit DistributedField(const RankDecomposition& decomp) {
    for (int r = 0; r < decomp.ranks(); ++r) locals.emplace_back(decomp.grid(r));
  }
  std::vector<lattice::Lattice<vobj>> locals;
};

/// Extract one rank's sub-lattice of a global field.
template <class vobj>
lattice::Lattice<vobj> scatter_rank(const RankDecomposition& decomp,
                                    const lattice::Lattice<vobj>& global, int rank) {
  SVELAT_ASSERT_MSG(global.grid()->fdimensions() == decomp.global_dims(),
                    "dimension mismatch");
  const lattice::GridCartesian* g = decomp.grid(rank);
  lattice::Lattice<vobj> local(g);
  for (std::int64_t o = 0; o < g->osites(); ++o)
    for (unsigned l = 0; l < g->isites(); ++l) {
      const lattice::Coordinate x = g->global_coor(o, l);
      local.poke(x, global.peek(decomp.to_global(rank, x)));
    }
  return local;
}

/// Scatter a global field to the ranks (in-process, all locals at once).
template <class vobj>
void scatter(const RankDecomposition& decomp, const lattice::Lattice<vobj>& global,
             DistributedField<vobj>& dist) {
  const lattice::GridCartesian* g = global.grid();
  SVELAT_ASSERT_MSG(g->fdimensions() == decomp.global_dims(), "dimension mismatch");
  for (std::int64_t o = 0; o < g->osites(); ++o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const lattice::Coordinate x = g->global_coor(o, l);
      const int rank = decomp.owner(x);
      dist.locals[static_cast<std::size_t>(rank)].poke(decomp.to_local(x),
                                                       global.peek(x));
    }
  }
}

/// Gather rank-local fields back into a global one (in-process).
template <class vobj>
void gather(const RankDecomposition& decomp, const DistributedField<vobj>& dist,
            lattice::Lattice<vobj>& global) {
  for (int r = 0; r < decomp.ranks(); ++r) {
    const lattice::GridCartesian* g = decomp.grid(r);
    for (std::int64_t o = 0; o < g->osites(); ++o) {
      for (unsigned l = 0; l < g->isites(); ++l) {
        const lattice::Coordinate local = g->global_coor(o, l);
        global.poke(decomp.to_global(r, local),
                    dist.locals[static_cast<std::size_t>(r)].peek(local));
      }
    }
  }
}

// --- whole-field wire marshalling (root scatter / gather) -------------------

/// All sites of a local field as flat doubles: the concatenation of the
/// mu=0 faces for every slice, i.e. pack_face's wire layout (complex
/// components in lexicographic site order) extended to the whole field.
/// Layout-independent, so sender and receiver may use different SIMD
/// layouts; any change to the per-site component encoding lives solely in
/// pack_face/unpack_face (comms/halo.h).
template <class vobj>
std::vector<double> pack_field(const lattice::Lattice<vobj>& f) {
  const lattice::Coordinate dims = f.grid()->fdimensions();
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(lattice::volume(dims)) *
              detail_components<vobj>() * 2);
  for (int s = 0; s < dims[0]; ++s) {
    const std::vector<double> face = pack_face(f, /*mu=*/0, s);
    buf.insert(buf.end(), face.begin(), face.end());
  }
  return buf;
}

/// Inverse of pack_field.
template <class vobj>
void unpack_field(const std::vector<double>& buf, lattice::Lattice<vobj>& f) {
  const lattice::Coordinate dims = f.grid()->fdimensions();
  const std::size_t face_doubles =
      static_cast<std::size_t>(lattice::volume(dims) / dims[0]) *
      detail_components<vobj>() * 2;
  SVELAT_ASSERT(buf.size() == face_doubles * static_cast<std::size_t>(dims[0]));
  std::vector<double> face(face_doubles);
  for (int s = 0; s < dims[0]; ++s) {
    const auto begin = buf.begin() + static_cast<std::ptrdiff_t>(face_doubles) * s;
    face.assign(begin, begin + static_cast<std::ptrdiff_t>(face_doubles));
    const auto sites = unpack_face(face, f);
    std::size_t idx = 0;
    lattice::Coordinate x;
    for (int a = 0; a < face_extent(dims, 0, 0); ++a)
      for (int b = 0; b < face_extent(dims, 0, 1); ++b)
        for (int c = 0; c < face_extent(dims, 0, 2); ++c) {
          face_coor(/*mu=*/0, s, a, b, c, x);
          f.poke(x, sites[idx++]);
        }
  }
}

/// Wire tags used by the collective helpers (user tags should stay clear
/// of these).
inline constexpr int kShiftTagBase = 100;    // + split dimension
inline constexpr int kDhopTagBase = 200;     // + exchange sequence number
inline constexpr int kScatterTag = 900;
inline constexpr int kGatherTag = 901;

/// Root-based scatter over the wire: rank 0 cuts the global field into
/// sub-lattices and ships each to its owner.  `global` may be null on
/// ranks != 0 (only rank 0 reads it).  Every rank passes its own `local`.
template <class vobj>
void scatter_root(const RankDecomposition& decomp, Communicator& comm, int rank,
                  const lattice::Lattice<vobj>* global, lattice::Lattice<vobj>& local) {
  if (rank == 0) {
    SVELAT_ASSERT_MSG(global != nullptr, "rank 0 must hold the global field");
    for (int r = decomp.ranks() - 1; r >= 0; --r) {
      lattice::Lattice<vobj> piece = scatter_rank(decomp, *global, r);
      if (r == 0)
        local = std::move(piece);
      else
        comm.send(0, r, kScatterTag, compress(pack_field(piece), Compression::kNone));
    }
  } else {
    const auto wire = comm.recv(rank, 0, kScatterTag);
    const std::size_t ndoubles = wire.size() / sizeof(double);
    unpack_field(decompress(wire, ndoubles, Compression::kNone), local);
  }
}

/// Root-based gather over the wire: every rank ships its sub-lattice to
/// rank 0, which assembles the global field.  `global` may be null on
/// ranks != 0.
template <class vobj>
void gather_root(const RankDecomposition& decomp, Communicator& comm, int rank,
                 const lattice::Lattice<vobj>& local, lattice::Lattice<vobj>* global) {
  if (rank == 0) {
    SVELAT_ASSERT_MSG(global != nullptr, "rank 0 must hold the global field");
    for (int r = 0; r < decomp.ranks(); ++r) {
      lattice::Lattice<vobj> piece(decomp.grid(r));
      if (r == 0) {
        piece = local;
      } else {
        const auto wire = comm.recv(0, r, kGatherTag);
        const std::size_t ndoubles = wire.size() / sizeof(double);
        unpack_field(decompress(wire, ndoubles, Compression::kNone), piece);
      }
      const lattice::GridCartesian* g = decomp.grid(r);
      for (std::int64_t o = 0; o < g->osites(); ++o)
        for (unsigned l = 0; l < g->isites(); ++l) {
          const lattice::Coordinate x = g->global_coor(o, l);
          global->poke(decomp.to_global(r, x), piece.peek(x));
        }
    }
  } else {
    comm.send(rank, 0, kGatherTag, compress(pack_field(local), Compression::kNone));
  }
}

// --- halo-exchanged shift ---------------------------------------------------

namespace detail {

/// Phase 1 of the shifted exchange: rank `rank` posts the boundary face the
/// neighbour needs.  Typed-status form: retries transients per the
/// communicator's policy and returns the final CommStatus, never throws.
///   disp=+1: result(x_mu = L-1) = f(rank+1, x_mu = 0)   -> face 0 goes back.
///   disp=-1: result(x_mu = 0)   = f(rank-1, x_mu = L-1) -> face L-1 forward.
template <class vobj>
CommStatus try_post_shift_face(const RankDecomposition& decomp, Communicator& comm,
                               int rank, const lattice::Lattice<vobj>& local_in,
                               int disp, Compression mode, int tag) {
  const int mu = decomp.split_dim();
  const int R = decomp.ranks();
  const int dest = (disp == 1) ? (rank - 1 + R) % R : (rank + 1) % R;
  const int slice = (disp == 1) ? 0 : decomp.local_dims()[mu] - 1;
  std::vector<std::uint8_t> wire;
  {
    // Wall-clock region over pack + compress only (metrics bytes = wire
    // bytes); the send leg is transport time, not marshalling throughput.
    metrics::ScopedTimer mt("cshift_pack");
    wire = compress(pack_face(local_in, mu, slice), mode);
    mt.add_bytes(static_cast<double>(wire.size()));
  }
  return comm.send_status(rank, dest, tag, wire);
}

/// Throwing wrapper around try_post_shift_face (the historical API): a
/// failure that survives the retry policy becomes a CommError naming the
/// shift phase.
template <class vobj>
void post_shift_face(const RankDecomposition& decomp, Communicator& comm, int rank,
                     const lattice::Lattice<vobj>& local_in, int disp,
                     Compression mode, int tag) {
  const CommStatus st =
      try_post_shift_face(decomp, comm, rank, local_in, disp, mode, tag);
  if (st != CommStatus::kOk)
    throw CommError(st, "shift face post failed (rank " + std::to_string(rank) +
                            " disp " + std::to_string(disp) + " tag " +
                            std::to_string(tag) + ")");
}

/// Phase 2, typed-status form: local shift everywhere, then overwrite the
/// rank-boundary slice with the neighbouring rank's face.  On a non-kOk
/// status `local_out` holds the locally shifted field with a WRAPPED (not
/// exchanged) boundary -- callers must not use it.
template <class vobj>
CommStatus try_complete_shift(const RankDecomposition& decomp, Communicator& comm,
                              int rank, const lattice::Lattice<vobj>& local_in,
                              lattice::Lattice<vobj>& local_out, int disp,
                              Compression mode, int tag) {
  const int mu = decomp.split_dim();
  const int R = decomp.ranks();
  const int l_mu = decomp.local_dims()[mu];

  local_out = lattice::Cshift(local_in, mu, disp);  // interior correct; edge wrapped

  const int from = (disp == 1) ? (rank + 1) % R : (rank - 1 + R) % R;
  std::vector<std::uint8_t> wire;
  if (const CommStatus st = comm.recv_status(rank, from, tag, wire);
      st != CommStatus::kOk)
    return st;
  const lattice::GridCartesian* g = decomp.grid(rank);
  const lattice::Coordinate dims = g->fdimensions();
  const std::size_t face_doubles =
      static_cast<std::size_t>(lattice::volume(dims) / dims[mu]) *
      detail_components<vobj>() * 2;
  // Decompress + unpack + boundary pokes (metrics bytes = wire bytes);
  // the recv wait above is transport time, excluded from the region.
  metrics::ScopedTimer mt("cshift_unpack", static_cast<double>(wire.size()));
  const auto values = decompress(wire, face_doubles, mode);
  const auto sites = unpack_face(values, local_in);

  const int edge = (disp == 1) ? l_mu - 1 : 0;
  std::size_t idx = 0;
  for (int a = 0; a < face_extent(dims, mu, 0); ++a)
    for (int b = 0; b < face_extent(dims, mu, 1); ++b)
      for (int c = 0; c < face_extent(dims, mu, 2); ++c) {
        lattice::Coordinate x;
        face_coor(mu, edge, a, b, c, x);
        local_out.poke(x, sites[idx++]);
      }
  return CommStatus::kOk;
}

/// Throwing wrapper around try_complete_shift (the historical API).
template <class vobj>
void complete_shift(const RankDecomposition& decomp, Communicator& comm, int rank,
                    const lattice::Lattice<vobj>& local_in,
                    lattice::Lattice<vobj>& local_out, int disp, Compression mode,
                    int tag) {
  const CommStatus st = try_complete_shift(decomp, comm, rank, local_in, local_out,
                                           disp, mode, tag);
  if (st != CommStatus::kOk)
    throw CommError(st, "shift face recv failed (rank " + std::to_string(rank) +
                            " disp " + std::to_string(disp) + " tag " +
                            std::to_string(tag) + ")");
}

}  // namespace detail

/// One rank's halo-exchanged shift along the split dimension: post the
/// outgoing face, local shift, blocking recv + boundary fix-up.  This is
/// the call a real rank process makes (socket transport); with R == 1 the
/// face self-sends and reproduces the periodic wrap.
template <class vobj>
void rank_cshift(const RankDecomposition& decomp, Communicator& comm, int rank,
                 const lattice::Lattice<vobj>& in, lattice::Lattice<vobj>& out,
                 int disp, Compression mode = Compression::kNone, int tag = -1) {
  SVELAT_ASSERT_MSG(disp == 1 || disp == -1, "nearest-neighbour shifts only");
  if (tag < 0) tag = kShiftTagBase + decomp.split_dim();
  detail::post_shift_face(decomp, comm, rank, in, disp, mode, tag);
  detail::complete_shift(decomp, comm, rank, in, out, disp, mode, tag);
}

/// All-ranks driver for in-process transports: every rank posts its face
/// (phase 1, would overlap comms in a real code), then every rank
/// completes (phase 2) -- the same two phases rank_cshift runs for one
/// rank, so both execution models share every line of the exchange.
template <class vobj>
void distributed_cshift(const RankDecomposition& decomp, Communicator& comm,
                        const DistributedField<vobj>& in, DistributedField<vobj>& out,
                        int disp, Compression mode = Compression::kNone) {
  SVELAT_ASSERT_MSG(disp == 1 || disp == -1, "nearest-neighbour shifts only");
  const int tag = kShiftTagBase + decomp.split_dim();
  for (int r = 0; r < decomp.ranks(); ++r)
    detail::post_shift_face(decomp, comm, r, in.locals[static_cast<std::size_t>(r)],
                            disp, mode, tag);
  for (int r = 0; r < decomp.ranks(); ++r)
    detail::complete_shift(decomp, comm, r, in.locals[static_cast<std::size_t>(r)],
                           out.locals[static_cast<std::size_t>(r)], disp, mode, tag);
}

}  // namespace svelat::comms
