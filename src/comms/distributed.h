// Multi-rank domain decomposition over the simulated communicator.
//
// Paper Sec. II-A: "a set of sub-lattices is distributed over (a very
// large number of) different processes, e.g., different MPI ranks".  This
// header implements that level of parallelism in one process: the lattice
// is split along one dimension into R rank-local sub-lattices (each with
// its own virtual-node SIMD layout), and the nearest-neighbour shift
// becomes local shift + boundary-face halo exchange through the
// SimCommunicator, optionally fp16-compressed on the wire (Sec. V-B).
//
// Verification contract: scatter -> distributed_cshift -> gather must equal
// the single-rank Cshift exactly (or to fp16 accuracy when compressed).
#pragma once

#include <memory>
#include <vector>

#include "comms/halo.h"
#include "lattice/cshift.h"

namespace svelat::comms {

/// Splits dimension `split_dim` of a global lattice across `ranks`
/// processes.
class RankDecomposition {
 public:
  RankDecomposition(const lattice::Coordinate& global_dims, int split_dim, int ranks,
                    const lattice::Coordinate& simd_layout)
      : global_dims_(global_dims), split_dim_(split_dim), ranks_(ranks) {
    SVELAT_ASSERT_MSG(ranks > 0 && global_dims[split_dim] % ranks == 0,
                      "lattice extent must divide evenly across ranks");
    local_dims_ = global_dims;
    local_dims_[split_dim] /= ranks;
    for (int r = 0; r < ranks; ++r)
      grids_.push_back(std::make_unique<lattice::GridCartesian>(local_dims_, simd_layout));
  }

  int ranks() const { return ranks_; }
  int split_dim() const { return split_dim_; }
  const lattice::Coordinate& global_dims() const { return global_dims_; }
  const lattice::Coordinate& local_dims() const { return local_dims_; }
  const lattice::GridCartesian* grid(int rank) const { return grids_[static_cast<std::size_t>(rank)].get(); }

  /// Rank owning a global coordinate, and its rank-local image.
  int owner(const lattice::Coordinate& global) const {
    return global[split_dim_] / local_dims_[split_dim_];
  }
  lattice::Coordinate to_local(const lattice::Coordinate& global) const {
    lattice::Coordinate local = global;
    local[split_dim_] %= local_dims_[split_dim_];
    return local;
  }
  lattice::Coordinate to_global(int rank, const lattice::Coordinate& local) const {
    lattice::Coordinate global = local;
    global[split_dim_] += rank * local_dims_[split_dim_];
    return global;
  }

 private:
  lattice::Coordinate global_dims_;
  int split_dim_;
  int ranks_;
  lattice::Coordinate local_dims_;
  std::vector<std::unique_ptr<lattice::GridCartesian>> grids_;
};

/// Number of complex components in a site object.
template <class vobj>
constexpr std::size_t detail_components() {
  using sobj = tensor::scalar_object_t<vobj>;
  using C = tensor::scalar_element_t<sobj>;
  return sizeof(sobj) / sizeof(C);
}

/// A field distributed over all ranks (one local Lattice per rank; in a
/// real run each rank would hold exactly one of these).
template <class vobj>
struct DistributedField {
  explicit DistributedField(const RankDecomposition& decomp) {
    for (int r = 0; r < decomp.ranks(); ++r) locals.emplace_back(decomp.grid(r));
  }
  std::vector<lattice::Lattice<vobj>> locals;
};

/// Scatter a global field to the ranks.
template <class vobj>
void scatter(const RankDecomposition& decomp, const lattice::Lattice<vobj>& global,
             DistributedField<vobj>& dist) {
  const lattice::GridCartesian* g = global.grid();
  SVELAT_ASSERT_MSG(g->fdimensions() == decomp.global_dims(), "dimension mismatch");
  for (std::int64_t o = 0; o < g->osites(); ++o) {
    for (unsigned l = 0; l < g->isites(); ++l) {
      const lattice::Coordinate x = g->global_coor(o, l);
      const int rank = decomp.owner(x);
      dist.locals[static_cast<std::size_t>(rank)].poke(decomp.to_local(x), global.peek(x));
    }
  }
}

/// Gather rank-local fields back into a global one.
template <class vobj>
void gather(const RankDecomposition& decomp, const DistributedField<vobj>& dist,
            lattice::Lattice<vobj>& global) {
  for (int r = 0; r < decomp.ranks(); ++r) {
    const lattice::GridCartesian* g = decomp.grid(r);
    for (std::int64_t o = 0; o < g->osites(); ++o) {
      for (unsigned l = 0; l < g->isites(); ++l) {
        const lattice::Coordinate local = g->global_coor(o, l);
        global.poke(decomp.to_global(r, local), dist.locals[static_cast<std::size_t>(r)].peek(local));
      }
    }
  }
}

/// Distributed Cshift along the split dimension: local shift everywhere,
/// then overwrite the rank-boundary slice with the neighbouring rank's
/// face, exchanged through the communicator (optionally compressed).
template <class vobj>
void distributed_cshift(const RankDecomposition& decomp, SimCommunicator& comm,
                        const DistributedField<vobj>& in, DistributedField<vobj>& out,
                        int disp, Compression mode = Compression::kNone) {
  SVELAT_ASSERT_MSG(disp == 1 || disp == -1, "nearest-neighbour shifts only");
  const int mu = decomp.split_dim();
  const int R = decomp.ranks();
  const int l_mu = decomp.local_dims()[mu];

  // Phase 1 (would overlap comms in a real code): every rank posts its
  // boundary face to the neighbour that needs it.
  //   disp=+1: result(x_mu = L-1) = f(rank+1, x_mu = 0) -> face 0 goes back.
  //   disp=-1: result(x_mu = 0)   = f(rank-1, x_mu = L-1) -> face L-1 forward.
  for (int r = 0; r < R; ++r) {
    const int dest = (disp == 1) ? (r - 1 + R) % R : (r + 1) % R;
    const int slice = (disp == 1) ? 0 : l_mu - 1;
    const auto packed = pack_face(in.locals[static_cast<std::size_t>(r)], mu, slice);
    comm.send(r, dest, /*tag=*/100 + mu, compress(packed, mode));
  }

  // Phase 2: local shift + boundary fix-up from the received face.
  for (int r = 0; r < R; ++r) {
    const auto& src = in.locals[static_cast<std::size_t>(r)];
    auto& dst = out.locals[static_cast<std::size_t>(r)];
    dst = lattice::Cshift(src, mu, disp);  // interior correct; edge wrapped locally

    const int from = (disp == 1) ? (r + 1) % R : (r - 1 + R) % R;
    const auto wire = comm.recv(r, from, /*tag=*/100 + mu);
    const lattice::GridCartesian* g = decomp.grid(r);
    const lattice::Coordinate dims = g->fdimensions();
    const std::size_t face_doubles =
        static_cast<std::size_t>(lattice::volume(dims) / dims[mu]) *
        detail_components<vobj>() * 2;
    const auto values = decompress(wire, face_doubles, mode);
    const auto sites = unpack_face(values, src);

    const int edge = (disp == 1) ? l_mu - 1 : 0;
    std::size_t idx = 0;
    for (int a = 0; a < face_extent(dims, mu, 0); ++a)
      for (int b = 0; b < face_extent(dims, mu, 1); ++b)
        for (int c = 0; c < face_extent(dims, mu, 2); ++c) {
          lattice::Coordinate x;
          face_coor(mu, edge, a, b, c, x);
          dst.poke(x, sites[idx++]);
        }
  }
}

}  // namespace svelat::comms
