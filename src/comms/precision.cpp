#include "comms/precision.h"

#include "sve/sve.h"

namespace svelat::comms {

using namespace sve;

void narrow_f64_f32(const double* in, float* out, std::size_t n) {
  const std::size_t step = svcntd();
  for (std::size_t i = 0; i < n; i += 2 * step) {
    // Two f64 vectors -> converted halves in even f32 sub-lanes -> UZP1
    // compacts them into one full f32 vector.
    const svbool_t pg_lo = svwhilelt_b64(i, n);
    const svbool_t pg_hi = svwhilelt_b64(i + step, n);
    const svfloat64_t lo = svld1(pg_lo, &in[i]);
    const svfloat64_t hi = svld1(pg_hi, &in[i + step]);
    const svfloat32_t clo = svcvt_f32_f64_x(pg_lo, lo);
    const svfloat32_t chi = svcvt_f32_f64_x(pg_hi, hi);
    const svfloat32_t packed = svuzp1(clo, chi);
    svst1(svwhilelt_b32(i, n), &out[i], packed);
  }
}

void widen_f32_f64(const float* in, double* out, std::size_t n) {
  const std::size_t step = svcntd();
  for (std::size_t i = 0; i < n; i += 2 * step) {
    const svbool_t pg32 = svwhilelt_b32(i, n);
    const svfloat32_t v = svld1(pg32, &in[i]);
    // Spread the halves so each f32 sits in the even sub-lane of a 64-bit
    // container, then convert.
    const svfloat32_t zero = svdup_f32(0.0f);
    const svfloat32_t lo = svzip1(v, zero);
    const svfloat32_t hi = svzip2(v, zero);
    const svbool_t pg_lo = svwhilelt_b64(i, n);
    const svbool_t pg_hi = svwhilelt_b64(i + step, n);
    svst1(pg_lo, &out[i], svcvt_f64_f32_x(pg_lo, lo));
    svst1(pg_hi, &out[i + step], svcvt_f64_f32_x(pg_hi, hi));
  }
}

void narrow_f32_f16(const float* in, half* out, std::size_t n) {
  const std::size_t step = svcntw();
  for (std::size_t i = 0; i < n; i += 2 * step) {
    const svbool_t pg_lo = svwhilelt_b32(i, n);
    const svbool_t pg_hi = svwhilelt_b32(i + step, n);
    const svfloat32_t lo = svld1(pg_lo, &in[i]);
    const svfloat32_t hi = svld1(pg_hi, &in[i + step]);
    const svfloat16_t clo = svcvt_f16_f32_x(pg_lo, lo);
    const svfloat16_t chi = svcvt_f16_f32_x(pg_hi, hi);
    const svfloat16_t packed = svuzp1(clo, chi);
    svst1(svwhilelt_b16(i, n), &out[i], packed);
  }
}

void widen_f16_f32(const half* in, float* out, std::size_t n) {
  const std::size_t step = svcntw();
  for (std::size_t i = 0; i < n; i += 2 * step) {
    const svbool_t pg16 = svwhilelt_b16(i, n);
    const svfloat16_t v = svld1(pg16, &in[i]);
    const svfloat16_t zero = svdup_f16(half(0.0f));
    const svfloat16_t lo = svzip1(v, zero);
    const svfloat16_t hi = svzip2(v, zero);
    const svbool_t pg_lo = svwhilelt_b32(i, n);
    const svbool_t pg_hi = svwhilelt_b32(i + step, n);
    svst1(pg_lo, &out[i], svcvt_f32_f16_x(pg_lo, lo));
    svst1(pg_hi, &out[i + step], svcvt_f32_f16_x(pg_hi, hi));
  }
}

void narrow_f64_f16(const double* in, half* out, std::size_t n) {
  // Two-stage pipeline d -> s -> h would need a scratch buffer; the direct
  // FCVT d -> h leaves one f16 per 64-bit container (lane 4i), so four
  // vectors compact via two UZP1 levels.
  const std::size_t step = svcntd();
  for (std::size_t i = 0; i < n; i += 4 * step) {
    svfloat16_t q[4];
    for (unsigned k = 0; k < 4; ++k) {
      const svbool_t pg = svwhilelt_b64(i + k * step, n);
      q[k] = svcvt_f16_f64_x(pg, svld1(pg, &in[i + k * step]));
    }
    // Level 1: f16 at lane 4i -> lane 2i.  Level 2: lane 2i -> lane i.
    const svfloat16_t a = svuzp1(q[0], q[1]);
    const svfloat16_t b = svuzp1(q[2], q[3]);
    const svfloat16_t packed = svuzp1(a, b);
    svst1(svwhilelt_b16(i, n), &out[i], packed);
  }
}

void widen_f16_f64(const half* in, double* out, std::size_t n) {
  const std::size_t step = svcntd();
  for (std::size_t i = 0; i < n; i += 4 * step) {
    const svbool_t pg16 = svwhilelt_b16(i, n);
    const svfloat16_t v = svld1(pg16, &in[i]);
    const svfloat16_t zero = svdup_f16(half(0.0f));
    // Two ZIP levels spread f16 element j to lane 4j.
    const svfloat16_t lo = svzip1(v, zero);
    const svfloat16_t hi = svzip2(v, zero);
    const svfloat16_t q[4] = {svzip1(lo, zero), svzip2(lo, zero), svzip1(hi, zero),
                              svzip2(hi, zero)};
    for (unsigned k = 0; k < 4; ++k) {
      const svbool_t pg = svwhilelt_b64(i + k * step, n);
      svst1(pg, &out[i + k * step], svcvt_f64_f16_x(pg, q[k]));
    }
  }
}

}  // namespace svelat::comms
