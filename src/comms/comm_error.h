// Typed communication errors and the retry policy of the comms layer.
//
// Before the fault-tolerance layer, every transport failure -- a slow
// peer, a torn frame, a crashed rank -- called abort() through
// SVELAT_ASSERT and killed the whole multi-process job.  This header
// replaces that with a small, closed vocabulary of failure classes
// (CommStatus), an exception carrying the class (CommError), and a
// bounded retry-with-backoff policy (RetryPolicy) applied by the
// Communicator base class to the *transient* classes only.  Aborting is
// still available as the configurable last resort
// (RetryPolicy::abort_on_failure), but it is no longer the default.
//
// The class -> recovery contract (normative table: docs/FAULTS.md):
//
//   status        transient?  meaning / recovery
//   ------------  ----------  ------------------------------------------
//   kOk           -           success
//   kTimeout      yes         nothing was committed to the stream; the
//                             message may simply be delayed.  Retried
//                             with backoff up to RetryPolicy::max_attempts.
//   kSpuriousEof  yes         an EOF-like glitch that can resolve (seen
//                             under fault injection); retried like kTimeout.
//   kPeerExited   no          the peer closed cleanly; the awaited message
//                             will never arrive.  Fail fast -- this is how
//                             surviving ranks get a failure verdict instead
//                             of hanging until their timeout.
//   kTornFrame    no          the stream ended or stalled INSIDE a frame;
//                             the channel is desynchronized beyond repair.
//   kDesync       no          framing violated (bad magic, misrouted frame).
//   kNoMessage    no          no matching send exists (in-process
//                             transports detect this instantly; it is a
//                             programming error in the exchange schedule).
//   kIoError      no          socket-level failure (errno class).
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace svelat::comms {

enum class CommStatus {
  kOk,
  kTimeout,
  kSpuriousEof,
  kPeerExited,
  kTornFrame,
  kDesync,
  kNoMessage,
  kIoError,
};

constexpr const char* comm_status_name(CommStatus s) {
  switch (s) {
    case CommStatus::kOk: return "ok";
    case CommStatus::kTimeout: return "timeout";
    case CommStatus::kSpuriousEof: return "spurious eof";
    case CommStatus::kPeerExited: return "peer exited";
    case CommStatus::kTornFrame: return "torn frame";
    case CommStatus::kDesync: return "desynchronized";
    case CommStatus::kNoMessage: return "no matching send";
    case CommStatus::kIoError: return "io error";
  }
  return "unknown";
}

/// Transient classes are worth retrying: nothing was committed to the
/// stream, so a later attempt can succeed.  Every other class is final
/// for the channel it occurred on.
constexpr bool comm_status_transient(CommStatus s) {
  return s == CommStatus::kTimeout || s == CommStatus::kSpuriousEof;
}

/// A communication failure that survived the retry policy (or belongs to
/// a non-retryable class).  The what() string is greppable:
/// "svelat comm [<status name>]: <detail>".
class CommError : public std::runtime_error {
 public:
  CommError(CommStatus status, const std::string& detail)
      : std::runtime_error(std::string("svelat comm [") + comm_status_name(status) +
                           "]: " + detail),
        status_(status) {}
  CommStatus status() const { return status_; }

 private:
  CommStatus status_;
};

/// Bounded retry-with-backoff for the transient failure classes.  The
/// first attempt is free; each retry sleeps backoff_ms (doubling per
/// attempt, capped at max_backoff_ms) before re-trying.  Non-transient
/// statuses never retry regardless of this policy.
struct RetryPolicy {
  int max_attempts = 3;      ///< total attempts for transient failures (>= 1)
  int backoff_ms = 5;        ///< sleep before the first retry
  int max_backoff_ms = 200;  ///< backoff growth cap
  /// Last resort: abort() with a diagnostic instead of throwing CommError
  /// when the (possibly retried) operation finally fails.  Off by
  /// default -- failures are typed and recoverable.
  bool abort_on_failure = false;
};

inline void comm_backoff_sleep(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace svelat::comms
