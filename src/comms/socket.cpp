#include "comms/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>

#include "support/parallel.h"

namespace svelat::comms {

namespace {

constexpr std::uint32_t kMagic = 0x53564c54;  // "SVLT"

struct FrameHeader {
  std::uint32_t magic;
  std::int32_t from;
  std::int32_t to;
  std::int32_t tag;
  std::uint64_t bytes;
};
static_assert(sizeof(FrameHeader) == 24, "wire frame header is 24 bytes");

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SVELAT_ASSERT_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                    "fcntl(O_NONBLOCK) failed");
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// poll() one fd for the given events; true when ready, false on timeout.
bool wait_ready(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    SVELAT_ASSERT_MSG(rc >= 0, "poll failed");
    return rc > 0;
  }
}

}  // namespace

SocketCommunicator::SocketCommunicator(int nranks, int my_rank,
                                       std::vector<int> peer_fds, int recv_timeout_ms)
    : nranks_(nranks),
      rank_(my_rank),
      recv_timeout_ms_(recv_timeout_ms),
      peer_fds_(std::move(peer_fds)),
      peer_status_(static_cast<std::size_t>(nranks), CommStatus::kOk) {
  SVELAT_ASSERT_MSG(nranks > 0, "need at least one rank");
  check_rank(my_rank);
  SVELAT_ASSERT_MSG(static_cast<int>(peer_fds_.size()) == nranks,
                    "need one descriptor slot per rank");
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    SVELAT_ASSERT_MSG(peer_fds_[static_cast<std::size_t>(r)] >= 0, "bad peer descriptor");
    set_nonblocking(peer_fds_[static_cast<std::size_t>(r)]);
  }
}

SocketCommunicator::~SocketCommunicator() {
  for (int r = 0; r < nranks_; ++r) {
    const int fd = peer_fds_[static_cast<std::size_t>(r)];
    if (r != rank_ && fd >= 0) ::close(fd);
  }
}

CommStatus SocketCommunicator::try_send(int from, int to, int tag,
                                        const std::vector<std::uint8_t>& payload) {
  SVELAT_ASSERT_MSG(from == rank_, "a socket endpoint sends only from its own rank");
  check_rank(to);
  if (to == rank_) {  // loop back locally, no wire involved
    inbox_[Key{rank_, tag}].push_back(payload);
    bytes_sent_ += payload.size();
    return CommStatus::kOk;
  }
  if (const CommStatus st = peer_state(to); st != CommStatus::kOk) return st;
  FrameHeader h;
  h.magic = kMagic;
  h.from = from;
  h.to = to;
  h.tag = tag;
  h.bytes = payload.size();
  if (const CommStatus st = write_all(to, &h, sizeof h); st != CommStatus::kOk) {
    // A header that timed out before its first byte left nothing on the
    // wire; anything else desynchronized the stream for good.
    if (st != CommStatus::kTimeout) peer_status_[static_cast<std::size_t>(to)] = st;
    return st;
  }
  if (const CommStatus st = write_all(to, payload.data(), payload.size());
      st != CommStatus::kOk) {
    // The header is committed: the channel is torn regardless of class.
    const CommStatus verdict =
        st == CommStatus::kTimeout ? CommStatus::kTornFrame : st;
    peer_status_[static_cast<std::size_t>(to)] = verdict;
    return verdict;
  }
  bytes_sent_ += payload.size();
  return CommStatus::kOk;
}

CommStatus SocketCommunicator::write_all(int to, const void* data, std::size_t n) {
  const int fd = peer_fds_[static_cast<std::size_t>(to)];
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::int64_t deadline = now_ms() + recv_timeout_ms_;
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a fatal SIGPIPE.
    const ssize_t w = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer's buffer is full: it is likely mid-send itself.  Drain any
      // inbound frame to keep both sides progressing, then wait briefly
      // for writability.  Skip peers whose stream already ended: their
      // descriptors poll readable (POLLHUP) forever.
      for (int r = 0; r < nranks_; ++r) {
        if (r == rank_ || r == to || peer_state(r) != CommStatus::kOk) continue;
        if (wait_ready(peer_fds_[static_cast<std::size_t>(r)], POLLIN, 0))
          (void)drain_frame(r, recv_timeout_ms_);
      }
      if (peer_state(to) == CommStatus::kOk && wait_ready(fd, POLLIN, 0))
        (void)drain_frame(to, recv_timeout_ms_);
      if (now_ms() >= deadline)
        // The peer stopped draining its socket.  Recoverable only if the
        // frame has not started; try_send maps a mid-frame stall to
        // kTornFrame.
        return done == 0 ? CommStatus::kTimeout : CommStatus::kTornFrame;
      wait_ready(fd, POLLOUT, 10);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the peer is gone mid-conversation.
    return (errno == EPIPE || errno == ECONNRESET) ? CommStatus::kPeerExited
                                                   : CommStatus::kIoError;
  }
  return CommStatus::kOk;
}

CommStatus SocketCommunicator::read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, p + done, n - done, 0);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return CommStatus::kTornFrame;  // EOF inside the frame
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The sender writes header + payload back to back; the remainder of
      // a started frame arrives promptly -- a stall here means the peer
      // died mid-frame.
      if (!wait_ready(fd, POLLIN, recv_timeout_ms_)) return CommStatus::kTornFrame;
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return CommStatus::kIoError;
  }
  return CommStatus::kOk;
}

CommStatus SocketCommunicator::drain_frame(int from, int timeout_ms) {
  if (const CommStatus st = peer_state(from); st != CommStatus::kOk) return st;
  const int fd = peer_fds_[static_cast<std::size_t>(from)];
  if (!wait_ready(fd, POLLIN, timeout_ms)) return CommStatus::kTimeout;
  // Read the header byte by byte so EOF on a frame BOUNDARY (the peer
  // completed all its sends and exited; its descriptor polls readable
  // forever) is distinguishable from EOF inside a frame (a torn write:
  // the peer died).  Only the latter breaks the stream.
  FrameHeader h;
  auto* hp = reinterpret_cast<std::uint8_t*>(&h);
  std::size_t got = 0;
  while (got < sizeof h) {
    const ssize_t r = ::recv(fd, hp + got, sizeof h - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      const CommStatus st =
          got == 0 ? CommStatus::kPeerExited : CommStatus::kTornFrame;
      peer_status_[static_cast<std::size_t>(from)] = st;
      return st;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      peer_status_[static_cast<std::size_t>(from)] = CommStatus::kIoError;
      return CommStatus::kIoError;
    }
    if (!wait_ready(fd, POLLIN, recv_timeout_ms_)) {
      // A header that stalls part-way means the peer died mid-write.
      const CommStatus st =
          got == 0 ? CommStatus::kTimeout : CommStatus::kTornFrame;
      if (st != CommStatus::kTimeout)
        peer_status_[static_cast<std::size_t>(from)] = st;
      return st;
    }
  }
  if (h.magic != kMagic) {
    peer_status_[static_cast<std::size_t>(from)] = CommStatus::kDesync;
    return CommStatus::kDesync;  // stream desynchronized
  }
  if (h.from != from || h.to != rank_) {
    peer_status_[static_cast<std::size_t>(from)] = CommStatus::kDesync;
    return CommStatus::kDesync;  // misrouted frame
  }
  std::vector<std::uint8_t> payload(h.bytes);
  if (const CommStatus st = read_exact(fd, payload.data(), payload.size());
      st != CommStatus::kOk) {
    peer_status_[static_cast<std::size_t>(from)] = st;
    return st;
  }
  inbox_[Key{h.from, h.tag}].push_back(std::move(payload));
  return CommStatus::kOk;
}

CommStatus SocketCommunicator::try_recv(int to, int from, int tag,
                                        std::vector<std::uint8_t>& out) {
  SVELAT_ASSERT_MSG(to == rank_, "a socket endpoint receives only at its own rank");
  check_rank(from);
  const Key k{from, tag};
  const std::int64_t deadline = now_ms() + recv_timeout_ms_;
  for (;;) {
    auto it = inbox_.find(k);
    if (it != inbox_.end() && !it->second.empty()) {
      out = std::move(it->second.front());
      it->second.pop_front();
      return CommStatus::kOk;
    }
    // Self-sends loop back in try_send(); nothing can arrive later.
    if (from == rank_) return CommStatus::kNoMessage;
    if (const CommStatus st = peer_state(from); st != CommStatus::kOk)
      return st;  // the awaited message can never arrive
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) return CommStatus::kTimeout;
    if (const CommStatus st = drain_frame(from, static_cast<int>(left));
        st != CommStatus::kOk && st != CommStatus::kTimeout)
      return st;
  }
}

bool SocketCommunicator::has_pending(int to, int from, int tag) {
  SVELAT_ASSERT_MSG(to == rank_, "a socket endpoint receives only at its own rank");
  check_rank(from);
  if (from != rank_) {
    // Drain every frame that has COMPLETELY arrived from that peer.  A
    // frame still in flight (header or payload partially written) is not
    // pending yet and must not be committed to -- has_pending is
    // documented non-blocking, so peek at the header and only drain when
    // the kernel buffer already holds the whole frame.
    const int fd = peer_fds_[static_cast<std::size_t>(from)];
    while (peer_state(from) == CommStatus::kOk && wait_ready(fd, POLLIN, 0)) {
      FrameHeader h;
      const ssize_t p = ::recv(fd, &h, sizeof h, MSG_PEEK);
      if (p == 0) {
        peer_status_[static_cast<std::size_t>(from)] = CommStatus::kPeerExited;
        break;
      }
      if (p < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: raced away; nothing complete
      }
      if (static_cast<std::size_t>(p) < sizeof h) break;  // header incomplete
      int avail = 0;
      if (::ioctl(fd, FIONREAD, &avail) != 0 ||
          static_cast<std::uint64_t>(avail) < sizeof h + h.bytes)
        break;                       // payload incomplete
      (void)drain_frame(from, 0);    // whole frame buffered: cannot block
    }
  }
  auto it = inbox_.find(Key{from, tag});
  return it != inbox_.end() && !it->second.empty();
}

std::vector<std::vector<int>> make_socket_mesh(int nranks) {
  SVELAT_ASSERT_MSG(nranks > 0, "need at least one rank");
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(nranks),
      std::vector<int>(static_cast<std::size_t>(nranks), -1));
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      int sv[2];
      SVELAT_ASSERT_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                        "socketpair failed");
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  }
  return mesh;
}

SocketWorld::SocketWorld(int nranks, int recv_timeout_ms) {
  auto mesh = make_socket_mesh(nranks);
  for (int r = 0; r < nranks; ++r)
    comms_.push_back(std::make_unique<SocketCommunicator>(
        nranks, r, std::move(mesh[static_cast<std::size_t>(r)]), recv_timeout_ms));
}

std::string RankExit::describe() const {
  std::ostringstream os;
  if (exited) {
    if (exit_code == 0)
      os << "exit 0";
    else if (exit_code == kCommFailureExitCode)
      os << "comm failure (exit " << exit_code << ")";
    else if (exit_code == kUncaughtExceptionExitCode)
      os << "uncaught exception (exit " << exit_code << ")";
    else
      os << "exit " << exit_code;
  } else {
    const char* name = ::strsignal(term_signal);
    os << "killed by signal " << term_signal << " (" << (name ? name : "?") << ")";
  }
  if (!ok() && !log_path.empty()) os << "; log " << log_path;
  return os.str();
}

std::string LaunchReport::describe() const {
  std::ostringstream os;
  os << (ok ? "all ranks ok" : "rank failure:");
  for (const RankExit& e : ranks)
    os << " [rank " << e.rank << ": " << e.describe() << "]";
  return os.str();
}

LaunchReport run_ranks(int nranks,
                       const std::function<int(int, SocketCommunicator&)>& body,
                       const LaunchOptions& options) {
  auto mesh = make_socket_mesh(nranks);
  std::vector<pid_t> pids;

  for (int r = 0; r < nranks; ++r) {
    std::fflush(nullptr);  // don't duplicate parent's buffered output into children
    const pid_t pid = ::fork();
    SVELAT_ASSERT_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // Rank process.  The parent's OpenMP worker threads do not exist
      // here; force every parallel construct onto the serial path before
      // any lattice code runs.
      set_force_serial(true);
      if (!options.log_dir.empty()) {
        const std::string path = options.log_dir + "/rank" + std::to_string(r) + ".log";
        if (std::freopen(path.c_str(), "w", stdout) != nullptr)
          ::dup2(::fileno(stdout), ::fileno(stderr));
      }
      for (int i = 0; i < nranks; ++i) {
        if (i == r) continue;
        for (int j = 0; j < nranks; ++j) {
          const int fd = mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          if (fd >= 0) ::close(fd);
        }
      }
      int code = 1;
      {
        SocketCommunicator comm(nranks, r, std::move(mesh[static_cast<std::size_t>(r)]),
                                options.recv_timeout_ms);
        // A typed communication failure (a peer crashed, a frame tore)
        // becomes a per-rank exit verdict, not a job-wide abort: the
        // launcher's LaunchReport attributes it to this rank.
        try {
          code = body(r, comm);
        } catch (const CommError& e) {
          std::fprintf(stderr, "rank %d: %s\n", r, e.what());
          code = kCommFailureExitCode;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "rank %d: uncaught exception: %s\n", r, e.what());
          code = kUncaughtExceptionExitCode;
        }
      }
      std::fflush(nullptr);
      ::_exit(code & 0xff);  // no atexit / gtest teardown in rank processes
    }
    pids.push_back(pid);
  }

  // The parent holds no endpoint; close everything so rank hangups surface
  // as EPIPE/EOF at the peers instead of idling in kernel buffers.
  for (auto& row : mesh)
    for (int fd : row)
      if (fd >= 0) ::close(fd);

  LaunchReport report;
  report.ok = true;
  for (int r = 0; r < nranks; ++r) {
    int status = 0;
    pid_t w;
    do {
      w = ::waitpid(pids[static_cast<std::size_t>(r)], &status, 0);
    } while (w < 0 && errno == EINTR);
    RankExit e;
    e.rank = r;
    if (!options.log_dir.empty())
      e.log_path = options.log_dir + "/rank" + std::to_string(r) + ".log";
    if (w == pids[static_cast<std::size_t>(r)] && WIFEXITED(status)) {
      e.exited = true;
      e.exit_code = WEXITSTATUS(status);
    } else if (w == pids[static_cast<std::size_t>(r)] && WIFSIGNALED(status)) {
      e.term_signal = WTERMSIG(status);
    }
    if (!e.ok()) report.ok = false;
    report.ranks.push_back(e);
  }
  return report;
}

}  // namespace svelat::comms
