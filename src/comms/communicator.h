// Communicator: the transport interface of the comms layer.
//
// The paper's Grid runs distribute sub-lattices over MPI ranks (Sec. II-A).
// This reproduction keeps the pack -> (compress) -> send -> recv ->
// (decompress) -> unpack path transport-agnostic behind one small
// interface; three implementations exist:
//
//   SimCommunicator     (below)          -- hosts all R logical ranks in one
//                                           process, routing messages through
//                                           in-memory mailboxes.  Deterministic
//                                           and dependency-free; the unit-test
//                                           workhorse.
//   SocketCommunicator  (comms/socket.h) -- one OS process per rank, wired as
//                                           a full mesh of Unix-domain
//                                           sockets with a thin framing
//                                           protocol.  The real multi-process
//                                           transport (no MPI dependency).
//   FaultyCommunicator  (comms/faults.h) -- decorator injecting a seeded,
//                                           deterministic fault schedule
//                                           (delays, torn frames, spurious
//                                           EOFs, rank crashes) into any of
//                                           the above; the test substrate of
//                                           the fault-tolerance layer.
//
// The interface is a three-level ladder (failure contract: docs/FAULTS.md):
//
//   try_send / try_recv    one attempt, returns CommStatus, never throws.
//                          What implementations override.
//   send_status /          bounded retry-with-backoff over the transient
//   recv_status            statuses (RetryPolicy), returns the final
//                          CommStatus, never throws.
//   send / recv            the call-site API: retried as above, then throws
//                          CommError (or aborts, iff the policy says so --
//                          the configurable last resort) on failure.
//
// Semantics every implementation must provide (enforced by the conformance
// suite in tests/comms/test_communicator_conformance.cpp):
//   - messages on the same (from, to, tag) channel arrive in FIFO order;
//   - distinct tags multiplex independently over the same rank pair;
//   - self-sends (from == to) are legal and loop back locally;
//   - bytes_sent() counts payload bytes of every successful send issued
//     through this object (wire framing overhead is not charged);
//   - recv() of a message that was never sent fails with a typed
//     CommStatus -- kNoMessage where that is detectable instantly,
//     kTimeout where the transport must wait on a peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "comms/comm_error.h"
#include "support/assert.h"

namespace svelat::comms {

class Communicator {
 public:
  virtual ~Communicator() = default;

  /// Number of ranks in the world.
  virtual int size() const = 0;

  /// One attempt to post a message from `from` to `to` with a user tag.
  /// Returns kOk (payload committed) or a typed failure; never throws.
  virtual CommStatus try_send(int from, int to, int tag,
                              const std::vector<std::uint8_t>& payload) = 0;

  /// One attempt to receive the oldest message matching (from, tag)
  /// addressed to `to` into `out`.  A transport that must wait on a peer
  /// bounds the attempt by its own timeout and reports kTimeout; an
  /// in-process transport reports kNoMessage instantly.  Never throws.
  virtual CommStatus try_recv(int to, int from, int tag,
                              std::vector<std::uint8_t>& out) = 0;

  /// True when a matching message has already arrived (non-blocking; may
  /// poll the transport, hence non-const).
  virtual bool has_pending(int to, int from, int tag) = 0;

  /// Total payload bytes successfully sent through this object since
  /// construction / reset_counters().
  virtual std::size_t bytes_sent() const = 0;
  virtual void reset_counters() = 0;

  // --- retrying, status-returning layer --------------------------------------

  /// try_send with the retry policy applied to transient statuses.
  CommStatus send_status(int from, int to, int tag,
                         const std::vector<std::uint8_t>& payload) {
    return with_retries([&] { return try_send(from, to, tag, payload); });
  }

  /// try_recv with the retry policy applied to transient statuses.
  CommStatus recv_status(int to, int from, int tag, std::vector<std::uint8_t>& out) {
    return with_retries([&] { return try_recv(to, from, tag, out); });
  }

  // --- throwing call-site layer ----------------------------------------------

  /// Post a message; retries transient failures, then throws CommError
  /// (or aborts, iff retry_policy().abort_on_failure) on failure.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload) {
    const CommStatus st = send_status(from, to, tag, payload);
    if (st != CommStatus::kOk)
      fail(st, "send " + channel_string(from, to, tag) + " failed");
  }

  /// Receive a message; retries transient failures, then throws CommError
  /// (or aborts, iff retry_policy().abort_on_failure) on failure.
  std::vector<std::uint8_t> recv(int to, int from, int tag) {
    std::vector<std::uint8_t> out;
    const CommStatus st = recv_status(to, from, tag, out);
    if (st != CommStatus::kOk)
      fail(st, "recv " + channel_string(from, to, tag) + " failed");
    return out;
  }

  // --- retry policy ----------------------------------------------------------

  const RetryPolicy& retry_policy() const { return policy_; }
  void set_retry_policy(const RetryPolicy& p) { policy_ = p; }

  /// Transient retries performed by send_status/recv_status so far.
  std::size_t retries() const { return retries_; }

 protected:
  template <class Attempt>
  CommStatus with_retries(const Attempt& attempt) {
    int backoff = policy_.backoff_ms;
    CommStatus st = CommStatus::kOk;
    const int attempts = policy_.max_attempts < 1 ? 1 : policy_.max_attempts;
    for (int a = 0; a < attempts; ++a) {
      if (a > 0) {
        ++retries_;
        comm_backoff_sleep(backoff);
        backoff = backoff * 2 > policy_.max_backoff_ms ? policy_.max_backoff_ms
                                                       : backoff * 2;
      }
      st = attempt();
      if (!comm_status_transient(st)) return st;  // kOk or final failure
    }
    return st;  // transient class exhausted its attempts
  }

  [[noreturn]] void fail(CommStatus st, const std::string& detail) const {
    if (policy_.abort_on_failure) {
      std::fprintf(stderr, "svelat comm [%s]: %s (abort_on_failure set)\n",
                   comm_status_name(st), detail.c_str());
      std::abort();
    }
    throw CommError(st, detail);
  }

  static std::string channel_string(int from, int to, int tag) {
    return "(from " + std::to_string(from) + " to " + std::to_string(to) + " tag " +
           std::to_string(tag) + ")";
  }

 private:
  RetryPolicy policy_;
  std::size_t retries_ = 0;
};

/// In-process transport: R logical ranks share one object, messages live in
/// per-(from, to, tag) mailboxes.  Single-threaded deterministic schedule --
/// a recv must follow its send, so recv of a missing message reports
/// kNoMessage immediately instead of blocking.
class SimCommunicator final : public Communicator {
 public:
  explicit SimCommunicator(int nranks) : nranks_(nranks) {
    SVELAT_ASSERT_MSG(nranks > 0, "need at least one rank");
  }

  int size() const override { return nranks_; }

  CommStatus try_send(int from, int to, int tag,
                      const std::vector<std::uint8_t>& payload) override {
    check_rank(from);
    check_rank(to);
    mailboxes_[key(from, to, tag)].push_back(payload);
    bytes_sent_ += payload.size();
    return CommStatus::kOk;
  }

  CommStatus try_recv(int to, int from, int tag,
                      std::vector<std::uint8_t>& out) override {
    check_rank(from);
    check_rank(to);
    auto it = mailboxes_.find(key(from, to, tag));
    if (it == mailboxes_.end() || it->second.empty()) return CommStatus::kNoMessage;
    out = std::move(it->second.front());
    it->second.pop_front();
    return CommStatus::kOk;
  }

  bool has_pending(int to, int from, int tag) override {
    check_rank(from);
    check_rank(to);
    auto it = mailboxes_.find(key(from, to, tag));
    return it != mailboxes_.end() && !it->second.empty();
  }

  std::size_t bytes_sent() const override { return bytes_sent_; }
  void reset_counters() override { bytes_sent_ = 0; }

 private:
  using Key = std::tuple<int, int, int>;
  static Key key(int from, int to, int tag) { return {from, to, tag}; }
  void check_rank(int r) const {
    SVELAT_ASSERT_MSG(r >= 0 && r < nranks_, "bad rank");
  }

  int nranks_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> mailboxes_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace svelat::comms
