// Communicator: the transport interface of the comms layer.
//
// The paper's Grid runs distribute sub-lattices over MPI ranks (Sec. II-A).
// This reproduction keeps the pack -> (compress) -> send -> recv ->
// (decompress) -> unpack path transport-agnostic behind one small
// interface; two implementations exist:
//
//   SimCommunicator     (below)          -- hosts all R logical ranks in one
//                                           process, routing messages through
//                                           in-memory mailboxes.  Deterministic
//                                           and dependency-free; the unit-test
//                                           workhorse.
//   SocketCommunicator  (comms/socket.h) -- one OS process per rank, wired as
//                                           a full mesh of Unix-domain
//                                           sockets with a thin framing
//                                           protocol.  The real multi-process
//                                           transport (no MPI dependency).
//
// Semantics every implementation must provide (enforced by the conformance
// suite in tests/comms/test_communicator_conformance.cpp):
//   - messages on the same (from, to, tag) channel arrive in FIFO order;
//   - distinct tags multiplex independently over the same rank pair;
//   - self-sends (from == to) are legal and loop back locally;
//   - bytes_sent() counts payload bytes of every send issued through this
//     object (the wire framing overhead is not charged);
//   - recv() of a message that was never sent is a programming error and
//     aborts (after a timeout, for transports that must wait on a peer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "support/assert.h"

namespace svelat::comms {

class Communicator {
 public:
  virtual ~Communicator() = default;

  /// Number of ranks in the world.
  virtual int size() const = 0;

  /// Post a message from `from` to `to` with a user tag.
  virtual void send(int from, int to, int tag, std::vector<std::uint8_t> payload) = 0;

  /// Receive the oldest message matching (from, tag) addressed to `to`;
  /// aborts if no matching send exists (possibly after a transport-defined
  /// timeout).
  virtual std::vector<std::uint8_t> recv(int to, int from, int tag) = 0;

  /// True when a matching message has already arrived (non-blocking; may
  /// poll the transport, hence non-const).
  virtual bool has_pending(int to, int from, int tag) = 0;

  /// Total payload bytes sent through this object since construction /
  /// reset_counters().
  virtual std::size_t bytes_sent() const = 0;
  virtual void reset_counters() = 0;
};

/// In-process transport: R logical ranks share one object, messages live in
/// per-(from, to, tag) mailboxes.  Single-threaded deterministic schedule --
/// a recv must follow its send, so recv of a missing message aborts
/// immediately instead of blocking.
class SimCommunicator final : public Communicator {
 public:
  explicit SimCommunicator(int nranks) : nranks_(nranks) {
    SVELAT_ASSERT_MSG(nranks > 0, "need at least one rank");
  }

  int size() const override { return nranks_; }

  void send(int from, int to, int tag, std::vector<std::uint8_t> payload) override {
    check_rank(from);
    check_rank(to);
    const std::size_t bytes = payload.size();  // before the move empties it
    mailboxes_[key(from, to, tag)].push_back(std::move(payload));
    bytes_sent_ += bytes;
  }

  std::vector<std::uint8_t> recv(int to, int from, int tag) override {
    check_rank(from);
    check_rank(to);
    auto it = mailboxes_.find(key(from, to, tag));
    SVELAT_ASSERT_MSG(it != mailboxes_.end() && !it->second.empty(),
                      "recv without matching send");
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  bool has_pending(int to, int from, int tag) override {
    check_rank(from);
    check_rank(to);
    auto it = mailboxes_.find(key(from, to, tag));
    return it != mailboxes_.end() && !it->second.empty();
  }

  std::size_t bytes_sent() const override { return bytes_sent_; }
  void reset_counters() override { bytes_sent_ = 0; }

 private:
  using Key = std::tuple<int, int, int>;
  static Key key(int from, int to, int tag) { return {from, to, tag}; }
  void check_rank(int r) const {
    SVELAT_ASSERT_MSG(r >= 0 && r < nranks_, "bad rank");
  }

  int nranks_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> mailboxes_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace svelat::comms
