// Simulated communicator: an in-process stand-in for the MPI layer.
//
// The paper's Grid runs distribute sub-lattices over MPI ranks (Sec. II-A);
// no multi-node fabric exists in this reproduction, so the communicator
// hosts R logical ranks inside one process and routes messages through
// in-memory mailboxes.  The pack -> (compress) -> send -> recv ->
// (decompress) -> unpack code path is therefore fully executable and
// testable, which is all the ISA port needs (the fabric itself is not
// SVE-relevant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "support/assert.h"

namespace svelat::comms {

class SimCommunicator {
 public:
  explicit SimCommunicator(int nranks) : nranks_(nranks) {
    SVELAT_ASSERT_MSG(nranks > 0, "need at least one rank");
  }

  int size() const { return nranks_; }

  /// Post a message from `from` to `to` with a user tag.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload) {
    check_rank(from);
    check_rank(to);
    mailboxes_[key(from, to, tag)].push_back(std::move(payload));
    bytes_sent_ += mailboxes_[key(from, to, tag)].back().size();
  }

  /// Receive the oldest matching message; aborts if none is pending
  /// (deterministic single-threaded schedule -- a recv must follow its send).
  std::vector<std::uint8_t> recv(int to, int from, int tag) {
    check_rank(from);
    check_rank(to);
    auto it = mailboxes_.find(key(from, to, tag));
    SVELAT_ASSERT_MSG(it != mailboxes_.end() && !it->second.empty(),
                      "recv without matching send");
    std::vector<std::uint8_t> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }

  bool has_pending(int to, int from, int tag) const {
    auto it = mailboxes_.find(key(from, to, tag));
    return it != mailboxes_.end() && !it->second.empty();
  }

  /// Total payload bytes that crossed the (simulated) network.
  std::size_t bytes_sent() const { return bytes_sent_; }
  void reset_counters() { bytes_sent_ = 0; }

 private:
  using Key = std::tuple<int, int, int>;
  static Key key(int from, int to, int tag) { return {from, to, tag}; }
  void check_rank(int r) const { SVELAT_ASSERT_MSG(r >= 0 && r < nranks_, "bad rank"); }

  int nranks_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> mailboxes_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace svelat::comms
