// The distributed Wilson operator inside the solver loop, with
// compute/comms overlap.
//
// DistributedWilsonDirac<S> is the full Wilson matrix M = (4+m) - Dh/2 on
// one rank's sub-lattice, where every dhop application runs the overlap
// schedule instead of rank_dhop's blocking per-exchange completion:
//
//   phase 1  post      both fermion faces go onto the wire
//                      (detail::try_post_shift_face, tags 200/201)
//   phase 2  interior  sweep the sites whose stencils are entirely local
//                      while the faces are in flight  ["dhop_interior"]
//   phase 3  wait      recv + decompress + unpack the two ghost faces
//                      into reusable buffers           ["dhop_wire_wait"]
//   phase 4  boundary  sweep only the split-dimension edge slices, with
//                      the off-rank neighbour fetched from the ghost
//                      buffers                         ["dhop_faces"]
//
// The gauge link face (tag 202) crosses the wire ONCE, at construction:
// u_bwd[split] is a Cshift whose edge slice belongs to the neighbouring
// rank, and the gauge field never changes during a solve.  Per dhop only
// the two fermion faces move -- one third of rank_dhop's wire volume --
// and no shifted whole-field temporaries are allocated.
//
// Boundary sites run detail::dhop_site_fetch with a fetch functor that
// routes exactly the split-dimension off-rank hop into the ghost face
// (comms::face_site_index addressing); every other hop, and every
// interior site, is the standard stencil fetch -- so interior and
// boundary arithmetic is bitwise identical to the single-rank
// WilsonDirac, which is what makes the rank-equivalence suite exact.
//
// Reductions: CG/BiCGSTAB stopping tests must see bitwise-identical
// scalars on every rank or the ranks fall out of lockstep.  global_*
// below reproduce support/parallel.h's deterministic chunked reduction
// over the GLOBAL site order exactly: a carry (total + in-progress
// chunk) rides a ring rank 0 -> 1 -> ... -> R-1 and the final scalar is
// broadcast back, so R ranks x any thread count give the bit pattern of
// the single-rank reduction on the same SIMD layout.  This requires the
// rank slabs to be contiguous in global outer-site order, i.e. the
// split dimension must be the slowest-varying one (t, split_dim == 3)
// -- asserted, since lex order folds dimension 0 fastest.
//
// Error propagation: try_dhop and the reductions return/throw through
// the comms status ladder; the solver facade (solver/solver.h) catches
// CommError and lands the verdict in SolverResult::comm_status, so a
// crashed peer mid-solve is a typed failure, not a hang.
#pragma once

#include <complex>
#include <cstring>
#include <vector>

#include "comms/distributed.h"
#include "qcd/wilson.h"

namespace svelat::comms {

/// Wire tags of the ring reduction (clear of kShiftTagBase/kDhopTagBase
/// and the scatter/gather collectives).
inline constexpr int kReduceCarryTag = 300;
inline constexpr int kReduceBcastTag = 301;

template <class S>
class DistributedWilsonDirac {
 public:
  using Fermion = qcd::LatticeFermion<S>;
  using sobj = typename Fermion::scalar_object;
  using scalar_type = typename S::scalar_type;

  DistributedWilsonDirac(const RankDecomposition& decomp, Communicator& comm,
                         int rank, const qcd::GaugeField<S>& gauge_local,
                         double mass, Compression mode = Compression::kNone)
      : decomp_(decomp),
        comm_(comm),
        rank_(rank),
        mass_(mass),
        mode_(mode),
        grid_(decomp.grid(rank)),
        stencil_(grid_),
        u_fwd_{gauge_local.U[0], gauge_local.U[1], gauge_local.U[2],
               gauge_local.U[3]},
        u_bwd_{lattice::Cshift(gauge_local.U[0], 0, -1),
               lattice::Cshift(gauge_local.U[1], 1, -1),
               lattice::Cshift(gauge_local.U[2], 2, -1),
               lattice::Cshift(gauge_local.U[3], 3, -1)} {
    SVELAT_ASSERT_MSG(gauge_local.grid()->fdimensions() == decomp.local_dims(),
                      "gauge field must live on this rank's sub-lattice");
    SVELAT_ASSERT_MSG(grid_->simd_layout()[decomp.split_dim()] == 1,
                      "split dimension cannot be SIMD-decomposed "
                      "(use split_simd_layout)");
    partition_sites();
    build_models();
    // The one gauge exchange: u_bwd[split]'s edge slice is the
    // neighbouring rank's face.  Post now, complete lazily at first use
    // so all-ranks in-process construction (everyone posts before anyone
    // receives) works single-threaded.
    detail::post_shift_face(decomp_, comm_, rank_, u_fwd_[decomp_.split_dim()],
                            -1, mode_, kDhopTagBase + 2);
  }

  // Stencil tables and ghost buffers are sized to this rank; copying an
  // operator mid-solve is never intended.
  DistributedWilsonDirac(const DistributedWilsonDirac&) = delete;
  DistributedWilsonDirac& operator=(const DistributedWilsonDirac&) = delete;

  const lattice::GridCartesian* grid() const { return grid_; }
  const RankDecomposition& decomp() const { return decomp_; }
  Communicator& comm() const { return comm_; }
  int rank() const { return rank_; }
  double mass() const { return mass_; }
  Compression mode() const { return mode_; }

  // --- hopping term: the overlap schedule ---------------------------------

  /// out = Dh in, typed-status form: posts faces, sweeps interior while
  /// the wire is in flight, completes faces, sweeps the boundary.  On a
  /// non-kOk status `out` is partial -- callers must not use it.
  CommStatus try_dhop(const Fermion& in, Fermion& out) const {
    if (const CommStatus st = try_complete_setup(); st != CommStatus::kOk)
      return st;
    // Phase 1: both fermion faces onto the wire before any arithmetic.
    if (const CommStatus st = detail::try_post_shift_face(
            decomp_, comm_, rank_, in, +1, mode_, kDhopTagBase + 0);
        st != CommStatus::kOk)
      return st;
    if (const CommStatus st = detail::try_post_shift_face(
            decomp_, comm_, rank_, in, -1, mode_, kDhopTagBase + 1);
        st != CommStatus::kOk)
      return st;
    // Phase 2: interior sites overlap with the in-flight faces.
    {
      metrics::ScopedTimer mt("dhop_interior", interior_bytes_, interior_flops_);
      thread_for(static_cast<std::int64_t>(interior_.size()), [&](std::int64_t i) {
        const std::int64_t o = interior_[static_cast<std::size_t>(i)];
        out[o] = qcd::detail::dhop_site<S>(in, stencil_, u_fwd_, u_bwd_, o);
      });
    }
    // Phase 3: the wire wait -- recv, decompress, unpack into the
    // reusable ghost buffers (bytes = wire bytes actually waited on).
    {
      metrics::ScopedTimer mt("dhop_wire_wait");
      if (const CommStatus st =
              try_recv_face(in, +1, kDhopTagBase + 0, ghost_fwd_, mt);
          st != CommStatus::kOk)
        return st;
      if (const CommStatus st =
              try_recv_face(in, -1, kDhopTagBase + 1, ghost_bwd_, mt);
          st != CommStatus::kOk)
        return st;
    }
    // Phase 4: boundary sites, off-rank hops served from the ghosts.
    {
      metrics::ScopedTimer mt("dhop_faces", boundary_bytes_, boundary_flops_);
      const int split = decomp_.split_dim();
      const int edge = decomp_.local_dims()[split] - 1;
      const lattice::Coordinate dims = grid_->fdimensions();
      thread_for(static_cast<std::int64_t>(boundary_.size()), [&](std::int64_t i) {
        const std::int64_t o = boundary_[static_cast<std::size_t>(i)];
        out[o] = qcd::detail::dhop_site_fetch<S>(
            in, stencil_, u_fwd_, u_bwd_, o,
            [&](const Fermion& f, const lattice::Stencil& st, std::int64_t s,
                int dir) -> qcd::SpinColourVector<S> {
              const bool fwd_cut = dir == split;
              const bool bwd_cut = dir == lattice::Nd + split;
              if (fwd_cut || bwd_cut) {
                // All lanes of an outer site share the split coordinate
                // (simd_layout[split] == 1), so one lane decides.
                const lattice::Coordinate x0 = grid_->global_coor(s, 0);
                if ((fwd_cut && x0[split] == edge) ||
                    (bwd_cut && x0[split] == 0)) {
                  const std::vector<sobj>& ghost =
                      fwd_cut ? ghost_fwd_ : ghost_bwd_;
                  qcd::SpinColourVector<S> v;
                  for (unsigned l = 0; l < grid_->isites(); ++l) {
                    const lattice::Coordinate x = grid_->global_coor(s, l);
                    tensor::poke_lane(v, l,
                                      ghost[face_site_index(dims, split, x)]);
                  }
                  return v;
                }
              }
              return lattice::fetch_neighbour(f, st, s, dir);
            });
      });
    }
    return CommStatus::kOk;
  }

  /// Throwing form of try_dhop (what the solver's operator plumbing uses).
  void dhop(const Fermion& in, Fermion& out) const {
    const CommStatus st = try_dhop(in, out);
    if (st != CommStatus::kOk)
      throw CommError(st, "distributed dhop failed (rank " +
                              std::to_string(rank_) + ")");
  }

  /// Full Wilson operator on this rank's slab: out = (4 + m) in - Dh in / 2.
  void m(const Fermion& in, Fermion& out) const {
    SVELAT_ASSERT_MSG(&in != &out, "in-place application is not supported");
    dhop(in, out);
    const S diag(static_cast<typename S::real_type>(4.0 + mass_), 0);
    const S mhalf(static_cast<typename S::real_type>(-0.5), 0);
    thread_for(grid_->osites(),
               [&](std::int64_t o) { out[o] = diag * in[o] + mhalf * out[o]; });
  }

  /// M^dag via gamma_5 hermiticity (gamma5 is site-local: no extra comms).
  void mdag(const Fermion& in, Fermion& out) const {
    Fermion tmp(grid_);
    qcd::apply_gamma5(in, tmp);
    m(tmp, out);
    qcd::apply_gamma5(out, out);
  }

  /// Normal operator M^dag M.  The two dhops inside reuse tags 200/201
  /// back to back, which is safe: the Communicator contract delivers
  /// same-(from,to,tag) messages FIFO, and each completes its own faces
  /// before the next posts.
  void mdag_m(const Fermion& in, Fermion& out) const {
    Fermion tmp(grid_);
    m(in, tmp);
    mdag(tmp, out);
  }

  // --- exact global reductions --------------------------------------------
  //
  // Each reproduces parallel_reduce's chunked fold over the GLOBAL outer
  // site order, so the result is bitwise the single-rank reduction.

  /// Global <a, b> = sum over ALL ranks' sites, identical on every rank.
  scalar_type global_inner(const Fermion& a, const Fermion& b) const {
    return reduce(ring_reduce([&](std::int64_t o) {
      return tensor::innerProduct(a[o], b[o]);
    }));
  }

  double global_norm2(const Fermion& a) const {
    return global_inner(a, a).real();
  }

  /// Fused r = a*x + y with global |r|^2, one site pass (the CG hot path).
  template <typename A>
  double global_axpy_norm2(Fermion& r, const A& a, const Fermion& x,
                           const Fermion& y) const {
    const S coeff{typename S::scalar_type(a)};
    return reduce(ring_reduce([&](std::int64_t o) {
                            const auto v = coeff * x[o] + y[o];
                            r[o] = v;
                            return tensor::innerProduct(v, v);
                          }))
        .real();
  }

 private:
  /// Classify each outer site: interior (all 8 stencil reads rank-local)
  /// vs boundary (the split-dimension hop crosses the rank cut).  With
  /// local extent L <= 2 every site is boundary and the interior sweep
  /// is empty -- the schedule still pipelines the posts first.
  void partition_sites() {
    const int split = decomp_.split_dim();
    const int l_split = decomp_.local_dims()[split];
    const lattice::Coordinate rdims = grid_->rdimensions();
    for (std::int64_t o = 0; o < grid_->osites(); ++o) {
      const lattice::Coordinate oc = lattice::lex_coor(o, rdims);
      // simd_layout[split] == 1: the outer coordinate IS the site's
      // split coordinate, identical for every lane.
      const bool edge = oc[split] == 0 || oc[split] == l_split - 1;
      (edge ? boundary_ : interior_).push_back(o);
    }
  }

  void build_models() {
    const double site_bytes =
        qcd::kDhopRealsPerSite * sizeof(typename S::real_type);
    const double nsimd = static_cast<double>(grid_->isites());
    interior_bytes_ = site_bytes * nsimd * static_cast<double>(interior_.size());
    interior_flops_ = qcd::kDhopFlopsPerSite * nsimd *
                      static_cast<double>(interior_.size());
    boundary_bytes_ = site_bytes * nsimd * static_cast<double>(boundary_.size());
    boundary_flops_ = qcd::kDhopFlopsPerSite * nsimd *
                      static_cast<double>(boundary_.size());
  }

  /// Complete the construction-time gauge face exchange exactly once.
  CommStatus try_complete_setup() const {
    if (!setup_pending_) return CommStatus::kOk;
    const int split = decomp_.split_dim();
    const CommStatus st =
        detail::try_complete_shift(decomp_, comm_, rank_, u_fwd_[split],
                                   u_bwd_[split], -1, mode_, kDhopTagBase + 2);
    if (st == CommStatus::kOk) setup_pending_ = false;
    return st;
  }

  /// Receive one fermion face into a reusable ghost buffer (pack order:
  /// comms::face_site_index).  disp follows the shift convention: +1
  /// ghosts serve the forward hop off the top edge, -1 the backward hop
  /// off the bottom edge.
  CommStatus try_recv_face(const Fermion& proto, int disp, int tag,
                           std::vector<sobj>& ghost,
                           metrics::ScopedTimer& mt) const {
    const int R = decomp_.ranks();
    const int from = (disp == 1) ? (rank_ + 1) % R : (rank_ - 1 + R) % R;
    if (const CommStatus st = comm_.recv_status(rank_, from, tag, wire_);
        st != CommStatus::kOk)
      return st;
    mt.add_bytes(static_cast<double>(wire_.size()));
    const int split = decomp_.split_dim();
    const std::size_t face_doubles =
        static_cast<std::size_t>(lattice::volume(grid_->fdimensions()) /
                                 grid_->fdimensions()[split]) *
        detail_components<qcd::SpinColourVector<S>>() * 2;
    ghost = unpack_face(decompress(wire_, face_doubles, mode_), proto);
    return CommStatus::kOk;
  }

  /// Deterministic cross-rank reduction.  `term(o)` is evaluated exactly
  /// once per local outer site, in an order equivalent to the global
  /// one.  A carry {total, open chunk, count} rides the ring 0 -> R-1;
  /// chunk boundaries (support/parallel.h's kReduceChunk) are counted
  /// GLOBALLY, so each rank first finishes the chunk its predecessor
  /// left open, then folds its own whole chunks (threadable -- partials
  /// from zero, summed in chunk order), then hands the tail on.  Rank
  /// R-1 finalizes and broadcasts; folding the zero-initialized carry
  /// adds only +0 terms, which IEEE addition leaves bitwise invisible.
  template <class TermF>
  S ring_reduce(TermF&& term) const {
    const std::int64_t n = grid_->osites();
    const int R = decomp_.ranks();
    if (R == 1) return svelat::parallel_reduce(n, S::zero(), term);
    SVELAT_ASSERT_MSG(
        decomp_.split_dim() == lattice::Nd - 1,
        "exact global reductions need rank slabs contiguous in site order: "
        "split the slowest dimension (t)");

    S total = S::zero();
    S chunk = S::zero();
    std::int64_t count = 0;  // sites folded into the open chunk
    if (rank_ != 0) {
      if (const CommStatus st = recv_carry(total, chunk, count);
          st != CommStatus::kOk)
        throw CommError(st, "reduction carry recv failed (rank " +
                                std::to_string(rank_) + ")");
    }

    // Finish the predecessor's open chunk site by site.
    std::int64_t o = 0;
    for (; o < n && count != 0; ++o) {
      chunk += term(o);
      if (++count == kReduceChunk) {
        total += chunk;
        chunk = S::zero();
        count = 0;
      }
    }
    // Whole chunks: each folded from zero, independent -> threadable.
    const std::int64_t whole = (n - o) / kReduceChunk;
    if (whole > 0) {
      partials_.assign(static_cast<std::size_t>(whole), S::zero());
      thread_for(whole, [&](std::int64_t c) {
        S acc = S::zero();
        const std::int64_t lo = o + c * kReduceChunk;
        for (std::int64_t k = lo; k < lo + kReduceChunk; ++k) acc += term(k);
        partials_[static_cast<std::size_t>(c)] = acc;
      });
      for (std::int64_t c = 0; c < whole; ++c)
        total += partials_[static_cast<std::size_t>(c)];
      o += whole * kReduceChunk;
    }
    // Trailing partial chunk rides the carry to the successor.
    for (; o < n; ++o) {
      chunk += term(o);
      ++count;
    }

    S final = S::zero();
    if (rank_ != R - 1) {
      if (const CommStatus st = send_carry(total, chunk, count);
          st != CommStatus::kOk)
        throw CommError(st, "reduction carry send failed (rank " +
                                std::to_string(rank_) + ")");
      std::vector<std::uint8_t> wire;
      if (const CommStatus st =
              comm_.recv_status(rank_, R - 1, kReduceBcastTag, wire);
          st != CommStatus::kOk)
        throw CommError(st, "reduction broadcast recv failed (rank " +
                                std::to_string(rank_) + ")");
      SVELAT_ASSERT(wire.size() == sizeof(S));
      std::memcpy(&final, wire.data(), sizeof(S));
    } else {
      // gsites is a multiple of kReduceChunk in practice, but fold any
      // open tail exactly as parallel_reduce would.
      if (count != 0) total += chunk;
      final = total;
      std::vector<std::uint8_t> wire(sizeof(S));
      std::memcpy(wire.data(), &final, sizeof(S));
      for (int r = 0; r < R - 1; ++r) {
        if (const CommStatus st =
                comm_.send_status(rank_, r, kReduceBcastTag, wire);
            st != CommStatus::kOk)
          throw CommError(st, "reduction broadcast send failed (rank " +
                                  std::to_string(rank_) + ")");
      }
    }
    return final;
  }

  CommStatus send_carry(const S& total, const S& chunk,
                        std::int64_t count) const {
    std::vector<std::uint8_t> wire(2 * sizeof(S) + sizeof(std::int64_t));
    std::memcpy(wire.data(), &total, sizeof(S));
    std::memcpy(wire.data() + sizeof(S), &chunk, sizeof(S));
    std::memcpy(wire.data() + 2 * sizeof(S), &count, sizeof(std::int64_t));
    return comm_.send_status(rank_, rank_ + 1, kReduceCarryTag, wire);
  }

  CommStatus recv_carry(S& total, S& chunk, std::int64_t& count) const {
    std::vector<std::uint8_t> wire;
    if (const CommStatus st =
            comm_.recv_status(rank_, rank_ - 1, kReduceCarryTag, wire);
        st != CommStatus::kOk)
      return st;
    SVELAT_ASSERT(wire.size() == 2 * sizeof(S) + sizeof(std::int64_t));
    std::memcpy(&total, wire.data(), sizeof(S));
    std::memcpy(&chunk, wire.data() + sizeof(S), sizeof(S));
    std::memcpy(&count, wire.data() + 2 * sizeof(S), sizeof(std::int64_t));
    return CommStatus::kOk;
  }

  const RankDecomposition& decomp_;
  Communicator& comm_;
  int rank_;
  double mass_;
  Compression mode_;
  const lattice::GridCartesian* grid_;
  lattice::Stencil stencil_;
  // Double-stored gauge like WilsonDirac; u_bwd_[split]'s edge slice is
  // completed from the neighbour's face at first use.
  qcd::LatticeColourMatrix<S> u_fwd_[lattice::Nd];
  mutable qcd::LatticeColourMatrix<S> u_bwd_[lattice::Nd];
  mutable bool setup_pending_ = true;
  std::vector<std::int64_t> interior_;  ///< outer sites, all hops local
  std::vector<std::int64_t> boundary_;  ///< outer sites on the rank cut
  double interior_bytes_ = 0.0, interior_flops_ = 0.0;
  double boundary_bytes_ = 0.0, boundary_flops_ = 0.0;
  // Reusable per-apply buffers (no allocation in the steady state).
  mutable std::vector<std::uint8_t> wire_;
  mutable std::vector<sobj> ghost_fwd_;  ///< +split face: psi(x_split = 0) of rank+1
  mutable std::vector<sobj> ghost_bwd_;  ///< -split face: psi(x_split = L-1) of rank-1
  mutable std::vector<S> partials_;      ///< ring_reduce chunk partials
};

/// A rank-local fermion bound to its distributed operator, so the generic
/// Krylov loops (solver/cg.h, solver/bicgstab.h) run unchanged on R ranks:
/// `Field r(b.grid())` clones the binding, and the ADL reductions below
/// route through the operator's exact global ring reduction -- every rank
/// sees bitwise-identical alphas/betas/residuals and stays in lockstep.
template <class S>
class DistributedFermion {
 public:
  using Fermion = qcd::LatticeFermion<S>;
  using vector_object = qcd::SpinColourVector<S>;
  using simd_type = S;

  explicit DistributedFermion(const DistributedWilsonDirac<S>* op)
      : op_(op), field(op->grid()) {}

  /// What `Field r(b.grid())` must rebuild: the operator binding.
  const DistributedWilsonDirac<S>* grid() const { return op_; }
  std::int64_t osites() const { return field.osites(); }
  const DistributedWilsonDirac<S>& op() const { return *op_; }

  void set_zero() { field.set_zero(); }

 private:
  const DistributedWilsonDirac<S>* op_;

 public:
  Fermion field;  ///< this rank's slab
};

// ADL surface consumed by the generic solver loops.  Linear updates are
// site-local (no comms); inner products are exact global reductions.
template <class S>
double norm2(const DistributedFermion<S>& a) {
  return a.op().global_norm2(a.field);
}

template <class S>
typename S::scalar_type innerProduct(const DistributedFermion<S>& a,
                                     const DistributedFermion<S>& b) {
  return a.op().global_inner(a.field, b.field);
}

template <class S, typename A>
void axpy(DistributedFermion<S>& r, const A& a, const DistributedFermion<S>& x,
          const DistributedFermion<S>& y) {
  lattice::axpy(r.field, a, x.field, y.field);
}

template <class S, typename A>
double axpy_norm2(DistributedFermion<S>& r, const A& a,
                  const DistributedFermion<S>& x,
                  const DistributedFermion<S>& y) {
  return r.op().global_axpy_norm2(r.field, a, x.field, y.field);
}

/// Allocation-free difference into an existing field (the solver hot
/// path's `sub(r, b, ap)`); site-local, no comms, bitwise-identical to
/// the allocating operator- below.
template <class S>
void sub(DistributedFermion<S>& r, const DistributedFermion<S>& a,
         const DistributedFermion<S>& b) {
  lattice::sub(r.field, a.field, b.field);
}

template <class S>
DistributedFermion<S> operator-(const DistributedFermion<S>& a,
                                const DistributedFermion<S>& b) {
  DistributedFermion<S> r(&a.op());
  r.field = a.field - b.field;
  return r;
}

/// Operator adapter with the WilsonDirac m/mdag/mdag_m surface over
/// DistributedFermion -- the `Op` the operator-generic solve_wilson /
/// solve_wilson_bicgstab entries consume.
template <class S>
struct DistributedWilsonOp {
  const DistributedWilsonDirac<S>* d;

  using Fermion = DistributedFermion<S>;

  void m(const Fermion& in, Fermion& out) const { d->m(in.field, out.field); }
  void mdag(const Fermion& in, Fermion& out) const {
    d->mdag(in.field, out.field);
  }
  void mdag_m(const Fermion& in, Fermion& out) const {
    d->mdag_m(in.field, out.field);
  }
  static void apply_gamma5(const Fermion& in, Fermion& out) {
    qcd::apply_gamma5(in.field, out.field);
  }
};

}  // namespace svelat::comms
