// SocketCommunicator: the real multi-process transport.
//
// Each rank is a separate OS process; every unordered rank pair shares one
// full-duplex Unix-domain stream socket (a socketpair(2) created by the
// launcher before fork(), so no listen/connect handshake and no filesystem
// paths).  Messages carry the same (from, to, tag, payload) tuples the
// simulated transport routes, wrapped in a fixed 24-byte frame header:
//
//   offset  size  field
//        0     4  magic   0x53564c54 ("SVLT", little-endian on the wire)
//        4     4  from    sending rank   (int32)
//        8     4  to      receiving rank (int32)
//       12     4  tag     user tag       (int32)
//       16     8  bytes   payload length (uint64)
//       24     -  payload (raw bytes, `bytes` of them)
//
// Ranks run on one host and share endianness, so fields are memcpy'd in
// native layout.  Flow control: all descriptors are non-blocking and both
// send() and recv() run a small progress engine -- while waiting to write
// (peer's socket buffer full) or to read (frame not yet arrived), any
// complete frame available from any peer is drained into the local inbox.
// Ring exchanges where every rank sends before receiving therefore cannot
// deadlock regardless of message size.
//
// Failure handling is typed (comms/comm_error.h, contract in
// docs/FAULTS.md), not abort-on-timeout: a try_recv whose frame has not
// arrived within `recv_timeout_ms` reports CommStatus::kTimeout (the base
// class retries transient statuses per its RetryPolicy before the
// call-site recv() throws CommError); EOF on a frame boundary reports
// kPeerExited so a rank waiting on a crashed peer gets a failure verdict
// quickly instead of burning its full timeout; EOF or a stall INSIDE a
// frame reports kTornFrame; a bad magic or misrouted frame reports
// kDesync.  Fatal statuses are sticky per peer -- the stream is
// desynchronized beyond repair once a frame tears.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comms/communicator.h"

namespace svelat::comms {

/// One rank's endpoint of the mesh.  Lives in the rank's own process (via
/// run_ranks) or, for tests, several endpoints can live in one process
/// (SocketWorld) since the kernel buffers frames between them.
class SocketCommunicator final : public Communicator {
 public:
  static constexpr int kDefaultRecvTimeoutMs = 30000;

  /// `peer_fds[r]` is the stream socket connected to rank r
  /// (`peer_fds[my_rank]` is ignored; self-sends loop back locally).
  /// Takes ownership of the descriptors.
  SocketCommunicator(int nranks, int my_rank, std::vector<int> peer_fds,
                     int recv_timeout_ms = kDefaultRecvTimeoutMs);
  ~SocketCommunicator() override;

  SocketCommunicator(const SocketCommunicator&) = delete;
  SocketCommunicator& operator=(const SocketCommunicator&) = delete;

  /// The rank this endpoint acts for.
  int rank() const { return rank_; }

  int size() const override { return nranks_; }
  CommStatus try_send(int from, int to, int tag,
                      const std::vector<std::uint8_t>& payload) override;
  CommStatus try_recv(int to, int from, int tag,
                      std::vector<std::uint8_t>& out) override;
  bool has_pending(int to, int from, int tag) override;
  std::size_t bytes_sent() const override { return bytes_sent_; }
  void reset_counters() override { bytes_sent_ = 0; }

 private:
  using Key = std::pair<int, int>;  // (from, tag)

  void check_rank(int r) const {
    SVELAT_ASSERT_MSG(r >= 0 && r < nranks_, "bad rank");
  }
  /// Blocking write of the full buffer to `to`, draining inbound frames
  /// while the outbound buffer is full.  kTimeout only before the first
  /// byte is committed; a stall mid-frame is kTornFrame (the stream
  /// cannot be resynchronized).
  CommStatus write_all(int to, const void* data, std::size_t n);
  /// Read one complete frame from `from` into the inbox.  kOk: a frame
  /// was drained.  kTimeout: none arrived in time.  kPeerExited: EOF on a
  /// frame boundary (the peer completed its sends and exited -- recorded
  /// in peer_status_).  kTornFrame / kDesync: the stream is broken
  /// (sticky in peer_status_).
  CommStatus drain_frame(int from, int timeout_ms);
  /// Read exactly n bytes from fd (payload follows its header promptly).
  CommStatus read_exact(int fd, void* data, std::size_t n);

  /// kOk while the peer's stream is usable; otherwise the sticky verdict.
  CommStatus peer_state(int r) const {
    return peer_status_[static_cast<std::size_t>(r)];
  }

  int nranks_;
  int rank_;
  int recv_timeout_ms_;
  std::vector<int> peer_fds_;
  /// Per-peer stream verdict: kOk, kPeerExited (clean EOF) or a sticky
  /// fatal status (kTornFrame / kDesync / kIoError).
  std::vector<CommStatus> peer_status_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> inbox_;
  std::size_t bytes_sent_ = 0;
};

/// Full mesh of socketpairs: mesh[i][j] is the descriptor rank i uses to
/// talk to rank j (mesh[i][i] == -1).  Used by run_ranks before forking and
/// by SocketWorld for in-process testing.
std::vector<std::vector<int>> make_socket_mesh(int nranks);

/// All N endpoints of a socket mesh hosted in ONE process.  The kernel
/// buffers frames between them, so the conformance tests can exercise the
/// real wire format and framing logic without forking.  Multi-process
/// operation goes through run_ranks instead.
class SocketWorld {
 public:
  explicit SocketWorld(int nranks,
                       int recv_timeout_ms = SocketCommunicator::kDefaultRecvTimeoutMs);
  SocketCommunicator& rank(int r) { return *comms_[static_cast<std::size_t>(r)]; }
  int size() const { return static_cast<int>(comms_.size()); }

 private:
  std::vector<std::unique_ptr<SocketCommunicator>> comms_;
};

struct LaunchOptions {
  int recv_timeout_ms = SocketCommunicator::kDefaultRecvTimeoutMs;
  /// When non-empty, each rank's stdout/stderr are redirected to
  /// `<log_dir>/rank<r>.log` (the CI lanes upload these on failure).
  /// The directory must already exist.
  std::string log_dir;
};

/// Exit code a rank process reports when its body threw a CommError the
/// launcher should attribute to a communication failure (a peer crashed
/// or desynchronized), and the code for any other uncaught exception.
inline constexpr int kCommFailureExitCode = 84;
inline constexpr int kUncaughtExceptionExitCode = 85;

struct RankExit {
  int rank = -1;
  bool exited = false;    ///< false: killed by a signal (e.g. SIGKILL)
  int exit_code = -1;     ///< valid when exited
  int term_signal = 0;    ///< valid when !exited
  std::string log_path;   ///< the rank's log file (empty without log_dir)

  bool ok() const { return exited && exit_code == 0; }
  /// One human-readable verdict, e.g. "exit 3", "comm failure (exit 84)"
  /// or "killed by signal 9 (Killed)".
  std::string describe() const;
};

struct LaunchReport {
  bool ok = false;  ///< every rank exited with code 0
  std::vector<RankExit> ranks;
  /// Clean exits, nonzero exits and signal deaths are decoded per rank;
  /// failure lines include the rank's log path when logs were redirected.
  std::string describe() const;
};

/// Fork `nranks` rank processes wired as a full socket mesh and run
/// `body(rank, comm)` in each; a rank's return value becomes its exit code.
/// A CommError escaping the body exits the rank with kCommFailureExitCode
/// (any other exception: kUncaughtExceptionExitCode) after printing the
/// diagnostic, so one crashed rank yields a per-rank verdict in the
/// LaunchReport instead of a job-wide abort.  The parent owns no endpoint:
/// it closes every descriptor, waits for all children and reports per-rank
/// exits.  Children run single-threaded (set_force_serial) because the
/// parent's OpenMP team does not survive fork(); the deterministic
/// reductions keep results bitwise identical.
LaunchReport run_ranks(int nranks,
                       const std::function<int(int, SocketCommunicator&)>& body,
                       const LaunchOptions& options = {});

}  // namespace svelat::comms
