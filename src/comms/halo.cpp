#include "comms/halo.h"

namespace svelat::comms {

std::vector<std::uint8_t> compress(const std::vector<double>& data, Compression mode) {
  const std::size_t n = data.size();
  switch (mode) {
    case Compression::kNone: {
      std::vector<std::uint8_t> wire(n * sizeof(double));
      std::memcpy(wire.data(), data.data(), wire.size());
      return wire;
    }
    case Compression::kF32: {
      std::vector<float> tmp(n);
      narrow_f64_f32(data.data(), tmp.data(), n);
      std::vector<std::uint8_t> wire(n * sizeof(float));
      std::memcpy(wire.data(), tmp.data(), wire.size());
      return wire;
    }
    case Compression::kF16: {
      std::vector<half> tmp(n);
      narrow_f64_f16(data.data(), tmp.data(), n);
      std::vector<std::uint8_t> wire(n * sizeof(half));
      std::memcpy(wire.data(), tmp.data(), wire.size());
      return wire;
    }
  }
  SVELAT_ASSERT(false);
  return {};
}

std::vector<double> decompress(const std::vector<std::uint8_t>& wire, std::size_t n,
                               Compression mode) {
  std::vector<double> out(n);
  switch (mode) {
    case Compression::kNone: {
      SVELAT_ASSERT(wire.size() == n * sizeof(double));
      std::memcpy(out.data(), wire.data(), wire.size());
      return out;
    }
    case Compression::kF32: {
      SVELAT_ASSERT(wire.size() == n * sizeof(float));
      std::vector<float> tmp(n);
      std::memcpy(tmp.data(), wire.data(), wire.size());
      widen_f32_f64(tmp.data(), out.data(), n);
      return out;
    }
    case Compression::kF16: {
      SVELAT_ASSERT(wire.size() == n * sizeof(half));
      std::vector<half> tmp(n);
      std::memcpy(tmp.data(), wire.data(), wire.size());
      widen_f16_f64(tmp.data(), out.data(), n);
      return out;
    }
  }
  SVELAT_ASSERT(false);
  return {};
}

}  // namespace svelat::comms
