// Distributed Wilson hopping term: qcd::dhop_via_shift with the split-
// dimension neighbour fields fetched through the halo exchange.
//
// Per rank and per application, exactly three faces cross the wire (the
// fermion's +mu and -mu faces and the gauge link's -mu face for mu ==
// split_dim); every other shift is rank-local.  The faces are PRE-POSTED
// in the same fixed order dhop_via_shift consumes them (psi fwd, psi bwd,
// gauge bwd -- see the contract note there), so
//
//   - a real rank process calls rank_dhop: post all three, then compute,
//     with each comm-shift recv'ing its already-in-flight face;
//   - the in-process all-ranks driver (distributed_dhop) posts for every
//     rank first and completes for every rank second, which is what lets
//     the SimCommunicator's send-before-recv schedule and the socket
//     transport share this code path line for line.
//
// With Compression::kNone the gathered multi-rank result is bitwise equal
// to single-rank dhop_via_cshift: the exchanged faces reproduce the
// periodic wrap exactly and the per-site SIMD arithmetic is lane-wise.
//
// These kernels block on each exchange and allocate a shifted field per
// apply -- fine for one-shot verification, wrong inside an iterative
// solver.  The production path is comms/distributed_wilson.h's
// DistributedWilsonDirac: faces posted first, interior swept while the
// wire is in flight, reusable ghost buffers, and the gauge face
// exchanged once at construction instead of per application.
#pragma once

#include "comms/distributed.h"
#include "qcd/wilson.h"

namespace svelat::comms {

namespace detail {

/// Post the three split-dimension faces one dhop application consumes,
/// tagged by exchange sequence number.
template <class S>
void post_dhop_faces(const RankDecomposition& decomp, Communicator& comm, int rank,
                     const qcd::GaugeField<S>& u, const qcd::LatticeFermion<S>& in,
                     Compression mode) {
  const int s = decomp.split_dim();
  post_shift_face(decomp, comm, rank, in, +1, mode, kDhopTagBase + 0);
  post_shift_face(decomp, comm, rank, in, -1, mode, kDhopTagBase + 1);
  post_shift_face(decomp, comm, rank, u.U[s], -1, mode, kDhopTagBase + 2);
}

/// Run the shared hopping-term arithmetic, completing the pre-posted
/// exchanges in consumption order.
template <class S>
void complete_dhop(const RankDecomposition& decomp, Communicator& comm, int rank,
                   const qcd::GaugeField<S>& u, const qcd::LatticeFermion<S>& in,
                   qcd::LatticeFermion<S>& out, Compression mode) {
  const int s = decomp.split_dim();
  int seq = 0;
  qcd::dhop_via_shift(u, in, out, [&](const auto& f, int mu, int disp) {
    using FieldT = std::decay_t<decltype(f)>;
    if (mu != s) return lattice::Cshift(f, mu, disp);
    FieldT shifted(f.grid());
    complete_shift(decomp, comm, rank, f, shifted, disp, mode, kDhopTagBase + seq++);
    return shifted;
  });
  SVELAT_ASSERT_MSG(seq == 3, "dhop consumed an unexpected number of exchanges");
}

}  // namespace detail

/// One rank's distributed hopping term (the real-process entry point):
/// out = Dh in on this rank's sub-lattice, faces exchanged with the
/// neighbouring ranks through `comm`.
template <class S>
void rank_dhop(const RankDecomposition& decomp, Communicator& comm, int rank,
               const qcd::GaugeField<S>& u_local, const qcd::LatticeFermion<S>& in,
               qcd::LatticeFermion<S>& out,
               Compression mode = Compression::kNone) {
  detail::post_dhop_faces(decomp, comm, rank, u_local, in, mode);
  detail::complete_dhop(decomp, comm, rank, u_local, in, out, mode);
}

/// Gauge links distributed over all ranks (in-process counterpart of one
/// GaugeField per rank process).
template <class S>
struct DistributedGauge {
  explicit DistributedGauge(const RankDecomposition& decomp) {
    for (int r = 0; r < decomp.ranks(); ++r) locals.emplace_back(decomp.grid(r));
  }
  std::vector<qcd::GaugeField<S>> locals;
};

template <class S>
void scatter_gauge(const RankDecomposition& decomp, const qcd::GaugeField<S>& global,
                   DistributedGauge<S>& dist) {
  for (int mu = 0; mu < lattice::Nd; ++mu)
    for (int r = 0; r < decomp.ranks(); ++r)
      dist.locals[static_cast<std::size_t>(r)].U[static_cast<std::size_t>(mu)] =
          scatter_rank(decomp, global.U[static_cast<std::size_t>(mu)], r);
}

/// All-ranks driver for in-process transports: every rank posts its faces,
/// then every rank computes.
template <class S>
void distributed_dhop(const RankDecomposition& decomp, Communicator& comm,
                      const DistributedGauge<S>& u,
                      const DistributedField<qcd::SpinColourVector<S>>& in,
                      DistributedField<qcd::SpinColourVector<S>>& out,
                      Compression mode = Compression::kNone) {
  for (int r = 0; r < decomp.ranks(); ++r)
    detail::post_dhop_faces(decomp, comm, r, u.locals[static_cast<std::size_t>(r)],
                            in.locals[static_cast<std::size_t>(r)], mode);
  for (int r = 0; r < decomp.ranks(); ++r)
    detail::complete_dhop(decomp, comm, r, u.locals[static_cast<std::size_t>(r)],
                          in.locals[static_cast<std::size_t>(r)],
                          out.locals[static_cast<std::size_t>(r)], mode);
}

}  // namespace svelat::comms
