// Halo exchange with optional fp32 / fp16 compression.
//
// Packs the face { x : x_mu = edge } of a fermion (or any) field into a
// contiguous buffer of complex components, optionally compresses it with
// the SVE precision-conversion pipelines, routes it through any
// Communicator transport, and unpacks on the receiving side.  The
// compression mode trades bandwidth for precision exactly as Grid's fp16
// exchange buffers do (paper Sec. V-B).
#pragma once

#include <complex>
#include <cstring>
#include <vector>

#include "comms/communicator.h"
#include "comms/precision.h"
#include "lattice/lattice.h"

namespace svelat::comms {

enum class Compression {
  kNone,  ///< full precision on the wire
  kF32,   ///< double fields compressed to float
  kF16,   ///< compressed to half (Grid's network compression)
};

constexpr const char* compression_name(Compression c) {
  switch (c) {
    case Compression::kNone: return "none";
    case Compression::kF32: return "f32";
    case Compression::kF16: return "f16";
  }
  return "?";
}

// --- helpers ---------------------------------------------------------------
/// Extent of the k-th non-mu dimension of a face.
inline int face_extent(const lattice::Coordinate& dims, int mu, int k) {
  int seen = 0;
  for (int nu = 0; nu < lattice::Nd; ++nu) {
    if (nu == mu) continue;
    if (seen == k) return dims[nu];
    ++seen;
  }
  SVELAT_ASSERT(false);
  return 0;
}

/// Build the face coordinate from (a, b, c) along the non-mu dimensions.
inline void face_coor(int mu, int slice, int a, int b, int c, lattice::Coordinate& x) {
  const int abc[3] = {a, b, c};
  int seen = 0;
  for (int nu = 0; nu < lattice::Nd; ++nu) {
    if (nu == mu) {
      x[nu] = slice;
    } else {
      x[nu] = abc[seen++];
    }
  }
}


/// Index of a site within its face's pack order: the position pack_face /
/// unpack_face assign to the site whose non-mu coordinates are x's.  Lets
/// consumers address individual ghost sites of a received face (the
/// distributed operator's boundary sweep) without materializing a shifted
/// field.
inline std::size_t face_site_index(const lattice::Coordinate& dims, int mu,
                                   const lattice::Coordinate& x) {
  std::size_t idx = 0;
  for (int nu = 0; nu < lattice::Nd; ++nu) {
    if (nu == mu) continue;
    idx = idx * static_cast<std::size_t>(dims[nu]) + static_cast<std::size_t>(x[nu]);
  }
  return idx;
}

/// Face of a field: all sites with x[mu] == slice, packed as flat doubles
/// (real, imag per component) in lexicographic face order.
template <class vobj>
std::vector<double> pack_face(const lattice::Lattice<vobj>& f, int mu, int slice) {
  using sobj = typename lattice::Lattice<vobj>::scalar_object;
  using C = tensor::scalar_element_t<sobj>;
  constexpr std::size_t ncomp = sizeof(sobj) / sizeof(C);
  const lattice::GridCartesian* g = f.grid();
  const lattice::Coordinate dims = g->fdimensions();

  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(lattice::volume(dims)) / dims[mu] * ncomp * 2);
  lattice::Coordinate x;
  // Iterate the 3d face in lexicographic order of the non-mu coordinates.
  for (int a = 0; a < face_extent(dims, mu, 0); ++a)
    for (int b = 0; b < face_extent(dims, mu, 1); ++b)
      for (int c = 0; c < face_extent(dims, mu, 2); ++c) {
        face_coor(mu, slice, a, b, c, x);
        const sobj s = f.peek(x);
        const C* comp = reinterpret_cast<const C*>(&s);
        for (std::size_t k = 0; k < ncomp; ++k) {
          buf.push_back(static_cast<double>(comp[k].real()));
          buf.push_back(static_cast<double>(comp[k].imag()));
        }
      }
  return buf;
}

/// Scalar site objects of the face, in the same order pack_face uses.
template <class vobj>
std::vector<typename lattice::Lattice<vobj>::scalar_object> unpack_face(
    const std::vector<double>& buf, const lattice::Lattice<vobj>& proto) {
  using sobj = typename lattice::Lattice<vobj>::scalar_object;
  using C = tensor::scalar_element_t<sobj>;
  using R = typename C::value_type;
  constexpr std::size_t ncomp = sizeof(sobj) / sizeof(C);
  SVELAT_ASSERT(buf.size() % (2 * ncomp) == 0);
  (void)proto;
  std::vector<sobj> sites(buf.size() / (2 * ncomp));
  std::size_t idx = 0;
  for (auto& s : sites) {
    C* comp = reinterpret_cast<C*>(&s);
    for (std::size_t k = 0; k < ncomp; ++k) {
      comp[k] = C(static_cast<R>(buf[idx]), static_cast<R>(buf[idx + 1]));
      idx += 2;
    }
  }
  return sites;
}

/// Compress a double buffer for the wire.
std::vector<std::uint8_t> compress(const std::vector<double>& data, Compression mode);

/// Inverse of compress().
std::vector<double> decompress(const std::vector<std::uint8_t>& wire, std::size_t n,
                               Compression mode);

/// One full exchange: pack the face, compress, send rank->rank through the
/// communicator, receive, decompress.  Returns the received samples and
/// reports wire bytes via *wire_bytes.
template <class vobj>
std::vector<double> exchange_face(Communicator& comm, const lattice::Lattice<vobj>& f,
                                  int mu, int slice, Compression mode, int from_rank,
                                  int to_rank, std::size_t* wire_bytes = nullptr) {
  const std::vector<double> packed = pack_face(f, mu, slice);
  std::vector<std::uint8_t> wire = compress(packed, mode);
  if (wire_bytes != nullptr) *wire_bytes = wire.size();
  comm.send(from_rank, to_rank, /*tag=*/mu, std::move(wire));
  const std::vector<std::uint8_t> received = comm.recv(to_rank, from_rank, /*tag=*/mu);
  return decompress(received, packed.size(), mode);
}

}  // namespace svelat::comms
