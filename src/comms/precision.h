// Buffer-level precision conversion using the SVE FCVT + UZP/ZIP idiom.
//
// The paper notes that Grid uses 16-bit floats exclusively "for data
// compression upon data exchange over the communications network"
// (Sec. V-B), and lists precision conversion among the machine-specific
// operations of the abstraction layer (Sec. II-C).  These routines
// implement the conversion pipelines with VLA loops (they must work for
// any buffer length, so they use WHILELT predication like Sec. IV-C).
//
// SVE converts within containers of the wider type; narrowing therefore
// processes two wide vectors and compacts the results with UZP1, and
// widening spreads one narrow vector with ZIP1/ZIP2 before converting.
#pragma once

#include <cstddef>

#include "support/half.h"

namespace svelat::comms {

/// f64 -> f32, element-wise, any n.
void narrow_f64_f32(const double* in, float* out, std::size_t n);
/// f32 -> f64.
void widen_f32_f64(const float* in, double* out, std::size_t n);
/// f32 -> f16 (round-to-nearest-even, like FCVT).
void narrow_f32_f16(const float* in, half* out, std::size_t n);
/// f16 -> f32 (exact).
void widen_f16_f32(const half* in, float* out, std::size_t n);
/// f64 -> f16 via the direct FCVT pair.
void narrow_f64_f16(const double* in, half* out, std::size_t n);
/// f16 -> f64.
void widen_f16_f64(const half* in, double* out, std::size_t n);

}  // namespace svelat::comms
