// FaultyCommunicator: deterministic fault injection for any Communicator.
//
// The fault-tolerance layer (typed CommStatus errors, retry-with-backoff,
// rank-failure verdicts, checkpoint auto-recovery) is only trustworthy if
// every failure class can be produced on demand, repeatably.  This
// decorator wraps an inner transport and injects faults from a schedule
// that is a pure function of its construction arguments -- two runs with
// the same schedule see byte-identical fault sequences, so fault tests
// are as deterministic as the rest of the suite.
//
// A FaultEvent names an operation stream (sends or recvs through this
// wrapper), a 0-based operation index in that stream, a fault kind and a
// repeat count.  The operation index counts COMPLETED operations: an
// attempt that is faulted does not advance the counter, so "fault op 3
// twice" means the 4th send is refused twice (each attempt observing the
// fault) and succeeds on the 3rd attempt -- exactly the shape the retry
// policy must absorb.
//
//   kind          injected status        recovery expected
//   -----------   --------------------   --------------------------------
//   kDelay        kTimeout               absorbed by retry-with-backoff
//   kSpuriousEof  kSpuriousEof           absorbed by retry-with-backoff
//   kTornFrame    kTornFrame (forever)   typed CommError at the call site
//   kCrash        SIGKILL self           surviving ranks get kPeerExited;
//                                        the launcher reports a signal
//                                        death and recovers from the last
//                                        checkpoint
//
// FaultSchedule::seeded() derives a reproducible schedule of *transient*
// faults from (seed, rank) via splitmix64 -- the soak knob behind
// ensemble_pipeline --fault-seed.
#pragma once

#include <csignal>
#include <cstdint>
#include <unistd.h>

#include <vector>

#include "comms/communicator.h"
#include "support/random.h"

namespace svelat::comms {

enum class FaultOp { kSend, kRecv };

enum class FaultKind { kDelay, kTornFrame, kSpuriousEof, kCrash };

constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTornFrame: return "torn frame";
    case FaultKind::kSpuriousEof: return "spurious eof";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

struct FaultEvent {
  FaultOp op = FaultOp::kSend;
  /// Fires when `at` operations of this kind have completed (0-based).
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kDelay;
  /// Consecutive attempts that observe the fault (transient kinds).
  /// kTornFrame ignores this (a torn stream never heals); kCrash needs
  /// only the first firing.
  int count = 1;
};

/// An ordered list of fault events plus the seeded generator.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// A reproducible schedule of TRANSIENT faults (delays and spurious
  /// EOFs only -- these are the classes the retry policy must absorb
  /// silently, so a seeded soak run still completes).  Each of the first
  /// `nops` operation indices is faulted with probability ~1/`rate` per
  /// stream, alternating kinds pseudo-randomly.  Pure function of
  /// (seed, rank, nops, rate).
  static FaultSchedule seeded(std::uint64_t seed, int rank, std::uint64_t nops = 64,
                              std::uint64_t rate = 8) {
    FaultSchedule s;
    if (rate == 0) return s;
    for (std::uint64_t i = 0; i < nops; ++i) {
      for (const FaultOp op : {FaultOp::kSend, FaultOp::kRecv}) {
        const std::uint64_t h = splitmix64(
            seed ^ (static_cast<std::uint64_t>(rank) << 48) ^
            (static_cast<std::uint64_t>(op == FaultOp::kRecv) << 40) ^ i);
        if (h % rate != 0) continue;
        FaultEvent e;
        e.op = op;
        e.at = i;
        e.kind = (h >> 32) % 2 == 0 ? FaultKind::kDelay : FaultKind::kSpuriousEof;
        e.count = 1 + static_cast<int>((h >> 16) % 2);  // 1 or 2 attempts
        s.events.push_back(e);
      }
    }
    return s;
  }
};

/// Decorator injecting a FaultSchedule into any Communicator.  Failed
/// attempts are reported through the same CommStatus vocabulary real
/// transports use, so the retry ladder and every call site above it
/// cannot tell injected faults from organic ones.
class FaultyCommunicator final : public Communicator {
 public:
  FaultyCommunicator(Communicator& inner, FaultSchedule schedule)
      : inner_(inner), schedule_(std::move(schedule)) {}

  int size() const override { return inner_.size(); }

  CommStatus try_send(int from, int to, int tag,
                      const std::vector<std::uint8_t>& payload) override {
    if (const CommStatus st = inject(FaultOp::kSend); st != CommStatus::kOk)
      return st;
    const CommStatus st = inner_.try_send(from, to, tag, payload);
    if (st == CommStatus::kOk) ++sends_done_;
    return st;
  }

  CommStatus try_recv(int to, int from, int tag,
                      std::vector<std::uint8_t>& out) override {
    if (const CommStatus st = inject(FaultOp::kRecv); st != CommStatus::kOk)
      return st;
    const CommStatus st = inner_.try_recv(to, from, tag, out);
    if (st == CommStatus::kOk) ++recvs_done_;
    return st;
  }

  bool has_pending(int to, int from, int tag) override {
    return inner_.has_pending(to, from, tag);
  }
  std::size_t bytes_sent() const override { return inner_.bytes_sent(); }
  void reset_counters() override { inner_.reset_counters(); }

  /// Faulted attempts observed so far (each refused attempt counts once;
  /// a kCrash never returns to count).
  std::size_t faults_injected() const { return faults_injected_; }

  /// Completed (successful) operations per stream.
  std::uint64_t sends_done() const { return sends_done_; }
  std::uint64_t recvs_done() const { return recvs_done_; }

 private:
  CommStatus inject(FaultOp op) {
    const std::uint64_t done = op == FaultOp::kSend ? sends_done_ : recvs_done_;
    for (FaultEvent& e : schedule_.events) {
      if (e.op != op || e.at != done) continue;
      switch (e.kind) {
        case FaultKind::kDelay:
          if (e.count <= 0) continue;  // spent: the operation proceeds
          --e.count;
          ++faults_injected_;
          return CommStatus::kTimeout;
        case FaultKind::kSpuriousEof:
          if (e.count <= 0) continue;
          --e.count;
          ++faults_injected_;
          return CommStatus::kSpuriousEof;
        case FaultKind::kTornFrame:
          ++faults_injected_;  // never heals: every attempt observes it
          return CommStatus::kTornFrame;
        case FaultKind::kCrash:
          ++faults_injected_;
          // Die the way a real rank crash does: uncatchable, mid-run.
          // Only meaningful inside a forked rank process (run_ranks).
          ::kill(::getpid(), SIGKILL);
          ::_exit(128 + SIGKILL);  // unreachable; placates noreturn analysis
      }
    }
    return CommStatus::kOk;
  }

  Communicator& inner_;
  FaultSchedule schedule_;
  std::uint64_t sends_done_ = 0;
  std::uint64_t recvs_done_ = 0;
  std::size_t faults_injected_ = 0;
};

}  // namespace svelat::comms
