// svelat: SVE-enabled lattice QCD framework.
//
// Public umbrella header.  Reproduction of "SVE-enabling Lattice QCD
// Codes" (Meyer et al., IEEE CLUSTER 2018); see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the experiment index.
//
// Layers (bottom up):
//   sve/       software SVE ISA + ACLE intrinsics (ArmIE substitute)
//   simd/      Grid-style abstraction: vec<T>, acle<T>, functor backends
//   tensor/    nested colour/spin tensors
//   lattice/   cartesian grids, virtual-node layout, cshift
//   comms/     simulated communicator, fp16 halo compression
//   qcd/       gamma algebra, SU(3), Wilson Dirac operator
//   solver/    WilsonSolver facade: CG / BiCGSTAB / mixed precision
//   core/      port registry (Table I), verification harness (Sec. V-D)
#pragma once

#include "comms/halo.h"           // IWYU pragma: export
#include "core/config.h"          // IWYU pragma: export
#include "core/kernels.h"         // IWYU pragma: export
#include "core/ports.h"           // IWYU pragma: export
#include "core/verification.h"    // IWYU pragma: export
#include "lattice/lattice_all.h"  // IWYU pragma: export
#include "qcd/qcd.h"              // IWYU pragma: export
#include "simd/simd.h"            // IWYU pragma: export
#include "solver/solver.h"        // IWYU pragma: export
#include "support/random.h"       // IWYU pragma: export
#include "support/timer.h"        // IWYU pragma: export
#include "sve/sve.h"              // IWYU pragma: export
