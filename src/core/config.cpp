#include "core/config.h"

#include <cstdio>

#include "sve/sve_config.h"

namespace svelat::core {

std::string runtime_summary() {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "svelat %s | simulated SVE vector length: %u bit (%u byte), "
                "f64 lanes: %u, f32 lanes: %u",
                kVersion, sve::vector_bits(), sve::vector_bytes(),
                sve::lanes<double>(), sve::lanes<float>());
  return buf;
}

}  // namespace svelat::core
