// Library version and runtime configuration summary.
#pragma once

#include <string>

namespace svelat::core {

inline constexpr const char* kVersion = "1.0.0";

/// Human-readable summary of the build and current simulator state.
std::string runtime_summary();

}  // namespace svelat::core
