// The four code examples of paper Sec. IV, as library functions.
//
// Each variant computes z[i] = x[i] * y[i]:
//   mult_real_sve        Sec. IV-A: real arrays, VLA loop (what armclang
//                        auto-vectorization produces for plain doubles).
//   mult_cplx_autovec    Sec. IV-B: complex arrays; mirrors armclang's
//                        auto-vectorized strategy -- LD2 structure loads,
//                        real fmul/fmla/fnmls, ST2 structure store.  The
//                        LLVM 5 backend could not emit FCMLA, so this is
//                        the instruction stream std::complex loops got.
//   mult_cplx_acle       Sec. IV-C: ACLE with FCMLA in a VLA loop over
//                        interleaved (re, im) doubles.
//   mult_cplx_acle_fixed Sec. IV-D: ACLE with FCMLA, no loop -- processes
//                        exactly one hardware vector, mimicking fixed-size
//                        SIMD programming.  Correct only when the data
//                        fits one vector ("matching SVE hardware").
//
// mult_cplx_scalar is the plain scalar reference used for verification.
#pragma once

#include <complex>
#include <cstddef>

namespace svelat::kernels {

using cplx = std::complex<double>;

/// Scalar reference: z[i] = x[i] * y[i] for complex arrays.
void mult_cplx_scalar(std::size_t n, const cplx* x, const cplx* y, cplx* z);

/// Sec. IV-A: pairwise real multiply via VLA predicated loop.
void mult_real_sve(std::size_t n, const double* x, const double* y, double* z);

/// Sec. IV-B: complex multiply via structure load/store and real arithmetic
/// (armclang auto-vectorization strategy; no FCMLA).
void mult_cplx_autovec(std::size_t n, const cplx* x, const cplx* y, cplx* z);

/// Sec. IV-C: complex multiply via ACLE FCMLA, VLA loop.  Arrays are
/// interleaved (re, im) doubles of 2n elements, equivalent to cplx[n].
void mult_cplx_acle(std::size_t n, const double* x, const double* y, double* z);

/// Sec. IV-D: complex multiply via ACLE FCMLA on exactly one hardware
/// vector (svcntd()/2 complex numbers); no loop, PTRUE predication.
/// The caller must supply arrays holding at least one full vector.
void mult_cplx_acle_fixed(const double* x, const double* y, double* z);

/// Number of complex numbers one hardware vector holds (f64 lanes / 2).
std::size_t cplx_per_vector();

}  // namespace svelat::kernels
