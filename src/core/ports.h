// Port registry: the Table I analogue.
//
// Paper Table I lists the SIMD architectures Grid supported at the time of
// writing; the contribution of the paper adds SVE.  This registry reports
// both: the upstream table (as documentation of the reproduction target)
// and the ports this library actually implements and tests.
#pragma once

#include <string>
#include <vector>

namespace svelat::core {

struct PortInfo {
  std::string simd_family;    ///< e.g. "Intel AVX/AVX2", "ARM SVE (FCMLA)"
  std::string vector_length;  ///< e.g. "256 bit", "128/256/512 bit"
  bool implemented_here;      ///< true if this library builds and tests it
  std::string notes;
};

/// The upstream-Grid rows of paper Table I.
std::vector<PortInfo> grid_table1_ports();

/// The ports implemented by this reproduction (generic + SVE backends).
std::vector<PortInfo> svelat_ports();

/// Formatted table (both sections), ready to print.
std::string ports_table();

}  // namespace svelat::core
