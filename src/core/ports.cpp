#include "core/ports.h"

#include <cstdio>

namespace svelat::core {

std::vector<PortInfo> grid_table1_ports() {
  return {
      {"Intel SSE4", "128 bit", false, "upstream Grid"},
      {"Intel AVX/AVX2", "256 bit", false, "upstream Grid"},
      {"Intel ICMI, AVX-512", "512 bit", false, "upstream Grid; inline assembly Dslash"},
      {"IBM QPX", "256 bit", false, "upstream Grid"},
      {"ARM NEONv8", "128 bit", false, "upstream Grid"},
      {"generic C/C++", "architecture independent, user-defined array size", false,
       "upstream Grid"},
  };
}

std::vector<PortInfo> svelat_ports() {
  return {
      {"generic C/C++", "128/256/512 bit (user-defined array size)", true,
       "plain loops over vec<T>; auto-vectorization baseline"},
      {"ARM SVE, FCMLA backend", "128/256/512 bit", true,
       "ACLE complex arithmetic (svcmla/svcadd), paper Sec. V-C"},
      {"ARM SVE, real-arithmetic backend", "128/256/512 bit", true,
       "alternative of paper Sec. V-E: trn/tbl permutes + fmla chains"},
      {"ARM SVE simulator ISA", "128..2048 bit (VLA)", true,
       "full vector-length range at the intrinsics level"},
  };
}

std::string ports_table() {
  std::string out;
  char line[160];
  auto emit = [&](const std::vector<PortInfo>& ports) {
    for (const auto& p : ports) {
      std::snprintf(line, sizeof(line), "  %-34s %-44s %s\n", p.simd_family.c_str(),
                    p.vector_length.c_str(), p.notes.c_str());
      out += line;
    }
  };
  out += "Architectures supported by Grid at the time of the paper (Table I):\n";
  emit(grid_table1_ports());
  out += "\nPorts implemented and tested by this reproduction:\n";
  emit(svelat_ports());
  return out;
}

}  // namespace svelat::core
