#include "core/verification.h"

#include <cmath>
#include <complex>
#include <functional>

#include "comms/halo.h"
#include "qcd/plaquette.h"
#include "qcd/qcd.h"
#include "solver/cg.h"
#include "sve/sve.h"

namespace svelat::core {

namespace {

using C = std::complex<double>;

/// One check: name + body returning (pass, detail).
struct Check {
  const char* name;
  std::function<std::pair<bool, double>()> body;
};

template <class S>
class Battery {
 public:
  Battery()
      : grid_({4, 4, 4, 4}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge_(&grid_),
        psi_(&grid_) {
    qcd::random_gauge(SiteRNG(901), gauge_);
    gaussian_fill(SiteRNG(902), psi_);
  }

  std::vector<CheckResult> run() {
    std::vector<CheckResult> out;
    for (const Check& c : checks()) {
      CheckResult r;
      r.name = c.name;
      const auto [pass, detail] = c.body();
      r.pass = pass;
      r.detail = detail;
      out.push_back(std::move(r));
    }
    return out;
  }

 private:
  using Fermion = qcd::LatticeFermion<S>;

  static S make_simd(int tag) {
    S s = S::zero();
    for (unsigned i = 0; i < S::Nsimd(); ++i)
      s.set_lane(i, C(0.25 * ((tag * 37 + static_cast<int>(i) * 11) % 19) - 2.0,
                      0.125 * ((tag * 53 + static_cast<int>(i) * 29) % 17) - 1.0));
    return s;
  }

  static std::pair<bool, double> bounded(double err, double tol) {
    return {err <= tol && std::isfinite(err), err};
  }

  static double cdiff(const S& a, const S& b) {
    double d = 0;
    for (unsigned i = 0; i < S::Nsimd(); ++i)
      d = std::max(d, std::abs(a.lane(i) - b.lane(i)));
    return d;
  }

  std::vector<Check> checks() {
    std::vector<Check> cs;

    // --- SIMD functor checks (1-10) ---------------------------------------
    cs.push_back({"simd_splat_lanes", [] {
                    const S s(C(1.5, -2.0));
                    double err = 0;
                    for (unsigned i = 0; i < S::Nsimd(); ++i)
                      err = std::max(err, std::abs(s.lane(i) - C(1.5, -2.0)));
                    return bounded(err, 0.0);
                  }});
    cs.push_back({"simd_add_sub", [] {
                    const S a = make_simd(1), b = make_simd(2);
                    return bounded(cdiff((a + b) - b, a), 0.0);
                  }});
    cs.push_back({"simd_mult_complex", [] {
                    const S a = make_simd(3), b = make_simd(4);
                    const S p = a * b;
                    double err = 0;
                    for (unsigned i = 0; i < S::Nsimd(); ++i)
                      err = std::max(err, std::abs(p.lane(i) - a.lane(i) * b.lane(i)));
                    return bounded(err, 1e-13);
                  }});
    cs.push_back({"simd_mac_complex", [] {
                    S acc = make_simd(5);
                    const S x = make_simd(6), y = make_simd(7);
                    const S before = acc;
                    acc.mac(x, y);
                    double err = 0;
                    for (unsigned i = 0; i < S::Nsimd(); ++i)
                      err = std::max(
                          err, std::abs(acc.lane(i) -
                                        (before.lane(i) + x.lane(i) * y.lane(i))));
                    return bounded(err, 1e-13);
                  }});
    cs.push_back({"simd_conj_mult", [] {
                    const S a = make_simd(8), b = make_simd(9);
                    const S p = mult_conj(a, b);
                    double err = 0;
                    for (unsigned i = 0; i < S::Nsimd(); ++i)
                      err = std::max(
                          err, std::abs(p.lane(i) - std::conj(a.lane(i)) * b.lane(i)));
                    return bounded(err, 1e-13);
                  }});
    cs.push_back({"simd_times_i", [] {
                    const S a = make_simd(10);
                    return bounded(cdiff(timesI(timesI(a)), -a), 0.0);
                  }});
    cs.push_back({"simd_conjugate_involution", [] {
                    const S a = make_simd(11);
                    return bounded(cdiff(conjugate(conjugate(a)), a), 0.0);
                  }});
    cs.push_back({"simd_permute_involution", [] {
                    const S a = make_simd(12);
                    double err = 0;
                    for (unsigned d = 1; d < S::Nsimd(); d *= 2)
                      err = std::max(
                          err, cdiff(permute_blocks(permute_blocks(a, d), d), a));
                    return bounded(err, 0.0);
                  }});
    cs.push_back({"simd_reduce", [] {
                    const S a = make_simd(13);
                    C expect{};
                    for (unsigned i = 0; i < S::Nsimd(); ++i) expect += a.lane(i);
                    return bounded(std::abs(reduce(a) - expect), 1e-12);
                  }});
    cs.push_back({"simd_distributivity", [] {
                    const S a = make_simd(14), b = make_simd(15), c = make_simd(16);
                    return bounded(cdiff(a * (b + c), a * b + a * c), 1e-12);
                  }});

    // --- tensor checks (11-15) ----------------------------------------------
    using Mat = qcd::ColourMatrix<S>;
    using Vec = qcd::ColourVector<S>;
    auto make_mat = [](int tag) {
      Mat m = tensor::Zero<Mat>();
      for (int i = 0; i < qcd::Nc; ++i)
        for (int j = 0; j < qcd::Nc; ++j) m(i, j) = make_simd(tag + 3 * i + j);
      return m;
    };
    auto make_vec = [](int tag) {
      Vec v = tensor::Zero<Vec>();
      for (int i = 0; i < qcd::Nc; ++i) v(i) = make_simd(tag + i);
      return v;
    };
    auto mat_err = [](const Mat& a, const Mat& b) {
      double err = 0;
      for (int i = 0; i < qcd::Nc; ++i)
        for (int j = 0; j < qcd::Nc; ++j)
          for (unsigned l = 0; l < S::Nsimd(); ++l)
            err = std::max(err, std::abs(a(i, j).lane(l) - b(i, j).lane(l)));
      return err;
    };
    cs.push_back({"tensor_matvec", [make_mat, make_vec] {
                    const Mat m = make_mat(20);
                    const Vec v = make_vec(30);
                    const Vec r = m * v;
                    double err = 0;
                    for (unsigned l = 0; l < S::Nsimd(); ++l)
                      for (int i = 0; i < qcd::Nc; ++i) {
                        C expect{};
                        for (int j = 0; j < qcd::Nc; ++j)
                          expect += m(i, j).lane(l) * v(j).lane(l);
                        err = std::max(err, std::abs(r(i).lane(l) - expect));
                      }
                    return bounded(err, 1e-12);
                  }});
    cs.push_back({"tensor_matmul_assoc", [make_mat, mat_err] {
                    const Mat a = make_mat(40), b = make_mat(41), c = make_mat(42);
                    return bounded(mat_err((a * b) * c, a * (b * c)), 1e-10);
                  }});
    cs.push_back({"tensor_adj_product", [make_mat, mat_err] {
                    const Mat a = make_mat(43), b = make_mat(44);
                    return bounded(
                        mat_err(tensor::adj(a * b), tensor::adj(b) * tensor::adj(a)),
                        1e-11);
                  }});
    cs.push_back({"tensor_trace_cyclic", [make_mat] {
                    const Mat a = make_mat(45), b = make_mat(46);
                    const C lhs = reduce(tensor::trace(a * b));
                    const C rhs = reduce(tensor::trace(b * a));
                    return bounded(std::abs(lhs - rhs), 1e-10);
                  }});
    cs.push_back({"tensor_inner_positive", [make_vec] {
                    const Vec v = make_vec(47);
                    const C ip = reduce(tensor::innerProduct(v, v));
                    const bool ok = ip.real() > 0 && std::abs(ip.imag()) < 1e-12;
                    return std::make_pair(ok, ip.real());
                  }});

    // --- lattice checks (16-22) ---------------------------------------------
    cs.push_back({"lattice_coord_bijection", [this] {
                    double bad = 0;
                    for (std::int64_t o = 0; o < grid_.osites(); ++o)
                      for (unsigned l = 0; l < grid_.isites(); ++l) {
                        const auto x = grid_.global_coor(o, l);
                        if (grid_.outer_index(x) != o || grid_.inner_index(x) != l) ++bad;
                      }
                    return bounded(bad, 0.0);
                  }});
    cs.push_back({"lattice_peek_poke", [this] {
                    Fermion f(&grid_);
                    f.set_zero();
                    using sobj = typename Fermion::scalar_object;
                    sobj s = tensor::Zero<sobj>();
                    s(2)(1) = C(3.5, -1.25);
                    f.poke({1, 2, 3, 0}, s);
                    const auto got = f.peek({1, 2, 3, 0});
                    return bounded(std::abs(got(2)(1) - C(3.5, -1.25)), 0.0);
                  }});
    cs.push_back({"lattice_fill_reproducible", [this] {
                    Fermion a(&grid_), b(&grid_);
                    gaussian_fill(SiteRNG(903), a);
                    gaussian_fill(SiteRNG(903), b);
                    return bounded(norm2(a - b), 0.0);
                  }});
    cs.push_back({"cshift_matches_naive", [this] {
                    double err = 0;
                    for (int mu = 0; mu < lattice::Nd; ++mu) {
                      const Fermion s = lattice::Cshift(psi_, mu, +1);
                      for (int t = 0; t < 4; ++t) {
                        const lattice::Coordinate x{t, (t + 1) % 4, 0, 3};
                        const auto got = s.peek(x);
                        const auto expect =
                            psi_.peek(lattice::displace(x, mu, +1, grid_.fdimensions()));
                        for (int sp = 0; sp < qcd::Ns; ++sp)
                          for (int c = 0; c < qcd::Nc; ++c)
                            err = std::max(err, std::abs(got(sp)(c) - expect(sp)(c)));
                      }
                    }
                    return bounded(err, 0.0);
                  }});
    cs.push_back({"cshift_roundtrip", [this] {
                    double err = 0;
                    for (int mu = 0; mu < lattice::Nd; ++mu)
                      err = std::max(
                          err,
                          norm2(lattice::Cshift(lattice::Cshift(psi_, mu, +1), mu, -1) -
                                psi_));
                    return bounded(err, 0.0);
                  }});
    cs.push_back({"cshift_norm_invariant", [this] {
                    const double n = norm2(psi_);
                    double err = 0;
                    for (int mu = 0; mu < lattice::Nd; ++mu)
                      err = std::max(err,
                                     std::abs(norm2(lattice::Cshift(psi_, mu, +1)) - n));
                    return bounded(err / n, 1e-14);
                  }});
    cs.push_back({"cshift_orbit", [this] {
                    Fermion s = psi_;
                    for (int k = 0; k < grid_.fdimensions()[1]; ++k)
                      s = lattice::Cshift(s, 1, +1);
                    return bounded(norm2(s - psi_), 0.0);
                  }});

    // --- gamma checks (23-26) ------------------------------------------------
    cs.push_back({"gamma_anticommute", [] {
                    double err = 0;
                    for (int mu = 0; mu < 4; ++mu)
                      for (int nu = 0; nu < 4; ++nu) {
                        const auto anti = qcd::gamma_matrix(mu) * qcd::gamma_matrix(nu) +
                                          qcd::gamma_matrix(nu) * qcd::gamma_matrix(mu);
                        for (int i = 0; i < qcd::Ns; ++i)
                          for (int j = 0; j < qcd::Ns; ++j) {
                            const C expect = (mu == nu && i == j) ? C(2, 0) : C(0, 0);
                            err = std::max(err, std::abs(anti(i, j) - expect));
                          }
                      }
                    return bounded(err, 1e-14);
                  }});
    cs.push_back({"gamma_projector_idempotent", [] {
                    double err = 0;
                    for (int mu = 0; mu < 4; ++mu)
                      for (int sign : {+1, -1}) {
                        const auto p = qcd::one_plus_gamma(mu, sign);
                        const auto pp = p * p;
                        for (int i = 0; i < qcd::Ns; ++i)
                          for (int j = 0; j < qcd::Ns; ++j)
                            err = std::max(err, std::abs(pp(i, j) - C(2, 0) * p(i, j)));
                      }
                    return bounded(err, 1e-14);
                  }});
    cs.push_back({"gamma_project_reconstruct", [] {
                    using SC = qcd::SpinColourVector<C>;
                    SC p;
                    for (int s = 0; s < qcd::Ns; ++s)
                      for (int c = 0; c < qcd::Nc; ++c)
                        p(s)(c) = C(0.3 * (s + 1) - c, 0.2 * c - s);
                    double err = 0;
                    for (int mu = 0; mu < 4; ++mu)
                      for (int sign : {+1, -1}) {
                        const auto r = qcd::spin_reconstruct(
                            mu, sign, qcd::spin_project(mu, sign, p));
                        const auto m = qcd::one_plus_gamma(mu, sign);
                        for (int si = 0; si < qcd::Ns; ++si)
                          for (int c = 0; c < qcd::Nc; ++c) {
                            C expect{};
                            for (int sj = 0; sj < qcd::Ns; ++sj)
                              expect += m(si, sj) * p(sj)(c);
                            err = std::max(err, std::abs(r(si)(c) - expect));
                          }
                      }
                    return bounded(err, 1e-13);
                  }});
    cs.push_back({"gamma5_squared", [] {
                    const auto g5 = qcd::gamma_matrix(4);
                    const auto sq = g5 * g5;
                    double err = 0;
                    for (int i = 0; i < qcd::Ns; ++i)
                      for (int j = 0; j < qcd::Ns; ++j)
                        err = std::max(
                            err, std::abs(sq(i, j) - ((i == j) ? C(1, 0) : C(0, 0))));
                    return bounded(err, 1e-14);
                  }});

    // --- SU(3) and plaquette checks (27-32) -----------------------------------
    cs.push_back({"su3_unitarity", [] {
                    SiteRNG rng(904);
                    double err = 0;
                    for (std::uint64_t k = 0; k < 8; ++k)
                      err = std::max(err, qcd::unitarity_error(qcd::random_su3(rng, k)));
                    return bounded(err, 1e-12);
                  }});
    cs.push_back({"su3_det_one", [] {
                    SiteRNG rng(905);
                    double err = 0;
                    for (std::uint64_t k = 0; k < 8; ++k)
                      err = std::max(
                          err,
                          std::abs(qcd::determinant(qcd::random_su3(rng, k)) - C(1, 0)));
                    return bounded(err, 1e-12);
                  }});
    cs.push_back({"su3_group_closure", [] {
                    SiteRNG rng(906);
                    const auto a = qcd::random_su3(rng, 1);
                    const auto b = qcd::random_su3(rng, 2);
                    return bounded(qcd::unitarity_error(a * b), 1e-12);
                  }});
    cs.push_back({"plaquette_unit_gauge", [this] {
                    qcd::GaugeField<S> unit(&grid_);
                    qcd::unit_gauge(unit);
                    return bounded(std::abs(qcd::average_plaquette(unit) - 1.0), 1e-12);
                  }});
    cs.push_back({"plaquette_gauge_invariant", [this] {
                    qcd::GaugeField<S> g = gauge_;
                    const double before = qcd::average_plaquette(g);
                    lattice::Lattice<qcd::ColourMatrix<S>> v(&grid_);
                    qcd::random_colour_transform(SiteRNG(907), v);
                    qcd::gauge_transform(g, v);
                    return bounded(std::abs(qcd::average_plaquette(g) - before), 1e-12);
                  }});
    cs.push_back({"plaquette_range", [this] {
                    const double p = qcd::average_plaquette(gauge_);
                    return std::make_pair(p > -1.0 && p < 1.0, p);
                  }});

    // --- Wilson operator checks (33-37) -----------------------------------------
    cs.push_back({"dhop_vs_reference", [this] {
                    const qcd::WilsonDirac<S> dirac(gauge_, 0.1);
                    Fermion out(&grid_), ref(&grid_);
                    dirac.dhop(psi_, out);
                    qcd::dhop_reference(gauge_, psi_, ref);
                    return bounded(norm2(out - ref) / norm2(ref), 1e-24);
                  }});
    cs.push_back({"dhop_free_field", [this] {
                    qcd::GaugeField<S> unit(&grid_);
                    qcd::unit_gauge(unit);
                    Fermion cpsi(&grid_), out(&grid_);
                    using sobj = typename Fermion::scalar_object;
                    sobj s = tensor::Zero<sobj>();
                    for (int sp = 0; sp < qcd::Ns; ++sp)
                      for (int c = 0; c < qcd::Nc; ++c) s(sp)(c) = C(1.0 + sp, 0.5 * c);
                    for (std::int64_t o = 0; o < grid_.osites(); ++o)
                      for (unsigned l = 0; l < grid_.isites(); ++l)
                        cpsi.poke(grid_.global_coor(o, l), s);
                    const qcd::WilsonDirac<S> dirac(unit, 0.0);
                    dirac.dhop(cpsi, out);
                    // Dh(const) = 8 * const.
                    Fermion expect = 8.0 * cpsi;
                    return bounded(norm2(out - expect) / norm2(expect), 1e-24);
                  }});
    cs.push_back({"dhop_gamma5_hermiticity", [this] {
                    const qcd::WilsonDirac<S> dirac(gauge_, 0.05);
                    Fermion a(&grid_), b(&grid_), ma(&grid_), tmp(&grid_), g5mg5b(&grid_);
                    gaussian_fill(SiteRNG(908), a);
                    gaussian_fill(SiteRNG(909), b);
                    dirac.m(a, ma);
                    qcd::WilsonDirac<S>::apply_gamma5(b, tmp);
                    Fermion mtmp(&grid_);
                    dirac.m(tmp, mtmp);
                    qcd::WilsonDirac<S>::apply_gamma5(mtmp, g5mg5b);
                    const C lhs = innerProduct(a, g5mg5b);
                    const C rhs = std::conj(innerProduct(b, ma));
                    return bounded(std::abs(lhs - rhs) / std::abs(rhs), 1e-10);
                  }});
    cs.push_back({"dhop_translation_covariance", [this] {
                    const int mu = 1;
                    qcd::GaugeField<S> gs(&grid_);
                    for (int nu = 0; nu < lattice::Nd; ++nu)
                      gs.U[nu] = lattice::Cshift(gauge_.U[nu], mu, +1);
                    const Fermion psis = lattice::Cshift(psi_, mu, +1);
                    Fermion out(&grid_), outs(&grid_);
                    const qcd::WilsonDirac<S> d0(gauge_, 0.0), d1(gs, 0.0);
                    d0.dhop(psi_, out);
                    d1.dhop(psis, outs);
                    const Fermion expect = lattice::Cshift(out, mu, +1);
                    return bounded(norm2(outs - expect) / norm2(expect), 1e-24);
                  }});
    cs.push_back({"mdagm_positive", [this] {
                    const qcd::WilsonDirac<S> dirac(gauge_, 0.1);
                    Fermion out(&grid_);
                    dirac.mdag_m(psi_, out);
                    const C ip = innerProduct(psi_, out);
                    const bool ok =
                        ip.real() > 0 && std::abs(ip.imag()) < 1e-8 * ip.real();
                    return std::make_pair(ok, ip.real());
                  }});

    // --- solver checks (38-39) -----------------------------------------------
    cs.push_back({"cg_converges", [this] {
                    const qcd::WilsonDirac<S> dirac(gauge_, 0.3);
                    Fermion x(&grid_);
                    x.set_zero();
                    const auto stats = solver::solve_wilson(dirac, psi_, x, 1e-7, 400);
                    return std::make_pair(stats.converged,
                                          static_cast<double>(stats.iterations));
                  }});
    cs.push_back({"cg_solution_verifies", [this] {
                    const qcd::WilsonDirac<S> dirac(gauge_, 0.3);
                    Fermion x(&grid_);
                    x.set_zero();
                    const auto stats = solver::solve_wilson(dirac, psi_, x, 1e-8, 500);
                    return bounded(stats.true_residual, 1e-7);
                  }});

    // --- comms check (40) -------------------------------------------------------
    cs.push_back({"halo_f16_compression_bounds", [this] {
                    comms::SimCommunicator comm(2);
                    std::size_t wire = 0;
                    const auto packed = comms::pack_face(psi_, 3, 0);
                    const auto rec = comms::exchange_face(comm, psi_, 3, 0,
                                                          comms::Compression::kF16, 0, 1,
                                                          &wire);
                    if (wire * 4 != packed.size() * sizeof(double))
                      return std::make_pair(false, 0.0);
                    double max_rel = 0;
                    for (std::size_t i = 0; i < packed.size(); ++i)
                      if (packed[i] != 0.0)
                        max_rel = std::max(max_rel, std::abs(rec[i] - packed[i]) /
                                                        std::abs(packed[i]));
                    return bounded(max_rel, 0x1.0p-10);
                  }});

    return cs;
  }

  lattice::GridCartesian grid_;
  qcd::GaugeField<S> gauge_;
  Fermion psi_;
};

template <class S>
std::vector<CheckResult> run_battery() {
  Battery<S> battery;
  return battery.run();
}

}  // namespace

VerificationReport run_verification(unsigned vl_bits, simd::Backend backend) {
  SVELAT_ASSERT_MSG(vl_bits == 128 || vl_bits == 256 || vl_bits == 512,
                    "framework ports exist for 128/256/512 bit (paper Sec. V-B)");
  sve::VLGuard guard(vl_bits);
  VerificationReport report;
  report.vl_bits = vl_bits;
  report.backend = backend;

  using simd::Backend;
  switch (backend) {
    case Backend::kGeneric:
      if (vl_bits == 128)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>();
      else if (vl_bits == 256)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>();
      else
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>();
      break;
    case Backend::kSveFcmla:
      if (vl_bits == 128)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>();
      else if (vl_bits == 256)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>();
      else
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>();
      break;
    case Backend::kSveReal:
      if (vl_bits == 128)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>();
      else if (vl_bits == 256)
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>();
      else
        report.results =
            run_battery<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>();
      break;
  }
  return report;
}

std::vector<std::string> check_names() {
  // Run the cheapest instantiation once and collect names.
  static const std::vector<std::string> names = [] {
    sve::VLGuard guard(128);
    const auto results =
        run_battery<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>();
    std::vector<std::string> out;
    out.reserve(results.size());
    for (const auto& r : results) out.push_back(r.name);
    return out;
  }();
  return names;
}

std::string format_report(const VerificationReport& report, bool verbose) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "VL %4u bit | backend %-10s | %2u/%2u checks pass\n",
                report.vl_bits, simd::backend_name(report.backend), report.passed(),
                report.total());
  out += line;
  if (verbose) {
    for (const auto& r : report.results) {
      std::snprintf(line, sizeof(line), "    %-32s %s   (%.3g)\n", r.name.c_str(),
                    r.pass ? "PASS" : "FAIL", r.detail);
      out += line;
    }
  }
  return out;
}

}  // namespace svelat::core
