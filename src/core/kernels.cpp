#include "core/kernels.h"

#include "sve/sve.h"

namespace svelat::kernels {

void mult_cplx_scalar(std::size_t n, const cplx* x, const cplx* y, cplx* z) {
  for (std::size_t i = 0; i != n; ++i) z[i] = x[i] * y[i];
}

void mult_real_sve(std::size_t n, const double* x, const double* y, double* z) {
  using namespace sve;
  // The compiler-generated loop of the Sec. IV-A listing: whilelo-driven
  // predication, unpredicated fmul, predicated load/store, incd stepping.
  for (std::size_t i = 0; i < n; i += svcntd()) {
    const svbool_t pg = svwhilelt_b64(i, n);
    const svfloat64_t vx = svld1(pg, &x[i]);
    const svfloat64_t vy = svld1(pg, &y[i]);
    const svfloat64_t vz = svmul_x(pg, vx, vy);
    svst1(pg, &z[i], vz);
  }
}

void mult_cplx_autovec(std::size_t n, const cplx* x, const cplx* y, cplx* z) {
  using namespace sve;
  // Mirrors the armclang 18.3 output in the Sec. IV-B listing: ld2d
  // de-interleaves (re, im); four real multiply/fma instructions compute
  // the product; st2d re-interleaves.  (fnmls computes -acc + a*b, giving
  // re = xr*yr - xi*yi as -(xi*yi) + ... with the operand order below.)
  const double* xd = reinterpret_cast<const double*>(x);
  const double* yd = reinterpret_cast<const double*>(y);
  double* zd = reinterpret_cast<double*>(z);
  const svbool_t all = svptrue_b64();
  for (std::size_t i = 0; i < n; i += svcntd()) {
    const svbool_t pg = svwhilelt_b64(i, n);
    const svfloat64x2_t vx = svld2(pg, &xd[2 * i]);
    const svfloat64x2_t vy = svld2(pg, &yd[2 * i]);
    const svfloat64_t xr = vx.reg[0], xi = vx.reg[1];
    const svfloat64_t yr = vy.reg[0], yi = vy.reg[1];
    // Imaginary part: xr*yi + xi*yr  (fmul + fmla).
    const svfloat64_t t_im = svmul_x(all, xr, yi);
    const svfloat64_t im = svmla_x(all, t_im, xi, yr);
    // Real part: xr*yr - xi*yi  as fnmls(t, xi... ): -(xi*yi) + xr*yr.
    const svfloat64_t t_re = svmul_x(all, xi, yi);
    const svfloat64_t re = svnmls_x(all, t_re, xr, yr);
    svfloat64x2_t vz;
    vz.reg[0] = re;
    vz.reg[1] = im;
    svst2(pg, &zd[2 * i], vz);
  }
}

void mult_cplx_acle(std::size_t n, const double* x, const double* y, double* z) {
  using namespace sve;
  // Verbatim port of the Sec. IV-C listing.
  const svfloat64_t szero = svdup_f64(0.);
  for (std::size_t i = 0; i < 2 * n; i += svcntd()) {
    const svbool_t pg = svwhilelt_b64(i, 2 * n);
    const svfloat64_t sx = svld1(pg, &x[i]);
    const svfloat64_t sy = svld1(pg, &y[i]);
    svfloat64_t sz = svcmla_x(pg, szero, sx, sy, 90);
    sz = svcmla_x(pg, sz, sx, sy, 0);
    svst1(pg, &z[i], sz);
  }
}

void mult_cplx_acle_fixed(const double* x, const double* y, double* z) {
  using namespace sve;
  // Verbatim port of the Sec. IV-D listing: full-vector PTRUE, no loop.
  const svfloat64_t szero = svdup_f64(0.);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t sx = svld1(pg, x);
  const svfloat64_t sy = svld1(pg, y);
  svfloat64_t sz = svcmla_x(pg, szero, sx, sy, 90);
  sz = svcmla_x(pg, sz, sx, sy, 0);
  svst1(pg, z, sz);
}

std::size_t cplx_per_vector() { return sve::lanes<double>() / 2; }

}  // namespace svelat::kernels
