// Measurement-service scheduler: a job queue fanned over socket ranks.
//
// Rank 0 is the SUPERVISOR.  It owns the persistent JobQueue
// (service/queue.h) and the append-only results file, reads the gauge
// configuration file once and broadcasts its SVGF bytes to every worker,
// then dispatches jobs and collects results until the queue is drained.
// Ranks 1..R-1 are WORKERS: each decodes the gauge into its own grid,
// then loops { receive job -> solve the propagator column -> time-slice
// correlator + wall-clock metrics -> send JobResult } until it receives
// the empty shutdown payload.
//
// Wire protocol (tags continue the distributed.h ladder, which ends at
// kGatherTag = 901):
//
//   kGaugeTag  700   supervisor -> worker   SVGF file bytes, sent once
//   kJobTag    701   supervisor -> worker   72-byte job record; an EMPTY
//                                           payload means "shut down"
//   kResultTag 702   worker -> supervisor   encoded JobResult record
//
// Fault tolerance.  The supervisor polls its in-flight workers with
// recv_status: kTimeout means "still solving" (the poll moves on),
// while kPeerExited / kTornFrame / kDesync / kIoError is a worker death
// verdict -- the in-flight job goes back to kPending (attempts += 1) and
// the worker is dropped.  Transient injected faults (delays, spurious
// EOFs) are absorbed by the Communicator retry ladder below this layer.
// If jobs remain but every worker is gone, the supervisor exits nonzero
// and the outer driver relaunches: JobQueue::requeue_claimed() plus
// recover_results() make the restart exactly-once (a result whose job
// never reached kDone is pruned and the job re-runs).
//
// Exactly-once commit order: a received result is APPENDED (fsync'd)
// first, then its queue entry flips to kDone.  A crash between the two
// leaves an orphaned result record that recovery prunes -- the reverse
// order could mark a job done whose result was lost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comms/communicator.h"
#include "io/gauge_io.h"
#include "qcd/propagator.h"
#include "service/queue.h"
#include "solver/solver.h"
#include "support/metrics.h"

namespace svelat::service {

inline constexpr int kSupervisorRank = 0;
inline constexpr int kGaugeTag = 700;
inline constexpr int kJobTag = 701;
inline constexpr int kResultTag = 702;

inline constexpr std::uint32_t kResultMagic = 0x524A5653u;  // "SVJR" on disk
inline constexpr std::uint32_t kResultVersion = 1;

/// What a worker sends back per job: convergence outcome, the time-slice
/// correlator of the solved column, and the worker-side wall-clock rates
/// (support/metrics.h) for the two hot regions.  The rates are
/// machine-dependent observability -- nothing gates on them.
struct JobResult {
  std::uint64_t job_id = 0;
  std::uint32_t config_id = 0;
  bool converged = false;
  std::uint32_t iterations = 0;
  double wall_seconds = 0.0;         ///< the solve() facade wall clock
  double dhop_gb_per_sec = 0.0;      ///< dhop + dhop_eo + dhop_oe combined
  double dhop_gflop_per_sec = 0.0;
  double linalg_gb_per_sec = 0.0;    ///< cg_linalg + bicgstab_linalg combined
  double linalg_gflop_per_sec = 0.0;
  /// C(t) = sum_x |x(x, t)|^2 of the solved column, one entry per slice.
  std::vector<double> correlator;
};

/// Append the framed "SVJR" record for `r` to `out` (layout: magic,
/// version, payload length, payload, CRC-32 over all preceding bytes of
/// the record; spec appendix in docs/FORMAT.md).
void encode_result(std::vector<std::uint8_t>& out, const JobResult& r);
std::vector<std::uint8_t> encode_result(const JobResult& r);

/// Decode one record at `off` (advancing it); throws io::IoError naming
/// the defect class.
JobResult decode_result(const std::vector<std::uint8_t>& in, std::size_t& off);

/// Append one record to the results file with fwrite + fflush + fsync
/// (append-only single-writer file; no rename dance needed).
void append_result(const std::string& path, const JobResult& r);

/// Read and strictly validate a whole results file.
std::vector<JobResult> read_results(const std::string& path);

/// Startup recovery: drop any record whose job is not kDone in `queue`
/// (an orphan from a crash between append and complete) and any torn
/// tail from a crash mid-append, then rewrite the file atomically.
/// Returns the number of records pruned.  A missing file is an empty
/// history, not an error.
std::size_t recover_results(const std::string& path, const JobQueue& queue);

struct SchedulerConfig {
  std::string gauge_path;    ///< SVGF configuration the jobs measure on
  std::string queue_path;    ///< persistent JobQueue file (must exist)
  std::string results_path;  ///< append-only JobResult records
  /// Consecutive poll sweeps with neither a result nor a death verdict
  /// before the supervisor gives up (each sweep already waits out the
  /// transport's own recv timeout per in-flight worker).
  int max_idle_sweeps = 240;
  int verbosity = 1;
};

/// The supervisor loop (call on rank kSupervisorRank).  Returns 0 when
/// the queue drained, nonzero when jobs remain but no worker survives
/// (the outer driver's cue to relaunch).  Scalar-agnostic: the gauge
/// field is only ever touched as SVGF bytes here.
int supervisor_loop(comms::Communicator& comm, const SchedulerConfig& cfg);

namespace detail {

/// C(t) = sum_x |x(x, t)|^2 of one fermion field -- the single-column
/// slice of qcd::pion_correlator, delegated to the shared
/// qcd::timeslice_norm2 kernel (one table build per job; jobs are
/// one-column, so there is nothing to amortize the table over here).
template <class S>
std::vector<double> timeslice_norms(const qcd::LatticeFermion<S>& x) {
  const qcd::TimesliceTable table(x.grid());
  return qcd::timeslice_norm2(table, x);
}

/// Combined GB/s / GFLOP/s of a set of metrics regions (bytes and flops
/// summed over the regions, divided by their summed seconds).
inline void combined_rates(const std::vector<const char*>& regions, double& gb,
                           double& gflop) {
  double bytes = 0.0, flops = 0.0, seconds = 0.0;
  for (const char* name : regions) {
    const metrics::RegionStats s = metrics::get(name);
    bytes += s.bytes;
    flops += s.flops;
    seconds += s.seconds;
  }
  gb = seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
  gflop = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace detail

/// Run one job against a loaded gauge configuration: solve the named
/// propagator column and package correlator + metrics.  The metrics
/// registry is reset first so the reported rates cover exactly this job.
template <class S>
JobResult measure_job(const qcd::GaugeField<S>& gauge, const MeasurementJob& job) {
  metrics::reset();
  solver::WilsonSolver<S> solver(gauge, job.mass, job.solver_params());
  // One column per job, submitted through the batched facade entry: a
  // width-1 batch routes to the sequential path inside solve_batched, so
  // the wire results stay bitwise identical while every measurement
  // driver exercises the same multi-RHS API.
  std::vector<qcd::LatticeFermion<S>> src(1, qcd::LatticeFermion<S>(gauge.grid()));
  std::vector<qcd::LatticeFermion<S>> x(1, qcd::LatticeFermion<S>(gauge.grid()));
  qcd::point_source(src[0], job.source, job.spin, job.colour);
  x[0].set_zero();
  const solver::SolverResult res = solver.solve_batched(src, x)[0];

  JobResult out;
  out.job_id = job.job_id;
  out.config_id = job.config_id;
  out.converged = res.converged;
  out.iterations = static_cast<std::uint32_t>(res.iterations);
  out.wall_seconds = res.wall_seconds;
  detail::combined_rates({"dhop", "dhop_eo", "dhop_oe"}, out.dhop_gb_per_sec,
                         out.dhop_gflop_per_sec);
  detail::combined_rates({"cg_linalg", "bicgstab_linalg"}, out.linalg_gb_per_sec,
                         out.linalg_gflop_per_sec);
  out.correlator = detail::timeslice_norms(x[0]);
  return out;
}

/// The worker loop (call on ranks != kSupervisorRank).  Blocks for the
/// gauge broadcast, then serves jobs until the empty shutdown payload.
/// kTimeout while waiting is "the supervisor is busy" and the wait
/// continues; any fatal transport status aborts the worker via the
/// throwing comm layer (run_ranks turns that into a per-rank verdict).
template <class S>
int worker_loop(int rank, comms::Communicator& comm) {
  // recv_status already retries transient statuses; looping on kTimeout
  // on top of that makes the wait open-ended (a parked worker may sit
  // idle for many solve-lengths).  A dead supervisor surfaces as
  // kPeerExited, which the throwing recv below converts to CommError.
  const auto patient_recv = [&](int tag) {
    std::vector<std::uint8_t> bytes;
    comms::CommStatus st = comms::CommStatus::kOk;
    do {
      st = comm.recv_status(rank, kSupervisorRank, tag, bytes);
    } while (st == comms::CommStatus::kTimeout);
    if (st != comms::CommStatus::kOk)
      throw comms::CommError(st, "worker " + std::to_string(rank) +
                                     " lost the supervisor (tag " +
                                     std::to_string(tag) + ")");
    return bytes;
  };

  // The gauge arrives as SVGF file bytes: decode into a grid shaped for
  // THIS scalar type (the wire format is SIMD-layout independent).
  const std::vector<std::uint8_t> gauge_bytes = patient_recv(kGaugeTag);
  io::FieldFile file = io::decode_field_file(gauge_bytes);
  lattice::GridCartesian grid(file.header.dims,
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  io::gauge_from_file(file, gauge);

  while (true) {
    const std::vector<std::uint8_t> job_bytes = patient_recv(kJobTag);
    if (job_bytes.empty()) return 0;  // shutdown
    const MeasurementJob job = decode_job(job_bytes);
    const JobResult result = measure_job(gauge, job);
    comm.send(rank, kSupervisorRank, kResultTag, encode_result(result));
  }
}

/// Rank dispatch for run_ranks bodies: supervisor on rank 0, workers
/// elsewhere.  `comm` may be the rank's raw SocketCommunicator or a
/// FaultyCommunicator wrapped around it (the soak/crash tests).
template <class S>
int scheduler_rank_body(int rank, comms::Communicator& comm,
                        const SchedulerConfig& cfg) {
  return rank == kSupervisorRank ? supervisor_loop(comm, cfg)
                                 : worker_loop<S>(rank, comm);
}

}  // namespace svelat::service
