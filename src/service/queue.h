// JobQueue: the persistent FIFO of the measurement service.
//
// A queue file holds every job ever enqueued together with its lifecycle
// state, so a restarted supervisor knows exactly what is pending, what
// was in flight when the previous run died, and what is already done:
//
//   kPending --claim()--> kClaimed --complete()--> kDone
//                 ^            |
//                 +--requeue()-+   (worker died; attempts += 1)
//
// On-disk format "SVJQ" (version 1; spec appendix in docs/FORMAT.md):
//
//   offset  size  field
//        0     4  magic "SVJQ"
//        4     4  version (1)
//        8     4  entry count
//       12     4  header CRC-32 (over bytes [0, 12))
//   then per entry, 88 bytes each:
//        0    72  job record (service/job.h, "SVJB")
//       72     4  state    (0 pending, 1 claimed, 2 done)
//       76     4  owner    (claiming worker rank; int32, -1 when none)
//       80     4  attempts (times the job was claimed)
//       84     4  entry CRC-32 (over the entry's first 84 bytes)
//
// Validation is strict and total, like every io/ format: a corrupted
// entry names its index in a typed IoError and nothing silently loads.
// Every mutation rewrites the whole file through io::write_file_bytes'
// temp + fsync + rename path, so a crash -- including SIGKILL mid-
// enqueue -- leaves either the old queue or the new one, never a torn
// mix (pinned by tests/service/test_job_queue.cpp via the write fault
// hook).  Queue files are small (88 bytes per job), so atomic whole-file
// rewrites are far below the cost of one measurement job.
//
// Misuse of the state machine (claiming a non-pending job, completing a
// job that is not claimed) is a QueueError, distinct from file
// corruption: it means the scheduler's bookkeeping is wrong, not the
// disk.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/crc32.h"
#include "service/job.h"

namespace svelat::service {

inline constexpr std::uint32_t kQueueMagic = 0x514A5653u;  // "SVJQ" on disk
inline constexpr std::uint32_t kQueueVersion = 1;
inline constexpr std::size_t kQueueHeaderBytes = 16;
inline constexpr std::size_t kQueueEntryBytes = kJobRecordBytes + 16;

enum class JobState : std::uint32_t { kPending = 0, kClaimed = 1, kDone = 2 };

constexpr const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kClaimed: return "claimed";
    case JobState::kDone: return "done";
  }
  return "?";
}

/// A state-machine violation (duplicate claim, completing an unclaimed
/// job, unknown job id).  Greppable: "svelat queue: <detail>".
class QueueError : public std::runtime_error {
 public:
  explicit QueueError(const std::string& detail)
      : std::runtime_error("svelat queue: " + detail) {}
};

struct QueueEntry {
  MeasurementJob job;
  JobState state = JobState::kPending;
  std::int32_t owner = -1;     ///< claiming worker rank (-1: unowned)
  std::uint32_t attempts = 0;  ///< times the job has been claimed
};

class JobQueue {
 public:
  /// An empty queue that will persist to `path` (nothing written until
  /// the first save()/enqueue()).
  explicit JobQueue(std::string path) : path_(std::move(path)) {}

  /// Load and fully validate an existing queue file.  Throws io::IoError
  /// naming the corruption class on any defect.
  static JobQueue load(const std::string& path) {
    JobQueue q(path);
    q.decode(io::read_file_bytes(path));
    return q;
  }

  const std::string& path() const { return path_; }
  const std::vector<QueueEntry>& entries() const { return entries_; }

  std::size_t count(JobState s) const {
    std::size_t n = 0;
    for (const QueueEntry& e : entries_) n += e.state == s ? 1 : 0;
    return n;
  }
  std::size_t pending() const { return count(JobState::kPending); }
  std::size_t claimed() const { return count(JobState::kClaimed); }
  std::size_t done() const { return count(JobState::kDone); }
  bool all_done() const { return done() == entries_.size(); }

  /// Append a pending job and persist.  Job ids must be unique.
  void enqueue(const MeasurementJob& job) {
    if (find(job.job_id) != nullptr)
      throw QueueError("job " + std::to_string(job.job_id) + " is already enqueued");
    entries_.push_back(QueueEntry{job, JobState::kPending, -1, 0});
    save();
  }

  /// Claim the oldest pending job for `worker` (FIFO) and persist;
  /// std::nullopt when nothing is pending.
  std::optional<MeasurementJob> claim(int worker) {
    for (QueueEntry& e : entries_) {
      if (e.state != JobState::kPending) continue;
      e.state = JobState::kClaimed;
      e.owner = worker;
      ++e.attempts;
      save();
      return e.job;
    }
    return std::nullopt;
  }

  /// Claim one specific job.  A job that is not pending -- e.g. already
  /// claimed by another worker -- is a QueueError (duplicate-claim
  /// rejection), not a silent reassignment.
  void claim_job(std::uint64_t job_id, int worker) {
    QueueEntry& e = require(job_id);
    if (e.state != JobState::kPending)
      throw QueueError("cannot claim job " + std::to_string(job_id) + ": it is " +
                       to_string(e.state) +
                       (e.owner >= 0 ? " by worker " + std::to_string(e.owner) : ""));
    e.state = JobState::kClaimed;
    e.owner = worker;
    ++e.attempts;
    save();
  }

  /// kClaimed -> kDone.  Completing a job that is not claimed (never
  /// claimed, or already done) is a QueueError: it would mean a result
  /// arrived from a worker that does not own the job.
  void complete(std::uint64_t job_id) {
    QueueEntry& e = require(job_id);
    if (e.state != JobState::kClaimed)
      throw QueueError("cannot complete job " + std::to_string(job_id) + ": it is " +
                       to_string(e.state) + ", not claimed");
    e.state = JobState::kDone;
    e.owner = -1;
    save();
  }

  /// kClaimed -> kPending (the owning worker died mid-job).  The attempt
  /// count persists, so a repeatedly failing job is visible.
  void requeue(std::uint64_t job_id) {
    QueueEntry& e = require(job_id);
    if (e.state != JobState::kClaimed)
      throw QueueError("cannot requeue job " + std::to_string(job_id) + ": it is " +
                       to_string(e.state) + ", not claimed");
    e.state = JobState::kPending;
    e.owner = -1;
    save();
  }

  /// Recovery on (re)start: every claimed job's owner is gone, so all
  /// claims return to pending.  Returns how many were requeued.
  std::size_t requeue_claimed() {
    std::size_t n = 0;
    for (QueueEntry& e : entries_) {
      if (e.state != JobState::kClaimed) continue;
      e.state = JobState::kPending;
      e.owner = -1;
      ++n;
    }
    if (n > 0) save();
    return n;
  }

  const QueueEntry* find(std::uint64_t job_id) const {
    for (const QueueEntry& e : entries_)
      if (e.job.job_id == job_id) return &e;
    return nullptr;
  }

  /// Persist atomically (temp + fsync + rename via io::write_file_bytes).
  void save() const { io::write_file_bytes(path_, encode()); }

  std::vector<std::uint8_t> encode() const {
    std::vector<std::uint8_t> out;
    out.reserve(kQueueHeaderBytes + entries_.size() * kQueueEntryBytes);
    io::put_u32(out, kQueueMagic);
    io::put_u32(out, kQueueVersion);
    io::put_u32(out, static_cast<std::uint32_t>(entries_.size()));
    io::put_u32(out, io::crc32(out.data(), out.size()));
    for (const QueueEntry& e : entries_) {
      const std::size_t start = out.size();
      encode_job(out, e.job);
      io::put_u32(out, static_cast<std::uint32_t>(e.state));
      io::put_u32(out, static_cast<std::uint32_t>(e.owner));
      io::put_u32(out, e.attempts);
      io::put_u32(out, io::crc32(out.data() + start, out.size() - start));
    }
    return out;
  }

  /// Strict full-file validation; replaces this queue's entries.
  void decode(const std::vector<std::uint8_t>& bytes) {
    using io::IoError;
    using io::IoErrorCode;
    if (bytes.size() < kQueueHeaderBytes)
      throw IoError(IoErrorCode::kShortRead,
                    "queue file ends inside the 16-byte header (" +
                        std::to_string(bytes.size()) + " bytes)");
    std::size_t off = 0;
    const auto hcode = IoErrorCode::kShortRead;
    const std::uint32_t magic = io::get_u32(bytes, off, hcode, "queue magic");
    if (magic != kQueueMagic)
      throw IoError(IoErrorCode::kBadMagic, "queue magic mismatch (not \"SVJQ\")");
    const std::uint32_t version = io::get_u32(bytes, off, hcode, "queue version");
    if (version != kQueueVersion)
      throw IoError(IoErrorCode::kBadVersion,
                    "queue version " + std::to_string(version) +
                        " (reader knows version " + std::to_string(kQueueVersion) + ")");
    const std::uint32_t n = io::get_u32(bytes, off, hcode, "queue entry count");
    const std::uint32_t stored_crc = io::get_u32(bytes, off, hcode, "queue header crc");
    if (stored_crc != io::crc32(bytes.data(), 12))
      throw IoError(IoErrorCode::kCorruptHeader, "queue header CRC-32 mismatch");
    if (bytes.size() < kQueueHeaderBytes + n * kQueueEntryBytes)
      throw IoError(IoErrorCode::kTruncated,
                    "queue file ends inside its " + std::to_string(n) + " entries");
    if (bytes.size() > kQueueHeaderBytes + n * kQueueEntryBytes)
      throw IoError(IoErrorCode::kTrailingBytes,
                    "queue file is longer than its " + std::to_string(n) + " entries");

    std::vector<QueueEntry> entries;
    entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::size_t start = off;
      // Entry CRC first: a bit-flip anywhere in the entry reports as THIS
      // entry's corruption, never as a confusing job-record defect.
      std::size_t crc_off = start + kQueueEntryBytes - 4;
      const std::uint32_t entry_crc =
          io::get_u32(bytes, crc_off, IoErrorCode::kTruncated, "queue entry crc");
      if (entry_crc != io::crc32(bytes.data() + start, kQueueEntryBytes - 4))
        throw IoError(IoErrorCode::kCorruptPayload,
                      "queue entry " + std::to_string(i) + " CRC-32 mismatch");
      QueueEntry e;
      e.job = decode_job(bytes, off);
      const auto ecode = IoErrorCode::kTruncated;
      const std::uint32_t state = io::get_u32(bytes, off, ecode, "queue entry state");
      e.owner = static_cast<std::int32_t>(
          io::get_u32(bytes, off, ecode, "queue entry owner"));
      e.attempts = io::get_u32(bytes, off, ecode, "queue entry attempts");
      off = crc_off;
      if (state > static_cast<std::uint32_t>(JobState::kDone))
        throw IoError(IoErrorCode::kCorruptPayload,
                      "queue entry " + std::to_string(i) + " holds state " +
                          std::to_string(state));
      e.state = static_cast<JobState>(state);
      entries.push_back(std::move(e));
    }
    entries_ = std::move(entries);
  }

 private:
  QueueEntry& require(std::uint64_t job_id) {
    for (QueueEntry& e : entries_)
      if (e.job.job_id == job_id) return e;
    throw QueueError("unknown job " + std::to_string(job_id));
  }

  std::string path_;
  std::vector<QueueEntry> entries_;
};

}  // namespace svelat::service
