// MeasurementJob: the unit of work of the measurement service.
//
// A job names one propagator-column solve on one stored gauge
// configuration: a point source (position, spin, colour), a quark mass
// and the solver parameters to run with.  Twelve jobs with the same
// source point and mass make up a full point-to-all propagator -- the
// column is the scheduling granule so a queue of jobs spreads evenly
// over worker ranks.
//
// Jobs are serialized as fixed-size versioned records with the io/
// little-endian helpers; the CRC that protects a record on disk is
// applied by the queue framing (service/queue.h) and the results file
// (service/scheduler.h), not here.  Record layout (version 1, 72 bytes):
//
//   offset  size  field
//        0     4  magic "SVJB"
//        4     4  version (1)
//        8     8  job_id
//       16     4  config_id
//       20    16  source coordinate (4 x u32)
//       36     4  spin       (0 .. Ns-1)
//       40     4  colour     (0 .. Nc-1)
//       44     8  mass       (binary64)
//       52     4  algorithm      (solver::Algorithm)
//       56     4  preconditioner (solver::Preconditioner)
//       60     8  tolerance  (binary64)
//       68     4  max_iterations
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/format.h"
#include "lattice/coordinates.h"
#include "qcd/types.h"
#include "solver/result.h"

namespace svelat::service {

inline constexpr std::uint32_t kJobMagic = 0x424A5653u;  // "SVJB" on disk
inline constexpr std::uint32_t kJobVersion = 1;
inline constexpr std::size_t kJobRecordBytes = 72;

struct MeasurementJob {
  std::uint64_t job_id = 0;
  std::uint32_t config_id = 0;  ///< which stored gauge configuration
  lattice::Coordinate source{0, 0, 0, 0};
  int spin = 0;
  int colour = 0;
  double mass = 0.0;
  solver::Algorithm algorithm = solver::Algorithm::kCG;
  solver::Preconditioner preconditioner = solver::Preconditioner::kSchurEvenOdd;
  double tolerance = 1e-8;
  int max_iterations = 1000;

  solver::SolverParams solver_params() const {
    return solver::SolverParams{}
        .with_algorithm(algorithm)
        .with_preconditioner(preconditioner)
        .with_tolerance(tolerance)
        .with_max_iterations(max_iterations);
  }

  bool operator==(const MeasurementJob&) const = default;
};

/// Append the 72-byte version-1 record for `job` to `out`.
inline void encode_job(std::vector<std::uint8_t>& out, const MeasurementJob& job) {
  io::put_u32(out, kJobMagic);
  io::put_u32(out, kJobVersion);
  io::put_u64(out, job.job_id);
  io::put_u32(out, job.config_id);
  for (int d = 0; d < lattice::Nd; ++d)
    io::put_u32(out, static_cast<std::uint32_t>(job.source[d]));
  io::put_u32(out, static_cast<std::uint32_t>(job.spin));
  io::put_u32(out, static_cast<std::uint32_t>(job.colour));
  io::put_f64(out, job.mass);
  io::put_u32(out, static_cast<std::uint32_t>(job.algorithm));
  io::put_u32(out, static_cast<std::uint32_t>(job.preconditioner));
  io::put_f64(out, job.tolerance);
  io::put_u32(out, static_cast<std::uint32_t>(job.max_iterations));
}

inline std::vector<std::uint8_t> encode_job(const MeasurementJob& job) {
  std::vector<std::uint8_t> out;
  out.reserve(kJobRecordBytes);
  encode_job(out, job);
  return out;
}

/// Decode one job record at `off` (advancing it), validating magic,
/// version and every enum-like field.  Throws io::IoError naming the
/// defect -- kBadMagic / kBadVersion / kTruncated / kCorruptPayload.
inline MeasurementJob decode_job(const std::vector<std::uint8_t>& in,
                                 std::size_t& off) {
  using io::IoError;
  using io::IoErrorCode;
  const auto code = IoErrorCode::kTruncated;
  const std::uint32_t magic = io::get_u32(in, off, code, "job record magic");
  if (magic != kJobMagic)
    throw IoError(IoErrorCode::kBadMagic, "job record magic mismatch (not \"SVJB\")");
  const std::uint32_t version = io::get_u32(in, off, code, "job record version");
  if (version != kJobVersion)
    throw IoError(IoErrorCode::kBadVersion,
                  "job record version " + std::to_string(version) +
                      " (reader knows version " + std::to_string(kJobVersion) + ")");
  MeasurementJob job;
  job.job_id = io::get_u64(in, off, code, "job id");
  job.config_id = io::get_u32(in, off, code, "job config id");
  for (int d = 0; d < lattice::Nd; ++d)
    job.source[d] = static_cast<int>(io::get_u32(in, off, code, "job source"));
  job.spin = static_cast<int>(io::get_u32(in, off, code, "job spin"));
  job.colour = static_cast<int>(io::get_u32(in, off, code, "job colour"));
  job.mass = io::get_f64(in, off, code, "job mass");
  const std::uint32_t alg = io::get_u32(in, off, code, "job algorithm");
  const std::uint32_t pre = io::get_u32(in, off, code, "job preconditioner");
  job.tolerance = io::get_f64(in, off, code, "job tolerance");
  job.max_iterations = static_cast<int>(io::get_u32(in, off, code, "job iterations"));
  if (alg > static_cast<std::uint32_t>(solver::Algorithm::kMixedCG) ||
      pre > static_cast<std::uint32_t>(solver::Preconditioner::kSchurEvenOdd) ||
      job.spin < 0 || job.spin >= qcd::Ns || job.colour < 0 || job.colour >= qcd::Nc)
    throw IoError(IoErrorCode::kCorruptPayload,
                  "job record " + std::to_string(job.job_id) +
                      " holds an out-of-range enum or source component");
  job.algorithm = static_cast<solver::Algorithm>(alg);
  job.preconditioner = static_cast<solver::Preconditioner>(pre);
  return job;
}

inline MeasurementJob decode_job(const std::vector<std::uint8_t>& in) {
  std::size_t off = 0;
  return decode_job(in, off);
}

}  // namespace svelat::service
