#include "service/scheduler.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "io/crc32.h"
#include "support/logging.h"

namespace svelat::service {

// --- JobResult framing ("SVJR"; spec appendix in docs/FORMAT.md) ------------
//
// Record layout:
//   offset  size  field
//        0     4  magic "SVJR"
//        4     4  version (1)
//        8     4  payload length P
//       12     P  payload: job_id u64, config_id u32, converged u32,
//                 iterations u32, wall_seconds f64, dhop GB/s f64,
//                 dhop GFLOP/s f64, linalg GB/s f64, linalg GFLOP/s f64,
//                 correlator length T u32, T x f64
//     12+P     4  CRC-32 over bytes [0, 12+P) of the record

namespace {
constexpr std::size_t kResultFixedPayload = 64;  // everything but the T doubles
}  // namespace

void encode_result(std::vector<std::uint8_t>& out, const JobResult& r) {
  const std::size_t start = out.size();
  io::put_u32(out, kResultMagic);
  io::put_u32(out, kResultVersion);
  io::put_u32(out, static_cast<std::uint32_t>(kResultFixedPayload +
                                              8 * r.correlator.size()));
  io::put_u64(out, r.job_id);
  io::put_u32(out, r.config_id);
  io::put_u32(out, r.converged ? 1 : 0);
  io::put_u32(out, r.iterations);
  io::put_f64(out, r.wall_seconds);
  io::put_f64(out, r.dhop_gb_per_sec);
  io::put_f64(out, r.dhop_gflop_per_sec);
  io::put_f64(out, r.linalg_gb_per_sec);
  io::put_f64(out, r.linalg_gflop_per_sec);
  io::put_u32(out, static_cast<std::uint32_t>(r.correlator.size()));
  for (const double c : r.correlator) io::put_f64(out, c);
  io::put_u32(out, io::crc32(out.data() + start, out.size() - start));
}

std::vector<std::uint8_t> encode_result(const JobResult& r) {
  std::vector<std::uint8_t> out;
  encode_result(out, r);
  return out;
}

JobResult decode_result(const std::vector<std::uint8_t>& in, std::size_t& off) {
  using io::IoError;
  using io::IoErrorCode;
  const std::size_t start = off;
  const auto code = IoErrorCode::kTruncated;
  const std::uint32_t magic = io::get_u32(in, off, code, "result record magic");
  if (magic != kResultMagic)
    throw IoError(IoErrorCode::kBadMagic, "result record magic mismatch (not \"SVJR\")");
  const std::uint32_t version = io::get_u32(in, off, code, "result record version");
  if (version != kResultVersion)
    throw IoError(IoErrorCode::kBadVersion,
                  "result record version " + std::to_string(version) +
                      " (reader knows version " + std::to_string(kResultVersion) + ")");
  const std::uint32_t payload = io::get_u32(in, off, code, "result payload length");
  if (payload < kResultFixedPayload || (payload - kResultFixedPayload) % 8 != 0)
    throw IoError(IoErrorCode::kCorruptPayload,
                  "result payload length " + std::to_string(payload) +
                      " does not describe a correlator record");
  if (in.size() - off < payload + 4)
    throw IoError(code, "result record ends inside its payload");
  const std::uint32_t want_crc = io::crc32(in.data() + start, 12 + payload);

  JobResult r;
  r.job_id = io::get_u64(in, off, code, "result job id");
  r.config_id = io::get_u32(in, off, code, "result config id");
  r.converged = io::get_u32(in, off, code, "result converged flag") != 0;
  r.iterations = io::get_u32(in, off, code, "result iterations");
  r.wall_seconds = io::get_f64(in, off, code, "result wall seconds");
  r.dhop_gb_per_sec = io::get_f64(in, off, code, "result dhop GB/s");
  r.dhop_gflop_per_sec = io::get_f64(in, off, code, "result dhop GFLOP/s");
  r.linalg_gb_per_sec = io::get_f64(in, off, code, "result linalg GB/s");
  r.linalg_gflop_per_sec = io::get_f64(in, off, code, "result linalg GFLOP/s");
  const std::uint32_t nt = io::get_u32(in, off, code, "result correlator length");
  if (kResultFixedPayload + 8 * static_cast<std::size_t>(nt) != payload)
    throw IoError(IoErrorCode::kCorruptPayload,
                  "result correlator length " + std::to_string(nt) +
                      " disagrees with the payload length");
  r.correlator.reserve(nt);
  for (std::uint32_t t = 0; t < nt; ++t)
    r.correlator.push_back(io::get_f64(in, off, code, "result correlator"));
  const std::uint32_t got_crc = io::get_u32(in, off, code, "result record crc");
  if (got_crc != want_crc)
    throw IoError(IoErrorCode::kCorruptPayload,
                  "result record for job " + std::to_string(r.job_id) +
                      " fails its CRC-32");
  return r;
}

void append_result(const std::string& path, const JobResult& r) {
  const std::vector<std::uint8_t> bytes = encode_result(r);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    throw io::IoError(io::IoErrorCode::kOpenFailed,
                      "cannot open results file '" + path + "' for append");
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
                  std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok)
    throw io::IoError(io::IoErrorCode::kOpenFailed,
                      "short append to results file '" + path + "'");
}

std::vector<JobResult> read_results(const std::string& path) {
  const std::vector<std::uint8_t> bytes = io::read_file_bytes(path);
  std::vector<JobResult> results;
  std::size_t off = 0;
  while (off < bytes.size()) results.push_back(decode_result(bytes, off));
  return results;
}

std::size_t recover_results(const std::string& path, const JobQueue& queue) {
  if (!std::filesystem::exists(path)) return 0;
  const std::vector<std::uint8_t> bytes = io::read_file_bytes(path);

  // Lenient parse: a defect mid-file is a torn tail from a crash during
  // append -- everything before it is trusted, everything after dropped.
  std::vector<JobResult> kept;
  std::size_t off = 0, valid_bytes = 0, pruned = 0;
  std::set<std::uint64_t> seen;
  while (off < bytes.size()) {
    JobResult r;
    try {
      r = decode_result(bytes, off);
    } catch (const io::IoError&) {
      break;  // torn tail
    }
    const QueueEntry* e = queue.find(r.job_id);
    const bool done = e != nullptr && e->state == JobState::kDone;
    if (done && seen.insert(r.job_id).second) {
      kept.push_back(std::move(r));
    } else {
      ++pruned;  // orphan (job never reached kDone) or duplicate
    }
    valid_bytes = off;
  }

  if (pruned == 0 && valid_bytes == bytes.size()) return 0;
  std::vector<std::uint8_t> out;
  for (const JobResult& r : kept) encode_result(out, r);
  io::write_file_bytes(path, out);  // atomic rewrite
  return pruned;
}

// --- supervisor -------------------------------------------------------------

int supervisor_loop(comms::Communicator& comm, const SchedulerConfig& cfg) {
  using comms::CommStatus;

  JobQueue queue = JobQueue::load(cfg.queue_path);
  const std::size_t requeued = queue.requeue_claimed();
  const std::size_t pruned = recover_results(cfg.results_path, queue);
  if (cfg.verbosity >= 1 && (requeued > 0 || pruned > 0))
    log_info() << "scheduler recovery: requeued " << requeued
               << " claimed job(s), pruned " << pruned << " orphaned result(s)";

  // The gauge is broadcast as raw SVGF bytes; workers decode into grids
  // shaped for their own SIMD layout, so the supervisor never needs one.
  const std::vector<std::uint8_t> gauge_bytes = io::read_file_bytes(cfg.gauge_path);

  std::set<int> live;
  std::map<int, std::uint64_t> in_flight;  // worker -> its claimed job
  for (int w = 0; w < comm.size(); ++w) {
    if (w == kSupervisorRank) continue;
    if (comm.send_status(kSupervisorRank, w, kGaugeTag, gauge_bytes) == CommStatus::kOk)
      live.insert(w);
    else if (cfg.verbosity >= 1)
      log_info() << "scheduler: worker " << w << " unreachable at gauge broadcast";
  }

  const auto drop_worker = [&](int w, const char* why) {
    const auto it = in_flight.find(w);
    if (it != in_flight.end()) {
      if (cfg.verbosity >= 1)
        log_info() << "scheduler: requeueing job " << it->second << " from worker "
                   << w << " (" << why << ")";
      queue.requeue(it->second);
      in_flight.erase(it);
    } else if (cfg.verbosity >= 1) {
      log_info() << "scheduler: worker " << w << " dropped (" << why << ")";
    }
    live.erase(w);
  };

  // Claim the next pending job for an idle worker; false leaves it
  // parked (blocked in its own recv, waiting for a job or shutdown).
  const auto dispatch = [&](int w) {
    if (in_flight.count(w) > 0) return;
    const std::optional<MeasurementJob> job = queue.claim(w);
    if (!job.has_value()) return;
    if (comm.send_status(kSupervisorRank, w, kJobTag, encode_job(*job)) !=
        CommStatus::kOk) {
      in_flight[w] = job->job_id;  // so drop_worker requeues it
      drop_worker(w, "job dispatch failed");
      return;
    }
    in_flight[w] = job->job_id;
  };

  int idle_sweeps = 0;
  while (!queue.all_done()) {
    if (live.empty()) {
      if (cfg.verbosity >= 1)
        log_info() << "scheduler: " << queue.pending()
                   << " job(s) remain but no worker survives; relaunch required";
      return 1;
    }
    if (queue.pending() > 0) {
      const std::set<int> idle = live;  // dispatch may mutate `live`
      for (const int w : idle) dispatch(w);
    }
    if (in_flight.empty()) continue;  // dispatch dropped every candidate

    bool progress = false;
    const std::map<int, std::uint64_t> sweep = in_flight;
    for (const auto& [w, job_id] : sweep) {
      std::vector<std::uint8_t> payload;
      const CommStatus st =
          comm.recv_status(kSupervisorRank, w, kResultTag, payload);
      if (st == CommStatus::kTimeout) continue;  // still solving; poll on
      if (st != CommStatus::kOk) {
        drop_worker(w, comms::comm_status_name(st));
        progress = true;
        continue;
      }
      std::size_t off = 0;
      JobResult result;
      try {
        result = decode_result(payload, off);
      } catch (const io::IoError& e) {
        drop_worker(w, e.what());
        progress = true;
        continue;
      }
      if (result.job_id != job_id) {
        drop_worker(w, "result names a job it does not own");
        progress = true;
        continue;
      }
      // Exactly-once commit order: fsync the result, THEN mark done.
      append_result(cfg.results_path, result);
      queue.complete(result.job_id);
      in_flight.erase(w);
      progress = true;
      if (cfg.verbosity >= 1)
        log_info() << "scheduler: job " << result.job_id << " done on worker " << w
                   << " (" << (result.converged ? "converged" : "NOT converged")
                   << ", " << result.iterations << " iters, "
                   << result.wall_seconds << " s)";
      dispatch(w);
    }
    idle_sweeps = progress ? 0 : idle_sweeps + 1;
    if (idle_sweeps >= cfg.max_idle_sweeps) {
      if (cfg.verbosity >= 1)
        log_info() << "scheduler: no progress after " << idle_sweeps
                   << " poll sweeps; giving up";
      return 2;
    }
  }

  for (const int w : live)
    comm.send_status(kSupervisorRank, w, kJobTag, std::vector<std::uint8_t>{});
  if (cfg.verbosity >= 1)
    log_info() << "scheduler: queue drained (" << queue.done() << " job(s) done)";
  return 0;
}

}  // namespace svelat::service
