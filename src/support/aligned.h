// Aligned allocation support.
//
// Lattice containers must be aligned to the widest vector the SVE simulator
// models (2048 bit = 256 byte) so that the ACLE-style load/store intrinsics
// see the alignment real SVE hardware would get from Grid's allocator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace svelat {

/// Maximum SVE vector length in bytes (2048 bit); used as default alignment.
inline constexpr std::size_t kMaxVectorBytes = 256;

/// Process-wide count of aligned allocations.  Every lattice field stores
/// its sites in an AlignedVector, so this is a test seam for "how many
/// field-sized buffers did this code path construct": the allocation
/// regression suite (tests/solver/test_allocation.cpp) snapshots it around
/// a warm WilsonSolver::solve and pins the delta to zero.
inline std::atomic<std::uint64_t>& aligned_allocation_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Minimal C++17 std::allocator replacement with fixed alignment.
template <typename T, std::size_t Align = kMaxVectorBytes>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment weaker than type requires");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(size_type n) {
    if (n > std::numeric_limits<size_type>::max() / sizeof(T)) throw std::bad_alloc{};
    // Round the byte count up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const size_type bytes = ((n * sizeof(T) + Align - 1) / Align) * Align;
    aligned_allocation_count().fetch_add(1, std::memory_order_relaxed);
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_type) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Vector whose storage is aligned for any SVE vector length.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True if the pointer satisfies the given alignment.
inline bool is_aligned(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

}  // namespace svelat
