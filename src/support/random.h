// Layout-independent parallel random numbers.
//
// The Sec. V-D verification requires that a field filled "randomly" is
// *identical* no matter which SVE vector length or SIMD backend laid the
// data out in memory.  Grid achieves this with one RNG per lattice site;
// we use a counter-based construction instead: every drawn number is a pure
// function of (seed, site, slot).  That makes fills reproducible across
// vector lengths, backends, and thread counts, which is exactly the
// property the cross-VL bit-identity tests rely on.
#pragma once

#include <cstdint>

namespace svelat {

/// SplitMix64 finalizer; a high-quality 64-bit mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Stateless counter-based generator: draws are keyed, not sequenced.
class SiteRNG {
 public:
  explicit SiteRNG(std::uint64_t seed) : seed_(splitmix64(seed ^ 0xa076'1d64'78bd'642full)) {}

  /// Uniform 64-bit integer for (site, slot).
  std::uint64_t bits(std::uint64_t site, std::uint64_t slot) const {
    // Two rounds of mixing decorrelate site and slot contributions.
    return splitmix64(splitmix64(seed_ + 0x632b'e59b'd9b4'e019ull * site) +
                      0x9e37'79b9'7f4a'7c15ull * (slot + 1));
  }

  /// Uniform double in [0, 1).
  double uniform(std::uint64_t site, std::uint64_t slot) const {
    return static_cast<double>(bits(site, slot) >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(std::uint64_t site, std::uint64_t slot, double lo, double hi) const {
    return lo + (hi - lo) * uniform(site, slot);
  }

  /// Standard normal deviate via Box-Muller (deterministic per key).
  double gaussian(std::uint64_t site, std::uint64_t slot) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace svelat
