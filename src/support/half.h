// IEEE 754 binary16 ("half") software floating point.
//
// The paper (Sec. V-B) notes that Grid uses 16-bit floats exclusively for
// compressing data exchanged over the network; the SVE ISA provides
// vectorized fp16 arithmetic and precision conversion.  This type is the
// scalar reference for the simulator's fp16 lanes and for the halo
// compression substrate.  Conversions implement round-to-nearest-even,
// matching the FCVT behaviour of the hardware.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace svelat {

class half {
 public:
  half() = default;

  /// Construct from float with round-to-nearest-even (like FCVT h,s).
  explicit half(float f) : bits_(float_to_bits(f)) {}
  explicit half(double d) : half(static_cast<float>(d)) {}

  /// Widening conversion (exact, like FCVT s,h).
  explicit operator float() const { return bits_to_float(bits_); }
  explicit operator double() const { return static_cast<double>(bits_to_float(bits_)); }

  /// Raw bit pattern access (for packing into exchange buffers).
  static half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const { return bits_; }

  bool is_nan() const { return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0; }
  bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }
  bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
  bool signbit() const { return (bits_ & 0x8000u) != 0; }

  // Arithmetic is carried out in float, then rounded once -- the same
  // numerical contract as an fp16 FMA-free ALU with widening operands.
  friend half operator+(half a, half b) { return half(float(a) + float(b)); }
  friend half operator-(half a, half b) { return half(float(a) - float(b)); }
  friend half operator*(half a, half b) { return half(float(a) * float(b)); }
  friend half operator/(half a, half b) { return half(float(a) / float(b)); }
  friend half operator-(half a) { return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u)); }

  half& operator+=(half o) { return *this = *this + o; }
  half& operator-=(half o) { return *this = *this - o; }
  half& operator*=(half o) { return *this = *this * o; }
  half& operator/=(half o) { return *this = *this / o; }

  friend bool operator==(half a, half b) { return float(a) == float(b); }
  friend bool operator!=(half a, half b) { return float(a) != float(b); }
  friend bool operator<(half a, half b) { return float(a) < float(b); }
  friend bool operator<=(half a, half b) { return float(a) <= float(b); }
  friend bool operator>(half a, half b) { return float(a) > float(b); }
  friend bool operator>=(half a, half b) { return float(a) >= float(b); }

  /// Largest finite value: 65504.
  static half max() { return from_bits(0x7bffu); }
  /// Smallest positive normal: 2^-14.
  static half min_normal() { return from_bits(0x0400u); }
  /// Machine epsilon: 2^-10.
  static half epsilon() { return from_bits(0x1400u); }
  static half infinity() { return from_bits(0x7c00u); }
  static half quiet_nan() { return from_bits(0x7e00u); }

  static std::uint16_t float_to_bits(float f);
  static float bits_to_float(std::uint16_t h);

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, half h);

static_assert(sizeof(half) == 2, "half must be 16 bits wide");

}  // namespace svelat
