// Thread-level parallelism over outer-site loops.
//
// Grid pairs its SIMD abstraction with OpenMP threading over the outer
// sites (paper Sec. II-C: "parallelism at the thread level" sits between
// SIMD and MPI in the decomposition).  This header is svelat's equivalent:
//
//   thread_for(n, [&](std::int64_t i) { ... });   // i = 0..n-1, each once
//   parallel_region([&] { ... });                 // run body on every thread
//   parallel_reduce(n, zero, term);               // deterministic sum
//
// Built on OpenMP when the build enables it (SVELAT_USE_OPENMP, see
// BUILDING.md); otherwise every construct degrades to the serial loop with
// identical semantics.
//
// Two invariants the rest of the framework relies on:
//
//  1. *Deterministic reductions.*  parallel_reduce accumulates fixed-size
//     chunks (kReduceChunk sites) in index order and then sums the chunk
//     partials in chunk order.  The floating-point grouping therefore
//     depends only on n -- never on OMP_NUM_THREADS -- so norms, inner
//     products and CG residual histories are bitwise identical from 1
//     thread to N threads to the OpenMP-free build.
//
//  2. *Instruction-count transparency.*  The SVE simulator tallies
//     instructions per thread (sve_counters.h).  Worker threads absorb
//     their deltas back into the calling thread when a construct ends, so
//     a CounterScope around a threaded loop observes exactly the counts
//     the serial loop would have produced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#if defined(SVELAT_USE_OPENMP) && defined(_OPENMP)
#include <omp.h>
#define SVELAT_OPENMP_ACTIVE 1
#endif

// parallel.h sits in support/ but reaches up into sve/ for the counter
// merge and the tracer check; both headers are self-contained, so no
// include cycle.
#include "support/aligned.h"
#include "sve/sve_counters.h"
#include "sve/sve_trace.h"

namespace svelat {

/// Threads a parallel construct may use (1 without OpenMP).
inline int max_threads() {
#if defined(SVELAT_OPENMP_ACTIVE)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Index of the calling thread within a parallel_region (0 outside).
inline int thread_num() {
#if defined(SVELAT_OPENMP_ACTIVE)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// True when called from inside an active parallel construct.
inline bool in_parallel_region() {
#if defined(SVELAT_OPENMP_ACTIVE)
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Process-wide serial override.  A child forked from a process whose
/// OpenMP runtime already spawned a thread team must never enter another
/// parallel region (libgomp is not fork-safe); the socket-transport rank
/// launcher (comms/socket.h) sets this immediately after fork().  The
/// deterministic-reduction invariant (1) below guarantees serial results
/// are bitwise identical to threaded ones, so flipping this flag never
/// changes a value.
inline bool& force_serial() {
  static bool flag = false;
  return flag;
}
inline void set_force_serial(bool on) { force_serial() = on; }

/// RAII: pin the team size for a scope (tests compare 1-thread vs
/// N-thread runs bitwise).  No-op in the serial build.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(max_threads()) { set(std::max(1, n)); }
  ~ThreadCountGuard() { set(previous_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  static void set(int n) {
#if defined(SVELAT_OPENMP_ACTIVE)
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }
  int previous_;
};

namespace detail {

#if defined(SVELAT_OPENMP_ACTIVE)
/// True while the calling thread is executing a thread_for body; a
/// thread_for encountered there must not emit another worksharing
/// construct (illegal nesting) and runs its range serially instead.
inline bool& in_worksharing() {
  thread_local bool flag = false;
  return flag;
}
#endif

/// Threading would scatter trace lines across worker-thread tracers (the
/// tracer TLS is per thread and, unlike the counters, ordered output can't
/// be merged after the fact) -- so traced loops run serially.
inline bool must_serialize() {
  return force_serial() || sve::detail::tracing() || max_threads() == 1;
}

/// RAII: on destruction, absorb the worker threads' SVE instruction-count
/// deltas into the calling thread (invariant 2 above).  The calling thread
/// is team member 0 and counts into its own tally directly.
class CounterMerge {
 public:
  explicit CounterMerge(int num_threads)
      : deltas_(static_cast<std::size_t>(num_threads)) {}
  ~CounterMerge() {
    for (std::size_t t = 1; t < deltas_.size(); ++t) sve::absorb_counters(deltas_[t]);
  }
  CounterMerge(const CounterMerge&) = delete;
  CounterMerge& operator=(const CounterMerge&) = delete;

  /// Called by each non-zero team member after its share of the work.
  void record(int thread, const sve::InsnCounters& delta) {
    if (thread != 0) deltas_[static_cast<std::size_t>(thread)] = delta;
  }

 private:
  std::vector<sve::InsnCounters> deltas_;
};

}  // namespace detail

/// Run body() once on every thread of a fresh team (serially: once).
/// Inside the body, thread_for work-shares across this team, so
/// region-level setup can be combined with shared loops -- every thread
/// of the team must reach each such thread_for (OpenMP worksharing rule).
template <class F>
void parallel_region(F&& body) {
#if defined(SVELAT_OPENMP_ACTIVE)
  if (!in_parallel_region() && !detail::must_serialize()) {
    detail::CounterMerge merge(max_threads());
#pragma omp parallel
    {
      const sve::CounterScope scope;
      body();
      merge.record(thread_num(), scope.delta());
    }
    return;
  }
#endif
  body();
}

/// f(i) for i = 0..n-1, each index exactly once, split across threads.
/// Iterations must be independent (distinct i never write the same data).
/// Called from a parallel_region body it work-shares across the enclosing
/// team; called from inside another thread_for body it runs serially.
template <class F>
void thread_for(std::int64_t n, F&& f) {
#if defined(SVELAT_OPENMP_ACTIVE)
  if (n > 1 && !detail::must_serialize()) {
    if (!in_parallel_region()) {
      detail::CounterMerge merge(max_threads());
#pragma omp parallel
      {
        const sve::CounterScope scope;
        detail::in_worksharing() = true;
#pragma omp for schedule(static)
        for (std::int64_t i = 0; i < n; ++i) f(i);
        detail::in_worksharing() = false;
        merge.record(thread_num(), scope.delta());
      }
      return;
    }
    if (!detail::in_worksharing()) {
      // Orphaned worksharing construct: split the range over the team of
      // the enclosing parallel_region (counters are absorbed when that
      // region ends).
      detail::in_worksharing() = true;
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < n; ++i) f(i);
      detail::in_worksharing() = false;
      return;
    }
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) f(i);
}

/// Sites per reduction chunk.  Fixed (never derived from the thread count)
/// so the floating-point summation tree is a function of n alone.
inline constexpr std::int64_t kReduceChunk = 64;

/// Deterministic parallel sum: total of term(i) for i = 0..n-1, grouped in
/// kReduceChunk-sized chunks (invariant 1 above).  T needs operator+= and
/// copy construction; `zero` is the additive identity.
template <class T, class F>
T parallel_reduce(std::int64_t n, const T& zero, F&& term) {
  const std::int64_t chunks = (n + kReduceChunk - 1) / kReduceChunk;
  if (chunks <= 1) {
    T acc = zero;
    for (std::int64_t i = 0; i < n; ++i) acc += term(i);
    return acc;
  }
  // Per-thread scratch (grows once, reused across calls) so solver-loop
  // reductions stay allocation-free after warm-up.  Not reentrant: term()
  // must not itself call parallel_reduce with the same T.  The local
  // reference is essential: lambdas don't capture thread_local variables,
  // so chunk_sum must reach the *caller's* buffer through a captured
  // automatic variable, not re-resolve TLS on each worker.
  thread_local AlignedVector<T> partial_tls;
  AlignedVector<T>& partial = partial_tls;
  partial.assign(static_cast<std::size_t>(chunks), zero);
  const auto chunk_sum = [&](std::int64_t c) {
    const std::int64_t lo = c * kReduceChunk;
    const std::int64_t hi = std::min(n, lo + kReduceChunk);
    T acc = zero;
    for (std::int64_t i = lo; i < hi; ++i) acc += term(i);
    partial[static_cast<std::size_t>(c)] = acc;
  };
  if (in_parallel_region()) {
    // The partial vector is private to the calling thread; work-sharing
    // the chunks across the team would leave most slots zero.  Same
    // chunked tree, computed locally.
    for (std::int64_t c = 0; c < chunks; ++c) chunk_sum(c);
  } else {
    thread_for(chunks, chunk_sum);
  }
  T total = zero;
  for (const T& p : partial) total += p;  // chunk order: fixed grouping
  return total;
}

}  // namespace svelat
