// Lightweight assertion machinery.
//
// SVELAT_ASSERT is always on (also in release builds): the framework is a
// correctness-first reproduction and the simulator is the slow part anyway.
// SVELAT_DEBUG_ASSERT compiles out unless SVELAT_DEBUG_CHECKS is defined;
// it guards per-lane hot paths inside the SVE simulator.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace svelat {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "svelat: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace svelat

#define SVELAT_ASSERT(expr)                                             \
  do {                                                                  \
    if (!(expr)) ::svelat::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SVELAT_ASSERT_MSG(expr, msg)                                 \
  do {                                                               \
    if (!(expr)) ::svelat::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Variadic so that unparenthesized template arguments (commas) survive the
// preprocessor, e.g. SVELAT_DEBUG_ASSERT(d < vec<T, VLB>::size).
#if defined(SVELAT_DEBUG_CHECKS)
#define SVELAT_DEBUG_ASSERT(...) SVELAT_ASSERT((__VA_ARGS__))
#else
#define SVELAT_DEBUG_ASSERT(...) \
  do {                           \
  } while (0)
#endif
