// Wall-clock metrics: a scoped timer registry with byte / flop accounting.
//
// The repo's portable performance currency is simulated SVE instruction
// counts (sve/sve_counters.h) -- deterministic, machine-independent,
// right for the paper's per-kernel claims, and blind to threading, NUMA,
// allocation and wire time.  This layer adds the second axis: real
// monotonic-clock time per named region, with an attached byte / flop
// model so every region reports GB/s and GFLOP/s (the
// `TIMER_VERBOSE_FLOPS` accounting idiom of Qlattice).  Wall-clock
// figures are machine-dependent by nature: they are NEVER gated or
// baselined, only reported.
//
// Usage at a hot-path call site:
//
//   metrics::ScopedTimer t("dhop", bytes_model, flops_model);
//   ... the threaded kernel ...
//
// Each region accumulates calls / seconds / bytes / flops in a global
// registry; metrics::report() renders the table (text or JSON), and
// metrics::get()/snapshot() expose the numbers programmatically (the
// measurement service streams per-job deltas from them).
//
// Two off switches, so the counted-instruction determinism story is
// untouched:
//   - runtime: the SVELAT_METRICS environment variable ("0" / "off"
//     disables collection; default on), or set_enabled(false);
//   - compile time: configuring with -DSVELAT_METRICS=OFF defines
//     SVELAT_METRICS_DISABLED and compiles ScopedTimer to a no-op.
// Timing never touches field data or the SVE simulator, so numerical
// results and instruction counts are bitwise identical either way --
// CI's metrics-determinism lane pins exactly that.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#if defined(SVELAT_METRICS_DISABLED)
#define SVELAT_METRICS_ENABLED 0
#else
#define SVELAT_METRICS_ENABLED 1
#endif

namespace svelat::metrics {

/// Accumulated cost of one named region.  bytes/flops are whatever model
/// the call site attached (0 when a region carries no model).
struct RegionStats {
  std::uint64_t calls = 0;
  double seconds = 0.0;
  double bytes = 0.0;
  double flops = 0.0;

  double gb_per_sec() const { return seconds > 0.0 ? bytes / seconds / 1e9 : 0.0; }
  double gflop_per_sec() const { return seconds > 0.0 ? flops / seconds / 1e9 : 0.0; }
  double calls_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(calls) / seconds : 0.0;
  }
};

/// Runtime collection switch.  Initialized from the SVELAT_METRICS
/// environment variable on first use ("0"/"off"/"OFF" disable); always
/// false in SVELAT_METRICS_DISABLED builds.
bool enabled();
void set_enabled(bool on);

/// Accumulate one completed region invocation (thread-safe).
void record(const char* region, double seconds, double bytes, double flops);

/// Stats of one region (zeros when the region never ran).
RegionStats get(const std::string& region);

/// All regions, sorted by name (stable across runs for reporting).
std::vector<std::pair<std::string, RegionStats>> snapshot();

/// Drop all accumulated stats (per-job deltas in the measurement service).
void reset();

/// Human-readable table: one line per region with calls, seconds, GB/s,
/// GFLOP/s.  Empty registry renders a one-line note.
std::string report();

/// The same data as a JSON object: {"regions": [{"name": ..., "calls":
/// ..., "seconds": ..., "bytes": ..., "flops": ..., "gb_per_sec": ...,
/// "gflop_per_sec": ...}, ...]}.
std::string report_json();

/// RAII region timer.  Construction samples the monotonic clock (iff
/// collection is enabled); destruction records the elapsed seconds plus
/// the byte/flop model into the registry.  The model can be attached at
/// construction or grown while the region is open (add_bytes/add_flops --
/// e.g. a loop that discovers its traffic as it runs).
class ScopedTimer {
 public:
#if SVELAT_METRICS_ENABLED
  explicit ScopedTimer(const char* region, double bytes = 0.0, double flops = 0.0)
      : region_(region), bytes_(bytes), flops_(flops), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!armed_) return;
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start_;
    record(region_, dt.count(), bytes_, flops_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void add_bytes(double b) { bytes_ += b; }
  void add_flops(double f) { flops_ += f; }

 private:
  const char* region_;
  double bytes_;
  double flops_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
#else
  explicit ScopedTimer(const char*, double = 0.0, double = 0.0) {}
  void add_bytes(double) {}
  void add_flops(double) {}
#endif
};

}  // namespace svelat::metrics
