#include "support/half.h"

#include <cstring>
#include <ostream>

namespace svelat {

namespace {

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

std::uint16_t half::float_to_bits(float f) {
  const std::uint32_t u = float_bits(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::int32_t exponent = static_cast<std::int32_t>((u >> 23) & 0xffu) - 127;
  std::uint32_t mantissa = u & 0x007fffffu;

  if (exponent == 128) {  // inf or NaN
    if (mantissa == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    // Preserve a quiet NaN; keep the top mantissa bits so payloads survive
    // roundtrips where possible.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mantissa >> 13) | 1u);
  }

  if (exponent > 15) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exponent >= -14) {  // normal range
    std::uint32_t m = mantissa >> 13;
    const std::uint32_t rest = mantissa & 0x1fffu;
    // Round to nearest, ties to even.
    if (rest > 0x1000u || (rest == 0x1000u && (m & 1u))) ++m;
    std::uint32_t e = static_cast<std::uint32_t>(exponent + 15);
    if (m == 0x400u) {  // mantissa overflowed into the exponent
      m = 0;
      ++e;
      if (e == 31) return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    return static_cast<std::uint16_t>(sign | (e << 10) | m);
  }

  if (exponent >= -24) {  // subnormal half range
    // Add the implicit leading 1 and shift into subnormal position.
    mantissa |= 0x00800000u;
    const int shift = -exponent - 14 + 13;  // 14..24 -> shift 13..23
    std::uint32_t m = mantissa >> shift;
    const std::uint32_t rest = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (m & 1u))) ++m;
    // m may carry into the normal range (0x400); the bit pattern is then
    // exactly the smallest normal, so no special casing is needed.
    return static_cast<std::uint16_t>(sign | m);
  }

  return static_cast<std::uint16_t>(sign);  // underflow to signed zero
}

float half::bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1fu;
  std::uint32_t mantissa = h & 0x03ffu;

  if (exponent == 31) {  // inf / NaN
    return bits_float(sign | 0x7f800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalize by shifting the mantissa up.
    // Shift until the implicit 1 surfaces at bit 10; each shift halves the
    // exponent headroom below 2^-14 (the smallest normal).
    int e = 0;
    while ((mantissa & 0x0400u) == 0) {
      ++e;
      mantissa <<= 1;
    }
    mantissa &= 0x03ffu;
    return bits_float(sign | (static_cast<std::uint32_t>(113 - e) << 23) |
                      (mantissa << 13));
  }
  return bits_float(sign | ((exponent + 112) << 23) | (mantissa << 13));
}

std::ostream& operator<<(std::ostream& os, half h) { return os << static_cast<float>(h); }

}  // namespace svelat
