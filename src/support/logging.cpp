#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace svelat {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(level >= LogLevel::kWarn ? stderr : stdout, "[svelat %s] %s\n",
               level_tag(level), msg.c_str());
}

}  // namespace svelat
