#include "support/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace svelat::metrics {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, RegionStats>& registry() {
  static std::map<std::string, RegionStats> r;
  return r;
}

bool env_default() {
#if !SVELAT_METRICS_ENABLED
  return false;
#else
  const char* v = std::getenv("SVELAT_METRICS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0);
#endif
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> on{env_default()};
  return on;
}

}  // namespace

bool enabled() {
#if !SVELAT_METRICS_ENABLED
  return false;
#else
  return enabled_flag().load(std::memory_order_relaxed);
#endif
}

void set_enabled(bool on) {
  enabled_flag().store(on && SVELAT_METRICS_ENABLED, std::memory_order_relaxed);
}

void record(const char* region, double seconds, double bytes, double flops) {
  if (!enabled()) return;  // the runtime switch silences direct record() too
  std::lock_guard<std::mutex> lock(registry_mutex());
  RegionStats& s = registry()[region];
  ++s.calls;
  s.seconds += seconds;
  s.bytes += bytes;
  s.flops += flops;
}

RegionStats get(const std::string& region) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(region);
  return it == registry().end() ? RegionStats{} : it->second;
}

std::vector<std::pair<std::string, RegionStats>> snapshot() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return {registry().begin(), registry().end()};  // std::map: already name-sorted
}

void reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
}

std::string report() {
  const auto rows = snapshot();
  if (rows.empty()) return "metrics: no regions recorded\n";
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %8s %10s %9s %9s %10s\n", "region", "calls",
                "seconds", "GB/s", "GFLOP/s", "calls/s");
  out += line;
  for (const auto& [name, s] : rows) {
    std::snprintf(line, sizeof(line), "%-18s %8llu %10.4f %9.3f %9.3f %10.2f\n",
                  name.c_str(), static_cast<unsigned long long>(s.calls), s.seconds,
                  s.gb_per_sec(), s.gflop_per_sec(), s.calls_per_sec());
    out += line;
  }
  return out;
}

std::string report_json() {
  const auto rows = snapshot();
  std::string out = "{\"regions\": [";
  char buf[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, s] = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"calls\": %llu, \"seconds\": %.6f, "
                  "\"bytes\": %.0f, \"flops\": %.0f, \"gb_per_sec\": %.4f, "
                  "\"gflop_per_sec\": %.4f}",
                  i == 0 ? "" : ", ", name.c_str(),
                  static_cast<unsigned long long>(s.calls), s.seconds, s.bytes, s.flops,
                  s.gb_per_sec(), s.gflop_per_sec());
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace svelat::metrics
