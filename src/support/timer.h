// Wall-clock stopwatch used by benches and examples.
#pragma once

#include <chrono>

namespace svelat {

class StopWatch {
 public:
  using clock = std::chrono::steady_clock;

  StopWatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  clock::time_point start_;
};

}  // namespace svelat
