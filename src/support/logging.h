// Minimal leveled logger for examples / benches.
//
// Not a general-purpose logging framework: just enough to let long-running
// harnesses narrate progress and to silence chatty subsystems in tests.
#pragma once

#include <sstream>
#include <string>

namespace svelat {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace svelat
