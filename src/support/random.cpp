#include "support/random.h"

#include <cmath>

namespace svelat {

double SiteRNG::gaussian(std::uint64_t site, std::uint64_t slot) const {
  // Box-Muller on two decorrelated uniforms derived from the same key.
  // Slot-space is split so gaussian(slot) never shares raw bits with
  // uniform(slot) of the same site.
  const double u1 = uniform(site, 2 * slot + 0x4000'0000'0000'0000ull);
  const double u2 = uniform(site, 2 * slot + 0x4000'0000'0000'0001ull);
  // Guard against log(0).
  const double r = std::sqrt(-2.0 * std::log(u1 + 0x1.0p-60));
  return r * std::cos(6.28318530717958647692 * u2);
}

}  // namespace svelat
