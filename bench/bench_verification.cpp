// V2 -- the Sec. V-D verification matrix: the 40-check battery for every
// (vector length, backend) combination the framework ports.
//
// The paper reports: "The majority of tests and benchmarks complete with
// success.  However, some tests fail due to incorrect results for some
// choices of the SVE vector length and implementations of the predication.
// We attribute the failing tests to minor issues of the ARM SVE toolchain."
// Our toolchain substitute (the software simulator) has no such issues, so
// the expected result here is a full-pass matrix; any FAIL entry would
// indicate a genuine port bug.
#include <cstdio>

#include "core/verification.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace svelat;
  const bool verbose = argc > 1 && std::string(argv[1]) == "-v";

  std::printf("=== V2: Sec. V-D verification matrix (40 checks per cell) ===\n\n");

  const unsigned vls[] = {128, 256, 512};
  const simd::Backend backends[] = {simd::Backend::kGeneric, simd::Backend::kSveFcmla,
                                    simd::Backend::kSveReal};

  unsigned total_pass = 0, total_checks = 0;
  bool all_ok = true;
  for (const auto backend : backends) {
    for (const unsigned vl : vls) {
      StopWatch sw;
      const auto report = core::run_verification(vl, backend);
      std::printf("%s", core::format_report(report, verbose).c_str());
      std::printf("    (%.2f s)\n", sw.seconds());
      total_pass += report.passed();
      total_checks += report.total();
      all_ok = all_ok && report.all_passed();
    }
  }

  std::printf("\noverall: %u/%u checks pass across %zu configurations\n", total_pass,
              total_checks, sizeof(vls) / sizeof(vls[0]) *
                               sizeof(backends) / sizeof(backends[0]));
  std::printf("(paper: majority pass, some VL/predication combinations failed due to\n"
              " armclang-18 toolchain issues; our simulator substitute passes all)\n");
  return all_ok ? 0 : 1;
}
