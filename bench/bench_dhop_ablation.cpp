// Ablation -- two design choices of the hopping-term implementation:
//
//  (a) stencil tables + fused neighbour fetch (WilsonDirac::dhop, the
//      production path, Grid's CartesianStencil design) versus
//      materializing all eight shifted fields with Cshift
//      (dhop_via_cshift): measures what the stencil buys in temporaries
//      and memory traffic.
//
//  (b) PTRUE fixed-size predication versus WHILELT VLA predication for the
//      Sec. IV complex-multiply kernel: measures the loop-bookkeeping
//      overhead the paper's fixed-size port avoids (Sec. IV-D).
#include <benchmark/benchmark.h>

#include "core/svelat.h"

namespace {

using namespace svelat;

template <typename S>
struct Setup {
  Setup()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        dirac((qcd::random_gauge(SiteRNG(2018), gauge), gauge), 0.0),
        in(&grid),
        out(&grid) {
    gaussian_fill(SiteRNG(5), in);
  }
  sve::VLGuard vl;
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
  qcd::WilsonDirac<S> dirac;
  qcd::LatticeFermion<S> in, out;
};

template <typename S>
void bench_dhop_stencil(benchmark::State& state) {
  Setup<S> s;
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    s.dirac.dhop(s.in, s.out);
    benchmark::DoNotOptimize(s.out[0]);
    ++iters;
  }
  const double sites = static_cast<double>(s.grid.gsites()) * static_cast<double>(iters);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(scope.delta().total()) / sites);
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

template <typename S>
void bench_dhop_cshift(benchmark::State& state) {
  Setup<S> s;
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    qcd::dhop_via_cshift(s.gauge, s.in, s.out);
    benchmark::DoNotOptimize(s.out[0]);
    ++iters;
  }
  const double sites = static_cast<double>(s.grid.gsites()) * static_cast<double>(iters);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(scope.delta().total()) / sites);
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

// (b) predication strategy on the raw kernel: ptrue-fixed vs whilelt-VLA.
void bench_kernel_fixed_ptrue(benchmark::State& state) {
  sve::set_vector_length(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 512;  // complex numbers, multiple of every VL
  AlignedVector<double> x(2 * n, 1.5), y(2 * n, -0.5), z(2 * n);
  const std::size_t per_vec = kernels::cplx_per_vector();
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + per_vec <= n; i += per_vec)
      kernels::mult_cplx_acle_fixed(&x[2 * i], &y[2 * i], &z[2 * i]);
    benchmark::DoNotOptimize(z.data());
    ++iters;
  }
  state.counters["insns/elem"] = benchmark::Counter(
      static_cast<double>(scope.delta().total()) / static_cast<double>(iters * n));
  state.SetItemsProcessed(static_cast<std::int64_t>(iters * n));
}

void bench_kernel_vla_whilelt(benchmark::State& state) {
  sve::set_vector_length(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 512;
  AlignedVector<double> x(2 * n, 1.5), y(2 * n, -0.5), z(2 * n);
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    kernels::mult_cplx_acle(n, x.data(), y.data(), z.data());
    benchmark::DoNotOptimize(z.data());
    ++iters;
  }
  state.counters["insns/elem"] = benchmark::Counter(
      static_cast<double>(scope.delta().total()) / static_cast<double>(iters * n));
  state.SetItemsProcessed(static_cast<std::int64_t>(iters * n));
}

using D512F = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using D256F = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using D512G = simd::SimdComplex<double, simd::kVLB512, simd::Generic>;

}  // namespace

BENCHMARK(bench_dhop_stencil<D512F>)->Name("DhopStencil/fcmla/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_cshift<D512F>)->Name("DhopCshift/fcmla/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_stencil<D256F>)->Name("DhopStencil/fcmla/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_cshift<D256F>)->Name("DhopCshift/fcmla/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_stencil<D512G>)->Name("DhopStencil/generic/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_cshift<D512G>)->Name("DhopCshift/generic/512")->Unit(benchmark::kMillisecond);

BENCHMARK(bench_kernel_fixed_ptrue)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(bench_kernel_vla_whilelt)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

BENCHMARK_MAIN();
