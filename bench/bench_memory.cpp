// Supporting -- memory-path benchmark (Grid's Benchmark_memory analogue):
// regular, streaming (non-temporal) and prefetching copies of fermion
// fields, plus field fill.  Paper Sec. II-C lists "load, store, memory
// prefetch, streaming memory access" among the machine-specific
// operations every Grid port must provide.
#include <benchmark/benchmark.h>

#include "core/svelat.h"
#include "lattice/memory_ops.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

struct Setup {
  Setup()
      : grid({8, 8, 8, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        src(&grid),
        dst(&grid) {
    sve::set_vector_length(512);
    gaussian_fill(SiteRNG(1), src);
    dst.set_zero();
  }
  lattice::GridCartesian grid;
  Field src, dst;
};

Setup& setup() {
  static Setup s;
  return s;
}

void bench_copy(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  const std::size_t bytes =
      static_cast<std::size_t>(s.grid.gsites()) * qcd::Ns * qcd::Nc * 2 * sizeof(double);
  std::size_t iters = 0;
  for (auto _ : state) {
    lattice::copy_field(s.dst, s.src);
    benchmark::DoNotOptimize(s.dst[0]);
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(2 * bytes * iters));  // rd + wr
  state.counters["checksum"] = benchmark::Counter(norm2(s.dst));
}

void bench_stream_copy(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  const std::size_t bytes =
      static_cast<std::size_t>(s.grid.gsites()) * qcd::Ns * qcd::Nc * 2 * sizeof(double);
  std::size_t iters = 0;
  sve::CounterScope scope;
  for (auto _ : state) {
    lattice::stream_copy_field(s.dst, s.src);
    benchmark::DoNotOptimize(s.dst[0]);
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(2 * bytes * iters));
  // All memory traffic must be on the non-temporal opcodes.
  state.counters["ld+st"] = benchmark::Counter(
      static_cast<double>(scope.delta().memory_insns()) / static_cast<double>(iters));
  state.counters["checksum"] = benchmark::Counter(norm2(s.dst));
}

void bench_prefetch_copy(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  const std::size_t bytes =
      static_cast<std::size_t>(s.grid.gsites()) * qcd::Ns * qcd::Nc * 2 * sizeof(double);
  std::size_t iters = 0;
  for (auto _ : state) {
    lattice::prefetch_copy_field(s.dst, s.src);
    benchmark::DoNotOptimize(s.dst[0]);
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(2 * bytes * iters));
  state.counters["checksum"] = benchmark::Counter(norm2(s.dst));
}

void bench_splat(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  const std::size_t bytes =
      static_cast<std::size_t>(s.grid.gsites()) * qcd::Ns * qcd::Nc * 2 * sizeof(double);
  std::size_t iters = 0;
  for (auto _ : state) {
    lattice::splat_field(s.dst, 1.0);
    benchmark::DoNotOptimize(s.dst[0]);
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes * iters));  // write only
  state.counters["checksum"] = benchmark::Counter(norm2(s.dst));
}

void bench_memcpy_baseline(benchmark::State& state) {
  // Host memcpy: the roofline for any simulated copy path.
  auto& s = setup();
  const std::size_t bytes =
      static_cast<std::size_t>(s.grid.gsites()) * qcd::Ns * qcd::Nc * 2 * sizeof(double);
  std::size_t iters = 0;
  for (auto _ : state) {
    std::memcpy(&s.dst[0], &s.src[0], bytes);
    benchmark::DoNotOptimize(s.dst[0]);
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(2 * bytes * iters));
}

}  // namespace

BENCHMARK(bench_copy)->Name("Memory/copy")->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_stream_copy)->Name("Memory/stream-copy")->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_prefetch_copy)->Name("Memory/prefetch-copy")->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_splat)->Name("Memory/splat")->Unit(benchmark::kMicrosecond);
BENCHMARK(bench_memcpy_baseline)->Name("Memory/memcpy-baseline")->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
