// T1 -- regenerates paper Table I ("Architectures supported by Grid") and
// appends the ports this reproduction adds, exactly as the paper's
// contribution extends the table with SVE.
#include <cstdio>

#include "core/ports.h"

int main() {
  std::printf("=== T1: paper Table I + SVE ports of this reproduction ===\n\n");
  std::printf("%s\n", svelat::core::ports_table().c_str());
  std::printf("Notes:\n");
  std::printf("  * upstream rows are reproduced verbatim from the paper;\n");
  std::printf("    this library does not build x86/QPX/NEON intrinsics.\n");
  std::printf("  * the SVE rows are implemented against the software SVE\n");
  std::printf("    simulator (see DESIGN.md substitution table) at the\n");
  std::printf("    128/256/512-bit lengths the paper enables in Grid.\n");
  return 0;
}
