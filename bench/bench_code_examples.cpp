// L1-L4 -- the four kernels of paper Sec. IV, measured across vector
// lengths: wall time per element plus the dynamic SVE instruction count
// per element (the ArmIE-style metric; absolute wall time is simulator
// time, the instruction counts are architecture-level facts).
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "core/kernels.h"
#include "support/aligned.h"
#include "sve/sve.h"

namespace {

using namespace svelat;
using kernels::cplx;

constexpr std::size_t kN = 1024;  // complex elements (or doubles for L1)

struct Buffers {
  AlignedVector<double> xr, yr, zr;
  AlignedVector<cplx> xc, yc, zc;

  Buffers() : xr(2 * kN), yr(2 * kN), zr(2 * kN), xc(kN), yc(kN), zc(kN) {
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      xr[i] = 0.5 + 0.25 * static_cast<double>(i % 17);
      yr[i] = -1.0 + 0.125 * static_cast<double>(i % 23);
    }
    for (std::size_t i = 0; i < kN; ++i) {
      xc[i] = {xr[2 * i], xr[2 * i + 1]};
      yc[i] = {yr[2 * i], yr[2 * i + 1]};
    }
  }
};

Buffers& buffers() {
  static Buffers b;
  return b;
}

void set_vl(benchmark::State& state) {
  sve::set_vector_length(static_cast<unsigned>(state.range(0)));
}

void report(benchmark::State& state, std::size_t elements_per_iter,
            const sve::InsnCounters& delta, std::size_t iters) {
  state.SetItemsProcessed(static_cast<std::int64_t>(elements_per_iter * iters));
  state.counters["insns/elem"] = benchmark::Counter(
      static_cast<double>(delta.total()) / static_cast<double>(elements_per_iter * iters));
  state.counters["fcmla/elem"] = benchmark::Counter(
      static_cast<double>(delta[sve::InsnClass::kFCmla]) /
      static_cast<double>(elements_per_iter * iters));
  state.counters["mem/elem"] = benchmark::Counter(
      static_cast<double>(delta.memory_insns()) /
      static_cast<double>(elements_per_iter * iters));
}

void L1_mult_real_vla(benchmark::State& state) {
  set_vl(state);
  auto& b = buffers();
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    kernels::mult_real_sve(2 * kN, b.xr.data(), b.yr.data(), b.zr.data());
    benchmark::DoNotOptimize(b.zr.data());
    ++iters;
  }
  report(state, 2 * kN, scope.delta(), iters);
}

void L2_mult_cplx_autovec(benchmark::State& state) {
  set_vl(state);
  auto& b = buffers();
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    kernels::mult_cplx_autovec(kN, b.xc.data(), b.yc.data(), b.zc.data());
    benchmark::DoNotOptimize(b.zc.data());
    ++iters;
  }
  report(state, kN, scope.delta(), iters);
}

void L3_mult_cplx_acle_vla(benchmark::State& state) {
  set_vl(state);
  auto& b = buffers();
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    kernels::mult_cplx_acle(kN, b.xr.data(), b.yr.data(), b.zr.data());
    benchmark::DoNotOptimize(b.zr.data());
    ++iters;
  }
  report(state, kN, scope.delta(), iters);
}

void L4_mult_cplx_acle_fixed(benchmark::State& state) {
  set_vl(state);
  auto& b = buffers();
  // One hardware vector per call: iterate over the buffer in vector steps.
  const std::size_t per_vec = kernels::cplx_per_vector();
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + per_vec <= kN; i += per_vec)
      kernels::mult_cplx_acle_fixed(&b.xr[2 * i], &b.yr[2 * i], &b.zr[2 * i]);
    benchmark::DoNotOptimize(b.zr.data());
    ++iters;
  }
  report(state, (kN / per_vec) * per_vec, scope.delta(), iters);
}

void L0_mult_cplx_scalar(benchmark::State& state) {
  // Scalar std::complex loop: no SVE at all, the pre-vectorization baseline.
  auto& b = buffers();
  std::size_t iters = 0;
  for (auto _ : state) {
    kernels::mult_cplx_scalar(kN, b.xc.data(), b.yc.data(), b.zc.data());
    benchmark::DoNotOptimize(b.zc.data());
    ++iters;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN * iters));
}

}  // namespace

BENCHMARK(L0_mult_cplx_scalar);
BENCHMARK(L1_mult_real_vla)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(L2_mult_cplx_autovec)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(L3_mult_cplx_acle_vla)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(L4_mult_cplx_acle_fixed)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

BENCHMARK_MAIN();
