// Ablation -- expression-template fusion (paper Sec. II-C: Grid's
// abstraction layer is built on C++ template expressions).  Compares the
// fused single-pass evaluation of  r = a*x + y - i*z  against the eager
// operator chain that materializes temporaries, and the fused reduction
// against materialize-then-reduce.
#include <benchmark/benchmark.h>

#include "core/svelat.h"
#include "lattice/expr.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Field = lattice::Lattice<tensor::iVector<S, 3>>;

struct Setup {
  Setup()
      : grid({8, 8, 8, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        a(&grid),
        b(&grid),
        c(&grid),
        r(&grid) {
    sve::set_vector_length(512);
    gaussian_fill(SiteRNG(1), a);
    gaussian_fill(SiteRNG(2), b);
    gaussian_fill(SiteRNG(3), c);
  }
  lattice::GridCartesian grid;
  Field a, b, c, r;
};

Setup& setup() {
  static Setup s;
  return s;
}

const std::complex<double> kAlpha{0.5, -1.0};

void bench_eager_chain(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  std::size_t iters = 0;
  sve::CounterScope scope;
  for (auto _ : state) {
    // Three eager passes with two full temporaries.
    Field t1 = kAlpha * s.a;
    Field t2 = t1 + s.b;
    for (std::int64_t o = 0; o < s.grid.osites(); ++o)
      s.r[o] = t2[o] - tensor::timesI(s.c[o]);
    benchmark::DoNotOptimize(s.r[0]);
    ++iters;
  }
  const double sites = static_cast<double>(s.grid.gsites()) * static_cast<double>(iters);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(scope.delta().total()) / sites);
  state.counters["checksum"] = benchmark::Counter(norm2(s.r));
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

void bench_fused_expr(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  std::size_t iters = 0;
  sve::CounterScope scope;
  for (auto _ : state) {
    using namespace lattice::expr;
    eval_into(s.r, kAlpha * ref(s.a) + ref(s.b) - timesI(ref(s.c)));
    benchmark::DoNotOptimize(s.r[0]);
    ++iters;
  }
  const double sites = static_cast<double>(s.grid.gsites()) * static_cast<double>(iters);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(scope.delta().total()) / sites);
  state.counters["checksum"] = benchmark::Counter(norm2(s.r));
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

void bench_eager_inner_product(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  std::size_t iters = 0;
  std::complex<double> ip{};
  for (auto _ : state) {
    Field t = kAlpha * s.b;
    Field u = t + s.c;
    ip = innerProduct(s.a, u);
    benchmark::DoNotOptimize(ip);
    ++iters;
  }
  state.counters["checksum"] = benchmark::Counter(std::abs(ip));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.grid.gsites() * static_cast<std::int64_t>(iters)));
}

void bench_fused_inner_product(benchmark::State& state) {
  sve::set_vector_length(512);
  auto& s = setup();
  std::size_t iters = 0;
  std::complex<double> ip{};
  for (auto _ : state) {
    using namespace lattice::expr;
    ip = inner_product(s.a, kAlpha * ref(s.b) + ref(s.c));
    benchmark::DoNotOptimize(ip);
    ++iters;
  }
  state.counters["checksum"] = benchmark::Counter(std::abs(ip));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.grid.gsites() * static_cast<std::int64_t>(iters)));
}

}  // namespace

BENCHMARK(bench_eager_chain)->Name("Axpy3/eager")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_fused_expr)->Name("Axpy3/fused-expr")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_eager_inner_product)->Name("InnerProd/eager")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_fused_inner_product)->Name("InnerProd/fused-expr")->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
