// F1 -- reproduces Fig. 1: decomposing a sub-lattice over virtual nodes.
//
// For each vector length the paper enables, prints how the lattice is
// over-decomposed (simd_layout / rdimensions), shows which virtual node
// owns which block, and quantifies the central property of the layout:
// nearest-neighbour access needs *no* data movement between vector
// elements except at block boundaries, where a single stored lane
// permutation suffices.
#include <cstdio>

#include "core/svelat.h"

namespace {

using namespace svelat;

template <typename S>
void analyze(const char* label) {
  sve::VLGuard vl(8 * S::vlb);
  const lattice::Coordinate dims{8, 8, 8, 16};
  lattice::GridCartesian grid(dims, lattice::GridCartesian::default_simd_layout(S::Nsimd()));

  std::printf("--- %s: Nsimd = %u virtual nodes ---\n", label, S::Nsimd());
  std::printf("  lattice      %s\n", lattice::to_string(grid.fdimensions()).c_str());
  std::printf("  simd layout  %s\n", lattice::to_string(grid.simd_layout()).c_str());
  std::printf("  block/vnode  %s  (x %lld outer sites)\n",
              lattice::to_string(grid.rdimensions()).c_str(),
              static_cast<long long>(grid.osites()));

  // Ownership snapshot: which lane owns global site (x, 0, z, t)?
  if (S::Nsimd() > 1) {
    std::printf("  lane of site (0,0,z,t):\n      t\\z ");
    for (int z = 0; z < dims[2]; z += 2) std::printf("%2d ", z);
    std::printf("\n");
    for (int t = 0; t < dims[3]; t += 4) {
      std::printf("     %3d  ", t);
      for (int z = 0; z < dims[2]; z += 2)
        std::printf("%2u ", grid.inner_index({0, 0, z, t}));
      std::printf("\n");
    }
  }

  // Stencil statistics: of all (site, direction) hops, how many stay in
  // the same lanes and how many need the boundary permute.
  const lattice::Stencil st(&grid);
  long long plain = 0, permuted = 0;
  for (std::int64_t o = 0; o < grid.osites(); ++o)
    for (int dir = 0; dir < lattice::Stencil::num_dirs; ++dir)
      (st.entry(o, dir).permute == 0 ? plain : permuted)++;
  const double frac = 100.0 * static_cast<double>(permuted) /
                      static_cast<double>(plain + permuted);
  std::printf("  hops: %lld same-lane, %lld boundary-permute (%.1f%%)\n", plain, permuted,
              frac);
  for (int mu = 0; mu < lattice::Nd; ++mu)
    if (grid.permute_distance(mu) != 0)
      std::printf("    dim %d crossing -> lane XOR %u\n", mu, grid.permute_distance(mu));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== F1: Fig. 1 virtual-node decomposition, 8^3 x 16 sub-lattice ===\n\n");
  analyze<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("128-bit SVE (vComplexD)");
  analyze<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("256-bit SVE (vComplexD)");
  analyze<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("512-bit SVE (vComplexD)");
  analyze<simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>>("512-bit SVE (vComplexF)");
  std::printf("Neighbouring sites always live in different vectors (or reach across a\n"
              "block boundary via one stored permutation) -- the Fig. 1 property that\n"
              "makes the hopping term permute-free in the bulk.\n");
  return 0;
}
