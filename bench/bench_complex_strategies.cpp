// V1/V3 -- the Sec. V-C MultComplex functor and the Sec. V-E ablation:
// FCMLA backend vs the real-arithmetic alternative vs plain generic C++,
// at every framework vector length.  Reports wall time and the dynamic
// instruction count per functor application -- the paper's point is that
// the real-arithmetic path costs more instructions, while which one is
// *faster* is implementation-defined (here: simulator-defined).
#include <benchmark/benchmark.h>

#include "simd/simd.h"
#include "sve/sve.h"

namespace {

using namespace svelat;

template <typename S>
S make_simd(int tag) {
  S s = S::zero();
  for (unsigned i = 0; i < S::Nsimd(); ++i)
    s.set_lane(i, {0.25 * ((tag * 37 + static_cast<int>(i) * 11) % 19) - 2.0,
                   0.125 * ((tag * 53 + static_cast<int>(i) * 29) % 17) - 1.0});
  return s;
}

template <typename S>
void bench_mult_complex(benchmark::State& state) {
  sve::VLGuard vl(8 * S::vlb);
  const S a = make_simd<S>(1);
  const S b = make_simd<S>(2);
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    S c = a * b;
    benchmark::DoNotOptimize(c);
    ++iters;
  }
  const auto d = scope.delta();
  state.counters["insns/op"] =
      benchmark::Counter(static_cast<double>(d.total()) / static_cast<double>(iters));
  state.counters["permutes/op"] = benchmark::Counter(
      static_cast<double>(d[sve::InsnClass::kPermute]) / static_cast<double>(iters));
  state.SetItemsProcessed(static_cast<std::int64_t>(iters * S::Nsimd()));
}

template <typename S>
void bench_mac_complex(benchmark::State& state) {
  sve::VLGuard vl(8 * S::vlb);
  S acc = make_simd<S>(3);
  const S a = make_simd<S>(4);
  const S b = make_simd<S>(5);
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    acc.mac(a, b);
    benchmark::DoNotOptimize(acc);
    ++iters;
  }
  const auto d = scope.delta();
  state.counters["insns/op"] =
      benchmark::Counter(static_cast<double>(d.total()) / static_cast<double>(iters));
  state.SetItemsProcessed(static_cast<std::int64_t>(iters * S::Nsimd()));
}

template <typename S>
void bench_times_i(benchmark::State& state) {
  sve::VLGuard vl(8 * S::vlb);
  const S a = make_simd<S>(6);
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    S c = timesI(a);
    benchmark::DoNotOptimize(c);
    ++iters;
  }
  const auto d = scope.delta();
  state.counters["insns/op"] =
      benchmark::Counter(static_cast<double>(d.total()) / static_cast<double>(iters));
  state.SetItemsProcessed(static_cast<std::int64_t>(iters * S::Nsimd()));
}

using D128F = simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>;
using D256F = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using D512F = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using D128R = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
using D256R = simd::SimdComplex<double, simd::kVLB256, simd::SveReal>;
using D512R = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
using D512G = simd::SimdComplex<double, simd::kVLB512, simd::Generic>;
using F512F = simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>;
using F512R = simd::SimdComplex<float, simd::kVLB512, simd::SveReal>;

}  // namespace

BENCHMARK(bench_mult_complex<D128F>)->Name("MultComplex/fcmla/128");
BENCHMARK(bench_mult_complex<D256F>)->Name("MultComplex/fcmla/256");
BENCHMARK(bench_mult_complex<D512F>)->Name("MultComplex/fcmla/512");
BENCHMARK(bench_mult_complex<D128R>)->Name("MultComplex/real/128");
BENCHMARK(bench_mult_complex<D256R>)->Name("MultComplex/real/256");
BENCHMARK(bench_mult_complex<D512R>)->Name("MultComplex/real/512");
BENCHMARK(bench_mult_complex<D512G>)->Name("MultComplex/generic/512");
BENCHMARK(bench_mult_complex<F512F>)->Name("MultComplex/fcmla/512f");
BENCHMARK(bench_mult_complex<F512R>)->Name("MultComplex/real/512f");

BENCHMARK(bench_mac_complex<D512F>)->Name("MacComplex/fcmla/512");
BENCHMARK(bench_mac_complex<D512R>)->Name("MacComplex/real/512");
BENCHMARK(bench_mac_complex<D512G>)->Name("MacComplex/generic/512");

BENCHMARK(bench_times_i<D512F>)->Name("TimesI/fcmla/512");
BENCHMARK(bench_times_i<D512R>)->Name("TimesI/real/512");
BENCHMARK(bench_times_i<D512G>)->Name("TimesI/generic/512");

BENCHMARK_MAIN();
