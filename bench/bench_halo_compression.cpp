// E3 -- fp16 halo-exchange compression (paper Sec. V-B): pack -> compress
// -> exchange -> decompress throughput per compression mode, plus the
// precision-conversion kernels in isolation.
#include <benchmark/benchmark.h>

#include "core/svelat.h"

namespace {

using namespace svelat;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;

struct HaloSetup {
  HaloSetup()
      : grid({8, 8, 8, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        psi(&grid) {
    sve::set_vector_length(512);
    gaussian_fill(SiteRNG(33), psi);
  }
  lattice::GridCartesian grid;
  qcd::LatticeFermion<S> psi;
};

HaloSetup& setup() {
  static HaloSetup s;
  return s;
}

void bench_exchange(benchmark::State& state, comms::Compression mode) {
  sve::set_vector_length(512);
  auto& s = setup();
  comms::SimCommunicator comm(2);
  std::size_t wire = 0, payload = 0;
  for (auto _ : state) {
    const auto received = comms::exchange_face(comm, s.psi, 3, 0, mode, 0, 1, &wire);
    benchmark::DoNotOptimize(received.data());
    payload += received.size() * sizeof(double);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(payload));
  state.counters["wire_bytes"] = benchmark::Counter(static_cast<double>(wire));
  state.counters["compression"] = benchmark::Counter(
      static_cast<double>(setup().grid.gsites() / 8 * qcd::Ns * qcd::Nc * 2 *
                          sizeof(double)) /
      static_cast<double>(wire));
}

void bench_narrow_f64_f16(benchmark::State& state) {
  sve::set_vector_length(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 12288;
  AlignedVector<double> in(n);
  AlignedVector<half> out(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = 0.001 * static_cast<double>(i) - 5.0;
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    comms::narrow_f64_f16(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(iters * n * sizeof(double)));
  state.counters["insns/elem"] = benchmark::Counter(
      static_cast<double>(scope.delta().total()) / static_cast<double>(iters * n));
}

void bench_widen_f16_f64(benchmark::State& state) {
  sve::set_vector_length(static_cast<unsigned>(state.range(0)));
  const std::size_t n = 12288;
  AlignedVector<half> in(n);
  AlignedVector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = half(0.01f * static_cast<float>(i % 100));
  std::size_t iters = 0;
  for (auto _ : state) {
    comms::widen_f16_f64(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
    ++iters;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(iters * n * sizeof(double)));
}

}  // namespace

BENCHMARK_CAPTURE(bench_exchange, none, comms::Compression::kNone)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bench_exchange, f32, comms::Compression::kF32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bench_exchange, f16, comms::Compression::kF16)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(bench_narrow_f64_f16)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(bench_widen_f16_f64)->Arg(128)->Arg(512)->Arg(2048);

BENCHMARK_MAIN();
