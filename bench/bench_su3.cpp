// E4 (supporting) -- SU(3) matrix-matrix multiply throughput: the "key
// computational pattern" of LQCD beyond the Dslash (Grid ships the same
// measurement as Benchmark_su3).  Each site multiply is 9 complex
// mac-chains of depth 3 = 198 flop per site per lane.
#include <benchmark/benchmark.h>

#include "core/svelat.h"
#include "lattice/local_ops.h"

namespace {

using namespace svelat;

constexpr double kSu3FlopsPerSite = 198.0;  // 9 entries x (3 cmul + 2 cadd) x 6/2

template <typename S>
void bench_su3_mm(benchmark::State& state) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  using Field = lattice::Lattice<qcd::ColourMatrix<S>>;
  Field a(&grid), b(&grid), c(&grid);
  uniform_fill(SiteRNG(1), a, -1.0, 1.0);
  uniform_fill(SiteRNG(2), b, -1.0, 1.0);

  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    lattice::local_mult(c, a, b);
    benchmark::DoNotOptimize(c[0]);
    ++iters;
  }
  const double sites = static_cast<double>(grid.gsites()) * static_cast<double>(iters);
  state.counters["Mflop/s"] =
      benchmark::Counter(kSu3FlopsPerSite * sites / 1e6, benchmark::Counter::kIsRate);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(scope.delta().total()) / sites);
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

using D128F = simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>;
using D256F = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using D512F = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using D512R = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
using D512G = simd::SimdComplex<double, simd::kVLB512, simd::Generic>;
using F512F = simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>;

}  // namespace

BENCHMARK(bench_su3_mm<D128F>)->Name("Su3MM/fcmla/128")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_su3_mm<D256F>)->Name("Su3MM/fcmla/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_su3_mm<D512F>)->Name("Su3MM/fcmla/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_su3_mm<D512R>)->Name("Su3MM/real/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_su3_mm<D512G>)->Name("Su3MM/generic/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_su3_mm<F512F>)->Name("Su3MM/fcmla/512f")->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
