// E1 -- Wilson hopping-term (Eq. 1) throughput: the Benchmark_dslash
// analogue for this framework.  Reports the conventional 1320 flop/site
// rate (simulated wall-clock) and the dynamic instruction count per site
// for every vector length and backend.  The architecture-level shape to
// verify: instructions/site halve as the vector doubles; the FCMLA
// backend needs fewer instructions than the real-arithmetic alternative.
#include <benchmark/benchmark.h>

#include "core/svelat.h"

namespace {

using namespace svelat;

template <typename S>
struct DslashSetup {
  DslashSetup()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        dirac((qcd::random_gauge(SiteRNG(2018), gauge), gauge), 0.0),
        in(&grid),
        out(&grid) {
    gaussian_fill(SiteRNG(5), in);
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
  qcd::WilsonDirac<S> dirac;
  qcd::LatticeFermion<S> in, out;
};

template <typename S>
void bench_dhop(benchmark::State& state) {
  DslashSetup<S> setup;
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    setup.dirac.dhop(setup.in, setup.out);
    benchmark::DoNotOptimize(setup.out[0]);
    ++iters;
  }
  const auto d = scope.delta();
  const double sites = static_cast<double>(setup.grid.gsites()) * static_cast<double>(iters);
  state.counters["Mflop/s"] = benchmark::Counter(
      qcd::kDhopFlopsPerSite * sites / 1e6, benchmark::Counter::kIsRate);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(d.total()) / sites);
  state.counters["fcmla/site"] =
      benchmark::Counter(static_cast<double>(d[sve::InsnClass::kFCmla]) / sites);
  state.counters["perm/site"] =
      benchmark::Counter(static_cast<double>(d[sve::InsnClass::kPermute]) / sites);
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

// Parity-restricted hopping kernel on half-checkerboard fields: one
// application writes V/2 sites from V/2-site operands.  insns/site stays
// at the full-dhop level (same shared site arithmetic); insns/apply --
// and with it the traffic of one Schur Mhat -- halves relative to the
// zero-padded full-lattice application.
template <typename S>
void bench_dhop_eo(benchmark::State& state) {
  DslashSetup<S> setup;
  const qcd::WilsonDiracEO<S> eo(setup.gauge, 0.0);
  qcd::HalfLatticeFermion<S> in_o(eo.odd_grid()), out_e(eo.even_grid());
  lattice::pick_checkerboard(setup.in, in_o);
  sve::CounterScope scope;
  std::size_t iters = 0;
  for (auto _ : state) {
    eo.dhop_eo(in_o, out_e);
    benchmark::DoNotOptimize(out_e[0]);
    ++iters;
  }
  const auto d = scope.delta();
  const double sites =
      static_cast<double>(eo.even_grid()->gsites()) * static_cast<double>(iters);
  state.counters["Mflop/s"] = benchmark::Counter(
      qcd::kDhopFlopsPerSite * sites / 1e6, benchmark::Counter::kIsRate);
  state.counters["insns/site"] =
      benchmark::Counter(static_cast<double>(d.total()) / sites);
  state.counters["insns/apply"] =
      benchmark::Counter(static_cast<double>(d.total()) / static_cast<double>(iters));
  state.SetItemsProcessed(static_cast<std::int64_t>(sites));
}

using D128G = simd::SimdComplex<double, simd::kVLB128, simd::Generic>;
using D256G = simd::SimdComplex<double, simd::kVLB256, simd::Generic>;
using D512G = simd::SimdComplex<double, simd::kVLB512, simd::Generic>;
using D128F = simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>;
using D256F = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using D512F = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using D128R = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
using D256R = simd::SimdComplex<double, simd::kVLB256, simd::SveReal>;
using D512R = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
using F512F = simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>;

}  // namespace

BENCHMARK(bench_dhop<D128G>)->Name("Dhop/generic/128")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D256G>)->Name("Dhop/generic/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D512G>)->Name("Dhop/generic/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D128F>)->Name("Dhop/fcmla/128")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D256F>)->Name("Dhop/fcmla/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D512F>)->Name("Dhop/fcmla/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D128R>)->Name("Dhop/real/128")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D256R>)->Name("Dhop/real/256")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<D512R>)->Name("Dhop/real/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop<F512F>)->Name("Dhop/fcmla/512f")->Unit(benchmark::kMillisecond);

BENCHMARK(bench_dhop_eo<D128G>)
    ->Name("DhopEO/generic/128")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_eo<D512G>)
    ->Name("DhopEO/generic/512")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_eo<D128F>)->Name("DhopEO/fcmla/128")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_eo<D512F>)->Name("DhopEO/fcmla/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_eo<D512R>)->Name("DhopEO/real/512")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_dhop_eo<F512F>)->Name("DhopEO/fcmla/512f")->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
