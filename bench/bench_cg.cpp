// E2 -- CG time-to-solution (the paper's Sec. II-A motivation: iterative
// solvers dominate LQCD runtime).  Solves M x = b through the
// WilsonSolver facade on a random gauge background for every vector
// length and backend; verifies the iteration count is layout-independent
// and reports simulated Dslash throughput.
//
// Second section: the production half-checkerboard Schur path (facade
// defaults) against the zero-padded even-odd formulation.  The padded
// path is now a test-only oracle (tests/qcd/padded_oracle.h), so its
// per-iteration instruction cost enters as the checked-in baseline
// measurement (bench/baseline.json, PR 2) rather than a live run; the
// counters are simulated and deterministic, so the comparison is exact as
// long as the shared dhop kernels are unchanged.  The half path must stay
// <= 55% of the padded baseline's dynamic instructions per CG iteration
// -- the acceptance gate of the half-checkerboard refactor, enforced by
// the exit code.  A second gate checks the Schur solution against the
// unpreconditioned facade solve (drift here means a correctness bug, not
// a perf one).
//
// `--json` prints a machine-readable summary (consumed by CI artifacts
// and bench/baseline.json) instead of the human tables; it includes the
// SolverParams each section ran with.
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "core/svelat.h"
#include "support/metrics.h"

namespace {

using namespace svelat;

struct Row {
  unsigned vl;
  const char* backend;
  int iterations;
  double seconds;
  double true_residual;
  double mflops;
};

/// Facade params of the full-lattice CG section (algorithm comparison
/// baseline: unpreconditioned normal equations).
solver::SolverParams full_cg_params() {
  return solver::SolverParams{}
      .with_preconditioner(solver::Preconditioner::kNone)
      .with_tolerance(1e-8)
      .with_max_iterations(1000);
}

/// Facade params of the Schur section: production defaults at the bench
/// tolerance.
solver::SolverParams schur_params() {
  return solver::SolverParams{}.with_tolerance(1e-8).with_max_iterations(1000);
}

template <typename S>
Row run(const char* backend) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(6), b);
  x.set_zero();

  solver::WilsonSolver<S> solver(gauge, 0.2, full_cg_params());
  StopWatch sw;
  const auto stats = solver.solve(b, x);
  const double secs = sw.seconds();
  const double flops = 2.0 * qcd::kDhopFlopsPerSite *
                       static_cast<double>(grid.gsites()) * stats.iterations;
  return {static_cast<unsigned>(8 * S::vlb), backend, stats.iterations, secs,
          stats.true_residual, flops / 1e6 / secs};
}

/// Per-iteration instruction cost of the zero-padded Schur CG, measured
/// live in PR 2.  The padded implementation itself is a test-only oracle
/// now; these constants are its frozen cost on this 4^3 x 8 / mass 0.2 /
/// tol 1e-8 workload.  KEEP IN SYNC with bench/baseline.json
/// (bench_cg.schur_half_vs_padded[].padded_insns_per_iter /
/// padded_iterations) -- that file is regenerated *from* this binary's
/// --json output, so these constants are the source of truth.  The
/// per-iteration ratio is only a total-cost ratio while the live half
/// path still needs the same 17 iterations; the iterations gate below
/// enforces that premise.
struct PaddedBaseline {
  unsigned vl;
  double insns_per_iter;
  int iterations;
};
constexpr PaddedBaseline kPaddedBaseline[] = {
    {128, 7236245.4, 17},
    {512, 1878657.6, 17},
};

struct SchurComparison {
  unsigned vl;
  int padded_iterations;       ///< from the checked-in baseline
  int half_iterations;
  double padded_insns_per_iter;  ///< from the checked-in baseline
  double half_insns_per_iter;
  double ratio;           ///< half / padded dynamic instructions per iteration
  double solution_delta;  ///< |x_schur - x_full|^2 / |x_full|^2
};

/// Half-checkerboard Schur CG through the facade vs the padded baseline,
/// at one vector length.
template <typename S>
SchurComparison run_schur_comparison(const PaddedBaseline& baseline) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x_full(&grid), x_half(&grid);
  gaussian_fill(SiteRNG(6), b);
  x_full.set_zero();
  x_half.set_zero();

  SchurComparison c{};
  c.vl = static_cast<unsigned>(8 * S::vlb);
  c.padded_insns_per_iter = baseline.insns_per_iter;
  c.padded_iterations = baseline.iterations;
  {
    solver::WilsonSolver<S> schur(gauge, 0.2, schur_params());
    sve::CounterScope scope;
    const auto stats = schur.solve(b, x_half);
    c.half_iterations = stats.iterations;
    c.half_insns_per_iter =
        static_cast<double>(scope.delta().total()) / stats.iterations;
  }
  {
    solver::WilsonSolver<S> full(gauge, 0.2, full_cg_params());
    (void)full.solve(b, x_full);
  }
  c.ratio = c.half_insns_per_iter / c.padded_insns_per_iter;
  c.solution_delta = norm2(x_half - x_full) / norm2(x_full);
  return c;
}

// ===== multi-RHS block engine (WilsonSolver::solve_batched) ===============
//
// Third section: 12 right-hand sides against one gauge configuration --
// the propagator workload -- sequential facade solves vs ONE batched
// block solve, fixed work on both paths (tolerance 0, a hard iteration
// cap).  What the engine saves is MEMORY TRAFFIC: the batched sweep
// loads each gauge link once for all 12 columns (qcd/block.h's
// N*216+144 vs N*(216+144) reals per site, a 1.58x reduction at N=12).
//
// GATES (all deterministic, identical across machines and metrics
// on/off builds, per this repo's "wall clock is never gated" invariant):
//  - traffic amortization: the byte model's sequential/batched
//    bytes-per-column ratio must stay >= 1.5 -- the contract that the
//    kernel shares link loads across columns (a kernel change that
//    re-streams links per column must update the model and trips this);
//  - per-column solutions eps-equal to sequential (< 1e-12 relative);
//  - a width-1 batch bitwise equal to the facade solve.
//
// The wall-clock comparison itself (solves/s both paths, speedup, GB/s
// by width) is OBSERVABILITY, printed inside the stripped `wall_clock`
// JSON object.  On this instruction-interpreting single-core simulator
// batched measures ~0.9-1.0x sequential: every per-column arithmetic op
// is interpreted identically (the bitwise contract) and one simulated
// core is nowhere near bandwidth-bound, so saved DRAM traffic buys no
// simulated time.  On real bandwidth-bound multi-core hardware the
// 1.58x traffic reduction is what converts to the >= 1.5x solves/s
// regime the engine targets.

struct MultiRhsWidthRow {
  int width;
  double gb_per_sec;        ///< batched dhop wall-clock rate (modelled bytes)
  double bytes_per_column;  ///< modelled bytes per column per Mhat application
};

struct MultiRhsSection {
  int columns = 0;
  int iterations = 0;  ///< fixed per-column iteration count (both paths)
  double seq_seconds = 0.0;
  double batched_seconds = 0.0;
  double seq_solves_per_sec = 0.0;
  double batched_solves_per_sec = 0.0;
  double speedup = 0.0;        ///< seq_seconds / batched_seconds
  double max_column_delta = 0.0;  ///< worst |x_b - x_s|^2 / |x_s|^2
  // Deterministic byte model per column per Mhat application
  // (block_dhop_reals_per_site; independent of metrics and machine).
  double seq_bytes_per_column = 0.0;
  double batched_bytes_per_column = 0.0;
  double traffic_amortization = 0.0;  ///< seq / batched modelled bytes
  bool n1_bitwise = false;
  MultiRhsWidthRow widths[3] = {};
};

/// Fixed-work params of the multi-RHS comparison: tolerance 0 never
/// converges, so both paths run exactly `iters` CG iterations per column.
solver::SolverParams multi_rhs_params(int iters) {
  return solver::SolverParams{}.with_tolerance(0.0).with_max_iterations(iters);
}

/// Batched dhop throughput at one block width: repeated Mhat sweeps over
/// a DRAM-resident block field, rated by the dhop_*_block regions'
/// amortized byte model.  Resets the metrics registry around itself.
template <typename S, int N>
MultiRhsWidthRow measure_block_dhop_width(const qcd::SchurEvenOddWilson<S>& eo) {
  qcd::BlockSchurEvenOddWilson<S, N> beo(eo);
  qcd::HalfBlockFermion<S, N> in(eo.even_grid()), out(eo.even_grid());
  {
    qcd::HalfLatticeFermion<S> tmp(eo.even_grid());
    for (int j = 0; j < N; ++j) {
      gaussian_fill(SiteRNG(60 + static_cast<unsigned>(j)), tmp);
      in.copy_in_column(j, tmp);
    }
  }
  beo.mhat(in, out);  // warm-up: page faults, stencil tables
  metrics::reset();
  constexpr int kReps = 3;
  for (int r = 0; r < kReps; ++r) beo.mhat(in, out);
  const metrics::RegionStats oe = metrics::get("dhop_oe_block");
  const metrics::RegionStats ec = metrics::get("dhop_eo_block");
  metrics::reset();
  const double bytes = oe.bytes + ec.bytes;
  const double secs = oe.seconds + ec.seconds;
  return {N, secs > 0.0 ? bytes / secs / 1e9 : 0.0, bytes / (kReps * N)};
}

/// Width-1 batched solve vs the facade solve, small lattice: the
/// sequential-delegation contract is BITWISE, checked in the bench so the
/// perf gate can never drift away from the correctness one.
template <typename S>
bool check_n1_bitwise() {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  std::vector<qcd::LatticeFermion<S>> b(1, qcd::LatticeFermion<S>(&grid));
  std::vector<qcd::LatticeFermion<S>> xb(1, qcd::LatticeFermion<S>(&grid));
  qcd::LatticeFermion<S> xs(&grid);
  gaussian_fill(SiteRNG(6), b[0]);
  xb[0].set_zero();
  xs.set_zero();
  solver::WilsonSolver<S> batched(gauge, 0.2, schur_params());
  solver::WilsonSolver<S> sequential(gauge, 0.2, schur_params());
  const auto rb = batched.solve_batched(b, xb)[0];
  const auto rs = sequential.solve(b[0], xs);
  return rb.iterations == rs.iterations && rb.final_residual == rs.final_residual &&
         rb.true_residual == rs.true_residual && norm2(xb[0] - xs) == 0.0;
}

template <typename S>
MultiRhsSection run_multi_rhs() {
  MultiRhsSection m;
  constexpr int kCols = solver::WilsonSolver<S>::kBlockWidth;
  constexpr int kIters = 8;
  m.columns = kCols;
  {
    sve::VLGuard vl(8 * S::vlb);
    lattice::GridCartesian grid(
        {12, 12, 12, 24}, lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    // Deterministic traffic model for the gate: one Mhat application is two
    // half-volume sweeps of block_dhop_reals_per_site(N) reals each.
    const double half_sites = 12.0 * 12.0 * 12.0 * 24.0 / 2.0;
    m.seq_bytes_per_column =
        2.0 * half_sites * qcd::block_dhop_reals_per_site(1) * sizeof(double);
    m.batched_bytes_per_column = 2.0 * half_sites *
                                 qcd::block_dhop_reals_per_site(kCols) *
                                 sizeof(double) / kCols;
    m.traffic_amortization = m.seq_bytes_per_column / m.batched_bytes_per_column;
    qcd::GaugeField<S> gauge(&grid);
    qcd::random_gauge(SiteRNG(2018), gauge);
    std::vector<qcd::LatticeFermion<S>> b, xs, xb;
    for (int j = 0; j < kCols; ++j) {
      b.emplace_back(&grid);
      gaussian_fill(SiteRNG(40 + static_cast<unsigned>(j)), b.back());
      xs.emplace_back(&grid);
      xs.back().set_zero();
      xb.emplace_back(&grid);
      xb.back().set_zero();
    }
    {
      solver::SolverParams sp = multi_rhs_params(kIters);
      sp.block_width = 1;  // force the per-column sequential facade path
      solver::WilsonSolver<S> seq(gauge, 0.2, sp);
      StopWatch sw;
      const auto rs = seq.solve_batched(b, xs);
      m.seq_seconds = sw.seconds();
      m.iterations = rs[0].iterations;
    }
    {
      solver::WilsonSolver<S> bat(gauge, 0.2, multi_rhs_params(kIters));
      StopWatch sw;
      (void)bat.solve_batched(b, xb);
      m.batched_seconds = sw.seconds();
    }
    m.seq_solves_per_sec = kCols / m.seq_seconds;
    m.batched_solves_per_sec = kCols / m.batched_seconds;
    m.speedup = m.seq_seconds / m.batched_seconds;
    for (int j = 0; j < kCols; ++j) {
      const auto u = static_cast<std::size_t>(j);
      const double d = norm2(xb[u] - xs[u]) / norm2(xs[u]);
      if (d > m.max_column_delta) m.max_column_delta = d;
    }
  }
  {
    // Width sweep on a smaller (still DRAM-resident) volume: how the
    // amortization curve N*216+144 converts to measured GB/s.
    sve::VLGuard vl(8 * S::vlb);
    lattice::GridCartesian grid(
        {12, 12, 12, 24}, lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    qcd::GaugeField<S> gauge(&grid);
    qcd::random_gauge(SiteRNG(2018), gauge);
    const qcd::SchurEvenOddWilson<S> eo(gauge, 0.2);
    m.widths[0] = measure_block_dhop_width<S, 1>(eo);
    m.widths[1] = measure_block_dhop_width<S, 4>(eo);
    m.widths[2] = measure_block_dhop_width<S, 12>(eo);
  }
  m.n1_bitwise = check_n1_bitwise<S>();
  return m;
}

/// Combined wall-clock rates of a set of metrics regions (bytes, flops
/// and seconds summed before dividing).
void combined_rates(std::initializer_list<const char*> regions, double* gb,
                    double* gflop) {
  double bytes = 0.0, flops = 0.0, seconds = 0.0;
  for (const char* name : regions) {
    const metrics::RegionStats s = metrics::get(name);
    bytes += s.bytes;
    flops += s.flops;
    seconds += s.seconds;
  }
  *gb = seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
  *gflop = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

/// The `wall_clock` JSON section: REAL elapsed time over every solve of
/// the sections ABOVE the multi-RHS one, with GB/s / GFLOP/s from the
/// metrics byte/flop models (support/metrics.h).  Machine-dependent by
/// nature -- reported for observability, never gated and never baselined
/// (the instruction gates above are the only acceptance criteria).
/// Zeros in SVELAT_METRICS_DISABLED builds or under SVELAT_METRICS=0.
/// Captured into a struct BEFORE the multi-RHS section runs, because
/// that section resets the metrics registry for its own rates.
struct WallClockStats {
  metrics::RegionStats solve;
  double dhop_gb = 0.0, dhop_gflop = 0.0;
  double linalg_gb = 0.0, linalg_gflop = 0.0;
  std::string report;  ///< human-readable metrics::report() snapshot
};

WallClockStats capture_wall_clock() {
  WallClockStats w;
  w.solve = metrics::get("solve");
  combined_rates({"dhop", "dhop_eo", "dhop_oe"}, &w.dhop_gb, &w.dhop_gflop);
  combined_rates({"cg_linalg", "bicgstab_linalg"}, &w.linalg_gb, &w.linalg_gflop);
  w.report = metrics::report();
  return w;
}

/// CI's metrics-determinism lane strips everything from the `"wall_clock"`
/// line through the `"solver_linalg"` line before diffing metrics-on vs
/// metrics-off outputs, so EVERY machine- or build-dependent number (all
/// timing, including the multi-RHS comparison and width GB/s rows) must be
/// printed inside that range; the main JSON body must stay bitwise
/// build-invariant.
void print_wall_clock_json(const WallClockStats& w, const MultiRhsSection& m) {
  std::printf(
      "  \"wall_clock\": {\"solves\": %llu, \"seconds\": %.4f, "
      "\"solves_per_sec\": %.4f,\n"
      "    \"dhop\": {\"gb_per_sec\": %.4f, \"gflop_per_sec\": %.4f},\n",
      static_cast<unsigned long long>(w.solve.calls), w.solve.seconds,
      w.solve.calls_per_sec(), w.dhop_gb, w.dhop_gflop);
  std::printf(
      "    \"multi_rhs\": {\"sequential\": {\"seconds\": %.3f, "
      "\"solves_per_sec\": %.4f},\n"
      "      \"batched\": {\"seconds\": %.3f, \"solves_per_sec\": %.4f}, "
      "\"speedup\": %.4f,\n"
      "      \"dhop_widths\": [",
      m.seq_seconds, m.seq_solves_per_sec, m.batched_seconds,
      m.batched_solves_per_sec, m.speedup);
  for (std::size_t i = 0; i < std::size(m.widths); ++i)
    std::printf("{\"width\": %d, \"gb_per_sec\": %.4f}%s", m.widths[i].width,
                m.widths[i].gb_per_sec,
                i + 1 < std::size(m.widths) ? ", " : "");
  std::printf(
      "]},\n"
      "    \"solver_linalg\": {\"gb_per_sec\": %.4f, \"gflop_per_sec\": %.4f}},\n",
      w.linalg_gb, w.linalg_gflop);
}

void print_params_json(const solver::SolverParams& p) {
  std::printf("{\"algorithm\": \"%s\", \"preconditioner\": \"%s\", "
              "\"tolerance\": %g, \"max_iterations\": %d}",
              solver::to_string(p.algorithm), solver::to_string(p.preconditioner),
              p.tolerance, p.max_iterations);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;

  Row rows[] = {
      run<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>("sve-real"),
  };
  const SchurComparison schur[] = {
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>(
          kPaddedBaseline[0]),
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>(
          kPaddedBaseline[1]),
  };
  // Wall-clock stats of the sections above, captured BEFORE the multi-RHS
  // section resets the metrics registry for its own width measurements.
  const WallClockStats wall = capture_wall_clock();
  const MultiRhsSection multi =
      run_multi_rhs<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>();

  bool same_iters = true;
  for (const auto& r : rows)
    same_iters = same_iters && (r.iterations == rows[0].iterations);
  // Three independent gates: the instruction-ratio target of the
  // half-checkerboard refactor; the live half-path iteration count still
  // matching the frozen padded baseline's (otherwise a per-iteration
  // ratio no longer measures total solve cost); and agreement of the
  // preconditioned and unpreconditioned solutions.  Both solves run at
  // tol 1e-8, so the squared relative solution difference sits well
  // below 1e-12.
  bool ratio_gate = true, iters_match = true, solutions_agree = true;
  for (const auto& c : schur) {
    ratio_gate = ratio_gate && c.ratio <= 0.55;
    iters_match = iters_match && c.half_iterations == c.padded_iterations;
    solutions_agree = solutions_agree && c.solution_delta < 1e-12;
  }
  // Multi-RHS gates (deterministic; see the section comment): the byte
  // model's traffic amortization must hold the >= 1.5x the engine was
  // built for, per-column solutions must track sequential to rounding,
  // and width-1 batches must delegate bitwise.  Wall clock is reported
  // but never gated.
  const bool multi_traffic = multi.traffic_amortization >= 1.5;
  const bool multi_columns_agree = multi.max_column_delta < 1e-12;
  const bool multi_ok = multi_traffic && multi_columns_agree && multi.n1_bitwise;

  if (json) {
    std::printf("{\n  \"benchmark\": \"bench_cg\",\n  \"lattice\": [4, 4, 4, 8],\n");
    std::printf("  \"full_cg_params\": ");
    print_params_json(full_cg_params());
    std::printf(",\n  \"full_cg\": [\n");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
      const auto& r = rows[i];
      std::printf("    {\"vl\": %u, \"backend\": \"%s\", \"iterations\": %d, "
                  "\"true_residual\": %.17g}%s\n",
                  r.vl, r.backend, r.iterations, r.true_residual,
                  i + 1 < std::size(rows) ? "," : "");
    }
    std::printf("  ],\n  \"schur_params\": ");
    print_params_json(schur_params());
    std::printf(",\n  \"schur_half_vs_padded\": [\n");
    for (std::size_t i = 0; i < std::size(schur); ++i) {
      const auto& c = schur[i];
      std::printf("    {\"vl\": %u, \"padded_insns_per_iter\": %.1f, "
                  "\"half_insns_per_iter\": %.1f, \"ratio\": %.4f, "
                  "\"padded_iterations\": %d, \"half_iterations\": %d, "
                  "\"solution_delta\": %.3g}%s\n",
                  c.vl, c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                  c.padded_iterations, c.half_iterations, c.solution_delta,
                  i + 1 < std::size(schur) ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"multi_rhs\": {\"lattice\": [12, 12, 12, 24], \"columns\": %d, "
        "\"iterations_per_column\": %d,\n"
        "    \"max_column_delta\": %.3g, \"n1_bitwise\": %s,\n"
        "    \"bytes_per_column\": {\"sequential\": %.0f, \"batched\": %.0f, "
        "\"traffic_amortization\": %.4f}},\n",
        multi.columns, multi.iterations, multi.max_column_delta,
        multi.n1_bitwise ? "true" : "false", multi.seq_bytes_per_column,
        multi.batched_bytes_per_column, multi.traffic_amortization);
    print_wall_clock_json(wall, multi);
    std::printf("  \"iterations_layout_independent\": %s,\n"
                "  \"schur_half_gate_055\": %s,\n"
                "  \"schur_iterations_match_baseline\": %s,\n"
                "  \"schur_solutions_agree\": %s,\n"
                "  \"multi_rhs_traffic_amortized\": %s,\n"
                "  \"multi_rhs_columns_agree\": %s,\n"
                "  \"multi_rhs_n1_bitwise\": %s\n}\n",
                same_iters ? "true" : "false", ratio_gate ? "true" : "false",
                iters_match ? "true" : "false", solutions_agree ? "true" : "false",
                multi_traffic ? "true" : "false",
                multi_columns_agree ? "true" : "false",
                multi.n1_bitwise ? "true" : "false");
    return (same_iters && ratio_gate && iters_match && solutions_agree && multi_ok)
               ? 0
               : 1;
  }

  std::printf("=== E2: CG on the Wilson operator, 4^3 x 8, mass 0.2, tol 1e-8 ===\n\n");
  std::printf("  %-6s %-10s %6s %9s %14s %12s\n", "VL", "backend", "iters", "wall s",
              "true resid", "sim MFlop/s");
  for (const auto& r : rows) {
    std::printf("  %-6u %-10s %6d %9.2f %14.3e %12.1f\n", r.vl, r.backend, r.iterations,
                r.seconds, r.true_residual, r.mflops);
  }
  std::printf("\niteration count layout-independent: %s\n", same_iters ? "yes" : "NO");

  std::printf("\n=== Schur CG (WilsonSolver defaults) vs zero-padded baseline ===\n\n");
  std::printf("  %-6s %16s %16s %8s %9s %12s\n", "VL", "padded insn/it",
              "half insn/it", "ratio", "iters", "soln delta");
  for (const auto& c : schur) {
    std::printf("  %-6u %16.0f %16.0f %8.3f %4d/%-4d %12.3g\n", c.vl,
                c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                c.padded_iterations, c.half_iterations, c.solution_delta);
  }
  std::printf("\nhalf-checkerboard <= 55%% of padded instructions/iteration: %s\n",
              ratio_gate ? "yes" : "NO");
  std::printf("half-path iteration count matches padded baseline: %s\n",
              iters_match ? "yes" : "NO");
  std::printf("Schur and unpreconditioned solutions agree (< 1e-12): %s\n",
              solutions_agree ? "yes" : "NO");

  std::printf("\n=== multi-RHS block engine, 12^3 x 24, 12 columns, 8 fixed "
              "iterations ===\n\n");
  std::printf("  modelled dhop traffic: %.0f bytes/column sequential, "
              "%.0f batched (%.3fx amortized)\n",
              multi.seq_bytes_per_column, multi.batched_bytes_per_column,
              multi.traffic_amortization);
  std::printf("  sequential: %6.2f s  (%.3f solves/s)\n", multi.seq_seconds,
              multi.seq_solves_per_sec);
  std::printf("  batched:    %6.2f s  (%.3f solves/s)\n", multi.batched_seconds,
              multi.batched_solves_per_sec);
  std::printf("  speedup: %.3fx (observability only -- this simulator is "
              "compute-bound, see bench source)\n"
              "  worst column delta: %.3g\n", multi.speedup,
              multi.max_column_delta);
  std::printf("\n  batched dhop by width (12^3 x 24):\n");
  std::printf("  %-6s %12s %18s\n", "width", "GB/s", "bytes/column");
  for (const auto& wr : multi.widths)
    std::printf("  %-6d %12.2f %18.0f\n", wr.width, wr.gb_per_sec,
                wr.bytes_per_column);
  std::printf("\nmodelled traffic amortization >= 1.5x: %s\n",
              multi_traffic ? "yes" : "NO");
  std::printf("per-column solutions track sequential (< 1e-12): %s\n",
              multi_columns_agree ? "yes" : "NO");
  std::printf("width-1 batch bitwise equals facade solve: %s\n",
              multi.n1_bitwise ? "yes" : "NO");

  // Wall-clock observability (machine-dependent, never gated; captured
  // before the multi-RHS section reset the registry).
  std::printf("\n=== wall clock (this machine; not a gate) ===\n\n%s",
              wall.report.c_str());

  return (same_iters && ratio_gate && iters_match && solutions_agree && multi_ok)
             ? 0
             : 1;
}
