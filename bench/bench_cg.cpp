// E2 -- CG time-to-solution (the paper's Sec. II-A motivation: iterative
// solvers dominate LQCD runtime).  Solves M x = b on a random gauge
// background for every vector length and backend; verifies the iteration
// count is layout-independent and reports simulated Dslash throughput.
#include <cstdio>

#include "core/svelat.h"

namespace {

using namespace svelat;

struct Row {
  unsigned vl;
  const char* backend;
  int iterations;
  double seconds;
  double true_residual;
  double mflops;
};

template <typename S>
Row run(const char* backend) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(6), b);
  x.set_zero();

  const qcd::WilsonDirac<S> dirac(gauge, 0.2);
  StopWatch sw;
  const auto stats = solver::solve_wilson(dirac, b, x, 1e-8, 1000);
  const double secs = sw.seconds();
  const double flops =
      2.0 * qcd::kDhopFlopsPerSite * static_cast<double>(grid.gsites()) * stats.iterations;
  return {static_cast<unsigned>(8 * S::vlb), backend, stats.iterations, secs,
          stats.true_residual, flops / 1e6 / secs};
}

}  // namespace

int main() {
  std::printf("=== E2: CG on the Wilson operator, 4^3 x 8, mass 0.2, tol 1e-8 ===\n\n");
  std::printf("  %-6s %-10s %6s %9s %14s %12s\n", "VL", "backend", "iters", "wall s",
              "true resid", "sim MFlop/s");

  Row rows[] = {
      run<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>("sve-real"),
  };

  bool same_iters = true;
  for (const auto& r : rows) {
    std::printf("  %-6u %-10s %6d %9.2f %14.3e %12.1f\n", r.vl, r.backend, r.iterations,
                r.seconds, r.true_residual, r.mflops);
    same_iters = same_iters && (r.iterations == rows[0].iterations);
  }
  std::printf("\niteration count layout-independent: %s\n", same_iters ? "yes" : "NO");
  return same_iters ? 0 : 1;
}
