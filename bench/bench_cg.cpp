// E2 -- CG time-to-solution (the paper's Sec. II-A motivation: iterative
// solvers dominate LQCD runtime).  Solves M x = b through the
// WilsonSolver facade on a random gauge background for every vector
// length and backend; verifies the iteration count is layout-independent
// and reports simulated Dslash throughput.
//
// Second section: the production half-checkerboard Schur path (facade
// defaults) against the zero-padded even-odd formulation.  The padded
// path is now a test-only oracle (tests/qcd/padded_oracle.h), so its
// per-iteration instruction cost enters as the checked-in baseline
// measurement (bench/baseline.json, PR 2) rather than a live run; the
// counters are simulated and deterministic, so the comparison is exact as
// long as the shared dhop kernels are unchanged.  The half path must stay
// <= 55% of the padded baseline's dynamic instructions per CG iteration
// -- the acceptance gate of the half-checkerboard refactor, enforced by
// the exit code.  A second gate checks the Schur solution against the
// unpreconditioned facade solve (drift here means a correctness bug, not
// a perf one).
//
// `--json` prints a machine-readable summary (consumed by CI artifacts
// and bench/baseline.json) instead of the human tables; it includes the
// SolverParams each section ran with.
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <iterator>

#include "core/svelat.h"
#include "support/metrics.h"

namespace {

using namespace svelat;

struct Row {
  unsigned vl;
  const char* backend;
  int iterations;
  double seconds;
  double true_residual;
  double mflops;
};

/// Facade params of the full-lattice CG section (algorithm comparison
/// baseline: unpreconditioned normal equations).
solver::SolverParams full_cg_params() {
  return solver::SolverParams{}
      .with_preconditioner(solver::Preconditioner::kNone)
      .with_tolerance(1e-8)
      .with_max_iterations(1000);
}

/// Facade params of the Schur section: production defaults at the bench
/// tolerance.
solver::SolverParams schur_params() {
  return solver::SolverParams{}.with_tolerance(1e-8).with_max_iterations(1000);
}

template <typename S>
Row run(const char* backend) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(6), b);
  x.set_zero();

  solver::WilsonSolver<S> solver(gauge, 0.2, full_cg_params());
  StopWatch sw;
  const auto stats = solver.solve(b, x);
  const double secs = sw.seconds();
  const double flops = 2.0 * qcd::kDhopFlopsPerSite *
                       static_cast<double>(grid.gsites()) * stats.iterations;
  return {static_cast<unsigned>(8 * S::vlb), backend, stats.iterations, secs,
          stats.true_residual, flops / 1e6 / secs};
}

/// Per-iteration instruction cost of the zero-padded Schur CG, measured
/// live in PR 2.  The padded implementation itself is a test-only oracle
/// now; these constants are its frozen cost on this 4^3 x 8 / mass 0.2 /
/// tol 1e-8 workload.  KEEP IN SYNC with bench/baseline.json
/// (bench_cg.schur_half_vs_padded[].padded_insns_per_iter /
/// padded_iterations) -- that file is regenerated *from* this binary's
/// --json output, so these constants are the source of truth.  The
/// per-iteration ratio is only a total-cost ratio while the live half
/// path still needs the same 17 iterations; the iterations gate below
/// enforces that premise.
struct PaddedBaseline {
  unsigned vl;
  double insns_per_iter;
  int iterations;
};
constexpr PaddedBaseline kPaddedBaseline[] = {
    {128, 7236245.4, 17},
    {512, 1878657.6, 17},
};

struct SchurComparison {
  unsigned vl;
  int padded_iterations;       ///< from the checked-in baseline
  int half_iterations;
  double padded_insns_per_iter;  ///< from the checked-in baseline
  double half_insns_per_iter;
  double ratio;           ///< half / padded dynamic instructions per iteration
  double solution_delta;  ///< |x_schur - x_full|^2 / |x_full|^2
};

/// Half-checkerboard Schur CG through the facade vs the padded baseline,
/// at one vector length.
template <typename S>
SchurComparison run_schur_comparison(const PaddedBaseline& baseline) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x_full(&grid), x_half(&grid);
  gaussian_fill(SiteRNG(6), b);
  x_full.set_zero();
  x_half.set_zero();

  SchurComparison c{};
  c.vl = static_cast<unsigned>(8 * S::vlb);
  c.padded_insns_per_iter = baseline.insns_per_iter;
  c.padded_iterations = baseline.iterations;
  {
    solver::WilsonSolver<S> schur(gauge, 0.2, schur_params());
    sve::CounterScope scope;
    const auto stats = schur.solve(b, x_half);
    c.half_iterations = stats.iterations;
    c.half_insns_per_iter =
        static_cast<double>(scope.delta().total()) / stats.iterations;
  }
  {
    solver::WilsonSolver<S> full(gauge, 0.2, full_cg_params());
    (void)full.solve(b, x_full);
  }
  c.ratio = c.half_insns_per_iter / c.padded_insns_per_iter;
  c.solution_delta = norm2(x_half - x_full) / norm2(x_full);
  return c;
}

/// Combined wall-clock rates of a set of metrics regions (bytes, flops
/// and seconds summed before dividing).
void combined_rates(std::initializer_list<const char*> regions, double* gb,
                    double* gflop) {
  double bytes = 0.0, flops = 0.0, seconds = 0.0;
  for (const char* name : regions) {
    const metrics::RegionStats s = metrics::get(name);
    bytes += s.bytes;
    flops += s.flops;
    seconds += s.seconds;
  }
  *gb = seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
  *gflop = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

/// The `wall_clock` JSON section: REAL elapsed time over every solve the
/// benchmark ran, with GB/s / GFLOP/s from the metrics byte/flop models
/// (support/metrics.h).  Machine-dependent by nature -- reported for
/// observability, never gated and never baselined (the instruction gates
/// above are the only acceptance criteria).  Zeros in
/// SVELAT_METRICS_DISABLED builds or under SVELAT_METRICS=0.
void print_wall_clock_json() {
  const metrics::RegionStats solve = metrics::get("solve");
  double dhop_gb = 0.0, dhop_gflop = 0.0, linalg_gb = 0.0, linalg_gflop = 0.0;
  combined_rates({"dhop", "dhop_eo", "dhop_oe"}, &dhop_gb, &dhop_gflop);
  combined_rates({"cg_linalg", "bicgstab_linalg"}, &linalg_gb, &linalg_gflop);
  std::printf(
      "  \"wall_clock\": {\"solves\": %llu, \"seconds\": %.4f, "
      "\"solves_per_sec\": %.4f,\n"
      "    \"dhop\": {\"gb_per_sec\": %.4f, \"gflop_per_sec\": %.4f},\n"
      "    \"solver_linalg\": {\"gb_per_sec\": %.4f, \"gflop_per_sec\": %.4f}},\n",
      static_cast<unsigned long long>(solve.calls), solve.seconds,
      solve.calls_per_sec(), dhop_gb, dhop_gflop, linalg_gb, linalg_gflop);
}

void print_params_json(const solver::SolverParams& p) {
  std::printf("{\"algorithm\": \"%s\", \"preconditioner\": \"%s\", "
              "\"tolerance\": %g, \"max_iterations\": %d}",
              solver::to_string(p.algorithm), solver::to_string(p.preconditioner),
              p.tolerance, p.max_iterations);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;

  Row rows[] = {
      run<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>("sve-real"),
  };
  const SchurComparison schur[] = {
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>(
          kPaddedBaseline[0]),
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>(
          kPaddedBaseline[1]),
  };
  bool same_iters = true;
  for (const auto& r : rows)
    same_iters = same_iters && (r.iterations == rows[0].iterations);
  // Three independent gates: the instruction-ratio target of the
  // half-checkerboard refactor; the live half-path iteration count still
  // matching the frozen padded baseline's (otherwise a per-iteration
  // ratio no longer measures total solve cost); and agreement of the
  // preconditioned and unpreconditioned solutions.  Both solves run at
  // tol 1e-8, so the squared relative solution difference sits well
  // below 1e-12.
  bool ratio_gate = true, iters_match = true, solutions_agree = true;
  for (const auto& c : schur) {
    ratio_gate = ratio_gate && c.ratio <= 0.55;
    iters_match = iters_match && c.half_iterations == c.padded_iterations;
    solutions_agree = solutions_agree && c.solution_delta < 1e-12;
  }

  if (json) {
    std::printf("{\n  \"benchmark\": \"bench_cg\",\n  \"lattice\": [4, 4, 4, 8],\n");
    std::printf("  \"full_cg_params\": ");
    print_params_json(full_cg_params());
    std::printf(",\n  \"full_cg\": [\n");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
      const auto& r = rows[i];
      std::printf("    {\"vl\": %u, \"backend\": \"%s\", \"iterations\": %d, "
                  "\"true_residual\": %.17g}%s\n",
                  r.vl, r.backend, r.iterations, r.true_residual,
                  i + 1 < std::size(rows) ? "," : "");
    }
    std::printf("  ],\n  \"schur_params\": ");
    print_params_json(schur_params());
    std::printf(",\n  \"schur_half_vs_padded\": [\n");
    for (std::size_t i = 0; i < std::size(schur); ++i) {
      const auto& c = schur[i];
      std::printf("    {\"vl\": %u, \"padded_insns_per_iter\": %.1f, "
                  "\"half_insns_per_iter\": %.1f, \"ratio\": %.4f, "
                  "\"padded_iterations\": %d, \"half_iterations\": %d, "
                  "\"solution_delta\": %.3g}%s\n",
                  c.vl, c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                  c.padded_iterations, c.half_iterations, c.solution_delta,
                  i + 1 < std::size(schur) ? "," : "");
    }
    std::printf("  ],\n");
    print_wall_clock_json();
    std::printf("  \"iterations_layout_independent\": %s,\n"
                "  \"schur_half_gate_055\": %s,\n"
                "  \"schur_iterations_match_baseline\": %s,\n"
                "  \"schur_solutions_agree\": %s\n}\n",
                same_iters ? "true" : "false", ratio_gate ? "true" : "false",
                iters_match ? "true" : "false", solutions_agree ? "true" : "false");
    return (same_iters && ratio_gate && iters_match && solutions_agree) ? 0 : 1;
  }

  std::printf("=== E2: CG on the Wilson operator, 4^3 x 8, mass 0.2, tol 1e-8 ===\n\n");
  std::printf("  %-6s %-10s %6s %9s %14s %12s\n", "VL", "backend", "iters", "wall s",
              "true resid", "sim MFlop/s");
  for (const auto& r : rows) {
    std::printf("  %-6u %-10s %6d %9.2f %14.3e %12.1f\n", r.vl, r.backend, r.iterations,
                r.seconds, r.true_residual, r.mflops);
  }
  std::printf("\niteration count layout-independent: %s\n", same_iters ? "yes" : "NO");

  std::printf("\n=== Schur CG (WilsonSolver defaults) vs zero-padded baseline ===\n\n");
  std::printf("  %-6s %16s %16s %8s %9s %12s\n", "VL", "padded insn/it",
              "half insn/it", "ratio", "iters", "soln delta");
  for (const auto& c : schur) {
    std::printf("  %-6u %16.0f %16.0f %8.3f %4d/%-4d %12.3g\n", c.vl,
                c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                c.padded_iterations, c.half_iterations, c.solution_delta);
  }
  std::printf("\nhalf-checkerboard <= 55%% of padded instructions/iteration: %s\n",
              ratio_gate ? "yes" : "NO");
  std::printf("half-path iteration count matches padded baseline: %s\n",
              iters_match ? "yes" : "NO");
  std::printf("Schur and unpreconditioned solutions agree (< 1e-12): %s\n",
              solutions_agree ? "yes" : "NO");

  // Wall-clock observability (machine-dependent, never gated).
  std::printf("\n=== wall clock (this machine; not a gate) ===\n\n%s",
              metrics::report().c_str());

  return (same_iters && ratio_gate && iters_match && solutions_agree) ? 0 : 1;
}
