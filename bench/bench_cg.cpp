// E2 -- CG time-to-solution (the paper's Sec. II-A motivation: iterative
// solvers dominate LQCD runtime).  Solves M x = b on a random gauge
// background for every vector length and backend; verifies the iteration
// count is layout-independent and reports simulated Dslash throughput.
//
// Second section: the even-odd Schur solve on zero-padded full-lattice
// fields vs true half-checkerboard fields.  Both run the same algorithm;
// the half path must execute <= 55% of the padded path's dynamic
// instructions per CG iteration (sve::CounterScope) -- the acceptance
// gate of the half-checkerboard refactor, enforced by the exit code.
//
// `--json` prints a machine-readable summary (consumed by CI artifacts
// and bench/baseline.json) instead of the human tables.
#include <cstdio>
#include <cstring>
#include <iterator>

#include "core/svelat.h"
#include "qcd/even_odd.h"

namespace {

using namespace svelat;

struct Row {
  unsigned vl;
  const char* backend;
  int iterations;
  double seconds;
  double true_residual;
  double mflops;
};

template <typename S>
Row run(const char* backend) {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x(&grid);
  gaussian_fill(SiteRNG(6), b);
  x.set_zero();

  const qcd::WilsonDirac<S> dirac(gauge, 0.2);
  StopWatch sw;
  const auto stats = solver::solve_wilson(dirac, b, x, 1e-8, 1000);
  const double secs = sw.seconds();
  const double flops =
      2.0 * qcd::kDhopFlopsPerSite * static_cast<double>(grid.gsites()) * stats.iterations;
  return {static_cast<unsigned>(8 * S::vlb), backend, stats.iterations, secs,
          stats.true_residual, flops / 1e6 / secs};
}

struct SchurComparison {
  unsigned vl;
  int padded_iterations;
  int half_iterations;
  double padded_insns_per_iter;
  double half_insns_per_iter;
  double ratio;           ///< half / padded dynamic instructions per iteration
  double solution_delta;  ///< |x_half - x_padded|^2 / |x_padded|^2
};

/// Zero-padded vs half-checkerboard Schur CG at one vector length.
template <typename S>
SchurComparison run_schur_comparison() {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(&grid), x_padded(&grid), x_half(&grid);
  gaussian_fill(SiteRNG(6), b);
  x_half.set_zero();

  SchurComparison c{};
  c.vl = static_cast<unsigned>(8 * S::vlb);
  const double tol = 1e-8;
  {
    const qcd::EvenOddWilson<S> eo(gauge, 0.2);
    sve::CounterScope scope;
    const auto stats = qcd::solve_wilson_schur(eo, b, x_padded, tol, 1000);
    c.padded_iterations = stats.iterations;
    c.padded_insns_per_iter =
        static_cast<double>(scope.delta().total()) / stats.iterations;
  }
  {
    const qcd::SchurEvenOddWilson<S> eo(gauge, 0.2);
    sve::CounterScope scope;
    const auto stats = qcd::solve_wilson_schur_half(eo, b, x_half, tol, 1000);
    c.half_iterations = stats.iterations;
    c.half_insns_per_iter =
        static_cast<double>(scope.delta().total()) / stats.iterations;
  }
  c.ratio = c.half_insns_per_iter / c.padded_insns_per_iter;
  c.solution_delta = norm2(x_half - x_padded) / norm2(x_padded);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;

  Row rows[] = {
      run<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>("generic"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>("sve-fcmla"),
      run<simd::SimdComplex<double, simd::kVLB128, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>("sve-real"),
      run<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>("sve-real"),
  };
  const SchurComparison schur[] = {
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>(),
      run_schur_comparison<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>(),
  };
  bool same_iters = true;
  for (const auto& r : rows)
    same_iters = same_iters && (r.iterations == rows[0].iterations);
  // Two independent gates: the instruction-ratio target of the
  // half-checkerboard refactor, and agreement of the two solvers'
  // solutions (drift here means a correctness bug, not a perf one).
  bool ratio_gate = true, solutions_agree = true;
  for (const auto& c : schur) {
    ratio_gate = ratio_gate && c.ratio <= 0.55;
    solutions_agree = solutions_agree && c.solution_delta < 1e-16;
  }

  if (json) {
    std::printf("{\n  \"benchmark\": \"bench_cg\",\n  \"lattice\": [4, 4, 4, 8],\n");
    std::printf("  \"full_cg\": [\n");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
      const auto& r = rows[i];
      std::printf("    {\"vl\": %u, \"backend\": \"%s\", \"iterations\": %d, "
                  "\"true_residual\": %.17g}%s\n",
                  r.vl, r.backend, r.iterations, r.true_residual,
                  i + 1 < std::size(rows) ? "," : "");
    }
    std::printf("  ],\n  \"schur_half_vs_padded\": [\n");
    for (std::size_t i = 0; i < std::size(schur); ++i) {
      const auto& c = schur[i];
      std::printf("    {\"vl\": %u, \"padded_insns_per_iter\": %.1f, "
                  "\"half_insns_per_iter\": %.1f, \"ratio\": %.4f, "
                  "\"padded_iterations\": %d, \"half_iterations\": %d, "
                  "\"solution_delta\": %.3g}%s\n",
                  c.vl, c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                  c.padded_iterations, c.half_iterations, c.solution_delta,
                  i + 1 < std::size(schur) ? "," : "");
    }
    std::printf("  ],\n  \"iterations_layout_independent\": %s,\n"
                "  \"schur_half_gate_055\": %s,\n"
                "  \"schur_solutions_agree\": %s\n}\n",
                same_iters ? "true" : "false", ratio_gate ? "true" : "false",
                solutions_agree ? "true" : "false");
    return (same_iters && ratio_gate && solutions_agree) ? 0 : 1;
  }

  std::printf("=== E2: CG on the Wilson operator, 4^3 x 8, mass 0.2, tol 1e-8 ===\n\n");
  std::printf("  %-6s %-10s %6s %9s %14s %12s\n", "VL", "backend", "iters", "wall s",
              "true resid", "sim MFlop/s");
  for (const auto& r : rows) {
    std::printf("  %-6u %-10s %6d %9.2f %14.3e %12.1f\n", r.vl, r.backend, r.iterations,
                r.seconds, r.true_residual, r.mflops);
  }
  std::printf("\niteration count layout-independent: %s\n", same_iters ? "yes" : "NO");

  std::printf("\n=== Schur CG: zero-padded full fields vs half-checkerboard ===\n\n");
  std::printf("  %-6s %16s %16s %8s %9s %12s\n", "VL", "padded insn/it",
              "half insn/it", "ratio", "iters", "soln delta");
  for (const auto& c : schur) {
    std::printf("  %-6u %16.0f %16.0f %8.3f %4d/%-4d %12.3g\n", c.vl,
                c.padded_insns_per_iter, c.half_insns_per_iter, c.ratio,
                c.padded_iterations, c.half_iterations, c.solution_delta);
  }
  std::printf("\nhalf-checkerboard <= 55%% of padded instructions/iteration: %s\n",
              ratio_gate ? "yes" : "NO");
  std::printf("half and padded Schur solutions agree (< 1e-16): %s\n",
              solutions_agree ? "yes" : "NO");

  return (same_iters && ratio_gate && solutions_agree) ? 0 : 1;
}
