// Transport conformance suite: every Communicator implementation must
// provide the same messaging semantics (see the contract list in
// comms/communicator.h).  Parameterized over the in-process simulated
// transport and the socket transport; the socket endpoints are hosted in
// one process here (SocketWorld) so the suite exercises the real wire
// format and framing logic deterministically -- multi-process operation is
// covered by test_rank_equivalence.cpp and the distributed example.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "comms/communicator.h"
#include "comms/socket.h"

namespace svelat::comms {
namespace {

/// A world of N ranks: at(r) is the Communicator acting for rank r.  For
/// the simulated transport one object hosts every rank; for the socket
/// transport each rank has its own endpoint.
class World {
 public:
  virtual ~World() = default;
  virtual Communicator& at(int rank) = 0;
};

class SimWorld final : public World {
 public:
  explicit SimWorld(int nranks) : comm_(nranks) {}
  Communicator& at(int) override { return comm_; }

 private:
  SimCommunicator comm_;
};

class SockWorld final : public World {
 public:
  SockWorld(int nranks, int timeout_ms) : world_(nranks, timeout_ms) {}
  Communicator& at(int rank) override { return world_.rank(rank); }

 private:
  SocketWorld world_;
};

std::unique_ptr<World> make_world(const std::string& kind, int nranks,
                                  int timeout_ms = 5000) {
  if (kind == "sim") return std::make_unique<SimWorld>(nranks);
  return std::make_unique<SockWorld>(nranks, timeout_ms);
}

using Payload = std::vector<std::uint8_t>;

class ConformanceTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { world_ = make_world(GetParam(), 4); }
  Communicator& at(int rank) { return world_->at(rank); }

  std::unique_ptr<World> world_;
};

TEST_P(ConformanceTest, SizeReportsWorldRanks) {
  for (int r = 0; r < 4; ++r) EXPECT_EQ(at(r).size(), 4);
}

TEST_P(ConformanceTest, FifoOrderPerChannel) {
  at(0).send(0, 1, 7, Payload{1, 2, 3});
  at(0).send(0, 1, 7, Payload{4, 5});
  at(0).send(0, 1, 7, Payload{6});
  EXPECT_EQ(at(1).recv(1, 0, 7), (Payload{1, 2, 3}));
  EXPECT_EQ(at(1).recv(1, 0, 7), (Payload{4, 5}));
  EXPECT_EQ(at(1).recv(1, 0, 7), (Payload{6}));
}

TEST_P(ConformanceTest, TagsMultiplexIndependently) {
  at(0).send(0, 1, /*tag=*/1, Payload{11});
  at(0).send(0, 1, /*tag=*/2, Payload{22});
  at(0).send(0, 1, /*tag=*/1, Payload{12});
  // Tag 2 first: cross-tag order is free, per-tag order is FIFO.
  EXPECT_EQ(at(1).recv(1, 0, 2), (Payload{22}));
  EXPECT_EQ(at(1).recv(1, 0, 1), (Payload{11}));
  EXPECT_EQ(at(1).recv(1, 0, 1), (Payload{12}));
}

TEST_P(ConformanceTest, SendersDoNotInterfere) {
  at(0).send(0, 2, 9, Payload{0xA0});
  at(1).send(1, 2, 9, Payload{0xB1});
  EXPECT_EQ(at(2).recv(2, 1, 9), (Payload{0xB1}));
  EXPECT_EQ(at(2).recv(2, 0, 9), (Payload{0xA0}));
}

TEST_P(ConformanceTest, SelfSendLoopsBack) {
  at(3).send(3, 3, 5, Payload{42, 43});
  EXPECT_TRUE(at(3).has_pending(3, 3, 5));
  EXPECT_EQ(at(3).recv(3, 3, 5), (Payload{42, 43}));
  EXPECT_FALSE(at(3).has_pending(3, 3, 5));
}

TEST_P(ConformanceTest, HasPendingTracksArrivalAndDrain) {
  EXPECT_FALSE(at(1).has_pending(1, 0, 4));
  at(0).send(0, 1, 4, Payload{7});
  EXPECT_TRUE(at(1).has_pending(1, 0, 4));
  EXPECT_FALSE(at(1).has_pending(1, 0, /*other tag=*/8));
  (void)at(1).recv(1, 0, 4);
  EXPECT_FALSE(at(1).has_pending(1, 0, 4));
}

TEST_P(ConformanceTest, BytesSentCountsPayloadAtTheSender) {
  at(0).reset_counters();
  at(0).send(0, 1, 3, Payload(5, 0));
  at(0).send(0, 0, 3, Payload(11, 0));  // self-sends are charged too
  EXPECT_EQ(at(0).bytes_sent(), 16u);
  (void)at(1).recv(1, 0, 3);  // receiving changes nothing at the sender
  EXPECT_EQ(at(0).bytes_sent(), 16u);
  at(0).reset_counters();
  EXPECT_EQ(at(0).bytes_sent(), 0u);
}

TEST_P(ConformanceTest, EmptyPayloadSurvivesTheWire) {
  at(0).send(0, 1, 6, Payload{});
  EXPECT_TRUE(at(1).has_pending(1, 0, 6));
  EXPECT_EQ(at(1).recv(1, 0, 6), Payload{});
}

TEST_P(ConformanceTest, LargePayloadSurvivesTheWire) {
  // 64 KiB spans many stream segments (exercises read_exact reassembly)
  // while still fitting the kernel's default socket buffer -- required
  // in-process, where no peer process drains concurrently.
  Payload big(1 << 16);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  at(2).send(2, 3, 1, big);
  EXPECT_EQ(at(3).recv(3, 2, 1), big);
}

TEST_P(ConformanceTest, RecvWithoutMatchingSendThrowsTyped) {
  // Short timeout: the socket transport must give up waiting on the peer
  // (kTimeout, after its retry policy) where the simulated one detects
  // the missing send instantly (kNoMessage).  Both surface as CommError,
  // not abort.
  auto world = make_world(GetParam(), 2, /*timeout_ms=*/50);
  try {
    (void)world->at(1).recv(1, 0, 99);
    FAIL() << "recv of a never-sent message must throw";
  } catch (const CommError& e) {
    EXPECT_TRUE(e.status() == CommStatus::kTimeout ||
                e.status() == CommStatus::kNoMessage)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("svelat comm ["), std::string::npos);
  }
}

TEST_P(ConformanceTest, SelfRecvWithoutSendFailsInstantly) {
  // Nothing can ever loop back later, so every transport detects this
  // without waiting -- and without burning retries (kNoMessage is not a
  // transient class).
  try {
    (void)at(2).recv(2, 2, 99);
    FAIL() << "self-recv of a never-sent message must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kNoMessage) << e.what();
  }
  EXPECT_EQ(at(2).retries(), 0u);
}

TEST_P(ConformanceTest, StatusLayerReportsFailureWithoutThrowing) {
  Payload out;
  const CommStatus st = at(2).recv_status(2, 2, 99, out);
  EXPECT_EQ(st, CommStatus::kNoMessage);
}

TEST_P(ConformanceTest, AbortOnFailureIsTheConfiguredLastResort) {
  // The one remaining abort path: opt-in via the retry policy.
  auto world = make_world(GetParam(), 2, /*timeout_ms=*/50);
  RetryPolicy policy;
  policy.abort_on_failure = true;
  policy.max_attempts = 1;
  world->at(1).set_retry_policy(policy);
  EXPECT_DEATH((void)world->at(1).recv(1, 0, 99), "abort_on_failure");
}

INSTANTIATE_TEST_SUITE_P(Transports, ConformanceTest,
                         ::testing::Values("sim", "socket"),
                         [](const auto& info) { return std::string(info.param); });

// Socket-specific: a peer that exits after completing its sends leaves its
// descriptor readable (POLLHUP) forever.  That EOF sits on a frame
// boundary and must not be mistaken for a torn frame -- buffered frames
// stay deliverable, drains stop cleanly, and only a recv that can never be
// satisfied fails, with the typed kPeerExited verdict (regression:
// large-payload runs used to die with "socket closed mid-frame" when the
// progress engine polled an exited peer).
TEST(SocketPeerExit, CleanExitIsNotATornFrame) {
  auto mesh = make_socket_mesh(2);
  auto gone = std::make_unique<SocketCommunicator>(2, 0, std::move(mesh[0]), 500);
  SocketCommunicator survivor(2, 1, std::move(mesh[1]), 500);
  gone->send(0, 1, 1, Payload{1, 2, 3});
  gone->send(0, 1, 2, Payload{4});
  gone.reset();  // rank 0 exits cleanly after finishing its sends

  EXPECT_TRUE(survivor.has_pending(1, 0, 1));  // drains up to (not past) the EOF
  EXPECT_EQ(survivor.recv(1, 0, 1), (Payload{1, 2, 3}));
  EXPECT_EQ(survivor.recv(1, 0, 2), (Payload{4}));
  EXPECT_FALSE(survivor.has_pending(1, 0, 1));  // no hang on the readable EOF
  try {
    (void)survivor.recv(1, 0, 1);
    FAIL() << "recv from an exited peer must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kPeerExited) << e.what();
  }
  // The verdict is sticky and fast: no timeout wait on later calls either.
  Payload out;
  EXPECT_EQ(survivor.try_recv(1, 0, 1, out), CommStatus::kPeerExited);
  EXPECT_EQ(survivor.try_send(1, 0, 3, Payload{9}), CommStatus::kPeerExited);
}

}  // namespace
}  // namespace svelat::comms
