// Fault-injection tests: every fault class the FaultyCommunicator can
// inject (docs/FAULTS.md) must produce either a successful retry or a
// typed CommError -- never a bare abort (the only abort left is the
// configured last resort, covered by the conformance suite).  Rank
// crashes use REAL forked processes so the launcher's failure verdicts
// and the survivors' fast kPeerExited detection are exercised end to end.
#include "comms/faults.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "comms/socket.h"

namespace svelat::comms {
namespace {

using Payload = std::vector<std::uint8_t>;

FaultEvent event(FaultOp op, std::uint64_t at, FaultKind kind, int count = 1) {
  FaultEvent e;
  e.op = op;
  e.at = at;
  e.kind = kind;
  e.count = count;
  return e;
}

TEST(FaultyCommunicator, DelayIsAbsorbedByRetryWithBackoff) {
  SimCommunicator inner(2);
  FaultSchedule sched;
  sched.events.push_back(event(FaultOp::kSend, 0, FaultKind::kDelay, 2));
  FaultyCommunicator comm(inner, sched);
  RetryPolicy fast;
  fast.backoff_ms = 1;
  comm.set_retry_policy(fast);

  comm.send(0, 1, 7, Payload{1, 2, 3});  // two faulted attempts, then success
  EXPECT_EQ(comm.faults_injected(), 2u);
  EXPECT_EQ(comm.retries(), 2u);
  EXPECT_EQ(comm.recv(1, 0, 7), (Payload{1, 2, 3}));
}

TEST(FaultyCommunicator, DelayBeyondTheRetryBudgetThrowsTimeout) {
  SimCommunicator inner(2);
  FaultSchedule sched;
  sched.events.push_back(event(FaultOp::kSend, 0, FaultKind::kDelay, 99));
  FaultyCommunicator comm(inner, sched);
  RetryPolicy one;
  one.max_attempts = 1;
  comm.set_retry_policy(one);

  try {
    comm.send(0, 1, 7, Payload{1});
    FAIL() << "send with an exhausted retry budget must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kTimeout) << e.what();
  }
}

TEST(FaultyCommunicator, SpuriousEofIsRetriedLikeATimeout) {
  SimCommunicator inner(2);
  FaultSchedule sched;
  sched.events.push_back(event(FaultOp::kRecv, 0, FaultKind::kSpuriousEof, 1));
  FaultyCommunicator comm(inner, sched);
  RetryPolicy fast;
  fast.backoff_ms = 1;
  comm.set_retry_policy(fast);

  comm.send(0, 1, 3, Payload{5});
  EXPECT_EQ(comm.recv(1, 0, 3), (Payload{5}));  // one glitch, then delivered
  EXPECT_EQ(comm.faults_injected(), 1u);
  EXPECT_EQ(comm.retries(), 1u);
}

TEST(FaultyCommunicator, TornFrameIsFatalDespiteRetries) {
  SimCommunicator inner(2);
  FaultSchedule sched;
  sched.events.push_back(event(FaultOp::kSend, 0, FaultKind::kTornFrame));
  FaultyCommunicator comm(inner, sched);

  try {
    comm.send(0, 1, 7, Payload{1});
    FAIL() << "a torn frame must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kTornFrame) << e.what();
  }
  EXPECT_EQ(comm.retries(), 0u);  // non-transient: no retry was attempted
}

TEST(FaultyCommunicator, OperationCounterAdvancesOnCompletionOnly) {
  SimCommunicator inner(2);
  FaultSchedule sched;
  sched.events.push_back(event(FaultOp::kSend, 1, FaultKind::kDelay, 1));
  FaultyCommunicator comm(inner, sched);
  RetryPolicy fast;
  fast.backoff_ms = 1;
  comm.set_retry_policy(fast);

  comm.send(0, 1, 7, Payload{0});  // op 0: clean
  comm.send(0, 1, 7, Payload{1});  // op 1: one fault, retried
  comm.send(0, 1, 7, Payload{2});  // op 2: clean (the event is spent)
  EXPECT_EQ(comm.faults_injected(), 1u);
  EXPECT_EQ(comm.sends_done(), 3u);
}

TEST(FaultSchedule, SeededScheduleIsDeterministic) {
  const FaultSchedule a = FaultSchedule::seeded(42, /*rank=*/1);
  const FaultSchedule b = FaultSchedule::seeded(42, /*rank=*/1);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].op, b.events[i].op);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].count, b.events[i].count);
  }
  for (const FaultEvent& e : a.events)  // transient kinds only: soaks complete
    EXPECT_TRUE(e.kind == FaultKind::kDelay || e.kind == FaultKind::kSpuriousEof);
}

TEST(FaultSchedule, SeededTransientsAreAbsorbedBySim) {
  SimCommunicator inner(2);
  FaultyCommunicator comm(inner, FaultSchedule::seeded(7, 0, /*nops=*/32, /*rate=*/4));
  RetryPolicy fast;
  fast.backoff_ms = 1;
  comm.set_retry_policy(fast);

  for (int i = 0; i < 32; ++i) {
    comm.send(0, 1, i, Payload{static_cast<std::uint8_t>(i)});
    EXPECT_EQ(comm.recv(1, 0, i), Payload{static_cast<std::uint8_t>(i)});
  }
  EXPECT_GT(comm.faults_injected(), 0u);  // the soak really was faulted
}

// --- real socket-stream fault classes ---------------------------------------

TEST(SocketFaults, EofInsideAFrameIsTorn) {
  auto mesh = make_socket_mesh(2);
  SocketCommunicator survivor(2, 1, std::move(mesh[1]), 200);
  const int raw = mesh[0][1];  // rank 0's side, driven by hand
  const std::uint8_t partial[10] = {0x54, 0x4c, 0x56, 0x53, 0, 0, 0, 0, 1, 0};
  ASSERT_EQ(::send(raw, partial, sizeof partial, 0),
            static_cast<ssize_t>(sizeof partial));
  ::close(raw);  // EOF with a frame header half-written

  Payload out;
  EXPECT_EQ(survivor.try_recv(1, 0, 1, out), CommStatus::kTornFrame);
  // The verdict is sticky: the stream cannot be resynchronized.
  EXPECT_EQ(survivor.try_recv(1, 0, 1, out), CommStatus::kTornFrame);
  try {
    (void)survivor.recv(1, 0, 1);
    FAIL() << "a torn stream must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kTornFrame) << e.what();
  }
}

TEST(SocketFaults, BadMagicIsDesync) {
  auto mesh = make_socket_mesh(2);
  SocketCommunicator survivor(2, 1, std::move(mesh[1]), 200);
  const int raw = mesh[0][1];
  std::uint8_t frame[24] = {};
  frame[0] = 0xde;  // not "SVLT"
  frame[1] = 0xad;
  ASSERT_EQ(::send(raw, frame, sizeof frame, 0), static_cast<ssize_t>(sizeof frame));

  Payload out;
  EXPECT_EQ(survivor.try_recv(1, 0, 1, out), CommStatus::kDesync);
  ::close(raw);
}

TEST(SocketFaults, StalledPartialFrameIsTornNotTimeout) {
  // The sender wrote half a header and then hung (not closed).  Waiting
  // longer cannot resynchronize the stream: the verdict is kTornFrame,
  // and it must arrive within the bounded timeout rather than hanging.
  auto mesh = make_socket_mesh(2);
  SocketCommunicator survivor(2, 1, std::move(mesh[1]), 100);
  const int raw = mesh[0][1];
  const std::uint8_t partial[4] = {0x54, 0x4c, 0x56, 0x53};
  ASSERT_EQ(::send(raw, partial, sizeof partial, 0),
            static_cast<ssize_t>(sizeof partial));

  Payload out;
  EXPECT_EQ(survivor.try_recv(1, 0, 1, out), CommStatus::kTornFrame);
  ::close(raw);
}

// --- rank-crash detection with real processes -------------------------------

TEST(RankFailure, CrashedRankYieldsSignalVerdictAndSurvivorsFailFast) {
  const std::string log_dir =
      ::testing::TempDir() + "svelat_faults_logs" + std::to_string(::getpid());
  std::filesystem::create_directories(log_dir);
  LaunchOptions opt;
  opt.log_dir = log_dir;
  opt.recv_timeout_ms = 10000;  // survivors must NOT need this long

  const auto report = run_ranks(
      2,
      [](int rank, SocketCommunicator& socket_comm) {
        if (rank == 1) {
          FaultSchedule sched;
          sched.events.push_back(event(FaultOp::kSend, 0, FaultKind::kCrash));
          FaultyCommunicator comm(socket_comm, sched);
          comm.send(1, 0, 5, Payload{1});  // SIGKILLs this process
          return 9;                        // unreachable
        }
        (void)socket_comm.recv(0, 1, 5);  // peer dies: CommError -> exit 84
        return 0;
      },
      opt);

  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.ranks.size(), 2u);
  // The crashed rank is decoded as a signal death, distinct from any exit
  // code; the survivor's typed kPeerExited verdict becomes exit 84.
  EXPECT_FALSE(report.ranks[1].exited);
  EXPECT_EQ(report.ranks[1].term_signal, SIGKILL);
  EXPECT_TRUE(report.ranks[0].exited);
  EXPECT_EQ(report.ranks[0].exit_code, kCommFailureExitCode);
  // describe() names the signal and points at the rank logs.
  const std::string desc = report.describe();
  EXPECT_NE(desc.find("killed by signal 9"), std::string::npos) << desc;
  EXPECT_NE(desc.find("rank1.log"), std::string::npos) << desc;
  EXPECT_NE(desc.find("comm failure"), std::string::npos) << desc;
  // The survivor's log carries the typed diagnostic.
  const std::vector<std::uint8_t> log = [&] {
    std::FILE* f = std::fopen((log_dir + "/rank0.log").c_str(), "rb");
    std::vector<std::uint8_t> bytes(4096);
    const std::size_t n = f ? std::fread(bytes.data(), 1, bytes.size(), f) : 0;
    if (f) std::fclose(f);
    bytes.resize(n);
    return bytes;
  }();
  const std::string text(log.begin(), log.end());
  EXPECT_NE(text.find("svelat comm [peer exited]"), std::string::npos) << text;
  std::filesystem::remove_all(log_dir);
}

TEST(RankFailure, NonzeroExitIsDecodedDistinctlyFromSignals) {
  const auto report = run_ranks(2, [](int rank, SocketCommunicator&) {
    return rank == 1 ? 3 : 0;
  });
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.ranks[0].ok());
  EXPECT_TRUE(report.ranks[1].exited);
  EXPECT_EQ(report.ranks[1].exit_code, 3);
  EXPECT_NE(report.describe().find("exit 3"), std::string::npos);
}

}  // namespace
}  // namespace svelat::comms
