// Regression gate for fp16/fp32 halo-exchange compression (ROADMAP item:
// promote bench_halo_compression from smoke-only to a tier-1 gate).
//
// Asserts the two properties the bench previously only reported:
//   1. Wire compression ratio is exactly 4x (f16) / 2x (f32) -- the
//      compressed face carries no framing overhead.
//   2. Round-trip error is within the format's guarantees: f32 round-trip
//      is correctly rounded (<= 2^-24 relative), f16 round-trip within
//      2^-11 relative for normal values (10+1 mantissa bits).
#include <gtest/gtest.h>

#include <cmath>

#include "comms/halo.h"
#include "lattice/fill.h"
#include "qcd/types.h"
#include "support/random.h"
#include "sve/sve.h"

namespace svelat::comms {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;

class HaloCompressionGate : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{8, 8, 8, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    psi_ = std::make_unique<qcd::LatticeFermion<S>>(grid_.get());
    gaussian_fill(SiteRNG(33), *psi_);
    packed_ = pack_face(*psi_, /*mu=*/3, /*slice=*/0);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::LatticeFermion<S>> psi_;
  std::vector<double> packed_;
};

TEST_F(HaloCompressionGate, WireRatioIsExact) {
  const std::size_t payload = packed_.size() * sizeof(double);
  EXPECT_EQ(compress(packed_, Compression::kNone).size(), payload);
  EXPECT_EQ(compress(packed_, Compression::kF32).size() * 2, payload);
  EXPECT_EQ(compress(packed_, Compression::kF16).size() * 4, payload);
}

TEST_F(HaloCompressionGate, ExchangeReportsF16Ratio) {
  SimCommunicator comm(2);
  std::size_t wire = 0;
  const auto received =
      exchange_face(comm, *psi_, 3, 0, Compression::kF16, 0, 1, &wire);
  ASSERT_EQ(received.size(), packed_.size());
  const double ratio =
      static_cast<double>(packed_.size() * sizeof(double)) / static_cast<double>(wire);
  EXPECT_DOUBLE_EQ(ratio, 4.0);
}

TEST_F(HaloCompressionGate, F32RoundTripIsCorrectlyRounded) {
  const auto wire = compress(packed_, Compression::kF32);
  const auto back = decompress(wire, packed_.size(), Compression::kF32);
  ASSERT_EQ(back.size(), packed_.size());
  for (std::size_t i = 0; i < packed_.size(); ++i) {
    // double -> float -> double keeps the correctly rounded float value.
    EXPECT_EQ(back[i], static_cast<double>(static_cast<float>(packed_[i]))) << i;
    EXPECT_LE(std::abs(back[i] - packed_[i]),
              std::ldexp(std::abs(packed_[i]), -24) + 1e-300)
        << i;
  }
}

TEST_F(HaloCompressionGate, F16RoundTripWithinHalfPrecisionBound) {
  const auto wire = compress(packed_, Compression::kF16);
  const auto back = decompress(wire, packed_.size(), Compression::kF16);
  ASSERT_EQ(back.size(), packed_.size());
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < packed_.size(); ++i) {
    const double in = packed_[i];
    const double err = std::abs(back[i] - in);
    // Normal range of binary16: relative error <= 2^-11; below the
    // smallest normal (2^-14) quantization is absolute (subnormal ulp
    // 2^-24).  Gaussian fills stay far inside the overflow limit (~65504).
    const double bound = std::max(std::ldexp(std::abs(in), -11), std::ldexp(1.0, -24));
    EXPECT_LE(err, bound) << "element " << i << " value " << in;
    if (std::abs(in) >= std::ldexp(1.0, -14))
      worst_rel = std::max(worst_rel, err / std::abs(in));
  }
  // The bound is tight in practice: gaussian data actually exercises it.
  EXPECT_GT(worst_rel, std::ldexp(1.0, -13));
  EXPECT_LE(worst_rel, std::ldexp(1.0, -11));
}

}  // namespace
}  // namespace svelat::comms
