// Rank-equivalence and fault-tolerance suite for the distributed Wilson
// SOLVER: WilsonSolver over DistributedWilsonDirac must reproduce the
// single-rank WilsonSolver bitwise -- solution slab, iteration count and
// full residual history -- at 1..4 ranks, on the simulated transport, an
// in-process SocketWorld driven by real threads, and forked OS
// processes.  Exactness hinges on two properties pinned here: the
// overlap schedule's boundary arithmetic matches the stencil path, and
// the ring reduction reproduces parallel_reduce's global summation tree.
//
// Fault tolerance (the ROADMAP soak follow-up): a seeded transient
// schedule under the full solver loop retries to bitwise-identical
// results, and a rank crash mid-solve yields a typed verdict in
// SolverResult::comm_status on the survivor -- never a hang.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "comms/distributed_wilson.h"
#include "comms/faults.h"
#include "comms/socket.h"
#include "lattice/fill.h"
#include "qcd/su3.h"
#include "qcd/types.h"
#include "solver/solver.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "sve/sve.h"

namespace svelat::comms {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;
using solver::Algorithm;
using solver::FallbackPolicy;
using solver::Preconditioner;
using solver::SolverParams;
using solver::SolverResult;
using solver::WilsonSolver;

constexpr unsigned kVL = 256;
constexpr int kSeed = 1234;
constexpr double kMass = 0.25;
constexpr double kTol = 1e-8;
const lattice::Coordinate kDims{4, 4, 4, 8};
constexpr int kSplit = 3;  // exact reductions need the slowest dimension

lattice::Coordinate layout() { return split_simd_layout(kDims, kSplit, S::Nsimd()); }

/// Deterministic global problem, identical in every process and thread.
struct Problem {
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
  Field b;

  Problem() : grid(kDims, layout()), gauge(&grid), b(&grid) {
    qcd::random_gauge(SiteRNG(42), gauge);  // unitary links: well-conditioned
    gaussian_fill(SiteRNG(kSeed), b);
  }
};

SolverParams params(Algorithm alg) {
  return SolverParams{}
      .with_algorithm(alg)
      .with_preconditioner(Preconditioner::kNone)
      .with_tolerance(kTol)
      .with_max_iterations(2000);
}

/// The single-rank oracle on the SAME simd layout the ranks use (the
/// reduction tree depends on the layout, so this is what "bitwise equal"
/// must be measured against).
SolverResult reference_solve(const Problem& p, Algorithm alg, Field& x) {
  WilsonSolver<S> ref(p.gauge, kMass, params(alg));
  x.set_zero();
  return ref.solve(p.b, x);
}

qcd::GaugeField<S> scatter_gauge_rank(const RankDecomposition& decomp,
                                      const qcd::GaugeField<S>& global, int rank) {
  qcd::GaugeField<S> local(decomp.grid(rank));
  for (int mu = 0; mu < lattice::Nd; ++mu)
    local.U[static_cast<std::size_t>(mu)] =
        scatter_rank(decomp, global.U[static_cast<std::size_t>(mu)], rank);
  return local;
}

/// One rank's full solve over any transport.  `x_local` must live on the
/// rank's sub-grid; it returns holding the rank's solution slab.
SolverResult rank_solve(const Problem& p, const RankDecomposition& decomp,
                        Communicator& comm, int rank, Algorithm alg,
                        Field& x_local, Compression mode = Compression::kNone) {
  const qcd::GaugeField<S> u_local = scatter_gauge_rank(decomp, p.gauge, rank);
  const Field b_local = scatter_rank(decomp, p.b, rank);
  DistributedWilsonDirac<S> op(decomp, comm, rank, u_local, kMass, mode);
  WilsonSolver<S> ws(op, params(alg));
  x_local.set_zero();
  return ws.solve(b_local, x_local);
}

/// Bitwise agreement of result metadata: the lockstep invariant is that
/// every rank walks the identical iteration sequence.
bool results_identical(const SolverResult& a, const SolverResult& b) {
  if (a.converged != b.converged || a.iterations != b.iterations) return false;
  if (a.residual_history.size() != b.residual_history.size()) return false;
  for (std::size_t i = 0; i < a.residual_history.size(); ++i)
    if (a.residual_history[i] != b.residual_history[i]) return false;
  return a.final_residual == b.final_residual && a.rhs_norm == b.rhs_norm &&
         a.solution_norm == b.solution_norm;
}

TEST(DistributedSolverSim, SingleRankMatchesClassicSolverBitwise) {
  sve::set_vector_length(kVL);
  const Problem p;
  for (const Algorithm alg : {Algorithm::kCG, Algorithm::kBiCGSTAB}) {
    Field x_ref(&p.grid);
    const SolverResult ref = reference_solve(p, alg, x_ref);
    ASSERT_TRUE(ref.converged);

    const RankDecomposition decomp(kDims, kSplit, 1, layout());
    SimCommunicator comm(1);
    Field x_dist(decomp.grid(0));
    const SolverResult res = rank_solve(p, decomp, comm, 0, alg, x_dist);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(results_identical(res, ref)) << res.summary() << " vs "
                                             << ref.summary();
    EXPECT_EQ(norm2(x_dist - x_ref), 0.0);
    EXPECT_EQ(res.comm_status, CommStatus::kOk);
  }
}

TEST(DistributedSolverThreads, SocketWorldMatchesClassicSolverBitwise) {
  // 2 and 4 ranks inside one process: each rank is a real thread over its
  // SocketWorld endpoint, so posts/recvs genuinely interleave.  Threaded
  // rank bodies run the site loops serially (the deterministic reduction
  // makes serial == threaded bitwise anyway).
  sve::set_vector_length(kVL);
  const Problem p;
  Field x_ref(&p.grid);
  const SolverResult ref = reference_solve(p, Algorithm::kCG, x_ref);
  ASSERT_TRUE(ref.converged);

  for (const int ranks : {2, 4}) {
    SocketWorld world(ranks);
    const RankDecomposition decomp(kDims, kSplit, ranks, layout());
    std::vector<Field> xs;
    xs.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) xs.emplace_back(decomp.grid(r));
    std::vector<SolverResult> results(static_cast<std::size_t>(ranks));

    set_force_serial(true);
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r)
      threads.emplace_back([&, r] {
        results[static_cast<std::size_t>(r)] =
            rank_solve(p, decomp, world.rank(r), r, Algorithm::kCG,
                       xs[static_cast<std::size_t>(r)]);
      });
    for (std::thread& t : threads) t.join();
    set_force_serial(false);

    for (int r = 0; r < ranks; ++r) {
      EXPECT_TRUE(results_identical(results[static_cast<std::size_t>(r)], ref))
          << "ranks=" << ranks << " rank=" << r;
      EXPECT_EQ(norm2(xs[static_cast<std::size_t>(r)] -
                      scatter_rank(decomp, x_ref, r)),
                0.0)
          << "ranks=" << ranks << " rank=" << r;
    }
  }
}

TEST(DistributedSolverSocket, ForkedRanksMatchClassicSolverBitwise) {
  for (const int ranks : {2, 4}) {
    const LaunchReport report =
        run_ranks(ranks, [&](int rank, SocketCommunicator& comm) {
          sve::set_vector_length(kVL);
          const Problem p;
          Field x_ref(&p.grid);
          const SolverResult ref = reference_solve(p, Algorithm::kCG, x_ref);
          if (!ref.converged) return 2;

          const RankDecomposition decomp(kDims, kSplit, ranks, layout());
          Field x_local(decomp.grid(rank));
          const SolverResult res =
              rank_solve(p, decomp, comm, rank, Algorithm::kCG, x_local);
          if (!res.converged) return 3;
          if (!results_identical(res, ref)) return 4;
          if (norm2(x_local - scatter_rank(decomp, x_ref, rank)) != 0.0) return 5;
          return 0;
        });
    EXPECT_TRUE(report.ok) << "ranks=" << ranks << ": " << report.describe();
  }
}

TEST(DistributedSolverSocket, F16WireStillConverges) {
  // The compressed wire perturbs only the exchanged faces; the solve must
  // still converge to the requested tolerance (residuals are computed
  // against the operator actually applied).
  const LaunchReport report =
      run_ranks(2, [&](int rank, SocketCommunicator& comm) {
        sve::set_vector_length(kVL);
        const Problem p;
        const RankDecomposition decomp(kDims, kSplit, 2, layout());
        Field x_local(decomp.grid(rank));
        const SolverResult res = rank_solve(p, decomp, comm, rank,
                                            Algorithm::kCG, x_local,
                                            Compression::kF16);
        return res.converged && res.final_residual <= kTol ? 0 : 1;
      });
  EXPECT_TRUE(report.ok) << report.describe();
}

TEST(DistributedSolverFaults, SeededTransientSoakIsBitwiseClean) {
  // The ROADMAP end-to-end soak: a seeded schedule of transient faults
  // (delays, spurious EOFs) under the distributed solver loop.  The retry
  // ladder must absorb every one -- same solution bits, same iteration
  // history as the clean solve, with the schedule provably armed.
  const LaunchReport report =
      run_ranks(2, [&](int rank, SocketCommunicator& socket_comm) {
        sve::set_vector_length(kVL);
        const Problem p;
        const RankDecomposition decomp(kDims, kSplit, 2, layout());

        Field x_clean(decomp.grid(rank));
        const SolverResult clean =
            rank_solve(p, decomp, socket_comm, rank, Algorithm::kCG, x_clean);
        if (!clean.converged) return 2;

        FaultyCommunicator comm(
            socket_comm, FaultSchedule::seeded(7, rank, /*nops=*/48, /*rate=*/6));
        RetryPolicy fast;
        fast.backoff_ms = 1;
        comm.set_retry_policy(fast);
        Field x_faulty(decomp.grid(rank));
        const SolverResult faulty =
            rank_solve(p, decomp, comm, rank, Algorithm::kCG, x_faulty);
        if (!faulty.converged) return 3;
        if (comm.faults_injected() == 0) return 4;  // soak must really fault
        if (!results_identical(faulty, clean)) return 5;
        if (norm2(x_faulty - x_clean) != 0.0) return 6;
        return 0;
      });
  EXPECT_TRUE(report.ok) << report.describe();
}

TEST(DistributedSolverFaults, RankCrashMidSolveYieldsTypedVerdictNotAHang) {
  LaunchOptions opt;
  opt.recv_timeout_ms = 10000;  // the survivor must NOT need this long

  const LaunchReport report = run_ranks(
      2,
      [](int rank, SocketCommunicator& socket_comm) {
        sve::set_vector_length(kVL);
        const Problem p;
        const RankDecomposition decomp(kDims, kSplit, 2, layout());
        if (rank == 1) {
          // SIGKILL self a few exchanges into the solver loop.
          FaultSchedule sched;
          FaultEvent e;
          e.op = FaultOp::kSend;
          e.at = 8;
          e.kind = FaultKind::kCrash;
          sched.events.push_back(e);
          FaultyCommunicator comm(socket_comm, sched);
          Field x_local(decomp.grid(rank));
          (void)rank_solve(p, decomp, comm, rank, Algorithm::kCG, x_local);
          return 9;  // unreachable: the schedule kills this process
        }
        Field x_local(decomp.grid(rank));
        const SolverResult res =
            rank_solve(p, decomp, socket_comm, rank, Algorithm::kCG, x_local);
        // The facade must hand back a typed comm verdict, not converge,
        // not hang, not escape as an exception.
        if (res.converged) return 3;
        if (res.comm_status != CommStatus::kPeerExited) return 4;
        if (res.comm_detail.empty()) return 5;
        return 0;
      },
      opt);

  EXPECT_FALSE(report.ok);  // rank 1 really died
  ASSERT_EQ(report.ranks.size(), 2u);
  EXPECT_FALSE(report.ranks[1].exited);
  EXPECT_EQ(report.ranks[1].term_signal, SIGKILL);
  // The survivor digested the crash into SolverResult and exited clean.
  EXPECT_TRUE(report.ranks[0].exited);
  EXPECT_EQ(report.ranks[0].exit_code, 0) << report.describe();
}

TEST(DistributedSolverMetrics, OverlapPhasesAreObservable) {
  // The acceptance criterion "faces posted before the interior sweep" is
  // pinned structurally: every dhop records one dhop_interior and one
  // dhop_faces region call (the overlap phases) plus the wire wait.
  sve::set_vector_length(kVL);
  metrics::reset();
  metrics::set_enabled(true);
  const Problem p;
  const RankDecomposition decomp(kDims, kSplit, 1, layout());
  SimCommunicator comm(1);
  Field x(decomp.grid(0));
  const SolverResult res = rank_solve(p, decomp, comm, 0, Algorithm::kCG, x);
  EXPECT_TRUE(res.converged);
#if SVELAT_METRICS_ENABLED
  const metrics::RegionStats interior = metrics::get("dhop_interior");
  const metrics::RegionStats faces = metrics::get("dhop_faces");
  const metrics::RegionStats wire = metrics::get("dhop_wire_wait");
  EXPECT_GE(interior.calls, 1u);
  EXPECT_EQ(interior.calls, faces.calls);
  EXPECT_EQ(interior.calls, wire.calls);
  EXPECT_GT(interior.bytes, faces.bytes);  // interior covers 6/8 of the slab
  EXPECT_GT(wire.bytes, 0.0);              // wire wait accounts real bytes
  EXPECT_EQ(metrics::get("solve").calls, 1u);
  // The overlapped operator never calls the blocking whole-field path.
  EXPECT_EQ(metrics::get("cshift_unpack").calls, 1u);  // gauge setup only
#endif
  metrics::reset();
}

}  // namespace
}  // namespace svelat::comms
