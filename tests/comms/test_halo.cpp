// Halo pack/exchange/unpack with compression (paper Sec. V-B: fp16 is used
// for compressing network-exchange data).
#include "comms/halo.h"

#include <gtest/gtest.h>

#include "lattice/lattice_all.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::comms {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<S>;

class HaloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 4},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    field_ = std::make_unique<Fermion>(grid_.get());
    gaussian_fill(SiteRNG(55), *field_);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<Fermion> field_;
};

TEST_F(HaloTest, FaceGeometryHelpers) {
  const lattice::Coordinate dims{4, 6, 8, 10};
  EXPECT_EQ(face_extent(dims, 0, 0), 6);
  EXPECT_EQ(face_extent(dims, 0, 2), 10);
  EXPECT_EQ(face_extent(dims, 3, 2), 8);
  lattice::Coordinate x;
  face_coor(1, 5, 2, 3, 4, x);
  EXPECT_EQ(x, (lattice::Coordinate{2, 5, 3, 4}));
}

TEST_F(HaloTest, PackFaceHasExpectedSizeAndContent) {
  const auto buf = pack_face(*field_, 2, 1);
  // 4^3 face sites x 12 complex components x 2 reals.
  EXPECT_EQ(buf.size(), 64u * qcd::Ns * qcd::Nc * 2);
  // Spot-check the first site (a=b=c=0 -> x = {0,0,1,0}).
  const auto s = field_->peek({0, 0, 1, 0});
  EXPECT_EQ(buf[0], s(0)(0).real());
  EXPECT_EQ(buf[1], s(0)(0).imag());
}

TEST_F(HaloTest, PackUnpackRoundtrip) {
  const auto buf = pack_face(*field_, 0, 3);
  const auto sites = unpack_face(buf, *field_);
  EXPECT_EQ(sites.size(), 64u);
  std::size_t idx = 0;
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      for (int c = 0; c < 4; ++c) {
        const auto expect = field_->peek({3, a, b, c});
        for (int sp = 0; sp < qcd::Ns; ++sp)
          for (int cc = 0; cc < qcd::Nc; ++cc)
            EXPECT_EQ(sites[idx](sp)(cc), expect(sp)(cc));
        ++idx;
      }
}

TEST_F(HaloTest, CommunicatorFifoSemantics) {
  SimCommunicator comm(2);
  comm.send(0, 1, 7, {1, 2, 3});
  comm.send(0, 1, 7, {4, 5});
  EXPECT_TRUE(comm.has_pending(1, 0, 7));
  EXPECT_EQ(comm.recv(1, 0, 7), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(comm.recv(1, 0, 7), (std::vector<std::uint8_t>{4, 5}));
  EXPECT_FALSE(comm.has_pending(1, 0, 7));
  EXPECT_EQ(comm.bytes_sent(), 5u);
}

TEST_F(HaloTest, RecvWithoutSendThrowsTyped) {
  SimCommunicator comm(2);
  try {
    (void)comm.recv(1, 0, 0);
    FAIL() << "recv of a never-sent message must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.status(), CommStatus::kNoMessage) << e.what();
  }
}

TEST_F(HaloTest, ExchangeUncompressedIsLossless) {
  SimCommunicator comm(2);
  std::size_t wire = 0;
  const auto packed = pack_face(*field_, 3, 0);
  const auto received =
      exchange_face(comm, *field_, 3, 0, Compression::kNone, 0, 1, &wire);
  EXPECT_EQ(wire, packed.size() * sizeof(double));
  ASSERT_EQ(received.size(), packed.size());
  for (std::size_t i = 0; i < packed.size(); ++i) EXPECT_EQ(received[i], packed[i]) << i;
}

TEST_F(HaloTest, ExchangeF32HalvesBandwidth) {
  SimCommunicator comm(2);
  std::size_t wire = 0;
  const auto packed = pack_face(*field_, 1, 2);
  const auto received =
      exchange_face(comm, *field_, 1, 2, Compression::kF32, 0, 1, &wire);
  EXPECT_EQ(wire, packed.size() * sizeof(float));
  for (std::size_t i = 0; i < packed.size(); ++i)
    EXPECT_EQ(received[i], static_cast<double>(static_cast<float>(packed[i]))) << i;
}

TEST_F(HaloTest, ExchangeF16QuartersBandwidth) {
  SimCommunicator comm(2);
  std::size_t wire = 0;
  const auto packed = pack_face(*field_, 2, 3);
  const auto received =
      exchange_face(comm, *field_, 2, 3, Compression::kF16, 0, 1, &wire);
  EXPECT_EQ(wire, packed.size() * sizeof(half));
  EXPECT_EQ(wire * 4, packed.size() * sizeof(double));
  double max_rel = 0;
  for (std::size_t i = 0; i < packed.size(); ++i) {
    if (packed[i] != 0.0)
      max_rel =
          std::max(max_rel, std::abs(received[i] - packed[i]) / std::abs(packed[i]));
  }
  // Gaussian data ~N(0,1): all values well inside f16 range, so the
  // relative error is bounded by the f16 epsilon.
  EXPECT_LT(max_rel, 0x1.0p-10);
  EXPECT_GT(max_rel, 0.0);  // compression is genuinely lossy
}

TEST_F(HaloTest, ExchangeMatchesCshiftWrap) {
  // The received face equals what Cshift pulls across the periodic
  // boundary: exchanging face x_mu=0 provides the +mu neighbour data for
  // sites at x_mu = L-1.
  SimCommunicator comm(1);
  const int mu = 3;
  const auto received =
      exchange_face(comm, *field_, mu, 0, Compression::kNone, 0, 0);
  const auto sites = unpack_face(received, *field_);
  const Fermion shifted = lattice::Cshift(*field_, mu, +1);
  std::size_t idx = 0;
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      for (int c = 0; c < 4; ++c) {
        // Site {a,b,c, L-1} sees f(x+mu) = f({a,b,c,0}) = face site idx.
        const auto expect = shifted.peek({a, b, c, 3});
        for (int sp = 0; sp < qcd::Ns; ++sp)
          for (int cc = 0; cc < qcd::Nc; ++cc)
            EXPECT_EQ(sites[idx](sp)(cc), expect(sp)(cc));
        ++idx;
      }
}

}  // namespace
}  // namespace svelat::comms
