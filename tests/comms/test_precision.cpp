// Buffer precision-conversion pipelines (FCVT + UZP/ZIP idiom) across
// vector lengths and awkward buffer sizes.
#include "comms/precision.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sve/sve.h"

namespace svelat::comms {
namespace {

class PrecisionTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { sve::set_vector_length(GetParam()); }
  void TearDown() override { sve::set_vector_length(512); }
};

std::vector<double> data(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.125 * static_cast<double>(i % 61) - 3.5;  // exactly representable in f16
  return v;
}

std::vector<std::size_t> sizes() {
  // Deliberately not multiples of any vector length: exercises the
  // predicated tails of the VLA loops.
  return {1, 2, 3, 7, 16, 33, 100, 257};
}

TEST_P(PrecisionTest, F64F32RoundtripExact) {
  for (std::size_t n : sizes()) {
    const auto in = data(n);
    std::vector<float> mid(n, -1.0f);
    std::vector<double> out(n, -1.0);
    narrow_f64_f32(in.data(), mid.data(), n);
    widen_f32_f64(mid.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mid[i], static_cast<float>(in[i])) << n << ":" << i;
      EXPECT_EQ(out[i], in[i]) << n << ":" << i;
    }
  }
}

TEST_P(PrecisionTest, F32F16RoundtripExact) {
  for (std::size_t n : sizes()) {
    const auto src = data(n);
    std::vector<float> in(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<float>(src[i]);
    std::vector<half> mid(n);
    std::vector<float> out(n, -1.0f);
    narrow_f32_f16(in.data(), mid.data(), n);
    widen_f16_f32(mid.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(float(mid[i]), in[i]) << n << ":" << i;  // values chosen f16-exact
      EXPECT_EQ(out[i], in[i]) << n << ":" << i;
    }
  }
}

TEST_P(PrecisionTest, F64F16RoundtripExact) {
  for (std::size_t n : sizes()) {
    const auto in = data(n);
    std::vector<half> mid(n);
    std::vector<double> out(n, -1.0);
    narrow_f64_f16(in.data(), mid.data(), n);
    widen_f16_f64(mid.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], in[i]) << n << ":" << i;
  }
}

TEST_P(PrecisionTest, F16RoundsNonRepresentable) {
  const std::size_t n = 37;
  std::vector<double> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = 0.1 * static_cast<double>(i + 1);
  std::vector<half> mid(n);
  std::vector<double> out(n);
  narrow_f64_f16(in.data(), mid.data(), n);
  widen_f16_f64(mid.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    // Relative error bounded by half's epsilon.
    EXPECT_NEAR(out[i], in[i], std::abs(in[i]) * 0x1.0p-10) << i;
    // And matches the scalar half conversion exactly.
    const float roundtrip = static_cast<float>(half(static_cast<float>(in[i])));
    EXPECT_EQ(out[i], static_cast<double>(roundtrip)) << i;
  }
}

TEST_P(PrecisionTest, NarrowDoesNotWritePastEnd) {
  const std::size_t n = 5;
  const auto in = data(n);
  std::vector<float> mid(n + 8, 99.0f);
  narrow_f64_f32(in.data(), mid.data(), n);
  for (std::size_t i = n; i < mid.size(); ++i) EXPECT_EQ(mid[i], 99.0f) << i;
}

INSTANTIATE_TEST_SUITE_P(AllVL, PrecisionTest,
                         ::testing::Values(128u, 256u, 384u, 512u, 1024u, 2048u));

}  // namespace
}  // namespace svelat::comms
