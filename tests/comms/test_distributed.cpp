// Multi-rank domain decomposition tests: scatter / gather / distributed
// Cshift with halo exchange must reproduce the single-rank operations.
#include "comms/distributed.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::comms {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using vobj = tensor::iVector<tensor::iVector<S, 3>, 4>;
using Field = lattice::Lattice<vobj>;

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(256);
    dims_ = {4, 4, 4, 8};
    layout_ = lattice::GridCartesian::default_simd_layout(S::Nsimd());
    global_grid_ = std::make_unique<lattice::GridCartesian>(dims_, layout_);
    global_ = std::make_unique<Field>(global_grid_.get());
    gaussian_fill(SiteRNG(77), *global_);
  }

  lattice::Coordinate dims_;
  lattice::Coordinate layout_;
  std::unique_ptr<lattice::GridCartesian> global_grid_;
  std::unique_ptr<Field> global_;
};

TEST_F(DistributedTest, OwnershipAndCoordinateMaps) {
  const RankDecomposition decomp(dims_, /*split_dim=*/3, /*ranks=*/2, layout_);
  EXPECT_EQ(decomp.local_dims(), (lattice::Coordinate{4, 4, 4, 4}));
  EXPECT_EQ(decomp.owner({0, 0, 0, 3}), 0);
  EXPECT_EQ(decomp.owner({0, 0, 0, 4}), 1);
  EXPECT_EQ(decomp.to_local({1, 2, 3, 6}), (lattice::Coordinate{1, 2, 3, 2}));
  EXPECT_EQ(decomp.to_global(1, {1, 2, 3, 2}), (lattice::Coordinate{1, 2, 3, 6}));
}

TEST_F(DistributedTest, ScatterGatherRoundtrip) {
  const RankDecomposition decomp(dims_, 3, 2, layout_);
  DistributedField<vobj> dist(decomp);
  scatter(decomp, *global_, dist);
  Field back(global_grid_.get());
  back.set_zero();
  gather(decomp, dist, back);
  EXPECT_EQ(norm2(back - *global_), 0.0);
}

TEST_F(DistributedTest, ScatterPreservesSiteValues) {
  const RankDecomposition decomp(dims_, 3, 2, layout_);
  DistributedField<vobj> dist(decomp);
  scatter(decomp, *global_, dist);
  // Global site (1,2,3,5) lives on rank 1 at local t=1.
  const auto expect = global_->peek({1, 2, 3, 5});
  const auto got = dist.locals[1].peek({1, 2, 3, 1});
  for (int s = 0; s < 4; ++s)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(got(s)(c), expect(s)(c));
}

TEST_F(DistributedTest, DistributedCshiftMatchesGlobal) {
  // For 4 ranks the local t-extent is 2, so the SIMD decomposition must
  // live in another dimension (z) to keep virtual-node blocks >= 2 sites.
  const lattice::Coordinate layout{1, 1, 2, 1};
  lattice::GridCartesian global_grid(dims_, layout);
  Field global(&global_grid);
  gaussian_fill(SiteRNG(77), global);
  for (const int ranks : {2, 4}) {
    const RankDecomposition decomp(dims_, 3, ranks, layout);
    SimCommunicator comm(ranks);
    DistributedField<vobj> dist(decomp), shifted(decomp);
    scatter(decomp, global, dist);
    for (const int disp : {+1, -1}) {
      distributed_cshift(decomp, comm, dist, shifted, disp);
      Field result(&global_grid);
      result.set_zero();
      gather(decomp, shifted, result);
      const Field expect = lattice::Cshift(global, 3, disp);
      EXPECT_EQ(norm2(result - expect), 0.0) << "ranks=" << ranks << " disp=" << disp;
    }
  }
}

TEST_F(DistributedTest, CompressedHaloApproximatesShift) {
  const RankDecomposition decomp(dims_, 3, 2, layout_);
  SimCommunicator comm(2);
  DistributedField<vobj> dist(decomp), shifted(decomp);
  scatter(decomp, *global_, dist);
  distributed_cshift(decomp, comm, dist, shifted, +1, Compression::kF16);
  Field result(global_grid_.get());
  result.set_zero();
  gather(decomp, shifted, result);
  const Field expect = lattice::Cshift(*global_, 3, +1);
  const double rel = std::sqrt(norm2(result - expect) / norm2(expect));
  EXPECT_GT(rel, 0.0);                 // the boundary slice is lossy
  EXPECT_LT(rel, 0x1.0p-10 * 0.8);     // bounded by f16 eps x boundary fraction
}

TEST_F(DistributedTest, WireTrafficMatchesFaceSize) {
  const RankDecomposition decomp(dims_, 3, 2, layout_);
  SimCommunicator comm(2);
  DistributedField<vobj> dist(decomp), shifted(decomp);
  scatter(decomp, *global_, dist);
  comm.reset_counters();
  distributed_cshift(decomp, comm, dist, shifted, +1);
  // Two ranks each send one 4^3 face of 12 complex = 24 doubles per site.
  const std::size_t expected = 2u * 64u * 24u * sizeof(double);
  EXPECT_EQ(comm.bytes_sent(), expected);
}

TEST_F(DistributedTest, UnevenSplitRejected) {
  EXPECT_DEATH(RankDecomposition(dims_, 3, 3, layout_), "divide evenly");
}

}  // namespace
}  // namespace svelat::comms
