// Rank-equivalence property suite: scatter -> halo-exchanged operator ->
// gather must reproduce the single-rank operator, for every transport.
//
// The sweep covers lattice dims, split dimension, ranks in {1, 2, 3, 4}
// and the compressed / uncompressed wire, against
//   - the simulated transport (all ranks in one process, mailbox routing),
//   - the socket transport with REAL OS processes (run_ranks forks one
//     process per rank; each compares its own sub-lattice bitwise and the
//     parent asserts every rank exited clean).
// Uncompressed exchanges must match bitwise; fp16 / fp32 wires are held to
// the respective epsilon at the rank boundary (acceptance criterion of the
// distributed transport).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "comms/distributed.h"
#include "comms/distributed_dhop.h"
#include "comms/socket.h"
#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::comms {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using vobj = qcd::SpinColourVector<S>;
using Field = qcd::LatticeFermion<S>;

constexpr unsigned kVL = 256;
constexpr int kSeed = 1234;

/// Relative-error ceilings: eps_f16 = 2^-11, eps_f32 = 2^-24; only the
/// boundary slice is lossy, so the field-level relative error stays below
/// one epsilon with margin.
double error_bound(Compression mode) {
  switch (mode) {
    case Compression::kNone: return 0.0;
    case Compression::kF32: return 0x1.0p-23;
    case Compression::kF16: return 0x1.0p-10;
  }
  return 0.0;
}

lattice::Coordinate pick_layout(const lattice::Coordinate& dims, int split_dim) {
  return split_simd_layout(dims, split_dim, S::Nsimd());
}

struct ShiftCase {
  lattice::Coordinate dims;
  int split_dim;
  int ranks;
  Compression mode;
};

std::vector<ShiftCase> shift_cases() {
  return {
      {{4, 4, 4, 8}, 3, 1, Compression::kNone},
      {{4, 4, 4, 8}, 3, 2, Compression::kNone},
      {{4, 4, 4, 8}, 3, 4, Compression::kNone},
      {{4, 4, 4, 8}, 3, 2, Compression::kF16},
      {{4, 4, 4, 8}, 3, 4, Compression::kF32},
      {{8, 4, 4, 4}, 0, 2, Compression::kNone},
      {{8, 4, 4, 4}, 0, 4, Compression::kF16},
      {{4, 6, 4, 4}, 1, 3, Compression::kNone},
      {{4, 6, 4, 4}, 1, 3, Compression::kF16},
      {{4, 4, 8, 4}, 2, 4, Compression::kNone},
      {{4, 4, 8, 4}, 2, 2, Compression::kF32},
  };
}

std::string describe(const ShiftCase& c, int disp) {
  std::string s = "dims={";
  for (int d = 0; d < lattice::Nd; ++d)
    s += std::to_string(c.dims[d]) + (d + 1 < lattice::Nd ? "," : "}");
  return s + " split=" + std::to_string(c.split_dim) +
         " ranks=" + std::to_string(c.ranks) + " wire=" + compression_name(c.mode) +
         " disp=" + std::to_string(disp);
}

/// Compare a rank-local result against the matching sub-lattice of the
/// single-rank result: bitwise for an uncompressed wire, else bounded
/// relative error.  Returns 0 on success (usable as a rank exit code).
int check_local(const Field& got, const Field& expect_local, Compression mode) {
  const double diff = norm2(got - expect_local);
  if (mode == Compression::kNone) return diff == 0.0 ? 0 : 1;
  const double rel = std::sqrt(diff / norm2(expect_local));
  return rel < error_bound(mode) ? 0 : 1;
}

/// The whole per-rank equivalence check, usable from both execution models:
/// build the (deterministic) global field, scatter this rank's piece, run
/// the halo-exchanged shift, compare against the single-rank Cshift.
int shift_rank_body(const ShiftCase& c, int disp, int rank, Communicator& comm) {
  sve::set_vector_length(kVL);
  const RankDecomposition decomp(c.dims, c.split_dim, c.ranks,
                                 pick_layout(c.dims, c.split_dim));
  lattice::GridCartesian global_grid(c.dims, pick_layout(c.dims, c.split_dim));
  Field global(&global_grid);
  gaussian_fill(SiteRNG(kSeed), global);

  const Field local = scatter_rank(decomp, global, rank);
  Field shifted(decomp.grid(rank));
  rank_cshift(decomp, comm, rank, local, shifted, disp, c.mode);

  const Field expect = scatter_rank(decomp, lattice::Cshift(global, c.split_dim, disp),
                                    rank);
  return check_local(shifted, expect, c.mode);
}

TEST(RankEquivalenceSim, ShiftSweepMatchesSingleRank) {
  sve::set_vector_length(kVL);
  for (const ShiftCase& c : shift_cases()) {
    const lattice::Coordinate layout = pick_layout(c.dims, c.split_dim);
    const RankDecomposition decomp(c.dims, c.split_dim, c.ranks, layout);
    lattice::GridCartesian global_grid(c.dims, layout);
    Field global(&global_grid);
    gaussian_fill(SiteRNG(kSeed), global);

    SimCommunicator comm(c.ranks);
    DistributedField<vobj> dist(decomp), shifted(decomp);
    scatter(decomp, global, dist);
    for (const int disp : {+1, -1}) {
      distributed_cshift(decomp, comm, dist, shifted, disp, c.mode);
      Field result(&global_grid);
      result.set_zero();
      gather(decomp, shifted, result);
      const Field expect = lattice::Cshift(global, c.split_dim, disp);
      if (c.mode == Compression::kNone) {
        EXPECT_EQ(norm2(result - expect), 0.0) << describe(c, disp);
      } else {
        const double rel = std::sqrt(norm2(result - expect) / norm2(expect));
        EXPECT_LT(rel, error_bound(c.mode)) << describe(c, disp);
        EXPECT_GT(rel, 0.0) << describe(c, disp) << " (wire should be lossy)";
      }
    }
  }
}

TEST(RankEquivalenceSim, PerRankDriverMatchesAllRanksDriver) {
  // rank_cshift (the real-process entry point) against an in-process
  // SocketWorld: same phases, same wire, one endpoint per rank.
  sve::set_vector_length(kVL);
  for (const ShiftCase& c : shift_cases()) {
    SocketWorld world(c.ranks);
    for (const int disp : {+1, -1}) {
      // Post for every rank first (single-threaded schedule), then
      // complete: mirrors what concurrent rank processes do in time.
      const RankDecomposition decomp(c.dims, c.split_dim, c.ranks,
                                     pick_layout(c.dims, c.split_dim));
      lattice::GridCartesian global_grid(c.dims, pick_layout(c.dims, c.split_dim));
      Field global(&global_grid);
      gaussian_fill(SiteRNG(kSeed), global);
      std::vector<Field> locals, shifted;
      for (int r = 0; r < c.ranks; ++r) {
        locals.push_back(scatter_rank(decomp, global, r));
        shifted.emplace_back(decomp.grid(r));
      }
      const int tag = kShiftTagBase + c.split_dim;
      for (int r = 0; r < c.ranks; ++r)
        detail::post_shift_face(decomp, world.rank(r), r, locals[r], disp, c.mode,
                                tag);
      for (int r = 0; r < c.ranks; ++r)
        detail::complete_shift(decomp, world.rank(r), r, locals[r], shifted[r], disp,
                               c.mode, tag);
      const Field global_shifted = lattice::Cshift(global, c.split_dim, disp);
      for (int r = 0; r < c.ranks; ++r)
        EXPECT_EQ(check_local(shifted[r], scatter_rank(decomp, global_shifted, r),
                              c.mode),
                  0)
            << describe(c, disp) << " rank=" << r;
    }
  }
}

TEST(RankEquivalenceSocket, ShiftSweepMatchesSingleRankInRealProcesses) {
  for (const ShiftCase& c : shift_cases()) {
    for (const int disp : {+1, -1}) {
      const LaunchReport report = run_ranks(
          c.ranks,
          [&](int rank, SocketCommunicator& comm) {
            return shift_rank_body(c, disp, rank, comm);
          });
      EXPECT_TRUE(report.ok) << describe(c, disp) << ": " << report.describe();
    }
  }
}

TEST(RankEquivalenceSocket, RootScatterGatherRoundtripsOverTheWire) {
  const lattice::Coordinate dims{4, 4, 4, 8};
  for (const int ranks : {2, 4}) {
    const LaunchReport report = run_ranks(ranks, [&](int rank,
                                                     SocketCommunicator& comm) {
      sve::set_vector_length(kVL);
      const lattice::Coordinate layout = pick_layout(dims, 3);
      const RankDecomposition decomp(dims, 3, ranks, layout);
      lattice::GridCartesian global_grid(dims, layout);

      Field global(&global_grid);
      Field local(decomp.grid(rank));
      if (rank == 0) gaussian_fill(SiteRNG(kSeed), global);
      scatter_root(decomp, comm, rank, rank == 0 ? &global : nullptr, local);
      // Every rank must now hold exactly its sub-lattice.
      if (norm2(local - scatter_rank(decomp, [&] {
                  Field g(&global_grid);
                  gaussian_fill(SiteRNG(kSeed), g);
                  return g;
                }(), rank)) != 0.0)
        return 2;

      Field back(&global_grid);
      back.set_zero();
      gather_root(decomp, comm, rank, local, rank == 0 ? &back : nullptr);
      if (rank == 0 && norm2(back - global) != 0.0) return 3;
      return 0;
    });
    EXPECT_TRUE(report.ok) << "ranks=" << ranks << ": " << report.describe();
  }
}

TEST(RankEquivalenceDhop, SimMatchesSingleRankBitwise) {
  sve::set_vector_length(kVL);
  const lattice::Coordinate dims{4, 4, 4, 8};
  const int split = 3;
  const lattice::Coordinate layout = pick_layout(dims, split);
  lattice::GridCartesian global_grid(dims, layout);

  qcd::GaugeField<S> gauge(&global_grid);
  for (int mu = 0; mu < lattice::Nd; ++mu)
    gaussian_fill(SiteRNG(500 + mu), gauge.U[static_cast<std::size_t>(mu)]);
  Field psi(&global_grid);
  gaussian_fill(SiteRNG(kSeed), psi);
  Field expect(&global_grid);
  qcd::dhop_via_cshift(gauge, psi, expect);

  for (const int ranks : {1, 2, 4}) {
    const RankDecomposition decomp(dims, split, ranks, layout);
    SimCommunicator comm(ranks);
    DistributedGauge<S> u(decomp);
    scatter_gauge(decomp, gauge, u);
    DistributedField<vobj> in(decomp), out(decomp);
    scatter(decomp, psi, in);
    distributed_dhop(decomp, comm, u, in, out);
    Field result(&global_grid);
    result.set_zero();
    gather(decomp, out, result);
    EXPECT_EQ(norm2(result - expect), 0.0) << "ranks=" << ranks;
  }
}

TEST(RankEquivalenceDhop, SocketMatchesSingleRankBitwiseInRealProcesses) {
  const lattice::Coordinate dims{4, 4, 4, 8};
  const int split = 3;
  for (const int ranks : {2, 4}) {
    const LaunchReport report =
        run_ranks(ranks, [&](int rank, SocketCommunicator& comm) {
          sve::set_vector_length(kVL);
          const lattice::Coordinate layout = pick_layout(dims, split);
          const RankDecomposition decomp(dims, split, ranks, layout);
          lattice::GridCartesian global_grid(dims, layout);

          qcd::GaugeField<S> gauge(&global_grid);
          for (int mu = 0; mu < lattice::Nd; ++mu)
            gaussian_fill(SiteRNG(500 + mu), gauge.U[static_cast<std::size_t>(mu)]);
          Field psi(&global_grid);
          gaussian_fill(SiteRNG(kSeed), psi);

          qcd::GaugeField<S> u_local(decomp.grid(rank));
          for (int mu = 0; mu < lattice::Nd; ++mu)
            u_local.U[static_cast<std::size_t>(mu)] =
                scatter_rank(decomp, gauge.U[static_cast<std::size_t>(mu)], rank);
          const Field in = scatter_rank(decomp, psi, rank);
          Field out(decomp.grid(rank));
          rank_dhop(decomp, comm, rank, u_local, in, out);

          Field expect(&global_grid);
          qcd::dhop_via_cshift(gauge, psi, expect);
          return check_local(out, scatter_rank(decomp, expect, rank),
                             Compression::kNone);
        });
    EXPECT_TRUE(report.ok) << "ranks=" << ranks << ": " << report.describe();
  }
}

TEST(RankEquivalenceSocket, WireTrafficMatchesFaceSize) {
  // Each rank sends exactly one face per shift; bytes_sent is per-endpoint
  // on the socket transport (the simulated transport counts all ranks in
  // one tally -- see test_distributed.cpp for that variant).
  const lattice::Coordinate dims{4, 4, 4, 8};
  const LaunchReport report = run_ranks(2, [&](int rank, SocketCommunicator& comm) {
    sve::set_vector_length(kVL);
    const lattice::Coordinate layout = pick_layout(dims, 3);
    const RankDecomposition decomp(dims, 3, 2, layout);
    lattice::GridCartesian global_grid(dims, layout);
    Field global(&global_grid);
    gaussian_fill(SiteRNG(kSeed), global);
    const Field local = scatter_rank(decomp, global, rank);
    Field shifted(decomp.grid(rank));
    comm.reset_counters();
    rank_cshift(decomp, comm, rank, local, shifted, +1);
    // One 4^3 face of 12 complex = 24 doubles per site.
    const std::size_t expected = 64u * 24u * sizeof(double);
    return comm.bytes_sent() == expected ? 0 : 1;
  });
  EXPECT_TRUE(report.ok) << report.describe();
}

}  // namespace
}  // namespace svelat::comms
