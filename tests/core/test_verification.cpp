// The Sec. V-D verification harness itself: 40 checks, all passing for
// every (VL, backend) the framework ports (unlike the paper's runs, where
// a few tests failed due to the immature 2018 toolchain -- our simulator
// substitute has no such bugs, documented in EXPERIMENTS.md).
#include "core/verification.h"

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/ports.h"

namespace svelat::core {
namespace {

TEST(Verification, BatteryHas40Checks) {
  EXPECT_EQ(check_names().size(), kNumChecks);
  // Names are unique.
  auto names = check_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Verification, AllChecksPass512Fcmla) {
  const auto report = run_verification(512, simd::Backend::kSveFcmla);
  EXPECT_TRUE(report.all_passed()) << format_report(report, true);
  EXPECT_EQ(report.total(), kNumChecks);
}

TEST(Verification, AllChecksPass256Real) {
  const auto report = run_verification(256, simd::Backend::kSveReal);
  EXPECT_TRUE(report.all_passed()) << format_report(report, true);
}

TEST(Verification, AllChecksPass128Generic) {
  const auto report = run_verification(128, simd::Backend::kGeneric);
  EXPECT_TRUE(report.all_passed()) << format_report(report, true);
}

TEST(Verification, ReportFormatting) {
  const auto report = run_verification(128, simd::Backend::kSveFcmla);
  const std::string brief = format_report(report, false);
  EXPECT_NE(brief.find("128"), std::string::npos);
  EXPECT_NE(brief.find("sve-fcmla"), std::string::npos);
  const std::string verbose = format_report(report, true);
  EXPECT_NE(verbose.find("dhop_vs_reference"), std::string::npos);
  EXPECT_NE(verbose.find("PASS"), std::string::npos);
}

TEST(Verification, RejectsUnsupportedVL) {
  EXPECT_DEATH((void)run_verification(1024, simd::Backend::kGeneric), "128/256/512");
}

TEST(Ports, TableListsGridAndSvelatPorts) {
  EXPECT_EQ(grid_table1_ports().size(), 6u);  // the six rows of Table I
  EXPECT_GE(svelat_ports().size(), 3u);
  const std::string table = ports_table();
  EXPECT_NE(table.find("AVX-512"), std::string::npos);
  EXPECT_NE(table.find("SVE"), std::string::npos);
  EXPECT_NE(table.find("generic"), std::string::npos);
  for (const auto& p : svelat_ports()) EXPECT_TRUE(p.implemented_here);
  for (const auto& p : grid_table1_ports()) EXPECT_FALSE(p.implemented_here);
}

TEST(Config, RuntimeSummaryMentionsVL) {
  const std::string s = runtime_summary();
  EXPECT_NE(s.find("svelat"), std::string::npos);
  EXPECT_NE(s.find("vector length"), std::string::npos);
}

}  // namespace
}  // namespace svelat::core
