// The measurement-service scheduler: "SVJR" result-record framing,
// crash-recovery pruning of the results file, and the end-to-end
// exactly-once story over REAL forked socket ranks -- a seeded transient
// soak that must finish in one launch, and a mid-job worker SIGKILL
// whose job must be requeued onto a survivor with bitwise-identical
// output.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "comms/faults.h"
#include "comms/socket.h"
#include "qcd/metropolis.h"
#include "service/scheduler.h"
#include "sve/sve.h"

namespace svelat::service {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string temp_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "svelat_sched_" + name;
  std::filesystem::remove_all(d);
  std::filesystem::create_directories(d);
  return d;
}

JobResult sample_result(std::uint64_t id) {
  JobResult r;
  r.job_id = id;
  r.config_id = 3;
  r.converged = true;
  r.iterations = 17;
  r.wall_seconds = 0.25;
  r.dhop_gb_per_sec = 1.5;
  r.dhop_gflop_per_sec = 0.7;
  r.linalg_gb_per_sec = 2.5;
  r.linalg_gflop_per_sec = 0.5;
  r.correlator = {4.0, 2.0, 1.0, 0.5, 1.0, 2.0};
  return r;
}

MeasurementJob small_job(std::uint64_t id) {
  MeasurementJob job;
  job.job_id = id;
  job.config_id = 0;
  job.source = {0, 0, 0, 0};
  job.spin = static_cast<int>((id - 1) % qcd::Ns);
  job.colour = static_cast<int>((id - 1) % qcd::Nc);
  job.mass = 0.4;
  job.tolerance = 1e-7;
  job.max_iterations = 400;
  return job;
}

// --- result records ---------------------------------------------------------

TEST(JobResultRecord, RoundTripsBitwise) {
  const JobResult r = sample_result(9);
  const std::vector<std::uint8_t> bytes = encode_result(r);
  std::size_t off = 0;
  const JobResult back = decode_result(bytes, off);
  EXPECT_EQ(off, bytes.size());
  EXPECT_EQ(back.job_id, r.job_id);
  EXPECT_EQ(back.config_id, r.config_id);
  EXPECT_EQ(back.converged, r.converged);
  EXPECT_EQ(back.iterations, r.iterations);
  EXPECT_EQ(back.wall_seconds, r.wall_seconds);
  EXPECT_EQ(back.dhop_gb_per_sec, r.dhop_gb_per_sec);
  EXPECT_EQ(back.linalg_gflop_per_sec, r.linalg_gflop_per_sec);
  EXPECT_EQ(back.correlator, r.correlator);
}

TEST(JobResultRecord, DecodeRejectsCorruption) {
  std::vector<std::uint8_t> bytes = encode_result(sample_result(1));
  bytes[20] ^= 0x10;  // inside the payload: CRC must catch it
  std::size_t off = 0;
  try {
    decode_result(bytes, off);
    FAIL() << "corrupt result record accepted";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.code(), io::IoErrorCode::kCorruptPayload);
  }

  std::vector<std::uint8_t> torn = encode_result(sample_result(2));
  torn.resize(torn.size() - 6);
  off = 0;
  EXPECT_THROW(decode_result(torn, off), io::IoError);
}

TEST(ResultsFile, AppendReadAndRecover) {
  const std::string dir = temp_dir("recover");
  const std::string results = dir + "/results.svjr";
  const std::string qpath = dir + "/jobs.svjq";

  // Queue bookkeeping: jobs 1 and 2 done, job 3 still claimed (its owner
  // "died" before completion was recorded).
  JobQueue queue(qpath);
  for (std::uint64_t id : {1u, 2u, 3u}) queue.enqueue(small_job(id));
  queue.claim_job(1, 1);
  queue.complete(1);
  queue.claim_job(2, 2);
  queue.complete(2);
  queue.claim_job(3, 1);

  append_result(results, sample_result(1));
  append_result(results, sample_result(2));
  append_result(results, sample_result(3));  // orphan: job 3 never reached done
  {
    // A torn tail, as a crash mid-append would leave.
    std::vector<std::uint8_t> tail = encode_result(sample_result(4));
    tail.resize(10);
    std::vector<std::uint8_t> whole = io::read_file_bytes(results);
    whole.insert(whole.end(), tail.begin(), tail.end());
    io::write_file_bytes(results, whole);
  }

  EXPECT_EQ(recover_results(results, queue), 1u);  // the orphan for job 3
  const std::vector<JobResult> kept = read_results(results);  // strict parse
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].job_id, 1u);
  EXPECT_EQ(kept[1].job_id, 2u);

  // Idempotent: a clean file recovers to itself without a rewrite.
  EXPECT_EQ(recover_results(results, queue), 0u);
  // A missing file is an empty history.
  EXPECT_EQ(recover_results(dir + "/absent.svjr", queue), 0u);
  std::filesystem::remove_all(dir);
}

// --- end to end over real forked ranks --------------------------------------

struct ServiceFixture {
  std::string dir;
  SchedulerConfig cfg;
  std::vector<MeasurementJob> jobs;
  std::vector<JobResult> reference;

  explicit ServiceFixture(const std::string& name, int njobs) : dir(temp_dir(name)) {
    sve::set_vector_length(256);
    cfg.gauge_path = dir + "/cfg0.svgf";
    cfg.queue_path = dir + "/jobs.svjq";
    cfg.results_path = dir + "/results.svjr";
    cfg.verbosity = 0;

    lattice::GridCartesian grid(
        {4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    qcd::GaugeField<S> gauge(&grid);
    qcd::random_gauge(SiteRNG(2018), gauge);
    io::save_gauge(cfg.gauge_path, gauge);

    JobQueue queue(cfg.queue_path);
    for (int n = 1; n <= njobs; ++n) {
      jobs.push_back(small_job(static_cast<std::uint64_t>(n)));
      queue.enqueue(jobs.back());
    }
    // The uninterrupted in-process truth the service must reproduce
    // bitwise (children run force-serial; reductions are deterministic).
    qcd::GaugeField<S> reloaded(&grid);
    io::load_gauge(cfg.gauge_path, reloaded);
    for (const MeasurementJob& job : jobs)
      reference.push_back(measure_job(reloaded, job));
  }

  /// Exactly-once + bitwise check of the final queue/results state.
  void verify() const {
    EXPECT_TRUE(JobQueue::load(cfg.queue_path).all_done());
    const std::vector<JobResult> results = read_results(cfg.results_path);
    ASSERT_EQ(results.size(), jobs.size());
    std::set<std::uint64_t> seen;
    for (const JobResult& r : results) {
      EXPECT_TRUE(seen.insert(r.job_id).second)
          << "job " << r.job_id << " completed more than once";
      ASSERT_GE(r.job_id, 1u);
      ASSERT_LE(r.job_id, jobs.size());
      const JobResult& ref = reference[r.job_id - 1];
      EXPECT_TRUE(r.converged);
      EXPECT_EQ(r.iterations, ref.iterations);
      EXPECT_EQ(r.correlator, ref.correlator) << "job " << r.job_id;
    }
    EXPECT_EQ(seen.size(), jobs.size());
  }
};

comms::LaunchReport launch_service(const ServiceFixture& fx, int ranks,
                                   std::uint64_t fault_seed, int crash_rank,
                                   std::uint64_t crash_at) {
  comms::LaunchOptions opt;
  opt.recv_timeout_ms = 3000;
  opt.log_dir = fx.dir;
  return comms::run_ranks(
      ranks,
      [&](int rank, comms::SocketCommunicator& socket_comm) {
        comms::FaultSchedule sched;
        if (fault_seed != 0) sched = comms::FaultSchedule::seeded(fault_seed, rank);
        if (rank == crash_rank) {
          comms::FaultEvent crash;
          crash.op = comms::FaultOp::kSend;
          crash.at = crash_at;
          crash.kind = comms::FaultKind::kCrash;
          sched.events.push_back(crash);
        }
        comms::FaultyCommunicator comm(socket_comm, std::move(sched));
        return scheduler_rank_body<S>(rank, comm, fx.cfg);
      },
      opt);
}

TEST(MeasurementService, SoakUnderSeededTransientsCompletesInOneLaunch) {
  const ServiceFixture fx("soak", 4);
  // Seeded delays and spurious EOFs on every rank: the retry ladder must
  // absorb all of them -- one launch, every rank exits 0, exactly once.
  const auto report = launch_service(fx, /*ranks=*/3, /*fault_seed=*/2018,
                                     /*crash_rank=*/-1, 0);
  EXPECT_TRUE(report.ok) << report.describe();
  fx.verify();
  std::filesystem::remove_all(fx.dir);
}

TEST(MeasurementService, WorkerCrashMidJobIsRequeuedExactlyOnce) {
  const ServiceFixture fx("crash", 4);
  // Worker 1 is SIGKILLed at its second result send -- a job it owns is
  // claimed but unreported.  The supervisor must requeue it onto the
  // surviving worker and still drain the queue within this launch.
  const auto report = launch_service(fx, /*ranks=*/3, /*fault_seed=*/0,
                                     /*crash_rank=*/1, /*crash_at=*/1);
  EXPECT_FALSE(report.ranks[1].exited);  // the injected SIGKILL really fired
  EXPECT_EQ(report.ranks[1].term_signal, SIGKILL);
  EXPECT_TRUE(report.ranks[0].ok()) << report.describe();  // supervisor drained
  fx.verify();

  // The attempt count records the failure: some job was claimed twice.
  const JobQueue queue = JobQueue::load(fx.cfg.queue_path);
  std::uint32_t max_attempts = 0;
  for (const QueueEntry& e : queue.entries())
    max_attempts = std::max(max_attempts, e.attempts);
  EXPECT_GE(max_attempts, 2u);
  std::filesystem::remove_all(fx.dir);
}

}  // namespace
}  // namespace svelat::service
