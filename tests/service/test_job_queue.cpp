// The measurement-service job queue: record round-trips, the FIFO state
// machine with duplicate-claim rejection, one distinct typed IoError per
// corruption class of the "SVJQ" file, and write atomicity under a real
// SIGKILL between fsync and rename (the write-fault-hook seam shared
// with the checkpoint layer).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "comms/socket.h"
#include "service/queue.h"

namespace svelat::service {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "svelat_queue_" + name;
}

MeasurementJob sample_job(std::uint64_t id) {
  MeasurementJob job;
  job.job_id = id;
  job.config_id = 7;
  job.source = {1, 2, 3, static_cast<int>(id % 4)};
  job.spin = static_cast<int>(id % qcd::Ns);
  job.colour = static_cast<int>(id % qcd::Nc);
  job.mass = 0.4;
  job.algorithm = solver::Algorithm::kCG;
  job.preconditioner = solver::Preconditioner::kSchurEvenOdd;
  job.tolerance = 1e-8;
  job.max_iterations = 600;
  return job;
}

void expect_decode_error(std::vector<std::uint8_t> bytes, io::IoErrorCode code,
                         const std::string& fragment) {
  JobQueue q("unused");
  try {
    q.decode(bytes);
    FAIL() << "decode accepted a corrupt queue file (wanted " << fragment << ")";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
  }
}

// --- job records ------------------------------------------------------------

TEST(MeasurementJob, RecordRoundTripsAtItsDocumentedSize) {
  const MeasurementJob job = sample_job(42);
  const std::vector<std::uint8_t> bytes = encode_job(job);
  ASSERT_EQ(bytes.size(), kJobRecordBytes);
  EXPECT_EQ(decode_job(bytes), job);
}

TEST(MeasurementJob, DecodeRejectsEveryDefectClass) {
  const std::vector<std::uint8_t> good = encode_job(sample_job(1));

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_job(bad_magic), io::IoError);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = 99;
  EXPECT_THROW(decode_job(bad_version), io::IoError);

  std::vector<std::uint8_t> truncated(good.begin(), good.begin() + 20);
  EXPECT_THROW(decode_job(truncated), io::IoError);

  std::vector<std::uint8_t> bad_spin = good;
  bad_spin[36] = 200;  // spin field: far outside [0, Ns)
  try {
    decode_job(bad_spin);
    FAIL() << "out-of-range spin accepted";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.code(), io::IoErrorCode::kCorruptPayload);
  }
}

// --- the FIFO state machine -------------------------------------------------

TEST(JobQueue, FifoClaimCompleteLifecycle) {
  const std::string path = temp_path("fifo.svjq");
  JobQueue queue(path);
  queue.enqueue(sample_job(1));
  queue.enqueue(sample_job(2));
  queue.enqueue(sample_job(3));
  EXPECT_EQ(queue.pending(), 3u);
  EXPECT_FALSE(queue.all_done());

  // Claims come out oldest-first, and survive a reload from disk.
  const auto first = queue.claim(/*worker=*/1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job_id, 1u);
  const auto second = queue.claim(/*worker=*/2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->job_id, 2u);

  JobQueue reloaded = JobQueue::load(path);
  EXPECT_EQ(reloaded.pending(), 1u);
  EXPECT_EQ(reloaded.claimed(), 2u);
  EXPECT_EQ(reloaded.find(1)->owner, 1);
  EXPECT_EQ(reloaded.find(1)->attempts, 1u);

  queue.complete(1);
  queue.complete(2);
  const auto third = queue.claim(/*worker=*/1);
  ASSERT_TRUE(third.has_value());
  queue.complete(3);
  EXPECT_TRUE(queue.all_done());
  EXPECT_TRUE(JobQueue::load(path).all_done());
  EXPECT_FALSE(queue.claim(1).has_value());  // nothing left to hand out
  std::filesystem::remove(path);
}

TEST(JobQueue, RequeueReturnsAJobAndKeepsItsAttemptCount) {
  const std::string path = temp_path("requeue.svjq");
  JobQueue queue(path);
  queue.enqueue(sample_job(5));
  ASSERT_TRUE(queue.claim(3).has_value());
  queue.requeue(5);  // the worker died; back to pending
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.find(5)->owner, -1);
  EXPECT_EQ(queue.find(5)->attempts, 1u);

  ASSERT_TRUE(queue.claim(4).has_value());
  EXPECT_EQ(queue.find(5)->attempts, 2u);  // failures stay visible

  // Supervisor-restart recovery: all claims (their owners are gone)
  // return to pending in one sweep.
  EXPECT_EQ(queue.requeue_claimed(), 1u);
  EXPECT_EQ(queue.pending(), 1u);
  std::filesystem::remove(path);
}

TEST(JobQueue, StateMachineViolationsAreTypedQueueErrors) {
  const std::string path = temp_path("violations.svjq");
  JobQueue queue(path);
  queue.enqueue(sample_job(1));
  EXPECT_THROW(queue.enqueue(sample_job(1)), QueueError);  // duplicate id

  queue.claim_job(1, /*worker=*/1);
  EXPECT_THROW(queue.claim_job(1, /*worker=*/2), QueueError);  // duplicate claim
  EXPECT_THROW(queue.requeue(99), QueueError);                 // unknown job

  queue.complete(1);
  EXPECT_THROW(queue.complete(1), QueueError);  // done is not claimed
  EXPECT_THROW(queue.requeue(1), QueueError);   // done cannot requeue

  queue.enqueue(sample_job(2));
  EXPECT_THROW(queue.complete(2), QueueError);  // pending was never claimed
  std::filesystem::remove(path);
}

// --- corruption classes -----------------------------------------------------

TEST(JobQueue, EveryCorruptionClassGetsItsOwnTypedError) {
  JobQueue queue(temp_path("corrupt.svjq"));
  queue.enqueue(sample_job(1));
  queue.enqueue(sample_job(2));
  const std::vector<std::uint8_t> good = queue.encode();

  expect_decode_error({1, 2, 3}, io::IoErrorCode::kShortRead, "header");

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  expect_decode_error(bad_magic, io::IoErrorCode::kBadMagic, "SVJQ");

  auto bad_version = good;
  bad_version[4] = 9;
  // The header CRC covers the version field, so re-seal it to reach the
  // version check (a random bit-flip is caught by the CRC below).
  {
    const std::uint32_t crc = io::crc32(bad_version.data(), 12);
    bad_version[12] = static_cast<std::uint8_t>(crc);
    bad_version[13] = static_cast<std::uint8_t>(crc >> 8);
    bad_version[14] = static_cast<std::uint8_t>(crc >> 16);
    bad_version[15] = static_cast<std::uint8_t>(crc >> 24);
  }
  expect_decode_error(bad_version, io::IoErrorCode::kBadVersion, "version 9");

  auto bad_header = good;
  bad_header[8] ^= 0x01;  // entry count no longer matches the header CRC
  expect_decode_error(bad_header, io::IoErrorCode::kCorruptHeader, "CRC-32");

  auto truncated = good;
  truncated.resize(good.size() - 10);
  expect_decode_error(truncated, io::IoErrorCode::kTruncated, "entries");

  auto trailing = good;
  trailing.push_back(0);
  expect_decode_error(trailing, io::IoErrorCode::kTrailingBytes, "longer");

  auto flipped = good;
  flipped[kQueueHeaderBytes + kQueueEntryBytes + 30] ^= 0x04;  // inside entry 1
  expect_decode_error(flipped, io::IoErrorCode::kCorruptPayload, "queue entry 1");
  std::filesystem::remove(temp_path("corrupt.svjq"));
}

// --- write atomicity --------------------------------------------------------

TEST(JobQueue, KillDuringEnqueuePreservesThePreviousQueueFile) {
  const std::string path = temp_path("killed.svjq");
  JobQueue queue(path);
  queue.enqueue(sample_job(1));
  queue.enqueue(sample_job(2));
  const std::vector<std::uint8_t> before = io::read_file_bytes(path);

  // A real forked process dies between fsync and rename of the enqueue
  // that would add job 3.
  const auto report = comms::run_ranks(1, [&](int, comms::SocketCommunicator&) {
    JobQueue q = JobQueue::load(path);
    io::set_write_fault_hook(+[] { ::raise(SIGKILL); });
    q.enqueue(sample_job(3));
    return 0;  // unreachable
  });
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.ranks[0].term_signal, SIGKILL);

  // The surviving file is byte-identical to the pre-kill queue and still
  // loads: two jobs, both pending, no trace of the torn third.
  EXPECT_EQ(io::read_file_bytes(path), before);
  JobQueue survived = JobQueue::load(path);
  EXPECT_EQ(survived.entries().size(), 2u);
  EXPECT_EQ(survived.pending(), 2u);
  EXPECT_EQ(survived.find(3), nullptr);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

}  // namespace
}  // namespace svelat::service
