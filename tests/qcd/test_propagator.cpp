// Propagator and pion-correlator tests.
#include "qcd/propagator.h"

#include <gtest/gtest.h>

#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using C = std::complex<double>;
using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

class PropagatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(256);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
};

TEST_F(PropagatorTest, PointSourceIsDelta) {
  LatticeFermion<S> src(grid_.get());
  point_source(src, {1, 2, 3, 4}, 2, 1);
  EXPECT_DOUBLE_EQ(norm2(src), 1.0);
  const auto s = src.peek({1, 2, 3, 4});
  EXPECT_EQ(s(2)(1), C(1, 0));
  EXPECT_EQ(s(0)(0), C(0, 0));
  const auto z = src.peek({0, 0, 0, 0});
  EXPECT_EQ(z(2)(1), C(0, 0));
}

TEST_F(PropagatorTest, MultGammaMatchesExplicitMatrix) {
  using SC = SpinColourVector<C>;
  SC p;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c) p(s)(c) = C(0.5 * s - c, 0.25 * c + s);
  for (int mu = 0; mu <= 4; ++mu) {
    const SC got = mult_gamma(mu, p);
    const auto m = gamma_matrix(mu);
    for (int si = 0; si < Ns; ++si)
      for (int c = 0; c < Nc; ++c) {
        C expect{};
        for (int sj = 0; sj < Ns; ++sj) expect += m(si, sj) * p(sj)(c);
        EXPECT_LT(std::abs(got(si)(c) - expect), 1e-14) << mu << ":" << si << ":" << c;
      }
  }
}

TEST_F(PropagatorTest, FieldLevelGammaIsInvolutionUpToSign) {
  LatticeFermion<S> f(grid_.get()), g(grid_.get()), h(grid_.get());
  gaussian_fill(SiteRNG(3), f);
  for (int mu = 0; mu <= 4; ++mu) {
    mult_gamma(mu, f, g);
    mult_gamma(mu, g, h);  // gamma_mu^2 = 1
    EXPECT_LT(norm2(h - f), 1e-20) << mu;
  }
}

TEST_F(PropagatorTest, FreeFieldCorrelatorSymmetric) {
  GaugeField<S> gauge(grid_.get());
  unit_gauge(gauge);
  solver::WilsonSolver<S> solver(
      gauge, 0.5,
      solver::SolverParams{}.with_tolerance(1e-9).with_max_iterations(600));
  Propagator<S> prop(grid_.get());
  const auto report = compute_propagator(solver, {0, 0, 0, 0}, prop);
  ASSERT_TRUE(report.all_converged());
  EXPECT_LT(report.worst_true_residual(), 1e-8);

  const auto corr = pion_correlator(prop);
  ASSERT_EQ(corr.size(), 8u);
  // All time slices positive; source slice dominates.
  for (double c : corr) EXPECT_GT(c, 0.0);
  for (std::size_t t = 1; t < corr.size(); ++t) EXPECT_LT(corr[t], corr[0]) << t;
  // Time-reflection symmetry (exact for unit gauge and point source at 0).
  for (std::size_t t = 1; t < 4; ++t)
    EXPECT_NEAR(corr[t], corr[8 - t], 1e-8 * corr[t]) << t;
  // Decay towards the midpoint.
  EXPECT_GT(corr[1], corr[2]);
  EXPECT_GT(corr[2], corr[3]);
}

TEST_F(PropagatorTest, EffectiveMassPositiveAndPlateauing) {
  GaugeField<S> gauge(grid_.get());
  unit_gauge(gauge);
  // Heavy quark: fast plateau.
  solver::WilsonSolver<S> solver(
      gauge, 0.8,
      solver::SolverParams{}.with_tolerance(1e-9).with_max_iterations(600));
  Propagator<S> prop(grid_.get());
  ASSERT_TRUE(compute_propagator(solver, {0, 0, 0, 0}, prop).all_converged());
  const auto meff = effective_mass(pion_correlator(prop));
  // In the decaying half, m_eff is positive.
  for (std::size_t t = 0; t < 3; ++t) EXPECT_GT(meff[t], 0.0) << t;
}

TEST_F(PropagatorTest, NonConvergenceReportedPerColumn) {
  // A starved iteration cap must be *reported* (per-column converged
  // flags), never asserted: physics drivers decide how to fail.
  GaugeField<S> gauge(grid_.get());
  random_gauge(SiteRNG(9), gauge);
  solver::WilsonSolver<S> solver(
      gauge, 0.2,
      solver::SolverParams{}.with_tolerance(1e-12).with_max_iterations(1));
  Propagator<S> prop(grid_.get());
  const auto report = compute_propagator(solver, {0, 0, 0, 0}, prop);
  ASSERT_EQ(report.columns.size(), static_cast<std::size_t>(Ns * Nc));
  EXPECT_FALSE(report.all_converged());
  for (const auto& col : report.columns) {
    EXPECT_FALSE(col.converged);
    EXPECT_EQ(col.iterations, 1);
    EXPECT_GT(col.true_residual, 1e-12);
    EXPECT_GT(col.rhs_norm, 0.0);
  }
}

TEST_F(PropagatorTest, CorrelatorGaugeInvariant) {
  // The pion correlator is gauge invariant: solving on a gauge-transformed
  // configuration gives the same C(t) (source transforms by V(0), sink sum
  // by unitarity).
  GaugeField<S> gauge(grid_.get());
  random_gauge(SiteRNG(5), gauge);
  const auto params =
      solver::SolverParams{}.with_tolerance(1e-10).with_max_iterations(800);
  solver::WilsonSolver<S> solver(gauge, 0.5, params);
  Propagator<S> prop(grid_.get());
  ASSERT_TRUE(compute_propagator(solver, {0, 0, 0, 0}, prop).all_converged());
  const auto corr = pion_correlator(prop);

  lattice::Lattice<ColourMatrix<S>> v(grid_.get());
  random_colour_transform(SiteRNG(6), v);
  GaugeField<S> gauge_t = gauge;
  gauge_transform(gauge_t, v);
  solver::WilsonSolver<S> solver_t(gauge_t, 0.5, params);
  Propagator<S> prop_t(grid_.get());
  ASSERT_TRUE(compute_propagator(solver_t, {0, 0, 0, 0}, prop_t).all_converged());
  const auto corr_t = pion_correlator(prop_t);

  for (std::size_t t = 0; t < corr.size(); ++t)
    EXPECT_NEAR(corr_t[t], corr[t], 1e-7 * corr[t]) << t;
}

}  // namespace
}  // namespace qcd = svelat::qcd
