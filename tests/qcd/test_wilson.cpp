// Wilson Dirac operator verification -- the core of the paper's Sec. V-D:
// the vectorized (SVE) implementation must agree with the scalar reference
// for every vector length and backend, and satisfy the operator identities.
#include "qcd/wilson.h"

#include <gtest/gtest.h>

#include "qcd/plaquette.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using C = std::complex<double>;

template <typename S>
struct WilsonFixture {
  using Fermion = LatticeFermion<S>;

  explicit WilsonFixture(lattice::Coordinate dims = {4, 4, 4, 4}, unsigned seed = 42)
      : vl(8 * S::vlb),
        grid(dims, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        psi(&grid) {
    random_gauge(SiteRNG(seed), gauge);
    gaussian_fill(SiteRNG(seed + 1000), psi);
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  GaugeField<S> gauge;
  Fermion psi;
};

template <typename S>
double dhop_vs_reference() {
  WilsonFixture<S> f;
  typename WilsonFixture<S>::Fermion out_simd(&f.grid), out_ref(&f.grid);
  const WilsonDirac<S> dirac(f.gauge, 0.1);
  dirac.dhop(f.psi, out_simd);
  dhop_reference(f.gauge, f.psi, out_ref);
  return norm2(out_simd - out_ref) / norm2(out_ref);
}

TEST(Wilson, DhopMatchesReference512Fcmla) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>()),
      1e-24);
}
TEST(Wilson, DhopMatchesReference256Fcmla) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>()),
      1e-24);
}
TEST(Wilson, DhopMatchesReference128Fcmla) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>()),
      1e-24);
}
TEST(Wilson, DhopMatchesReference512Real) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>()),
      1e-24);
}
TEST(Wilson, DhopMatchesReference512Generic) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>()),
      1e-24);
}
TEST(Wilson, DhopMatchesReferenceFloat512) {
  EXPECT_LT(
      (dhop_vs_reference<simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>>()),
      1e-9);
}

TEST(Wilson, DhopBitIdenticalAcrossVectorLengths) {
  // Strict Sec. V-D criterion: identical inputs (layout-keyed RNG) must
  // yield *bit-identical* Dhop outputs for every VL and backend, because
  // all paths evaluate the same real-arithmetic expressions.
  using S512 = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  using S256 = simd::SimdComplex<double, simd::kVLB256, simd::SveReal>;
  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::Generic>;

  auto run = [](auto tag) {
    using S = decltype(tag);
    WilsonFixture<S> f({4, 4, 4, 4}, 7);
    typename WilsonFixture<S>::Fermion out(&f.grid);
    const WilsonDirac<S> dirac(f.gauge, 0.1);
    dirac.dhop(f.psi, out);
    // Serialize by global coordinate.
    std::vector<C> flat;
    for (int x = 0; x < 4; ++x)
      for (int y = 0; y < 4; ++y)
        for (int z = 0; z < 4; ++z)
          for (int t = 0; t < 4; ++t) {
            const auto s = out.peek({x, y, z, t});
            for (int sp = 0; sp < Ns; ++sp)
              for (int c = 0; c < Nc; ++c) flat.push_back(s(sp)(c));
          }
    return flat;
  };

  const auto a = run(S512{});
  const auto b = run(S256{});
  const auto c = run(S128{});
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << i;
    EXPECT_EQ(a[i], c[i]) << i;
  }
}

TEST(Wilson, Gamma5Hermiticity) {
  // <a, gamma5 M gamma5 b> == conj(<b, M a>): gamma5-hermiticity of the
  // Wilson operator, the standard operator-level sanity check.
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  WilsonFixture<S> f;
  const WilsonDirac<S> dirac(f.gauge, 0.05);
  LatticeFermion<S> a(&f.grid), b(&f.grid), ma(&f.grid), g5mg5b(&f.grid);
  gaussian_fill(SiteRNG(1), a);
  gaussian_fill(SiteRNG(2), b);
  dirac.m(a, ma);

  LatticeFermion<S> tmp(&f.grid);
  WilsonDirac<S>::apply_gamma5(b, tmp);
  LatticeFermion<S> mtmp(&f.grid);
  dirac.m(tmp, mtmp);
  WilsonDirac<S>::apply_gamma5(mtmp, g5mg5b);

  const C lhs = innerProduct(a, g5mg5b);   // <a, g5 M g5 b> = <a, Mdag b>
  const C rhs = std::conj(innerProduct(b, ma));  // conj <b, M a>
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10 * std::abs(rhs) + 1e-10);
}

TEST(Wilson, MdagIsAdjointOfM) {
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
  WilsonFixture<S> f;
  const WilsonDirac<S> dirac(f.gauge, 0.2);
  LatticeFermion<S> a(&f.grid), b(&f.grid), ma(&f.grid), mdagb(&f.grid);
  gaussian_fill(SiteRNG(3), a);
  gaussian_fill(SiteRNG(4), b);
  dirac.m(a, ma);
  dirac.mdag(b, mdagb);
  const C lhs = innerProduct(mdagb, a);  // <Mdag b, a> = <b, M a>
  const C rhs = innerProduct(b, ma);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10 * std::abs(rhs) + 1e-10);
}

TEST(Wilson, MdagMIsHermitianPositive) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
  WilsonFixture<S> f;
  const WilsonDirac<S> dirac(f.gauge, 0.1);
  LatticeFermion<S> a(&f.grid), b(&f.grid), mma(&f.grid), mmb(&f.grid);
  gaussian_fill(SiteRNG(5), a);
  gaussian_fill(SiteRNG(6), b);
  dirac.mdag_m(a, mma);
  dirac.mdag_m(b, mmb);
  const C h1 = innerProduct(a, mmb);
  const C h2 = std::conj(innerProduct(b, mma));
  EXPECT_NEAR(std::abs(h1 - h2), 0.0, 1e-10 * std::abs(h1) + 1e-10);
  EXPECT_GT(innerProduct(a, mma).real(), 0.0);
}

TEST(Wilson, FreeFieldDhopOnConstantSpinor) {
  // With unit links and a constant field, Dh psi = 8 psi
  // (sum over 8 hops, each (1 +/- gamma) contributing psi + gamma terms
  // that cancel pairwise between +mu and -mu).
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> gauge(&grid);
  unit_gauge(gauge);
  LatticeFermion<S> psi(&grid), out(&grid);
  using sobj = LatticeFermion<S>::scalar_object;
  sobj s = tensor::Zero<sobj>();
  for (int sp = 0; sp < Ns; ++sp)
    for (int c = 0; c < Nc; ++c) s(sp)(c) = C(1.0 + sp, 0.5 * c);
  for (std::int64_t o = 0; o < grid.osites(); ++o)
    for (unsigned l = 0; l < grid.isites(); ++l) psi.poke(grid.global_coor(o, l), s);

  const WilsonDirac<S> dirac(gauge, 0.0);
  dirac.dhop(psi, out);
  const auto got = out.peek({1, 2, 3, 0});
  for (int sp = 0; sp < Ns; ++sp)
    for (int c = 0; c < Nc; ++c)
      EXPECT_NEAR(std::abs(got(sp)(c) - 8.0 * s(sp)(c)), 0.0, 1e-11);
}

TEST(Wilson, DhopGaugeCovariant) {
  // (Dh psi) transforms like psi: V(x) (Dh psi)(x) == Dh'[V U] (V psi)(x).
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  WilsonFixture<S> f;
  LatticeFermion<S> out(&f.grid), out_t(&f.grid);
  const WilsonDirac<S> dirac(f.gauge, 0.0);
  dirac.dhop(f.psi, out);

  lattice::Lattice<ColourMatrix<S>> v(&f.grid);
  random_colour_transform(SiteRNG(77), v);
  GaugeField<S> gauge_t = f.gauge;
  gauge_transform(gauge_t, v);
  LatticeFermion<S> psi_t = f.psi;
  gauge_transform(psi_t, v);
  const WilsonDirac<S> dirac_t(gauge_t, 0.0);
  dirac_t.dhop(psi_t, out_t);

  gauge_transform(out, v);  // V (Dh psi)
  const double rel = norm2(out_t - out) / norm2(out);
  EXPECT_LT(rel, 1e-20);
}

TEST(Wilson, TranslationCovariance) {
  // Dh commutes with lattice translations: Dh(Cshift psi) with shifted
  // gauge field equals Cshift(Dh psi).
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
  WilsonFixture<S> f;
  const int mu = 2;
  // Shift everything by one site in direction mu.
  GaugeField<S> gauge_s(&f.grid);
  for (int nu = 0; nu < lattice::Nd; ++nu)
    gauge_s.U[nu] = lattice::Cshift(f.gauge.U[nu], mu, +1);
  const LatticeFermion<S> psi_s = lattice::Cshift(f.psi, mu, +1);

  LatticeFermion<S> out(&f.grid), out_s(&f.grid);
  const WilsonDirac<S> dirac(f.gauge, 0.0);
  const WilsonDirac<S> dirac_s(gauge_s, 0.0);
  dirac.dhop(f.psi, out);
  dirac_s.dhop(psi_s, out_s);
  const LatticeFermion<S> expect = lattice::Cshift(out, mu, +1);
  EXPECT_LT(norm2(out_s - expect) / norm2(expect), 1e-24);
}

}  // namespace
}  // namespace svelat::qcd
