// Quenched Metropolis update tests.
#include "qcd/metropolis.h"

#include <gtest/gtest.h>

#include "qcd/plaquette.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

class MetropolisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(256);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 4},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<GaugeField<S>>(grid_.get());
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<GaugeField<S>> gauge_;
};

TEST_F(MetropolisTest, StapleClosesPlaquetteSum) {
  // Identity: sum over links of Re tr[U_mu(x) staple^dag... ] -- simpler
  // check: on the unit gauge every staple is 2*(Nd-1) copies of 1.
  unit_gauge(*gauge_);
  const auto st = staple_sum(*gauge_, {1, 2, 3, 0}, 1);
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) {
      const std::complex<double> expect = (i == j) ? 6.0 : 0.0;  // 2*(Nd-1)
      EXPECT_NEAR(std::abs(st(i, j) - expect), 0.0, 1e-12);
    }
}

TEST_F(MetropolisTest, SweepKeepsLinksInSU3) {
  random_gauge(SiteRNG(1), *gauge_);
  MetropolisParams params;
  params.beta = 5.5;
  metropolis_sweep(*gauge_, params, 0);
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    for (int t = 0; t < 4; ++t) {
      const auto s = gauge_->U[mu].peek({t, (t + 1) % 4, 0, t});
      ScalarColourMatrix m;
      for (int i = 0; i < Nc; ++i)
        for (int j = 0; j < Nc; ++j) m(i, j) = s(i, j);
      EXPECT_LT(unitarity_error(m), 1e-12);
      EXPECT_LT(std::abs(determinant(m) - std::complex<double>(1, 0)), 1e-12);
    }
  }
}

TEST_F(MetropolisTest, HighBetaOrdersTheGauge) {
  // At strong coupling start (plaquette ~ 0), a few sweeps at high beta
  // must drive the plaquette up decisively.
  random_gauge(SiteRNG(2), *gauge_);
  const double before = average_plaquette(*gauge_);
  MetropolisParams params;
  params.beta = 8.0;
  params.epsilon = 0.25;
  double acceptance = 0;
  for (int sweep = 0; sweep < 6; ++sweep)
    acceptance = metropolis_sweep(*gauge_, params, sweep).acceptance;
  const double after = average_plaquette(*gauge_);
  EXPECT_LT(std::abs(before), 0.1);
  EXPECT_GT(after, 0.35);
  EXPECT_GT(after, before + 0.3);
  EXPECT_GT(acceptance, 0.05);
  EXPECT_LT(acceptance, 0.99);
}

TEST_F(MetropolisTest, UnitGaugeStaysOrderedAtHighBeta) {
  unit_gauge(*gauge_);
  MetropolisParams params;
  params.beta = 10.0;
  params.epsilon = 0.15;
  for (int sweep = 0; sweep < 3; ++sweep) metropolis_sweep(*gauge_, params, sweep);
  EXPECT_GT(average_plaquette(*gauge_), 0.8);
}

TEST_F(MetropolisTest, ChainReproducibleAcrossLayouts) {
  // The Markov chain is keyed by global site indices: running the same
  // chain on a different vector length yields the same configuration.
  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
  MetropolisParams params;
  params.beta = 6.0;
  params.seed = 9;

  random_gauge(SiteRNG(3), *gauge_);
  for (int sweep = 0; sweep < 2; ++sweep) metropolis_sweep(*gauge_, params, sweep);
  const double p256 = average_plaquette(*gauge_);

  sve::VLGuard vl(128);
  lattice::GridCartesian g128({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S128::Nsimd()));
  GaugeField<S128> gauge128(&g128);
  random_gauge(SiteRNG(3), gauge128);
  for (int sweep = 0; sweep < 2; ++sweep) metropolis_sweep(gauge128, params, sweep);
  const double p128 = average_plaquette(gauge128);
  EXPECT_NEAR(p256, p128, 1e-12);
}

TEST_F(MetropolisTest, LowBetaStaysDisordered) {
  random_gauge(SiteRNG(4), *gauge_);
  MetropolisParams params;
  params.beta = 0.5;  // almost free measure
  for (int sweep = 0; sweep < 4; ++sweep) metropolis_sweep(*gauge_, params, sweep);
  EXPECT_LT(average_plaquette(*gauge_), 0.3);
}

}  // namespace
}  // namespace svelat::qcd
