// Wilson-loop and Polyakov-loop tests.
#include "qcd/observables.h"

#include <gtest/gtest.h>

#include "qcd/plaquette.h"
#include "qcd/su3.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;

class ObservablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<GaugeField<S>>(grid_.get());
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<GaugeField<S>> gauge_;
};

TEST_F(ObservablesTest, FreeFieldLoopsAreUnity) {
  unit_gauge(*gauge_);
  for (int r = 1; r <= 2; ++r)
    for (int t = 1; t <= 3; ++t)
      EXPECT_NEAR(average_wilson_loop(*gauge_, r, t), 1.0, 1e-12) << r << "x" << t;
  const auto poly = polyakov_loop(*gauge_);
  EXPECT_NEAR(poly.real(), 1.0, 1e-12);
  EXPECT_NEAR(poly.imag(), 0.0, 1e-12);
}

TEST_F(ObservablesTest, OneByOneLoopEqualsPlaquette) {
  random_gauge(SiteRNG(11), *gauge_);
  const double w11 = average_wilson_loop(*gauge_, 1, 1);
  const double plaq = average_plaquette(*gauge_);
  EXPECT_NEAR(w11, plaq, 1e-12);
}

TEST_F(ObservablesTest, LoopsGaugeInvariant) {
  random_gauge(SiteRNG(12), *gauge_);
  const double w12 = wilson_loop(*gauge_, 0, 3, 1, 2);
  const double w22 = wilson_loop(*gauge_, 1, 2, 2, 2);
  const auto poly = polyakov_loop(*gauge_);

  lattice::Lattice<ColourMatrix<S>> v(grid_.get());
  random_colour_transform(SiteRNG(13), v);
  gauge_transform(*gauge_, v);

  EXPECT_NEAR(wilson_loop(*gauge_, 0, 3, 1, 2), w12, 1e-12);
  EXPECT_NEAR(wilson_loop(*gauge_, 1, 2, 2, 2), w22, 1e-12);
  const auto poly_t = polyakov_loop(*gauge_);
  EXPECT_NEAR(poly_t.real(), poly.real(), 1e-12);
  EXPECT_NEAR(poly_t.imag(), poly.imag(), 1e-12);
}

TEST_F(ObservablesTest, LargerLoopsSmallerOnRandomGauge) {
  // Area law at strong coupling: W(R,T) ~ exp(-sigma R T) -> bigger loops
  // are (much) closer to zero.
  random_gauge(SiteRNG(14), *gauge_);
  const double w11 = std::abs(average_wilson_loop(*gauge_, 1, 1));
  const double w22 = std::abs(average_wilson_loop(*gauge_, 2, 2));
  EXPECT_LT(w22, std::max(w11, 0.02));
  EXPECT_LT(w11, 0.15);  // disordered
}

TEST_F(ObservablesTest, LoopSymmetricInRAndT) {
  // W(R,T) averaged over all planes equals W(T,R).
  random_gauge(SiteRNG(15), *gauge_);
  EXPECT_NEAR(average_wilson_loop(*gauge_, 1, 2), average_wilson_loop(*gauge_, 2, 1),
              1e-12);
}

TEST_F(ObservablesTest, LinkLineMatchesManualProduct) {
  random_gauge(SiteRNG(16), *gauge_);
  const auto line = detail::link_line(*gauge_, 2, 3);
  // Manual product at one site.
  const lattice::Coordinate x{1, 2, 0, 3};
  using C = std::complex<double>;
  tensor::iMatrix<C, Nc> expect;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) expect(i, j) = C{};
  const auto u0 = gauge_->U[2].peek(x);
  const auto u1 = gauge_->U[2].peek(lattice::displace(x, 2, 1, grid_->fdimensions()));
  const auto u2 = gauge_->U[2].peek(lattice::displace(
      lattice::displace(x, 2, 1, grid_->fdimensions()), 2, 1, grid_->fdimensions()));
  const auto prod = u0 * u1 * u2;
  const auto got = line.peek(x);
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j)
      EXPECT_NEAR(std::abs(got(i, j) - prod(i, j)), 0.0, 1e-12);
}

}  // namespace
}  // namespace svelat::qcd
