// Dhop implementation variants: stencil vs Cshift-based must agree
// bit-for-bit (same arithmetic, different data movement).
#include <gtest/gtest.h>

#include "qcd/wilson.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

template <typename S>
void check_variant_agreement() {
  sve::VLGuard vl(8 * S::vlb);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> gauge(&grid);
  random_gauge(SiteRNG(42), gauge);
  LatticeFermion<S> psi(&grid), out_stencil(&grid), out_cshift(&grid);
  gaussian_fill(SiteRNG(43), psi);

  const WilsonDirac<S> dirac(gauge, 0.0);
  dirac.dhop(psi, out_stencil);
  dhop_via_cshift(gauge, psi, out_cshift);
  EXPECT_EQ(norm2(out_stencil - out_cshift), 0.0);
}

TEST(DhopVariants, StencilEqualsCshift512Fcmla) {
  check_variant_agreement<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>();
}
TEST(DhopVariants, StencilEqualsCshift256Real) {
  check_variant_agreement<simd::SimdComplex<double, simd::kVLB256, simd::SveReal>>();
}
TEST(DhopVariants, StencilEqualsCshift128Generic) {
  check_variant_agreement<simd::SimdComplex<double, simd::kVLB128, simd::Generic>>();
}
TEST(DhopVariants, StencilEqualsCshiftFloat) {
  check_variant_agreement<simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>>();
}

TEST(DhopVariants, WideVector1024LatticeWorks) {
  // Paper Sec. V-B: wider vectors are possible with extra specialization.
  // The SIMD layer carries 1024-bit vectors; an 8-lane vComplexD lattice
  // must still reproduce the scalar reference.
  using S = simd::SimdComplex<double, simd::kVLB1024, simd::SveFcmla>;
  sve::VLGuard vl(1024);
  lattice::GridCartesian grid({4, 4, 4, 8},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> gauge(&grid);
  random_gauge(SiteRNG(7), gauge);
  LatticeFermion<S> psi(&grid), out(&grid), ref(&grid);
  gaussian_fill(SiteRNG(8), psi);
  const WilsonDirac<S> dirac(gauge, 0.0);
  dirac.dhop(psi, out);
  dhop_reference(gauge, psi, ref);
  EXPECT_LT(norm2(out - ref) / norm2(ref), 1e-24);
}

}  // namespace
}  // namespace svelat::qcd
