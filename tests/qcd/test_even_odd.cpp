// Even-odd (Schur) preconditioning tests: the production half-checkerboard
// path (qcd/even_odd.h, driven through solver::WilsonSolver) checked
// against the zero-padded test oracle (padded_oracle.h).
#include "qcd/even_odd.h"

#include <gtest/gtest.h>

#include "padded_oracle.h"
#include "solver/solver.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using C = std::complex<double>;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = LatticeFermion<S>;

class EvenOddTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<GaugeField<S>>(grid_.get());
    random_gauge(SiteRNG(42), *gauge_);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<GaugeField<S>> gauge_;
};

TEST_F(EvenOddTest, CheckerboardParityMatchesCoordinates) {
  const Checkerboard cb(grid_.get());
  for (std::int64_t o = 0; o < grid_->osites(); ++o) {
    for (unsigned l = 0; l < grid_->isites(); ++l) {
      const auto x = grid_->global_coor(o, l);
      EXPECT_EQ(cb.parity(o), (x[0] + x[1] + x[2] + x[3]) & 1)
          << "lane parity differs within an outer site";
    }
  }
}

TEST_F(EvenOddTest, ProjectOutZeroesOneParity) {
  const Checkerboard cb(grid_.get());
  Fermion f(grid_.get());
  gaussian_fill(SiteRNG(1), f);
  Fermion even = f;
  cb.project_out(even, 1);
  double even_norm = 0, cross = 0;
  for (std::int64_t o = 0; o < grid_->osites(); ++o) {
    const double n = std::real(tensor::innerProduct(even[o], even[o]).lane(0));
    if (cb.parity(o) == 0) even_norm += n;
    else cross += n;
  }
  EXPECT_GT(even_norm, 0.0);
  EXPECT_EQ(cross, 0.0);
}

TEST_F(EvenOddTest, HoppingConnectsOppositeParitiesOnly) {
  // Dh couples only opposite parities: Dh applied to an even-supported
  // field is exactly odd-supported.
  const Checkerboard cb(grid_.get());
  const WilsonDirac<S> dirac(*gauge_, 0.0);
  Fermion f(grid_.get()), out(grid_.get());
  gaussian_fill(SiteRNG(2), f);
  cb.project_out(f, 1);  // even support
  dirac.dhop(f, out);
  for (std::int64_t o = 0; o < grid_->osites(); ++o) {
    if (cb.parity(o) == 0) {
      const double n = std::abs(reduce(tensor::innerProduct(out[o], out[o])));
      EXPECT_EQ(n, 0.0) << o;
    }
  }
}

TEST_F(EvenOddTest, BlockDecompositionReconstructsM) {
  // (4+m) x - Dh x / 2 == Mee x_e + Meo x_o + Moe x_e + Moo x_o.
  const double mass = 0.3;
  const EvenOddWilson<S> eo(*gauge_, mass);
  const WilsonDirac<S> dirac(*gauge_, mass);
  Fermion x(grid_.get()), mx(grid_.get());
  gaussian_fill(SiteRNG(3), x);
  dirac.m(x, mx);

  const Checkerboard& cb = eo.checkerboard();
  Fermion x_e = x, x_o = x;
  cb.project_out(x_e, 1);
  cb.project_out(x_o, 0);
  Fermion heo(grid_.get()), hoe(grid_.get());
  eo.dhop_parity(x_o, heo, 0);  // Dh_eo x_o
  eo.dhop_parity(x_e, hoe, 1);  // Dh_oe x_e
  const double d = 4.0 + mass;
  Fermion rebuilt = d * x;
  Fermion hop = heo + hoe;
  rebuilt = rebuilt - 0.5 * hop;
  EXPECT_LT(norm2(rebuilt - mx) / norm2(mx), 1e-24);
}

TEST_F(EvenOddTest, MhatIsGamma5Hermitian) {
  const EvenOddWilson<S> eo(*gauge_, 0.1);
  const Checkerboard& cb = eo.checkerboard();
  Fermion a(grid_.get()), b(grid_.get()), ma(grid_.get()), mdagb(grid_.get());
  gaussian_fill(SiteRNG(4), a);
  gaussian_fill(SiteRNG(5), b);
  cb.project_out(a, 1);
  cb.project_out(b, 1);
  eo.mhat(a, ma);
  eo.mhat_dag(b, mdagb);
  const C lhs = innerProduct(mdagb, a);  // <Mhat^dag b, a> = <b, Mhat a>
  const C rhs = innerProduct(b, ma);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10 * std::abs(rhs) + 1e-12);
}

TEST_F(EvenOddTest, MhatPreservesEvenSupport) {
  const EvenOddWilson<S> eo(*gauge_, 0.1);
  const Checkerboard& cb = eo.checkerboard();
  Fermion a(grid_.get()), ma(grid_.get());
  gaussian_fill(SiteRNG(6), a);
  cb.project_out(a, 1);
  eo.mhat(a, ma);
  Fermion odd_part = ma;
  cb.project_out(odd_part, 0);
  EXPECT_EQ(norm2(odd_part), 0.0);
}

TEST_F(EvenOddTest, SchurSolveMatchesUnpreconditioned) {
  const double mass = 0.2, tol = 1e-9;
  const EvenOddWilson<S> eo(*gauge_, mass);
  const WilsonDirac<S> dirac(*gauge_, mass);
  Fermion b(grid_.get()), x_schur(grid_.get()), x_full(grid_.get());
  gaussian_fill(SiteRNG(7), b);
  x_full.set_zero();

  const auto s1 = solve_wilson_schur(eo, b, x_schur, tol, 500);
  const auto s2 = solver::solve_wilson(dirac, b, x_full, tol, 500);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_LT(s1.true_residual, 1e-8);
  // Both solve the same nonsingular system: solutions agree.
  EXPECT_LT(norm2(x_schur - x_full) / norm2(x_full), 1e-14);
}

TEST_F(EvenOddTest, SchurNeedsFewerIterations) {
  // The point of preconditioning: Mhat is better conditioned than M, so CG
  // converges in fewer iterations (roughly half for Wilson).
  const double mass = 0.1, tol = 1e-8;
  const EvenOddWilson<S> eo(*gauge_, mass);
  const WilsonDirac<S> dirac(*gauge_, mass);
  Fermion b(grid_.get()), x1(grid_.get()), x2(grid_.get());
  gaussian_fill(SiteRNG(8), b);
  x2.set_zero();
  const auto schur = solve_wilson_schur(eo, b, x1, tol, 500);
  const auto full = solver::solve_wilson(dirac, b, x2, tol, 500);
  ASSERT_TRUE(schur.converged);
  ASSERT_TRUE(full.converged);
  EXPECT_LT(schur.iterations, full.iterations);
}

TEST_F(EvenOddTest, SchurSolveVerifiesAgainstM) {
  const EvenOddWilson<S> eo(*gauge_, 0.25);
  Fermion b(grid_.get()), x(grid_.get()), mx(grid_.get());
  gaussian_fill(SiteRNG(9), b);
  const auto stats = solve_wilson_schur(eo, b, x, 1e-10, 800);
  ASSERT_TRUE(stats.converged);
  eo.full_operator().m(x, mx);
  EXPECT_LT(norm2(mx - b) / norm2(b), 1e-18);
}

// ---------------------------------------------------------------------------
// Half-checkerboard (production) path.
// ---------------------------------------------------------------------------

using HalfFermion = HalfLatticeFermion<S>;

TEST_F(EvenOddTest, DhopEoOeMatchZeroPaddedBitwise) {
  // The parity-restricted kernels share dhop_site with the full dhop, so
  // on identical inputs every site result is bitwise equal to the
  // zero-padded dhop_parity path.
  const EvenOddWilson<S> eo_full(*gauge_, 0.0);
  const WilsonDiracEO<S> eo(*gauge_, 0.0);
  const Checkerboard& cb = eo_full.checkerboard();

  Fermion f(grid_.get()), padded(grid_.get());
  gaussian_fill(SiteRNG(12), f);

  // dhop_eo: even output from odd input.
  Fermion f_o = f;
  cb.project_out(f_o, 0);  // odd support
  eo_full.dhop_parity(f_o, padded, 0);
  HalfFermion in_o(eo.odd_grid()), out_e(eo.even_grid());
  lattice::pick_checkerboard(f, in_o);
  eo.dhop_eo(in_o, out_e);
  HalfFermion expect_e(eo.even_grid());
  lattice::pick_checkerboard(padded, expect_e);
  EXPECT_EQ(norm2(out_e - expect_e), 0.0);

  // dhop_oe: odd output from even input.
  Fermion f_e = f;
  cb.project_out(f_e, 1);  // even support
  eo_full.dhop_parity(f_e, padded, 1);
  HalfFermion in_e(eo.even_grid()), out_o(eo.odd_grid());
  lattice::pick_checkerboard(f, in_e);
  eo.dhop_oe(in_e, out_o);
  HalfFermion expect_o(eo.odd_grid());
  lattice::pick_checkerboard(padded, expect_o);
  EXPECT_EQ(norm2(out_o - expect_o), 0.0);
}

TEST_F(EvenOddTest, DhopEoOeMatchScalarReference) {
  // Against the verification oracle: Dh applied to a single-parity source
  // equals dhop_eo + dhop_oe of the corresponding half fields.
  const WilsonDiracEO<S> eo(*gauge_, 0.0);
  Fermion f(grid_.get()), ref(grid_.get());
  gaussian_fill(SiteRNG(13), f);
  dhop_reference(*gauge_, f, ref);

  HalfFermion f_e(eo.even_grid()), f_o(eo.odd_grid());
  lattice::pick_checkerboard(f, f_e);
  lattice::pick_checkerboard(f, f_o);
  HalfFermion dh_e(eo.even_grid()), dh_o(eo.odd_grid());
  eo.dhop_eo(f_o, dh_e);  // even sites of Dh f read only odd sites
  eo.dhop_oe(f_e, dh_o);
  Fermion rebuilt(grid_.get());
  lattice::set_checkerboard(rebuilt, dh_e);
  lattice::set_checkerboard(rebuilt, dh_o);
  EXPECT_LT(norm2(rebuilt - ref) / norm2(ref), 1e-24);
}

TEST_F(EvenOddTest, HalfMhatMatchesZeroPaddedMhat) {
  const double mass = 0.3;
  const EvenOddWilson<S> eo_full(*gauge_, mass);
  const SchurEvenOddWilson<S> eo(*gauge_, mass);
  Fermion a(grid_.get()), ma(grid_.get());
  gaussian_fill(SiteRNG(14), a);
  eo_full.checkerboard().project_out(a, 1);  // even support
  eo_full.mhat(a, ma);

  HalfFermion a_e(eo.even_grid()), ma_e(eo.even_grid()), expect(eo.even_grid());
  lattice::pick_checkerboard(a, a_e);
  eo.mhat(a_e, ma_e);
  lattice::pick_checkerboard(ma, expect);
  EXPECT_EQ(norm2(ma_e - expect), 0.0);
}

TEST_F(EvenOddTest, HalfSchurSolveMatchesFullLatticeCG) {
  const double mass = 0.2, tol = 1e-9;
  solver::WilsonSolver<S> schur(
      *gauge_, mass,
      solver::SolverParams{}.with_tolerance(tol).with_max_iterations(500));
  const WilsonDirac<S> dirac(*gauge_, mass);
  Fermion b(grid_.get()), x_half(grid_.get()), x_full(grid_.get());
  gaussian_fill(SiteRNG(7), b);
  x_half.set_zero();
  x_full.set_zero();

  const auto s1 = schur.solve(b, x_half);
  const auto s2 = solver::solve_wilson(dirac, b, x_full, tol, 500);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_LT(s1.true_residual, 1e-8);
  // Both parities of the same nonsingular system's solution.
  EXPECT_LT(norm2(x_half - x_full) / norm2(x_full), 1e-14);
}

TEST_F(EvenOddTest, HalfSchurSolveMatchesZeroPaddedSchur) {
  const double mass = 0.2, tol = 1e-9;
  solver::WilsonSolver<S> half(
      *gauge_, mass,
      solver::SolverParams{}.with_tolerance(tol).with_max_iterations(500));
  const EvenOddWilson<S> eo_padded(*gauge_, mass);
  Fermion b(grid_.get()), x_half(grid_.get()), x_padded(grid_.get());
  gaussian_fill(SiteRNG(17), b);
  x_half.set_zero();

  const auto s1 = half.solve(b, x_half);
  const auto s2 = solve_wilson_schur(eo_padded, b, x_padded, tol, 500);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  // Same Schur algorithm; only the reduction grouping differs.
  EXPECT_LT(norm2(x_half - x_padded) / norm2(x_padded), 1e-16);
  EXPECT_LE(std::abs(s1.iterations - s2.iterations), 1);
}

TEST_F(EvenOddTest, RejectsParityNonUniformLayout) {
  // Odd block extent in a decomposed dimension breaks lane-uniform parity.
  using S2 = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
  sve::VLGuard vl(256);
  lattice::GridCartesian bad({4, 4, 4, 6},
                             lattice::GridCartesian::default_simd_layout(S2::Nsimd()));
  // rdims = {4,4,4,3}: decomposed dim 3 has odd extent 3.
  EXPECT_DEATH(Checkerboard cb(&bad), "parity-uniform");
}

}  // namespace
}  // namespace svelat::qcd
