// Gamma algebra and spin projection tests.
#include "qcd/gamma.h"

#include <gtest/gtest.h>

#include <complex>

namespace svelat::qcd {
namespace {

using C = std::complex<double>;
using Mat4 = tensor::iMatrix<C, Ns>;

Mat4 identity4() {
  Mat4 m = tensor::Zero<Mat4>();
  for (int i = 0; i < Ns; ++i) m(i, i) = C(1, 0);
  return m;
}

double max_abs_diff(const Mat4& a, const Mat4& b) {
  double d = 0;
  for (int i = 0; i < Ns; ++i)
    for (int j = 0; j < Ns; ++j) d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

TEST(Gamma, AnticommutationRelations) {
  // {gamma_mu, gamma_nu} = 2 delta_{mu nu}.
  for (int mu = 0; mu < 4; ++mu) {
    for (int nu = 0; nu < 4; ++nu) {
      const Mat4 anti = gamma_matrix(mu) * gamma_matrix(nu) +
                        gamma_matrix(nu) * gamma_matrix(mu);
      const Mat4 expect = (mu == nu) ? Mat4(C(2, 0) * identity4()) : tensor::Zero<Mat4>();
      EXPECT_LT(max_abs_diff(anti, expect), 1e-14) << mu << "," << nu;
    }
  }
}

TEST(Gamma, Hermiticity) {
  for (int mu = 0; mu <= 4; ++mu)
    EXPECT_LT(max_abs_diff(gamma_matrix(mu), tensor::adj(gamma_matrix(mu))), 1e-14) << mu;
}

TEST(Gamma, SquareToIdentity) {
  for (int mu = 0; mu <= 4; ++mu)
    EXPECT_LT(max_abs_diff(gamma_matrix(mu) * gamma_matrix(mu), identity4()), 1e-14)
        << mu;
}

TEST(Gamma, Gamma5IsProductOfGammas) {
  const Mat4 prod = gamma_matrix(0) * gamma_matrix(1) * gamma_matrix(2) * gamma_matrix(3);
  EXPECT_LT(max_abs_diff(prod, gamma_matrix(4)), 1e-14);
}

TEST(Gamma, Gamma5AnticommutesWithGammaMu) {
  for (int mu = 0; mu < 4; ++mu) {
    const Mat4 anti =
        gamma_matrix(4) * gamma_matrix(mu) + gamma_matrix(mu) * gamma_matrix(4);
    EXPECT_LT(max_abs_diff(anti, tensor::Zero<Mat4>()), 1e-14) << mu;
  }
}

TEST(Gamma, ProjectorsAreIdempotentUpToScale) {
  // P = (1 +/- gamma_mu) satisfies P^2 = 2P.
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {+1, -1}) {
      const Mat4 p = one_plus_gamma(mu, sign);
      EXPECT_LT(max_abs_diff(p * p, C(2, 0) * p), 1e-14) << mu << "," << sign;
    }
}

TEST(Gamma, ProjectorsSumToTwo) {
  for (int mu = 0; mu < 4; ++mu) {
    const Mat4 sum = one_plus_gamma(mu, +1) + one_plus_gamma(mu, -1);
    EXPECT_LT(max_abs_diff(sum, C(2, 0) * identity4()), 1e-14) << mu;
  }
}

// --- spin projection / reconstruction against explicit matrices -------------
using ScalarSpinColour = SpinColourVector<std::complex<double>>;

ScalarSpinColour test_spinor(int tag) {
  ScalarSpinColour p;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c)
      p(s)(c) = C(0.3 * ((tag * 7 + s * 3 + c) % 11) - 1.5,
                  0.7 * ((tag * 5 + s * 2 + c * 3) % 7) - 2.0);
  return p;
}

ScalarSpinColour apply_matrix(const Mat4& m, const ScalarSpinColour& p) {
  ScalarSpinColour r = tensor::Zero<ScalarSpinColour>();
  for (int i = 0; i < Ns; ++i)
    for (int j = 0; j < Ns; ++j)
      for (int c = 0; c < Nc; ++c) r(i)(c) += m(i, j) * p(j)(c);
  return r;
}

TEST(Gamma, ProjectReconstructEqualsExplicitProjector) {
  // R^s_mu (P^s_mu psi) must equal (1 + s*gamma_mu) psi for all mu, s.
  for (int mu = 0; mu < 4; ++mu) {
    for (int sign : {+1, -1}) {
      const ScalarSpinColour p = test_spinor(mu + 5 * (sign + 1));
      const auto h = spin_project(mu, sign, p);
      const auto r = spin_reconstruct(mu, sign, h);
      const auto expect = apply_matrix(one_plus_gamma(mu, sign), p);
      for (int s = 0; s < Ns; ++s)
        for (int c = 0; c < Nc; ++c)
          EXPECT_LT(std::abs(r(s)(c) - expect(s)(c)), 1e-13)
              << "mu=" << mu << " sign=" << sign << " s=" << s << " c=" << c;
    }
  }
}

TEST(Gamma, ReconstructAccumMatchesReconstruct) {
  for (int mu = 0; mu < 4; ++mu)
    for (int sign : {+1, -1}) {
      const ScalarSpinColour p = test_spinor(mu + 17 * (sign + 2));
      const auto h = spin_project(mu, sign, p);
      ScalarSpinColour acc = test_spinor(99);
      const ScalarSpinColour base = acc;
      spin_reconstruct_accum(mu, sign, h, acc);
      const auto expect = base + spin_reconstruct(mu, sign, h);
      for (int s = 0; s < Ns; ++s)
        for (int c = 0; c < Nc; ++c)
          EXPECT_LT(std::abs(acc(s)(c) - expect(s)(c)), 1e-13);
    }
}

TEST(Gamma, Gamma5FunctionMatchesMatrix) {
  const ScalarSpinColour p = test_spinor(3);
  const auto g5p = gamma5(p);
  const auto expect = apply_matrix(gamma_matrix(4), p);
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c) EXPECT_EQ(g5p(s)(c), expect(s)(c));
}

}  // namespace
}  // namespace svelat::qcd
