// Zero-padded even-odd Wilson oracle -- TEST-ONLY.
//
// The original reference formulation of the Schur solve: fields stay
// full-lattice-sized and the inactive parity is kept at zero.  Costs 2x
// memory and ~2x flops/bandwidth on solver temporaries (every
// dhop/axpy/norm sweeps dead sites; measured ~2x the dynamic instructions
// per CG iteration of the half-checkerboard path), but leaves every
// layout/permute code path identical to the unpreconditioned operator --
// which is exactly what makes it a good oracle: the production
// half-checkerboard kernels (qcd/even_odd.h, driven through
// solver::WilsonSolver) are checked bitwise site by site against it.
//
// Production code must not touch this path; it is deliberately parked
// under tests/.
#pragma once

#include "qcd/even_odd.h"
#include "solver/cg.h"

namespace svelat::qcd {

/// Even-odd decomposed Wilson operator on zero-padded full-lattice fields.
template <class S>
class EvenOddWilson {
 public:
  using Fermion = LatticeFermion<S>;
  static constexpr int kEven = 0;
  static constexpr int kOdd = 1;

  EvenOddWilson(const GaugeField<S>& gauge, double mass)
      : dirac_(gauge, mass), cb_(gauge.grid()), mass_(mass) {}

  const WilsonDirac<S>& full_operator() const { return dirac_; }
  const Checkerboard& checkerboard() const { return cb_; }
  double diag() const { return 4.0 + mass_; }

  /// Hopping term restricted to target parity: out_p = Dh in (sites of
  /// parity p written; the opposite parity of out is zeroed).
  void dhop_parity(const Fermion& in, Fermion& out, int parity) const {
    dirac_.dhop(in, out);
    cb_.project_out(out, 1 - parity);
  }

  /// Schur operator on the even sublattice:
  ///   Mhat x_e = (4+m) x_e - Dh_eo Dh_oe x_e / (4 (4+m)).
  void mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    dhop_parity(in, tmp, kOdd);    // tmp_o = Dh_oe in_e
    dhop_parity(tmp, out, kEven);  // out_e = Dh_eo tmp_o
    const double d = diag();
    const S a(typename S::scalar_type(d, 0.0));
    const S b(typename S::scalar_type(-0.25 / d, 0.0));
    thread_for(cb_.grid()->osites(),
               [&](std::int64_t o) { out[o] = a * in[o] + b * out[o]; });
    cb_.project_out(out, kOdd);
  }

  /// Mhat^dag via gamma5-hermiticity (gamma5 commutes with parity).
  void mhat_dag(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    WilsonDirac<S>::apply_gamma5(in, tmp);
    mhat(tmp, out);
    WilsonDirac<S>::apply_gamma5(out, out);
  }

  void mhat_dag_mhat(const Fermion& in, Fermion& out) const {
    Fermion tmp(cb_.grid());
    mhat(in, tmp);
    mhat_dag(tmp, out);
  }

 private:
  WilsonDirac<S> dirac_;
  Checkerboard cb_;
  double mass_;
};

/// Schur-preconditioned solve of M x = b on zero-padded fields:
///   1.  b'_e = b_e - Meo Moo^{-1} b_o
///   2.  solve Mhat x_e = b'_e   (CG on Mhat^dag Mhat)
///   3.  x_o = Moo^{-1} (b_o - Moe x_e)
template <class S>
solver::SolverResult solve_wilson_schur(const EvenOddWilson<S>& eo,
                                        const LatticeFermion<S>& b, LatticeFermion<S>& x,
                                        double tolerance, int max_iterations) {
  using Fermion = LatticeFermion<S>;
  const Checkerboard& cb = eo.checkerboard();
  const lattice::GridCartesian* grid = cb.grid();
  const double d = eo.diag();

  // Split b by parity.
  Fermion b_e = b, b_o = b;
  cb.project_out(b_e, EvenOddWilson<S>::kOdd);
  cb.project_out(b_o, EvenOddWilson<S>::kEven);

  // 1. b'_e = b_e + (1/(2(4+m))) Dh_eo b_o     (Meo = -Dh_eo/2)
  Fermion tmp(grid), b_prime(grid);
  eo.dhop_parity(b_o, tmp, EvenOddWilson<S>::kEven);
  axpy(b_prime, 0.5 / d, tmp, b_e);
  cb.project_out(b_prime, EvenOddWilson<S>::kOdd);

  // 2. Normal-equation CG on the even sublattice.
  Fermion rhs(grid);
  eo.mhat_dag(b_prime, rhs);
  Fermion x_e(grid);
  x_e.set_zero();
  auto op = [&eo](const Fermion& in, Fermion& out) { eo.mhat_dag_mhat(in, out); };
  solver::SolverResult stats =
      solver::conjugate_gradient(op, rhs, x_e, tolerance, max_iterations);

  // 3. x_o = (b_o + (1/2) Dh_oe x_e) / (4+m).
  eo.dhop_parity(x_e, tmp, EvenOddWilson<S>::kOdd);
  Fermion x_o(grid);
  axpy(x_o, 0.5, tmp, b_o);
  x_o = (1.0 / d) * x_o;
  cb.project_out(x_o, EvenOddWilson<S>::kEven);

  x = x_e + x_o;

  // True residual of the *full* system.
  Fermion mx(grid), r(grid);
  eo.full_operator().m(x, mx);
  r = b - mx;
  stats.true_residual = std::sqrt(norm2(r) / norm2(b));
  return stats;
}

}  // namespace svelat::qcd
