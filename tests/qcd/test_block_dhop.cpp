// Batched multi-RHS operator kernels vs the sequential operators.
//
// qcd/block.h's contract: column j of every batched kernel performs the
// sequential kernel's floating-point operations in the sequential order,
// so batched applications are BITWISE equal per column -- including the
// fused gamma5 (mdag / mhat_dag) and fused-diagonal forms.  The only
// documented exception is mhat_norm2's RETURNED pAp value, which
// regroups <p, Mhat^dag Mhat p> into |Mhat p|^2 through the chunked
// reduction tree: bitwise equal to norm2(Mhat p), eps-equal to the
// sequential inner product.
#include "qcd/block.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/qcd.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = LatticeFermion<S>;
using Half = HalfLatticeFermion<S>;

template <class FieldT>
bool fields_bitwise(const FieldT& a, const FieldT& b) {
  using vobj = typename FieldT::vector_object;
  for (std::int64_t o = 0; o < a.osites(); ++o) {
    const auto* pa = reinterpret_cast<const double*>(&a[o]);
    const auto* pb = reinterpret_cast<const double*>(&b[o]);
    for (std::size_t k = 0; k < sizeof(vobj) / sizeof(double); ++k)
      if (pa[k] != pb[k]) return false;
  }
  return true;
}

template <int N>
struct BlockDhopFixture {
  BlockDhopFixture()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        dirac((random_gauge(SiteRNG(2018), gauge), gauge), 0.2),
        eo(gauge, 0.2) {}

  /// A block field plus its per-column sequential twins, on either grid.
  template <class GridP, class BlockT, class ColT>
  void fill(GridP grid_ptr, BlockT& blk, std::vector<ColT>& cols,
            unsigned seed_base) const {
    for (int j = 0; j < N; ++j) {
      cols.emplace_back(grid_ptr);
      gaussian_fill(SiteRNG(seed_base + static_cast<unsigned>(j)), cols.back());
      blk.copy_in_column(j, cols.back());
    }
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  GaugeField<S> gauge;
  WilsonDirac<S> dirac;
  SchurEvenOddWilson<S> eo;
};

constexpr int N = 4;

TEST(BlockDhop, FullOperatorColumnsMatchSequentialBitwise) {
  BlockDhopFixture<N> f;
  BlockWilsonDirac<S, N> bop(f.dirac);
  BlockFermion<S, N> in(&f.grid), out(&f.grid);
  std::vector<Field> cols;
  f.fill(&f.grid, in, cols, 10);

  Field seq(&f.grid), col(&f.grid);
  const auto check = [&](const char* what, auto&& batched, auto&& sequential) {
    batched(in, out);
    for (int j = 0; j < N; ++j) {
      sequential(cols[static_cast<std::size_t>(j)], seq);
      out.copy_out_column(j, col);
      EXPECT_TRUE(fields_bitwise(col, seq)) << what << " col " << j;
    }
  };
  check(
      "dhop", [&](auto& i, auto& o) { bop.dhop(i, o); },
      [&](auto& i, auto& o) { f.dirac.dhop(i, o); });
  check(
      "m", [&](auto& i, auto& o) { bop.m(i, o); },
      [&](auto& i, auto& o) { f.dirac.m(i, o); });
  check(
      "mdag", [&](auto& i, auto& o) { bop.mdag(i, o); },
      [&](auto& i, auto& o) { f.dirac.mdag(i, o); });
  check(
      "mdag_m", [&](auto& i, auto& o) { bop.mdag_m(i, o); },
      [&](auto& i, auto& o) { f.dirac.mdag_m(i, o); });
}

TEST(BlockDhop, SchurOperatorColumnsMatchSequentialBitwise) {
  BlockDhopFixture<N> f;
  BlockSchurEvenOddWilson<S, N> beo(f.eo);
  HalfBlockFermion<S, N> in(f.eo.even_grid()), out(f.eo.even_grid());
  std::vector<Half> cols;
  f.fill(f.eo.even_grid(), in, cols, 20);

  Half seq(f.eo.even_grid()), col(f.eo.even_grid());
  const auto check = [&](const char* what, auto&& batched, auto&& sequential) {
    batched(in, out);
    for (int j = 0; j < N; ++j) {
      sequential(cols[static_cast<std::size_t>(j)], seq);
      out.copy_out_column(j, col);
      EXPECT_TRUE(fields_bitwise(col, seq)) << what << " col " << j;
    }
  };
  check(
      "mhat", [&](auto& i, auto& o) { beo.mhat(i, o); },
      [&](auto& i, auto& o) { f.eo.mhat(i, o); });
  check(
      "mhat_dag", [&](auto& i, auto& o) { beo.mhat_dag(i, o); },
      [&](auto& i, auto& o) { f.eo.mhat_dag(i, o); });
  check(
      "mhat_dag_mhat", [&](auto& i, auto& o) { beo.mhat_dag_mhat(i, o); },
      [&](auto& i, auto& o) { f.eo.mhat_dag_mhat(i, o); });
}

TEST(BlockDhop, MhatNorm2FusesOperatorAndPapReduction) {
  BlockDhopFixture<N> f;
  BlockSchurEvenOddWilson<S, N> beo(f.eo);
  HalfBlockFermion<S, N> p(f.eo.even_grid()), mp(f.eo.even_grid());
  std::vector<Half> cols;
  f.fill(f.eo.even_grid(), p, cols, 30);

  const std::array<double, N> pap = beo.mhat_norm2(p, mp);

  Half seq(f.eo.even_grid()), ap(f.eo.even_grid()), col(f.eo.even_grid());
  for (int j = 0; j < N; ++j) {
    const auto& pc = cols[static_cast<std::size_t>(j)];
    f.eo.mhat(pc, seq);
    mp.copy_out_column(j, col);
    // The operator output is bitwise the sequential mhat's...
    EXPECT_TRUE(fields_bitwise(col, seq)) << "col " << j;
    // ...and the fused pAp is bitwise norm2(Mhat p): same per-site |v|^2
    // values through the same chunked reduction tree.
    EXPECT_EQ(pap[static_cast<std::size_t>(j)], norm2(seq)) << "col " << j;
    // The documented regrouping vs the sequential CG's two-pass
    // <p, Mhat^dag Mhat p> is eps-level, not bitwise.
    f.eo.mhat_dag(seq, ap);
    const double pap_seq = std::real(innerProduct(pc, ap));
    EXPECT_NEAR(pap[static_cast<std::size_t>(j)] / pap_seq, 1.0, 1e-12) << "col " << j;
  }
}

TEST(BlockDhop, WidthOneBlockIsStillBitwise) {
  BlockDhopFixture<1> f;
  BlockSchurEvenOddWilson<S, 1> beo(f.eo);
  HalfBlockFermion<S, 1> in(f.eo.even_grid()), out(f.eo.even_grid());
  Half b(f.eo.even_grid()), seq(f.eo.even_grid()), col(f.eo.even_grid());
  gaussian_fill(SiteRNG(40), b);
  in.copy_in_column(0, b);
  beo.mhat_dag_mhat(in, out);
  f.eo.mhat_dag_mhat(b, seq);
  out.copy_out_column(0, col);
  EXPECT_TRUE(fields_bitwise(col, seq));
}

}  // namespace
}  // namespace svelat::qcd
