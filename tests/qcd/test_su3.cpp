// SU(3) utilities and gauge-field construction tests.
#include "qcd/su3.h"

#include <gtest/gtest.h>

#include "qcd/plaquette.h"
#include "sve/sve.h"

namespace svelat::qcd {
namespace {

using C = std::complex<double>;

TEST(Su3, ProjectProducesUnitaryDetOne) {
  SiteRNG rng(5);
  for (std::uint64_t key = 0; key < 32; ++key) {
    const ScalarColourMatrix u = random_su3(rng, key);
    EXPECT_LT(unitarity_error(u), 1e-12) << key;
    EXPECT_LT(std::abs(determinant(u) - C(1, 0)), 1e-12) << key;
  }
}

TEST(Su3, ProjectionIsIdempotent) {
  SiteRNG rng(6);
  const ScalarColourMatrix u = random_su3(rng, 3);
  const ScalarColourMatrix v = project_su3(u);
  double d = 0;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) d = std::max(d, std::abs(u(i, j) - v(i, j)));
  EXPECT_LT(d, 1e-12);
}

TEST(Su3, GroupClosure) {
  SiteRNG rng(7);
  const ScalarColourMatrix a = random_su3(rng, 1);
  const ScalarColourMatrix b = random_su3(rng, 2);
  const ScalarColourMatrix ab = a * b;
  EXPECT_LT(unitarity_error(ab), 1e-12);
  EXPECT_LT(std::abs(determinant(ab) - C(1, 0)), 1e-12);
  // Inverse = adjoint.
  const ScalarColourMatrix inv = adj(a) * a;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j)
      EXPECT_LT(std::abs(inv(i, j) - ((i == j) ? C(1, 0) : C(0, 0))), 1e-12);
}

TEST(Su3, RandomIsDeterministicPerKey) {
  SiteRNG a(11), b(11);
  const auto ua = random_su3(a, 42, 64);
  const auto ub = random_su3(b, 42, 64);
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j) EXPECT_EQ(ua(i, j), ub(i, j));
  // Different keys decorrelate.
  const auto uc = random_su3(a, 43, 64);
  EXPECT_NE(ua(0, 0), uc(0, 0));
}

TEST(Su3, DeterminantReference) {
  ScalarColourMatrix m = tensor::Zero<ScalarColourMatrix>();
  m(0, 0) = C(2, 0);
  m(1, 1) = C(3, 0);
  m(2, 2) = C(4, 0);
  EXPECT_LT(std::abs(determinant(m) - C(24, 0)), 1e-14);
  m(0, 1) = C(0, 1);  // triangular: det unchanged
  EXPECT_LT(std::abs(determinant(m) - C(24, 0)), 1e-14);
}

TEST(Su3, UnitGaugeFieldPlaquetteIsOne) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> g(&grid);
  unit_gauge(g);
  EXPECT_NEAR(average_plaquette(g), 1.0, 1e-12);
}

TEST(Su3, RandomGaugeLinksAreUnitaryEverywhere) {
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
  sve::VLGuard vl(256);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> g(&grid);
  SiteRNG rng(21);
  random_gauge(rng, g);
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    for (int x = 0; x < 4; ++x) {
      const auto u = g.U[mu].peek({x, (x + 1) % 4, 0, x});
      ScalarColourMatrix m;
      for (int i = 0; i < Nc; ++i)
        for (int j = 0; j < Nc; ++j) m(i, j) = u(i, j);
      EXPECT_LT(unitarity_error(m), 1e-12);
    }
  }
}

TEST(Su3, RandomGaugePlaquetteIsDisordered) {
  // A random (strong-coupling) configuration has plaquette near 0.
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> g(&grid);
  SiteRNG rng(22);
  random_gauge(rng, g);
  const double p = average_plaquette(g);
  EXPECT_LT(std::abs(p), 0.15);  // ~1/sqrt(V) fluctuations around 0
}

TEST(Su3, PlaquetteGaugeInvariant) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  GaugeField<S> g(&grid);
  SiteRNG rng(23);
  random_gauge(rng, g);
  const double before = average_plaquette(g);

  lattice::Lattice<ColourMatrix<S>> v(&grid);
  random_colour_transform(SiteRNG(24), v);
  gauge_transform(g, v);
  const double after = average_plaquette(g);
  EXPECT_NEAR(before, after, 1e-12);
}

TEST(Su3, PlaquetteIdenticalAcrossVectorLengths) {
  // Same seed, different layouts: identical gauge physics (Sec. V-D).
  using S512 = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
  double p512, p128;
  {
    sve::VLGuard vl(512);
    lattice::GridCartesian grid(
        {4, 4, 4, 4}, lattice::GridCartesian::default_simd_layout(S512::Nsimd()));
    GaugeField<S512> g(&grid);
    random_gauge(SiteRNG(31), g);
    p512 = average_plaquette(g);
  }
  {
    sve::VLGuard vl(128);
    lattice::GridCartesian grid(
        {4, 4, 4, 4}, lattice::GridCartesian::default_simd_layout(S128::Nsimd()));
    GaugeField<S128> g(&grid);
    random_gauge(SiteRNG(31), g);
    p128 = average_plaquette(g);
  }
  EXPECT_NEAR(p512, p128, 1e-13);
}

}  // namespace
}  // namespace svelat::qcd
