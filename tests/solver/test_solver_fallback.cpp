// Graceful solver degradation: the stall guard detects divergence and
// stagnation, and FallbackPolicy::kAuto rescues a failed solve on the
// robust configuration while recording the degradation in SolverResult
// (contract in docs/FAULTS.md).  All knobs default OFF: the existing
// starved-solve behavior (plain converged == false) is pinned by
// test_solver_api.cpp.
#include "solver/solver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "qcd/qcd.h"
#include "support/metrics.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<S>;

// --- StallGuard unit behavior -----------------------------------------------

TEST(StallGuard, DisabledGuardNeverFires) {
  StallGuard guard;  // window 0, factor 0: both triggers off
  for (double rel : {1.0, 10.0, 1e6, 1e6, 1e6, 1e6, 1e6})
    EXPECT_EQ(guard.check(rel), StallReason::kNone);
}

TEST(StallGuard, DivergenceFiresOnResidualExplosion) {
  StallGuard guard{/*window=*/0, /*divergence_factor=*/10.0};
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);    // first best
  EXPECT_EQ(guard.check(0.5), StallReason::kNone);    // improving
  EXPECT_EQ(guard.check(4.9), StallReason::kNone);    // worse, below 10x best
  EXPECT_EQ(guard.check(5.1), StallReason::kDiverged);  // > 10 x 0.5
}

TEST(StallGuard, StallFiresAfterAWindowWithoutANewBest) {
  StallGuard guard{/*window=*/3, /*divergence_factor=*/0.0};
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);  // 1 without progress
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);  // 2
  EXPECT_EQ(guard.check(1.0), StallReason::kStalled);  // 3: the window is full
}

TEST(StallGuard, ProgressResetsTheStallWindow) {
  StallGuard guard{/*window=*/2, /*divergence_factor=*/0.0};
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);
  EXPECT_EQ(guard.check(1.0), StallReason::kNone);   // 1 stalled step
  EXPECT_EQ(guard.check(0.9), StallReason::kNone);   // new best: window resets
  EXPECT_EQ(guard.check(0.95), StallReason::kNone);  // 1
  EXPECT_EQ(guard.check(0.95), StallReason::kStalled);  // 2
}

// --- facade degradation -----------------------------------------------------

class SolverFallbackTest : public ::testing::Test {
 protected:
  static constexpr double kMass = 0.25;

  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<S>>(grid_.get());
    qcd::random_gauge(SiteRNG(42), *gauge_);
    b_ = std::make_unique<Fermion>(grid_.get());
    gaussian_fill(SiteRNG(31), *b_);
  }

  /// A mixed-precision configuration that deterministically stalls: with
  /// zero inner iterations every defect-correction cycle returns a zero
  /// correction, so the outer residual is exactly constant from the first
  /// restart on.
  SolverParams stalling_mixed() const {
    return SolverParams{}
        .with_algorithm(Algorithm::kMixedCG)
        .with_preconditioner(Preconditioner::kSchurEvenOdd)
        .with_tolerance(1e-9)
        .with_inner_max_iterations(0)
        .with_max_restarts(10)
        .with_stall_window(2);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<S>> gauge_;
  std::unique_ptr<Fermion> b_;
};

TEST_F(SolverFallbackTest, ArmedGuardCutsAStalledSolveShortAndReportsIt) {
  SolverParams p = stalling_mixed();  // fallback stays kNone here
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);

  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.stall, StallReason::kStalled);
  EXPECT_FALSE(res.fallback_used);
  // The guard fired well before the restart cap burned all 10 cycles.
  EXPECT_LT(res.iterations, 10);
  EXPECT_NE(res.summary().find("stalled"), std::string::npos) << res.summary();
}

TEST_F(SolverFallbackTest, AutoFallbackRescuesAStalledMixedSolve) {
  SolverParams p = stalling_mixed().with_fallback(FallbackPolicy::kAuto);
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);

  // The fallback (full-precision Schur CG) converges where the degraded
  // mixed solve could not, and the result records the whole story.
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.algorithm, Algorithm::kCG);
  EXPECT_TRUE(res.fallback_used);
  EXPECT_EQ(res.fallback_from, Algorithm::kMixedCG);
  EXPECT_EQ(res.stall, StallReason::kStalled);
  EXPECT_LE(res.true_residual, 1e-8);

  const std::string s = res.summary();
  EXPECT_NE(s.find("fallback from mixed_cg"), std::string::npos) << s;
  EXPECT_NE(s.find("stalled"), std::string::npos) << s;

  // And the solution really solves the system: check against a direct
  // full-precision solve.
  Fermion x_ref(grid_.get());
  x_ref.set_zero();
  WilsonSolver<S> direct(*gauge_, kMass,
                         SolverParams{}
                             .with_algorithm(Algorithm::kCG)
                             .with_preconditioner(Preconditioner::kSchurEvenOdd)
                             .with_tolerance(1e-9));
  const SolverResult ref = direct.solve(*b_, x_ref);
  ASSERT_TRUE(ref.converged);
  Fermion diff(grid_.get());
  diff = x - x_ref;
  EXPECT_LE(std::sqrt(norm2(diff) / norm2(x_ref)), 1e-6);
}

TEST_F(SolverFallbackTest, FallbackSolveRecordsExactlyOneSolveRegion) {
  // Regression: the fallback path used to run a nested WilsonSolver::solve()
  // inside the still-open facade-level "solve" ScopedTimer, so one degraded
  // facade call recorded TWO region calls -- halving the solves-per-second
  // figure the wall-clock metrics layer derives.  The fallback now runs the
  // nested solver's attempt(): exactly one region call per facade solve.
  metrics::reset();
  metrics::set_enabled(true);
  SolverParams p = stalling_mixed().with_fallback(FallbackPolicy::kAuto);
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.fallback_used);
#if SVELAT_METRICS_ENABLED
  EXPECT_EQ(metrics::get("solve").calls, 1u);
#endif
  metrics::reset();
}

TEST_F(SolverFallbackTest, FallbackResultCarriesCombinedWallClock) {
  // Regression: the summary used to be logged before the caller assigned
  // the combined wall_seconds, so verbose fallback solves printed 0 ms.
  // The result must now carry first-attempt + fallback time, with the
  // first attempt's share isolated.
  SolverParams p = stalling_mixed().with_fallback(FallbackPolicy::kAuto);
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);
  EXPECT_TRUE(res.fallback_used);
  EXPECT_GT(res.first_attempt_seconds, 0.0);
  EXPECT_GT(res.wall_seconds, res.first_attempt_seconds);
  // The assembled wall clock is part of the summary line that gets logged.
  EXPECT_NE(res.summary().find(" ms"), std::string::npos) << res.summary();
}

TEST_F(SolverFallbackTest, AutoFallbackRescuesAnIterationStarvedBiCGSTAB) {
  // BiCGSTAB starved to 2 iterations at a tight tolerance cannot
  // converge; kAuto retries on CG with the full budget and reports the
  // degradation chain.
  SolverParams p = SolverParams{}
                       .with_algorithm(Algorithm::kBiCGSTAB)
                       .with_preconditioner(Preconditioner::kSchurEvenOdd)
                       .with_tolerance(1e-9)
                       .with_max_iterations(2)
                       .with_fallback(FallbackPolicy::kAuto);
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);

  // The fallback inherits max_iterations = 2 as well -- so it converges
  // only if CG on the Schur system needs <= 2 iterations, which it does
  // not.  What matters: the result reports the fallback attempt and the
  // final verdict honestly.
  EXPECT_TRUE(res.fallback_used);
  EXPECT_EQ(res.fallback_from, Algorithm::kBiCGSTAB);
  EXPECT_EQ(res.algorithm, Algorithm::kCG);
  EXPECT_EQ(res.first_attempt_iterations, 2);
}

TEST_F(SolverFallbackTest, ConvergedSolvesNeverFallBack) {
  SolverParams p = SolverParams{}
                       .with_algorithm(Algorithm::kBiCGSTAB)
                       .with_preconditioner(Preconditioner::kSchurEvenOdd)
                       .with_tolerance(1e-9)
                       .with_max_iterations(800)
                       .with_stall_window(20)
                       .with_divergence_factor(100.0)
                       .with_fallback(FallbackPolicy::kAuto);
  WilsonSolver<S> solver(*gauge_, kMass, p);
  Fermion x(grid_.get());
  x.set_zero();
  const SolverResult res = solver.solve(*b_, x);

  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.algorithm, Algorithm::kBiCGSTAB);  // no degradation occurred
  EXPECT_FALSE(res.fallback_used);
  EXPECT_EQ(res.stall, StallReason::kNone);
}

}  // namespace
}  // namespace svelat::solver
