// BiCGSTAB tests on the (non-hermitian) Wilson operator.
#include "solver/bicgstab.h"

#include <gtest/gtest.h>

#include "qcd/qcd.h"
#include "solver/solver.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<S>;

class BiCGStabTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<S>>(grid_.get());
    qcd::random_gauge(SiteRNG(42), *gauge_);
    b_ = std::make_unique<Fermion>(grid_.get());
    x_ = std::make_unique<Fermion>(grid_.get());
    gaussian_fill(SiteRNG(17), *b_);
    x_->set_zero();
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<S>> gauge_;
  std::unique_ptr<Fermion> b_, x_;
};

TEST_F(BiCGStabTest, ConvergesOnWilsonSystem) {
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.2);
  const auto stats = solve_wilson_bicgstab(dirac, *b_, *x_, 1e-8, 500);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.true_residual, 1e-7);
}

TEST_F(BiCGStabTest, SolutionSatisfiesEquation) {
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.3);
  const auto stats = solve_wilson_bicgstab(dirac, *b_, *x_, 1e-10, 500);
  ASSERT_TRUE(stats.converged);
  Fermion mx(grid_.get());
  dirac.m(*x_, mx);
  EXPECT_LT(norm2(mx - *b_) / norm2(*b_), 1e-18);
}

TEST_F(BiCGStabTest, AgreesWithCG) {
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.2);
  Fermion x_cg(grid_.get());
  x_cg.set_zero();
  const auto s1 = solve_wilson_bicgstab(dirac, *b_, *x_, 1e-10, 500);
  const auto s2 = solve_wilson(dirac, *b_, x_cg, 1e-10, 800);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_LT(norm2(*x_ - x_cg) / norm2(x_cg), 1e-15);
}

TEST_F(BiCGStabTest, FewerMatrixApplicationsThanNormalCG) {
  // BiCGSTAB needs 2 operator applications per iteration on M; CG needs 2
  // applications of M (via MdagM) per iteration but on the *squared*
  // condition number.  For Wilson at moderate mass BiCGSTAB usually does
  // fewer total M applications.
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.1);
  Fermion x_cg(grid_.get());
  x_cg.set_zero();
  const auto s1 = solve_wilson_bicgstab(dirac, *b_, *x_, 1e-8, 500);
  const auto s2 = solve_wilson(dirac, *b_, x_cg, 1e-8, 800);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  const int bicg_applies = 2 * s1.iterations;
  const int cg_applies = 2 * s2.iterations;  // MdagM = 2 M-applications
  EXPECT_LT(bicg_applies, cg_applies);
}

TEST_F(BiCGStabTest, SchurHalfFieldSolveAgreesWithFullSolvers) {
  // BiCGSTAB directly on Mhat over half-checkerboard fields (the facade's
  // kBiCGSTAB x kSchurEvenOdd path): no normal equations, half-volume
  // operands, same solution as the full solvers.
  const double mass = 0.2, tol = 1e-10;
  const qcd::WilsonDirac<S> dirac(*gauge_, mass);
  WilsonSolver<S> schur(*gauge_, mass,
                        SolverParams{}
                            .with_algorithm(Algorithm::kBiCGSTAB)
                            .with_tolerance(tol)
                            .with_max_iterations(500));
  Fermion x_cg(grid_.get());
  x_cg.set_zero();
  const auto s1 = schur.solve(*b_, *x_);
  const auto s2 = solve_wilson(dirac, *b_, x_cg, tol, 800);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_LT(s1.true_residual, 1e-9);
  EXPECT_LT(norm2(*x_ - x_cg) / norm2(x_cg), 1e-15);
}

TEST_F(BiCGStabTest, ResidualHistoryRecorded) {
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.2);
  const auto stats = solve_wilson_bicgstab(dirac, *b_, *x_, 1e-6, 500);
  ASSERT_TRUE(stats.converged);
  ASSERT_GE(stats.residual_history.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.residual_history.front(), 1.0);
  EXPECT_LE(stats.residual_history.back(), 1e-6);
}

TEST_F(BiCGStabTest, ZeroRhsRejected) {
  const qcd::WilsonDirac<S> dirac(*gauge_, 0.2);
  b_->set_zero();
  EXPECT_DEATH((void)solve_wilson_bicgstab(dirac, *b_, *x_, 1e-8, 10), "non-zero");
}

}  // namespace
}  // namespace svelat::solver
