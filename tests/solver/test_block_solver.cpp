// WilsonSolver::solve_batched: the multi-RHS facade contract.
//
//  - width-1 batches route through the sequential facade solve and are
//    BITWISE identical to calling solve() directly;
//  - full kBlockWidth-wide batches ride the native block engine and track
//    independent sequential solves per column to rounding (the pAp
//    regrouping documented at BlockSchurEvenOddWilson::mhat_norm2);
//  - per-column convergence is independent: under a tight iteration cap a
//    slow column reports converged == false while its siblings converge
//    to bit-identical solutions (the ColumnMask freeze);
//  - distributed operators fall back to sequential per-column solves,
//    bitwise equal to the single-rank facade at every rank count.
#include "solver/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "comms/distributed_wilson.h"
#include "comms/socket.h"
#include "lattice/fill.h"
#include "qcd/qcd.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

constexpr double kMass = 0.2;
constexpr double kTol = 1e-8;

SolverParams batch_params() {
  return SolverParams{}.with_tolerance(kTol).with_max_iterations(500);
}

struct BatchProblem {
  BatchProblem()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid) {
    qcd::random_gauge(SiteRNG(2018), gauge);
  }

  std::vector<Field> make_rhs(std::size_t n, unsigned seed_base = 100) const {
    std::vector<Field> b;
    for (std::size_t i = 0; i < n; ++i) {
      b.emplace_back(&grid);
      gaussian_fill(SiteRNG(seed_base + static_cast<unsigned>(i)), b.back());
    }
    return b;
  }

  std::vector<Field> zeros(std::size_t n) const {
    std::vector<Field> x(n, Field(&grid));
    for (Field& f : x) f.set_zero();
    return x;
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
};

/// Bitwise agreement of the per-solve metadata (block_width excluded:
/// that records the path taken, which is what several tests vary).
bool results_identical(const SolverResult& a, const SolverResult& b) {
  if (a.converged != b.converged || a.iterations != b.iterations) return false;
  if (a.residual_history.size() != b.residual_history.size()) return false;
  for (std::size_t i = 0; i < a.residual_history.size(); ++i)
    if (a.residual_history[i] != b.residual_history[i]) return false;
  return a.final_residual == b.final_residual && a.rhs_norm == b.rhs_norm &&
         a.solution_norm == b.solution_norm;
}

TEST(BlockSolver, Width1BatchBitwiseMatchesSequentialSolve) {
  BatchProblem p;
  const std::vector<Field> b = p.make_rhs(1);
  std::vector<Field> xb = p.zeros(1);

  WilsonSolver<S> batched(p.gauge, kMass, batch_params());
  const std::vector<SolverResult> rb = batched.solve_batched(b, xb);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb[0].block_width, 1);

  WilsonSolver<S> sequential(p.gauge, kMass, batch_params());
  Field xs(&p.grid);
  xs.set_zero();
  const SolverResult rs = sequential.solve(b[0], xs);

  ASSERT_TRUE(rs.converged);
  EXPECT_TRUE(results_identical(rb[0], rs))
      << rb[0].summary() << " vs " << rs.summary();
  EXPECT_EQ(rb[0].true_residual, rs.true_residual);
  EXPECT_EQ(norm2(xb[0] - xs), 0.0);
}

TEST(BlockSolver, FullWidthBatchTracksSequentialPerColumn) {
  BatchProblem p;
  constexpr std::size_t kN = WilsonSolver<S>::kBlockWidth;
  const std::vector<Field> b = p.make_rhs(kN);
  std::vector<Field> xb = p.zeros(kN);
  std::vector<Field> xs = p.zeros(kN);

  WilsonSolver<S> batched(p.gauge, kMass, batch_params());
  const std::vector<SolverResult> rb = batched.solve_batched(b, xb);

  // block_width = 1 disables the native engine: every column goes down
  // the sequential facade path of the SAME entry point.
  WilsonSolver<S> sequential(p.gauge, kMass, batch_params().with_block_width(1));
  const std::vector<SolverResult> rs = sequential.solve_batched(b, xs);

  ASSERT_EQ(rb.size(), kN);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_EQ(rb[j].block_width, WilsonSolver<S>::kBlockWidth) << "col " << j;
    EXPECT_EQ(rs[j].block_width, 1) << "col " << j;
    ASSERT_TRUE(rb[j].converged) << "col " << j << ": " << rb[j].summary();
    ASSERT_TRUE(rs[j].converged) << "col " << j;
    // The pAp regrouping shifts convergence by at most a step or two...
    EXPECT_LE(std::abs(rb[j].iterations - rs[j].iterations), 2) << "col " << j;
    // ...and both paths verify against the FULL system afterwards.
    EXPECT_LT(rb[j].true_residual, 10 * kTol) << "col " << j;
    EXPECT_LT(rs[j].true_residual, 10 * kTol) << "col " << j;
    const double rel =
        std::sqrt(norm2(xb[j] - xs[j]) / norm2(xs[j]));
    EXPECT_LT(rel, 1e-5) << "col " << j;
  }
}

TEST(BlockSolver, SlowColumnFreezesWithoutPoisoningSiblings) {
  BatchProblem p;
  constexpr std::size_t kN = WilsonSolver<S>::kBlockWidth;
  const std::vector<Field> b = p.make_rhs(kN);

  // Phase 1: converge everything, learning each column's iteration count.
  std::vector<Field> x_full = p.zeros(kN);
  WilsonSolver<S> full(p.gauge, kMass, batch_params());
  const std::vector<SolverResult> rf = full.solve_batched(b, x_full);
  int min_it = rf[0].iterations, max_it = rf[0].iterations;
  for (const SolverResult& r : rf) {
    ASSERT_TRUE(r.converged);
    min_it = std::min(min_it, r.iterations);
    max_it = std::max(max_it, r.iterations);
  }
  // Gaussian right-hand sides converge at different rates; the cap below
  // only exercises the mask if they genuinely differ.
  ASSERT_LT(min_it, max_it);

  // Phase 2: cap at the FASTEST column's count -- the fast columns
  // converge, the slow ones run out of iterations and freeze.
  std::vector<Field> x_cap = p.zeros(kN);
  WilsonSolver<S> capped(p.gauge, kMass,
                         batch_params().with_max_iterations(min_it));
  const std::vector<SolverResult> rc = capped.solve_batched(b, x_cap);

  int frozen = 0;
  for (std::size_t j = 0; j < kN; ++j) {
    if (rf[j].iterations <= min_it) {
      // Fast column: stalled siblings must not perturb it -- same
      // iteration count and BIT-IDENTICAL solution as the uncapped run
      // (a frozen column's fields are never touched again).
      EXPECT_TRUE(rc[j].converged) << "col " << j << ": " << rc[j].summary();
      EXPECT_EQ(rc[j].iterations, rf[j].iterations) << "col " << j;
      EXPECT_EQ(norm2(x_cap[j] - x_full[j]), 0.0) << "col " << j;
      EXPECT_LT(rc[j].true_residual, 10 * kTol) << "col " << j;
    } else {
      ++frozen;
      EXPECT_FALSE(rc[j].converged) << "col " << j;
      // The CG (normal-equation) residual is what missed the target; the
      // full-system true residual may already sit at eps of it.
      EXPECT_GT(rc[j].final_residual, kTol) << "col " << j;
    }
  }
  EXPECT_GT(frozen, 0);
  EXPECT_LT(frozen, static_cast<int>(kN));
}

TEST(BlockSolver, DistributedBatchFallsBackToSequentialBitwise) {
  // The block engine is single-rank; a batched call on a distributed
  // operator must run the per-column sequential solve -- bitwise the
  // single-rank facade's at every rank.  Two socket ranks, two columns.
  sve::VLGuard vl(8 * S::vlb);
  const lattice::Coordinate dims{4, 4, 4, 8};
  constexpr int kSplit = 3;
  const lattice::Coordinate layout =
      comms::split_simd_layout(dims, kSplit, S::Nsimd());
  lattice::GridCartesian grid(dims, layout);
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(42), gauge);
  std::vector<Field> b;
  for (unsigned c = 0; c < 2; ++c) {
    b.emplace_back(&grid);
    gaussian_fill(SiteRNG(1234 + c), b.back());
  }
  const SolverParams dparams = SolverParams{}
                                   .with_preconditioner(Preconditioner::kNone)
                                   .with_tolerance(kTol)
                                   .with_max_iterations(2000);

  // Single-rank reference on the same simd layout.
  std::vector<Field> x_ref;
  std::vector<SolverResult> r_ref;
  {
    WilsonSolver<S> ref(gauge, kMass, dparams);
    for (std::size_t c = 0; c < 2; ++c) {
      x_ref.emplace_back(&grid);
      x_ref.back().set_zero();
      r_ref.push_back(ref.solve(b[c], x_ref.back()));
      ASSERT_TRUE(r_ref.back().converged);
    }
  }

  constexpr int kRanks = 2;
  comms::SocketWorld world(kRanks);
  const comms::RankDecomposition decomp(dims, kSplit, kRanks, layout);
  std::vector<std::vector<Field>> xs(kRanks);
  std::vector<std::vector<SolverResult>> results(kRanks);
  for (int r = 0; r < kRanks; ++r)
    for (int c = 0; c < 2; ++c) {
      xs[static_cast<std::size_t>(r)].emplace_back(decomp.grid(r));
      xs[static_cast<std::size_t>(r)].back().set_zero();
    }

  set_force_serial(true);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      qcd::GaugeField<S> u_local(decomp.grid(r));
      for (int mu = 0; mu < lattice::Nd; ++mu)
        u_local.U[static_cast<std::size_t>(mu)] = comms::scatter_rank(
            decomp, gauge.U[static_cast<std::size_t>(mu)], r);
      comms::DistributedWilsonDirac<S> op(decomp, world.rank(r), r, u_local, kMass);
      WilsonSolver<S> ws(op, dparams);
      std::vector<Field> b_local;
      for (std::size_t c = 0; c < 2; ++c)
        b_local.push_back(comms::scatter_rank(decomp, b[c], r));
      results[static_cast<std::size_t>(r)] =
          ws.solve_batched(b_local, xs[static_cast<std::size_t>(r)]);
    });
  for (std::thread& t : threads) t.join();
  set_force_serial(false);

  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      const SolverResult& res = results[static_cast<std::size_t>(r)][c];
      EXPECT_EQ(res.block_width, 1) << "rank " << r << " col " << c;
      EXPECT_TRUE(results_identical(res, r_ref[c]))
          << "rank " << r << " col " << c << ": " << res.summary() << " vs "
          << r_ref[c].summary();
      EXPECT_EQ(norm2(xs[static_cast<std::size_t>(r)][c] -
                      comms::scatter_rank(decomp, x_ref[c], r)),
                0.0)
          << "rank " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace svelat::solver
