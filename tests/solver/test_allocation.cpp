// Allocation-regression suite: a WARM WilsonSolver::solve constructs no
// lattice fields.
//
// Every field buffer goes through AlignedAllocator, whose allocate()
// bumps the process-wide aligned_allocation_count() seam
// (support/aligned.h).  Each case below runs two warm-up solves (the
// first populates the facade's lazily-built operators and SolverWorkspace
// slot pools, the second flushes any remaining thread-local reduction
// buffers), snapshots the counter, solves again, and pins the delta to
// ZERO.  Regressions here are exactly the "temporary field per
// iteration" bugs the workspace layer exists to prevent: an expression
// temporary in a hot path, a workspace slot dropped, a convert_field
// rebuild.
//
// SolverResult itself may heap-allocate (residual_history is a plain
// std::vector) -- only ALIGNED allocations, i.e. field-sized buffers,
// are counted, which is the contract the hot path must keep.
#include "solver/solver.h"

#include <gtest/gtest.h>

#include <vector>

#include "lattice/fill.h"
#include "qcd/qcd.h"
#include "support/aligned.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

struct AllocProblem {
  AllocProblem()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        b(&grid),
        x(&grid) {
    qcd::random_gauge(SiteRNG(2018), gauge);
    gaussian_fill(SiteRNG(7), b);
    x.set_zero();
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
  Field b, x;
};

SolverParams base_params() {
  return SolverParams{}.with_tolerance(1e-8).with_max_iterations(500);
}

/// Two warm-up solves, then pin the third's aligned-allocation delta to 0.
void expect_warm_solve_allocates_nothing(AllocProblem& p, const SolverParams& params,
                                         const char* what) {
  WilsonSolver<S> solver(p.gauge, 0.2, params);
  for (int warm = 0; warm < 2; ++warm) {
    p.x.set_zero();
    ASSERT_TRUE(solver.solve(p.b, p.x).converged) << what;
  }
  p.x.set_zero();
  const std::uint64_t before = aligned_allocation_count().load();
  const SolverResult res = solver.solve(p.b, p.x);
  const std::uint64_t after = aligned_allocation_count().load();
  EXPECT_TRUE(res.converged) << what;
  // A real solve, not a no-op (MixedCG counts outer restarts here).
  EXPECT_GE(res.iterations, 1) << what;
  EXPECT_EQ(after - before, 0u) << what << ": a warm solve built "
                                << (after - before) << " field buffer(s)";
}

TEST(Allocation, WarmSchurCGSolveAllocatesNothing) {
  AllocProblem p;
  expect_warm_solve_allocates_nothing(p, base_params(), "CG + SchurEvenOdd");
}

TEST(Allocation, WarmUnpreconditionedCGSolveAllocatesNothing) {
  AllocProblem p;
  expect_warm_solve_allocates_nothing(
      p, base_params().with_preconditioner(Preconditioner::kNone), "CG + none");
}

TEST(Allocation, WarmBiCGSTABSolveAllocatesNothing) {
  AllocProblem p;
  expect_warm_solve_allocates_nothing(
      p, base_params().with_algorithm(Algorithm::kBiCGSTAB), "BiCGSTAB + Schur");
}

TEST(Allocation, WarmMixedPrecisionSolveAllocatesNothing) {
  AllocProblem p;
  expect_warm_solve_allocates_nothing(
      p, base_params().with_algorithm(Algorithm::kMixedCG), "MixedCG + Schur");
}

TEST(Allocation, WarmBlockBatchedSolveAllocatesNothing) {
  AllocProblem p;
  constexpr std::size_t kN = WilsonSolver<S>::kBlockWidth;
  WilsonSolver<S> solver(p.gauge, 0.2, base_params());
  std::vector<Field> b, x;
  for (std::size_t j = 0; j < kN; ++j) {
    b.emplace_back(&p.grid);
    gaussian_fill(SiteRNG(50 + static_cast<unsigned>(j)), b.back());
    x.emplace_back(&p.grid);
  }
  const auto zero_guesses = [&] {
    for (Field& f : x) f.set_zero();
  };
  for (int warm = 0; warm < 2; ++warm) {
    zero_guesses();
    for (const SolverResult& r : solver.solve_batched(b, x))
      ASSERT_TRUE(r.converged);
  }
  zero_guesses();
  const std::uint64_t before = aligned_allocation_count().load();
  const std::vector<SolverResult> res = solver.solve_batched(b, x);
  const std::uint64_t after = aligned_allocation_count().load();
  for (const SolverResult& r : res) {
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.block_width, static_cast<int>(kN));
  }
  EXPECT_EQ(after - before, 0u) << "a warm batched solve built "
                                << (after - before) << " field buffer(s)";
}

}  // namespace
}  // namespace svelat::solver
