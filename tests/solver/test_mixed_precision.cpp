// Mixed-precision defect-correction solver tests (Algorithm::kMixedCG of
// the WilsonSolver facade) and the precision-conversion utility it is
// built on.
#include "solver/mixed_precision.h"

#include <gtest/gtest.h>

#include "solver/solver.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using Sd = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Sf = simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>;
using Fd = qcd::LatticeFermion<Sd>;

SolverParams mixed_params(double tol) {
  return SolverParams{}
      .with_algorithm(Algorithm::kMixedCG)
      .with_tolerance(tol)
      .with_inner_tolerance(1e-4)
      .with_inner_max_iterations(400)
      .with_max_restarts(20);
}

class MixedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(Sd::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<Sd>>(grid_.get());
    qcd::random_gauge(SiteRNG(42), *gauge_);
    b_ = std::make_unique<Fd>(grid_.get());
    x_ = std::make_unique<Fd>(grid_.get());
    gaussian_fill(SiteRNG(21), *b_);
    x_->set_zero();
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<Sd>> gauge_;
  std::unique_ptr<Fd> b_, x_;
};

TEST_F(MixedTest, ConvertFieldRoundtripExactForFloatData) {
  // double -> float -> double is exact when the data is float-representable.
  lattice::GridCartesian grid_f(grid_->fdimensions(),
                                lattice::GridCartesian::default_simd_layout(Sf::Nsimd()));
  qcd::LatticeFermion<Sf> f(&grid_f);
  Fd d(grid_.get()), back(grid_.get());
  d.set_zero();
  using sobj = Fd::scalar_object;
  sobj s = tensor::Zero<sobj>();
  s(1)(2) = std::complex<double>(0.5, -0.25);
  d.poke({1, 2, 3, 4}, s);
  convert_field(f, d);
  convert_field(back, f);
  EXPECT_EQ(norm2(back - d), 0.0);
  // And the float field sees the value at the same global coordinate.
  const auto sf = f.peek({1, 2, 3, 4});
  EXPECT_EQ(sf(1)(2), (std::complex<float>{0.5f, -0.25f}));
}

TEST_F(MixedTest, ConvertFieldRoundsToFloat) {
  Fd d(grid_.get()), back(grid_.get());
  gaussian_fill(SiteRNG(3), d);
  lattice::GridCartesian grid_f(grid_->fdimensions(),
                                lattice::GridCartesian::default_simd_layout(Sf::Nsimd()));
  qcd::LatticeFermion<Sf> f(&grid_f);
  convert_field(f, d);
  convert_field(back, f);
  const double rel = std::sqrt(norm2(back - d) / norm2(d));
  EXPECT_GT(rel, 0.0);       // lossy
  EXPECT_LT(rel, 1e-7);      // but only at float epsilon level
}

TEST_F(MixedTest, InnerScalarRebindsToFloat) {
  // kMixedCG derives its inner scalar from the outer one: same VL and
  // backend, fp32 lanes (twice as many virtual nodes per vector).
  static_assert(std::is_same_v<WilsonSolver<Sd>::InnerScalar, Sf>);
  static_assert(Sf::Nsimd() == 2 * Sd::Nsimd());
}

TEST_F(MixedTest, ConvergesToDoublePrecisionTolerance) {
  WilsonSolver<Sd> solver(*gauge_, 0.2, mixed_params(1e-10));
  const auto stats = solver.solve(*b_, *x_);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.true_residual, 1e-9);
  EXPECT_GE(stats.iterations, 2);  // genuinely iterated defect correction
  EXPECT_GT(stats.inner_iterations, 0);
  // One history entry per outer residual check.
  EXPECT_GE(stats.residual_history.size(), static_cast<std::size_t>(stats.iterations));
}

TEST_F(MixedTest, MatchesDoubleSolve) {
  const qcd::WilsonDirac<Sd> dirac(*gauge_, 0.2);
  Fd x_double(grid_.get());
  x_double.set_zero();
  WilsonSolver<Sd> solver(*gauge_, 0.2, mixed_params(1e-10));
  const auto s_mixed = solver.solve(*b_, *x_);
  const auto s_double = solve_wilson(dirac, *b_, x_double, 1e-10, 800);
  ASSERT_TRUE(s_mixed.converged);
  ASSERT_TRUE(s_double.converged);
  EXPECT_LT(norm2(*x_ - x_double) / norm2(x_double), 1e-16);
}

TEST_F(MixedTest, TighterInnerToleranceFewerOuterIterations) {
  Fd x2(grid_.get());
  x2.set_zero();
  WilsonSolver<Sd> loose_solver(
      *gauge_, 0.2,
      mixed_params(1e-9).with_inner_tolerance(1e-2).with_max_restarts(40));
  WilsonSolver<Sd> tight_solver(
      *gauge_, 0.2,
      mixed_params(1e-9).with_inner_tolerance(1e-5).with_max_restarts(40));
  const auto loose = loose_solver.solve(*b_, *x_);
  const auto tight = tight_solver.solve(*b_, x2);
  ASSERT_TRUE(loose.converged);
  ASSERT_TRUE(tight.converged);
  EXPECT_LT(tight.iterations, loose.iterations);
}

}  // namespace
}  // namespace svelat::solver
