// Conformance suite of the WilsonSolver facade: every algorithm x
// preconditioner combination must converge on a small lattice, return a
// fully-populated SolverResult, agree with the zero-padded test oracle to
// solver tolerance, and *report* (never assert) non-convergence when
// starved of iterations.
#include "solver/solver.h"

#include <gtest/gtest.h>

#include "../qcd/padded_oracle.h"
#include "qcd/qcd.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<S>;

struct Combo {
  Algorithm algorithm;
  Preconditioner preconditioner;
};

constexpr Combo kAllCombos[] = {
    {Algorithm::kCG, Preconditioner::kNone},
    {Algorithm::kCG, Preconditioner::kSchurEvenOdd},
    {Algorithm::kBiCGSTAB, Preconditioner::kNone},
    {Algorithm::kBiCGSTAB, Preconditioner::kSchurEvenOdd},
    {Algorithm::kMixedCG, Preconditioner::kNone},
    {Algorithm::kMixedCG, Preconditioner::kSchurEvenOdd},
};

std::string combo_name(const Combo& c) {
  return std::string(to_string(c.algorithm)) + "/" + to_string(c.preconditioner);
}

class SolverApiTest : public ::testing::Test {
 protected:
  static constexpr double kMass = 0.25;
  static constexpr double kTol = 1e-9;

  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<S>>(grid_.get());
    qcd::random_gauge(SiteRNG(42), *gauge_);
    b_ = std::make_unique<Fermion>(grid_.get());
    gaussian_fill(SiteRNG(31), *b_);
  }

  SolverParams params_for(const Combo& c) const {
    return SolverParams{}
        .with_algorithm(c.algorithm)
        .with_preconditioner(c.preconditioner)
        .with_tolerance(kTol)
        .with_max_iterations(800);
  }

  /// Starved configuration of a combo: one outer iteration (and, for the
  /// mixed algorithm, one restart of one inner iteration) at an
  /// unreachable tolerance.
  SolverParams starved_params_for(const Combo& c) const {
    return params_for(c)
        .with_tolerance(1e-14)
        .with_max_iterations(1)
        .with_max_restarts(1)
        .with_inner_max_iterations(1);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<S>> gauge_;
  std::unique_ptr<Fermion> b_;
};

TEST_F(SolverApiTest, ProductionDefaultsAreSchurCG) {
  const SolverParams d;
  EXPECT_EQ(d.algorithm, Algorithm::kCG);
  EXPECT_EQ(d.preconditioner, Preconditioner::kSchurEvenOdd);
  EXPECT_DOUBLE_EQ(d.tolerance, 1e-9);
  EXPECT_EQ(d.max_iterations, 1000);
  // Mixed-precision knobs default to the measured defect-correction
  // tuning: inner fp32 CG to 1e-4, <= 400 inner iterations per restart.
  EXPECT_DOUBLE_EQ(d.inner_tolerance, 1e-4);
  EXPECT_EQ(d.inner_max_iterations, 400);
  EXPECT_EQ(d.max_restarts, 24);
  EXPECT_EQ(d.verbosity, 0);
}

TEST_F(SolverApiTest, EveryCombinationConvergesWithFullyPopulatedResult) {
  // Gold solution from the zero-padded oracle, solved tighter than the
  // combos under test.
  const qcd::EvenOddWilson<S> oracle(*gauge_, kMass);
  Fermion x_oracle(grid_.get());
  const auto s_oracle = qcd::solve_wilson_schur(oracle, *b_, x_oracle, 1e-11, 800);
  ASSERT_TRUE(s_oracle.converged);
  const double oracle_norm = norm2(x_oracle);

  for (const Combo& c : kAllCombos) {
    SCOPED_TRACE(combo_name(c));
    WilsonSolver<S> solver(*gauge_, kMass, params_for(c));
    Fermion x(grid_.get());
    x.set_zero();
    const SolverResult res = solver.solve(*b_, x);

    // Fully-populated result.
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.algorithm, c.algorithm);
    EXPECT_EQ(res.preconditioner, c.preconditioner);
    EXPECT_DOUBLE_EQ(res.target_residual, kTol);
    EXPECT_GT(res.iterations, 0);
    EXPECT_LE(res.final_residual, kTol);
    EXPECT_LT(res.true_residual, 10 * kTol);
    EXPECT_FALSE(res.residual_history.empty());
    EXPECT_NEAR(res.rhs_norm, std::sqrt(norm2(*b_)), 1e-8 * res.rhs_norm);
    EXPECT_NEAR(res.solution_norm, std::sqrt(norm2(x)), 1e-12 * res.solution_norm);
    if (c.algorithm == Algorithm::kMixedCG)
      EXPECT_GT(res.inner_iterations, 0);
    else
      EXPECT_EQ(res.inner_iterations, 0);

    // Agreement with the padded-path oracle to solver tolerance.
    EXPECT_LT(norm2(x - x_oracle) / oracle_norm, 1e-13);
  }
}

TEST_F(SolverApiTest, StarvedSolveReportsNonConvergence) {
  for (const Combo& c : kAllCombos) {
    SCOPED_TRACE(combo_name(c));
    WilsonSolver<S> solver(*gauge_, kMass, starved_params_for(c));
    Fermion x(grid_.get());
    x.set_zero();
    const SolverResult res = solver.solve(*b_, x);  // must not assert/abort
    EXPECT_FALSE(res.converged);
    EXPECT_GT(res.true_residual, 1e-14);
    EXPECT_FALSE(res.residual_history.empty());
    EXPECT_GT(res.rhs_norm, 0.0);
    EXPECT_EQ(res.algorithm, c.algorithm);
    EXPECT_EQ(res.preconditioner, c.preconditioner);
  }
}

TEST_F(SolverApiTest, RepeatedSolvesThroughOneSolverAreIndependent) {
  // The facade reuses its operator and half-field workspaces across
  // solves (the propagator pattern); a second right-hand side must see no
  // state from the first, i.e. match a fresh solver bit for bit.
  WilsonSolver<S> reused(*gauge_, kMass, params_for(kAllCombos[1]));
  Fermion b2(grid_.get()), x_first(grid_.get()), x_reused(grid_.get()),
      x_fresh(grid_.get());
  gaussian_fill(SiteRNG(77), b2);
  x_first.set_zero();
  x_reused.set_zero();
  x_fresh.set_zero();

  (void)reused.solve(*b_, x_first);  // dirty the workspaces
  const auto s_reused = reused.solve(b2, x_reused);

  WilsonSolver<S> fresh(*gauge_, kMass, params_for(kAllCombos[1]));
  const auto s_fresh = fresh.solve(b2, x_fresh);

  EXPECT_EQ(s_reused.iterations, s_fresh.iterations);
  EXPECT_EQ(s_reused.final_residual, s_fresh.final_residual);
  EXPECT_EQ(s_reused.residual_history, s_fresh.residual_history);
  EXPECT_EQ(norm2(x_reused - x_fresh), 0.0);
}

TEST_F(SolverApiTest, SummaryNamesAlgorithmAndOutcome) {
  WilsonSolver<S> solver(*gauge_, kMass, params_for(kAllCombos[1]));
  Fermion x(grid_.get());
  x.set_zero();
  const auto res = solver.solve(*b_, x);
  const std::string s = res.summary();
  EXPECT_NE(s.find("cg/schur_even_odd"), std::string::npos) << s;
  EXPECT_NE(s.find("converged"), std::string::npos) << s;
}

}  // namespace
}  // namespace svelat::solver
