// Conjugate Gradient tests on the Wilson normal equations.
#include "solver/cg.h"

#include <gtest/gtest.h>

#include "qcd/qcd.h"
#include "sve/sve.h"

namespace svelat::solver {
namespace {

template <typename S>
struct CGFixture {
  explicit CGFixture(double mass = 0.2, unsigned seed = 42)
      : vl(8 * S::vlb),
        grid({4, 4, 4, 4}, lattice::GridCartesian::default_simd_layout(S::Nsimd())),
        gauge(&grid),
        dirac((qcd::random_gauge(SiteRNG(seed), gauge), gauge), mass),
        b(&grid),
        x(&grid) {
    gaussian_fill(SiteRNG(seed + 1), b);
    x.set_zero();
  }

  sve::VLGuard vl;
  lattice::GridCartesian grid;
  qcd::GaugeField<S> gauge;
  qcd::WilsonDirac<S> dirac;
  qcd::LatticeFermion<S> b, x;
};

TEST(CG, ConvergesOnWilsonNormalEquations) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  CGFixture<S> f;
  const SolverResult stats = solve_wilson(f.dirac, f.b, f.x, 1e-8, 500);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.true_residual, 1e-7);
  EXPECT_GT(stats.iterations, 5);  // non-trivial problem
}

TEST(CG, ResidualHistoryReachesTolerance) {
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
  CGFixture<S> f;
  const SolverResult stats = solve_wilson(f.dirac, f.b, f.x, 1e-6, 500);
  ASSERT_TRUE(stats.converged);
  ASSERT_FALSE(stats.residual_history.empty());
  EXPECT_LE(stats.final_residual, 1e-6);
  // History is overall decreasing (allow transient CG plateaus of 10x).
  const auto& h = stats.residual_history;
  for (std::size_t i = 1; i < h.size(); ++i) EXPECT_LT(h[i], 10.0 * h[i - 1]) << i;
}

TEST(CG, SolutionSatisfiesWilsonEquation) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveReal>;
  CGFixture<S> f;
  const SolverResult stats = solve_wilson(f.dirac, f.b, f.x, 1e-9, 800);
  ASSERT_TRUE(stats.converged);
  qcd::LatticeFermion<S> mx(&f.grid);
  f.dirac.m(f.x, mx);
  EXPECT_LT(norm2(mx - f.b) / norm2(f.b), 1e-16);
}

TEST(CG, IterationCountsAgreeAcrossBackends) {
  // Sec. V-D at solver level.  Site arithmetic is bit-identical across
  // backends and VLs; global reductions sum lanes in a VL-dependent order,
  // so residuals agree to rounding accuracy (not bitwise) across VLs, and
  // iteration counts must match exactly.
  auto run = [](auto tag) {
    using S = decltype(tag);
    CGFixture<S> f(0.3, 7);
    return solve_wilson(f.dirac, f.b, f.x, 1e-7, 400);
  };
  const auto a = run(simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>{});
  const auto b = run(simd::SimdComplex<double, simd::kVLB256, simd::SveReal>{});
  const auto c = run(simd::SimdComplex<double, simd::kVLB128, simd::Generic>{});
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.iterations, c.iterations);
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size());
  ASSERT_EQ(a.residual_history.size(), c.residual_history.size());
  for (std::size_t i = 0; i < a.residual_history.size(); ++i) {
    EXPECT_NEAR(a.residual_history[i], b.residual_history[i],
                1e-10 * a.residual_history[i])
        << i;
    EXPECT_NEAR(a.residual_history[i], c.residual_history[i],
                1e-10 * a.residual_history[i])
        << i;
  }
}

TEST(CG, HeavierMassConvergesFaster) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  CGFixture<S> light(0.05, 3);
  CGFixture<S> heavy(1.0, 3);
  const auto sl = solve_wilson(light.dirac, light.b, light.x, 1e-7, 800);
  const auto sh = solve_wilson(heavy.dirac, heavy.b, heavy.x, 1e-7, 800);
  ASSERT_TRUE(sl.converged);
  ASSERT_TRUE(sh.converged);
  EXPECT_LT(sh.iterations, sl.iterations);
}

TEST(CG, FreeFieldTrivialInversion) {
  // Unit gauge, zero hopping contribution from gamma terms cancels, and a
  // constant source is an eigenvector: CG converges in O(1) iterations.
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  lattice::GridCartesian grid({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::unit_gauge(gauge);
  qcd::WilsonDirac<S> dirac(gauge, 0.5);
  qcd::LatticeFermion<S> b(&grid), x(&grid);
  using sobj = qcd::LatticeFermion<S>::scalar_object;
  sobj s = tensor::Zero<sobj>();
  s(0)(0) = std::complex<double>(1.0, 0.0);
  for (std::int64_t o = 0; o < grid.osites(); ++o)
    for (unsigned l = 0; l < grid.isites(); ++l) b.poke(grid.global_coor(o, l), s);
  x.set_zero();
  const auto stats = solve_wilson(dirac, b, x, 1e-10, 50);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 3);
  // For constant fields M reduces to (4 + m) - 8/2 = m + ... : Dh psi = 8 psi
  // so M psi = (4 + 0.5 - 4) psi = 0.5 psi, hence x = 2 b.
  const auto got = x.peek({0, 0, 0, 0});
  EXPECT_NEAR(got(0)(0).real(), 2.0, 1e-9);
}

TEST(CG, ZeroRhsRejected) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  CGFixture<S> f;
  f.b.set_zero();
  EXPECT_DEATH((void)solve_wilson(f.dirac, f.b, f.x, 1e-8, 10), "non-zero");
}

}  // namespace
}  // namespace svelat::solver
