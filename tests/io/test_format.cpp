// SVGF field-file format tests: bitwise round trips (including across
// SIMD layouts) and the corruption-handling contract of docs/FORMAT.md --
// every corruption class must fail with its own IoErrorCode and a
// distinct, actionable message, never crash or silently load.
#include "io/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "qcd/plaquette.h"
#include "qcd/su3.h"
#include "sve/sve.h"

namespace svelat::io {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "svelat_io_" + name;
}

void patch_u32(std::vector<std::uint8_t>& bytes, std::size_t off, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) bytes[off + k] = static_cast<std::uint8_t>(v >> (8 * k));
}

/// Re-seal the fixed header after a deliberate edit, so the edit is
/// reached by validation instead of tripping the header CRC first.
void reseal_header(std::vector<std::uint8_t>& bytes) {
  patch_u32(bytes, kHeaderCrcOffset, crc32(bytes.data(), kHeaderCrcOffset));
}

/// Run `f`, expect an IoError of class `code`, return its message.
template <class F>
std::string expect_io_error(IoErrorCode code, F&& f) {
  try {
    f();
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    EXPECT_NE(std::string(e.what()).find(io_error_name(code)), std::string::npos)
        << "message does not name its class: " << e.what();
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected IoError [" << io_error_name(code) << "], got "
                  << e.what();
    return "";
  }
  ADD_FAILURE() << "expected IoError [" << io_error_name(code) << "], got no error";
  return "";
}

class FormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(256);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 4},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<S>>(grid_.get());
    qcd::random_gauge(SiteRNG(42), *gauge_);
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<S>> gauge_;
};

TEST(Crc32Test, MatchesTheStandardCheckValue) {
  // The universal CRC-32/ISO-HDLC check vector.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  // Incremental chaining covers concatenation.
  const std::uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

TEST_F(FormatTest, EncodeDecodeRoundTripPreservesEverything) {
  const std::vector<std::uint8_t> meta = {1, 2, 3, 250, 0, 7};
  const auto bytes = encode_gauge(*gauge_, meta);
  const FieldFile file = decode_field_file(bytes);
  EXPECT_EQ(file.header.version, kFormatVersion);
  EXPECT_EQ(file.header.precision_bits, 64u);
  EXPECT_EQ(file.header.field_kind, kFieldKindGauge);
  EXPECT_EQ(file.header.dims, grid_->fdimensions());
  EXPECT_EQ(file.header.nfields, static_cast<std::uint32_t>(lattice::Nd));
  EXPECT_EQ(file.header.site_doubles, 18u);
  EXPECT_EQ(file.meta, meta);
  EXPECT_EQ(file.planes, gauge_planes(*gauge_));
}

TEST_F(FormatTest, SaveLoadRoundTripIsBitwise) {
  const std::string path = temp_path("roundtrip.svgf");
  save_gauge(path, *gauge_);
  qcd::GaugeField<S> loaded(grid_.get());
  const auto meta = load_gauge(path, loaded);
  EXPECT_TRUE(meta.empty());
  // Bitwise: the re-encoded byte streams are identical.
  EXPECT_EQ(encode_gauge(loaded), encode_gauge(*gauge_));
  EXPECT_EQ(qcd::average_plaquette(loaded), qcd::average_plaquette(*gauge_));
  std::remove(path.c_str());
}

TEST_F(FormatTest, FileIsIndependentOfTheSimdLayout) {
  // Write from the VL=256 layout, read into a VL=128 grid: the format is
  // lexicographic, so values agree site by site and the re-written file
  // is byte-identical.
  const std::string path = temp_path("crosslayout.svgf");
  save_gauge(path, *gauge_);

  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
  sve::VLGuard vl(128);
  lattice::GridCartesian g128(grid_->fdimensions(),
                              lattice::GridCartesian::default_simd_layout(S128::Nsimd()));
  qcd::GaugeField<S128> loaded(&g128);
  load_gauge(path, loaded);
  for (int mu = 0; mu < lattice::Nd; ++mu)
    for (int t = 0; t < 4; ++t) {
      const auto a = gauge_->U[mu].peek({1, 2, 3, t});
      const auto b = loaded.U[mu].peek({1, 2, 3, t});
      for (int i = 0; i < qcd::Nc; ++i)
        for (int j = 0; j < qcd::Nc; ++j) {
          EXPECT_EQ(a(i, j).real(), b(i, j).real());
          EXPECT_EQ(a(i, j).imag(), b(i, j).imag());
        }
    }
  EXPECT_EQ(encode_gauge(loaded), encode_gauge(*gauge_));
  std::remove(path.c_str());
}

// --- the corruption-handling contract ---------------------------------------

TEST_F(FormatTest, MissingFileFailsToOpen) {
  qcd::GaugeField<S> g(grid_.get());
  expect_io_error(IoErrorCode::kOpenFailed,
                  [&] { load_gauge(temp_path("does_not_exist.svgf"), g); });
}

TEST_F(FormatTest, ShortReadInsideTheHeader) {
  auto bytes = encode_gauge(*gauge_);
  bytes.resize(kHeaderBytes / 2);
  expect_io_error(IoErrorCode::kShortRead, [&] { decode_field_file(bytes); });
}

TEST_F(FormatTest, WrongMagicIsRejected) {
  auto bytes = encode_gauge(*gauge_);
  bytes[0] = 'X';
  const auto msg = expect_io_error(IoErrorCode::kBadMagic,
                                   [&] { decode_field_file(bytes); });
  EXPECT_NE(msg.find("SVGF"), std::string::npos);
}

TEST_F(FormatTest, WrongVersionIsRejected) {
  auto bytes = encode_gauge(*gauge_);
  patch_u32(bytes, kVersionOffset, kFormatVersion + 1);
  reseal_header(bytes);  // reach the version check, not the header CRC
  const auto msg = expect_io_error(IoErrorCode::kBadVersion,
                                   [&] { decode_field_file(bytes); });
  EXPECT_NE(msg.find("version"), std::string::npos);
}

TEST_F(FormatTest, HeaderBitFlipTripsTheHeaderCrc) {
  auto bytes = encode_gauge(*gauge_);
  bytes[kDimsOffset] ^= 0x04;  // silently grow a dimension
  expect_io_error(IoErrorCode::kCorruptHeader, [&] { decode_field_file(bytes); });
}

TEST_F(FormatTest, PayloadBitFlipTripsThePlaneCrc) {
  auto bytes = encode_gauge(*gauge_);
  bytes[bytes.size() - 5] ^= 0x01;  // low-order mantissa bit of the last plane
  const auto msg = expect_io_error(IoErrorCode::kCorruptPayload,
                                   [&] { decode_field_file(bytes); });
  // The message localizes the damage to a plane.
  EXPECT_NE(msg.find("plane"), std::string::npos);
  EXPECT_NE(msg.find("slice"), std::string::npos);
}

TEST_F(FormatTest, MetaBitFlipTripsTheMetaCrc) {
  auto bytes = encode_gauge(*gauge_, {9, 9, 9, 9});
  bytes[kHeaderBytes + 1] ^= 0x80;
  const auto msg = expect_io_error(IoErrorCode::kCorruptPayload,
                                   [&] { decode_field_file(bytes); });
  EXPECT_NE(msg.find("metadata"), std::string::npos);
}

TEST_F(FormatTest, TruncationIsDetectedBeforeAnyDataIsUsed) {
  auto bytes = encode_gauge(*gauge_);
  bytes.resize(bytes.size() - 8);  // lost the tail of the payload
  expect_io_error(IoErrorCode::kTruncated, [&] { decode_field_file(bytes); });
  bytes.resize(kHeaderBytes + 2);  // lost nearly everything after the header
  expect_io_error(IoErrorCode::kTruncated, [&] { decode_field_file(bytes); });
}

TEST_F(FormatTest, TrailingBytesAreRejected) {
  auto bytes = encode_gauge(*gauge_);
  bytes.push_back(0);
  expect_io_error(IoErrorCode::kTrailingBytes, [&] { decode_field_file(bytes); });
}

TEST_F(FormatTest, GridMismatchIsRejectedAfterValidation) {
  const std::string path = temp_path("mismatch.svgf");
  save_gauge(path, *gauge_);
  lattice::GridCartesian other({4, 4, 4, 8},
                               lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> wrong(&other);
  const auto msg =
      expect_io_error(IoErrorCode::kMismatch, [&] { load_gauge(path, wrong); });
  EXPECT_NE(msg.find("4 4 4 8"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FormatTest, EveryCorruptionClassHasADistinctMessage) {
  // The acceptance criterion: distinct error *messages*, not one generic
  // "load failed".  Collect one message per class and compare pairwise.
  std::map<std::string, std::string> messages;  // class name -> message
  const auto record = [&](IoErrorCode code, std::vector<std::uint8_t> bytes) {
    messages[io_error_name(code)] =
        expect_io_error(code, [&] { decode_field_file(bytes); });
  };
  const auto good = encode_gauge(*gauge_, {1, 2, 3});

  auto bytes = good;
  bytes.resize(10);
  record(IoErrorCode::kShortRead, bytes);

  bytes = good;
  bytes[1] ^= 0xFF;
  record(IoErrorCode::kBadMagic, bytes);

  bytes = good;
  patch_u32(bytes, kVersionOffset, 99);
  reseal_header(bytes);
  record(IoErrorCode::kBadVersion, bytes);

  bytes = good;
  bytes[kNfieldsOffset] ^= 0x01;
  record(IoErrorCode::kCorruptHeader, bytes);

  bytes = good;
  bytes.resize(bytes.size() - 1);
  record(IoErrorCode::kTruncated, bytes);

  bytes = good;
  bytes.back() ^= 0x10;
  record(IoErrorCode::kCorruptPayload, bytes);

  bytes = good;
  bytes.insert(bytes.end(), {1, 2, 3});
  record(IoErrorCode::kTrailingBytes, bytes);

  EXPECT_EQ(messages.size(), 7u);
  for (auto a = messages.begin(); a != messages.end(); ++a)
    for (auto b = std::next(a); b != messages.end(); ++b)
      EXPECT_NE(a->second, b->second)
          << a->first << " and " << b->first << " share one message";
}

}  // namespace
}  // namespace svelat::io
