// Checkpoint / restart tests: a Metropolis chain resumed from disk must
// continue bitwise-identically to the uninterrupted run.
#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "qcd/plaquette.h"
#include "sve/sve.h"

namespace svelat::io {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "svelat_ckpt_" + name;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(256);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 4},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
};

TEST_F(CheckpointTest, MarkovMetaRoundTrip) {
  qcd::MarkovState state;
  state.params.beta = 5.95;
  state.params.epsilon = 0.21;
  state.params.hits_per_link = 7;
  state.params.seed = 0xDEADBEEFCAFEull;
  state.sweeps_done = 123;
  const qcd::MarkovState back = decode_markov_meta(encode_markov_meta(state));
  EXPECT_EQ(back.params, state.params);
  EXPECT_EQ(back.sweeps_done, state.sweeps_done);
}

TEST_F(CheckpointTest, ResumedChainIsBitwiseIdenticalToUninterrupted) {
  qcd::MarkovState state;
  state.params.beta = 5.7;
  state.params.epsilon = 0.24;
  state.params.seed = 11;

  // Uninterrupted reference: 4 sweeps straight through.
  qcd::GaugeField<S> reference(grid_.get());
  qcd::random_gauge(SiteRNG(8), reference);
  qcd::MarkovState ref_state = state;
  qcd::advance(reference, ref_state, 4);

  // Interrupted run: 2 sweeps, checkpoint, "process exit", reload, 2 more.
  const std::string path = temp_path("resume.svgf");
  {
    qcd::GaugeField<S> g(grid_.get());
    qcd::random_gauge(SiteRNG(8), g);
    qcd::MarkovState s = state;
    qcd::advance(g, s, 2);
    save_checkpoint(path, g, s);
  }
  qcd::GaugeField<S> resumed(grid_.get());
  qcd::MarkovState restored = load_checkpoint(path, resumed);
  EXPECT_EQ(restored.sweeps_done, 2);
  EXPECT_EQ(restored.params, state.params);
  qcd::advance(resumed, restored, 2);

  EXPECT_EQ(restored.sweeps_done, ref_state.sweeps_done);
  EXPECT_EQ(encode_gauge(resumed), encode_gauge(reference));
  EXPECT_EQ(qcd::average_plaquette(resumed), qcd::average_plaquette(reference));
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, PlainGaugeFileIsNotACheckpoint) {
  const std::string path = temp_path("plain.svgf");
  qcd::GaugeField<S> g(grid_.get());
  qcd::random_gauge(SiteRNG(3), g);
  save_gauge(path, g);  // no updater state attached
  try {
    load_checkpoint(path, g);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kMismatch);
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ForeignMetaIsNotACheckpoint) {
  const std::string path = temp_path("foreign.svgf");
  qcd::GaugeField<S> g(grid_.get());
  qcd::random_gauge(SiteRNG(3), g);
  save_gauge(path, g, std::vector<std::uint8_t>(kMarkovMetaBytes, 0x5A));
  try {
    load_checkpoint(path, g);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kMismatch);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace svelat::io
