// Checkpoint-write atomicity: write_file_bytes commits through a temp
// file + rename, so a crash at any point -- including SIGKILL between
// fsync and rename, the worst legal moment -- leaves the previous file
// intact.  The kill test uses a REAL forked process (run_ranks) so the
// SIGKILL is genuine, and proves the launcher decodes the signal death.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "comms/socket.h"
#include "io/checkpoint.h"
#include "io/format.h"
#include "qcd/metropolis.h"
#include "sve/sve.h"

namespace svelat::io {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "svelat_atomic_" + name;
}

TEST(AtomicWrite, CommitsBytesAndLeavesNoTempBehind) {
  const std::string path = temp_path("plain.bin");
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
  write_file_bytes(path, bytes);
  EXPECT_EQ(read_file_bytes(path), bytes);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const std::vector<std::uint8_t> next{9, 8, 7};
  write_file_bytes(path, next);  // overwrite goes through the same rename
  EXPECT_EQ(read_file_bytes(path), next);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWrite, KillBetweenSyncAndRenamePreservesThePreviousFile) {
  const std::string path = temp_path("killed.bin");
  const std::vector<std::uint8_t> original{0xAA, 0xBB, 0xCC};
  write_file_bytes(path, original);

  // A real forked process dies by SIGKILL at the write-fault hook -- after
  // the replacement bytes are fully written and synced to the temp file,
  // but before the rename commits them.
  const auto report = comms::run_ranks(1, [&](int, comms::SocketCommunicator&) {
    set_write_fault_hook(+[] { ::raise(SIGKILL); });
    write_file_bytes(path, std::vector<std::uint8_t>(1024, 0x55));
    return 0;  // unreachable
  });

  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.ranks[0].exited);  // signal death, not an exit code
  EXPECT_EQ(report.ranks[0].term_signal, SIGKILL);
  // The destination still holds the ORIGINAL bytes; only the temp file
  // (never linked in) records the interrupted write.
  EXPECT_EQ(read_file_bytes(path), original);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(AtomicWrite, KillDuringCheckpointWritePreservesThePreviousCheckpoint) {
  // The end-to-end shape the recovery story depends on: checkpoint N is on
  // disk, the writer dies mid-write of checkpoint N+1, and a restarted
  // process reloads checkpoint N bitwise and resumes the chain from it.
  sve::set_vector_length(256);
  lattice::GridCartesian grid(
      {4, 4, 4, 4}, lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  qcd::GaugeField<S> gauge(&grid);
  qcd::random_gauge(SiteRNG(99), gauge);
  qcd::MarkovState state;
  state.params.beta = 5.7;
  state.params.epsilon = 0.24;
  state.params.seed = 11;
  qcd::advance(gauge, state, 1);

  const std::string path = temp_path("chain.svgf");
  save_checkpoint(path, gauge, state);
  const std::vector<std::uint8_t> valid = read_file_bytes(path);

  const auto report = comms::run_ranks(1, [&](int, comms::SocketCommunicator&) {
    qcd::GaugeField<S> g(&grid);
    qcd::MarkovState st = load_checkpoint(path, g);
    qcd::advance(g, st, 1);
    set_write_fault_hook(+[] { ::raise(SIGKILL); });
    save_checkpoint(path, g, st);  // dies between fsync and rename
    return 0;
  });
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.ranks[0].term_signal, SIGKILL);

  // The surviving file is byte-identical to the pre-crash checkpoint and
  // still loads; the resumed chain continues from it bitwise.
  EXPECT_EQ(read_file_bytes(path), valid);
  qcd::GaugeField<S> reloaded(&grid);
  const qcd::MarkovState rstate = load_checkpoint(path, reloaded);
  EXPECT_EQ(rstate.sweeps_done, state.sweeps_done);
  EXPECT_EQ(encode_gauge(reloaded), encode_gauge(gauge));
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

}  // namespace
}  // namespace svelat::io
